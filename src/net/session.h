// Per-(origin,peer) RPC sessions with slot-window replay.
//
// Replaces the (origin, correlation) TTL dedup cache: the origin leases a
// *slot* in a lazily-established session per peer and stamps each request
// with (epoch, slot, seq). The executor keeps one SlotState per slot —
// duplicate detection is an O(1) slot lookup instead of a TTL-managed hash
// of every correlation ever seen, and the state is bounded by the number
// of concurrently outstanding requests, not by a retry-window worst case.
//
// Slot admission outcomes mirror the old cache:
//   seq >  last_seq  →  kFresh       (new use of the slot: execute)
//   seq == last_seq  →  kInProgress  (duplicate raced in: drop) or
//                       kReplay      (already answered: resend cached reply)
//   seq <  last_seq  →  kStale       (slot was reused; the origin has
//                                     settled that request: drop)
//
// Epochs order origin incarnations: a restarted origin opens a higher
// epoch, the window resets, and stragglers from the old epoch are kStale.
// The WAL exec-record path (src/core/wal.h) is the durable twin — exec
// records carry the session key so recovery re-derives slot state.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/network.h"

namespace fargo::net {

/// Origin side: leases slots for outgoing requests. One Session per peer,
/// created lazily on first use. Slots are recycled through a free list —
/// each reuse bumps the slot's seq, which is how the executor tells a new
/// request from a retry of the previous tenant.
// fargo: domain(net)
class SessionPool {
 public:
  /// Sets the epoch stamped into keys handed out from now on. Must be
  /// monotonically increasing across origin incarnations (Core restarts).
  void SetEpoch(std::uint64_t epoch) { epoch_ = epoch; }
  std::uint64_t epoch() const { return epoch_; }

  /// Leases a slot for a request to `peer`. The key stays fixed for the
  /// request's lifetime (all retries reuse it).
  SessionKey Acquire(CoreId origin, CoreId peer);

  /// Returns `key`'s slot to the free list. Idempotent, and a no-op when
  /// the slot has already been re-leased (the seq no longer matches) or
  /// the key belongs to an older epoch.
  void Release(const SessionKey& key);

  /// Drops every session (origin crash/restart: outstanding keys die with
  /// the old epoch).
  void Clear() { sessions_.clear(); }

  std::size_t session_count() const { return sessions_.size(); }
  /// Slots currently leased to in-flight requests, across all sessions.
  std::size_t slots_in_flight() const;
  /// Total slots ever grown, across all sessions.
  std::size_t slots_allocated() const;

 private:
  struct Slot {
    std::uint64_t seq = 0;  ///< seq of the current/most recent lease
    bool leased = false;
  };
  struct Session {
    std::vector<Slot> slots;
    std::vector<std::uint32_t> free;  ///< recycled slot indices (LIFO)
  };

  std::uint64_t epoch_ = 1;
  std::unordered_map<CoreId, Session> sessions_;
};

enum class Admission : std::uint8_t {
  kFresh,       ///< first sighting of this (slot, seq): execute it
  kInProgress,  ///< already executing (duplicate raced in): drop it
  kReplay,      ///< already answered: resend the cached reply
  kStale,       ///< older seq or epoch — the origin settled it: drop it
};

/// Executor side: one ReplayWindow per (origin, peer-as-seen-here) pair,
/// holding per-slot state. `peer` is part of the window key because one
/// origin may run sessions against several executors whose complets later
/// migrate to the same Core — their slot numbers must not collide.
// fargo: domain(net)
class ReplayDirectory {
 public:
  struct AdmitResult {
    Admission outcome = Admission::kFresh;
    MessageKind reply_kind = MessageKind::kControlReply;
    /// Cached reply payload; valid only for kReplay, and only until the
    /// next mutating directory call.
    const std::vector<std::uint8_t>* reply = nullptr;
  };

  /// Records that the request keyed `key` is about to execute, or reports
  /// it as a duplicate/stale. Invalid keys are always kFresh (sessionless
  /// requests are admitted elsewhere or idempotent).
  AdmitResult Admit(const SessionKey& key);

  /// Routing-time probe used before a request is forwarded: the cached
  /// reply for `key` if this Core executed it before the target moved
  /// away. Never mutates window state (duplicates it reports stay
  /// re-admittable), but it does count hits into the replay/suppression
  /// telemetry — a duplicate answered here is just as answered.
  AdmitResult Peek(const SessionKey& key) const;

  /// Caches the reply for a request previously admitted. No-op (returns
  /// false) for invalid keys, unknown slots, reused slots (seq mismatch)
  /// and already-completed entries — replies to requests that were never
  /// admitted (park-expiry errors, recovery replies) must not poison the
  /// window. Returns true when the reply was stored (a copy was made).
  bool Complete(const SessionKey& key, MessageKind reply_kind,
                const std::vector<std::uint8_t>& payload);

  /// Re-inserts a completed entry during WAL replay; idempotent, later
  /// seeds of the same key win, stale epochs/seqs are ignored.
  void Seed(const SessionKey& key, MessageKind reply_kind,
            std::vector<std::uint8_t> reply);

  /// One completed entry per live slot, for WAL checkpoints (sidecar
  /// records). Deterministic order: sorted by (origin, peer, slot).
  struct SeedEntry {
    SessionKey key;
    MessageKind reply_kind = MessageKind::kControlReply;
    std::vector<std::uint8_t> reply;
  };
  std::vector<SeedEntry> Snapshot() const;

  void Clear();

  std::size_t window_count() const { return windows_.size(); }
  /// Slots tracked across all windows.
  std::size_t slot_count() const;
  std::uint64_t replays() const { return replays_; }
  std::uint64_t suppressed() const { return suppressed_; }
  std::uint64_t stale_drops() const { return stale_; }

  /// One line per window: "origin=<id> peer=<id> epoch=<e> slots=<n>",
  /// sorted, for the shell's `sessions` command.
  std::vector<std::string> Describe() const;

 private:
  struct SlotState {
    std::uint64_t last_seq = 0;
    bool done = false;
    MessageKind reply_kind = MessageKind::kControlReply;
    std::vector<std::uint8_t> reply;
  };
  struct Window {
    std::uint64_t epoch = 0;
    std::unordered_map<std::uint32_t, SlotState> slots;
  };
  struct PairKey {
    CoreId origin;
    CoreId peer;
    bool operator==(const PairKey&) const = default;
  };
  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const noexcept {
      std::uint64_t x =
          (static_cast<std::uint64_t>(k.origin.value) << 32) ^ k.peer.value;
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdull;
      x ^= x >> 33;
      return static_cast<std::size_t>(x);
    }
  };

  /// Window for `key`, honoring epoch ordering: a higher epoch resets the
  /// window, a lower one returns nullptr (stale).
  Window* Resolve(const SessionKey& key);

  std::unordered_map<PairKey, Window, PairKeyHash> windows_;
  // Mutable: Peek is logically const (no window mutation) but still
  // accounts the duplicates it intercepts.
  mutable std::uint64_t replays_ = 0;
  mutable std::uint64_t suppressed_ = 0;
  mutable std::uint64_t stale_ = 0;
};

}  // namespace fargo::net
