#include "src/net/formation.h"

#include <utility>

#include "src/serial/frame.h"

namespace fargo::net {

void WriteBatchItem(serial::Writer& w, const Message& m) {
  w.WriteU8(static_cast<std::uint8_t>(m.kind));
  w.WriteVarint(m.correlation);
  w.WriteVarint(m.session.origin.value);
  w.WriteVarint(m.session.peer.value);
  w.WriteVarint(m.session.epoch);
  w.WriteVarint(m.session.slot);
  w.WriteVarint(m.session.seq);
  w.WriteBytes(m.payload);
}

Message ReadBatchItem(serial::Reader& r) {
  Message m;
  m.kind = static_cast<MessageKind>(r.ReadU8());
  m.correlation = r.ReadVarint();
  m.session.origin.value = static_cast<std::uint32_t>(r.ReadVarint());
  m.session.peer.value = static_cast<std::uint32_t>(r.ReadVarint());
  m.session.epoch = r.ReadVarint();
  m.session.slot = static_cast<std::uint32_t>(r.ReadVarint());
  m.session.seq = r.ReadVarint();
  m.payload = r.ReadBytes();
  return m;
}

void Formation::Enqueue(Message msg, Lane lane) {
  if (!enabled_ || msg.to == self_) {
    // Loopback is free and chaos-immune; batching it buys nothing and
    // would add a decode step to the fast path.
    net_.Send(std::move(msg));
    return;
  }
  const LaneKey key{msg.to, lane};
  Queue& q = queues_[key];
  q.bytes += msg.payload.size();
  q.items.push_back(std::move(msg));
  switch (lane) {
    case Lane::kImmediate:
    case Lane::kPriority:
      // Delay-0 flush: everything enqueued for this peer in the current
      // scheduler tick departs as one frame, at the same virtual time a
      // raw Send would have used.
      if (q.timer == 0) Arm(key, q, 0);
      break;
    case Lane::kBulk:
      if (q.bytes >= policy_.flush_bytes) {
        Flush(key);
      } else if (q.timer == 0) {
        Arm(key, q, policy_.flush_after);
      }
      break;
  }
}

void Formation::Arm(const LaneKey& key, Queue& q, SimTime delay) {
  // fargolint: allow(capture-this) the owning Core outlives its formation; Discard cancels pending flushes on crash/teardown
  q.timer = sched_.ScheduleAfter(delay, [this, key] {
    // The timer has fired: clear it before flushing so Flush doesn't
    // Cancel an already-executed task (Cancel tombstones would leak and
    // skew the scheduler's pending count).
    auto it = queues_.find(key);
    if (it != queues_.end()) it->second.timer = 0;
    Flush(key);
  });
}

void Formation::Flush(const LaneKey& key) {
  auto it = queues_.find(key);
  if (it == queues_.end()) return;
  Queue q = std::move(it->second);
  queues_.erase(it);
  if (q.timer != 0) sched_.Cancel(q.timer);
  if (q.items.empty()) return;

  ++flushes_;
  std::size_t sent_bytes = 0;
  const std::size_t count = q.items.size();
  if (count == 1) {
    // Single occupant: send the raw message unchanged, so low-load wire
    // traffic is byte-identical to an unbatched build.
    ++single_sends_;
    sent_bytes = q.items.front().payload.size();
    net_.Send(std::move(q.items.front()));
  } else {
    serial::FrameWriter frame;
    serial::Writer item;
    for (const Message& m : q.items) {
      WriteBatchItem(item, m);
      frame.Add(item.buffer());
      item = serial::Writer{};
    }
    Message batch;
    batch.from = self_;
    batch.to = key.dest;
    batch.kind = MessageKind::kBatch;
    batch.payload = frame.Finish();
    ++frames_;
    batched_items_ += count;
    sent_bytes = batch.payload.size();
    net_.Send(std::move(batch));
  }
  if (hook_) hook_(key.dest, key.lane, count, sent_bytes);
}

void Formation::FlushAll() {
  while (!queues_.empty()) {
    // Copy: Flush erases the node this key lives in, then still reads it
    // (destination, lane, flush hook).
    LaneKey key = queues_.begin()->first;
    Flush(key);
  }
}

void Formation::Discard() {
  for (auto& [key, q] : queues_)
    if (q.timer != 0) sched_.Cancel(q.timer);
  queues_.clear();
}

std::size_t Formation::queued() const {
  std::size_t n = 0;
  for (const auto& [key, q] : queues_) n += q.items.size();
  return n;
}

}  // namespace fargo::net
