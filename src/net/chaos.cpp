#include "src/net/chaos.h"

#include <cmath>

namespace fargo::net {

namespace {

// splitmix64: portable across standard libraries, unlike the distributions
// in <random> — the chaos soak compares traces across gcc/clang builds.
std::uint64_t NextState(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

const char* ToString(DropReason reason) {
  switch (reason) {
    case DropReason::kLinkDown:
      return "link-down";
    case DropReason::kUnregistered:
      return "unregistered";
    case DropReason::kChaos:
      return "chaos";
  }
  return "?";
}

double ChaosEngine::Armed::NextUnit(std::uint64_t link_key) {
  auto [it, fresh] = streams.try_emplace(link_key, 0);
  if (fresh) {
    // Decorrelate nearby link keys by running one mix round over the
    // (seed, link) combination before the stream's first draw.
    std::uint64_t s = plan.seed ^ link_key;
    it->second = NextState(s);
  }
  // 53 uniform bits -> [0, 1), exactly representable.
  return static_cast<double>(NextState(it->second) >> 11) * 0x1.0p-53;
}

void ChaosEngine::Arm(const FaultPlan& plan) { global_ = Armed{plan}; }

void ChaosEngine::ArmLink(CoreId from, CoreId to, const FaultPlan& plan) {
  links_[LinkKey(from, to)] = Armed{plan};
}

void ChaosEngine::Disarm() {
  global_.reset();
  links_.clear();
}

ChaosEngine::Armed* ChaosEngine::PlanFor(CoreId from, CoreId to) {
  if (auto it = links_.find(LinkKey(from, to)); it != links_.end())
    return &it->second;
  return global_ ? &*global_ : nullptr;
}

ChaosEngine::Verdict ChaosEngine::Decide(CoreId from, CoreId to) {
  Verdict v;
  Armed* armed = PlanFor(from, to);
  if (armed == nullptr || !armed->plan.probabilistic()) return v;
  const FaultPlan& plan = armed->plan;
  const std::uint64_t link = LinkKey(from, to);
  if (plan.drop > 0.0 && armed->NextUnit(link) < plan.drop) {
    v.drop = true;
    ++stats_.drops;
    return v;
  }
  if (plan.duplicate > 0.0 && armed->NextUnit(link) < plan.duplicate) {
    v.copies = 2;
    ++stats_.duplicates;
  }
  if (plan.reorder > 0.0 && plan.reorder_jitter > 0) {
    for (int i = 0; i < v.copies; ++i) {
      if (armed->NextUnit(link) < plan.reorder) {
        v.extra[i] = static_cast<SimTime>(std::llround(
            armed->NextUnit(link) * static_cast<double>(plan.reorder_jitter)));
        ++stats_.reorders;
      }
    }
  }
  return v;
}

}  // namespace fargo::net
