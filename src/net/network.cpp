#include "src/net/network.h"

#include <algorithm>
#include <cmath>

#include "src/common/log.h"

namespace fargo::net {

const char* ToString(MessageKind kind) {
  switch (kind) {
    case MessageKind::kInvokeRequest:
      return "InvokeRequest";
    case MessageKind::kInvokeReply:
      return "InvokeReply";
    case MessageKind::kMoveRequest:
      return "MoveRequest";
    case MessageKind::kMoveReply:
      return "MoveReply";
    case MessageKind::kTrackerUpdate:
      return "TrackerUpdate";
    case MessageKind::kEventRegister:
      return "EventRegister";
    case MessageKind::kEventUnregister:
      return "EventUnregister";
    case MessageKind::kEventNotify:
      return "EventNotify";
    case MessageKind::kNameRequest:
      return "NameRequest";
    case MessageKind::kNameReply:
      return "NameReply";
    case MessageKind::kNewRequest:
      return "NewRequest";
    case MessageKind::kNewReply:
      return "NewReply";
    case MessageKind::kControl:
      return "Control";
    case MessageKind::kControlReply:
      return "ControlReply";
    case MessageKind::kRecoveryQuery:
      return "RecoveryQuery";
    case MessageKind::kRecoveryReply:
      return "RecoveryReply";
    case MessageKind::kBatch:
      return "Batch";
    case MessageKind::kDirectoryPublish:
      return "DirectoryPublish";
    case MessageKind::kDirectoryLookup:
      return "DirectoryLookup";
    case MessageKind::kDirectoryReply:
      return "DirectoryReply";
    case MessageKind::kDirectoryMap:
      return "DirectoryMap";
  }
  return "?";
}

void Network::Register(CoreId id, Handler handler) {
  std::lock_guard<std::mutex> lk(mu_);
  handlers_[id] = std::move(handler);
}

void Network::Unregister(CoreId id) {
  std::lock_guard<std::mutex> lk(mu_);
  handlers_.erase(id);
}

void Network::SetLink(CoreId a, CoreId b, LinkModel model) {
  std::lock_guard<std::mutex> lk(mu_);
  links_[Key(a, b)] = model;
  links_[Key(b, a)] = model;
}

void Network::SetLinkOneWay(CoreId from, CoreId to, LinkModel model) {
  std::lock_guard<std::mutex> lk(mu_);
  links_[Key(from, to)] = model;
}

LinkModel Network::GetLinkLocked(CoreId from, CoreId to) const {
  if (from == to) return LinkModel{.latency = 0, .bytes_per_sec = 1e12};
  if (auto it = links_.find(Key(from, to)); it != links_.end())
    return it->second;
  return default_link_;
}

LinkModel Network::GetLink(CoreId from, CoreId to) const {
  std::lock_guard<std::mutex> lk(mu_);
  return GetLinkLocked(from, to);
}

void Network::SetPartitioned(CoreId a, CoreId b, bool partitioned) {
  std::lock_guard<std::mutex> lk(mu_);
  LinkModel m = GetLinkLocked(a, b);
  m.up = !partitioned;
  links_[Key(a, b)] = m;
  links_[Key(b, a)] = m;
}

void Network::CountDrop(const Message& msg, DropReason reason) {
  ++dropped_by_[static_cast<int>(reason)];
  if (drop_hook_) drop_hook_(msg, reason);
  if (msg.from != msg.to) ++stats_[Key(msg.from, msg.to)].dropped;
  LogDebug() << "drop " << ToString(msg.kind) << " " << ToString(msg.from)
             << " -> " << ToString(msg.to) << " (" << ToString(reason) << ")";
}

void Network::Deliver(Message msg) {
  // Copy the handler out so it runs unlocked: handlers re-enter Send and
  // may Unregister themselves (crash paths).
  Handler handler;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = handlers_.find(msg.to);
    if (it == handlers_.end()) {
      CountDrop(msg, DropReason::kUnregistered);
      return;
    }
    handler = it->second;
  }
  handler(std::move(msg));
}

void Network::Send(Message msg) {
  std::lock_guard<std::mutex> lk(mu_);
  if (tap_) tap_(msg);
  // Delivery is Post()ed to the destination Core's home locality: the
  // receive handler touches that Core's ownership domain, so this is the
  // sanctioned cross-locality handoff (a no-op routing hint in sim mode).
  const std::uint64_t dest_affinity = msg.to.value;
  if (msg.from == msg.to) {
    // Intra-Core loopback: free, excluded from link statistics, and immune
    // to chaos (a Core always reaches itself).
    // fargolint: allow(capture-this) Runtime clears the queue before the Network dies
    sched_.PostAfter(dest_affinity, 0, [this, msg = std::move(msg)]() mutable {
      Deliver(std::move(msg));
    });
    return;
  }
  const LinkModel link = GetLinkLocked(msg.from, msg.to);
  if (!link.up) {
    CountDrop(msg, DropReason::kLinkDown);
    return;
  }
  ChaosEngine::Verdict fate = chaos_.Decide(msg.from, msg.to);
  if (fate.drop) {
    CountDrop(msg, DropReason::kChaos);
    return;
  }
  const std::size_t wire_bytes = msg.size() + header_bytes_;
  const SimTime transfer = static_cast<SimTime>(
      std::llround(static_cast<double>(wire_bytes) / link.bytes_per_sec * 1e9));
  const PairKey key = Key(msg.from, msg.to);

  // Each copy (normally one; two under duplication) is charged the full
  // link cost plus its own reorder jitter.
  for (int i = 0; i < fate.copies; ++i) {
    LinkStats& s = stats_[key];
    s.messages += 1;
    s.bytes += wire_bytes;
    total_.messages += 1;
    total_.bytes += wire_bytes;
    const SimTime arrival_delay = link.latency + transfer + fate.extra[i];
    const bool duplicate = i + 1 < fate.copies;
    if (duplicate && copy_hook_) copy_hook_(msg.size());
    Message copy = duplicate ? msg : std::move(msg);
    sched_.PostAfter(dest_affinity, arrival_delay,
                     // fargolint: allow(capture-this) Runtime clears the queue before the Network dies
                     [this, m = std::move(copy)]() mutable {
                       Deliver(std::move(m));
                     });
  }
}

void Network::SetFaultPlan(const FaultPlan& plan) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    chaos_.Arm(plan);
  }
  for (const FaultPlan::LinkFlap& flap : plan.flaps) {
    // Flaps only touch lock-guarded link state, so any locality may run
    // them; ScheduleAt keeps them on the caller's (or default) locality.
    // fargolint: allow(capture-this) Runtime clears the queue before the Network dies
    sched_.ScheduleAt(flap.down_at, [this, flap] {
      SetPartitioned(flap.a, flap.b, true);
    });
    if (flap.up_at > flap.down_at) {
      // fargolint: allow(capture-this) Runtime clears the queue before the Network dies
      sched_.ScheduleAt(flap.up_at, [this, flap] {
        SetPartitioned(flap.a, flap.b, false);
      });
    }
  }
  for (const FaultPlan::CoreCrash& crash : plan.crashes) {
    // Crash/restart handlers tear into the Core itself, so they must run
    // on the Core's home locality.
    // fargolint: allow(capture-this) Runtime clears the queue before the Network dies
    sched_.Post(crash.core.value, crash.at, [this, core = crash.core] {
      std::function<void(CoreId)> handler;
      {
        std::lock_guard<std::mutex> lk(mu_);
        handler = crash_handler_;
      }
      if (handler) {
        handler(core);
      } else {
        Unregister(core);
      }
    });
    if (crash.restart_after > 0) {
      sched_.Post(crash.core.value, crash.at + crash.restart_after,
                  // fargolint: allow(capture-this) Runtime clears the queue before the Network dies
                  [this, core = crash.core] {
                    std::function<void(CoreId)> handler;
                    {
                      std::lock_guard<std::mutex> lk(mu_);
                      handler = restart_handler_;
                    }
                    if (handler) handler(core);
                  });
    }
  }
}

void Network::SetLinkFaultPlan(CoreId from, CoreId to, const FaultPlan& plan) {
  std::lock_guard<std::mutex> lk(mu_);
  chaos_.ArmLink(from, to, plan);
}

std::uint64_t Network::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t sum = 0;
  for (std::uint64_t n : dropped_by_) sum += n;
  return sum;
}

LinkStats Network::StatsBetween(CoreId from, CoreId to) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (auto it = stats_.find(Key(from, to)); it != stats_.end())
    return it->second;
  return LinkStats{};
}

std::vector<std::pair<std::pair<CoreId, CoreId>, LinkStats>>
Network::AllLinkStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::pair<CoreId, CoreId>, LinkStats>> out;
  out.reserve(stats_.size());
  // fargolint: order-insensitive(rows are sorted by link pair before return)
  for (const auto& [key, stats] : stats_) {
    CoreId from{static_cast<std::uint32_t>(key >> 32)};
    CoreId to{static_cast<std::uint32_t>(key & 0xffffffffu)};
    out.emplace_back(std::make_pair(from, to), stats);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  return out;
}

void Network::ResetStats() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.clear();
  total_ = LinkStats{};
  for (std::uint64_t& n : dropped_by_) n = 0;
  chaos_.ResetStats();
}

}  // namespace fargo::net
