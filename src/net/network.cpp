#include "src/net/network.h"

#include <cmath>

#include "src/common/log.h"

namespace fargo::net {

const char* ToString(MessageKind kind) {
  switch (kind) {
    case MessageKind::kInvokeRequest:
      return "InvokeRequest";
    case MessageKind::kInvokeReply:
      return "InvokeReply";
    case MessageKind::kMoveRequest:
      return "MoveRequest";
    case MessageKind::kMoveReply:
      return "MoveReply";
    case MessageKind::kTrackerUpdate:
      return "TrackerUpdate";
    case MessageKind::kEventRegister:
      return "EventRegister";
    case MessageKind::kEventUnregister:
      return "EventUnregister";
    case MessageKind::kEventNotify:
      return "EventNotify";
    case MessageKind::kNameRequest:
      return "NameRequest";
    case MessageKind::kNameReply:
      return "NameReply";
    case MessageKind::kNewRequest:
      return "NewRequest";
    case MessageKind::kNewReply:
      return "NewReply";
    case MessageKind::kControl:
      return "Control";
  }
  return "?";
}

void Network::Register(CoreId id, Handler handler) {
  handlers_[id] = std::move(handler);
}

void Network::Unregister(CoreId id) { handlers_.erase(id); }

void Network::SetLink(CoreId a, CoreId b, LinkModel model) {
  links_[Key(a, b)] = model;
  links_[Key(b, a)] = model;
}

void Network::SetLinkOneWay(CoreId from, CoreId to, LinkModel model) {
  links_[Key(from, to)] = model;
}

LinkModel Network::GetLink(CoreId from, CoreId to) const {
  if (from == to) return LinkModel{.latency = 0, .bytes_per_sec = 1e12};
  if (auto it = links_.find(Key(from, to)); it != links_.end())
    return it->second;
  return default_link_;
}

void Network::SetPartitioned(CoreId a, CoreId b, bool partitioned) {
  LinkModel m = GetLink(a, b);
  m.up = !partitioned;
  SetLink(a, b, m);
}

void Network::Send(Message msg) {
  if (tap_) tap_(msg);
  if (msg.from == msg.to) {
    // Intra-Core loopback: free and excluded from link statistics.
    sched_.ScheduleAfter(0, [this, msg = std::move(msg)]() mutable {
      auto it = handlers_.find(msg.to);
      if (it == handlers_.end()) {
        ++dropped_;
        return;
      }
      it->second(std::move(msg));
    });
    return;
  }
  const LinkModel link = GetLink(msg.from, msg.to);
  if (!link.up) {
    ++dropped_;
    LogDebug() << "drop " << ToString(msg.kind) << " " << ToString(msg.from)
               << " -> " << ToString(msg.to) << " (link down)";
    return;
  }
  const std::size_t wire_bytes = msg.size() + header_bytes_;
  LinkStats& s = stats_[Key(msg.from, msg.to)];
  s.messages += 1;
  s.bytes += wire_bytes;
  total_.messages += 1;
  total_.bytes += wire_bytes;

  const SimTime transfer = static_cast<SimTime>(
      std::llround(static_cast<double>(wire_bytes) / link.bytes_per_sec * 1e9));
  const SimTime arrival_delay = link.latency + transfer;

  sched_.ScheduleAfter(arrival_delay, [this, msg = std::move(msg)]() mutable {
    auto it = handlers_.find(msg.to);
    if (it == handlers_.end()) {
      ++dropped_;
      LogDebug() << "drop " << ToString(msg.kind) << " to unregistered "
                 << ToString(msg.to);
      return;
    }
    it->second(std::move(msg));
  });
}

LinkStats Network::StatsBetween(CoreId from, CoreId to) const {
  if (auto it = stats_.find(Key(from, to)); it != stats_.end())
    return it->second;
  return LinkStats{};
}

void Network::ResetStats() {
  stats_.clear();
  total_ = LinkStats{};
  dropped_ = 0;
}

}  // namespace fargo::net
