#include "src/net/network.h"

#include <algorithm>
#include <cmath>

#include "src/common/log.h"

namespace fargo::net {

const char* ToString(MessageKind kind) {
  switch (kind) {
    case MessageKind::kInvokeRequest:
      return "InvokeRequest";
    case MessageKind::kInvokeReply:
      return "InvokeReply";
    case MessageKind::kMoveRequest:
      return "MoveRequest";
    case MessageKind::kMoveReply:
      return "MoveReply";
    case MessageKind::kTrackerUpdate:
      return "TrackerUpdate";
    case MessageKind::kEventRegister:
      return "EventRegister";
    case MessageKind::kEventUnregister:
      return "EventUnregister";
    case MessageKind::kEventNotify:
      return "EventNotify";
    case MessageKind::kNameRequest:
      return "NameRequest";
    case MessageKind::kNameReply:
      return "NameReply";
    case MessageKind::kNewRequest:
      return "NewRequest";
    case MessageKind::kNewReply:
      return "NewReply";
    case MessageKind::kControl:
      return "Control";
    case MessageKind::kControlReply:
      return "ControlReply";
    case MessageKind::kRecoveryQuery:
      return "RecoveryQuery";
    case MessageKind::kRecoveryReply:
      return "RecoveryReply";
    case MessageKind::kBatch:
      return "Batch";
    case MessageKind::kDirectoryPublish:
      return "DirectoryPublish";
    case MessageKind::kDirectoryLookup:
      return "DirectoryLookup";
    case MessageKind::kDirectoryReply:
      return "DirectoryReply";
    case MessageKind::kDirectoryMap:
      return "DirectoryMap";
  }
  return "?";
}

void Network::Register(CoreId id, Handler handler) {
  handlers_[id] = std::move(handler);
}

void Network::Unregister(CoreId id) { handlers_.erase(id); }

void Network::SetLink(CoreId a, CoreId b, LinkModel model) {
  links_[Key(a, b)] = model;
  links_[Key(b, a)] = model;
}

void Network::SetLinkOneWay(CoreId from, CoreId to, LinkModel model) {
  links_[Key(from, to)] = model;
}

LinkModel Network::GetLink(CoreId from, CoreId to) const {
  if (from == to) return LinkModel{.latency = 0, .bytes_per_sec = 1e12};
  if (auto it = links_.find(Key(from, to)); it != links_.end())
    return it->second;
  return default_link_;
}

void Network::SetPartitioned(CoreId a, CoreId b, bool partitioned) {
  LinkModel m = GetLink(a, b);
  m.up = !partitioned;
  SetLink(a, b, m);
}

void Network::CountDrop(const Message& msg, DropReason reason) {
  ++dropped_by_[static_cast<int>(reason)];
  if (drop_hook_) drop_hook_(msg, reason);
  if (msg.from != msg.to) ++stats_[Key(msg.from, msg.to)].dropped;
  LogDebug() << "drop " << ToString(msg.kind) << " " << ToString(msg.from)
             << " -> " << ToString(msg.to) << " (" << ToString(reason) << ")";
}

void Network::Deliver(Message msg) {
  auto it = handlers_.find(msg.to);
  if (it == handlers_.end()) {
    CountDrop(msg, DropReason::kUnregistered);
    return;
  }
  it->second(std::move(msg));
}

void Network::Send(Message msg) {
  if (tap_) tap_(msg);
  if (msg.from == msg.to) {
    // Intra-Core loopback: free, excluded from link statistics, and immune
    // to chaos (a Core always reaches itself).
    // fargolint: allow(capture-this) Runtime clears the queue before the Network dies
    sched_.ScheduleAfter(0, [this, msg = std::move(msg)]() mutable {
      Deliver(std::move(msg));
    });
    return;
  }
  const LinkModel link = GetLink(msg.from, msg.to);
  if (!link.up) {
    CountDrop(msg, DropReason::kLinkDown);
    return;
  }
  ChaosEngine::Verdict fate = chaos_.Decide(msg.from, msg.to);
  if (fate.drop) {
    CountDrop(msg, DropReason::kChaos);
    return;
  }
  const std::size_t wire_bytes = msg.size() + header_bytes_;
  const SimTime transfer = static_cast<SimTime>(
      std::llround(static_cast<double>(wire_bytes) / link.bytes_per_sec * 1e9));
  const PairKey key = Key(msg.from, msg.to);

  // Each copy (normally one; two under duplication) is charged the full
  // link cost plus its own reorder jitter.
  for (int i = 0; i < fate.copies; ++i) {
    LinkStats& s = stats_[key];
    s.messages += 1;
    s.bytes += wire_bytes;
    total_.messages += 1;
    total_.bytes += wire_bytes;
    const SimTime arrival_delay = link.latency + transfer + fate.extra[i];
    const bool duplicate = i + 1 < fate.copies;
    if (duplicate && copy_hook_) copy_hook_(msg.size());
    Message copy = duplicate ? msg : std::move(msg);
    sched_.ScheduleAfter(arrival_delay,
                         // fargolint: allow(capture-this) Runtime clears the queue before the Network dies
                         [this, m = std::move(copy)]() mutable {
                           Deliver(std::move(m));
                         });
  }
}

void Network::SetFaultPlan(const FaultPlan& plan) {
  chaos_.Arm(plan);
  for (const FaultPlan::LinkFlap& flap : plan.flaps) {
    // fargolint: allow(capture-this) Runtime clears the queue before the Network dies
    sched_.ScheduleAt(flap.down_at, [this, flap] {
      SetPartitioned(flap.a, flap.b, true);
    });
    if (flap.up_at > flap.down_at) {
      // fargolint: allow(capture-this) Runtime clears the queue before the Network dies
      sched_.ScheduleAt(flap.up_at, [this, flap] {
        SetPartitioned(flap.a, flap.b, false);
      });
    }
  }
  for (const FaultPlan::CoreCrash& crash : plan.crashes) {
    // fargolint: allow(capture-this) Runtime clears the queue before the Network dies
    sched_.ScheduleAt(crash.at, [this, core = crash.core] {
      if (crash_handler_) {
        crash_handler_(core);
      } else {
        Unregister(core);
      }
    });
    if (crash.restart_after > 0) {
      sched_.ScheduleAt(crash.at + crash.restart_after,
                        // fargolint: allow(capture-this) Runtime clears the queue before the Network dies
                        [this, core = crash.core] {
                          if (restart_handler_) restart_handler_(core);
                        });
    }
  }
}

void Network::SetLinkFaultPlan(CoreId from, CoreId to, const FaultPlan& plan) {
  chaos_.ArmLink(from, to, plan);
}

std::uint64_t Network::dropped() const {
  std::uint64_t sum = 0;
  for (std::uint64_t n : dropped_by_) sum += n;
  return sum;
}

LinkStats Network::StatsBetween(CoreId from, CoreId to) const {
  if (auto it = stats_.find(Key(from, to)); it != stats_.end())
    return it->second;
  return LinkStats{};
}

std::vector<std::pair<std::pair<CoreId, CoreId>, LinkStats>>
Network::AllLinkStats() const {
  std::vector<std::pair<std::pair<CoreId, CoreId>, LinkStats>> out;
  out.reserve(stats_.size());
  // fargolint: order-insensitive(rows are sorted by link pair before return)
  for (const auto& [key, stats] : stats_) {
    CoreId from{static_cast<std::uint32_t>(key >> 32)};
    CoreId to{static_cast<std::uint32_t>(key & 0xffffffffu)};
    out.emplace_back(std::make_pair(from, to), stats);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  return out;
}

void Network::ResetStats() {
  stats_.clear();
  total_ = LinkStats{};
  for (std::uint64_t& n : dropped_by_) n = 0;
  chaos_.ResetStats();
}

}  // namespace fargo::net
