// Message formation: per-destination batching of small wire messages.
//
// Every Core routes its outbound traffic through one Formation, which
// coalesces messages headed for the same destination into a single framed
// kBatch payload (src/serial/frame.h) under a deterministic policy, so the
// fine-grained traffic the layout engine depends on — acks, heartbeats,
// tracker updates, event notifications — stops paying one wire message
// (and one 64-byte header) each.
//
// Three lanes per destination:
//   kImmediate  latency-sensitive protocol traffic (invoke requests and
//               replies, moves, naming). Flushes on a delay-0 task: items
//               enqueued in the same scheduler tick for the same peer
//               leave in one frame, and departure time is unchanged.
//   kPriority   failure-detector and tracker traffic. Also delay-0, but
//               always flushed as its OWN frame: transfer time is charged
//               per message on frame size, so riding in a big immediate
//               frame would delay the heartbeat by the whole frame's
//               serialization time — exactly the detector race this lane
//               exists to prevent.
//   kBulk       traffic with no latency contract (event notifications,
//               slot-release acks, move acks). Held until the frame
//               reaches `flush_bytes` or `flush_after` virtual time has
//               passed since the first queued item.
//
// A flush holding exactly one message sends it unchanged — at low load
// the wire is byte-identical to an unbatched build. Loopback traffic
// bypasses formation entirely (it is free and cannot batch profitably).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/net/network.h"
#include "src/serial/bytes.h"
#include "src/sim/scheduler.h"

namespace fargo::net {

/// Deterministic flush policy for the bulk lane.
struct FormationPolicy {
  std::size_t flush_bytes = 2048;  ///< flush once queued payload hits this
  SimTime flush_after = Millis(1); ///< ... or this long after the first item
};

// fargo: domain(net)
class Formation {
 public:
  enum class Lane : std::uint8_t {
    kImmediate = 0,
    kPriority = 1,
    kBulk = 2,
  };

  Formation(CoreId self, sim::Scheduler& sched, Network& net)
      : self_(self), sched_(sched), net_(net) {}
  ~Formation() { Discard(); }
  Formation(const Formation&) = delete;
  Formation& operator=(const Formation&) = delete;

  void SetPolicy(FormationPolicy p) { policy_ = p; }
  const FormationPolicy& policy() const { return policy_; }

  /// Disabled, every Enqueue sends straight through — the A/B switch the
  /// formation benchmark uses to measure batching against the raw wire.
  void SetEnabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Invoked after every flush that left the Core (batched or single).
  /// Keeps net/ monitor-agnostic: the Core installs a hook that feeds the
  /// metrics registry and the tracer.
  using FlushHook = std::function<void(CoreId dest, Lane lane,
                                       std::size_t items, std::size_t bytes)>;
  void SetFlushHook(FlushHook hook) { hook_ = std::move(hook); }

  /// Queues `msg` on `lane`; ownership passes to the formation until the
  /// lane flushes. Loopback and disabled-formation sends go straight out.
  void Enqueue(Message msg, Lane lane);

  /// Drains every queue now (orderly shutdown).
  void FlushAll();

  /// Drops every queued message and cancels pending flush tasks (crash:
  /// unsent traffic dies with the Core).
  void Discard();

  // -- telemetry --------------------------------------------------------------
  std::uint64_t flushes() const { return flushes_; }
  std::uint64_t frames() const { return frames_; }
  std::uint64_t batched_items() const { return batched_items_; }
  std::uint64_t single_sends() const { return single_sends_; }
  std::size_t queued() const;

 private:
  struct LaneKey {
    CoreId dest;
    Lane lane = Lane::kImmediate;
    /// Ordered (std::map) so FlushAll drains deterministically.
    bool operator<(const LaneKey& o) const {
      if (dest.value != o.dest.value) return dest.value < o.dest.value;
      return static_cast<int>(lane) < static_cast<int>(o.lane);
    }
  };
  struct Queue {
    std::vector<Message> items;
    std::size_t bytes = 0;       ///< queued payload bytes
    sim::TaskId timer = 0;       ///< pending flush task (0 = none)
  };

  void Arm(const LaneKey& key, Queue& q, SimTime delay);
  void Flush(const LaneKey& key);

  CoreId self_;
  sim::Scheduler& sched_;
  Network& net_;
  FormationPolicy policy_;
  bool enabled_ = true;
  FlushHook hook_;
  std::map<LaneKey, Queue> queues_;
  std::uint64_t flushes_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t batched_items_ = 0;
  std::uint64_t single_sends_ = 0;
};

/// Wire codec for one message inside a kBatch frame item. `from`/`to` are
/// not encoded — every item of a frame shares the frame's link.
void WriteBatchItem(serial::Writer& w, const Message& m);
Message ReadBatchItem(serial::Reader& r);

}  // namespace fargo::net
