// Chaos engine: seeded, deterministic fault injection for the simulated WAN.
//
// The paper's motivating environment is a hostile, changing wide-area
// network; the seed network could only flip links up/down by hand. A
// FaultPlan — armed globally or per directed link — injects probabilistic
// message drop, duplication and reordering (bounded extra-latency jitter),
// plus *scheduled* link flaps and Core crashes. All randomness comes from
// per-directed-link splitmix64 streams, each seeded from (plan seed, link)
// and drawn in that link's Send() order. A directed link has exactly one
// sender Core — one locality — so the draw order per stream is the same
// under the deterministic sim and under FARGO_PARALLEL, and two runs with
// the same seed produce byte-identical fault schedules in either mode
// (the tests and the sim-vs-parallel equivalence gate rely on this).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time.h"

namespace fargo::net {

/// Why the fabric discarded a message (per-reason drop telemetry).
enum class DropReason : std::uint8_t {
  kLinkDown = 0,      ///< directed link was administratively/flap down
  kUnregistered = 1,  ///< destination Core not registered at arrival
  kChaos = 2,         ///< armed FaultPlan chose to drop it
};

const char* ToString(DropReason reason);
inline constexpr int kDropReasonCount = 3;

/// A deterministic fault-injection plan. Probabilities are in [0, 1] and
/// evaluated independently per message; scheduled faults fire once at
/// absolute sim times when the plan is armed on a Network.
struct FaultPlan {
  std::uint64_t seed = 1;

  double drop = 0.0;       ///< P(message silently discarded)
  double duplicate = 0.0;  ///< P(message delivered twice)
  double reorder = 0.0;    ///< P(copy charged extra latency jitter)
  SimTime reorder_jitter = Millis(20);  ///< max extra latency per reorder

  struct LinkFlap {
    CoreId a;
    CoreId b;
    SimTime down_at = 0;  ///< absolute sim time the link goes down
    SimTime up_at = 0;    ///< absolute sim time it comes back (0 = never)
  };
  struct CoreCrash {
    CoreId core;
    SimTime at = 0;  ///< absolute sim time of the crash
    /// Delay until the Core restarts (0 = crash is permanent). Restarts go
    /// through the Network's restart handler (Runtime wires Core::Restart),
    /// so a durable Core recovers from its WAL mid-run.
    SimTime restart_after = 0;
  };
  std::vector<LinkFlap> flaps;
  std::vector<CoreCrash> crashes;

  bool probabilistic() const {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0;
  }
};

struct FaultStats {
  std::uint64_t drops = 0;       ///< messages discarded by chaos
  std::uint64_t duplicates = 0;  ///< extra copies injected
  std::uint64_t reorders = 0;    ///< copies charged extra jitter
};

/// Pure per-message fate decider. The Network owns one and consults it in
/// Send(); flap/crash scheduling lives in the Network (it needs the
/// scheduler). Link-specific plans take precedence over the global plan.
// fargo: domain(net)
class ChaosEngine {
 public:
  struct Verdict {
    bool drop = false;
    int copies = 1;           ///< 1 or 2 (duplication)
    SimTime extra[2] = {0, 0};  ///< per-copy reorder jitter
  };

  void Arm(const FaultPlan& plan);
  void ArmLink(CoreId from, CoreId to, const FaultPlan& plan);
  void Disarm();
  bool armed() const { return global_.has_value() || !links_.empty(); }
  const FaultPlan* global_plan() const {
    return global_ ? &global_->plan : nullptr;
  }

  /// Draws the fate of one message on the directed link `from -> to`.
  /// Deterministic: consumes the armed plan's random stream in call order.
  Verdict Decide(CoreId from, CoreId to);

  const FaultStats& stats() const { return stats_; }
  void ResetStats() { stats_ = FaultStats{}; }

 private:
  struct Armed {
    FaultPlan plan;
    /// Per-directed-link splitmix64 stream states, lazily seeded from
    /// (plan.seed, link key). Keeping the streams independent makes each
    /// link's fate a pure function of its own message sequence.
    std::unordered_map<std::uint64_t, std::uint64_t> streams;
    double NextUnit(std::uint64_t link_key);  ///< next draw in [0, 1)
  };

  static std::uint64_t LinkKey(CoreId from, CoreId to) {
    return (static_cast<std::uint64_t>(from.value) << 32) | to.value;
  }
  Armed* PlanFor(CoreId from, CoreId to);

  std::optional<Armed> global_;
  std::unordered_map<std::uint64_t, Armed> links_;
  FaultStats stats_;
};

}  // namespace fargo::net
