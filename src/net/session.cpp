#include "src/net/session.h"

#include <algorithm>

namespace fargo::net {

SessionKey SessionPool::Acquire(CoreId origin, CoreId peer) {
  Session& s = sessions_[peer];
  SessionKey key;
  key.origin = origin;
  key.peer = peer;
  key.epoch = epoch_;
  if (!s.free.empty()) {
    key.slot = s.free.back();
    s.free.pop_back();
    Slot& slot = s.slots[key.slot];
    slot.seq += 1;
    slot.leased = true;
    key.seq = slot.seq;
  } else {
    key.slot = static_cast<std::uint32_t>(s.slots.size());
    s.slots.push_back(Slot{1, true});
    key.seq = 1;
  }
  return key;
}

void SessionPool::Release(const SessionKey& key) {
  if (key.epoch != epoch_) return;  // lease from a previous incarnation
  auto it = sessions_.find(key.peer);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  if (key.slot >= s.slots.size()) return;
  Slot& slot = s.slots[key.slot];
  if (!slot.leased || slot.seq != key.seq) return;  // already re-leased
  slot.leased = false;
  s.free.push_back(key.slot);
}

std::size_t SessionPool::slots_in_flight() const {
  std::size_t n = 0;
  // fargolint: order-insensitive(commutative sum)
  for (const auto& [peer, s] : sessions_)
    // fargolint: order-insensitive(commutative sum over a plain vector)
    for (const Slot& slot : s.slots) n += slot.leased ? 1 : 0;
  return n;
}

std::size_t SessionPool::slots_allocated() const {
  std::size_t n = 0;
  // fargolint: order-insensitive(commutative sum)
  for (const auto& [peer, s] : sessions_) n += s.slots.size();
  return n;
}

ReplayDirectory::Window* ReplayDirectory::Resolve(const SessionKey& key) {
  Window& w = windows_[PairKey{key.origin, key.peer}];
  if (key.epoch > w.epoch) {
    // New origin incarnation: everything from the old epoch is settled.
    w.epoch = key.epoch;
    w.slots.clear();
  } else if (key.epoch < w.epoch) {
    return nullptr;  // straggler from a dead incarnation
  }
  return &w;
}

ReplayDirectory::AdmitResult ReplayDirectory::Admit(const SessionKey& key) {
  AdmitResult r;
  if (!key.valid()) return r;  // sessionless: caller decides elsewhere
  Window* w = Resolve(key);
  if (w == nullptr) {
    ++stale_;
    r.outcome = Admission::kStale;
    return r;
  }
  SlotState& slot = w->slots[key.slot];
  if (key.seq > slot.last_seq) {
    // New tenant of the slot: the previous request (if any) was settled
    // at the origin, so its cached reply can go.
    slot.last_seq = key.seq;
    slot.done = false;
    slot.reply.clear();
    r.outcome = Admission::kFresh;
    return r;
  }
  if (key.seq < slot.last_seq) {
    ++stale_;
    r.outcome = Admission::kStale;
    return r;
  }
  if (slot.done) {
    ++replays_;
    r.outcome = Admission::kReplay;
    r.reply_kind = slot.reply_kind;
    r.reply = &slot.reply;
    return r;
  }
  ++suppressed_;
  r.outcome = Admission::kInProgress;
  return r;
}

ReplayDirectory::AdmitResult ReplayDirectory::Peek(
    const SessionKey& key) const {
  AdmitResult r;
  if (!key.valid()) return r;
  auto wit = windows_.find(PairKey{key.origin, key.peer});
  if (wit == windows_.end()) return r;
  const Window& w = wit->second;
  if (key.epoch != w.epoch) {
    if (key.epoch < w.epoch) {
      ++stale_;
      r.outcome = Admission::kStale;
    }
    return r;
  }
  auto sit = w.slots.find(key.slot);
  if (sit == w.slots.end()) return r;
  const SlotState& slot = sit->second;
  if (key.seq < slot.last_seq) {
    ++stale_;
    r.outcome = Admission::kStale;
    return r;
  }
  if (key.seq > slot.last_seq) return r;
  if (slot.done) {
    ++replays_;
    r.outcome = Admission::kReplay;
    r.reply_kind = slot.reply_kind;
    r.reply = &slot.reply;
  } else {
    ++suppressed_;
    r.outcome = Admission::kInProgress;
  }
  return r;
}

bool ReplayDirectory::Complete(const SessionKey& key, MessageKind reply_kind,
                               const std::vector<std::uint8_t>& payload) {
  if (!key.valid()) return false;
  auto wit = windows_.find(PairKey{key.origin, key.peer});
  if (wit == windows_.end()) return false;
  Window& w = wit->second;
  if (key.epoch != w.epoch) return false;
  auto sit = w.slots.find(key.slot);
  if (sit == w.slots.end()) return false;
  SlotState& slot = sit->second;
  // The slot may have been re-leased while this request executed (the
  // origin settled it some other way); a stale completion must not cache
  // its reply onto the new tenant.
  if (slot.last_seq != key.seq || slot.done) return false;
  slot.done = true;
  slot.reply_kind = reply_kind;
  slot.reply = payload;
  return true;
}

void ReplayDirectory::Seed(const SessionKey& key, MessageKind reply_kind,
                           std::vector<std::uint8_t> reply) {
  if (!key.valid()) return;
  Window* w = Resolve(key);
  if (w == nullptr) return;
  SlotState& slot = w->slots[key.slot];
  if (key.seq < slot.last_seq) return;
  slot.last_seq = key.seq;
  slot.done = true;
  slot.reply_kind = reply_kind;
  slot.reply = std::move(reply);
}

std::vector<ReplayDirectory::SeedEntry> ReplayDirectory::Snapshot() const {
  std::vector<SeedEntry> out;
  // fargolint: order-insensitive(sorted below before returning)
  for (const auto& [pair, w] : windows_) {
    // fargolint: order-insensitive(sorted below before returning)
    for (const auto& [slot_idx, slot] : w.slots) {
      if (!slot.done) continue;  // in-progress entries are volatile by design
      SeedEntry e;
      e.key.origin = pair.origin;
      e.key.peer = pair.peer;
      e.key.epoch = w.epoch;
      e.key.slot = slot_idx;
      e.key.seq = slot.last_seq;
      e.reply_kind = slot.reply_kind;
      e.reply = slot.reply;
      out.push_back(std::move(e));
    }
  }
  std::sort(out.begin(), out.end(), [](const SeedEntry& a, const SeedEntry& b) {
    if (a.key.origin.value != b.key.origin.value)
      return a.key.origin.value < b.key.origin.value;
    if (a.key.peer.value != b.key.peer.value)
      return a.key.peer.value < b.key.peer.value;
    return a.key.slot < b.key.slot;
  });
  return out;
}

void ReplayDirectory::Clear() { windows_.clear(); }

std::size_t ReplayDirectory::slot_count() const {
  std::size_t n = 0;
  // fargolint: order-insensitive(commutative sum)
  for (const auto& [pair, w] : windows_) n += w.slots.size();
  return n;
}

std::vector<std::string> ReplayDirectory::Describe() const {
  std::vector<std::string> lines;
  // fargolint: order-insensitive(sorted below before returning)
  for (const auto& [pair, w] : windows_) {
    lines.push_back("origin=" + std::to_string(pair.origin.value) +
                    " peer=" + std::to_string(pair.peer.value) +
                    " epoch=" + std::to_string(w.epoch) +
                    " slots=" + std::to_string(w.slots.size()));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

}  // namespace fargo::net
