// Simulated wide-area network connecting Cores.
//
// Replaces the paper's Java-RMI-over-WAN transport (see DESIGN.md §2).
// Each directed Core pair has a LinkModel (propagation latency, bandwidth,
// up/down) that can be changed while the application runs — the paper's
// motivating "dynamically changing transfer rates". Message cost:
//   arrival = now + latency + (header + payload) / bandwidth
// Per-link byte/message counters feed the monitoring layer (§4.1 bandwidth
// profiling) and the benchmarks (message-count claims of §3.3).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/net/chaos.h"
#include "src/sim/scheduler.h"

namespace fargo::net {

/// Transport-level message types exchanged by Cores (the Peer Interface of
/// Fig 1).
enum class MessageKind : std::uint8_t {
  kInvokeRequest = 0,
  kInvokeReply = 1,
  kMoveRequest = 2,
  kMoveReply = 3,
  kTrackerUpdate = 4,   ///< chain-shortening repoint (§3.1)
  kEventRegister = 5,   ///< remote listener registration (§4.2)
  kEventUnregister = 6,
  kEventNotify = 7,
  kNameRequest = 8,
  kNameReply = 9,
  kNewRequest = 10,     ///< remote complet instantiation
  kNewReply = 11,
  kControl = 12,
  kControlReply = 13,   ///< answer to a control/event-register request
  kRecoveryQuery = 14,  ///< WAL recovery: "did move txn N from me install?"
  kRecoveryReply = 15,
  kBatch = 16,          ///< formation frame carrying several small messages
  kDirectoryPublish = 17,  ///< one-way location publish to a home shard
  kDirectoryLookup = 18,   ///< RPC: "where does the shard say this lives?"
  kDirectoryReply = 19,
  kDirectoryMap = 20,      ///< versioned ShardMap broadcast (higher wins)
};

const char* ToString(MessageKind kind);

/// Identifies one in-flight request within a per-(origin,peer) session
/// (src/net/session.h). Travels on the Message frame, not inside protocol
/// payloads, so forwarding hops can relay it without re-encoding. A
/// default-constructed key (epoch 0) means "no session" — the receiver
/// skips slot admission, which is what idempotent requests want.
struct SessionKey {
  CoreId origin;            ///< session owner (the retrying side)
  CoreId peer;              ///< executor the slot was acquired for
  std::uint64_t epoch = 0;  ///< origin incarnation; 0 = invalid/no session
  std::uint32_t slot = 0;   ///< slot index within the session
  std::uint64_t seq = 0;    ///< per-slot use counter (detects slot reuse)

  bool valid() const { return epoch != 0; }
  friend bool operator==(const SessionKey&, const SessionKey&) = default;
};

/// A Core-to-Core message.
struct Message {
  CoreId from;
  CoreId to;
  MessageKind kind = MessageKind::kControl;
  std::uint64_t correlation = 0;  ///< request/reply matching token
  SessionKey session;             ///< slot-replay key; invalid = sessionless
  std::vector<std::uint8_t> payload;

  std::size_t size() const { return payload.size(); }
};

/// Quality of a directed link.
struct LinkModel {
  SimTime latency = Millis(5);
  double bytes_per_sec = 1.25e6;  ///< 10 Mbit/s default WAN link
  bool up = true;
};

struct LinkStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t dropped = 0;  ///< any reason (link down, chaos, arrival)
};

/// The deterministic message fabric. Cores register a handler; Send()
/// charges the link model and schedules delivery on the shared scheduler.
///
/// Thread safety (FARGO_PARALLEL): the fabric is the one shared artery
/// between localities, so every mutable field is guarded by one mutex.
/// Send() may be called from any locality; delivery is Post()ed to the
/// *destination* Core's home locality, which is how a message crosses an
/// ownership-domain boundary without ever touching foreign Core state
/// directly. Handlers are invoked outside the lock (they re-enter Send).
// fargo: domain(net)
class Network {
 public:
  using Handler = std::function<void(Message)>;

  explicit Network(sim::Scheduler& sched) : sched_(sched) {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Attaches a Core's receive handler.
  void Register(CoreId id, Handler handler);
  /// Detaches a Core; in-flight messages to it are dropped on arrival.
  void Unregister(CoreId id);
  bool IsRegistered(CoreId id) const {
    std::lock_guard<std::mutex> lk(mu_);
    return handlers_.contains(id);
  }

  /// Sets the link model in both directions between `a` and `b`.
  void SetLink(CoreId a, CoreId b, LinkModel model);
  /// Sets a single direction only (asymmetric links).
  void SetLinkOneWay(CoreId from, CoreId to, LinkModel model);
  /// Model used for pairs without an explicit link.
  void SetDefaultLink(LinkModel model) {
    std::lock_guard<std::mutex> lk(mu_);
    default_link_ = model;
  }
  /// Effective model for the directed pair.
  LinkModel GetLink(CoreId from, CoreId to) const;
  /// Cuts or restores both directions.
  void SetPartitioned(CoreId a, CoreId b, bool partitioned);

  /// Fixed framing overhead charged per message (default 64 bytes).
  void SetHeaderBytes(std::size_t n) {
    std::lock_guard<std::mutex> lk(mu_);
    header_bytes_ = n;
  }

  /// Sends `msg`; delivery is scheduled per the link model. Messages on a
  /// down link or to an unregistered Core are counted as dropped.
  void Send(Message msg);

  /// Observability tap: invoked for every message at send time (before
  /// drop/delivery decisions). Used by protocol tests and debug tooling.
  /// Runs under the fabric lock — serialized across localities, so a tap
  /// may append to plain containers; it must not call back into Network.
  using Tap = std::function<void(const Message&)>;
  void SetTap(Tap tap) {
    std::lock_guard<std::mutex> lk(mu_);
    tap_ = std::move(tap);
  }

  /// Drop hook: invoked for every dropped message, after the per-reason
  /// counters update. Keeps the Network monitor-agnostic — the Runtime
  /// installs a hook that feeds the metrics registry.
  using DropHook = std::function<void(const Message&, DropReason)>;
  void SetDropHook(DropHook hook) {
    std::lock_guard<std::mutex> lk(mu_);
    drop_hook_ = std::move(hook);
  }

  /// Copy hook: invoked with the payload size whenever the fabric must
  /// duplicate a message instead of moving it (chaos duplication is the
  /// only such site — the normal Send → chaos → link queue → Deliver path
  /// moves the payload end to end). Feeds `net.bytes_copied`.
  using CopyHook = std::function<void(std::size_t)>;
  void SetCopyHook(CopyHook hook) {
    std::lock_guard<std::mutex> lk(mu_);
    copy_hook_ = std::move(hook);
  }

  // -- fault injection -------------------------------------------------------
  /// Arms `plan` for every directed link and schedules its flaps/crashes.
  /// Scheduled crashes call the crash handler (Runtime installs one that
  /// invokes Core::Crash); without a handler the Core is just detached.
  void SetFaultPlan(const FaultPlan& plan);
  /// Arms `plan` for one directed link only (probabilistic faults; the
  /// plan's scheduled flaps/crashes are ignored here).
  void SetLinkFaultPlan(CoreId from, CoreId to, const FaultPlan& plan);
  /// Disarms all probabilistic fault plans. Already-scheduled flaps and
  /// crashes still fire.
  void ClearFaults() {
    std::lock_guard<std::mutex> lk(mu_);
    chaos_.Disarm();
  }
  /// Direct chaos-engine access (tests, between pumps only in parallel
  /// mode — the engine itself is guarded by the fabric lock during Send).
  ChaosEngine& chaos() { return chaos_; }
  void SetCrashHandler(std::function<void(CoreId)> handler) {
    std::lock_guard<std::mutex> lk(mu_);
    crash_handler_ = std::move(handler);
  }
  /// Handler for scheduled crash+restart cycles (FaultPlan::CoreCrash with
  /// restart_after > 0). The Runtime installs one that calls Core::Restart.
  void SetRestartHandler(std::function<void(CoreId)> handler) {
    std::lock_guard<std::mutex> lk(mu_);
    restart_handler_ = std::move(handler);
  }

  // -- telemetry -------------------------------------------------------------
  LinkStats StatsBetween(CoreId from, CoreId to) const;
  std::uint64_t total_messages() const {
    std::lock_guard<std::mutex> lk(mu_);
    return total_.messages;
  }
  std::uint64_t total_bytes() const {
    std::lock_guard<std::mutex> lk(mu_);
    return total_.bytes;
  }
  /// Total drops, all reasons (sum of the per-reason counters).
  std::uint64_t dropped() const;
  std::uint64_t dropped_by(DropReason reason) const {
    std::lock_guard<std::mutex> lk(mu_);
    return dropped_by_[static_cast<int>(reason)];
  }
  std::uint64_t dropped_link_down() const {
    return dropped_by(DropReason::kLinkDown);
  }
  std::uint64_t dropped_unregistered() const {
    return dropped_by(DropReason::kUnregistered);
  }
  std::uint64_t dropped_chaos() const {
    return dropped_by(DropReason::kChaos);
  }
  std::uint64_t duplicates() const {
    std::lock_guard<std::mutex> lk(mu_);
    return chaos_.stats().duplicates;
  }
  std::uint64_t reorders() const {
    std::lock_guard<std::mutex> lk(mu_);
    return chaos_.stats().reorders;
  }
  /// Per-directed-pair stats, sorted by (from, to) for deterministic output.
  std::vector<std::pair<std::pair<CoreId, CoreId>, LinkStats>> AllLinkStats()
      const;
  void ResetStats();

  sim::Scheduler& scheduler() { return sched_; }

 private:
  using PairKey = std::uint64_t;
  static PairKey Key(CoreId from, CoreId to) {
    return (static_cast<std::uint64_t>(from.value) << 32) | to.value;
  }

  void Deliver(Message msg);
  /// Callers hold mu_.
  void CountDrop(const Message& msg, DropReason reason);
  LinkModel GetLinkLocked(CoreId from, CoreId to) const;

  sim::Scheduler& sched_;
  /// Guards every mutable field below (FARGO_PARALLEL: Send and Deliver
  /// run on locality workers). Handlers/hooks are copied out and invoked
  /// unlocked; the tap runs under the lock (see SetTap).
  mutable std::mutex mu_;
  std::unordered_map<CoreId, Handler> handlers_;
  std::unordered_map<PairKey, LinkModel> links_;
  std::unordered_map<PairKey, LinkStats> stats_;
  LinkModel default_link_;
  LinkStats total_;
  std::uint64_t dropped_by_[kDropReasonCount] = {0, 0, 0};
  std::size_t header_bytes_ = 64;
  Tap tap_;
  DropHook drop_hook_;
  CopyHook copy_hook_;
  ChaosEngine chaos_;
  std::function<void(CoreId)> crash_handler_;
  std::function<void(CoreId)> restart_handler_;
};

}  // namespace fargo::net
