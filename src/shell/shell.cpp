#include "src/shell/shell.h"

#include <istream>
#include <sstream>

#include "src/core/directory.h"
#include "src/core/meta_ref.h"
#include "src/core/relocator.h"
#include "src/core/wal.h"
#include "src/monitor/profiler.h"

namespace fargo::shell {

namespace {

std::vector<std::string> Split(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> words;
  std::string w;
  while (is >> w) words.push_back(w);
  return words;
}

}  // namespace

Shell::Shell(core::Runtime& runtime, core::Core& admin, std::ostream& out)
    : runtime_(runtime),
      admin_(admin),
      out_(out),
      engine_(runtime, admin),
      monitor_(runtime, admin, out) {}

Shell::~Shell() { *alive_ = false; }

core::Core* Shell::ResolveCore(const std::string& token) const {
  if (core::Core* c = runtime_.FindByName(token)) return c;
  std::string t = token;
  if (t.rfind("core:", 0) == 0) t = t.substr(5);
  try {
    return runtime_.Find(CoreId{static_cast<std::uint32_t>(std::stoul(t))});
  } catch (const std::exception&) {
    return nullptr;
  }
}

ComletId Shell::ResolveComlet(const std::string& token) const {
  // Accept "c<origin>.<seq>" or a name bound at any core.
  if (token.size() > 1 && token[0] == 'c' &&
      token.find('.') != std::string::npos) {
    const std::size_t dot = token.find('.');
    try {
      ComletId id;
      id.origin.value =
          static_cast<std::uint32_t>(std::stoul(token.substr(1, dot - 1)));
      id.seq = std::stoull(token.substr(dot + 1));
      if (id.valid()) return id;
    } catch (const std::exception&) {
      // fall through to name lookup
    }
  }
  for (core::Core* c : runtime_.Cores()) {
    if (!c->alive()) continue;
    if (auto h = c->naming().Lookup(token)) return h->id;
  }
  throw FargoError("unknown complet: " + token);
}

core::ComletRefBase Shell::RefToComlet(const std::string& token) {
  const ComletId id = ResolveComlet(token);
  // Find a routing hint: any core hosting or tracking it.
  for (core::Core* c : runtime_.Cores()) {
    if (!c->alive()) continue;
    if (c->repository().Contains(id))
      return admin_.RefFromHandle(ComletHandle{id, c->id(), ""});
  }
  for (core::Core* c : runtime_.Cores()) {
    if (!c->alive()) continue;
    if (const core::TrackerEntry* t = c->trackers().Find(id))
      return admin_.RefFromHandle(
          ComletHandle{id, t->is_local() ? c->id() : t->next, ""});
  }
  throw FargoError("no route to complet " + ToString(id));
}

bool Shell::Execute(const std::string& line) {
  std::vector<std::string> words = Split(line);
  if (words.empty()) return true;
  const std::string cmd = words[0];
  std::vector<std::string> args(words.begin() + 1, words.end());
  try {
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      CmdHelp();
    } else if (cmd == "cores") {
      CmdCores();
    } else if (cmd == "ls") {
      CmdLs(args);
    } else if (cmd == "names") {
      CmdNames(args);
    } else if (cmd == "methods") {
      CmdMethods(args);
    } else if (cmd == "move") {
      CmdMove(args);
    } else if (cmd == "amove") {
      CmdAMove(args);
    } else if (cmd == "post") {
      CmdPost(args);
    } else if (cmd == "reftype") {
      CmdRefType(args, /*set=*/false);
    } else if (cmd == "setref") {
      CmdRefType(args, /*set=*/true);
    } else if (cmd == "profile") {
      CmdProfile(args);
    } else if (cmd == "invoke") {
      CmdInvoke(args);
    } else if (cmd == "gc") {
      CmdGc(args);
    } else if (cmd == "dir") {
      CmdDir();
    } else if (cmd == "link") {
      CmdLink(args);
    } else if (cmd == "net") {
      CmdNet();
    } else if (cmd == "chaos") {
      CmdChaos(args);
    } else if (cmd == "crash") {
      CmdCrash(args);
    } else if (cmd == "wal") {
      CmdWal(args);
    } else if (cmd == "recover") {
      CmdRecover(args);
    } else if (cmd == "heartbeat") {
      CmdHeartbeat(args);
    } else if (cmd == "shutdown") {
      CmdShutdown(args);
    } else if (cmd == "trace") {
      CmdTrace(args);
    } else if (cmd == "sessions") {
      CmdSessions(args);
    } else if (cmd == "stats") {
      CmdStats();
    } else if (cmd == "snapshot") {
      out_ << monitor_.RenderSnapshot();
    } else if (cmd == "script") {
      std::string rest;
      for (std::size_t i = 1; i < words.size(); ++i)
        rest += words[i] + " ";
      engine_.Run(rest);
    } else {
      out_ << "unknown command '" << cmd << "' (try 'help')\n";
    }
  } catch (const std::exception& e) {
    out_ << "error: " << e.what() << "\n";
  }
  return true;
}

void Shell::RunInteractive(std::istream& in, bool prompt) {
  std::string line;
  if (prompt) out_ << "fargo> " << std::flush;
  while (std::getline(in, line)) {
    if (!Execute(line)) break;
    if (prompt) out_ << "fargo> " << std::flush;
  }
}

void Shell::CmdHelp() {
  out_ << "commands: help cores ls names methods move amove reftype setref "
          "profile invoke post gc dir link net chaos crash wal recover "
          "heartbeat shutdown trace sessions stats snapshot script quit\n";
}

void Shell::CmdCores() {
  for (core::Core* c : runtime_.Cores()) {
    out_ << ToString(c->id()) << "  " << c->name() << "  "
         << (c->alive() ? "up" : "down") << "  load="
         << c->repository().size() << "  trackers=" << c->trackers().size()
         << "\n";
  }
}

void Shell::CmdLs(const std::vector<std::string>& args) {
  for (core::Core* c : runtime_.Cores()) {
    if (!c->alive()) continue;
    if (!args.empty() && ResolveCore(args[0]) != c) continue;
    for (ComletId id : c->ComletsHere()) {
      auto anchor = c->repository().Get(id);
      const core::TrackerEntry* te = c->trackers().Find(id);
      out_ << ToString(id) << "  " << (anchor ? anchor->TypeName() : "?")
           << "  @" << c->name() << "  epoch="
           << (te != nullptr ? te->hint_epoch : 0) << "\n";
    }
  }
}

void Shell::CmdNames(const std::vector<std::string>& args) {
  for (core::Core* c : runtime_.Cores()) {
    if (!c->alive()) continue;
    if (!args.empty() && ResolveCore(args[0]) != c) continue;
    for (const auto& [name, handle] : c->naming().All())
      out_ << name << " -> " << ToString(handle.id) << "  @" << c->name()
           << "\n";
  }
}

void Shell::CmdMethods(const std::vector<std::string>& args) {
  if (args.empty()) throw FargoError("usage: methods <comlet>");
  core::ComletRefBase ref = RefToComlet(args[0]);
  Value names = ref.Call("__fargo.methods");
  for (const Value& n : names.AsList()) out_ << n.AsString() << "\n";
}

void Shell::CmdMove(const std::vector<std::string>& args) {
  if (args.size() < 2) throw FargoError("usage: move <comlet> <core>");
  core::Core* dest = ResolveCore(args[1]);
  if (dest == nullptr) throw FargoError("unknown core: " + args[1]);
  core::ComletRefBase ref = RefToComlet(args[0]);
  admin_.Move(ref, dest->id());
  out_ << "moved " << ToString(ref.target()) << " to " << dest->name()
       << "\n";
}

void Shell::CmdAMove(const std::vector<std::string>& args) {
  if (args.size() < 2) throw FargoError("usage: amove <comlet> <core>");
  core::Core* dest = ResolveCore(args[1]);
  if (dest == nullptr) throw FargoError("unknown core: " + args[1]);
  core::ComletRefBase ref = RefToComlet(args[0]);
  const ComletId target = ref.target();
  const std::string dest_name = dest->name();
  admin_.MoveAsync(ref, dest->id())
      .OnSettle([this, alive = alive_, target,
                 dest_name](sim::Future<sim::Unit> f) {
        if (!*alive) return;  // the shell is gone; drop the report
        if (f.ok()) {
          out_ << "amove: " << ToString(target) << " arrived at " << dest_name
               << "\n";
          return;
        }
        try {
          std::rethrow_exception(f.error());
        } catch (const std::exception& e) {
          out_ << "amove: " << ToString(target) << " failed: " << e.what()
               << "\n";
        }
      });
  out_ << "amove: " << ToString(target) << " -> " << dest_name
       << " started\n";
}

void Shell::CmdRefType(const std::vector<std::string>& args, bool set) {
  // reftype <core> <owner-comlet> <target-comlet> [type]
  if (args.size() < (set ? 4u : 3u))
    throw FargoError(set ? "usage: setref <core> <owner> <target> <type>"
                         : "usage: reftype <core> <owner> <target>");
  core::Core* host = ResolveCore(args[0]);
  if (host == nullptr || !host->alive())
    throw FargoError("unknown core: " + args[0]);
  const ComletId owner = ResolveComlet(args[1]);
  const ComletId target = ResolveComlet(args[2]);
  bool found = false;
  for (const core::ComletRefBase* ref : host->RefsOwnedBy(owner)) {
    if (ref->target() != target) continue;
    found = true;
    core::MetaRef& meta = core::Core::GetMetaRef(*ref);
    if (set) {
      meta.SetRelocator(core::MakeRelocator(args[3]));
      out_ << "reference " << ToString(owner) << " -> " << ToString(target)
           << " set to " << args[3] << "\n";
    } else {
      out_ << ToString(owner) << " -> " << ToString(target) << " : "
           << meta.GetRelocator()->Kind()
           << " (invocations=" << meta.invocation_count() << ")\n";
    }
  }
  if (!found)
    out_ << "no live reference " << ToString(owner) << " -> "
         << ToString(target) << " at " << host->name() << "\n";
}

void Shell::CmdProfile(const std::vector<std::string>& args) {
  if (args.empty())
    throw FargoError(
        "usage: profile <service> <core> [peer|comlet...] — e.g. profile "
        "completLoad acadia | profile bandwidth acadia denali");
  const monitor::Service service = monitor::ParseService(args[0]);
  if (args.size() < 2) throw FargoError("profile: missing core");
  core::Core* where = ResolveCore(args[1]);
  if (where == nullptr || !where->alive())
    throw FargoError("unknown core: " + args[1]);
  monitor::ProbeKey key;
  key.service = service;
  switch (service) {
    case monitor::Service::kBandwidth:
    case monitor::Service::kLatency:
    case monitor::Service::kThroughput:
    case monitor::Service::kMessageRate: {
      if (args.size() < 3) throw FargoError("profile: missing peer core");
      core::Core* peer = ResolveCore(args[2]);
      if (peer == nullptr) throw FargoError("unknown core: " + args[2]);
      key.peer = peer->id();
      break;
    }
    case monitor::Service::kComletSize:
      if (args.size() < 3) throw FargoError("profile: missing comlet");
      key.a = ResolveComlet(args[2]);
      break;
    case monitor::Service::kInvocationRate:
      if (args.size() < 4) throw FargoError("profile: missing comlet pair");
      key.a = ResolveComlet(args[2]);
      key.b = ResolveComlet(args[3]);
      break;
    // Core-wide gauges take no extra arguments.
    case monitor::Service::kComletLoad:
    case monitor::Service::kMemoryUse:
      break;
  }
  out_ << ToString(key) << " @" << where->name() << " = "
       << where->profiler().Instant(key) << "\n";
}

std::vector<Value> Shell::ParseCallArgs(const std::vector<std::string>& args,
                                        std::size_t from) {
  std::vector<Value> call_args;
  for (std::size_t i = from; i < args.size(); ++i) {
    try {
      std::size_t used = 0;
      double d = std::stod(args[i], &used);
      if (used == args[i].size()) {
        if (d == static_cast<double>(static_cast<std::int64_t>(d)))
          call_args.push_back(Value(static_cast<std::int64_t>(d)));
        else
          call_args.push_back(Value(d));
        continue;
      }
    } catch (const std::exception&) {
      // not a number
    }
    call_args.push_back(Value(args[i]));
  }
  return call_args;
}

void Shell::CmdInvoke(const std::vector<std::string>& args) {
  if (args.size() < 2) throw FargoError("usage: invoke <comlet> <method> [args]");
  core::ComletRefBase ref = RefToComlet(args[0]);
  Value result = ref.Call(args[1], ParseCallArgs(args, 2));
  out_ << result.ToDebugString() << "\n";
}

void Shell::CmdPost(const std::vector<std::string>& args) {
  if (args.size() < 2) throw FargoError("usage: post <comlet> <method> [args]");
  core::ComletRefBase ref = RefToComlet(args[0]);
  ref.Post(args[1], ParseCallArgs(args, 2));
  out_ << "posted " << args[1] << " to " << ToString(ref.target()) << "\n";
}

void Shell::CmdGc(const std::vector<std::string>& args) {
  for (core::Core* c : runtime_.Cores()) {
    if (!c->alive()) continue;
    if (!args.empty() && ResolveCore(args[0]) != c) continue;
    out_ << c->name() << ": reclaimed " << c->trackers().CollectGarbage()
         << " trackers\n";
  }
}

void Shell::CmdDir() {
  const core::DirectoryMode mode = runtime_.directory_mode();
  const char* mode_name = mode == core::DirectoryMode::kSharded ? "sharded"
                          : mode == core::DirectoryMode::kOrigin
                              ? "origin"
                              : "disabled";
  out_ << "mode=" << mode_name;
  if (mode == core::DirectoryMode::kSharded) {
    const core::ShardMap& map = runtime_.shard_map();
    out_ << " map_version=" << map.version << " shards=" << map.shard_count()
         << " vnodes=" << map.vnodes;
  }
  out_ << "\n";
  if (mode != core::DirectoryMode::kDisabled) {
    for (core::Core* c : runtime_.Cores()) {
      if (!c->alive()) continue;
      const std::size_t entries = c->directory().store().size();
      if (mode == core::DirectoryMode::kSharded || entries > 0)
        out_ << "  shard @" << c->name() << ": entries=" << entries << "\n";
    }
  }
  const monitor::Registry& reg = runtime_.metrics();
  out_ << "  publishes=" << reg.CounterValue("dir.publishes")
       << " lookups=" << reg.CounterValue("dir.lookups")
       << " hint_hit=" << reg.CounterValue("dir.hint.hit")
       << " hint_miss=" << reg.CounterValue("dir.hint.miss")
       << " hint_stale=" << reg.CounterValue("dir.hint.stale") << "\n";
}

void Shell::CmdLink(const std::vector<std::string>& args) {
  if (args.size() < 4)
    throw FargoError("usage: link <coreA> <coreB> <latency_ms> <mbit_per_s>");
  core::Core* a = ResolveCore(args[0]);
  core::Core* b = ResolveCore(args[1]);
  if (a == nullptr || b == nullptr) throw FargoError("unknown core");
  net::LinkModel model;
  model.latency = static_cast<SimTime>(std::stod(args[2]) * 1e6);
  model.bytes_per_sec = std::stod(args[3]) * 1e6 / 8.0;
  runtime_.network().SetLink(a->id(), b->id(), model);
  out_ << "link " << a->name() << " <-> " << b->name() << ": "
       << std::stod(args[2]) << " ms, " << args[3] << " Mbit/s\n";
}

void Shell::CmdNet() {
  net::Network& net = runtime_.network();
  out_ << "messages=" << net.total_messages() << " bytes=" << net.total_bytes()
       << " dropped=" << net.dropped() << "\n";
  out_ << "  drops: link_down=" << net.dropped_link_down()
       << " unregistered=" << net.dropped_unregistered()
       << " chaos=" << net.dropped_chaos() << "\n";
  out_ << "  chaos: " << (net.chaos().armed() ? "armed" : "off")
       << " duplicates=" << net.duplicates() << " reorders=" << net.reorders()
       << "\n";
  for (const auto& [link, stats] : net.AllLinkStats()) {
    core::Core* a = runtime_.Find(link.first);
    core::Core* b = runtime_.Find(link.second);
    out_ << "  " << (a ? a->name() : ToString(link.first)) << " -> "
         << (b ? b->name() : ToString(link.second))
         << ": messages=" << stats.messages << " bytes=" << stats.bytes
         << " dropped=" << stats.dropped << "\n";
  }
}

void Shell::CmdChaos(const std::vector<std::string>& args) {
  if (args.size() == 1 && args[0] == "off") {
    runtime_.network().ClearFaults();
    out_ << "chaos off\n";
    return;
  }
  if (args.size() < 3)
    throw FargoError(
        "usage: chaos <drop> <dup> <reorder> [seed] | chaos off");
  net::FaultPlan plan;
  plan.drop = std::stod(args[0]);
  plan.duplicate = std::stod(args[1]);
  plan.reorder = std::stod(args[2]);
  if (args.size() > 3) plan.seed = std::stoull(args[3]);
  runtime_.network().SetFaultPlan(plan);
  out_ << "chaos armed: drop=" << plan.drop << " dup=" << plan.duplicate
       << " reorder=" << plan.reorder << " seed=" << plan.seed << "\n";
}

void Shell::CmdCrash(const std::vector<std::string>& args) {
  if (args.empty()) throw FargoError("usage: crash <core>");
  core::Core* c = ResolveCore(args[0]);
  if (c == nullptr) throw FargoError("unknown core: " + args[0]);
  c->Crash();
  out_ << c->name() << " crashed\n";
}

void Shell::CmdWal(const std::vector<std::string>& args) {
  if (args.empty())
    throw FargoError("usage: wal <core> [on [interval_ms] | checkpoint]");
  core::Core* c = ResolveCore(args[0]);
  if (c == nullptr) throw FargoError("unknown core: " + args[0]);
  if (args.size() >= 2 && args[1] == "on") {
    const SimTime interval = args.size() >= 3
                                 ? static_cast<SimTime>(std::stod(args[2]) * 1e6)
                                 : Millis(250);
    c->EnableWal(interval);
    out_ << c->name() << ": durable (checkpoint every "
         << static_cast<double>(interval) / 1e6 << " ms)\n";
    return;
  }
  core::Wal* wal = c->wal();
  if (wal == nullptr) {
    out_ << c->name() << ": not durable (try 'wal " << args[0] << " on')\n";
    return;
  }
  if (args.size() >= 2 && args[1] == "checkpoint") {
    wal->Checkpoint();
    out_ << c->name() << ": checkpoint scheduled\n";
    return;
  }
  out_ << c->name() << ": log " << wal->log_name() << "\n"
       << "  appended: " << wal->records_appended() << " records, "
       << wal->bytes_appended() << " bytes\n"
       << "  durable:  " << wal->durable_records() << " records, "
       << wal->durable_bytes() << " bytes\n"
       << "  checkpoints=" << wal->checkpoints()
       << " recoveries=" << wal->recoveries()
       << " replayed=" << wal->records_replayed()
       << " open_moves=" << wal->open_txns() << "\n";
}

void Shell::CmdRecover(const std::vector<std::string>& args) {
  if (args.empty()) throw FargoError("usage: recover <core>");
  core::Core* c = ResolveCore(args[0]);
  if (c == nullptr) throw FargoError("unknown core: " + args[0]);
  if (c->alive()) {
    out_ << c->name() << " is already up\n";
    return;
  }
  c->Restart();
  out_ << c->name() << " restarted"
       << (c->wal() ? " (log replay scheduled)" : " (no log; state lost)")
       << "\n";
}

void Shell::CmdHeartbeat(const std::vector<std::string>& args) {
  if (args.empty())
    throw FargoError(
        "usage: heartbeat <core> <interval_ms> <missed> | heartbeat <core> "
        "off");
  core::Core* c = ResolveCore(args[0]);
  if (c == nullptr || !c->alive()) throw FargoError("unknown core: " + args[0]);
  if (args.size() >= 2 && args[1] == "off") {
    c->DisableHeartbeat();
    out_ << c->name() << ": heartbeat off\n";
    return;
  }
  if (args.size() < 3)
    throw FargoError(
        "usage: heartbeat <core> <interval_ms> <missed> | heartbeat <core> "
        "off");
  const SimTime interval = static_cast<SimTime>(std::stod(args[1]) * 1e6);
  const int missed = std::stoi(args[2]);
  c->EnableHeartbeat(interval, missed);
  out_ << c->name() << ": heartbeat every " << std::stod(args[1])
       << " ms, suspect after " << missed << " misses\n";
}

void Shell::CmdShutdown(const std::vector<std::string>& args) {
  if (args.empty()) throw FargoError("usage: shutdown <core>");
  core::Core* c = ResolveCore(args[0]);
  if (c == nullptr) throw FargoError("unknown core: " + args[0]);
  c->Shutdown();
  out_ << c->name() << " down\n";
}

void Shell::CmdTrace(const std::vector<std::string>& args) {
  if (args.empty()) throw FargoError("usage: trace on|off|dump [path]");
  if (args[0] == "on") {
    runtime_.SetTracing(true);
    out_ << "tracing on\n";
  } else if (args[0] == "off") {
    runtime_.SetTracing(false);
    out_ << "tracing off\n";
  } else if (args[0] == "dump") {
    const std::string path = args.size() > 1 ? args[1] : "fargo-trace.json";
    const std::size_t events = runtime_.DumpTrace(path);
    out_ << "wrote " << events << " spans to " << path
         << " (load in chrome://tracing or Perfetto)\n";
  } else {
    throw FargoError("usage: trace on|off|dump [path]");
  }
}

void Shell::CmdSessions(const std::vector<std::string>& args) {
  std::vector<core::Core*> cores;
  if (!args.empty()) {
    core::Core* c = ResolveCore(args[0]);
    if (c == nullptr) throw FargoError("unknown core: " + args[0]);
    cores.push_back(c);
  } else {
    cores = runtime_.Cores();
  }
  for (core::Core* c : cores) {
    out_ << c->name() << " (" << ToString(c->id()) << ")"
         << (c->alive() ? "" : " [DOWN]") << "\n";
    if (!c->alive()) continue;
    const net::SessionPool& pool = c->sessions();
    out_ << "  origin: epoch=" << pool.epoch()
         << " sessions=" << pool.session_count()
         << " slots=" << pool.slots_allocated()
         << " in_flight=" << pool.slots_in_flight() << "\n";
    const net::ReplayDirectory& replay = c->replay();
    out_ << "  executor: windows=" << replay.window_count()
         << " slots=" << replay.slot_count()
         << " replays=" << replay.replays()
         << " suppressed=" << replay.suppressed()
         << " stale=" << replay.stale_drops() << "\n";
    for (const std::string& line : replay.Describe())
      out_ << "    " << line << "\n";
    const net::Formation& f = c->formation();
    out_ << "  formation: flushes=" << f.flushes() << " frames=" << f.frames()
         << " batched=" << f.batched_items()
         << " singles=" << f.single_sends() << " queued=" << f.queued()
         << "\n";
  }
}

void Shell::CmdStats() { runtime_.metrics().Dump(out_); }

}  // namespace fargo::shell
