// The FarGo administrative shell (§3: "a command-line shell for
// administering remote Cores" — a system complet in the paper).
//
// Commands:
//   help                          — list commands
//   cores                         — list cores with load
//   ls [<core>]                   — complets at a core (default: all)
//   names [<core>]                — name bindings
//   methods <comlet>              — remotely invocable methods
//   move <comlet> <core>          — relocate a complet (drag-and-drop analog)
//   amove <comlet> <core>         — start the move and return at once; the
//                                   outcome is printed when it settles
//   post <comlet> <method> [args...]
//                                 — one-way invocation (no reply expected)
//   reftype <core> <from> <to>    — show the relocation type between complets
//   setref <core> <from> <to> <link|pull|duplicate|stamp>
//                                 — change a reference's relocation type
//   profile <service> ...         — instant profiling readout
//   invoke <comlet> <method> [args...]
//   gc [<core>]                   — collect unreferenced trackers
//   dir                           — directory plane: mode, shard map
//                                   version/owners, per-shard entry counts,
//                                   hint hit/miss/stale counters
//   link <coreA> <coreB> <lat_ms> <mbit>   — reshape a network link
//   net                           — network counters (drops by reason,
//                                   chaos stats, per-link traffic)
//   chaos <drop> <dup> <reorder> [seed] | chaos off
//                                 — arm/disarm global fault injection
//   crash <core>                  — kill a core abruptly (no shutdown
//                                   protocol; trackers are left dangling)
//   wal <core>                    — durability stats for a core's log
//   wal <core> on [interval_ms]   — make a core durable (write-ahead log +
//                                   periodic checkpoint)
//   wal <core> checkpoint         — checkpoint + truncate the log now
//   recover <core>                — restart a crashed core (replays its
//                                   log if it was durable)
//   heartbeat <core> <interval_ms> <missed> | heartbeat <core> off
//                                 — start/stop the failure detector
//   shutdown <core>               — announce shutdown of a core
//   trace on|off|dump [path]      — toggle causal tracing / export the
//                                   recorded spans as Chrome-trace JSON
//   sessions [<core>]             — RPC session / slot-replay / formation
//                                   stats (default: every live core)
//   stats                         — dump the metrics registry (counters,
//                                   gauges, histograms)
//   snapshot                      — render the deployment (text monitor)
//   script <text...>              — run an inline layout script
//   quit
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/runtime.h"
#include "src/script/interp.h"
#include "src/shell/text_monitor.h"

namespace fargo::shell {

class Shell {
 public:
  Shell(core::Runtime& runtime, core::Core& admin, std::ostream& out);
  ~Shell();

  /// Executes one command line. Returns false when the shell should exit.
  bool Execute(const std::string& line);

  /// Reads and executes lines from `in` until EOF or `quit`.
  void RunInteractive(std::istream& in, bool prompt = true);

 private:
  core::Core* ResolveCore(const std::string& token) const;
  ComletId ResolveComlet(const std::string& token) const;
  core::ComletRefBase RefToComlet(const std::string& token);

  void CmdHelp();
  void CmdCores();
  void CmdLs(const std::vector<std::string>& args);
  void CmdNames(const std::vector<std::string>& args);
  void CmdMethods(const std::vector<std::string>& args);
  void CmdMove(const std::vector<std::string>& args);
  void CmdAMove(const std::vector<std::string>& args);
  void CmdRefType(const std::vector<std::string>& args, bool set);
  void CmdProfile(const std::vector<std::string>& args);
  void CmdInvoke(const std::vector<std::string>& args);
  void CmdPost(const std::vector<std::string>& args);
  /// Shell-token → Value conversion shared by invoke/post (numbers become
  /// ints/reals, everything else strings).
  static std::vector<Value> ParseCallArgs(const std::vector<std::string>& args,
                                          std::size_t from);
  void CmdGc(const std::vector<std::string>& args);
  void CmdDir();
  void CmdLink(const std::vector<std::string>& args);
  void CmdNet();
  void CmdChaos(const std::vector<std::string>& args);
  void CmdCrash(const std::vector<std::string>& args);
  void CmdWal(const std::vector<std::string>& args);
  void CmdRecover(const std::vector<std::string>& args);
  void CmdHeartbeat(const std::vector<std::string>& args);
  void CmdShutdown(const std::vector<std::string>& args);
  void CmdTrace(const std::vector<std::string>& args);
  void CmdSessions(const std::vector<std::string>& args);
  void CmdStats();

  core::Runtime& runtime_;
  core::Core& admin_;
  std::ostream& out_;
  script::Engine engine_;
  TextMonitor monitor_;
  /// Keepalive flag captured by async completions (amove): the shell may be
  /// destroyed while a move is still in flight, and the continuation must
  /// not touch `out_` through a dangling `this`.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace fargo::shell
