#include "src/shell/text_monitor.h"

#include <iomanip>
#include <sstream>

namespace fargo::shell {

TextMonitor::TextMonitor(core::Runtime& runtime, core::Core& admin,
                         std::ostream& out)
    : runtime_(runtime), admin_(admin), out_(out) {}

TextMonitor::~TextMonitor() {
  *alive_ = false;
  try {
    Detach();
  } catch (...) {
    // Detaching from dead cores is best-effort.
  }
}

void TextMonitor::Attach() {
  for (core::Core* c : runtime_.Cores()) {
    if (!c->alive()) continue;
    for (monitor::EventKind kind :
         {monitor::EventKind::kComletArrived,
          monitor::EventKind::kComletDeparted,
          monitor::EventKind::kCoreShutdown,
          monitor::EventKind::kCoreUnreachable,
          monitor::EventKind::kCoreRecovered}) {
      tokens_.push_back(admin_.ListenAt(
          c->id(), kind, [this, alive = alive_](const monitor::Event& e) {
            if (*alive) OnEvent(e);
          }));
    }
  }
}

void TextMonitor::Detach() {
  for (monitor::SubId token : tokens_) admin_.UnlistenAt(token);
  tokens_.clear();
}

void TextMonitor::OnEvent(const monitor::Event& e) {
  ++events_seen_;
  if (!live_) return;
  core::Core* c = runtime_.Find(e.source);
  const std::string where = c != nullptr ? c->name() : ToString(e.source);
  switch (e.kind) {
    case monitor::EventKind::kComletArrived:
      out_ << "[monitor] + " << ToString(e.comlet) << " arrived at " << where
           << "\n";
      break;
    case monitor::EventKind::kComletDeparted:
      out_ << "[monitor] - " << ToString(e.comlet) << " departed from "
           << where << "\n";
      break;
    case monitor::EventKind::kCoreShutdown:
      out_ << "[monitor] ! core " << where << " shutting down\n";
      break;
    case monitor::EventKind::kCoreUnreachable: {
      core::Core* peer = runtime_.Find(e.peer);
      out_ << "[monitor] ! core "
           << (peer != nullptr ? peer->name() : ToString(e.peer))
           << " unreachable (detected by " << where << ")\n";
      break;
    }
    case monitor::EventKind::kCoreRecovered: {
      core::Core* peer = runtime_.Find(e.peer);
      out_ << "[monitor] ! core "
           << (peer != nullptr ? peer->name() : ToString(e.peer))
           << " recovered (detected by " << where << ")\n";
      break;
    }
    case monitor::EventKind::kThreshold:
      out_ << "[monitor] ~ " << ToString(e.probe) << " = " << e.value
           << " at " << where << "\n";
      break;
    case monitor::EventKind::kComletRestoreSkipped:
      out_ << "[monitor] = " << ToString(e.comlet) << " restore skipped at "
           << where << " (live copy kept)\n";
      break;
  }
}

std::string TextMonitor::RenderSnapshot() const {
  std::ostringstream os;
  os << "=== deployment @ t=" << std::fixed << std::setprecision(3)
     << ToMillis(runtime_.Now()) << " ms ===\n";
  // Headline gauges: traffic from the network, machinery counters from the
  // metrics registry (see `stats` for the full dump).
  const monitor::Registry& reg = runtime_.metrics();
  const net::Network& net = runtime_.network();
  os << "messages=" << net.total_messages()
     << " drops=" << reg.CounterValue("net.drops")
     << " invocations=" << reg.CounterValue("invoke.count")
     << " retries=" << reg.CounterValue("rpc.retries")
     << " dup_hits="
     << reg.CounterValue("session.replays") +
            reg.CounterValue("session.suppressed")
     << " moves=" << reg.CounterValue("move.count") << "\n";
  for (core::Core* c : runtime_.Cores()) {
    os << c->name() << " (" << ToString(c->id()) << ")"
       << (c->alive() ? "" : " [DOWN]") << "\n";
    if (!c->alive()) continue;
    for (ComletId id : c->ComletsHere()) {
      auto anchor = c->repository().Get(id);
      os << "  " << ToString(id) << "  " << (anchor ? anchor->TypeName() : "?");
      // Show name bindings pointing at this complet.
      for (const auto& [name, handle] : c->naming().All())
        if (handle.id == id) os << "  <" << name << ">";
      os << "\n";
      // Complet references with their relocation semantics (Fig 4's
      // reference-property view).
      for (const core::ComletRefBase* ref : c->RefsOwnedBy(id)) {
        os << "    -> " << ToString(ref->target()) << " ["
           << ref->meta()->GetRelocator()->Kind()
           << ", invocations=" << ref->meta()->invocation_count() << "]\n";
      }
    }
    for (const core::TrackerEntry* t : c->trackers().All()) {
      if (t->is_local()) continue;
      os << "  tracker " << ToString(t->target) << " -> "
         << ToString(t->next) << " (stubs=" << t->stub_refs
         << ", forwarded=" << t->forwarded << ")\n";
    }
  }
  return os.str();
}

}  // namespace fargo::shell
