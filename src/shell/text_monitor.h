// Terminal layout monitor — the substitute for the paper's graphical
// monitor (Fig 4; see DESIGN.md §2).
//
// Like the GUI, it connects to multiple Cores, shows which complets reside
// in which Cores in real time (by listening to arrival/departure/shutdown
// events at every inspected Core), and exposes the same inspection data:
// complet references, their relocation types, and profiling figures.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/runtime.h"
#include "src/monitor/events.h"

namespace fargo::shell {

class TextMonitor {
 public:
  /// Observes all Cores of `runtime`, issuing subscriptions from `admin`.
  TextMonitor(core::Runtime& runtime, core::Core& admin, std::ostream& out);
  ~TextMonitor();
  TextMonitor(const TextMonitor&) = delete;
  TextMonitor& operator=(const TextMonitor&) = delete;

  /// Subscribes to layout events on every (alive) Core; live updates print
  /// one line per event as they happen.
  void Attach();
  void Detach();

  /// When false, events are recorded but not printed.
  void SetLive(bool live) { live_ = live; }

  /// Renders the current deployment: each Core with its complets, tracker
  /// table and name bindings.
  std::string RenderSnapshot() const;

  std::uint64_t events_seen() const { return events_seen_; }

 private:
  void OnEvent(const monitor::Event& e);

  core::Runtime& runtime_;
  core::Core& admin_;
  std::ostream& out_;
  bool live_ = true;
  /// Liveness token for in-flight notifications (see script::Engine).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::vector<monitor::SubId> tokens_;
  std::uint64_t events_seen_ = 0;
};

}  // namespace fargo::shell
