// Umbrella header: the FarGo public API.
//
// Quick tour (see README.md and examples/):
//   core::Runtime  — the deployment space (scheduler + network + Cores)
//   core::Core     — a stationary runtime node hosting complets
//   core::Anchor   — base class of complet anchors (your components)
//   core::ComletRef<T> — a stub: a movement-tracking complet reference
//   core::Link/Pull/Duplicate/Stamp — relocation semantics (set via MetaRef)
//   monitor::Profiler / monitor::EventBus — §4 monitoring & events
//   script::Engine — the layout scripting language
//   shell::Shell / shell::TextMonitor — administration tools
#pragma once

#include "src/common/ids.h"
#include "src/common/log.h"
#include "src/common/time.h"
#include "src/common/value.h"
#include "src/core/anchor.h"
#include "src/core/core.h"
#include "src/core/invocation.h"
#include "src/core/meta_ref.h"
#include "src/core/movement.h"
#include "src/core/naming.h"
#include "src/core/persistence.h"
#include "src/core/ref.h"
#include "src/core/relocator.h"
#include "src/core/repository.h"
#include "src/core/runtime.h"
#include "src/core/tracker.h"
#include "src/monitor/ema.h"
#include "src/monitor/events.h"
#include "src/monitor/probe.h"
#include "src/monitor/profiler.h"
#include "src/net/network.h"
#include "src/script/interp.h"
#include "src/serial/graph.h"
#include "src/serial/registry.h"
#include "src/serial/value_codec.h"
#include "src/shell/shell.h"
#include "src/shell/text_monitor.h"
#include "src/sim/scheduler.h"
