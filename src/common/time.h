// Virtual-time primitives for the discrete-event runtime.
//
// The paper's FarGo runs on wall-clock time over RMI; this reproduction runs
// all Cores on one deterministic simulated clock so tests and benchmarks are
// reproducible (see DESIGN.md, substitution table). All durations and
// timestamps are integer nanoseconds of simulated time.
#pragma once

#include <cstdint>

namespace fargo {

/// Simulated time, in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// Duration helpers (all return nanoseconds).
constexpr SimTime Nanos(std::int64_t n) { return n; }
constexpr SimTime Micros(std::int64_t n) { return n * 1'000; }
constexpr SimTime Millis(std::int64_t n) { return n * 1'000'000; }
constexpr SimTime Seconds(std::int64_t n) { return n * 1'000'000'000; }

/// Converts a simulated timestamp/duration to (floating) seconds.
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e9; }
/// Converts a simulated timestamp/duration to (floating) milliseconds.
constexpr double ToMillis(SimTime t) { return static_cast<double>(t) / 1e6; }

}  // namespace fargo
