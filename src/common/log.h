// Minimal leveled logging for the runtime. Off (kWarn) by default so tests
// and benchmarks stay quiet; the shell and examples raise the level.
#pragma once

#include <sstream>
#include <string>

namespace fargo {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace detail {
void Emit(LogLevel level, const std::string& message);
}

/// Streams a log record at `level`; cheap no-op when below the global level.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level), enabled_(level >= GetLogLevel()) {}
  ~LogLine() {
    if (enabled_) detail::Emit(level_, os_.str());
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <class T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream os_;
};

inline LogLine LogTrace() { return LogLine(LogLevel::kTrace); }
inline LogLine LogDebug() { return LogLine(LogLevel::kDebug); }
inline LogLine LogInfo() { return LogLine(LogLevel::kInfo); }
inline LogLine LogWarn() { return LogLine(LogLevel::kWarn); }
inline LogLine LogError() { return LogLine(LogLevel::kError); }

}  // namespace fargo
