#include "src/common/ids.h"

namespace fargo {

std::string ToString(CoreId id) { return "core:" + std::to_string(id.value); }

std::string ToString(ComletId id) {
  return "c" + std::to_string(id.origin.value) + "." + std::to_string(id.seq);
}

}  // namespace fargo
