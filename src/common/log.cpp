#include "src/common/log.h"

#include <cstdio>

namespace fargo {

namespace {
LogLevel g_level = LogLevel::kWarn;
const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace detail {
void Emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[fargo %s] %s\n", LevelName(level), message.c_str());
}
}  // namespace detail

}  // namespace fargo
