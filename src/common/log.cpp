#include "src/common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace fargo {

namespace {
// Atomic: locality workers check the level on every LogLine; the shell
// may raise it concurrently only between pumps, but TSan sees the reads.
std::atomic<LogLevel> g_level{LogLevel::kWarn};
const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void Emit(LogLevel level, const std::string& message) {
  // Serialize whole lines across locality workers.
  static std::mutex mu;
  std::lock_guard<std::mutex> lk(mu);
  std::fprintf(stderr, "[fargo %s] %s\n", LevelName(level), message.c_str());
}
}  // namespace detail

}  // namespace fargo
