// Strongly-typed identifiers used throughout the FarGo runtime.
//
// A Core is a stationary runtime node (one "JVM process" in the paper).
// A complet is the unit of relocation; its identity is global and stable
// across moves: (origin core, per-core sequence number).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace fargo {

/// Identifier of a Core (a stationary runtime node).
struct CoreId {
  std::uint32_t value = 0;

  constexpr bool valid() const { return value != 0; }
  friend constexpr auto operator<=>(CoreId, CoreId) = default;
};

/// Globally unique, location-independent identity of a complet instance.
/// Assigned at instantiation time by the instantiating Core and never
/// changed by movement.
struct ComletId {
  CoreId origin;           ///< Core that instantiated the complet.
  std::uint64_t seq = 0;   ///< Per-origin sequence number.

  constexpr bool valid() const { return origin.valid(); }
  friend constexpr auto operator<=>(ComletId, ComletId) = default;
};

/// Renders "core:3" style identifiers for logs and the shell.
std::string ToString(CoreId id);
/// Renders "c3.17" style identifiers for logs and the shell.
std::string ToString(ComletId id);

}  // namespace fargo

template <>
struct std::hash<fargo::CoreId> {
  std::size_t operator()(fargo::CoreId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<fargo::ComletId> {
  std::size_t operator()(fargo::ComletId id) const noexcept {
    // splitmix-style combine; ids are small so this is plenty.
    std::uint64_t x = (std::uint64_t{id.origin.value} << 40) ^ id.seq;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return static_cast<std::size_t>(x);
  }
};
