// The runtime's wire-level value model.
//
// All cross-complet method invocations carry `Value` arguments and return a
// `Value`. This realizes the paper's parameter-passing semantics (§3.1):
//   - regular data: passed by value (scalars, strings, lists, maps, and
//     whole serialized object graphs as ObjectBlob);
//   - complets (anchors): passed by reference as a ComletHandle, which the
//     receiving Core re-binds to a local tracker with the reference type
//     degraded to `link`.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/common/ids.h"

namespace fargo {

/// Raised on Value type mismatches and other programmer-visible misuse.
class TypeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Raised for operational failures of the runtime (unknown complet, core
/// down, movement refused, ...).
class FargoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Transport-level failure: the peer (or the route to it) is gone, the
/// request was never executed. Distinct from application errors so callers
/// (and the home-registry retry) can safely re-route and retry.
class UnreachableError : public FargoError {
 public:
  using FargoError::FargoError;
};

/// A by-reference handle to a complet, as carried across the wire. The
/// `last_known` core is only a routing hint: the tracker chain starting at
/// that core finds the complet wherever it currently lives.
struct ComletHandle {
  ComletId id;
  CoreId last_known;
  std::string anchor_type;  ///< Registered type name of the anchor class.

  friend bool operator==(const ComletHandle&, const ComletHandle&) = default;
};

/// A serialized object graph passed by value. Produced by the serialization
/// substrate; embedded complet references inside the graph are encoded as
/// ComletHandles (never the complets themselves), per §3.1.
struct ObjectBlob {
  std::string type_name;  ///< Root object's registered type name.
  std::vector<std::uint8_t> bytes;

  friend bool operator==(const ObjectBlob&, const ObjectBlob&) = default;
};

/// Variant value used for invocation arguments, return values, profiling
/// samples and script variables.
class Value {
 public:
  using List = std::vector<Value>;
  using Map = std::map<std::string, Value>;

  Value() = default;  // null
  Value(bool b) : v_(b) {}
  Value(std::int64_t i) : v_(i) {}
  Value(int i) : v_(std::int64_t{i}) {}
  Value(double d) : v_(d) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(std::vector<std::uint8_t> bytes) : v_(std::move(bytes)) {}
  Value(List l) : v_(std::move(l)) {}
  Value(Map m) : v_(std::move(m)) {}
  Value(ComletHandle h) : v_(std::move(h)) {}
  Value(ObjectBlob b) : v_(std::move(b)) {}

  bool IsNull() const { return std::holds_alternative<std::monostate>(v_); }
  bool IsBool() const { return std::holds_alternative<bool>(v_); }
  bool IsInt() const { return std::holds_alternative<std::int64_t>(v_); }
  bool IsReal() const { return std::holds_alternative<double>(v_); }
  bool IsString() const { return std::holds_alternative<std::string>(v_); }
  bool IsBytes() const {
    return std::holds_alternative<std::vector<std::uint8_t>>(v_);
  }
  bool IsList() const { return std::holds_alternative<List>(v_); }
  bool IsMap() const { return std::holds_alternative<Map>(v_); }
  bool IsHandle() const { return std::holds_alternative<ComletHandle>(v_); }
  bool IsBlob() const { return std::holds_alternative<ObjectBlob>(v_); }

  bool AsBool() const { return Get<bool>("bool"); }
  std::int64_t AsInt() const { return Get<std::int64_t>("int"); }
  /// Numeric accessor: accepts both int and real payloads.
  double AsReal() const;
  const std::string& AsString() const { return Get<std::string>("string"); }
  const std::vector<std::uint8_t>& AsBytes() const {
    return Get<std::vector<std::uint8_t>>("bytes");
  }
  const List& AsList() const { return Get<List>("list"); }
  const Map& AsMap() const { return Get<Map>("map"); }
  const ComletHandle& AsHandle() const {
    return Get<ComletHandle>("comlet handle");
  }
  const ObjectBlob& AsBlob() const { return Get<ObjectBlob>("object blob"); }

  List& MutableList() { return GetMutable<List>("list"); }
  Map& MutableMap() { return GetMutable<Map>("map"); }

  /// Wire-format tag, also used by the codec in src/serial.
  enum class Tag : std::uint8_t {
    kNull = 0,
    kBool = 1,
    kInt = 2,
    kReal = 3,
    kString = 4,
    kBytes = 5,
    kList = 6,
    kMap = 7,
    kHandle = 8,
    kBlob = 9,
  };
  Tag tag() const { return static_cast<Tag>(v_.index()); }

  /// Human-readable rendering for the shell and logs.
  std::string ToDebugString() const;

  friend bool operator==(const Value&, const Value&) = default;

 private:
  template <class T>
  const T& Get(const char* what) const {
    if (const T* p = std::get_if<T>(&v_)) return *p;
    throw TypeError(std::string("Value is not a ") + what + ": " +
                    ToDebugString());
  }
  template <class T>
  T& GetMutable(const char* what) {
    if (T* p = std::get_if<T>(&v_)) return *p;
    throw TypeError(std::string("Value is not a ") + what + ": " +
                    ToDebugString());
  }

  std::variant<std::monostate, bool, std::int64_t, double, std::string,
               std::vector<std::uint8_t>, List, Map, ComletHandle, ObjectBlob>
      v_;
};

}  // namespace fargo
