#include "src/common/value.h"

#include <sstream>

namespace fargo {

double Value::AsReal() const {
  if (const double* d = std::get_if<double>(&v_)) return *d;
  if (const std::int64_t* i = std::get_if<std::int64_t>(&v_))
    return static_cast<double>(*i);
  throw TypeError("Value is not numeric: " + ToDebugString());
}

std::string Value::ToDebugString() const {
  std::ostringstream os;
  switch (tag()) {
    case Tag::kNull:
      os << "null";
      break;
    case Tag::kBool:
      os << (AsBool() ? "true" : "false");
      break;
    case Tag::kInt:
      os << AsInt();
      break;
    case Tag::kReal:
      os << std::get<double>(v_);
      break;
    case Tag::kString:
      os << '"' << AsString() << '"';
      break;
    case Tag::kBytes:
      os << "bytes[" << AsBytes().size() << "]";
      break;
    case Tag::kList: {
      os << '[';
      const char* sep = "";
      for (const Value& v : AsList()) {
        os << sep << v.ToDebugString();
        sep = ", ";
      }
      os << ']';
      break;
    }
    case Tag::kMap: {
      os << '{';
      const char* sep = "";
      for (const auto& [k, v] : AsMap()) {
        os << sep << k << ": " << v.ToDebugString();
        sep = ", ";
      }
      os << '}';
      break;
    }
    case Tag::kHandle: {
      const ComletHandle& h = AsHandle();
      os << "ref<" << h.anchor_type << ">(" << ToString(h.id) << "@"
         << ToString(h.last_known) << ")";
      break;
    }
    case Tag::kBlob:
      os << "blob<" << AsBlob().type_name << ">[" << AsBlob().bytes.size()
         << "]";
      break;
  }
  return os.str();
}

}  // namespace fargo
