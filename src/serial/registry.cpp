#include "src/serial/registry.h"

#include "src/serial/bytes.h"

namespace fargo::serial {

TypeRegistry& TypeRegistry::Instance() {
  static TypeRegistry registry;
  return registry;
}

void TypeRegistry::Register(std::string name, Factory factory) {
  factories_[std::move(name)] = std::move(factory);
}

std::shared_ptr<Serializable> TypeRegistry::Create(
    std::string_view name) const {
  auto it = factories_.find(std::string(name));
  if (it == factories_.end())
    throw SerialError("unregistered type: " + std::string(name));
  return it->second();
}

bool TypeRegistry::Contains(std::string_view name) const {
  return factories_.contains(std::string(name));
}

}  // namespace fargo::serial
