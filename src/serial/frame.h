// Framing for formation batches: several length-prefixed items inside one
// wire payload (src/net/formation.h stacks messages into these).
//
// Layout:
//   u8      kFrameMarker          ('F' — rejects non-frame payloads early)
//   varint  item count
//   per item:
//     u8      kItemMarker         ('I' — catches mis-framed boundaries)
//     varint  item length
//     bytes   item payload
//
// The read side is strict: wrong markers, truncated items and trailing
// garbage all raise SerialError, so a corrupt frame is dropped whole
// instead of smearing bad items into the dispatch path.
#pragma once

#include <cstdint>
#include <vector>

#include "src/serial/bytes.h"

namespace fargo::serial {

inline constexpr std::uint8_t kFrameMarker = 0x46;  // 'F'
inline constexpr std::uint8_t kItemMarker = 0x49;   // 'I'

/// Accumulates items and emits the framed payload.
class FrameWriter {
 public:
  void Add(const std::uint8_t* data, std::size_t n);
  void Add(const std::vector<std::uint8_t>& item) {
    Add(item.data(), item.size());
  }

  std::size_t item_count() const { return count_; }
  /// Exact encoded size of the frame Finish() would produce now.
  std::size_t frame_size() const;

  /// Emits the frame. The writer is left empty and reusable.
  std::vector<std::uint8_t> Finish();

 private:
  Writer items_;  ///< concatenated marker+length+bytes item records
  std::size_t count_ = 0;
};

/// Iterates a framed payload; validates markers and bounds as it goes.
class FrameReader {
 public:
  /// Throws SerialError unless `frame` opens with a well-formed header.
  explicit FrameReader(const std::vector<std::uint8_t>& frame);

  std::size_t item_count() const { return count_; }
  std::size_t items_read() const { return read_; }
  bool HasNext() const { return read_ < count_; }

  /// Bounds-checked Reader over the next item (zero-copy view into the
  /// frame buffer; valid while the frame outlives it). Throws SerialError
  /// on marker mismatch or truncation, and when called past the last item.
  Reader Next();

  /// True once every declared item has been read and no bytes trail it.
  bool Exhausted() const { return read_ == count_ && reader_.AtEnd(); }

 private:
  Reader reader_;
  std::size_t count_ = 0;
  std::size_t read_ = 0;
};

}  // namespace fargo::serial
