// Object-graph marshaling with aliasing/cycle preservation and complet
// reference hooks — the reproduction of the paper's §3.3 mobility protocol
// core: "during the graph traversal, the mobility protocol detects all the
// complet references that are pointing out of the moved complet, and for
// each such reference it applies a special routine".
//
// The special routines are installed as `ref hooks` by the Core's movement
// and invocation units; the serializer itself is layout-agnostic.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "src/serial/bytes.h"
#include "src/serial/registry.h"

namespace fargo::serial {

/// Serializes an object graph. Shared sub-objects are written once and
/// back-referenced so aliasing and cycles survive the round trip.
class GraphWriter {
 public:
  /// Invoked for every complet reference encountered during traversal.
  /// `ref` is a `core::ComletRefBase*` (opaque at this layer).
  using RefHook = std::function<void(GraphWriter&, const void* ref)>;

  explicit GraphWriter(Writer& out, RefHook ref_hook = nullptr)
      : out_(out), ref_hook_(std::move(ref_hook)) {}

  // -- primitives ----------------------------------------------------------
  void WriteBool(bool v) { out_.WriteBool(v); }
  void WriteInt(std::int64_t v) { out_.WriteInt(v); }
  void WriteVarint(std::uint64_t v) { out_.WriteVarint(v); }
  void WriteDouble(double v) { out_.WriteDouble(v); }
  void WriteString(std::string_view s) { out_.WriteString(s); }
  void WriteBytes(const std::vector<std::uint8_t>& b) { out_.WriteBytes(b); }

  // -- objects -------------------------------------------------------------
  /// Writes a nested object (or nullptr). Writes each distinct object once;
  /// later occurrences become back-references, preserving identity.
  void WriteObject(const Serializable* obj);
  void WriteObject(const std::shared_ptr<Serializable>& obj) {
    WriteObject(obj.get());
  }
  template <class T>
  void WriteObject(const std::shared_ptr<T>& obj) {
    WriteObject(static_cast<const Serializable*>(obj.get()));
  }

  /// Dispatches a complet reference to the installed hook. Called by
  /// core::ComletRefBase during its field serialization.
  void OnComletRef(const void* ref);

  /// Raw access for codec helpers (Value encoding).
  Writer& raw() { return out_; }

 private:
  Writer& out_;
  RefHook ref_hook_;
  std::unordered_map<const Serializable*, std::uint32_t> ids_;
  std::uint32_t next_id_ = 1;
};

/// Reconstructs an object graph written by GraphWriter.
class GraphReader {
 public:
  /// Invoked for every complet reference encountered during reconstruction;
  /// `ref` is a `core::ComletRefBase*` to be re-bound in place.
  using RefHook = std::function<void(GraphReader&, void* ref)>;

  explicit GraphReader(Reader& in, RefHook ref_hook = nullptr)
      : in_(in), ref_hook_(std::move(ref_hook)) {}

  // -- primitives ----------------------------------------------------------
  bool ReadBool() { return in_.ReadBool(); }
  std::int64_t ReadInt() { return in_.ReadInt(); }
  std::uint64_t ReadVarint() { return in_.ReadVarint(); }
  double ReadDouble() { return in_.ReadDouble(); }
  std::string ReadString() { return in_.ReadString(); }
  std::vector<std::uint8_t> ReadBytes() { return in_.ReadBytes(); }

  // -- objects -------------------------------------------------------------
  /// Reads a nested object; returns nullptr where nullptr was written.
  /// Identity of shared sub-objects is restored.
  std::shared_ptr<Serializable> ReadObject();

  /// Typed variant; throws SerialError if the object is not a T.
  template <class T>
  std::shared_ptr<T> ReadObjectAs() {
    std::shared_ptr<Serializable> obj = ReadObject();
    if (!obj) return nullptr;
    auto typed = std::dynamic_pointer_cast<T>(obj);
    if (!typed)
      throw SerialError("object of type " + std::string(obj->TypeName()) +
                        " is not of the requested C++ type");
    return typed;
  }

  /// Dispatches a complet reference to the installed hook. Called by
  /// core::ComletRefBase during its field deserialization.
  void OnComletRef(void* ref);

  Reader& raw() { return in_; }

 private:
  Reader& in_;
  RefHook ref_hook_;
  std::unordered_map<std::uint32_t, std::shared_ptr<Serializable>> objects_;
};

}  // namespace fargo::serial
