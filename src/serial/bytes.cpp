#include "src/serial/bytes.h"

// All members are inline; this translation unit anchors the module.
