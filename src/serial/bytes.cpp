#include "src/serial/bytes.h"

#include <atomic>

namespace fargo::serial {

namespace {

// Relaxed is enough: the counters are statistics, not synchronization, and
// the deterministic runtime is single-threaded anyway.
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<std::uint64_t> g_bytes_copied{0};

// First allocation of a fresh buffer. Keeping short encodes at one
// allocation makes `alloc.count` a stable, meaningful gate: most wire
// messages are under 64 bytes.
constexpr std::size_t kMinCapacity = 64;

}  // namespace

BufferStats GetBufferStats() {
  return BufferStats{g_allocations.load(std::memory_order_relaxed),
                     g_bytes_copied.load(std::memory_order_relaxed)};
}

void ResetBufferStats() {
  g_allocations.store(0, std::memory_order_relaxed);
  g_bytes_copied.store(0, std::memory_order_relaxed);
}

void Writer::Grow(std::size_t need) {
  // Explicit doubling from a fixed floor, via reserve() (which allocates
  // exactly the requested capacity on the library implementations we build
  // against) — the allocation count depends only on the write sequence, not
  // on the standard library's growth heuristics.
  const std::size_t cap = buf_.capacity();
  std::size_t target = cap < kMinCapacity ? kMinCapacity : cap * 2;
  if (target < need) target = need;
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_bytes_copied.fetch_add(buf_.size(), std::memory_order_relaxed);
  buf_.reserve(target);
}

}  // namespace fargo::serial
