// Byte-stream primitives for the serialization substrate.
//
// The paper relies on Java Serialization for complet marshaling (§3.3); this
// module is its from-scratch replacement: a compact, deterministic binary
// encoding (unsigned LEB128 varints, zig-zag signed ints, IEEE doubles,
// length-prefixed strings) with strict bounds checking on the read side.
//
// The Writer manages its buffer capacity explicitly (Grow in bytes.cpp)
// instead of leaning on std::vector's implementation-defined growth, so the
// number of heap allocations per encode is a deterministic function of the
// byte sequence written — which is what lets the continuous-benchmarking
// gate (tools/benchgate) pin `alloc.count` exactly across compilers.
// Encoders that know their payload size call Reserve() up front and pay a
// single allocation.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fargo::serial {

/// Raised on malformed or truncated input.
class SerialError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Process-wide Writer buffer telemetry: how many heap allocations Writer
/// buffers performed and how many already-written bytes had to be copied to
/// a regrown buffer. Relaxed atomics (TSan-clean); deterministic within a
/// deterministic run because Grow is the only allocation site.
struct BufferStats {
  std::uint64_t allocations = 0;   ///< buffer (re)allocations, incl. Reserve
  std::uint64_t bytes_copied = 0;  ///< bytes relocated by regrows
};
BufferStats GetBufferStats();
void ResetBufferStats();

/// Appends primitive values to a growable byte buffer.
class Writer {
 public:
  Writer() = default;

  /// Pre-allocates room for `n` more bytes, so the writes that fill them
  /// regrow-free. One allocation at most; a no-op if capacity suffices.
  void Reserve(std::size_t n) {
    if (buf_.size() + n > buf_.capacity()) Grow(buf_.size() + n);
  }

  void WriteU8(std::uint8_t v) {
    EnsureRoom(1);
    buf_.push_back(v);
  }

  /// Unsigned LEB128.
  void WriteVarint(std::uint64_t v) {
    EnsureRoom(10);  // worst case: 10 groups of 7 bits
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Zig-zag-encoded signed integer.
  void WriteInt(std::int64_t v) {
    WriteVarint((static_cast<std::uint64_t>(v) << 1) ^
                static_cast<std::uint64_t>(v >> 63));
  }

  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  void WriteDouble(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    EnsureRoom(8);
    for (int i = 0; i < 8; ++i)
      buf_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }

  void WriteString(std::string_view s) {
    EnsureRoom(10 + s.size());
    WriteVarint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void WriteBytes(const std::vector<std::uint8_t>& b) {
    EnsureRoom(10 + b.size());
    WriteVarint(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Appends raw bytes without a length prefix.
  void WriteRaw(const std::uint8_t* data, std::size_t n) {
    EnsureRoom(n);
    buf_.insert(buf_.end(), data, data + n);
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& buffer() const { return buf_; }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  /// Guarantees capacity for `n` more bytes. Every append funnels through
  /// here, so Grow is the Writer's only allocation site.
  void EnsureRoom(std::size_t n) {
    if (buf_.size() + n > buf_.capacity()) Grow(buf_.size() + n);
  }

  void Grow(std::size_t need);  // bytes.cpp: growth policy + telemetry

  std::vector<std::uint8_t> buf_;
};

/// Consumes primitive values from a byte span, validating bounds.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  std::uint8_t ReadU8() {
    Require(1);
    return data_[pos_++];
  }

  std::uint64_t ReadVarint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      std::uint8_t b = ReadU8();
      if (shift >= 64) throw SerialError("varint too long");
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
    }
  }

  std::int64_t ReadInt() {
    std::uint64_t z = ReadVarint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  bool ReadBool() { return ReadU8() != 0; }

  double ReadDouble() {
    Require(8);
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
      bits |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    double d;
    std::memcpy(&d, &bits, sizeof d);
    return d;
  }

  std::string ReadString() {
    std::uint64_t n = ReadVarint();
    Require(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<std::uint8_t> ReadBytes() {
    std::uint64_t n = ReadVarint();
    Require(n);
    std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }

  /// Length-prefixed sub-stream as a bounds-checked Reader over the parent's
  /// storage — the zero-copy sibling of ReadBytes. The view stays valid only
  /// while the parent's underlying buffer does.
  Reader ReadBytesView() {
    std::uint64_t n = ReadVarint();
    Require(n);
    Reader sub(data_ + pos_, static_cast<std::size_t>(n));
    pos_ += n;
    return sub;
  }

  bool AtEnd() const { return pos_ == size_; }
  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  void Require(std::uint64_t n) const {
    if (n > size_ - pos_) throw SerialError("truncated input");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace fargo::serial
