// Polymorphic type registry: maps registered type names to factories so the
// graph (de)marshaler can reconstruct objects by name — the role Java's
// class loading plays for Java Serialization in the paper.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

namespace fargo::serial {

class GraphWriter;
class GraphReader;

/// Base class of everything that can cross the wire inside an object graph:
/// intra-complet objects, anchors, and relocators.
class Serializable {
 public:
  virtual ~Serializable() = default;

  /// Stable registered name; must match the name under which the type's
  /// factory is registered.
  virtual std::string_view TypeName() const = 0;

  /// Writes this object's fields. Nested objects go through
  /// GraphWriter::WriteObject, complet references through the ref hook.
  virtual void Serialize(GraphWriter& w) const = 0;

  /// Reads this object's fields, mirroring Serialize exactly.
  virtual void Deserialize(GraphReader& r) = 0;
};

/// Process-wide registry of serializable types.
class TypeRegistry {
 public:
  using Factory = std::function<std::shared_ptr<Serializable>()>;

  static TypeRegistry& Instance();

  /// Registers `factory` under `name`. Re-registering the same name is
  /// idempotent (useful for test binaries that link everything).
  void Register(std::string name, Factory factory);

  /// Creates a default-constructed instance of the named type.
  /// Throws SerialError for unknown names.
  std::shared_ptr<Serializable> Create(std::string_view name) const;

  bool Contains(std::string_view name) const;

 private:
  std::unordered_map<std::string, Factory> factories_;
};

/// Registers T, which must expose `static constexpr std::string_view
/// kTypeName` and be default-constructible. Returns true so it can be used
/// as a namespace-scope initializer:
///   const bool registered = serial::RegisterType<MyAnchor>();
template <class T>
bool RegisterType() {
  TypeRegistry::Instance().Register(
      std::string(T::kTypeName),
      [] { return std::static_pointer_cast<Serializable>(std::make_shared<T>()); });
  return true;
}

}  // namespace fargo::serial
