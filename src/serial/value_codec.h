// Wire codec for fargo::Value — the invocation unit's argument/return
// encoding. Values are pure data (complet handles included), so the codec
// works on plain byte streams without graph bookkeeping.
#pragma once

#include "src/common/value.h"
#include "src/serial/bytes.h"

namespace fargo::serial {

/// Appends `v` to `w` in the tagged wire format.
void WriteValue(Writer& w, const Value& v);

/// Reads one Value; throws SerialError on malformed input.
Value ReadValue(Reader& r);

/// Convenience: encodes a whole argument vector.
void WriteValues(Writer& w, const std::vector<Value>& vs);
std::vector<Value> ReadValues(Reader& r);

/// One-shot helpers.
std::vector<std::uint8_t> EncodeValue(const Value& v);
Value DecodeValue(const std::vector<std::uint8_t>& bytes);

}  // namespace fargo::serial
