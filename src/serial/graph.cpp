#include "src/serial/graph.h"

namespace fargo::serial {

namespace {
// Object stream tags.
constexpr std::uint8_t kNullObj = 0;
constexpr std::uint8_t kNewObj = 1;
constexpr std::uint8_t kBackRef = 2;
}  // namespace

void GraphWriter::WriteObject(const Serializable* obj) {
  if (obj == nullptr) {
    out_.WriteU8(kNullObj);
    return;
  }
  if (auto it = ids_.find(obj); it != ids_.end()) {
    out_.WriteU8(kBackRef);
    out_.WriteVarint(it->second);
    return;
  }
  std::uint32_t id = next_id_++;
  ids_.emplace(obj, id);
  out_.WriteU8(kNewObj);
  out_.WriteVarint(id);
  out_.WriteString(obj->TypeName());
  obj->Serialize(*this);
}

void GraphWriter::OnComletRef(const void* ref) {
  if (!ref_hook_)
    throw SerialError(
        "complet reference serialized outside a Core marshal context");
  ref_hook_(*this, ref);
}

std::shared_ptr<Serializable> GraphReader::ReadObject() {
  std::uint8_t tag = in_.ReadU8();
  switch (tag) {
    case kNullObj:
      return nullptr;
    case kBackRef: {
      std::uint32_t id = static_cast<std::uint32_t>(in_.ReadVarint());
      auto it = objects_.find(id);
      if (it == objects_.end()) throw SerialError("dangling back-reference");
      return it->second;
    }
    case kNewObj: {
      std::uint32_t id = static_cast<std::uint32_t>(in_.ReadVarint());
      std::string type = in_.ReadString();
      std::shared_ptr<Serializable> obj = TypeRegistry::Instance().Create(type);
      // Register before Deserialize so cyclic graphs resolve.
      objects_.emplace(id, obj);
      obj->Deserialize(*this);
      return obj;
    }
    default:
      throw SerialError("corrupt object tag");
  }
}

void GraphReader::OnComletRef(void* ref) {
  if (!ref_hook_)
    throw SerialError(
        "complet reference deserialized outside a Core unmarshal context");
  ref_hook_(*this, ref);
}

}  // namespace fargo::serial
