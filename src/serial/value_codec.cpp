#include "src/serial/value_codec.h"

namespace fargo::serial {

void WriteValue(Writer& w, const Value& v) {
  w.WriteU8(static_cast<std::uint8_t>(v.tag()));
  switch (v.tag()) {
    case Value::Tag::kNull:
      break;
    case Value::Tag::kBool:
      w.WriteBool(v.AsBool());
      break;
    case Value::Tag::kInt:
      w.WriteInt(v.AsInt());
      break;
    case Value::Tag::kReal:
      w.WriteDouble(v.AsReal());
      break;
    case Value::Tag::kString:
      w.WriteString(v.AsString());
      break;
    case Value::Tag::kBytes:
      w.WriteBytes(v.AsBytes());
      break;
    case Value::Tag::kList: {
      const Value::List& l = v.AsList();
      w.WriteVarint(l.size());
      for (const Value& e : l) WriteValue(w, e);
      break;
    }
    case Value::Tag::kMap: {
      const Value::Map& m = v.AsMap();
      w.WriteVarint(m.size());
      for (const auto& [k, e] : m) {
        w.WriteString(k);
        WriteValue(w, e);
      }
      break;
    }
    case Value::Tag::kHandle: {
      const ComletHandle& h = v.AsHandle();
      w.WriteVarint(h.id.origin.value);
      w.WriteVarint(h.id.seq);
      w.WriteVarint(h.last_known.value);
      w.WriteString(h.anchor_type);
      break;
    }
    case Value::Tag::kBlob: {
      const ObjectBlob& b = v.AsBlob();
      w.WriteString(b.type_name);
      w.WriteBytes(b.bytes);
      break;
    }
  }
}

Value ReadValue(Reader& r) {
  auto tag = static_cast<Value::Tag>(r.ReadU8());
  switch (tag) {
    case Value::Tag::kNull:
      return Value();
    case Value::Tag::kBool:
      return Value(r.ReadBool());
    case Value::Tag::kInt:
      return Value(r.ReadInt());
    case Value::Tag::kReal:
      return Value(r.ReadDouble());
    case Value::Tag::kString:
      return Value(r.ReadString());
    case Value::Tag::kBytes:
      return Value(r.ReadBytes());
    case Value::Tag::kList: {
      std::uint64_t n = r.ReadVarint();
      // Each element is at least one wire byte; a longer claim is corrupt.
      if (n > r.remaining()) throw SerialError("corrupt list length");
      Value::List l;
      l.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) l.push_back(ReadValue(r));
      return Value(std::move(l));
    }
    case Value::Tag::kMap: {
      std::uint64_t n = r.ReadVarint();
      Value::Map m;
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string k = r.ReadString();
        m.emplace(std::move(k), ReadValue(r));
      }
      return Value(std::move(m));
    }
    case Value::Tag::kHandle: {
      ComletHandle h;
      h.id.origin.value = static_cast<std::uint32_t>(r.ReadVarint());
      h.id.seq = r.ReadVarint();
      h.last_known.value = static_cast<std::uint32_t>(r.ReadVarint());
      h.anchor_type = r.ReadString();
      return Value(std::move(h));
    }
    case Value::Tag::kBlob: {
      ObjectBlob b;
      b.type_name = r.ReadString();
      b.bytes = r.ReadBytes();
      return Value(std::move(b));
    }
  }
  throw SerialError("corrupt value tag");
}

void WriteValues(Writer& w, const std::vector<Value>& vs) {
  w.WriteVarint(vs.size());
  for (const Value& v : vs) WriteValue(w, v);
}

std::vector<Value> ReadValues(Reader& r) {
  std::uint64_t n = r.ReadVarint();
  if (n > r.remaining()) throw SerialError("corrupt value-list length");
  std::vector<Value> vs;
  vs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) vs.push_back(ReadValue(r));
  return vs;
}

std::vector<std::uint8_t> EncodeValue(const Value& v) {
  Writer w;
  WriteValue(w, v);
  return w.Take();
}

Value DecodeValue(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  return ReadValue(r);
}

}  // namespace fargo::serial
