#include "src/serial/frame.h"

namespace fargo::serial {

void FrameWriter::Add(const std::uint8_t* data, std::size_t n) {
  items_.Reserve(11 + n);
  items_.WriteU8(kItemMarker);
  items_.WriteVarint(n);
  items_.WriteRaw(data, n);
  ++count_;
}

namespace {
std::size_t VarintSize(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}
}  // namespace

std::size_t FrameWriter::frame_size() const {
  return 1 + VarintSize(count_) + items_.size();
}

std::vector<std::uint8_t> FrameWriter::Finish() {
  Writer out;
  out.Reserve(frame_size());
  out.WriteU8(kFrameMarker);
  out.WriteVarint(count_);
  out.WriteRaw(items_.buffer().data(), items_.size());
  items_ = Writer{};
  count_ = 0;
  return out.Take();
}

FrameReader::FrameReader(const std::vector<std::uint8_t>& frame)
    : reader_(frame) {
  if (reader_.ReadU8() != kFrameMarker)
    throw SerialError("not a formation frame");
  count_ = static_cast<std::size_t>(reader_.ReadVarint());
}

Reader FrameReader::Next() {
  if (read_ >= count_) throw SerialError("frame item count overrun");
  if (reader_.ReadU8() != kItemMarker)
    throw SerialError("corrupt frame item marker");
  Reader item = reader_.ReadBytesView();
  ++read_;
  return item;
}

}  // namespace fargo::serial
