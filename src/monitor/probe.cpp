#include "src/monitor/probe.h"

#include "src/common/value.h"

namespace fargo::monitor {

const char* ToString(Service s) {
  switch (s) {
    case Service::kComletLoad:
      return "completLoad";
    case Service::kMemoryUse:
      return "memoryUse";
    case Service::kComletSize:
      return "completSize";
    case Service::kBandwidth:
      return "bandwidth";
    case Service::kLatency:
      return "latency";
    case Service::kThroughput:
      return "throughput";
    case Service::kMessageRate:
      return "messageRate";
    case Service::kInvocationRate:
      return "methodInvokeRate";
  }
  return "?";
}

Service ParseService(const std::string& name) {
  if (name == "completLoad" || name == "comletLoad") return Service::kComletLoad;
  if (name == "memoryUse") return Service::kMemoryUse;
  if (name == "completSize" || name == "comletSize")
    return Service::kComletSize;
  if (name == "bandwidth") return Service::kBandwidth;
  if (name == "latency") return Service::kLatency;
  if (name == "throughput") return Service::kThroughput;
  if (name == "messageRate") return Service::kMessageRate;
  if (name == "methodInvokeRate" || name == "invocationRate")
    return Service::kInvocationRate;
  throw FargoError("unknown profiling service: " + name);
}

std::string ToString(const ProbeKey& key) {
  std::string s = ToString(key.service);
  switch (key.service) {
    case Service::kComletSize:
      return s + "(" + ToString(key.a) + ")";
    case Service::kBandwidth:
    case Service::kLatency:
    case Service::kThroughput:
    case Service::kMessageRate:
      return s + "(" + ToString(key.peer) + ")";
    case Service::kInvocationRate:
      return s + "(" + ToString(key.a) + " -> " + ToString(key.b) + ")";
    // Core-wide gauges carry no arguments.
    case Service::kComletLoad:
    case Service::kMemoryUse:
      return s;
  }
  return s;
}

}  // namespace fargo::monitor
