// Monitor events (§4.2): asynchronous notification instead of polling.
//
// Every profiling service has a corresponding threshold event; registering
// internally starts the continuous profiler, and the threshold "is kept
// separately with the listener, in order to filter the results. This design
// allows many listeners without overloading the measurement unit."
//
// Cores additionally fire non-measurable lifecycle events: completArrived,
// completDeparted, coreShutdown. Notification is asynchronous (the paper
// starts a thread per notification; we schedule a task). Listeners may live
// on other Cores (distributed events) and may themselves be complets that
// keep receiving events after migrating — complet listeners are notified
// through ordinary complet invocation, which tracks movement.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/common/value.h"
#include "src/core/fwd.h"
#include "src/monitor/probe.h"
#include "src/serial/bytes.h"

namespace fargo::monitor {

enum class EventKind : std::uint8_t {
  kComletArrived = 0,
  kComletDeparted = 1,
  kCoreShutdown = 2,
  kThreshold = 3,
  kCoreUnreachable = 4,  ///< failure detector: peer missed K heartbeats
  kCoreRecovered = 5,    ///< failure detector: suspected peer answered again
  /// Checkpoint restore found the complet already hosted and kept the live
  /// copy (persistence.h RestoreResult::skipped).
  kComletRestoreSkipped = 6,
};

const char* ToString(EventKind kind);
/// Parses script-facing names: "completArrived", "completDeparted",
/// "shutdown", "coreUnreachable", "coreRecovered". Throws FargoError on
/// unknown names.
EventKind ParseEventKind(const std::string& name);

/// Fire-when-value-crosses direction for threshold events.
enum class Trigger : std::uint8_t { kAbove = 0, kBelow = 1 };

struct Event {
  EventKind kind = EventKind::kComletArrived;
  CoreId source;       ///< Core that fired the event
  ComletId comlet{};   ///< subject (arrived/departed)
  ProbeKey probe{};    ///< threshold events: what was measured
  double value = 0;    ///< threshold events: the measured value
  CoreId peer{};       ///< failure-detector events: the suspected Core
};

/// Encodes an event as a Value map (for delivery to complet listener
/// methods and to the scripting engine).
Value EventToValue(const Event& e);
Event EventFromValue(const Value& v);

// Wire codecs used by the distributed-event protocol (Core messages).
void WriteProbeWire(serial::Writer& w, const ProbeKey& key);
ProbeKey ReadProbeWire(serial::Reader& r);
void WriteEventWire(serial::Writer& w, const Event& e);
Event ReadEventWire(serial::Reader& r);

using SubId = std::uint64_t;
using Listener = std::function<void(const Event&)>;

class EventBus {
 public:
  explicit EventBus(core::Core& core);
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// Registers a listener for a lifecycle event kind at this Core.
  SubId Listen(EventKind kind, Listener listener);

  /// Registers a threshold event on a profiling service: starts continuous
  /// profiling of `probe` at `interval` and notifies when the smoothed
  /// value crosses `threshold` in the `trigger` direction (edge-triggered;
  /// re-arms when the condition clears).
  SubId ListenThreshold(const ProbeKey& probe, double threshold,
                        Trigger trigger, SimTime interval, Listener listener);

  void Unlisten(SubId id);

  /// Fires an event: every matching listener is notified asynchronously.
  void Fire(const Event& event);

  std::size_t listener_count() const { return lifecycle_.size() + thresholds_.size(); }

  /// Notifications dispatched so far (bench telemetry).
  std::uint64_t notifications() const { return notifications_; }

 private:
  friend class ThresholdDriver;

  struct ThresholdSub {
    ProbeKey probe;
    double threshold = 0;
    Trigger trigger = Trigger::kAbove;
    bool armed = true;
    Listener listener;
  };

  void OnSample(const ProbeKey& probe, double value);
  void Notify(const Listener& listener, const Event& event);

  core::Core& core_;
  SubId next_id_ = 1;
  std::map<SubId, std::pair<EventKind, Listener>> lifecycle_;
  std::map<SubId, ThresholdSub> thresholds_;
  std::uint64_t notifications_ = 0;
};

/// Adapts a complet method as an event listener: the event is delivered by
/// invoking `method(event-as-map)` through a tracked reference, so delivery
/// keeps working after the listener complet migrates.
Listener ComletListener(core::Core& core, ComletHandle listener,
                        std::string method);

}  // namespace fargo::monitor
