#include "src/monitor/profiler.h"

#include "src/core/core.h"
#include "src/core/runtime.h"

namespace fargo::monitor {

double Profiler::Instant(const ProbeKey& key) {
  const SimTime now = core_.scheduler().Now();
  auto it = cache_.find(key);
  if (it != cache_.end() && it->second.at >= 0 &&
      now - it->second.at <= cache_ttl_)
    return it->second.value;
  const double value = Evaluate(key);
  cache_[key] = CacheEntry{value, now};
  return value;
}

void Profiler::Start(const ProbeKey& key, SimTime interval) {
  auto it = continuous_.find(key);
  if (it != continuous_.end()) {
    // Later interested parties join the running sampler — one measurement
    // unit per service, however many listeners (§4.2).
    ++it->second.refs;
    return;
  }
  Continuous c;
  c.refs = 1;
  c.interval = interval;
  c.ema = Ema(alpha_);
  if (IsRate(key.service)) c.prev_counter = RawCounter(key);
  auto [slot, inserted] = continuous_.emplace(key, std::move(c));
  (void)inserted;
  slot->second.task = std::make_unique<sim::PeriodicTask>(
      core_.scheduler(), interval, [this, key] { TakeSample(key); });
}

double Profiler::Get(const ProbeKey& key) const {
  auto it = continuous_.find(key);
  if (it == continuous_.end())
    throw FargoError("continuous profiling of " + ToString(key) +
                     " was not started");
  return it->second.ema.value();
}

void Profiler::Stop(const ProbeKey& key) {
  auto it = continuous_.find(key);
  if (it == continuous_.end()) return;
  if (--it->second.refs <= 0) continuous_.erase(it);
}

void Profiler::TakeSample(const ProbeKey& key) {
  auto it = continuous_.find(key);
  if (it == continuous_.end()) return;
  Continuous& c = it->second;
  ++evaluations_;
  double sample;
  if (IsRate(key.service)) {
    const double counter = RawCounter(key);
    sample = (counter - c.prev_counter) / ToSeconds(c.interval);
    c.prev_counter = counter;
  } else {
    sample = Evaluate(key);
    --evaluations_;  // Evaluate counted it
  }
  c.ema.Add(sample);
  const double smoothed = c.ema.value();
  // NOTE: the hook (EventBus) may Stop() this probe; touch nothing after.
  if (hook_) hook_(key, smoothed);
}

double Profiler::Evaluate(const ProbeKey& key) {
  ++evaluations_;
  switch (key.service) {
    case Service::kComletLoad:
      return static_cast<double>(core_.repository().size());
    case Service::kMemoryUse: {
      double total = 0;
      for (ComletId id : core_.repository().All()) {
        if (auto anchor = core_.repository().Get(id))
          total += static_cast<double>(core_.CaptureObject(*anchor).bytes.size());
      }
      return total;
    }
    case Service::kComletSize: {
      auto anchor = core_.repository().Get(key.a);
      if (!anchor) return 0.0;
      return static_cast<double>(core_.CaptureObject(*anchor).bytes.size());
    }
    case Service::kBandwidth:
      return core_.network().GetLink(core_.id(), key.peer).bytes_per_sec;
    case Service::kLatency:
      return ToSeconds(core_.network().GetLink(core_.id(), key.peer).latency);
    case Service::kThroughput:
    case Service::kMessageRate:
    case Service::kInvocationRate: {
      // Instant reading of a rate: the long-run average since Core start.
      const double elapsed =
          ToSeconds(core_.scheduler().Now() - core_.start_time());
      if (elapsed <= 0) return 0.0;
      return RawCounter(key) / elapsed;
    }
  }
  return 0.0;
}

double Profiler::RawCounter(const ProbeKey& key) const {
  switch (key.service) {
    case Service::kThroughput:
      return static_cast<double>(
          core_.network().StatsBetween(core_.id(), key.peer).bytes);
    case Service::kMessageRate:
      return static_cast<double>(
          core_.network().StatsBetween(core_.id(), key.peer).messages);
    case Service::kInvocationRate:
      return static_cast<double>(core_.InvocationCount(key.a, key.b));
    // Instantaneous gauges: no accumulated counter to rate over.
    case Service::kComletLoad:
    case Service::kMemoryUse:
    case Service::kComletSize:
    case Service::kBandwidth:
    case Service::kLatency:
      return 0.0;
  }
  return 0.0;
}

}  // namespace fargo::monitor
