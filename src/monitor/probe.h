// Profiling service identifiers (§4.1).
//
// A ProbeKey names one measurable quantity at one Core: a system service
// (complet load, link bandwidth/latency, message rate) or an application
// service (invocation rate along a complet reference, complet size) — the
// latter possible because complet references are visible to the Core.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/ids.h"

namespace fargo::monitor {

enum class Service : std::uint8_t {
  kComletLoad = 0,      ///< number of complets hosted at this Core
  kMemoryUse = 1,       ///< total serialized size of hosted complets (bytes)
  kComletSize = 2,      ///< serialized size of complet `a` (bytes)
  kBandwidth = 3,       ///< link capacity to `peer` (bytes/second)
  kLatency = 4,         ///< link propagation latency to `peer` (seconds)
  kThroughput = 5,      ///< observed bytes/second sent to `peer`
  kMessageRate = 6,     ///< observed messages/second sent to `peer`
  kInvocationRate = 7,  ///< invocations/second along the reference a -> b
};

const char* ToString(Service s);
/// Parses the script-facing service name ("methodInvokeRate", "bandwidth",
/// "completLoad", ...); throws FargoError on unknown names.
Service ParseService(const std::string& name);

/// Subject of one measurement.
struct ProbeKey {
  Service service = Service::kComletLoad;
  ComletId a{};    ///< source complet (invocation rate) or subject (size)
  ComletId b{};    ///< target complet (invocation rate)
  CoreId peer{};   ///< remote Core (bandwidth/latency/throughput/rate)

  friend bool operator==(const ProbeKey&, const ProbeKey&) = default;
};

std::string ToString(const ProbeKey& key);

// -- convenience constructors -------------------------------------------------
inline ProbeKey ComletLoadProbe() { return {Service::kComletLoad, {}, {}, {}}; }
inline ProbeKey MemoryUseProbe() { return {Service::kMemoryUse, {}, {}, {}}; }
inline ProbeKey ComletSizeProbe(ComletId c) {
  return {Service::kComletSize, c, {}, {}};
}
inline ProbeKey BandwidthProbe(CoreId peer) {
  return {Service::kBandwidth, {}, {}, peer};
}
inline ProbeKey LatencyProbe(CoreId peer) {
  return {Service::kLatency, {}, {}, peer};
}
inline ProbeKey ThroughputProbe(CoreId peer) {
  return {Service::kThroughput, {}, {}, peer};
}
inline ProbeKey MessageRateProbe(CoreId peer) {
  return {Service::kMessageRate, {}, {}, peer};
}
inline ProbeKey InvocationRateProbe(ComletId from, ComletId to) {
  return {Service::kInvocationRate, from, to, {}};
}

}  // namespace fargo::monitor

template <>
struct std::hash<fargo::monitor::ProbeKey> {
  std::size_t operator()(const fargo::monitor::ProbeKey& k) const noexcept {
    std::size_t h = std::hash<fargo::ComletId>{}(k.a);
    h = h * 1315423911u ^ std::hash<fargo::ComletId>{}(k.b);
    h = h * 1315423911u ^ std::hash<fargo::CoreId>{}(k.peer);
    h = h * 1315423911u ^ static_cast<std::size_t>(k.service);
    return h;
  }
};
