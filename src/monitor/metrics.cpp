#include "src/monitor/metrics.h"

#include <algorithm>
#include <iomanip>

namespace fargo::monitor {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_)
    s.counts.push_back(c.load(std::memory_order_relaxed));
  s.count = count();
  s.sum = sum();
  return s;
}

double Histogram::Quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cumulative) >= rank)
      return i < bounds_.size() ? bounds_[i] : bounds_.back();
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  return *it->second;
}

std::vector<double> Registry::LatencyBounds() {
  return {1e5, 5e5, 1e6, 5e6, 1e7, 5e7, 1e8, 5e8, 1e9, 5e9, 1e10};
}

std::vector<double> Registry::CountBounds() {
  return {0, 1, 2, 3, 4, 6, 8, 16, 32, 64};
}

std::vector<double> Registry::SizeBounds() {
  return {64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
          16777216};
}

std::uint64_t Registry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double Registry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

Histogram::Snapshot Registry::HistogramSnapshot(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram::Snapshot{}
                                 : it->second->TakeSnapshot();
}

void Registry::Dump(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_)
    os << "counter " << name << " " << c->value() << "\n";
  for (const auto& [name, g] : gauges_)
    os << "gauge " << name << " " << g->value() << "\n";
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->TakeSnapshot();
    os << "histogram " << name << " count=" << s.count << " sum=" << s.sum
       << " mean=" << h->mean() << " p50=" << h->Quantile(0.5)
       << " p99=" << h->Quantile(0.99) << "\n";
    for (std::size_t i = 0; i < s.counts.size(); ++i) {
      if (s.counts[i] == 0) continue;  // sparse: only occupied buckets
      os << "  le=";
      if (i < s.bounds.size())
        os << s.bounds[i];
      else
        os << "+inf";
      os << " " << s.counts[i] << "\n";
    }
  }
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace fargo::monitor
