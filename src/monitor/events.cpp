#include "src/monitor/events.h"

#include "src/common/log.h"
#include "src/core/core.h"
#include "src/core/runtime.h"
#include "src/monitor/profiler.h"

namespace fargo::monitor {

const char* ToString(EventKind kind) {
  switch (kind) {
    case EventKind::kComletArrived:
      return "completArrived";
    case EventKind::kComletDeparted:
      return "completDeparted";
    case EventKind::kCoreShutdown:
      return "shutdown";
    case EventKind::kThreshold:
      return "threshold";
    case EventKind::kCoreUnreachable:
      return "coreUnreachable";
    case EventKind::kCoreRecovered:
      return "coreRecovered";
    case EventKind::kComletRestoreSkipped:
      return "completRestoreSkipped";
  }
  return "?";
}

EventKind ParseEventKind(const std::string& name) {
  if (name == "completArrived" || name == "comletArrived" ||
      name == "arrived")
    return EventKind::kComletArrived;
  if (name == "completDeparted" || name == "comletDeparted" ||
      name == "departed")
    return EventKind::kComletDeparted;
  if (name == "shutdown" || name == "coreShutdown")
    return EventKind::kCoreShutdown;
  if (name == "coreUnreachable" || name == "unreachable")
    return EventKind::kCoreUnreachable;
  if (name == "coreRecovered" || name == "recovered")
    return EventKind::kCoreRecovered;
  if (name == "completRestoreSkipped" || name == "comletRestoreSkipped" ||
      name == "restoreSkipped")
    return EventKind::kComletRestoreSkipped;
  throw FargoError("unknown event kind: " + name);
}

Value EventToValue(const Event& e) {
  Value::Map m;
  m["kind"] = Value(static_cast<std::int64_t>(e.kind));
  m["core"] = Value(static_cast<std::int64_t>(e.source.value));
  m["comlet_origin"] = Value(static_cast<std::int64_t>(e.comlet.origin.value));
  m["comlet_seq"] = Value(static_cast<std::int64_t>(e.comlet.seq));
  m["service"] = Value(static_cast<std::int64_t>(e.probe.service));
  m["value"] = Value(e.value);
  m["peer"] = Value(static_cast<std::int64_t>(e.peer.value));
  return Value(std::move(m));
}

Event EventFromValue(const Value& v) {
  const Value::Map& m = v.AsMap();
  Event e;
  e.kind = static_cast<EventKind>(m.at("kind").AsInt());
  e.source = CoreId{static_cast<std::uint32_t>(m.at("core").AsInt())};
  e.comlet.origin =
      CoreId{static_cast<std::uint32_t>(m.at("comlet_origin").AsInt())};
  e.comlet.seq = static_cast<std::uint64_t>(m.at("comlet_seq").AsInt());
  e.probe.service = static_cast<Service>(m.at("service").AsInt());
  e.value = m.at("value").AsReal();
  if (auto it = m.find("peer"); it != m.end())
    e.peer = CoreId{static_cast<std::uint32_t>(it->second.AsInt())};
  return e;
}

void WriteProbeWire(serial::Writer& w, const ProbeKey& key) {
  w.WriteU8(static_cast<std::uint8_t>(key.service));
  w.WriteVarint(key.a.origin.value);
  w.WriteVarint(key.a.seq);
  w.WriteVarint(key.b.origin.value);
  w.WriteVarint(key.b.seq);
  w.WriteVarint(key.peer.value);
}

ProbeKey ReadProbeWire(serial::Reader& r) {
  ProbeKey key;
  key.service = static_cast<Service>(r.ReadU8());
  key.a.origin.value = static_cast<std::uint32_t>(r.ReadVarint());
  key.a.seq = r.ReadVarint();
  key.b.origin.value = static_cast<std::uint32_t>(r.ReadVarint());
  key.b.seq = r.ReadVarint();
  key.peer.value = static_cast<std::uint32_t>(r.ReadVarint());
  return key;
}

void WriteEventWire(serial::Writer& w, const Event& e) {
  w.WriteU8(static_cast<std::uint8_t>(e.kind));
  w.WriteVarint(e.source.value);
  w.WriteVarint(e.comlet.origin.value);
  w.WriteVarint(e.comlet.seq);
  WriteProbeWire(w, e.probe);
  w.WriteDouble(e.value);
  w.WriteVarint(e.peer.value);
}

Event ReadEventWire(serial::Reader& r) {
  Event e;
  e.kind = static_cast<EventKind>(r.ReadU8());
  e.source.value = static_cast<std::uint32_t>(r.ReadVarint());
  e.comlet.origin.value = static_cast<std::uint32_t>(r.ReadVarint());
  e.comlet.seq = r.ReadVarint();
  e.probe = ReadProbeWire(r);
  e.value = r.ReadDouble();
  e.peer.value = static_cast<std::uint32_t>(r.ReadVarint());
  return e;
}

EventBus::EventBus(core::Core& core) : core_(core) {
  core_.profiler().SetSampleHook(
      [this](const ProbeKey& probe, double value) { OnSample(probe, value); });
}

SubId EventBus::Listen(EventKind kind, Listener listener) {
  const SubId id = next_id_++;
  lifecycle_.emplace(id, std::make_pair(kind, std::move(listener)));
  return id;
}

SubId EventBus::ListenThreshold(const ProbeKey& probe, double threshold,
                                Trigger trigger, SimTime interval,
                                Listener listener) {
  // Registration starts the continuous profiler under the covers (§4.2);
  // the threshold stays with the listener, filtering samples per listener.
  core_.profiler().Start(probe, interval);
  const SubId id = next_id_++;
  thresholds_.emplace(
      id, ThresholdSub{probe, threshold, trigger, true, std::move(listener)});
  return id;
}

void EventBus::Unlisten(SubId id) {
  if (auto it = thresholds_.find(id); it != thresholds_.end()) {
    core_.profiler().Stop(it->second.probe);
    thresholds_.erase(it);
    return;
  }
  lifecycle_.erase(id);
}

void EventBus::Fire(const Event& event) {
  for (const auto& [id, sub] : lifecycle_) {
    if (sub.first != event.kind) continue;
    Notify(sub.second, event);
  }
}

void EventBus::OnSample(const ProbeKey& probe, double value) {
  for (auto& [id, sub] : thresholds_) {
    if (sub.probe != probe) continue;
    const bool crossed = sub.trigger == Trigger::kAbove
                             ? value > sub.threshold
                             : value < sub.threshold;
    if (crossed && sub.armed) {
      // Edge-triggered: fire once per crossing, re-arm when it clears.
      sub.armed = false;
      Event e;
      e.kind = EventKind::kThreshold;
      e.source = core_.id();
      e.probe = probe;
      e.value = value;
      Notify(sub.listener, e);
    } else if (!crossed) {
      sub.armed = true;
    }
  }
}

void EventBus::Notify(const Listener& listener, const Event& event) {
  ++notifications_;
  // Asynchronous notification: the paper starts a fresh thread per
  // notification; we schedule an immediate task on the event loop.
  core_.scheduler().ScheduleAfter(0, [listener, event] { listener(event); });
}

Listener ComletListener(core::Core& core, ComletHandle listener,
                        std::string method) {
  return [&core, listener, method](const Event& e) {
    try {
      core.RefFromHandle(listener).Call(method, {EventToValue(e)});
    } catch (const std::exception& ex) {
      LogWarn() << "event delivery to complet " << ToString(listener.id)
                << "." << method << " failed: " << ex.what();
    }
  };
}

}  // namespace fargo::monitor
