// The Profiler (§4.1): system and application profiling services.
//
// Every service has two interfaces, as in the paper:
//  - instant:    Instant(key) — current value, served from a short-TTL cache
//                so "successive instant requests can be served without
//                re-evaluation";
//  - continuous: Start(key, interval) / Get(key) / Stop(key) — a periodic
//                sampler feeding an exponential average. Start/Stop are
//                reference-counted so the Core "monitors only resources that
//                some application has interest in".
//
// Rate services (invocation rate, throughput, message rate) are measured as
// counter deltas per interval; gauges (complet load, bandwidth, latency,
// sizes) are read directly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "src/common/time.h"
#include "src/core/fwd.h"
#include "src/monitor/ema.h"
#include "src/monitor/probe.h"
#include "src/sim/scheduler.h"

namespace fargo::monitor {

class Profiler {
 public:
  explicit Profiler(core::Core& core) : core_(core) {}
  ~Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Instant interface: the current value of the service. Cached for the
  /// configured TTL.
  double Instant(const ProbeKey& key);

  /// Begins (or joins) continuous profiling of `key`, sampling every
  /// `interval`. The first caller fixes the interval; later callers join.
  void Start(const ProbeKey& key, SimTime interval);

  /// Current exponential average of a continuously profiled service.
  /// Throws FargoError if Start was not called.
  double Get(const ProbeKey& key) const;

  /// Releases one interest; sampling stops when no caller remains.
  void Stop(const ProbeKey& key);

  bool Running(const ProbeKey& key) const { return continuous_.contains(key); }
  std::size_t active_probes() const { return continuous_.size(); }

  void SetCacheTtl(SimTime ttl) { cache_ttl_ = ttl; }
  void SetAlpha(double alpha) { alpha_ = alpha; }

  /// Hook invoked after every continuous sample with the smoothed value;
  /// installed by the EventBus to drive threshold events.
  using SampleHook = std::function<void(const ProbeKey&, double)>;
  void SetSampleHook(SampleHook hook) { hook_ = std::move(hook); }

  /// Number of raw measurements performed (benchmarks use this to show the
  /// cache and the single-sampler design at work).
  std::uint64_t evaluations() const { return evaluations_; }

 private:
  struct Continuous {
    std::unique_ptr<sim::PeriodicTask> task;
    Ema ema;
    int refs = 0;
    double prev_counter = 0;
    SimTime interval = 0;
  };

  /// One raw measurement, bypassing the cache.
  double Evaluate(const ProbeKey& key);
  /// Monotonic counter backing a rate service.
  double RawCounter(const ProbeKey& key) const;
  static bool IsRate(Service s) {
    return s == Service::kThroughput || s == Service::kMessageRate ||
           s == Service::kInvocationRate;
  }
  void TakeSample(const ProbeKey& key);

  core::Core& core_;
  std::unordered_map<ProbeKey, Continuous> continuous_;
  struct CacheEntry {
    double value = 0;
    SimTime at = -1;
  };
  std::unordered_map<ProbeKey, CacheEntry> cache_;
  SimTime cache_ttl_ = Millis(50);
  double alpha_ = 0.25;
  SampleHook hook_;
  std::uint64_t evaluations_ = 0;
};

}  // namespace fargo::monitor
