#include "src/monitor/trace.h"

#include <algorithm>
#include <cstring>

namespace fargo::monitor {

const char* ToString(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRoot:
      return "root";
    case SpanKind::kRetry:
      return "retry";
    case SpanKind::kHop:
      return "hop";
    case SpanKind::kExec:
      return "exec";
    case SpanKind::kMove:
      return "move";
    case SpanKind::kInstall:
      return "install";
    case SpanKind::kControl:
      return "control";
  }
  return "?";
}

const char* ToString(SpanOutcome outcome) {
  switch (outcome) {
    case SpanOutcome::kPending:
      return "pending";
    case SpanOutcome::kOk:
      return "ok";
    case SpanOutcome::kAppError:
      return "app_error";
    case SpanOutcome::kTransportError:
      return "transport_error";
    case SpanOutcome::kTimeout:
      return "timeout";
  }
  return "?";
}

void Span::SetName(std::string_view n) {
  const std::size_t len = std::min(n.size(), sizeof(name) - 1);
  std::memcpy(name, n.data(), len);
  name[len] = '\0';
}

std::string_view Span::name_view() const { return std::string_view(name); }

TraceBuffer::TraceBuffer(std::size_t capacity) {
  ring_.resize(std::max<std::size_t>(capacity, 1));
}

std::uint64_t TraceBuffer::Add(const Span& s) {
  const std::uint64_t token = next_token_++;
  Span& slot = ring_[token % ring_.size()];
  slot = s;
  slot.token = token;
  return token;
}

Span* TraceBuffer::Find(std::uint64_t token) {
  if (token == 0) return nullptr;
  Span& slot = ring_[token % ring_.size()];
  return slot.token == token ? &slot : nullptr;
}

std::size_t TraceBuffer::size() const {
  return std::min<std::uint64_t>(total_added(), ring_.size());
}

std::uint64_t TraceBuffer::evicted() const {
  return total_added() - size();
}

std::vector<Span> TraceBuffer::Snapshot() const {
  std::vector<Span> out;
  const std::size_t n = size();
  out.reserve(n);
  for (std::uint64_t token = next_token_ - n; token < next_token_; ++token) {
    const Span& slot = ring_[token % ring_.size()];
    if (slot.token == token) out.push_back(slot);
  }
  return out;
}

void TraceBuffer::Reset(std::size_t capacity) {
  const std::size_t n = capacity == 0 ? ring_.size() : capacity;
  ring_.assign(std::max<std::size_t>(n, 1), Span{});
  next_token_ = 1;
}

Tracer::Opened Tracer::OpenSpan(SpanKind kind, std::string_view name,
                                const core::wire::TraceContext& parent,
                                SimTime now, std::uint32_t retry) {
  if (!enabled_) return Opened{0, parent};
  Span s;
  if (parent.valid()) {
    s.trace_id = parent.trace_id;
    s.parent_span = parent.span_id;
  } else {
    s.trace_id = MintId();
    ++traces_started_;
  }
  s.span_id = MintId();
  s.kind = kind;
  s.retry = retry;
  s.core = core_;
  s.begin = now;
  s.end = now;
  s.SetName(name);
  Opened opened;
  opened.token = buffer_.Add(s);
  opened.ctx = core::wire::TraceContext{s.trace_id, s.span_id, s.parent_span,
                                        retry};
  return opened;
}

void Tracer::CloseSpan(std::uint64_t token, SimTime now, SpanOutcome outcome,
                       int hops, std::uint64_t bytes) {
  Span* s = buffer_.Find(token);
  if (s == nullptr) return;  // disabled, or evicted by a wrap
  s->end = now;
  s->outcome = outcome;
  s->hops = hops;
  s->bytes = bytes;
}

Tracer::Opened Tracer::RecordInstant(SpanKind kind, std::string_view name,
                                     const core::wire::TraceContext& parent,
                                     SimTime now, std::uint32_t retry) {
  Opened opened = OpenSpan(kind, name, parent, now, retry);
  CloseSpan(opened.token, now, SpanOutcome::kOk);
  return opened;
}

namespace {

void JsonEscape(std::ostream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << ' ';  // control chars cannot appear raw in JSON strings
        else
          os << c;
    }
  }
}

}  // namespace

std::size_t WriteChromeTrace(
    std::ostream& os, const std::vector<std::vector<Span>>& per_core_spans,
    const std::vector<std::pair<CoreId, std::string>>& names) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Process-name metadata rows label each Core lane.
  for (const auto& [id, name] : names) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << id.value
       << ",\"args\":{\"name\":\"";
    JsonEscape(os, name);
    os << "\"}}";
  }
  std::size_t events = 0;
  for (const std::vector<Span>& spans : per_core_spans) {
    for (const Span& s : spans) {
      if (!first) os << ",";
      first = false;
      ++events;
      // SimTime is ns; Chrome trace ts/dur are microseconds.
      const double ts = static_cast<double>(s.begin) / 1e3;
      const double dur =
          static_cast<double>(s.end > s.begin ? s.end - s.begin : 0) / 1e3;
      os << "{\"name\":\"";
      JsonEscape(os, ToString(s.kind));
      if (s.name[0] != '\0') {
        os << ":";
        JsonEscape(os, s.name_view());
      }
      os << "\",\"cat\":\"" << ToString(s.kind) << "\",\"ph\":\"X\",\"ts\":"
         << ts << ",\"dur\":" << dur << ",\"pid\":" << s.core.value
         << ",\"tid\":" << s.trace_id << ",\"args\":{\"trace\":" << s.trace_id
         << ",\"span\":" << s.span_id << ",\"parent\":" << s.parent_span
         << ",\"retry\":" << s.retry << ",\"hops\":" << s.hops
         << ",\"bytes\":" << s.bytes << ",\"outcome\":\""
         << ToString(s.outcome) << "\"}}";
    }
  }
  os << "]}";
  return events;
}

}  // namespace fargo::monitor
