// Metrics registry: counters, gauges and fixed-bucket histograms.
//
// The measurement substrate under the profiling services (§4.1): where the
// Profiler answers *policy* questions ("what is the invocation rate between
// a and b right now?"), the registry answers *mechanism* questions ("how
// many requests were deduplicated, how long do invocations take, how many
// hops does a delivery traverse?") — the numbers a layout policy, a test,
// or an operator needs to trust the machinery beneath it.
//
// Design constraints:
//  - lock-cheap: instruments are plain relaxed atomics; the registry mutex
//    is taken only at registration/dump time, never on the hot path;
//  - allocation-free on the hot path: Inc/Set/Observe never allocate.
//    Call sites resolve instruments once (Registry hands out references
//    that stay valid for the registry's lifetime) and record through them;
//  - deterministic dumps: instruments are dumped in name order.
//
// All of this is ThreadSanitizer-clean by construction (see
// tests/monitor/metrics_test.cpp), even though the simulated runtime is
// single-threaded — the registry is the one component expected to outlive
// the simulator in a real multi-threaded deployment.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fargo::monitor {

/// Monotonically increasing event count.
class Counter {
 public:
  void Inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. Bucket bounds are upper-inclusive and fixed at
/// construction; an implicit +inf bucket catches the tail. Observe() is a
/// short linear scan over the bounds (instrument bucket counts are small)
/// plus three relaxed atomic updates.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  struct Snapshot {
    std::vector<double> bounds;          ///< upper bounds; +inf implicit
    std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 entries
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot TakeSnapshot() const;

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// Upper bound of the bucket containing quantile `q` in [0,1]; the last
  /// finite bound when the quantile falls in the +inf bucket.
  double Quantile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name → instrument registry. Instruments are created on first use and
/// live as long as the registry; the returned references are stable, so
/// hot paths resolve once and record lock-free thereafter.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// First caller fixes the bucket bounds; later callers join the existing
  /// instrument (bounds argument ignored).
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Histogram bucket defaults for nanosecond durations (100us .. 10s).
  static std::vector<double> LatencyBounds();
  /// Histogram bucket defaults for small counts (hops, retries).
  static std::vector<double> CountBounds();
  /// Histogram bucket defaults for byte sizes (64B .. 16MB).
  static std::vector<double> SizeBounds();

  /// Counter/gauge value by name; 0 when the instrument does not exist.
  std::uint64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;
  /// Histogram snapshot by name; empty snapshot when absent.
  Histogram::Snapshot HistogramSnapshot(std::string_view name) const;

  /// Flat text dump, sorted by instrument name:
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   histogram <name> count=<n> sum=<s> mean=<m> p50=<..> p99=<..>
  ///     le=<bound> <count> ... le=+inf <count>
  void Dump(std::ostream& os) const;

  /// Zeroes every registered instrument (bench/test convenience).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace fargo::monitor
