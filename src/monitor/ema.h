// Exponential moving average — the paper's "typically an exponential
// average" for continuous profiling services (§4.1).
#pragma once

namespace fargo::monitor {

class Ema {
 public:
  /// `alpha` is the weight of each new sample (0 < alpha <= 1).
  explicit Ema(double alpha = 0.25) : alpha_(alpha) {}

  void Add(double sample) {
    if (!seeded_) {
      value_ = sample;
      seeded_ = true;
    } else {
      value_ += alpha_ * (sample - value_);
    }
    ++samples_;
  }

  /// Current average; 0 until the first sample.
  double value() const { return seeded_ ? value_ : 0.0; }
  bool seeded() const { return seeded_; }
  unsigned long long samples() const { return samples_; }
  double alpha() const { return alpha_; }

  void Reset() {
    seeded_ = false;
    value_ = 0.0;
    samples_ = 0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
  unsigned long long samples_ = 0;
};

}  // namespace fargo::monitor
