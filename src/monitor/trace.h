// Causal tracing: spans recorded per Core into a fixed-capacity ring
// buffer, linked into traces by the wire-propagated TraceContext
// (src/core/wire.h).
//
// A trace is minted at each root invocation (or root movement / heartbeat
// round) and every message of its causal chain — forwarding hops, retries,
// the execution itself, chain-shortening updates, the migration stream —
// records a span carrying the same trace id. Span taxonomy:
//
//   kRoot     origin-side invocation, one per Invoke call (the trace root
//             unless the invocation is nested inside another span)
//   kRetry    one per resent attempt (same trace, retry = n tag)
//   kHop      one per intermediate forwarding Core
//   kExec     the method execution at the host
//   kMove     sender side of a movement (duration = stream send .. ack)
//   kInstall  receiver side of a movement
//   kControl  control-plane traffic (heartbeat ping/pong, tracker updates)
//
// Invariants locked down by tests/monitor/trace_test.cpp: every span's
// trace id resolves to exactly one root (parent_span == 0) span across all
// Cores, and an invocation records exactly 1 + forwarding-hops + retries
// origin/hop spans.
//
// Span recording is cheap (one ring slot write, no allocation: names are
// clamped into a fixed char array) so tracing can stay on during soaks;
// export is Chrome trace-event JSON (chrome://tracing, Perfetto) via
// WriteChromeTrace / Core::DumpTrace / Runtime::DumpTrace.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/core/wire.h"

namespace fargo::monitor {

enum class SpanKind : std::uint8_t {
  kRoot = 0,
  kRetry = 1,
  kHop = 2,
  kExec = 3,
  kMove = 4,
  kInstall = 5,
  kControl = 6,
};
const char* ToString(SpanKind kind);

enum class SpanOutcome : std::uint8_t {
  kPending = 0,         ///< span never closed (crash, eviction, timeout path)
  kOk = 1,
  kAppError = 2,        ///< the method ran and threw
  kTransportError = 3,  ///< never executed (severed route, park expiry...)
  kTimeout = 4,         ///< all attempts exhausted without a reply
};
const char* ToString(SpanOutcome outcome);

/// One recorded span. Fixed-size (the name is clamped) so the ring buffer
/// is a flat preallocated array and recording never allocates.
struct Span {
  std::uint64_t token = 0;  ///< buffer sequence number (eviction check)
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  SpanKind kind = SpanKind::kRoot;
  SpanOutcome outcome = SpanOutcome::kPending;
  std::uint32_t retry = 0;  ///< retry ordinal (kRetry), else 0
  int hops = 0;             ///< forwarding hops at delivery (kRoot/kExec)
  CoreId core;              ///< Core that recorded the span
  SimTime begin = 0;
  SimTime end = 0;
  std::uint64_t bytes = 0;  ///< stream size (kMove/kInstall)
  char name[32] = {};       ///< method / detail, clamped

  void SetName(std::string_view n);
  std::string_view name_view() const;
};

/// Fixed-capacity ring of spans. Tokens are monotonically increasing; a
/// span stays addressable by token until `capacity` newer spans evict it.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 8192);

  /// Copies `s` into the ring, stamping and returning its token.
  std::uint64_t Add(const Span& s);
  /// Span by token; nullptr once evicted. The pointer is valid until the
  /// next Add that wraps onto its slot.
  Span* Find(std::uint64_t token);

  /// Oldest-to-newest copy of the live contents.
  std::vector<Span> Snapshot() const;

  std::size_t size() const;
  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t total_added() const { return next_token_ - 1; }
  std::uint64_t evicted() const;

  /// Drops all recorded spans; `capacity = 0` keeps the current size.
  void Reset(std::size_t capacity = 0);

 private:
  std::vector<Span> ring_;
  std::uint64_t next_token_ = 1;  ///< token 0 = "no span"
};

/// Per-Core tracing front end: mints trace/span ids (deterministically,
/// from the Core id and a local sequence), maintains the ambient context
/// stack (so nested invocations chain causally), and records spans into
/// the Core's ring buffer. All calls are no-ops while disabled — contexts
/// pass through unchanged, so a tracing origin keeps trace continuity
/// across non-tracing Cores.
class Tracer {
 public:
  explicit Tracer(CoreId core, std::size_t capacity = 8192)
      : core_(core), buffer_(capacity) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void SetEnabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  struct Opened {
    std::uint64_t token = 0;       ///< 0 while disabled
    core::wire::TraceContext ctx;  ///< context for wire propagation
  };

  /// Opens a span under `parent` (a fresh trace when `parent` is invalid).
  /// Returns the new span's wire context; the caller closes it by token.
  Opened OpenSpan(SpanKind kind, std::string_view name,
                  const core::wire::TraceContext& parent, SimTime now,
                  std::uint32_t retry = 0);

  void CloseSpan(std::uint64_t token, SimTime now, SpanOutcome outcome,
                 int hops = 0, std::uint64_t bytes = 0);

  /// Zero-duration span (forwarding hops, control traffic).
  Opened RecordInstant(SpanKind kind, std::string_view name,
                       const core::wire::TraceContext& parent, SimTime now,
                       std::uint32_t retry = 0);

  // -- ambient context (nested-invocation chaining) ---------------------------
  void Push(const core::wire::TraceContext& ctx) { stack_.push_back(ctx); }
  void Pop() { stack_.pop_back(); }
  core::wire::TraceContext Current() const {
    return stack_.empty() ? core::wire::TraceContext{} : stack_.back();
  }

  TraceBuffer& buffer() { return buffer_; }
  const TraceBuffer& buffer() const { return buffer_; }

  std::uint64_t traces_started() const { return traces_started_; }

 private:
  std::uint64_t MintId() {
    return (static_cast<std::uint64_t>(core_.value) << 40) | ++next_seq_;
  }

  CoreId core_;
  bool enabled_ = false;
  std::uint64_t next_seq_ = 0;
  std::uint64_t traces_started_ = 0;
  TraceBuffer buffer_;
  std::vector<core::wire::TraceContext> stack_;
};

/// RAII ambient-context scope around a dispatched execution.
class TraceScope {
 public:
  TraceScope(Tracer& tracer, const core::wire::TraceContext& ctx)
      : tracer_(tracer) {
    tracer_.Push(ctx);
  }
  ~TraceScope() { tracer_.Pop(); }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer& tracer_;
};

/// Serializes spans as Chrome trace-event JSON ("X" complete events; pid =
/// recording Core, tid = trace id, causal links in args). `names` labels
/// pids with Core names. Returns the number of events written.
std::size_t WriteChromeTrace(
    std::ostream& os, const std::vector<std::vector<Span>>& per_core_spans,
    const std::vector<std::pair<CoreId, std::string>>& names);

}  // namespace fargo::monitor
