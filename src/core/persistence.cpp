#include "src/core/persistence.h"

#include <cstdio>
#include <memory>

#include "src/common/log.h"
#include "src/core/meta_ref.h"
#include "src/core/relocator.h"
#include "src/core/wal.h"
#include "src/core/wire.h"
#include "src/monitor/events.h"
#include "src/serial/graph.h"

namespace fargo::core {

namespace {
constexpr std::uint32_t kImageMagic = 0x464152u;  // "FAR"
constexpr std::uint8_t kImageVersion = 1;
}  // namespace

// fargolint: allow(wire-asymmetry) graph codec, not a field-wise wire pair: the writer stamps a routing hint the reader consumes via ReadHandle
std::vector<std::uint8_t> EncodeComletImage(Core& core, const Anchor& anchor) {  // fargolint: allow(wire-schema) hook-driven graph codec: ops interleave per reference, not as a linear field list
  // Closure with verbatim reference semantics: relocator object + handle
  // carrying this Core's best routing knowledge.
  serial::Writer body;
  auto hook = [&core](serial::GraphWriter& gw, const void* p) {
    const auto* ref = static_cast<const ComletRefBase*>(p);
    gw.WriteObject(ref->meta()->GetRelocator().get());
    ComletHandle handle = ref->handle();
    if (const TrackerEntry* e = core.trackers().Find(handle.id))
      handle.last_known = e->is_local() ? core.id() : e->next;
    wire::WriteHandle(gw.raw(), handle);
  };
  serial::GraphWriter gw(body, hook);
  gw.WriteObject(&anchor);
  return body.Take();
}

// fargolint: allow(wire-asymmetry) graph codec, not a field-wise wire pair: object graphs are rebuilt via ReadObjectAs, not field reads
std::shared_ptr<Anchor> DecodeComletImage(
    Core& core, ComletId id, const std::vector<std::uint8_t>& body) {
  auto hook = [&core, id](serial::GraphReader& gr, void* p) {
    auto* ref = static_cast<ComletRefBase*>(p);
    auto relocator = gr.ReadObjectAs<Relocator>();
    ComletHandle handle = wire::ReadHandle(gr.raw());
    ref->Bind(core, handle, std::make_shared<MetaRef>(handle.id, relocator),
              id);
  };
  serial::Reader body_reader(body);
  serial::GraphReader gr(body_reader, hook);
  std::shared_ptr<Anchor> anchor = gr.ReadObjectAs<Anchor>();
  if (!anchor) throw serial::SerialError("image carried a null anchor");
  anchor->id_ = id;
  return anchor;
}

std::vector<std::uint8_t> SaveCoreImage(Core& core) {
  serial::Writer out;
  out.WriteVarint(kImageMagic);
  out.WriteU8(kImageVersion);

  const std::vector<ComletId> ids = core.ComletsHere();
  out.WriteVarint(ids.size());
  for (ComletId id : ids) {
    std::shared_ptr<Anchor> anchor = core.repository().Get(id);
    wire::WriteComletId(out, id);
    out.WriteString(anchor->TypeName());
    out.WriteBytes(EncodeComletImage(core, *anchor));
  }

  // Name bindings.
  const auto names = core.naming().All();
  out.WriteVarint(names.size());
  for (const auto& [name, handle] : names) {
    out.WriteString(name);
    wire::WriteHandle(out, handle);
  }
  return out.Take();
}

RestoreResult LoadCoreImage(Core& core,
                            const std::vector<std::uint8_t>& image) {
  serial::Reader in(image);
  if (in.ReadVarint() != kImageMagic)
    throw serial::SerialError("not a FarGo core image");
  if (in.ReadU8() != kImageVersion)
    throw serial::SerialError("unsupported core-image version");

  RestoreResult result;
  const std::uint64_t count = in.ReadVarint();
  for (std::uint64_t i = 0; i < count; ++i) {
    ComletId id = wire::ReadComletId(in);
    std::string type = in.ReadString();
    (void)type;
    std::vector<std::uint8_t> body = in.ReadBytes();

    if (core.repository().Contains(id)) {
      // The live copy wins; tell listeners rather than warn into a log
      // nobody watches (an operator restoring onto a busy Core needs to
      // know which complets kept their in-memory state).
      LogWarn() << "restore skipped " << ToString(id)
                << ": already hosted at " << core.name();
      core.events().Fire(monitor::Event{
          monitor::EventKind::kComletRestoreSkipped, core.id(), id, {}, 0.0});
      result.skipped.push_back(id);
      continue;
    }

    std::shared_ptr<Anchor> anchor = DecodeComletImage(core, id, body);
    anchor->PreArrival();
    core.Install(anchor);
    anchor->PostArrival();
    result.restored.push_back(id);
  }

  const std::uint64_t names = in.ReadVarint();
  for (std::uint64_t i = 0; i < names; ++i) {
    std::string name = in.ReadString();
    ComletHandle handle = wire::ReadHandle(in);
    // Restored bindings are mutations like any other: durable Cores log
    // them (a no-op while the WAL itself is replaying this image).
    if (Wal* wal = core.wal()) wal->AppendBind(name, handle);
    core.naming().Bind(std::move(name), std::move(handle));
  }
  return result;
}

void SaveCoreImageToFile(Core& core, const std::string& path) {
  std::vector<std::uint8_t> image = SaveCoreImage(core);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw FargoError("cannot open for writing: " + path);
  const std::size_t written = std::fwrite(image.data(), 1, image.size(), f);
  std::fclose(f);
  if (written != image.size())
    throw FargoError("short write to checkpoint file: " + path);
}

RestoreResult LoadCoreImageFromFile(Core& core, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw FargoError("cannot open checkpoint: " + path);
  std::vector<std::uint8_t> image;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    image.insert(image.end(), buf, buf + n);
  std::fclose(f);
  return LoadCoreImage(core, image);
}

}  // namespace fargo::core
