#include "src/core/persistence.h"

#include <cstdio>
#include <memory>

#include "src/common/log.h"
#include "src/core/meta_ref.h"
#include "src/core/relocator.h"
#include "src/core/wire.h"
#include "src/serial/graph.h"

namespace fargo::core {

namespace {
constexpr std::uint32_t kImageMagic = 0x464152u;  // "FAR"
constexpr std::uint8_t kImageVersion = 1;
}  // namespace

std::vector<std::uint8_t> SaveCoreImage(Core& core) {
  serial::Writer out;
  out.WriteVarint(kImageMagic);
  out.WriteU8(kImageVersion);

  const std::vector<ComletId> ids = core.ComletsHere();
  out.WriteVarint(ids.size());
  for (ComletId id : ids) {
    std::shared_ptr<Anchor> anchor = core.repository().Get(id);
    wire::WriteComletId(out, id);
    out.WriteString(anchor->TypeName());

    // Closure with verbatim reference semantics: relocator object + handle
    // carrying this Core's best routing knowledge.
    serial::Writer body;
    auto hook = [&core](serial::GraphWriter& gw, const void* p) {
      const auto* ref = static_cast<const ComletRefBase*>(p);
      gw.WriteObject(ref->meta()->GetRelocator().get());
      ComletHandle handle = ref->handle();
      if (const TrackerEntry* e = core.trackers().Find(handle.id))
        handle.last_known = e->is_local() ? core.id() : e->next;
      wire::WriteHandle(gw.raw(), handle);
    };
    serial::GraphWriter gw(body, hook);
    gw.WriteObject(anchor.get());
    out.WriteBytes(body.buffer());
  }

  // Name bindings.
  const auto names = core.naming().All();
  out.WriteVarint(names.size());
  for (const auto& [name, handle] : names) {
    out.WriteString(name);
    wire::WriteHandle(out, handle);
  }
  return out.Take();
}

std::vector<ComletId> LoadCoreImage(Core& core,
                                    const std::vector<std::uint8_t>& image) {
  serial::Reader in(image);
  if (in.ReadVarint() != kImageMagic)
    throw serial::SerialError("not a FarGo core image");
  if (in.ReadU8() != kImageVersion)
    throw serial::SerialError("unsupported core-image version");

  std::vector<ComletId> restored;
  const std::uint64_t count = in.ReadVarint();
  for (std::uint64_t i = 0; i < count; ++i) {
    ComletId id = wire::ReadComletId(in);
    std::string type = in.ReadString();
    (void)type;
    std::vector<std::uint8_t> body = in.ReadBytes();

    if (core.repository().Contains(id)) {
      LogWarn() << "restore skipped " << ToString(id)
                << ": already hosted at " << core.name();
      continue;
    }

    auto hook = [&core, id](serial::GraphReader& gr, void* p) {
      auto* ref = static_cast<ComletRefBase*>(p);
      auto relocator = gr.ReadObjectAs<Relocator>();
      ComletHandle handle = wire::ReadHandle(gr.raw());
      ref->Bind(core, handle, std::make_shared<MetaRef>(handle.id, relocator),
                id);
    };
    serial::Reader body_reader(body);
    serial::GraphReader gr(body_reader, hook);
    std::shared_ptr<Anchor> anchor = gr.ReadObjectAs<Anchor>();
    if (!anchor) throw serial::SerialError("image carried a null anchor");
    anchor->id_ = id;
    anchor->PreArrival();
    core.Install(anchor);
    anchor->PostArrival();
    restored.push_back(id);
  }

  const std::uint64_t names = in.ReadVarint();
  for (std::uint64_t i = 0; i < names; ++i) {
    std::string name = in.ReadString();
    ComletHandle handle = wire::ReadHandle(in);
    core.naming().Bind(std::move(name), std::move(handle));
  }
  return restored;
}

void SaveCoreImageToFile(Core& core, const std::string& path) {
  std::vector<std::uint8_t> image = SaveCoreImage(core);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw FargoError("cannot open for writing: " + path);
  const std::size_t written = std::fwrite(image.data(), 1, image.size(), f);
  std::fclose(f);
  if (written != image.size())
    throw FargoError("short write to checkpoint file: " + path);
}

std::vector<ComletId> LoadCoreImageFromFile(Core& core,
                                            const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw FargoError("cannot open checkpoint: " + path);
  std::vector<std::uint8_t> image;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    image.insert(image.end(), buf, buf + n);
  std::fclose(f);
  return LoadCoreImage(core, image);
}

}  // namespace fargo::core
