#include "src/core/repository.h"

#include <algorithm>

#include "src/common/value.h"

namespace fargo::core {

void Repository::Add(ComletId id, std::shared_ptr<Anchor> anchor) {
  if (!anchor) throw FargoError("null anchor registered");
  anchors_[id] = std::move(anchor);
}

std::shared_ptr<Anchor> Repository::Get(ComletId id) const {
  auto it = anchors_.find(id);
  return it == anchors_.end() ? nullptr : it->second;
}

std::shared_ptr<Anchor> Repository::Remove(ComletId id) {
  auto it = anchors_.find(id);
  if (it == anchors_.end()) return nullptr;
  std::shared_ptr<Anchor> anchor = std::move(it->second);
  anchors_.erase(it);
  return anchor;
}

std::shared_ptr<Anchor> Repository::FindByType(
    std::string_view anchor_type) const {
  // Deterministic choice: smallest ComletId wins.
  std::shared_ptr<Anchor> best;
  ComletId best_id{};
  // fargolint: order-insensitive(min-id winner is the same whatever the visit order)
  for (const auto& [id, anchor] : anchors_) {
    if (anchor->TypeName() != anchor_type) continue;
    if (!best || id < best_id) {
      best = anchor;
      best_id = id;
    }
  }
  return best;
}

std::vector<ComletId> Repository::All() const {
  std::vector<ComletId> ids;
  ids.reserve(anchors_.size());
  // fargolint: order-insensitive(ids are sorted before return)
  for (const auto& [id, anchor] : anchors_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace fargo::core
