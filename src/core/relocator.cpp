#include "src/core/relocator.h"

#include "src/common/value.h"

namespace fargo::core {

const char* ToString(RelocEffect effect) {
  switch (effect) {
    case RelocEffect::kTrack:
      return "track";
    case RelocEffect::kMoveAlong:
      return "move-along";
    case RelocEffect::kCopyAlong:
      return "copy-along";
    case RelocEffect::kRebind:
      return "rebind";
  }
  return "?";
}

void RegisterBuiltinRelocators() {
  serial::RegisterType<Link>();
  serial::RegisterType<Pull>();
  serial::RegisterType<Duplicate>();
  serial::RegisterType<Stamp>();
}

std::shared_ptr<Relocator> MakeDefaultRelocator() {
  return std::make_shared<Link>();
}

std::shared_ptr<Relocator> MakeRelocator(std::string_view kind) {
  if (kind == "link") return std::make_shared<Link>();
  if (kind == "pull") return std::make_shared<Pull>();
  if (kind == "duplicate") return std::make_shared<Duplicate>();
  if (kind == "stamp") return std::make_shared<Stamp>();
  throw FargoError("unknown reference type: " + std::string(kind));
}

}  // namespace fargo::core
