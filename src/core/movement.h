// The Movement unit (Fig 1, §3.3): marshals complet closures under layout
// constraints and migrates them between Cores.
//
// During the object-graph traversal every outgoing complet reference is
// handed to this unit (via the serializer's ref hook), which dispatches on
// the reference's Relocator:
//   - link:      a descriptor (handle + relocator) is written; the target
//                stays tracked through chains.
//   - pull:      a locally hosted target joins the same stream (single
//                inter-Core message); remote targets get a forwarded move
//                request after the primary move commits.
//   - duplicate: a copy of a locally hosted target joins the stream under a
//                freshly minted identity; the original stays. (A remote
//                duplicate target degrades to link with a warning — the
//                paper leaves this case unspecified.)
//   - stamp:     only the target's anchor type is written; the destination
//                re-binds to an equivalent-type local complet, or leaves the
//                reference unbound if none exists.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/ids.h"
#include "src/common/value.h"
#include "src/core/core.h"
#include "src/net/network.h"
#include "src/serial/bytes.h"
#include "src/sim/future.h"

namespace fargo::core {

/// Statistics of the last outbound move performed by this Core (bench/test
/// telemetry).
struct MoveStats {
  std::size_t complets_moved = 0;       ///< primary + pulled
  std::size_t complets_duplicated = 0;
  std::size_t refs_linked = 0;
  std::size_t refs_stamped = 0;
  std::size_t stream_bytes = 0;
  std::size_t deferred_remote_pulls = 0;
};

// fargo: domain(core)
class MovementUnit {
 public:
  explicit MovementUnit(Core& core) : core_(core) {}

  /// Moves a locally hosted complet (and whatever its references' layout
  /// semantics drag along) to `dest` in one inter-Core message. Blocks
  /// until the destination acknowledges; rolls the complets back on
  /// failure.
  void MoveLocal(ComletId primary, CoreId dest, std::string continuation,
                 std::vector<Value> args);

  /// Asynchronous form of MoveLocal. Marshals and transitions the complets
  /// out synchronously (invocations racing the stream start parking at once),
  /// then settles the returned future when the destination acknowledges AND
  /// every deferred remote pull has run its course (pull failures are logged,
  /// never propagated — matching MoveLocal). Rejects with the same
  /// exceptions MoveLocal throws.
  sim::Future<sim::Unit> MoveLocalAsync(ComletId primary, CoreId dest,
                                        std::string continuation,
                                        std::vector<Value> args);

  /// Handles an inbound migration stream.
  void HandleMoveRequest(net::Message msg);

  /// Answers a recovering source's "did txn N from you ever install here?"
  /// from the move-in set (kRecoveryQuery -> kRecoveryReply).
  void HandleRecoveryQuery(const net::Message& msg);

  /// Marks a movement transaction as installed at this (destination) Core;
  /// durable Cores log it (kWalMoveIn). Idempotent.
  void RecordMoveIn(CoreId from, std::uint64_t txn);
  /// Prunes a move-in mark once the source says its commit record is
  /// durable (kCtrlMoveAck): the source will never query that txn again.
  /// Durable Cores log the drop (kWalMoveInAck) so replay converges on the
  /// pruned set. Idempotent.
  void DropMoveIn(CoreId from, std::uint64_t txn);
  bool WasMovedIn(CoreId from, std::uint64_t txn) const {
    return move_ins_.contains({from.value, txn});
  }
  /// Tombstones a movement transaction at this (destination) Core: it was
  /// resolved "never installed" by the source's recovery, so a late copy of
  /// its stream must be rejected rather than installed — the source has
  /// already reinstalled the complets. Durable Cores log it (kWalMoveDead).
  /// Idempotent.
  void RecordDeadTxn(CoreId from, std::uint64_t txn);
  bool IsDeadTxn(CoreId from, std::uint64_t txn) const {
    return dead_txns_.contains({from.value, txn});
  }
  /// (source core value, txn), ordered — WAL checkpoints walk this.
  const std::set<std::pair<std::uint32_t, std::uint64_t>>& move_ins() const {
    return move_ins_;
  }
  /// Tombstoned transactions, same keying — WAL checkpoints walk this too.
  const std::set<std::pair<std::uint32_t, std::uint64_t>>& dead_txns() const {
    return dead_txns_;
  }

  /// Reinstalls the non-duplicate sections of a staged migration stream
  /// that are not already hosted — aborted-move recovery at the source.
  void ReinstallFromStream(const std::vector<std::uint8_t>& stream);

  /// Drops volatile movement state (Core restart).
  void Reset() {
    move_ins_.clear();
    dead_txns_.clear();
  }

  const MoveStats& last_move_stats() const { return stats_; }

 private:
  struct Section {
    ComletId id;
    std::string anchor_type;
    bool is_duplicate = false;
    /// Hint-epoch proposal for the new location: the source entry's stamp
    /// plus one (fresh duplicates propose 1). The destination publishes it;
    /// the home shard applies it only if it outranks the stored epoch.
    std::uint64_t epoch = 0;
    std::shared_ptr<Anchor> anchor;  ///< sending side
  };

  /// One unmarshaled stream section: a decoded (not yet installed) anchor.
  struct DecodedSection {
    ComletId id;
    std::string anchor_type;
    bool is_duplicate = false;
    std::uint64_t epoch = 0;
    std::shared_ptr<Anchor> anchor;
  };
  DecodedSection DecodeSection(serial::Reader& r);

  /// Serializes one complet section; ref hooks may append further sections
  /// to `worklist`. `dup_ids` maps originals to their one-per-move copy so
  /// duplicate references from different sections share a single copy.
  void MarshalSection(serial::Writer& out, const Section& section,
                      CoreId dest, std::vector<Section>& worklist,
                      std::unordered_set<ComletId>& in_stream,
                      std::unordered_map<ComletId, ComletId>& dup_ids,
                      std::vector<ComletId>& deferred_pulls);

  Core& core_;
  MoveStats stats_;
  /// Movement transactions installed here, keyed (source value, txn).
  /// Exactly-once anchor for crash recovery: a recovering source commits
  /// or aborts its in-doubt prepares by whether its txn appears here. A
  /// mark lives until the source acknowledges its commit is durable
  /// (DropMoveIn), so the set holds only moves whose source could still
  /// ask — not one permanent entry per inbound move. Marks from a source
  /// that rolled back without crashing (the lost-reply ambiguity) are never
  /// acked and stay; txn ids are never reused, so they are inert.
  std::set<std::pair<std::uint32_t, std::uint64_t>> move_ins_;
  /// Transactions this Core promised never to install (answered "not
  /// installed" to a kRecoveryQuery): a chaos-delayed or duplicated move
  /// stream arriving after that answer is rejected, not installed — the
  /// source's recovery already reinstalled the complets, so installing here
  /// would duplicate them. Never pruned: only crashed moves mint entries,
  /// and dropping one would re-open the late-stream window.
  std::set<std::pair<std::uint32_t, std::uint64_t>> dead_txns_;
};

}  // namespace fargo::core
