// The Invocation unit (Fig 1, §3.1): routes method invocations from stubs
// through tracker chains to the target anchor, implements the parameter
// passing scheme, and shortens chains on return.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/ids.h"
#include "src/common/value.h"
#include "src/core/core.h"
#include "src/core/wire.h"
#include "src/monitor/trace.h"
#include "src/net/network.h"

namespace fargo::core {

class InvocationUnit {
 public:
  explicit InvocationUnit(Core& core) : core_(core) {}

  /// Invokes `method` on the complet named by `handle`. Dispatches directly
  /// when the target is hosted here; otherwise forwards along the tracker
  /// chain, blocks for the reply, and repoints this Core's tracker to the
  /// target's answered location (chain shortening, §3.1).
  ///
  /// When the Core's RetryPolicy allows more than one attempt, retry-safe
  /// failures (timeouts and transport-flagged error replies, both of which
  /// mean the method never executed) are retried with exponential backoff.
  /// Retries reuse the original correlation, and executors dedup on
  /// (origin, correlation), so a method runs at most once per Invoke call.
  ///
  /// On a transport failure (severed chain, dead Core) with the home
  /// registry enabled, the target's home is consulted and the invocation
  /// retried once along the fresh route — safe because UnreachableError
  /// means the request never executed.
  InvokeResult Invoke(const ComletHandle& handle, std::string_view method,
                      std::vector<Value> args);

  /// One-way invocation: routes exactly like Invoke but returns
  /// immediately; the result (or error) is discarded. The paper's Core
  /// starts a thread per invocation — this is the sender-side analogue for
  /// fire-and-forget interactions.
  void Post(const ComletHandle& handle, std::string_view method,
            std::vector<Value> args);

  /// Request arriving from the network: execute here, forward to the next
  /// tracker hop, or park if the target is in transit to this Core.
  void HandleRequest(net::Message msg);

  /// Reply arriving at the origin.
  void HandleReply(net::Message msg);

  /// Chain-shortening notification: repoint our tracker for a complet.
  void HandleTrackerUpdate(net::Message msg);

  /// Maximum forwarding hops before a request is failed (routing-loop
  /// safety net).
  void SetMaxHops(int n) { max_hops_ = n; }

  /// Ablation switch: disables automatic chain shortening (§3.1) at this
  /// Core — no origin repoint, no TrackerUpdate fan-out when executing.
  void SetChainShortening(bool on) { shortening_ = on; }
  bool chain_shortening() const { return shortening_; }

 private:
  /// Opens the root span, delegates to DoInvokeRouted, closes the span with
  /// the outcome and records the invocation metrics.
  InvokeResult DoInvoke(const ComletHandle& handle, std::string_view method,
                        const std::vector<Value>& args);
  /// The actual routing/retry loop. `fail_outcome` is set at throw sites so
  /// DoInvoke can close the root span with the precise failure kind.
  InvokeResult DoInvokeRouted(const ComletHandle& handle,
                              std::string_view method,
                              const std::vector<Value>& args,
                              const wire::TraceContext& root,
                              monitor::SpanOutcome& fail_outcome);

  struct Waiter {
    bool done = false;
    bool ok = false;
    bool transport_failure = false;  ///< error, and the method never ran
    std::string error;
    Value value;
    CoreId location;
    int hops = 0;
    wire::TraceContext trace;  ///< executor-side span the reply came from
  };

  void ExecuteAndReply(const wire::InvokeRequest& rq,
                       std::uint64_t correlation);

  Core& core_;
  int max_hops_ = 64;
  bool shortening_ = true;
  std::unordered_map<std::uint64_t, Waiter> waiters_;
};

}  // namespace fargo::core
