// The Invocation unit (Fig 1, §3.1): routes method invocations from stubs
// through tracker chains to the target anchor, implements the parameter
// passing scheme, and shortens chains on return.
//
// Invocations run as an explicit asynchronous state machine: each remote
// call is a heap-allocated AsyncCall record driven entirely by scheduled
// continuations (send → timeout → backoff → resend → reply), never by
// re-entrant scheduler pumps. The synchronous Invoke is a thin wrapper that
// pumps the scheduler at top level until the call's future settles.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/value.h"
#include "src/core/core.h"
#include "src/core/wire.h"
#include "src/monitor/trace.h"
#include "src/net/network.h"
#include "src/sim/future.h"

namespace fargo::core {

// fargo: domain(core)
class InvocationUnit {
 public:
  explicit InvocationUnit(Core& core) : core_(core) {}

  /// Invokes `method` on the complet named by `handle`. Dispatches directly
  /// when the target is hosted here; otherwise forwards along the tracker
  /// chain, blocks for the reply, and repoints this Core's tracker to the
  /// target's answered location (chain shortening, §3.1).
  ///
  /// When the Core's RetryPolicy allows more than one attempt, retry-safe
  /// failures (timeouts and transport-flagged error replies, both of which
  /// mean the method never executed) are retried with exponential backoff.
  /// Retries reuse the original correlation and session key, and executors
  /// detect duplicates by slot replay (src/net/session.h), so a method runs
  /// at most once per Invoke call.
  ///
  /// On a transport failure (severed chain, dead Core) with the home
  /// registry enabled, the target's home is consulted and the invocation
  /// retried once along the fresh route — safe because UnreachableError
  /// means the request never executed.
  InvokeResult Invoke(const ComletHandle& handle, std::string_view method,
                      std::vector<Value> args);

  /// Asynchronous form of Invoke: returns immediately with a future that
  /// settles when the invocation completes (value) or fails (the same
  /// exceptions Invoke throws). Multiple InvokeAsync calls pipeline: N
  /// concurrent invocations over a high-latency link complete in ~1 RTT
  /// instead of N RTTs.
  sim::Future<InvokeResult> InvokeAsync(const ComletHandle& handle,
                                        std::string_view method,
                                        std::vector<Value> args);

  /// One-way invocation: routes exactly like Invoke but returns
  /// immediately; the result (or error) is discarded. The paper's Core
  /// starts a thread per invocation — this is the sender-side analogue for
  /// fire-and-forget interactions.
  void Post(const ComletHandle& handle, std::string_view method,
            std::vector<Value> args);

  /// Request arriving from the network: execute here, forward to the next
  /// tracker hop, or park if the target is in transit to this Core.
  void HandleRequest(net::Message msg);

  /// Reply arriving at the origin.
  void HandleReply(net::Message msg);

  /// Chain-shortening notification: repoint our tracker for a complet.
  void HandleTrackerUpdate(net::Message msg);

  /// Tracker-change callback (wired by the Core): wakes invocations parked
  /// on a missing route once the target lands or a forward appears.
  void NotifyRouteChanged(ComletId id);

  /// Maximum forwarding hops before a request is failed (routing-loop
  /// safety net).
  void SetMaxHops(int n) { max_hops_ = n; }

  /// Ablation switch: disables automatic chain shortening (§3.1) at this
  /// Core — no origin repoint, no TrackerUpdate fan-out when executing.
  void SetChainShortening(bool on) { shortening_ = on; }
  bool chain_shortening() const { return shortening_; }

 private:
  /// One origin-side invocation in flight: a stable heap record shared by
  /// the waiter map, the attempt/backoff timers, and the reply path — so
  /// bookkeeping survives map rehashes (nested invocations insert into the
  /// same map) and late replies can be told apart from live ones.
  struct AsyncCall {
    explicit AsyncCall(sim::Scheduler& s) : promise(s) {}
    /// The invocation as it will travel the wire, built ONCE per call:
    /// attempts mutate only `req.trace` and `req.handle.last_known` in
    /// place, so resends never re-copy the method name or the argument
    /// values (they used to, per attempt). Local dispatch reads the same
    /// fields, so the record is also the single owner of handle/method/args.
    wire::InvokeRequest req;
    sim::Promise<InvokeResult> promise;
    monitor::Tracer::Opened root{};  ///< the invocation's root span
    SimTime begin = 0;
    std::uint64_t corr = 0;
    /// Session slot leased for this call (net/session.h): every resend
    /// reuses it, so the executor recognizes duplicates by slot replay.
    /// Released when the call settles.
    net::SessionKey skey;
    int attempt = 0;
    int max_attempts = 1;
    sim::TaskId timer = 0;  ///< pending timeout or backoff task
  };

  /// One invocation parked on a missing route (target in transit to us).
  struct RouteWait {
    std::shared_ptr<AsyncCall> call;
    sim::TaskId timer = 0;  ///< deadline task
  };

  /// One routed attempt sequence: opens the root span and dispatches
  /// locally, parks on the route, or goes remote. (The home-registry
  /// fallback in InvokeAsync wraps this.) Takes ownership of `args`.
  sim::Future<InvokeResult> StartCall(const ComletHandle& handle,
                                      const std::string& method,
                                      std::vector<Value> args);

  void DispatchLocalCall(const std::shared_ptr<AsyncCall>& call);
  /// Origin-side twin of ExecuteMoveAndReply: a kMoveMethod call whose
  /// target is hosted right here runs through MoveLocalAsync and settles
  /// from the continuation (never via DispatchLocal's synchronous MoveLocal,
  /// which pumps).
  void DispatchLocalMove(const std::shared_ptr<AsyncCall>& call);
  /// Decodes a routed __fargo.move request and starts the movement; decode
  /// errors and a vanished target come back as a rejected future.
  sim::Future<sim::Unit> StartLocalMove(const wire::InvokeRequest& rq,
                                        const wire::TraceContext& ctx);
  void AwaitRoute(const std::shared_ptr<AsyncCall>& call, SimTime deadline);
  void ResumeAfterRoute(const std::shared_ptr<AsyncCall>& call,
                        SimTime deadline);
  void BeginRemote(const std::shared_ptr<AsyncCall>& call);
  void SendAttempt(const std::shared_ptr<AsyncCall>& call);
  void OnAttemptTimeout(const std::shared_ptr<AsyncCall>& call);
  void ArmBackoffResend(const std::shared_ptr<AsyncCall>& call);

  /// Completion: closes the root span, records metrics, settles the future.
  void FinalizeOk(const std::shared_ptr<AsyncCall>& call, InvokeResult res);
  void FinalizeError(const std::shared_ptr<AsyncCall>& call,
                     std::exception_ptr error, monitor::SpanOutcome outcome);

  /// Executor-side handling of a decoded request. `msg` is the carrier the
  /// request arrived in (payload only needed if the request parks); the
  /// same-Core loopback fast path calls this directly with an empty-payload
  /// carrier, skipping wire encode/decode entirely.
  void ProcessRequest(wire::InvokeRequest rq, net::Message msg);

  /// Routes `rq` at this Core: execute, park, or forward. Under the sharded
  /// directory, a non-hosting Core only chains along its own tracker hint
  /// when that hint is strictly fresher than the stamp the request was
  /// routed by; otherwise (`allow_lookup`) it asks the home shard once,
  /// merges the answer into its tracker, and re-routes — bounding steady-
  /// state delivery at two hops however long the underlying chain is.
  void RouteRequest(wire::InvokeRequest rq, net::Message msg,
                    bool allow_lookup);
  /// One chain hop: re-parents the trace, stamps the request with the
  /// routing knowledge's epoch, and forwards to `entry.next`.
  void ForwardRequest(wire::InvokeRequest rq, const net::Message& msg,
                      TrackerEntry& entry);

  void ExecuteAndReply(const wire::InvokeRequest& rq,
                       std::uint64_t correlation,
                       const net::SessionKey& skey);
  /// Executor side of a routed __fargo.move: runs the movement through
  /// MoveLocalAsync and sends the reply (or the oneway slot bookkeeping)
  /// from its settle continuation. Executor handlers are non-blocking state
  /// machines — under FARGO_PARALLEL a nested pump inside a locality worker
  /// would deadlock the round barrier — so the move must not block here.
  void ExecuteMoveAndReply(const wire::InvokeRequest& rq,
                           std::uint64_t correlation,
                           const net::SessionKey& skey,
                           const monitor::Tracer::Opened& exec, int hops);
  void SendShorteningUpdates(const wire::InvokeRequest& rq,
                             const wire::TraceContext& ctx);

  Core& core_;
  int max_hops_ = 64;
  bool shortening_ = true;
  std::unordered_map<std::uint64_t, std::shared_ptr<AsyncCall>> waiters_;
  std::unordered_map<ComletId, std::vector<std::shared_ptr<RouteWait>>>
      route_waiters_;
};

}  // namespace fargo::core
