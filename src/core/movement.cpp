#include "src/core/movement.h"

#include "src/common/log.h"
#include "src/core/invocation.h"
#include "src/core/meta_ref.h"
#include "src/core/relocator.h"
#include "src/core/runtime.h"
#include "src/core/wire.h"
#include "src/serial/graph.h"
#include "src/serial/value_codec.h"

namespace fargo::core {

namespace {
// Ref descriptor tags inside a migration stream (bound references only; the
// stub writes its own bound/unbound flag before the hook runs).
constexpr std::uint8_t kRefNormal = 0;  // relocator + handle
constexpr std::uint8_t kRefStamp = 1;   // relocator + anchor type (rebind)
}  // namespace

void MovementUnit::MarshalSection(
    serial::Writer& out, const Section& section, CoreId dest,
    std::vector<Section>& worklist, std::unordered_set<ComletId>& in_stream,
    std::unordered_map<ComletId, ComletId>& dup_ids,
    std::vector<ComletId>& deferred_pulls) {
  // preDeparture fires at the sending Core before marshaling (§3.3);
  // duplicated complets do not depart.
  if (!section.is_duplicate) section.anchor->PreDeparture();

  serial::Writer body;
  auto hook = [&](serial::GraphWriter& gw, const void* p) {
    const auto* ref = static_cast<const ComletRefBase*>(p);
    serial::Writer& raw = gw.raw();
    const std::shared_ptr<Relocator>& relocator =
        ref->meta()->GetRelocator();
    if (!ref->bound()) {
      // Latent typed reference (stamp that found no equivalent at this
      // site): carry the type so the destination re-attempts the rebind.
      raw.WriteU8(kRefStamp);
      gw.WriteObject(relocator.get());
      raw.WriteString(ref->anchor_type());
      ++stats_.refs_stamped;
      return;
    }
    const ComletId target = ref->target();
    const bool target_local = core_.repository().Contains(target);
    RelocContext ctx{core_, target, dest, target_local};
    RelocEffect effect = relocator->EffectOnMove(ctx);

    // A reference to a complet already travelling in this stream keeps its
    // identity regardless of requested effect; it will be local at dest.
    auto write_normal = [&](ComletId id, CoreId hint,
                            const std::string& type) {
      raw.WriteU8(kRefNormal);
      gw.WriteObject(relocator.get());
      wire::WriteHandle(raw, ComletHandle{id, hint, type});
    };

    switch (effect) {
      case RelocEffect::kMoveAlong: {
        if (in_stream.contains(target)) {
          write_normal(target, dest, ref->anchor_type());
        } else if (target_local) {
          worklist.push_back(Section{target, ref->anchor_type(), false,
                                     core_.repository().Get(target)});
          in_stream.insert(target);
          write_normal(target, dest, ref->anchor_type());
        } else {
          // Remote pull target: keep tracking for now; after the primary
          // move commits, a move command is routed to the target's host.
          ++stats_.deferred_remote_pulls;
          deferred_pulls.push_back(target);
          const TrackerEntry* e = core_.trackers().Find(target);
          write_normal(target, e != nullptr ? e->next : ref->handle().last_known,
                       ref->anchor_type());
        }
        ++stats_.refs_linked;
        return;
      }
      case RelocEffect::kCopyAlong: {
        if (in_stream.contains(target)) {
          write_normal(target, dest, ref->anchor_type());
          ++stats_.refs_linked;
          return;
        }
        if (!target_local) {
          // The paper leaves remote duplication unspecified; degrade to
          // tracking and say so.
          LogWarn() << "duplicate reference to remote complet "
                    << ToString(target) << " degraded to link for this move";
          break;  // falls through to kTrack handling below
        }
        ComletId copy_id;
        if (auto it = dup_ids.find(target); it != dup_ids.end()) {
          copy_id = it->second;
        } else {
          copy_id = core_.MintComletId();
          dup_ids.emplace(target, copy_id);
          worklist.push_back(Section{copy_id, ref->anchor_type(), true,
                                     core_.repository().Get(target)});
          in_stream.insert(copy_id);
          ++stats_.complets_duplicated;
        }
        write_normal(copy_id, dest, ref->anchor_type());
        ++stats_.refs_linked;
        return;
      }
      case RelocEffect::kRebind: {
        raw.WriteU8(kRefStamp);
        gw.WriteObject(relocator.get());
        raw.WriteString(ref->anchor_type());
        ++stats_.refs_stamped;
        return;
      }
      case RelocEffect::kTrack:
        break;
    }

    // link semantics (also the degraded cases above): hand out our best
    // routing knowledge; tracker chains absorb any staleness.
    CoreId hint;
    if (in_stream.contains(target)) {
      hint = dest;
    } else if (target_local) {
      hint = core_.id();  // target stays behind; we keep hosting it
    } else if (const TrackerEntry* e = core_.trackers().Find(target)) {
      hint = e->next;
    } else {
      hint = ref->handle().last_known;
    }
    write_normal(target, hint, ref->anchor_type());
    ++stats_.refs_linked;
  };

  serial::GraphWriter gw(body, hook);
  gw.WriteObject(section.anchor.get());

  wire::WriteComletId(out, section.id);
  out.WriteString(section.anchor_type);
  out.WriteBool(section.is_duplicate);
  out.WriteBytes(body.buffer());
}

void MovementUnit::MoveLocal(ComletId primary, CoreId dest,
                             std::string continuation,
                             std::vector<Value> args) {
  sim::Await(MoveLocalAsync(primary, dest, std::move(continuation),
                            std::move(args)));
}

sim::Future<sim::Unit> MovementUnit::MoveLocalAsync(ComletId primary,
                                                    CoreId dest,
                                                    std::string continuation,
                                                    std::vector<Value> args) {
  sim::Scheduler& sched = core_.scheduler();
  std::shared_ptr<Anchor> anchor = core_.repository().Get(primary);
  if (!anchor)
    return sim::MakeErrorFuture<sim::Unit>(
        sched, FargoError("move: complet " + ToString(primary) +
                          " is not hosted at " + ToString(core_.id())));
  if (dest == core_.id()) {
    sim::Promise<sim::Unit> done(sched);
    try {
      if (!continuation.empty())
        core_.DispatchLocal(primary, continuation, args);
      done.Resolve(sim::Unit{});
    } catch (...) {
      done.Reject(std::current_exception());
    }
    return done.future();
  }

  stats_ = MoveStats{};
  monitor::Tracer& tracer = core_.tracer();
  const SimTime move_begin = core_.scheduler().Now();
  // The movement is a span of its own: a child when triggered from inside a
  // traced execution (e.g. a routed __fargo.move), a fresh trace otherwise.
  monitor::Tracer::Opened mv =
      tracer.OpenSpan(monitor::SpanKind::kMove, anchor->TypeName(),
                      tracer.Current(), move_begin);
  std::vector<Section> worklist{
      Section{primary, std::string(anchor->TypeName()), false, anchor}};
  std::unordered_set<ComletId> in_stream{primary};
  std::unordered_map<ComletId, ComletId> dup_ids;
  std::vector<ComletId> deferred_pulls;

  // Marshal sections; the worklist grows as pull/duplicate references are
  // discovered during traversal. All sections share one stream — a single
  // inter-Core message per movement request (§3.3).
  serial::Writer sections;
  std::size_t count = 0;
  for (std::size_t i = 0; i < worklist.size(); ++i) {
    // Copy: worklist may reallocate while this section marshals.
    Section section = worklist[i];
    MarshalSection(sections, section, dest, worklist, in_stream, dup_ids,
                   deferred_pulls);
    ++count;
  }

  serial::Writer payload;
  // One allocation for the whole stream: header + sections + continuation.
  payload.Reserve(sections.size() + 64);
  wire::WriteComletId(payload, primary);
  payload.WriteVarint(count);
  payload.WriteRaw(sections.buffer().data(), sections.buffer().size());
  payload.WriteBool(!continuation.empty());
  if (!continuation.empty()) {
    payload.WriteString(continuation);
    serial::WriteValues(payload, args);
  }
  wire::WriteTraceTail(payload, mv.ctx);
  stats_.stream_bytes = payload.size();

  // Transition: departing complets leave the repository and forward via the
  // tracker; invocations racing the stream park at `dest` until it lands.
  struct Departing {
    ComletId id;
    std::string type;
    std::shared_ptr<Anchor> anchor;
  };
  // Snapshot everything the commit/rollback continuation needs: stats_ is a
  // per-unit scratch that a concurrent move may overwrite before the reply
  // lands.
  struct Pending {
    std::vector<Departing> departing;
    std::vector<ComletId> pulls;
    monitor::Tracer::Opened mv{};
    SimTime begin = 0;
    std::size_t bytes = 0;
  };
  auto pending = std::make_shared<Pending>();
  for (const Section& s : worklist) {
    if (s.is_duplicate) continue;
    pending->departing.push_back(Departing{s.id, s.anchor_type, s.anchor});
    core_.repository().Remove(s.id);
    core_.trackers().SetForward(s.id, dest, s.anchor_type);
  }
  stats_.complets_moved = pending->departing.size();
  pending->pulls = std::move(deferred_pulls);
  pending->mv = mv;
  pending->begin = move_begin;
  pending->bytes = stats_.stream_bytes;

  sim::Promise<sim::Unit> done(sched);
  core_.SendAsync(dest, net::MessageKind::kMoveRequest, payload.Take())
      // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
      .OnSettle([this, pending, done,
                 dest](sim::Future<std::vector<std::uint8_t>> f) mutable {
        monitor::Tracer& tracer = core_.tracer();
        try {
          serial::Reader r(f.value());  // rethrows a transport failure
          wire::CheckOk(r);
        } catch (...) {
          // Roll back: the complets never left.
          for (const Departing& d : pending->departing) {
            core_.repository().Add(d.id, d.anchor);
            core_.trackers().SetLocal(d.id, *d.anchor, d.type);
          }
          tracer.CloseSpan(pending->mv.token, core_.scheduler().Now(),
                           monitor::SpanOutcome::kTransportError, 0,
                           pending->bytes);
          done.Reject(std::current_exception());
          return;
        }
        const SimTime move_end = core_.scheduler().Now();
        tracer.CloseSpan(pending->mv.token, move_end,
                         monitor::SpanOutcome::kOk, 0, pending->bytes);
        core_.inst_.moves->Inc();
        core_.inst_.move_duration->Observe(
            static_cast<double>(move_end - pending->begin));
        core_.inst_.move_bytes->Observe(static_cast<double>(pending->bytes));

        // Committed: release the stale copies (§3.3 postDeparture) and
        // announce.
        for (const Departing& d : pending->departing) {
          d.anchor->PostDeparture();
          d.anchor->core_ = nullptr;
          core_.events().Fire(monitor::Event{
              monitor::EventKind::kComletDeparted, core_.id(), d.id, {}, 0.0});
        }

        // Remote pull targets follow with their own move requests; the move
        // future settles once they all land (or fail — logged, not fatal).
        auto remaining = std::make_shared<std::size_t>(pending->pulls.size());
        if (*remaining == 0) {
          done.Resolve(sim::Unit{});
          return;
        }
        for (ComletId id : pending->pulls) {
          core_.MoveIdAsync(id, dest).OnSettle(
              [done, remaining, id](sim::Future<sim::Unit> pf) mutable {
                if (!pf.ok()) {
                  try {
                    std::rethrow_exception(pf.error());
                  } catch (const std::exception& e) {
                    LogWarn() << "deferred pull of " << ToString(id)
                              << " failed: " << e.what();
                  }
                }
                if (--*remaining == 0) done.Resolve(sim::Unit{});
              });
        }
      });
  return done.future();
}

void MovementUnit::HandleMoveRequest(net::Message msg) {
  serial::Reader r(msg.payload);
  ComletId primary = wire::ReadComletId(r);
  std::uint64_t count = r.ReadVarint();

  std::vector<std::shared_ptr<Anchor>> installed;
  std::vector<ComletId> arrived;
  std::string continuation;
  std::vector<Value> cont_args;

  try {
    for (std::uint64_t i = 0; i < count; ++i) {
      ComletId id = wire::ReadComletId(r);
      std::string type = r.ReadString();
      bool is_duplicate = r.ReadBool();
      (void)is_duplicate;  // same install path either way
      // Zero-copy: unmarshal the section straight out of the message
      // payload (alive for the whole handler) instead of copying it out.
      serial::Reader body_reader = r.ReadBytesView();

      auto hook = [this, id](serial::GraphReader& gr, void* p) {
        auto* ref = static_cast<ComletRefBase*>(p);
        serial::Reader& raw = gr.raw();
        std::uint8_t tag = raw.ReadU8();
        switch (tag) {
          case kRefNormal: {
            auto relocator = gr.ReadObjectAs<Relocator>();
            ComletHandle handle = wire::ReadHandle(raw);
            ref->Bind(core_, handle,
                      std::make_shared<MetaRef>(handle.id, relocator), id);
            return;
          }
          case kRefStamp: {
            auto relocator = gr.ReadObjectAs<Relocator>();
            std::string anchor_type = raw.ReadString();
            // Re-bind to an equivalent-type complet at this Core (§3.3);
            // unbound if none is hosted here.
            std::shared_ptr<Anchor> local =
                core_.repository().FindByType(anchor_type);
            if (local) {
              ComletHandle handle{local->id(), core_.id(), anchor_type};
              ref->Bind(core_, handle,
                        std::make_shared<MetaRef>(handle.id, relocator), id);
            } else {
              // No equivalent here: stay latent (typed but unbound) so the
              // next movement re-attempts the rebind.
              ref->Bind(core_, ComletHandle{ComletId{}, CoreId{}, anchor_type},
                        std::make_shared<MetaRef>(ComletId{}, relocator), id);
            }
            return;
          }
          default:
            throw serial::SerialError("corrupt ref descriptor in stream");
        }
      };

      serial::GraphReader gr(body_reader, hook);
      std::shared_ptr<Anchor> anchor = gr.ReadObjectAs<Anchor>();
      if (!anchor) throw FargoError("migration stream carried a null anchor");
      anchor->id_ = id;
      anchor->PreArrival();
      core_.Install(anchor);
      anchor->PostArrival();
      installed.push_back(anchor);
      arrived.push_back(id);
    }
  } catch (const std::exception& e) {
    // Unwind partial arrivals so the sender's rollback is authoritative.
    for (const std::shared_ptr<Anchor>& a : installed) {
      core_.repository().Remove(a->id());
      a->core_ = nullptr;
    }
    serial::Writer err;
    wire::WriteError(err, e.what());
    core_.Reply(msg.from, net::MessageKind::kMoveReply, msg.correlation,
                err.Take());
    return;
  }

  bool has_continuation = r.ReadBool();
  if (has_continuation) {
    continuation = r.ReadString();
    cont_args = serial::ReadValues(r);
  }
  wire::TraceContext trace = wire::ReadTraceTail(r);
  monitor::Tracer::Opened install = core_.tracer().OpenSpan(
      monitor::SpanKind::kInstall, ToString(primary), trace,
      core_.scheduler().Now());
  core_.tracer().CloseSpan(install.token, core_.scheduler().Now(),
                           monitor::SpanOutcome::kOk, 0, msg.payload.size());

  serial::Writer ok;
  wire::WriteOk(ok);
  wire::WriteComletList(ok, arrived);
  core_.Reply(msg.from, net::MessageKind::kMoveReply, msg.correlation,
              ok.Take());

  // "Call with continuation" (§3.3): the receiving Core invokes the given
  // method after unmarshaling.
  if (has_continuation) {
    monitor::TraceScope scope(core_.tracer(), install.ctx);
    try {
      core_.DispatchLocal(primary, continuation, cont_args);
    } catch (const std::exception& e) {
      LogWarn() << "continuation " << continuation << " on "
                << ToString(primary) << " failed: " << e.what();
    }
  }
}

}  // namespace fargo::core
