#include "src/core/movement.h"

#include "src/common/log.h"
#include "src/core/directory.h"
#include "src/core/invocation.h"
#include "src/core/meta_ref.h"
#include "src/core/relocator.h"
#include "src/core/runtime.h"
#include "src/core/wal.h"
#include "src/core/wire.h"
#include "src/serial/graph.h"
#include "src/serial/value_codec.h"

namespace fargo::core {

namespace {
// Ref descriptor tags inside a migration stream (bound references only; the
// stub writes its own bound/unbound flag before the hook runs).
constexpr std::uint8_t kRefNormal = 0;  // relocator + handle
constexpr std::uint8_t kRefStamp = 1;   // relocator + anchor type (rebind)
}  // namespace

void MovementUnit::MarshalSection(
    serial::Writer& out, const Section& section, CoreId dest,
    std::vector<Section>& worklist, std::unordered_set<ComletId>& in_stream,
    std::unordered_map<ComletId, ComletId>& dup_ids,
    std::vector<ComletId>& deferred_pulls) {
  // preDeparture fires at the sending Core before marshaling (§3.3);
  // duplicated complets do not depart.
  if (!section.is_duplicate) section.anchor->PreDeparture();

  serial::Writer body;
  auto hook = [&](serial::GraphWriter& gw, const void* p) {
    const auto* ref = static_cast<const ComletRefBase*>(p);
    serial::Writer& raw = gw.raw();
    const std::shared_ptr<Relocator>& relocator =
        ref->meta()->GetRelocator();
    if (!ref->bound()) {
      // Latent typed reference (stamp that found no equivalent at this
      // site): carry the type so the destination re-attempts the rebind.
      raw.WriteU8(kRefStamp);
      gw.WriteObject(relocator.get());
      raw.WriteString(ref->anchor_type());
      ++stats_.refs_stamped;
      return;
    }
    const ComletId target = ref->target();
    const bool target_local = core_.repository().Contains(target);
    RelocContext ctx{core_, target, dest, target_local};
    RelocEffect effect = relocator->EffectOnMove(ctx);

    // A reference to a complet already travelling in this stream keeps its
    // identity regardless of requested effect; it will be local at dest.
    auto write_normal = [&](ComletId id, CoreId hint,
                            const std::string& type) {
      raw.WriteU8(kRefNormal);
      gw.WriteObject(relocator.get());
      wire::WriteHandle(raw, ComletHandle{id, hint, type});
    };

    switch (effect) {
      case RelocEffect::kMoveAlong: {
        if (in_stream.contains(target)) {
          write_normal(target, dest, ref->anchor_type());
        } else if (target_local) {
          const TrackerEntry* te = core_.trackers().Find(target);
          worklist.push_back(Section{target, ref->anchor_type(), false,
                                     (te != nullptr ? te->hint_epoch : 0) + 1,
                                     core_.repository().Get(target)});
          in_stream.insert(target);
          write_normal(target, dest, ref->anchor_type());
        } else {
          // Remote pull target: keep tracking for now; after the primary
          // move commits, a move command is routed to the target's host.
          ++stats_.deferred_remote_pulls;
          deferred_pulls.push_back(target);
          const TrackerEntry* e = core_.trackers().Find(target);
          write_normal(target, e != nullptr ? e->next : ref->handle().last_known,
                       ref->anchor_type());
        }
        ++stats_.refs_linked;
        return;
      }
      case RelocEffect::kCopyAlong: {
        if (in_stream.contains(target)) {
          write_normal(target, dest, ref->anchor_type());
          ++stats_.refs_linked;
          return;
        }
        if (!target_local) {
          // The paper leaves remote duplication unspecified; degrade to
          // tracking and say so.
          LogWarn() << "duplicate reference to remote complet "
                    << ToString(target) << " degraded to link for this move";
          break;  // falls through to kTrack handling below
        }
        ComletId copy_id;
        if (auto it = dup_ids.find(target); it != dup_ids.end()) {
          copy_id = it->second;
        } else {
          copy_id = core_.MintComletId();
          dup_ids.emplace(target, copy_id);
          worklist.push_back(Section{copy_id, ref->anchor_type(), true, 1,
                                     core_.repository().Get(target)});
          in_stream.insert(copy_id);
          ++stats_.complets_duplicated;
        }
        write_normal(copy_id, dest, ref->anchor_type());
        ++stats_.refs_linked;
        return;
      }
      case RelocEffect::kRebind: {
        raw.WriteU8(kRefStamp);
        gw.WriteObject(relocator.get());
        raw.WriteString(ref->anchor_type());
        ++stats_.refs_stamped;
        return;
      }
      case RelocEffect::kTrack:
        break;
    }

    // link semantics (also the degraded cases above): hand out our best
    // routing knowledge; tracker chains absorb any staleness.
    CoreId hint;
    if (in_stream.contains(target)) {
      hint = dest;
    } else if (target_local) {
      hint = core_.id();  // target stays behind; we keep hosting it
    } else if (const TrackerEntry* e = core_.trackers().Find(target)) {
      hint = e->next;
    } else {
      hint = ref->handle().last_known;
    }
    write_normal(target, hint, ref->anchor_type());
    ++stats_.refs_linked;
  };

  serial::GraphWriter gw(body, hook);
  gw.WriteObject(section.anchor.get());

  wire::WriteComletId(out, section.id);
  out.WriteString(section.anchor_type);
  out.WriteBool(section.is_duplicate);
  out.WriteVarint(section.epoch);
  out.WriteBytes(body.buffer());
}

void MovementUnit::MoveLocal(ComletId primary, CoreId dest,
                             std::string continuation,
                             std::vector<Value> args) {
  sim::Await(MoveLocalAsync(primary, dest, std::move(continuation),
                            std::move(args)));
}

sim::Future<sim::Unit> MovementUnit::MoveLocalAsync(ComletId primary,
                                                    CoreId dest,
                                                    std::string continuation,
                                                    std::vector<Value> args) {
  sim::Scheduler::AffinityScope aff(core_.id().value);
  sim::Scheduler& sched = core_.scheduler();
  std::shared_ptr<Anchor> anchor = core_.repository().Get(primary);
  if (!anchor)
    return sim::MakeErrorFuture<sim::Unit>(
        sched, FargoError("move: complet " + ToString(primary) +
                          " is not hosted at " + ToString(core_.id())));
  if (dest == core_.id()) {
    sim::Promise<sim::Unit> done(sched);
    try {
      if (!continuation.empty())
        core_.DispatchLocal(primary, continuation, args);
      done.Resolve(sim::Unit{});
    } catch (...) {
      done.Reject(std::current_exception());
    }
    return done.future();
  }

  stats_ = MoveStats{};
  monitor::Tracer& tracer = core_.tracer();
  const SimTime move_begin = core_.scheduler().Now();
  // The movement is a span of its own: a child when triggered from inside a
  // traced execution (e.g. a routed __fargo.move), a fresh trace otherwise.
  monitor::Tracer::Opened mv =
      tracer.OpenSpan(monitor::SpanKind::kMove, anchor->TypeName(),
                      tracer.Current(), move_begin);
  const TrackerEntry* primary_entry = core_.trackers().Find(primary);
  std::vector<Section> worklist{Section{
      primary, std::string(anchor->TypeName()), false,
      (primary_entry != nullptr ? primary_entry->hint_epoch : 0) + 1, anchor}};
  std::unordered_set<ComletId> in_stream{primary};
  std::unordered_map<ComletId, ComletId> dup_ids;
  std::vector<ComletId> deferred_pulls;

  // Marshal sections; the worklist grows as pull/duplicate references are
  // discovered during traversal. All sections share one stream — a single
  // inter-Core message per movement request (§3.3).
  serial::Writer sections;
  std::size_t count = 0;
  for (std::size_t i = 0; i < worklist.size(); ++i) {
    // Copy: worklist may reallocate while this section marshals.
    Section section = worklist[i];
    MarshalSection(sections, section, dest, worklist, in_stream, dup_ids,
                   deferred_pulls);
    ++count;
  }

  // Durable sources run the move as a logged two-phase transaction; txn 0
  // means "not durable" and the destination skips its move-in mark.
  Wal* wal = core_.wal();
  const std::uint64_t txn =
      (wal != nullptr && !wal->replaying()) ? wal->NextTxnId() : 0;

  serial::Writer payload;
  // One allocation for the whole stream: header + sections + continuation.
  payload.Reserve(sections.size() + 64);
  wire::WriteComletId(payload, primary);
  payload.WriteVarint(txn);
  payload.WriteVarint(count);
  payload.WriteRaw(sections.buffer().data(), sections.buffer().size());
  payload.WriteBool(!continuation.empty());
  if (!continuation.empty()) {
    payload.WriteString(continuation);
    serial::WriteValues(payload, args);
  }
  wire::WriteTraceTail(payload, mv.ctx);
  stats_.stream_bytes = payload.size();

  // Transition: departing complets leave the repository and forward via the
  // tracker; invocations racing the stream park at `dest` until it lands.
  struct Departing {
    ComletId id;
    std::string type;
    std::uint64_t epoch = 0;  ///< the section's hint-epoch proposal
    std::shared_ptr<Anchor> anchor;
  };
  // Snapshot everything the commit/rollback continuation needs: stats_ is a
  // per-unit scratch that a concurrent move may overwrite before the reply
  // lands.
  struct Pending {
    std::vector<Departing> departing;
    std::vector<ComletId> pulls;
    monitor::Tracer::Opened mv{};
    SimTime begin = 0;
    std::size_t bytes = 0;
    std::uint64_t txn = 0;
  };
  auto pending = std::make_shared<Pending>();
  for (const Section& s : worklist) {
    if (s.is_duplicate) continue;
    pending->departing.push_back(
        Departing{s.id, s.anchor_type, s.epoch, s.anchor});
    core_.repository().Remove(s.id);
    // Stamp the departure forward with the movement's proposal: until the
    // destination's publish lands at the home shard, this Core holds the
    // freshest knowledge there is.
    core_.trackers().SetForward(s.id, dest, s.anchor_type, s.epoch);
  }
  stats_.complets_moved = pending->departing.size();
  pending->pulls = std::move(deferred_pulls);
  pending->mv = mv;
  pending->begin = move_begin;
  pending->bytes = stats_.stream_bytes;
  pending->txn = txn;

  sim::Promise<sim::Unit> done(sched);
  std::vector<std::uint8_t> stream = payload.Take();

  const std::uint64_t settle_epoch = core_.restart_epoch();
  // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
  auto settle = [this, pending, done, dest,
                 settle_epoch](sim::Future<std::vector<std::uint8_t>> f) mutable {
        if (!core_.alive() || core_.restart_epoch() != settle_epoch) {
          // The source restarted under this move: recovery owns the
          // outcome now (in-doubt resolution against the destination).
          // Touching the repository here would resurrect departed state.
          done.Reject(std::make_exception_ptr(
              UnreachableError("source core restarted during move")));
          return;
        }
        monitor::Tracer& tracer = core_.tracer();
        Wal* wal = core_.wal();
        try {
          serial::Reader r(f.value());  // rethrows a transport failure
          wire::CheckOk(r);
        } catch (...) {
          // Roll back: the complets never left. A durable source may only
          // resume serving them once the abort record is *durable*. A
          // timeout here does not mean the destination failed to install —
          // only that the reply was lost; the destination may hold a
          // move-in mark for this txn. If the rollback served ops and then
          // crashed with the abort record still volatile, recovery would
          // find the prepare open, ask the destination, hear "installed",
          // and falsely COMMIT — dropping every op applied since the
          // rollback. Reinstall strictly above the abort barrier.
          if (wal != nullptr && pending->txn != 0) {
            wal->AppendAbort(pending->txn);
            std::exception_ptr why = std::current_exception();
            wal->Sync().OnSettle(
                // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
                [this, pending, done, why,
                 settle_epoch](sim::Future<sim::Unit>) mutable {
                  if (!core_.alive() ||
                      core_.restart_epoch() != settle_epoch) {
                    // Crash mid-barrier: recovery owns the outcome (commit
                    // or abort, resolved against the destination).
                    done.Reject(std::make_exception_ptr(UnreachableError(
                        "source core restarted during move rollback")));
                    return;
                  }
                  for (const Departing& d : pending->departing) {
                    core_.repository().Add(d.id, d.anchor);
                    core_.trackers().SetLocal(d.id, *d.anchor, d.type,
                                              d.epoch > 0 ? d.epoch - 1 : 0);
                    // The destination may have installed-and-published some
                    // sections before failing; re-assert so the home shard
                    // converges back onto this Core.
                    core_.directory().Publish(d.id, core_.id(), 0);
                  }
                  core_.tracer().CloseSpan(
                      pending->mv.token, core_.scheduler().Now(),
                      monitor::SpanOutcome::kTransportError, 0,
                      pending->bytes);
                  done.Reject(why);
                });
            return;
          }
          // Non-durable source: no recovery will ever second-guess this
          // rollback, so the complets can come back immediately.
          for (const Departing& d : pending->departing) {
            core_.repository().Add(d.id, d.anchor);
            core_.trackers().SetLocal(d.id, *d.anchor, d.type,
                                      d.epoch > 0 ? d.epoch - 1 : 0);
            core_.directory().Publish(d.id, core_.id(), 0);
          }
          tracer.CloseSpan(pending->mv.token, core_.scheduler().Now(),
                           monitor::SpanOutcome::kTransportError, 0,
                           pending->bytes);
          done.Reject(std::current_exception());
          return;
        }
        if (wal != nullptr && pending->txn != 0) {
          wal->AppendCommit(pending->txn);
          const std::uint64_t txn = pending->txn;
          wal->Sync().OnSettle(
              // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
              [this, dest, txn, settle_epoch](sim::Future<sim::Unit>) {
                if (!core_.alive() || core_.restart_epoch() != settle_epoch)
                  return;
                // The commit is durable: this source can never go in-doubt
                // on the txn again, so the destination may prune its
                // move-in mark.
                core_.SendMoveAck(dest, txn);
              });
        }
        const SimTime move_end = core_.scheduler().Now();
        tracer.CloseSpan(pending->mv.token, move_end,
                         monitor::SpanOutcome::kOk, 0, pending->bytes);
        core_.inst_.moves->Inc();
        core_.inst_.move_duration->Observe(
            static_cast<double>(move_end - pending->begin));
        core_.inst_.move_bytes->Observe(static_cast<double>(pending->bytes));

        // Committed: release the stale copies (§3.3 postDeparture) and
        // announce.
        for (const Departing& d : pending->departing) {
          d.anchor->PostDeparture();
          d.anchor->core_ = nullptr;
          core_.events().Fire(monitor::Event{
              monitor::EventKind::kComletDeparted, core_.id(), d.id, {}, 0.0});
        }

        // Remote pull targets follow with their own move requests; the move
        // future settles once they all land (or fail — logged, not fatal).
        auto remaining = std::make_shared<std::size_t>(pending->pulls.size());
        if (*remaining == 0) {
          done.Resolve(sim::Unit{});
          return;
        }
        for (ComletId id : pending->pulls) {
          core_.MoveIdAsync(id, dest).OnSettle(
              [done, remaining, id](sim::Future<sim::Unit> pf) mutable {
                if (!pf.ok()) {
                  try {
                    std::rethrow_exception(pf.error());
                  } catch (const std::exception& e) {
                    LogWarn() << "deferred pull of " << ToString(id)
                              << " failed: " << e.what();
                  }
                }
                if (--*remaining == 0) done.Resolve(sim::Unit{});
              });
        }
      };

  if (wal != nullptr && txn != 0) {
    // PREPARE: stage the full stream in the log, then hold the request
    // until a barrier covers it. A crash before the barrier means the
    // request was never sent — replay rebuilds the pre-move state; a crash
    // after it leaves an in-doubt prepare that recovery resolves against
    // the destination. Either way, exactly one copy survives.
    std::vector<std::pair<ComletId, std::string>> departing_meta;
    departing_meta.reserve(pending->departing.size());
    for (const Departing& d : pending->departing)
      departing_meta.emplace_back(d.id, d.type);
    core_.inst_.bytes_copied->Inc(stream.size());  // the staged copy
    wal->AppendPrepare(txn, primary, dest, std::move(departing_meta), stream);
    const std::uint64_t epoch = core_.restart_epoch();
    wal->Sync().OnSettle(
        // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
        [this, epoch, dest, done, settle,
         stream = std::move(stream)](sim::Future<sim::Unit>) mutable {
          if (!core_.alive() || core_.restart_epoch() != epoch) {
            done.Reject(std::make_exception_ptr(
                UnreachableError("source core crashed during move prepare")));
            return;
          }
          core_.SendAsync(dest, net::MessageKind::kMoveRequest,
                          std::move(stream))
              .OnSettle(std::move(settle));
        });
  } else {
    core_.SendAsync(dest, net::MessageKind::kMoveRequest, std::move(stream))
        .OnSettle(std::move(settle));
  }
  return done.future();
}

MovementUnit::DecodedSection MovementUnit::DecodeSection(serial::Reader& r) {
  DecodedSection section;
  section.id = wire::ReadComletId(r);
  section.anchor_type = r.ReadString();
  section.is_duplicate = r.ReadBool();
  section.epoch = r.ReadVarint();
  // Zero-copy: unmarshal the section straight out of the caller's buffer
  // (alive for the whole handler) instead of copying it out.
  serial::Reader body_reader = r.ReadBytesView();

  const ComletId id = section.id;
  auto hook = [this, id](serial::GraphReader& gr, void* p) {
    auto* ref = static_cast<ComletRefBase*>(p);
    serial::Reader& raw = gr.raw();
    std::uint8_t tag = raw.ReadU8();
    switch (tag) {
      case kRefNormal: {
        auto relocator = gr.ReadObjectAs<Relocator>();
        ComletHandle handle = wire::ReadHandle(raw);
        ref->Bind(core_, handle,
                  std::make_shared<MetaRef>(handle.id, relocator), id);
        return;
      }
      case kRefStamp: {
        auto relocator = gr.ReadObjectAs<Relocator>();
        std::string anchor_type = raw.ReadString();
        // Re-bind to an equivalent-type complet at this Core (§3.3);
        // unbound if none is hosted here.
        std::shared_ptr<Anchor> local =
            core_.repository().FindByType(anchor_type);
        if (local) {
          ComletHandle handle{local->id(), core_.id(), anchor_type};
          ref->Bind(core_, handle,
                    std::make_shared<MetaRef>(handle.id, relocator), id);
        } else {
          // No equivalent here: stay latent (typed but unbound) so the
          // next movement re-attempts the rebind.
          ref->Bind(core_, ComletHandle{ComletId{}, CoreId{}, anchor_type},
                    std::make_shared<MetaRef>(ComletId{}, relocator), id);
        }
        return;
      }
      default:
        throw serial::SerialError("corrupt ref descriptor in stream");
    }
  };

  serial::GraphReader gr(body_reader, hook);
  section.anchor = gr.ReadObjectAs<Anchor>();
  if (!section.anchor)
    throw FargoError("migration stream carried a null anchor");
  section.anchor->id_ = id;
  return section;
}

void MovementUnit::HandleMoveRequest(net::Message msg) {
  serial::Reader r(msg.payload);
  ComletId primary = wire::ReadComletId(r);
  std::uint64_t txn = r.ReadVarint();
  std::uint64_t count = r.ReadVarint();

  // A stream for a tombstoned txn lost a race with its own source's
  // recovery: the source already heard "not installed" from us and
  // reinstalled the complets, so installing this (chaos-delayed or
  // duplicated) copy would duplicate them. Refuse it.
  if (txn != 0 && IsDeadTxn(msg.from, txn)) {
    serial::Writer err;
    wire::WriteError(err, "move txn resolved aborted by recovery");
    core_.Reply(msg.from, net::MessageKind::kMoveReply, msg.correlation,
                err.Take(), msg.session);
    return;
  }

  std::vector<DecodedSection> installed;
  std::vector<ComletId> arrived;
  std::string continuation;
  std::vector<Value> cont_args;

  try {
    for (std::uint64_t i = 0; i < count; ++i) {
      DecodedSection section = DecodeSection(r);
      section.anchor->PreArrival();
      // Install under the movement's epoch proposal: the publish to the
      // home shard outranks every hint the old chain handed out.
      core_.Install(section.anchor, section.epoch);
      section.anchor->PostArrival();
      arrived.push_back(section.id);
      installed.push_back(std::move(section));
    }
  } catch (const std::exception& e) {
    // Unwind partial arrivals so the sender's rollback is authoritative:
    // the complets go back to living at the sender, and a durable
    // destination logs the removal so replay does not resurrect them.
    for (const DecodedSection& s : installed) {
      core_.repository().Remove(s.id);
      s.anchor->core_ = nullptr;
      // Keep the proposal's stamp: "back at the sender" is knowledge as
      // fresh as the install we are unwinding. The sender's rollback then
      // re-asserts to the home shard, healing any publish that landed.
      core_.trackers().SetForward(s.id, msg.from, s.anchor_type, s.epoch);
      if (Wal* wal = core_.wal())
        wal->AppendRemove(s.id, msg.from, s.anchor_type);
    }
    serial::Writer err;
    wire::WriteError(err, e.what());
    core_.Reply(msg.from, net::MessageKind::kMoveReply, msg.correlation,
                err.Take(), msg.session);
    return;
  }

  // Mark the transaction installed BEFORE the reply is logged/sent: every
  // durable prefix of (installs, move-in, reply) resolves consistently at
  // recovery, because the source only commits on our acked reply and only
  // asks us (kRecoveryQuery) when it never got one.
  if (txn != 0) RecordMoveIn(msg.from, txn);

  bool has_continuation = r.ReadBool();
  if (has_continuation) {
    continuation = r.ReadString();
    cont_args = serial::ReadValues(r);
  }
  wire::TraceContext trace = wire::ReadTraceTail(r);
  monitor::Tracer::Opened install = core_.tracer().OpenSpan(
      monitor::SpanKind::kInstall, ToString(primary), trace,
      core_.scheduler().Now());
  core_.tracer().CloseSpan(install.token, core_.scheduler().Now(),
                           monitor::SpanOutcome::kOk, 0, msg.payload.size());

  serial::Writer ok;
  wire::WriteOk(ok);
  wire::WriteComletList(ok, arrived);
  core_.Reply(msg.from, net::MessageKind::kMoveReply, msg.correlation,
              ok.Take(), msg.session);

  // "Call with continuation" (§3.3): the receiving Core invokes the given
  // method after unmarshaling.
  if (has_continuation) {
    monitor::TraceScope scope(core_.tracer(), install.ctx);
    try {
      core_.DispatchLocal(primary, continuation, cont_args);
    } catch (const std::exception& e) {
      LogWarn() << "continuation " << continuation << " on "
                << ToString(primary) << " failed: " << e.what();
    }
  }
}

void MovementUnit::RecordMoveIn(CoreId from, std::uint64_t txn) {
  if (!move_ins_.insert({from.value, txn}).second) return;
  if (Wal* wal = core_.wal()) wal->AppendMoveIn(from, txn);
}

void MovementUnit::DropMoveIn(CoreId from, std::uint64_t txn) {
  if (move_ins_.erase({from.value, txn}) == 0) return;
  if (Wal* wal = core_.wal()) {
    wal->AppendMoveInAck(from, txn);
    wal->LazySync();
  }
}

void MovementUnit::RecordDeadTxn(CoreId from, std::uint64_t txn) {
  if (!dead_txns_.insert({from.value, txn}).second) return;
  if (Wal* wal = core_.wal()) wal->AppendMoveDead(from, txn);
}

void MovementUnit::HandleRecoveryQuery(const net::Message& msg) {
  serial::Reader r(msg.payload);
  const std::uint64_t txn = r.ReadVarint();
  const bool installed = WasMovedIn(msg.from, txn);
  // The answer is a promise either way: "installed" lets the source drop
  // its staged stream forever, "not installed" makes it reinstall and
  // resume serving — after which a late copy of the stream must never
  // install here (the tombstone). Neither promise may outrun this Core's
  // own durability. Core::Reply barriers every reply behind WhenDurable()
  // when a WAL is attached, which covers the install records (installed)
  // or the tombstone appended just above (not).
  if (!installed) RecordDeadTxn(msg.from, txn);
  serial::Writer w;
  wire::WriteOk(w);
  w.WriteBool(installed);
  core_.Reply(msg.from, net::MessageKind::kRecoveryReply, msg.correlation,
              w.Take());
}

void MovementUnit::ReinstallFromStream(const std::vector<std::uint8_t>& stream) {
  serial::Reader r(stream);
  (void)wire::ReadComletId(r);  // primary
  (void)r.ReadVarint();         // txn
  const std::uint64_t count = r.ReadVarint();
  for (std::uint64_t i = 0; i < count; ++i) {
    DecodedSection section = DecodeSection(r);
    // Duplicate sections were copies minted FOR the destination; an aborted
    // move never created them anywhere, so there is nothing to restore.
    if (section.is_duplicate) continue;
    // Idempotent against replayed aborts and races with live state.
    if (core_.repository().Contains(section.id)) continue;
    core_.Install(section.anchor);
  }
}

}  // namespace fargo::core
