// The FarGo Core (Fig 1): the stationary runtime node.
//
// A Core hosts complets (Repository), realizes complet references (tracker
// table + stubs), migrates complets (MovementUnit), implements the
// invocation/parameter-passing scheme (InvocationUnit), provides naming,
// remote instantiation, monitoring (Profiler) and asynchronous events
// (EventBus), and talks to peer Cores through the Network (Peer Interface).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/common/value.h"
#include "src/core/anchor.h"
#include "src/core/fwd.h"
#include "src/core/naming.h"
#include "src/core/ref.h"
#include "src/core/repository.h"
#include "src/core/retry.h"
#include "src/core/tracker.h"
#include "src/monitor/events.h"
#include "src/monitor/metrics.h"
#include "src/monitor/trace.h"
#include "src/net/formation.h"
#include "src/net/network.h"
#include "src/net/session.h"
#include "src/serial/registry.h"
#include "src/sim/future.h"
#include "src/sim/scheduler.h"

namespace fargo::core {

class Directory;
class FailureDetector;
class Wal;

// System methods handled by the Core itself, never dispatched to anchors.
inline constexpr std::string_view kPingMethod = "__fargo.ping";
inline constexpr std::string_view kMoveMethod = "__fargo.move";
inline constexpr std::string_view kMethodsMethod = "__fargo.methods";

/// Outcome of one routed invocation, including tracking telemetry.
struct InvokeResult {
  Value value;
  CoreId location;  ///< Core where the target actually executed
  int hops = 0;     ///< forwarding hops the request traversed
};

// fargo: domain(core)
class Core {
 public:
  Core(Runtime& runtime, CoreId id, std::string name);
  ~Core();
  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  CoreId id() const { return id_; }
  const std::string& name() const { return name_; }
  bool alive() const { return alive_; }

  // ==== Core API (paper §3) ==================================================

  /// Instantiates a complet locally — the C++ rendering of Fig 3's
  /// `Message msg = new Message_("...")`.
  template <class T, class... Args>
  ComletRef<T> New(Args&&... args) {
    static_assert(std::is_base_of_v<Anchor, T>, "T must be an Anchor");
    auto anchor = std::make_shared<T>(std::forward<Args>(args)...);
    return ComletRef<T>(Install(std::move(anchor)));
  }

  /// Remote instantiation: default-constructs `anchor_type` at `dest`.
  ComletRefBase NewRemote(CoreId dest, std::string_view anchor_type);

  template <class T>
  ComletRef<T> NewAt(CoreId dest) {
    return ComletRef<T>(NewRemote(dest, T::kTypeName));
  }

  /// Moves the referenced complet to `dest`, honouring the relocation
  /// semantics of all its outgoing references (§3.3). Works for complets
  /// hosted anywhere: the command is routed through the tracker chain.
  void Move(const ComletRefBase& ref, CoreId dest);

  /// Move with continuation (§3.3): after unmarshaling, the destination
  /// Core invokes `continuation` on the moved complet with `args`.
  void Move(const ComletRefBase& ref, CoreId dest, std::string continuation,
            std::vector<Value> args);

  /// Id-addressed variant used by the scripting engine and the shell.
  void MoveId(ComletId target, CoreId dest, std::string continuation = {},
              std::vector<Value> args = {});

  /// Asynchronous movement: returns a future that settles once the move
  /// commits (including any deferred remote pulls it spawned) or rolls
  /// back. The synchronous Move/MoveId are thin wrappers that pump the
  /// scheduler until this future settles. Layout rules use this to keep
  /// acting while migrations are outstanding (§4.2–4.3).
  sim::Future<sim::Unit> MoveAsync(const ComletRefBase& ref, CoreId dest,
                                   std::string continuation = {},
                                   std::vector<Value> args = {});
  sim::Future<sim::Unit> MoveIdAsync(ComletId target, CoreId dest,
                                     std::string continuation = {},
                                     std::vector<Value> args = {});

  /// Reflection entry point (§3.2): the meta reference of a complet
  /// reference, reifying its relocation semantics.
  static MetaRef& GetMetaRef(const ComletRefBase& ref);

  /// Authoritative current location of the target: walks (and thereby
  /// shortens) the tracker chain.
  CoreId ResolveLocation(const ComletRefBase& ref);

  /// Materializes a stub from a wire handle, with reference semantics
  /// degraded to `link` (parameter-passing rule of §3.1).
  ComletRefBase RefFromHandle(const ComletHandle& handle, ComletId owner = {});

  template <class T>
  ComletRef<T> RefTo(const ComletHandle& handle) {
    return ComletRef<T>(RefFromHandle(handle));
  }
  template <class T>
  ComletRef<T> RefTo(const Value& v) {
    return RefTo<T>(v.AsHandle());
  }

  // -- naming -----------------------------------------------------------------
  Naming& naming() { return naming_; }
  void BindName(std::string name, const ComletRefBase& ref);
  /// Looks a name up at a (possibly remote) Core.
  std::optional<ComletHandle> LookupAt(CoreId where, const std::string& name);

  // -- parameter passing helpers (§3.1) ----------------------------------------
  /// Serializes an object graph for pass-by-value. Embedded complet
  /// references are encoded as handles degraded to `link`; referenced
  /// anchors are never copied.
  ObjectBlob CaptureObject(const serial::Serializable& root);
  /// Reconstructs a passed-by-value graph, re-binding embedded references
  /// at this Core.
  std::shared_ptr<serial::Serializable> MaterializeObject(
      const ObjectBlob& blob);
  template <class T>
  std::shared_ptr<T> MaterializeObjectAs(const ObjectBlob& blob) {
    auto obj = std::dynamic_pointer_cast<T>(MaterializeObject(blob));
    if (!obj) throw FargoError("materialized object has unexpected type");
    return obj;
  }

  // -- monitoring (§4) ----------------------------------------------------------
  monitor::Profiler& profiler() { return *profiler_; }
  monitor::EventBus& events() { return *events_; }

  // -- observability: causal tracing + metrics --------------------------------

  /// Per-Core span recorder. Enable with SetTracing; spans land in
  /// tracer().buffer() and export as Chrome-trace JSON via DumpTrace.
  monitor::Tracer& tracer() { return tracer_; }
  const monitor::Tracer& tracer() const { return tracer_; }
  void SetTracing(bool on) { tracer_.SetEnabled(on); }

  /// The deployment-wide metrics registry (owned by the Runtime); hot-path
  /// instruments are resolved once at Core construction.
  monitor::Registry& metrics();

  /// Writes this Core's span buffer as Chrome trace-event JSON. Returns
  /// the number of events written. (Runtime::DumpTrace merges all Cores.)
  std::size_t DumpTrace(const std::string& path) const;

  /// Distributed events (§4.2): registers `listener` for lifecycle events
  /// fired by the (possibly remote) Core `where`. Returns a local token for
  /// UnlistenAt.
  monitor::SubId ListenAt(CoreId where, monitor::EventKind kind,
                          monitor::Listener listener);
  /// Distributed threshold event on a profiling service of Core `where`.
  monitor::SubId ListenThresholdAt(CoreId where, const monitor::ProbeKey& probe,
                                   double threshold, monitor::Trigger trigger,
                                   SimTime interval,
                                   monitor::Listener listener);
  /// Cancels a subscription made with ListenAt/ListenThresholdAt.
  void UnlistenAt(monitor::SubId token);

  /// Announces shutdown: fires CoreShutdown (locally and to remote
  /// listeners), pumps the scheduler for `grace` so listeners can evacuate
  /// complets, then detaches from the network and drops what remains.
  void Shutdown(SimTime grace = Millis(500));

  /// Abrupt failure (fault injection): detaches immediately — no event, no
  /// evacuation window, no forwarding flush. Chains through this Core are
  /// severed; only the home registry (Runtime::EnableHomeRegistry) can
  /// recover routes afterwards.
  void Crash();

  /// Boots a crashed Core back up: volatile state (complets, trackers,
  /// names, replay windows, parked requests) comes up empty, exactly like a
  /// fresh process. A durable Core (EnableWal) then replays its checkpoint
  /// and log, re-derives its replay windows from exec records, and resolves
  /// in-doubt moves by querying their destinations. Fires kCoreRecovered.
  void Restart();

  // -- durability (write-ahead log; docs/PROTOCOL.md §Durability) -------------

  /// Makes this Core durable: every externally visible mutation is appended
  /// to a per-Core log on the Runtime's simulated disk, checkpointed every
  /// `checkpoint_interval` (0 = never). Idempotent; returns the Wal.
  Wal& EnableWal(SimTime checkpoint_interval = Millis(250));
  /// The write-ahead log, or nullptr for a non-durable Core.
  Wal* wal() { return wal_.get(); }

  /// Bumped by every Crash(). Continuations that straddle a write barrier
  /// capture this and bail out if the Core restarted underneath them.
  std::uint64_t restart_epoch() const { return restart_epoch_; }

  /// Location-independent naming (§7 future work): asks the complet's home
  /// shard (its origin Core under the legacy registry configuration) for
  /// its current location. Returns an invalid CoreId if the directory
  /// doesn't know (or the plane is disabled).
  CoreId LocateViaHome(ComletId id);
  /// Continuation form of LocateViaHome, usable from inside the async
  /// invocation pipeline (which must never pump the scheduler).
  sim::Future<CoreId> LocateViaHomeAsync(ComletId id);

  // -- introspection -------------------------------------------------------------
  std::vector<ComletId> ComletsHere() const { return repository_.All(); }
  Repository& repository() { return repository_; }
  const Repository& repository() const { return repository_; }
  TrackerTable& trackers() { return trackers_; }
  const TrackerTable& trackers() const { return trackers_; }
  /// The directory plane endpoint of this Core (home-shard store, publish
  /// and lookup paths); see src/core/directory.h.
  Directory& directory() { return *directory_; }
  const Directory& directory() const { return *directory_; }
  Runtime& runtime() { return runtime_; }
  net::Network& network();
  sim::Scheduler& scheduler();

  // ==== runtime internals (used by the units, monitor, script, shell) ========

  /// Executes a method on a locally hosted complet (invocation unit's final
  /// dispatch; also used for continuations and event delivery).
  Value DispatchLocal(ComletId target, std::string_view method,
                      const std::vector<Value>& args);

  /// Network receive entry point.
  void HandleMessage(net::Message msg);

  /// Asynchronous request/reply: sends `payload` and returns a future for
  /// the reply payload (matched by correlation). Retry-safe failures are
  /// retried per the RetryPolicy from scheduled continuations — the calling
  /// stack never pumps. The future rejects with UnreachableError after the
  /// last attempt times out. Naming, remote-new, event registration,
  /// control round-trips, and movement all ride on this.
  sim::Future<std::vector<std::uint8_t>> SendAsync(
      CoreId to, net::MessageKind kind, std::vector<std::uint8_t> payload);

  /// Synchronous wrapper over SendAsync: pumps the scheduler until the
  /// reply future settles; throws UnreachableError on timeout.
  std::vector<std::uint8_t> SendAndAwait(CoreId to, net::MessageKind kind,
                                         std::vector<std::uint8_t> payload);
  /// Sends a reply carrying `correlation`. When `skey` names a request
  /// admitted through AdmitOnce, the reply is cached in the replay window
  /// (and, on a durable Core, logged) so duplicates can be re-answered
  /// without re-executing; an invalid key leaves the reply uncached
  /// (park-expiry errors, recovery replies).
  void Reply(CoreId to, net::MessageKind kind, std::uint64_t correlation,
             std::vector<std::uint8_t> payload, net::SessionKey skey = {});

  /// One-way, best-effort kCtrlMoveAck: tells the destination of move `txn`
  /// that this source's COMMIT record is durable, so the destination can
  /// prune its move-in mark (MovementUnit::DropMoveIn). A lost ack only
  /// leaves the mark in place — never wrong, just unpruned.
  void SendMoveAck(CoreId dest, std::uint64_t txn);

  /// Mints identity/correlation counters. On a durable Core both notify the
  /// WAL, which keeps a durable ceiling ahead of them so a restart can never
  /// re-issue a value a peer may already have seen.
  ComletId MintComletId();
  std::uint64_t NextCorrelation();

  /// Installs an anchor as a hosted complet: assigns identity (unless it
  /// already has one, i.e. it arrived by movement), registers repository +
  /// tracker, publishes the location to the home shard, drains parked
  /// requests, fires completArrived. `hint_epoch` is the directory epoch
  /// the install is known at: movement passes the move's epoch proposal;
  /// 0 (reinstall, recovery) publishes a host assertion that the shard
  /// re-stamps; a freshly minted identity is stamped 1.
  ComletRefBase Install(std::shared_ptr<Anchor> anchor,
                        std::uint64_t hint_epoch = 0);

  /// Parks a message that targets a complet believed to be in transit to
  /// us. Parked requests expire after half the RPC timeout: expiry sends a
  /// transport-flagged error reply to `error_reply_to` (the request was
  /// never executed), which keeps gave-up-and-retried origins from seeing
  /// double execution.
  void Park(ComletId id, net::Message msg, CoreId error_reply_to = {});

  // -- live-reference registry (§4.1 premise: refs are visible to the Core) --
  // Registration order, not a hash of the pointer value, so every walk over
  // the registry (shell `ls`, script rule bodies) is run-to-run
  // deterministic.
  void RegisterRef(const ComletRefBase* ref) { live_refs_.push_back(ref); }
  void UnregisterRef(const ComletRefBase* ref) { std::erase(live_refs_, ref); }
  /// All live references whose containing complet is `owner` (invalid id =
  /// references held by top-level application code at this Core).
  std::vector<const ComletRefBase*> RefsOwnedBy(ComletId owner) const;
  /// All live references at this Core pointing at `target`.
  std::vector<const ComletRefBase*> RefsTo(ComletId target) const;
  std::size_t live_ref_count() const { return live_refs_.size(); }

  // -- application profiling counters (§4.1) -----------------------------------
  void RecordInvocation(ComletId src, ComletId dst);
  std::uint64_t InvocationCount(ComletId src, ComletId dst) const;
  std::uint64_t TotalInvocations() const { return total_invocations_; }

  /// Complet whose method is currently executing (invalid at top level);
  /// used to attribute materialized references to their containing complet.
  ComletId CurrentComlet() const {
    return exec_stack_.empty() ? ComletId{} : exec_stack_.back();
  }

  InvocationUnit& invocation() { return *invocation_; }
  MovementUnit& movement() { return *movement_; }

  void SetRpcTimeout(SimTime t) { rpc_timeout_ = t; }
  SimTime rpc_timeout() const { return rpc_timeout_; }
  SimTime start_time() const { return start_time_; }

  // -- at-most-once RPC (retry + slot-window replay) --------------------------

  /// Retry schedule used by SendAndAwait and the invocation unit for
  /// retry-safe failures (timeouts, transport-flagged errors). Retries
  /// reuse the original correlation and session key so executors can
  /// deduplicate.
  void SetRetryPolicy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }
  /// Retries performed by this Core so far (telemetry).
  std::uint64_t rpc_retries() const { return rpc_retries_; }

  /// Origin-side session pool: leases the slot each outgoing RPC carries.
  net::SessionPool& sessions() { return sessions_; }
  /// Executor-side replay windows (duplicated/retried requests).
  net::ReplayDirectory& replay() { return replay_; }
  const net::ReplayDirectory& replay() const { return replay_; }
  /// Outbound message formation (batching); see src/net/formation.h.
  net::Formation& formation() { return *formation_; }

  /// Admits `msg` for execution through its session key. Returns false for
  /// duplicates: in-progress ones are silently suppressed, already-answered
  /// ones are re-answered from the slot's cached reply, and stale seqs
  /// (settled at the origin) are dropped. Sessionless messages are always
  /// admitted — the idempotent protocols never stamp a key.
  bool AdmitOnce(const net::Message& msg);

  /// How long parked requests wait for an in-transit complet before being
  /// failed with a transport error. 0 (default) means rpc_timeout()/2 —
  /// shorter than any origin's patience, so a parked request can never
  /// execute after its origin gave up and retried elsewhere (that would
  /// break at-most-once; see docs/PROTOCOL.md "Failure semantics").
  void SetParkExpiry(SimTime t) { park_expiry_ = t; }
  SimTime park_expiry() const {
    return park_expiry_ > 0 ? park_expiry_ : rpc_timeout_ / 2;
  }

  // -- failure detection ------------------------------------------------------

  /// Starts (or reconfigures) the heartbeat failure detector: every
  /// `interval` this Core pings the peers it depends on; `k_missed`
  /// consecutive unanswered pings fire kCoreUnreachable (kCoreRecovered on
  /// return). Returns the detector for Watch()/telemetry.
  FailureDetector& EnableHeartbeat(SimTime interval = Millis(500),
                                   int k_missed = 3);
  /// Stops and discards the detector (no leaked timers).
  void DisableHeartbeat();
  FailureDetector* failure_detector() { return detector_.get(); }

  /// Peers this Core holds remote event subscriptions at (heartbeat peer
  /// discovery), deduplicated and sorted.
  std::vector<CoreId> RemoteSubscriptionPeers() const;

  /// Sends a heartbeat ping (kControl subkind) to `peer`.
  void SendHeartbeatPing(CoreId peer);

 private:
  friend class Directory;
  friend class InvocationUnit;
  friend class MovementUnit;
  friend class Wal;

  /// One outstanding SendAsync round-trip: a stable heap record (shared by
  /// the map, the retry/timeout timers, and the reply path), so waiter
  /// bookkeeping survives map rehashes and late replies can be told apart
  /// from live ones.
  struct PendingRpc {
    explicit PendingRpc(sim::Scheduler& s) : promise(s) {}
    sim::Promise<std::vector<std::uint8_t>> promise;
    CoreId to;
    net::MessageKind kind{};
    std::vector<std::uint8_t> payload;  ///< kept for resends
    std::uint64_t corr = 0;
    net::SessionKey skey;   ///< slot lease; released when the RPC settles
    int attempt = 0;
    int max_attempts = 1;
    sim::TaskId timer = 0;  ///< pending timeout or backoff task
  };

  /// Hot-path metric instruments, resolved once from the Runtime registry
  /// at construction so recording never takes the registry lock.
  struct Instruments {
    monitor::Counter* invocations = nullptr;      ///< origin-side completed
    monitor::Counter* invoke_errors = nullptr;    ///< origin-side failures
    monitor::Counter* execs = nullptr;            ///< executor-side dispatches
    monitor::Counter* retries = nullptr;          ///< resent attempts
    monitor::Counter* session_replays = nullptr;  ///< answered from slot cache
    monitor::Counter* session_suppressed = nullptr; ///< in-progress duplicates
    monitor::Counter* session_stale = nullptr;    ///< settled-at-origin drops
    monitor::Counter* formation_flushes = nullptr; ///< formation departures
    monitor::Counter* formation_frames = nullptr;  ///< multi-item frames sent
    monitor::Counter* formation_batched = nullptr; ///< items inside frames
    monitor::Counter* late_replies = nullptr;     ///< replies to settled RPCs
    monitor::Counter* moves = nullptr;
    monitor::Counter* hb_pings = nullptr;
    monitor::Counter* bytes_copied = nullptr;     ///< payload bytes copied
    monitor::Counter* dir_publishes = nullptr;    ///< location publishes issued
    monitor::Counter* dir_lookups = nullptr;      ///< shard lookups issued
    monitor::Counter* dir_hint_hit = nullptr;     ///< fresher-hint chain hops
    monitor::Counter* dir_hint_miss = nullptr;    ///< no fresher hint: lookup
    monitor::Counter* dir_hint_stale = nullptr;   ///< stale publishes rejected
    monitor::Histogram* invoke_latency = nullptr; ///< ns, delivered invokes
    monitor::Histogram* invoke_hops = nullptr;    ///< chain length at delivery
    monitor::Histogram* chain_len = nullptr;      ///< hops seen by each reply
    monitor::Histogram* move_duration = nullptr;  ///< ns, committed moves
    monitor::Histogram* move_bytes = nullptr;     ///< migration stream size
  };

  void DrainParked(ComletId id);
  void DispatchMessage(net::Message msg);
  /// Quiet install used by WAL replay: no events, no parked drain, no
  /// directory publish — replaces any earlier replayed image of the id.
  void RestoreComlet(ComletId id, const std::vector<std::uint8_t>& image);
  /// Appends a post-dispatch state image of `target` to the WAL (no-op for
  /// non-durable Cores, or when the method moved the complet away).
  void LogComletState(ComletId target);
  void SendRpcAttempt(const std::shared_ptr<PendingRpc>& rpc);
  void OnRpcTimeout(const std::shared_ptr<PendingRpc>& rpc);
  void HandleNameRequest(const net::Message& msg);
  void HandleNewRequest(const net::Message& msg);
  void HandleControl(net::Message msg);
  void HandleBatch(net::Message msg);
  /// Routes a reply message out (kRecoveryReply bypasses formation: the
  /// querier is mid-recovery and must not wait on a batch deadline).
  void SendReplyOut(net::Message msg);
  /// One-way kCtrlSlotAck to `key.origin`: the oneway request holding this
  /// slot executed (or was recognized as a duplicate), so the origin can
  /// release the lease without waiting out its fallback timer.
  void SendSlotAck(const net::SessionKey& key);
  /// Barrier-before-reply wrapper around SendSlotAck: on a durable executor
  /// the ack is released only after every WAL record appended so far (the
  /// slot's exec record included) is durable — an acked slot the origin
  /// retires must survive the executor's crash. No-op for invalid keys.
  void AckSlotDurable(const net::SessionKey& key);

  Runtime& runtime_;
  CoreId id_;
  std::string name_;
  bool alive_ = true;
  SimTime start_time_ = 0;

  Repository repository_;
  TrackerTable trackers_;
  Naming naming_;
  std::unique_ptr<Directory> directory_;
  std::unique_ptr<InvocationUnit> invocation_;
  std::unique_ptr<MovementUnit> movement_;
  std::unique_ptr<monitor::Profiler> profiler_;
  std::unique_ptr<monitor::EventBus> events_;
  monitor::Tracer tracer_;
  Instruments inst_{};

  std::uint64_t next_comlet_seq_ = 0;
  std::uint64_t next_correlation_ = 0;
  SimTime rpc_timeout_ = Seconds(30);
  SimTime park_expiry_ = 0;  ///< 0 = derive from rpc_timeout_
  RetryPolicy retry_policy_;
  net::SessionPool sessions_;      ///< origin side: slot leases per peer
  net::ReplayDirectory replay_;    ///< executor side: per-slot reply cache
  std::unique_ptr<net::Formation> formation_;
  std::uint64_t rpc_retries_ = 0;
  std::unique_ptr<FailureDetector> detector_;
  std::unique_ptr<Wal> wal_;  ///< null until EnableWal
  std::uint64_t restart_epoch_ = 0;

  std::unordered_map<std::uint64_t, std::shared_ptr<PendingRpc>> pending_replies_;
  std::unordered_map<ComletId, std::vector<net::Message>> parked_;

  struct PairHash {
    std::size_t operator()(const std::pair<ComletId, ComletId>& p) const {
      return std::hash<ComletId>{}(p.first) * 1315423911u ^
             std::hash<ComletId>{}(p.second);
    }
  };
  std::unordered_map<std::pair<ComletId, ComletId>, std::uint64_t, PairHash>
      invocation_counts_;
  std::uint64_t total_invocations_ = 0;
  std::vector<ComletId> exec_stack_;

  struct RemoteSub {
    CoreId where;
    monitor::SubId remote_id = 0;
    monitor::Listener listener;  ///< local callback (remote subscriptions)
    std::uint64_t last_seq = 0;  ///< highest notify seq seen (dup filter)
  };
  std::unordered_map<monitor::SubId, RemoteSub> remote_subs_;
  monitor::SubId next_token_ = 1;
  std::vector<const ComletRefBase*> live_refs_;  // in registration order
};

}  // namespace fargo::core
