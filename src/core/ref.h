// Complet references: the stub side of the stub/tracker split (§3.1).
//
// A ComletRef is the always-local "stub": user code holds it like a plain
// object reference and calls through it; the stub forwards to the single
// per-target tracker of its Core, which handles locality and movement. The
// stub also carries the MetaRef reifying the reference's relocation
// semantics (Fig 2).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/ids.h"
#include "src/common/value.h"
#include "src/core/fwd.h"
#include "src/core/meta_ref.h"
#include "src/sim/future.h"

namespace fargo::serial {
class GraphWriter;
class GraphReader;
}  // namespace fargo::serial

namespace fargo::core {

/// Untyped complet reference (stub). Copyable; copies alias the same
/// MetaRef, like multiple local pointers to one generated stub instance.
// fargo: domain(core)
class ComletRefBase {
 public:
  ComletRefBase() = default;
  ComletRefBase(const ComletRefBase& other);
  ComletRefBase(ComletRefBase&& other) noexcept;
  ComletRefBase& operator=(const ComletRefBase& other);
  ComletRefBase& operator=(ComletRefBase&& other) noexcept;
  ~ComletRefBase();

  // NOTE: every bound stub registers with its Core (the paper's premise
  // that "complet references are accessible by the Core", §4.1), which is
  // what lets the shell/monitor inspect and retype references (Fig 4).

  /// True once the reference points at a complet.
  bool bound() const { return core_ != nullptr && handle_.id.valid(); }
  explicit operator bool() const { return bound(); }

  /// Invokes `method` on the target anchor with FarGo parameter-passing
  /// semantics. Blocks (pumping the scheduler) until the reply arrives.
  Value Call(std::string_view method, std::vector<Value> args = {}) const;

  /// Asynchronous Call: returns immediately with a future for the result.
  /// Concurrent CallAsync invocations pipeline over the network instead of
  /// serializing on round trips. Throws (synchronously, like Call) when the
  /// reference is unbound.
  sim::Future<Value> CallAsync(std::string_view method,
                               std::vector<Value> args = {}) const;

  /// One-way invocation: fire-and-forget; the result is discarded. Routing
  /// and movement-tracking are identical to Call.
  void Post(std::string_view method, std::vector<Value> args = {}) const;

  /// The wire handle (identity + routing hint) of the target.
  const ComletHandle& handle() const { return handle_; }
  ComletId target() const { return handle_.id; }
  const std::string& anchor_type() const { return handle_.anchor_type; }

  /// Core in whose context this stub lives (the source side).
  Core* source_core() const { return core_; }

  /// Complet containing this reference (invalid id when held by top-level
  /// application code); used for per-reference invocation profiling.
  ComletId owner() const { return owner_; }

  /// Meta reference (reflection, §3.2). Prefer Core::GetMetaRef for the
  /// paper-shaped API.
  const std::shared_ptr<MetaRef>& meta() const { return meta_; }

  /// Releases the reference (drops the stub's tracker refcount).
  void Reset();

  // -- serialization participation -------------------------------------------
  /// Routes through GraphWriter's ref hook: the movement/invocation unit
  /// decides how this reference is marshaled (relocator semantics).
  void SerializeTo(serial::GraphWriter& w) const;
  /// Routes through GraphReader's ref hook: re-binds in place at the
  /// receiving Core.
  void DeserializeFrom(serial::GraphReader& r);

  // -- runtime internals ------------------------------------------------------
  /// Binds this stub within `core` to `handle`, creating/refcounting the
  /// Core's tracker for the target. Used by Core and the unmarshal hooks.
  void Bind(Core& core, ComletHandle handle, std::shared_ptr<MetaRef> meta,
            ComletId owner = {});

 private:
  void AddTrackerRef();
  void DropTrackerRef();

  Core* core_ = nullptr;
  ComletHandle handle_;
  std::shared_ptr<MetaRef> meta_;
  ComletId owner_{};
};

namespace detail {
/// Result conversion shared by the sync and async typed invokers.
template <class R>
R ConvertResult(Value& result) {
  if constexpr (std::is_same_v<R, Value>) {
    return std::move(result);
  } else if constexpr (std::is_same_v<R, void>) {
    (void)result;
    return;
  } else if constexpr (std::is_same_v<R, bool>) {
    return result.AsBool();
  } else if constexpr (std::is_integral_v<R>) {
    return static_cast<R>(result.AsInt());
  } else if constexpr (std::is_floating_point_v<R>) {
    return static_cast<R>(result.AsReal());
  } else if constexpr (std::is_same_v<R, std::string>) {
    return result.AsString();
  } else {
    static_assert(std::is_same_v<R, Value>, "unsupported return type");
  }
}
}  // namespace detail

/// Typed complet reference. T is the anchor class; this plays the role of
/// the compiler-generated stub type (e.g. `Message` for anchor `Message_`
/// in Fig 3).
template <class T>
class ComletRef : public ComletRefBase {
 public:
  ComletRef() = default;
  explicit ComletRef(const ComletRefBase& base) : ComletRefBase(base) {}
  explicit ComletRef(ComletRefBase&& base) : ComletRefBase(std::move(base)) {}

  /// Typed convenience: `ref.Call(...)` then converts the result.
  template <class R = Value, class... Args>
  R Invoke(std::string_view method, Args&&... args) const {
    std::vector<Value> argv;
    argv.reserve(sizeof...(Args));
    (argv.push_back(Value(std::forward<Args>(args))), ...);
    Value result = Call(method, std::move(argv));
    return detail::ConvertResult<R>(result);
  }

  /// Typed asynchronous invoke: the future settles with the converted
  /// result (Future<Unit> for R = void). Conversion errors reject it.
  template <class R = Value, class... Args>
  auto InvokeAsync(std::string_view method, Args&&... args) const {
    std::vector<Value> argv;
    argv.reserve(sizeof...(Args));
    (argv.push_back(Value(std::forward<Args>(args))), ...);
    sim::Future<Value> raw = CallAsync(method, std::move(argv));
    if constexpr (std::is_same_v<R, Value>) {
      return raw;
    } else {
      return raw.Then(
          [](Value& result) { return detail::ConvertResult<R>(result); });
    }
  }
};

}  // namespace fargo::core
