#include "src/core/heartbeat.h"

#include "src/common/log.h"
#include "src/core/core.h"
#include "src/core/tracker.h"
#include "src/monitor/events.h"

namespace fargo::core {

FailureDetector::FailureDetector(Core& core, SimTime interval, int k_missed)
    : core_(core), interval_(interval), k_missed_(k_missed) {
  task_ = std::make_unique<sim::PeriodicTask>(core_.scheduler(), interval_,
                                              [this] { Tick(); });
}

FailureDetector::~FailureDetector() { Stop(); }

void FailureDetector::Stop() {
  if (task_) task_->Stop();
}

bool FailureDetector::running() const { return task_ && task_->running(); }

void FailureDetector::Watch(CoreId peer) {
  if (peer.valid() && peer != core_.id()) watched_.insert(peer);
}

void FailureDetector::Unwatch(CoreId peer) { watched_.erase(peer); }

bool FailureDetector::IsSuspected(CoreId peer) const {
  auto it = peers_.find(peer);
  return it != peers_.end() && it->second.suspected;
}

std::set<CoreId> FailureDetector::PeerSet() const {
  std::set<CoreId> peers = watched_;
  for (const TrackerEntry* t : core_.trackers().All()) {
    if (!t->is_local() && t->next.valid() && t->next != core_.id())
      peers.insert(t->next);
  }
  for (CoreId peer : core_.RemoteSubscriptionPeers()) {
    if (peer.valid() && peer != core_.id()) peers.insert(peer);
  }
  return peers;
}

void FailureDetector::Tick() {
  // Account the previous round's outstanding pings before sending new ones.
  const std::set<CoreId> current = PeerSet();
  for (auto it = peers_.begin(); it != peers_.end();) {
    if (!current.contains(it->first)) {
      // Dependency gone (tracker shortened away, unsubscribed): forget the
      // peer without firing recovery — nobody depends on it anymore.
      it = peers_.erase(it);
      continue;
    }
    PeerState& state = it->second;
    if (state.awaiting) {
      state.awaiting = false;
      ++state.missed;
      if (!state.suspected && state.missed >= k_missed_)
        Suspect(it->first, state);
    }
    ++it;
  }
  for (CoreId peer : current) {
    PeerState& state = peers_[peer];
    state.awaiting = true;
    core_.SendHeartbeatPing(peer);
    ++pings_sent_;
  }
}

void FailureDetector::OnPong(CoreId peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  PeerState& state = it->second;
  state.awaiting = false;
  state.missed = 0;
  if (state.suspected) Recover(peer, state);
}

void FailureDetector::Suspect(CoreId peer, PeerState& state) {
  state.suspected = true;
  ++suspicions_;
  LogInfo() << "core " << ToString(core_.id()) << " suspects " << ToString(peer)
            << " (" << k_missed_ << " heartbeats missed)";
  monitor::Event e;
  e.kind = monitor::EventKind::kCoreUnreachable;
  e.source = core_.id();
  e.peer = peer;
  core_.events().Fire(e);
}

void FailureDetector::Recover(CoreId peer, PeerState& state) {
  state.suspected = false;
  ++recoveries_;
  LogInfo() << "core " << ToString(core_.id()) << " sees " << ToString(peer)
            << " again";
  monitor::Event e;
  e.kind = monitor::EventKind::kCoreRecovered;
  e.source = core_.id();
  e.peer = peer;
  core_.events().Fire(e);
}

}  // namespace fargo::core
