// At-most-once RPC support: retry policy and correlation dedup cache.
//
// Retries are only safe for failures the transport *guarantees* never
// executed the request (timeouts and transport-flagged error replies); the
// retry reuses the original correlation token so the executor side can
// recognize the request if both the original and the retry arrive. The
// DedupCache closes the loop: the executor records each (origin,
// correlation) it has begun, suppresses concurrent duplicates, and answers
// late duplicates from the cached reply instead of re-executing — turning
// the at-least-once retry loop into at-most-once execution.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/net/network.h"

namespace fargo::core {

/// Client-side retry schedule for retry-safe RPC failures. The default
/// (max_attempts = 1) preserves single-shot semantics.
struct RetryPolicy {
  int max_attempts = 1;            ///< total tries, including the first
  SimTime initial_backoff = Millis(10);
  double multiplier = 2.0;         ///< exponential growth per failure
  SimTime max_backoff = Seconds(2);
  double jitter = 0.1;             ///< +/- fraction applied to each backoff
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;  ///< jitter stream seed

  bool enabled() const { return max_attempts > 1; }

  /// Backoff to wait after the `failed_attempt`-th failure (1-based).
  /// Deterministic: the jitter is a pure function of (seed, salt, attempt),
  /// so identical runs replay identical schedules.
  SimTime BackoffAfter(int failed_attempt, std::uint64_t salt) const;
};

/// Executor-side request dedup, keyed by (origin Core, correlation).
/// Entries expire `ttl` after completion — the window must outlive the
/// client's last possible retry (attempts x (timeout + backoff)).
class DedupCache {
 public:
  enum class Outcome : std::uint8_t {
    kFresh,       ///< first sighting: execute it
    kInProgress,  ///< already executing (duplicate raced in): drop it
    kReplay,      ///< already answered: resend the cached reply
  };

  struct BeginResult {
    Outcome outcome = Outcome::kFresh;
    net::MessageKind reply_kind = net::MessageKind::kControlReply;
    /// Cached reply payload; valid only for kReplay, and only until the
    /// next mutating cache call.
    const std::vector<std::uint8_t>* reply = nullptr;
  };

  explicit DedupCache(SimTime ttl = Seconds(60)) : ttl_(ttl) {}

  void SetTtl(SimTime ttl) { ttl_ = ttl; }
  SimTime ttl() const { return ttl_; }

  /// Records that a request keyed (origin, correlation) is about to
  /// execute, or reports it as a duplicate. Also evicts expired entries.
  BeginResult Begin(CoreId origin, std::uint64_t correlation, SimTime now);

  struct CachedReply {
    net::MessageKind kind = net::MessageKind::kControlReply;
    const std::vector<std::uint8_t>* payload = nullptr;
  };
  /// Cached reply for an already-completed request, if any. Used by
  /// forwarding hops: a Core that executed a request and then moved the
  /// target away answers retries from its cache instead of forwarding them
  /// to be executed a second time at the new host.
  std::optional<CachedReply> Lookup(CoreId origin, std::uint64_t correlation);

  /// Caches the reply for a request previously admitted by Begin. No-op
  /// for unknown keys (replies to requests that were never deduped, e.g.
  /// park-expiry errors) and for already-completed entries. Returns true
  /// when the reply was actually stored (i.e. a copy was made).
  bool Complete(CoreId origin, std::uint64_t correlation,
                net::MessageKind reply_kind,
                const std::vector<std::uint8_t>& payload, SimTime now);

  void EvictExpired(SimTime now);

  /// One completed entry, in completion order, for WAL checkpoints.
  struct SeedEntry {
    CoreId origin;
    std::uint64_t correlation = 0;
    net::MessageKind reply_kind = net::MessageKind::kControlReply;
    std::vector<std::uint8_t> reply;
  };
  /// Completed entries in completion order (in-progress ones are volatile
  /// by design: their requests will be retried and re-admitted).
  std::vector<SeedEntry> Snapshot() const;
  /// Re-inserts a completed entry during WAL replay; idempotent, later
  /// seeds of the same key win.
  void Seed(CoreId origin, std::uint64_t correlation,
            net::MessageKind reply_kind, std::vector<std::uint8_t> reply,
            SimTime now);
  void Clear();

  std::size_t size() const { return entries_.size(); }
  std::uint64_t replays() const { return replays_; }
  std::uint64_t suppressed() const { return suppressed_; }

 private:
  struct Key {
    CoreId origin;
    std::uint64_t correlation = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t x =
          (std::uint64_t{k.origin.value} << 32) ^ k.correlation;
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdull;
      x ^= x >> 33;
      return static_cast<std::size_t>(x);
    }
  };
  struct Entry {
    bool done = false;
    net::MessageKind reply_kind = net::MessageKind::kControlReply;
    std::vector<std::uint8_t> reply;
    SimTime completed_at = 0;  ///< TTL anchor; meaningful once done
  };

  SimTime ttl_;
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::deque<Key> completion_order_;  ///< completion-time FIFO for eviction
  std::uint64_t replays_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace fargo::core
