// Client-side retry schedule for at-most-once RPC.
//
// Retries are only safe for failures the transport *guarantees* never
// executed the request (timeouts and transport-flagged error replies); the
// retry reuses the original correlation and session key (epoch, slot, seq
// — src/net/session.h) so the executor side can recognize the request if
// both the original and the retry arrive. The executor's ReplayDirectory
// closes the loop: it suppresses concurrent duplicates and answers late
// ones from the cached reply instead of re-executing — turning the
// at-least-once retry loop into at-most-once execution.
#pragma once

#include <cstdint>

#include "src/common/time.h"

namespace fargo::core {

/// Client-side retry schedule for retry-safe RPC failures. The default
/// (max_attempts = 1) preserves single-shot semantics.
struct RetryPolicy {
  int max_attempts = 1;            ///< total tries, including the first
  SimTime initial_backoff = Millis(10);
  double multiplier = 2.0;         ///< exponential growth per failure
  SimTime max_backoff = Seconds(2);
  double jitter = 0.1;             ///< +/- fraction applied to each backoff
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;  ///< jitter stream seed

  bool enabled() const { return max_attempts > 1; }

  /// Backoff to wait after the `failed_attempt`-th failure (1-based).
  /// Deterministic: the jitter is a pure function of (seed, salt, attempt),
  /// so identical runs replay identical schedules.
  SimTime BackoffAfter(int failed_attempt, std::uint64_t salt) const;
};

}  // namespace fargo::core
