// The Complet Repository (Fig 1): owns the complets hosted by a Core.
#pragma once

#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/core/anchor.h"

namespace fargo::core {

// fargo: domain(core)
class Repository {
 public:
  /// Takes ownership of a hosted complet.
  void Add(ComletId id, std::shared_ptr<Anchor> anchor);

  /// The hosted anchor, or nullptr.
  std::shared_ptr<Anchor> Get(ComletId id) const;

  /// Removes and returns the anchor (used when a complet departs).
  std::shared_ptr<Anchor> Remove(ComletId id);

  bool Contains(ComletId id) const { return anchors_.contains(id); }

  /// Any hosted complet whose anchor type matches (stamp re-binding).
  std::shared_ptr<Anchor> FindByType(std::string_view anchor_type) const;

  /// Ids of all hosted complets, in a deterministic (sorted) order.
  std::vector<ComletId> All() const;

  /// The Core's "complet load" (§4.1 completLoad profiling service).
  std::size_t size() const { return anchors_.size(); }

  /// Drops every hosted complet. Runtime teardown calls this for all Cores
  /// before any Core is destroyed: a hosted complet may hold references
  /// bound to a sibling Core, and releasing it here keeps those stubs from
  /// unregistering against an already-destroyed Core.
  void Clear() { anchors_.clear(); }

 private:
  std::unordered_map<ComletId, std::shared_ptr<Anchor>> anchors_;
};

}  // namespace fargo::core
