// Forward declarations for the core module.
#pragma once

namespace fargo::monitor {
class Profiler;
class EventBus;
}  // namespace fargo::monitor

namespace fargo::core {

class Anchor;
class ComletRefBase;
template <class T>
class ComletRef;
class MetaRef;
class Relocator;
class TrackerTable;
class Repository;
class Naming;
class InvocationUnit;
class MovementUnit;
class Core;
class Runtime;

}  // namespace fargo::core
