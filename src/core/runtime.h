// The deployment space: one scheduler + one network + the set of Cores.
//
// In the paper each Core runs in its own JVM/OS process across a WAN; here
// all Cores of a run live in one process on a deterministic simulated
// network (DESIGN.md §2), which is what makes the benchmarks reproducible.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/core.h"
#include "src/core/directory.h"
#include "src/core/shard_map.h"
#include "src/monitor/metrics.h"
#include "src/net/network.h"
#include "src/sim/scheduler.h"
#include "src/sim/storage.h"

namespace fargo::core {

/// Deployment knobs. `localities` selects the execution engine:
///   -1 — honor the FARGO_PARALLEL environment variable (default);
///    0 — deterministic single-threaded sim (SimScheduler);
///    N — N locality worker threads (ParallelScheduler), Cores assigned
///        by `core.id % N` (DESIGN.md §localities).
struct RuntimeOptions {
  int localities = -1;
};

// fargo: domain(core)
class Runtime {
 public:
  Runtime();
  explicit Runtime(const RuntimeOptions& options);
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;
  ~Runtime();

  /// Boots a new Core named `name` (e.g. "acadia") and attaches it to the
  /// network.
  Core& CreateCore(std::string name);

  Core* Find(CoreId id) const;
  Core* FindByName(std::string_view name) const;
  /// All Cores ever created (including shut-down ones, which report
  /// !alive()).
  std::vector<Core*> Cores() const;

  sim::Scheduler& scheduler() { return *scheduler_; }
  /// Locality worker threads (0 = deterministic single-threaded sim).
  int localities() const { return scheduler_->localities(); }
  net::Network& network() { return network_; }
  /// The deployment's durable storage model: per-Core WALs and checkpoint
  /// blobs live here (Core::EnableWal).
  sim::Storage& storage() { return storage_; }

  // -- observability: metrics + causal tracing --------------------------------

  /// Deployment-wide metrics registry. Cores resolve their instruments here
  /// at construction; network drops and duplication copies are hooked in by
  /// the constructor.
  monitor::Registry& metrics() { return metrics_; }
  const monitor::Registry& metrics() const { return metrics_; }

  /// Folds the serialization layer's process-wide buffer telemetry
  /// (serial::GetBufferStats) into the registry: `alloc.count` gains the
  /// Writer allocations and `net.bytes_copied` the regrow copies performed
  /// since the previous sync. Benches and tests call this before reading
  /// either metric; both are deterministic under deterministic scheduling.
  void SyncSerialStats();

  /// Turns span recording on/off for every Core (existing and future).
  void SetTracing(bool on);
  bool tracing() const { return tracing_; }

  /// Merges every Core's span buffer into one Chrome trace-event JSON
  /// stream/file (chrome://tracing, Perfetto). Returns the event count.
  std::size_t WriteTrace(std::ostream& os) const;
  std::size_t DumpTrace(const std::string& path) const;

  /// Enables the location-independent naming scheme the paper lists as
  /// future work (§7): every complet's origin Core doubles as its *home
  /// registry*. Hosts report arrivals to the home; a stub whose tracker
  /// chain is severed (e.g. by a crashed Core) consults the home and
  /// re-routes. Costs one extra (asynchronous) message per movement.
  /// Implemented as the directory plane's 1-shard-per-origin configuration
  /// (DirectoryMode::kOrigin; see src/core/directory.h).
  void EnableHomeRegistry(bool on) {
    directory_mode_ = on ? DirectoryMode::kOrigin : DirectoryMode::kDisabled;
  }
  /// True when any directory configuration (origin or sharded) is active.
  bool home_registry_enabled() const {
    return directory_mode_ != DirectoryMode::kDisabled;
  }

  /// Enables the sharded directory plane: location records are owned by a
  /// consistent-hash ring over `owners` (`vnodes` ring points per shard).
  /// Installs the map deployment-wide at the next version; use
  /// Directory::BroadcastMap to exercise the kDirectoryMap wire path.
  void EnableDirectory(std::vector<CoreId> owners, std::uint32_t vnodes = 16);
  DirectoryMode directory_mode() const { return directory_mode_; }
  const ShardMap& shard_map() const { return shard_map_; }
  /// Higher-version-wins map adoption (kDirectoryMap receive path).
  /// Returns true when `map` replaced the installed one.
  bool AdoptShardMap(const ShardMap& map);

  /// Convenience pumps for drivers/tests.
  void RunFor(SimTime d) { scheduler_->RunFor(d); }
  void RunUntilIdle() { scheduler_->RunUntilIdle(); }
  SimTime Now() const { return scheduler_->Now(); }

 private:
  std::unique_ptr<sim::Scheduler> scheduler_;  ///< engine per RuntimeOptions
  sim::Storage storage_{*scheduler_};
  monitor::Registry metrics_;  ///< before network_: the drop hook refers here
  net::Network network_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::uint32_t next_core_id_ = 0;
  DirectoryMode directory_mode_ = DirectoryMode::kDisabled;
  ShardMap shard_map_;  ///< valid only under DirectoryMode::kSharded
  bool tracing_ = false;
  /// serial::BufferStats values already folded into the registry; the
  /// stats are process-global, the registry is per-Runtime.
  std::uint64_t synced_allocations_ = 0;
  std::uint64_t synced_regrow_bytes_ = 0;
  /// ParallelScheduler telemetry already folded into `locality.*` (only
  /// touched in parallel mode, so sim-mode metric dumps are unchanged).
  std::uint64_t synced_handoffs_ = 0;
  std::uint64_t synced_overflows_ = 0;
  std::uint64_t synced_rounds_ = 0;
};

}  // namespace fargo::core
