#include "src/core/meta_ref.h"

#include "src/core/core.h"

namespace fargo::core {

void MetaRef::SetRelocator(std::shared_ptr<Relocator> relocator) {
  if (!relocator) throw FargoError("null relocator");
  relocator_ = std::move(relocator);
}

CoreId MetaRef::KnownLocation(const Core& from) const {
  const TrackerEntry* entry = from.trackers().Find(target_);
  if (entry == nullptr) return CoreId{};
  if (entry->is_local()) return from.id();
  return entry->next;
}

}  // namespace fargo::core
