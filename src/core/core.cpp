#include "src/core/core.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "src/common/log.h"
#include "src/core/directory.h"
#include "src/core/heartbeat.h"
#include "src/core/invocation.h"
#include "src/core/movement.h"
#include "src/core/relocator.h"
#include "src/core/persistence.h"
#include "src/core/runtime.h"
#include "src/core/wal.h"
#include "src/core/wire.h"
#include "src/monitor/events.h"
#include "src/monitor/profiler.h"
#include "src/serial/frame.h"
#include "src/serial/graph.h"
#include "src/serial/value_codec.h"

namespace fargo::core {

namespace {
// kControl payload subkinds (heartbeats + WAL move-in pruning + session
// slot releases). Values 1 and 2 carried the retired home-registry
// protocol (now the kDirectory* message family) and stay reserved.
constexpr std::uint8_t kCtrlPing = 3;
constexpr std::uint8_t kCtrlPong = 4;
constexpr std::uint8_t kCtrlMoveAck = 5;
constexpr std::uint8_t kCtrlSlotAck = 6;
}  // namespace

Core::Core(Runtime& runtime, CoreId id, std::string name)
    : runtime_(runtime), id_(id), name_(std::move(name)), tracer_(id) {
  directory_ = std::make_unique<Directory>(*this);
  invocation_ = std::make_unique<InvocationUnit>(*this);
  movement_ = std::make_unique<MovementUnit>(*this);
  profiler_ = std::make_unique<monitor::Profiler>(*this);
  events_ = std::make_unique<monitor::EventBus>(*this);
  start_time_ = scheduler().Now();
  // Resolve hot-path instruments once; recording is then lock-free.
  monitor::Registry& reg = runtime_.metrics();
  inst_.invocations = &reg.counter("invoke.count");
  inst_.invoke_errors = &reg.counter("invoke.errors");
  inst_.execs = &reg.counter("invoke.exec");
  inst_.retries = &reg.counter("rpc.retries");
  inst_.session_replays = &reg.counter("session.replays");
  inst_.session_suppressed = &reg.counter("session.suppressed");
  inst_.session_stale = &reg.counter("session.stale");
  inst_.formation_flushes = &reg.counter("formation.flushes");
  inst_.formation_frames = &reg.counter("formation.frames");
  inst_.formation_batched = &reg.counter("formation.batched_items");
  inst_.late_replies = &reg.counter("rpc.late_replies");
  inst_.moves = &reg.counter("move.count");
  inst_.hb_pings = &reg.counter("hb.pings");
  inst_.bytes_copied = &reg.counter("net.bytes_copied");
  inst_.dir_publishes = &reg.counter("dir.publishes");
  inst_.dir_lookups = &reg.counter("dir.lookups");
  inst_.dir_hint_hit = &reg.counter("dir.hint.hit");
  inst_.dir_hint_miss = &reg.counter("dir.hint.miss");
  inst_.dir_hint_stale = &reg.counter("dir.hint.stale");
  inst_.invoke_latency =
      &reg.histogram("invoke.latency_ns", monitor::Registry::LatencyBounds());
  inst_.invoke_hops =
      &reg.histogram("invoke.hops", monitor::Registry::CountBounds());
  inst_.chain_len =
      &reg.histogram("tracker.chain_len", monitor::Registry::CountBounds());
  inst_.move_duration =
      &reg.histogram("move.duration_ns", monitor::Registry::LatencyBounds());
  inst_.move_bytes =
      &reg.histogram("move.bytes", monitor::Registry::SizeBounds());
  tracer_.SetEnabled(runtime_.tracing());
  // Route changes wake invocations parked on a missing/in-transit route
  // (the async pipeline's replacement for polling the table from a pump).
  trackers_.SetChangeHook([this](ComletId cid) {
    if (invocation_) invocation_->NotifyRouteChanged(cid);
  });
  // Durable Cores log every forwarding repoint; replay reapplies them so a
  // recovered Core still routes around complets that left before the crash.
  trackers_.SetForwardHook(
      [this](ComletId cid, CoreId next, const std::string& type) {
        if (wal_) {
          wal_->AppendTracker(cid, next, type);
          wal_->LazySync();
        }
      });
  // Outbound batching: every remote send funnels through the formation.
  // The hook keeps net/ monitor-agnostic (mirrors Network's DropHook).
  sessions_.SetEpoch(restart_epoch_ + 1);
  formation_ = std::make_unique<net::Formation>(id_, scheduler(), network());
  formation_->SetFlushHook([this](CoreId, net::Formation::Lane,
                                  std::size_t items, std::size_t) {
    inst_.formation_flushes->Inc();
    if (items > 1) {
      inst_.formation_frames->Inc();
      inst_.formation_batched->Inc(items);
      tracer_.RecordInstant(monitor::SpanKind::kControl, "batch_flush",
                            wire::TraceContext{}, scheduler().Now());
    }
  });
  network().Register(id_, [this](net::Message m) { HandleMessage(std::move(m)); });
}

Core::~Core() {
  if (alive_) network().Unregister(id_);
}

net::Network& Core::network() { return runtime_.network(); }
sim::Scheduler& Core::scheduler() { return runtime_.scheduler(); }
monitor::Registry& Core::metrics() { return runtime_.metrics(); }

std::size_t Core::DumpTrace(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw FargoError("cannot open trace file " + path);
  return monitor::WriteChromeTrace(os, {tracer_.buffer().Snapshot()},
                                   {{id_, name_}});
}

// ==== instantiation ==========================================================

ComletRefBase Core::Install(std::shared_ptr<Anchor> anchor,
                            std::uint64_t hint_epoch) {
  sim::Scheduler::AffinityScope aff(id_.value);
  if (!alive_) throw FargoError("core " + name_ + " is shut down");
  const bool fresh = !anchor->id_.valid();
  if (fresh) anchor->id_ = MintComletId();
  // A freshly minted identity has never been published: stamp it at epoch
  // 1 so the first move's proposal (2) supersedes it at the shard.
  if (fresh && hint_epoch == 0) hint_epoch = 1;
  anchor->core_ = this;
  const ComletId id = anchor->id_;
  std::string type(anchor->TypeName());
  repository_.Add(id, anchor);
  trackers_.SetLocal(id, *anchor, type, hint_epoch);
  if (wal_) {
    wal_->AppendInstall(*anchor);
    wal_->LazySync();
  }
  events_->Fire(monitor::Event{monitor::EventKind::kComletArrived, id_, id,
                               {}, 0.0});
  // Directory plane: report this arrival to the complet's home shard
  // (asynchronously; ordering races are resolved by epoch stamps on the
  // shard side). hint_epoch 0 — a reinstall that lost its stamp — goes out
  // as a host assertion the shard re-stamps.
  directory_->Publish(id, id_, hint_epoch);
  DrainParked(id);
  ComletRefBase ref;
  ref.Bind(*this, ComletHandle{id, id_, type}, nullptr);
  return ref;
}

ComletRefBase Core::NewRemote(CoreId dest, std::string_view anchor_type) {
  sim::Scheduler::AffinityScope aff(id_.value);
  if (dest == id_) {
    auto obj = serial::TypeRegistry::Instance().Create(anchor_type);
    auto anchor = std::dynamic_pointer_cast<Anchor>(obj);
    if (!anchor)
      throw FargoError(std::string(anchor_type) + " is not an anchor type");
    return Install(std::move(anchor));
  }
  serial::Writer w;
  w.WriteString(anchor_type);
  std::vector<std::uint8_t> reply =
      SendAndAwait(dest, net::MessageKind::kNewRequest, w.Take());
  serial::Reader r(reply);
  wire::CheckOk(r);
  return RefFromHandle(wire::ReadHandle(r));
}

// ==== movement ===============================================================

void Core::Move(const ComletRefBase& ref, CoreId dest) {
  Move(ref, dest, {}, {});
}

void Core::Move(const ComletRefBase& ref, CoreId dest, std::string continuation,
                std::vector<Value> args) {
  if (!ref.bound()) throw FargoError("move through an unbound reference");
  MoveId(ref.target(), dest, std::move(continuation), std::move(args));
}

void Core::MoveId(ComletId target, CoreId dest, std::string continuation,
                  std::vector<Value> args) {
  sim::Await(MoveIdAsync(target, dest, std::move(continuation),
                         std::move(args)));
}

sim::Future<sim::Unit> Core::MoveAsync(const ComletRefBase& ref, CoreId dest,
                                       std::string continuation,
                                       std::vector<Value> args) {
  if (!ref.bound())
    return sim::MakeErrorFuture<sim::Unit>(
        scheduler(), FargoError("move through an unbound reference"));
  return MoveIdAsync(ref.target(), dest, std::move(continuation),
                     std::move(args));
}

sim::Future<sim::Unit> Core::MoveIdAsync(ComletId target, CoreId dest,
                                         std::string continuation,
                                         std::vector<Value> args) {
  sim::Scheduler::AffinityScope aff(id_.value);
  if (repository_.Contains(target)) {
    return movement_->MoveLocalAsync(target, dest, std::move(continuation),
                                     std::move(args));
  }
  // Not hosted here: route a move command through the tracker chain to
  // wherever the complet lives, via the system move method.
  TrackerEntry* entry = trackers_.Find(target);
  ComletHandle handle{target, entry != nullptr ? entry->next : CoreId{},
                      entry != nullptr ? entry->anchor_type : std::string()};
  if (!handle.last_known.valid())
    return sim::MakeErrorFuture<sim::Unit>(
        scheduler(),
        FargoError("move: no route to complet " + ToString(target)));
  Value::List cont_args(args.begin(), args.end());
  return invocation_
      ->InvokeAsync(handle, kMoveMethod,
                    {Value(static_cast<std::int64_t>(dest.value)),
                     Value(std::move(continuation)),
                     Value(std::move(cont_args))})
      .Then([](InvokeResult&) {});
}

// ==== reflection & tracking ===================================================

MetaRef& Core::GetMetaRef(const ComletRefBase& ref) {
  if (!ref.meta()) throw FargoError("meta reference of an unbound reference");
  return *ref.meta();
}

CoreId Core::ResolveLocation(const ComletRefBase& ref) {
  sim::Scheduler::AffinityScope aff(id_.value);
  if (!ref.bound()) throw FargoError("resolve of an unbound reference");
  return invocation_->Invoke(ref.handle(), kPingMethod, {}).location;
}

ComletRefBase Core::RefFromHandle(const ComletHandle& handle, ComletId owner) {
  // Parameter-passing rule (§3.1): an anchor passed by reference arrives
  // degraded to the default link type. A reference materialized while a
  // complet's method executes belongs to that complet (ref-level profiling
  // and the live-reference registry attribute it there).
  if (!owner.valid()) owner = CurrentComlet();
  ComletRefBase ref;
  ref.Bind(*this, handle, std::make_shared<MetaRef>(handle.id), owner);
  return ref;
}

// ==== naming =================================================================

void Core::BindName(std::string name, const ComletRefBase& ref) {
  sim::Scheduler::AffinityScope aff(id_.value);
  if (!ref.bound()) throw FargoError("binding a name to an unbound reference");
  if (wal_) {
    wal_->AppendBind(name, ref.handle());
    wal_->LazySync();
  }
  naming_.Bind(std::move(name), ref.handle());
}

std::optional<ComletHandle> Core::LookupAt(CoreId where,
                                           const std::string& name) {
  sim::Scheduler::AffinityScope aff(id_.value);
  if (where == id_) return naming_.Lookup(name);
  serial::Writer w;
  w.WriteString(name);
  std::vector<std::uint8_t> reply =
      SendAndAwait(where, net::MessageKind::kNameRequest, w.Take());
  serial::Reader r(reply);
  wire::CheckOk(r);
  if (!r.ReadBool()) return std::nullopt;
  return wire::ReadHandle(r);
}

// ==== parameter passing helpers ==============================================

ObjectBlob Core::CaptureObject(const serial::Serializable& root) {
  serial::Writer body;
  auto hook = [this](serial::GraphWriter& gw, const void* p) {
    const auto* ref = static_cast<const ComletRefBase*>(p);
    serial::Writer& raw = gw.raw();
    // Copy the reference, not the complet; degrade to link by omitting the
    // relocator (§3.1).
    ComletHandle handle = ref->handle();
    if (const TrackerEntry* e = trackers_.Find(handle.id)) {
      handle.last_known = e->is_local() ? id_ : e->next;
    }
    wire::WriteHandle(raw, handle);
  };
  serial::GraphWriter gw(body, hook);
  gw.WriteObject(&root);
  return ObjectBlob{std::string(root.TypeName()), body.Take()};
}

std::shared_ptr<serial::Serializable> Core::MaterializeObject(
    const ObjectBlob& blob) {
  serial::Reader body(blob.bytes);
  const ComletId owner = CurrentComlet();
  auto hook = [this, owner](serial::GraphReader& gr, void* p) {
    auto* ref = static_cast<ComletRefBase*>(p);
    serial::Reader& raw = gr.raw();
    ComletHandle handle = wire::ReadHandle(raw);
    ref->Bind(*this, handle, std::make_shared<MetaRef>(handle.id), owner);
  };
  serial::GraphReader gr(body, hook);
  return gr.ReadObject();
}

// ==== dispatch ===============================================================

Value Core::DispatchLocal(ComletId target, std::string_view method,
                          const std::vector<Value>& args) {
  sim::Scheduler::AffinityScope aff(id_.value);
  std::shared_ptr<Anchor> anchor = repository_.Get(target);
  if (!anchor)
    throw FargoError("complet " + ToString(target) + " is not hosted at " +
                     name_);
  if (method == kPingMethod) return Value();
  if (method == kMoveMethod) {
    CoreId dest{static_cast<std::uint32_t>(args.at(0).AsInt())};
    std::string continuation = args.at(1).AsString();
    std::vector<Value> cont_args = args.at(2).AsList();
    movement_->MoveLocal(target, dest, std::move(continuation),
                         std::move(cont_args));
    return Value();
  }
  if (method == kMethodsMethod) {
    Value::List names;
    for (std::string& n : anchor->methods().Names())
      names.push_back(Value(std::move(n)));
    return Value(std::move(names));
  }
  exec_stack_.push_back(target);
  try {
    Value result = anchor->Dispatch(method, args);
    exec_stack_.pop_back();
    // Post-dispatch state image: the method may have mutated the closure.
    // Also on the throwing path below — a failed method may have mutated
    // state before it threw, and durability must reflect what really ran.
    LogComletState(target);
    return result;
  } catch (...) {
    exec_stack_.pop_back();
    LogComletState(target);
    throw;
  }
}

void Core::LogComletState(ComletId target) {
  if (!wal_ || wal_->replaying()) return;
  // The method may have moved the complet away (or shut it down): only a
  // still-hosted anchor has state worth imaging here.
  std::shared_ptr<Anchor> anchor = repository_.Get(target);
  if (!anchor) return;
  wal_->AppendState(*anchor);
  wal_->LazySync();
}

// ==== messaging ==============================================================

ComletId Core::MintComletId() {
  const ComletId id{id_, ++next_comlet_seq_};
  if (wal_) wal_->NoteSequences(next_comlet_seq_, next_correlation_);
  return id;
}

std::uint64_t Core::NextCorrelation() {
  const std::uint64_t corr = ++next_correlation_;
  if (wal_) wal_->NoteSequences(next_comlet_seq_, next_correlation_);
  return corr;
}

sim::Future<std::vector<std::uint8_t>> Core::SendAsync(
    CoreId to, net::MessageKind kind, std::vector<std::uint8_t> payload) {
  sim::Scheduler::AffinityScope aff(id_.value);
  auto rpc = std::make_shared<PendingRpc>(scheduler());
  rpc->to = to;
  rpc->kind = kind;
  rpc->payload = std::move(payload);
  rpc->corr = NextCorrelation();
  // Lease a session slot for the request's lifetime: every attempt reuses
  // the key, and the executor's replay window deduplicates by it.
  rpc->skey = sessions_.Acquire(id_, to);
  rpc->max_attempts = std::max(1, retry_policy_.max_attempts);
  pending_replies_[rpc->corr] = rpc;
  if (wal_ && !wal_->SequencesDurable()) {
    // Identity gate (docs/PROTOCOL.md §Durability): the correlation just
    // minted (and any identities the payload carries) must sit below a
    // durable kWalMeta promise before a peer may observe them — otherwise
    // a crash can re-issue them and alias the peer's dedup cache. Hold the
    // first attempt until the covering barrier settles.
    const std::uint64_t epoch = restart_epoch_;
    wal_->WhenSequencesDurable().OnSettle(
        // fargolint: allow(capture-this) Runtime clears pending events before destroying Cores
        [this, rpc, epoch](sim::Future<sim::Unit>) {
          if (!alive_ || restart_epoch_ != epoch) {
            rpc->promise.RejectWith(UnreachableError(
                "core restarted before its identity barrier"));
            return;
          }
          if (!rpc->promise.settled()) SendRpcAttempt(rpc);
        });
    return rpc->promise.future();
  }
  SendRpcAttempt(rpc);
  return rpc->promise.future();
}

// Every attempt reuses the correlation and session key, so the receiver's
// replay window recognizes retries of this request and a late reply to any
// attempt resolves the future. A timeout is retry-safe by the transport
// contract: either the request never executed, or its reply will be
// replayed from the receiver's slot cache when the retry lands.
void Core::SendRpcAttempt(const std::shared_ptr<PendingRpc>& rpc) {
  // The RPC machinery runs as scheduled continuations; it must never pump.
  sim::Scheduler::NoPumpScope no_pump(scheduler());
  ++rpc->attempt;
  if (rpc->attempt > 1) {
    ++rpc_retries_;
    inst_.retries->Inc();
    tracer_.RecordInstant(monitor::SpanKind::kRetry, net::ToString(rpc->kind),
                          tracer_.Current(), scheduler().Now(),
                          static_cast<std::uint32_t>(rpc->attempt - 1));
  }
  net::Message msg;
  msg.from = id_;
  msg.to = rpc->to;
  msg.kind = rpc->kind;
  msg.correlation = rpc->corr;
  msg.session = rpc->skey;
  // Retention copy: every attempt but the last keeps the payload for a
  // possible resend; the final attempt surrenders it to the wire.
  if (rpc->attempt == rpc->max_attempts) {
    msg.payload = std::move(rpc->payload);
  } else {
    inst_.bytes_copied->Inc(rpc->payload.size());
    msg.payload = rpc->payload;
  }
  if (rpc->kind == net::MessageKind::kRecoveryQuery) {
    // Recovery traffic must not sit behind a formation deadline: the Core
    // is blocked mid-recovery until the in-doubt move resolves.
    network().Send(std::move(msg));
  } else if (rpc->kind == net::MessageKind::kDirectoryLookup) {
    // Directory traffic rides the priority lane: a lookup unblocking a
    // forwarded invocation must not share a frame with bulk traffic.
    formation_->Enqueue(std::move(msg), net::Formation::Lane::kPriority);
  } else {
    formation_->Enqueue(std::move(msg), net::Formation::Lane::kImmediate);
  }
  rpc->timer = scheduler().ScheduleAfter(
      // fargolint: allow(capture-this) Runtime clears pending events before destroying Cores
      rpc_timeout_, [this, rpc] { OnRpcTimeout(rpc); });
}

void Core::OnRpcTimeout(const std::shared_ptr<PendingRpc>& rpc) {
  if (rpc->promise.settled()) return;
  if (rpc->attempt >= rpc->max_attempts) {
    pending_replies_.erase(rpc->corr);
    sessions_.Release(rpc->skey);
    rpc->promise.RejectWith(
        UnreachableError(std::string(net::ToString(rpc->kind)) + " to " +
                         ToString(rpc->to) + " timed out"));
    return;
  }
  // Back off while still listening: the original reply may yet arrive and
  // settle the future, in which case the resend below is a no-op.
  rpc->timer = scheduler().ScheduleAfter(
      // fargolint: allow(capture-this) Runtime clears pending events before destroying Cores
      retry_policy_.BackoffAfter(rpc->attempt, rpc->corr), [this, rpc] {
        if (!rpc->promise.settled()) SendRpcAttempt(rpc);
      });
}

std::vector<std::uint8_t> Core::SendAndAwait(
    CoreId to, net::MessageKind kind, std::vector<std::uint8_t> payload) {
  return sim::Await(SendAsync(to, kind, std::move(payload)));
}

void Core::Reply(CoreId to, net::MessageKind kind, std::uint64_t correlation,
                 std::vector<std::uint8_t> payload, net::SessionKey skey) {
  sim::Scheduler::AffinityScope aff(id_.value);
  // If this answers a request admitted through its session key, remember
  // the reply in the slot so duplicates can be re-answered without
  // re-executing. The cached copy is the at-most-once tax; it is charged
  // to the copy metric.
  const bool fresh = replay_.Complete(skey, kind, payload);
  if (fresh) inst_.bytes_copied->Inc(payload.size());
  net::Message msg;
  msg.from = id_;
  msg.to = to;
  msg.kind = kind;
  msg.correlation = correlation;
  msg.session = skey;
  msg.payload = std::move(payload);
  if (wal_ && !wal_->replaying()) {
    // Durable executor: a peer must never observe an effect whose records
    // could still be lost. Log fresh replies, then release *every* reply —
    // fresh, replayed or sessionless — only after a write barrier covers
    // everything appended so far. A replayed answer must not race ahead of
    // the first copy still parked behind its own barrier, and a sessionless
    // answer (directory lookups, recovery queries) must not advertise state
    // whose records are still volatile.
    if (fresh) wal_->AppendExec(skey, kind, msg.payload);
    const std::uint64_t epoch = restart_epoch_;
    wal_->WhenDurable().OnSettle(
        // fargolint: allow(capture-this) Runtime clears pending events before destroying Cores
        [this, epoch, msg = std::move(msg)](sim::Future<sim::Unit>) mutable {
          if (!alive_ || restart_epoch_ != epoch) return;
          SendReplyOut(std::move(msg));
        });
    return;
  }
  SendReplyOut(std::move(msg));
}

void Core::SendReplyOut(net::Message msg) {
  if (msg.kind == net::MessageKind::kRecoveryReply) {
    // The querier is blocked mid-recovery; never delay its answer behind a
    // formation deadline.
    network().Send(std::move(msg));
    return;
  }
  if (msg.kind == net::MessageKind::kDirectoryReply) {
    // Directory answers ride the priority lane, like the lookups they
    // settle (an invocation may be parked on this hint).
    formation_->Enqueue(std::move(msg), net::Formation::Lane::kPriority);
    return;
  }
  formation_->Enqueue(std::move(msg), net::Formation::Lane::kImmediate);
}

bool Core::AdmitOnce(const net::Message& msg) {
  net::ReplayDirectory::AdmitResult res = replay_.Admit(msg.session);
  switch (res.outcome) {
    case net::Admission::kFresh:
      return true;
    case net::Admission::kInProgress:
      inst_.session_suppressed->Inc();
      LogDebug() << "core " << name_ << " suppressed duplicate request from "
                 << ToString(msg.from) << " corr " << msg.correlation;
      return false;
    case net::Admission::kReplay:
      inst_.session_replays->Inc();
      LogDebug() << "core " << name_ << " replayed cached reply to "
                 << ToString(msg.from) << " corr " << msg.correlation;
      // The cached reply must survive further replays: copy, and charge it.
      // The duplicate carries the live correlation (retries reuse it), so
      // the resent reply matches the origin's waiter. The session key rides
      // on the resent reply so the wire attributes it to its slot (Complete
      // no-ops on the already-done entry, so nothing is re-cached).
      inst_.bytes_copied->Inc(res.reply->size());
      Reply(msg.from, res.reply_kind, msg.correlation, *res.reply,
            msg.session);
      return false;
    case net::Admission::kStale:
      inst_.session_stale->Inc();
      LogDebug() << "core " << name_ << " dropped stale request from "
                 << ToString(msg.from) << " corr " << msg.correlation;
      return false;
  }
  return true;
}

void Core::Park(ComletId id, net::Message msg, CoreId error_reply_to) {
  sim::Scheduler::AffinityScope aff(id_.value);
  const std::uint64_t correlation = msg.correlation;
  parked_[id].push_back(std::move(msg));
  // Expiry: if the complet hasn't arrived by then, fail the request as a
  // transport error (never executed) instead of holding it forever — a
  // late arrival must not execute a request whose origin already gave up.
  scheduler().ScheduleAfter(
      // fargolint: allow(capture-this) Runtime clears pending events before destroying Cores
      park_expiry(), [this, id, correlation, error_reply_to] {
        auto it = parked_.find(id);
        if (it == parked_.end()) return;
        auto& queue = it->second;
        for (auto msg_it = queue.begin(); msg_it != queue.end(); ++msg_it) {
          if (msg_it->correlation != correlation) continue;
          wire::TraceContext trace;
          if (msg_it->kind == net::MessageKind::kInvokeRequest) {
            try {
              trace = wire::DecodeInvokeRequest(msg_it->payload).trace;
            } catch (...) {
              // Chaos-corrupted payload: expire it untraced.
            }
          }
          queue.erase(msg_it);
          if (queue.empty()) parked_.erase(it);
          if (error_reply_to.valid()) {
            if (trace.valid()) {
              monitor::Tracer::Opened span = tracer_.OpenSpan(
                  monitor::SpanKind::kControl, "park_expired", trace,
                  scheduler().Now());
              tracer_.CloseSpan(span.token, scheduler().Now(),
                                monitor::SpanOutcome::kTransportError);
              trace = span.ctx;
            }
            serial::Writer w;
            w.WriteBool(false);  // not ok
            w.WriteBool(true);   // transport failure: never executed
            w.WriteString("no route to complet " + ToString(id) + " at " +
                          name_ + " (parked request expired)");
            wire::WriteTraceTail(w, trace);
            Reply(error_reply_to, net::MessageKind::kInvokeReply, correlation,
                  w.Take());
          }
          return;
        }
      });
}

std::vector<const ComletRefBase*> Core::RefsOwnedBy(ComletId owner) const {
  std::vector<const ComletRefBase*> out;
  for (const ComletRefBase* ref : live_refs_)
    if (ref->owner() == owner) out.push_back(ref);
  return out;
}

std::vector<const ComletRefBase*> Core::RefsTo(ComletId target) const {
  std::vector<const ComletRefBase*> out;
  for (const ComletRefBase* ref : live_refs_)
    if (ref->target() == target) out.push_back(ref);
  return out;
}

void Core::DrainParked(ComletId id) {
  auto it = parked_.find(id);
  if (it == parked_.end()) return;
  std::vector<net::Message> msgs = std::move(it->second);
  parked_.erase(it);
  // Re-handle after the current handler completes (post-arrival ordering).
  for (net::Message& m : msgs) {
    // fargolint: allow(capture-this) Runtime clears pending events before destroying Cores
    scheduler().ScheduleAfter(0, [this, m = std::move(m)]() mutable {
      HandleMessage(std::move(m));
    });
  }
}

void Core::HandleMessage(net::Message msg) {
  sim::Scheduler::AffinityScope aff(id_.value);
  if (!alive_) return;
  // A malformed or unexpected message must not unwind into the scheduler:
  // log and drop (the sender's await times out).
  try {
    DispatchMessage(std::move(msg));
  } catch (const std::exception& e) {
    LogWarn() << "core " << name_ << " dropped a bad message: " << e.what();
  }
}

void Core::DispatchMessage(net::Message msg) {
  switch (msg.kind) {
    case net::MessageKind::kInvokeRequest:
      invocation_->HandleRequest(std::move(msg));
      return;
    case net::MessageKind::kInvokeReply:
      invocation_->HandleReply(std::move(msg));
      return;
    case net::MessageKind::kTrackerUpdate:
      invocation_->HandleTrackerUpdate(std::move(msg));
      return;
    case net::MessageKind::kMoveRequest:
      // Non-idempotent: a duplicated or retried move must install exactly
      // once; duplicates are answered from the slot's cached reply.
      if (!AdmitOnce(msg)) return;
      movement_->HandleMoveRequest(std::move(msg));
      return;
    case net::MessageKind::kMoveReply:
    case net::MessageKind::kNameReply:
    case net::MessageKind::kNewReply:
    case net::MessageKind::kRecoveryReply:
    case net::MessageKind::kDirectoryReply:
    case net::MessageKind::kControlReply: {
      auto it = pending_replies_.find(msg.correlation);
      if (it == pending_replies_.end()) {
        // Reply to an RPC that already settled (timed out, or answered by
        // an earlier duplicate): count and drop.
        inst_.late_replies->Inc();
        LogDebug() << "core " << name_ << " dropped late "
                   << net::ToString(msg.kind) << " corr " << msg.correlation;
        return;
      }
      std::shared_ptr<PendingRpc> rpc = it->second;
      pending_replies_.erase(it);
      scheduler().Cancel(rpc->timer);
      // The request settled: its slot can carry the next RPC to this peer.
      sessions_.Release(rpc->skey);
      rpc->promise.Resolve(std::move(msg.payload));
      return;
    }
    case net::MessageKind::kNameRequest:
      HandleNameRequest(msg);
      return;
    case net::MessageKind::kNewRequest:
      // Non-idempotent: a duplicated remote-new must instantiate once.
      if (!AdmitOnce(msg)) return;
      HandleNewRequest(msg);
      return;
    case net::MessageKind::kEventRegister: {
      // Non-idempotent: a duplicate would register a second listener.
      if (!AdmitOnce(msg)) return;
      serial::Reader r(msg.payload);
      const std::uint64_t token = r.ReadVarint();
      const bool has_threshold = r.ReadBool();
      const CoreId subscriber = msg.from;
      // Per-subscription notify sequence: the subscriber drops duplicated
      // or reordered-stale notifications by seq.
      auto seq = std::make_shared<std::uint64_t>(0);
      monitor::Listener forward = [this, subscriber, token,
                                   seq](const monitor::Event& e) {
        serial::Writer w;
        w.WriteVarint(token);
        w.WriteVarint(++*seq);
        monitor::WriteEventWire(w, e);
        net::Message notify;
        notify.from = id_;
        notify.to = subscriber;
        notify.kind = net::MessageKind::kEventNotify;
        notify.payload = w.Take();
        // No latency contract: notifications ride the bulk lane, where an
        // event storm collapses into a few frames.
        formation_->Enqueue(std::move(notify), net::Formation::Lane::kBulk);
      };
      monitor::SubId sub;
      if (has_threshold) {
        monitor::ProbeKey probe = monitor::ReadProbeWire(r);
        double threshold = r.ReadDouble();
        auto trigger = static_cast<monitor::Trigger>(r.ReadU8());
        SimTime interval = static_cast<SimTime>(r.ReadVarint());
        sub = events_->ListenThreshold(probe, threshold, trigger, interval,
                                       std::move(forward));
      } else {
        auto kind = static_cast<monitor::EventKind>(r.ReadU8());
        sub = events_->Listen(kind, std::move(forward));
      }
      serial::Writer ok;
      wire::WriteOk(ok);
      ok.WriteVarint(sub);
      Reply(msg.from, net::MessageKind::kControlReply, msg.correlation,
            ok.Take(), msg.session);
      return;
    }
    case net::MessageKind::kEventUnregister: {
      serial::Reader r(msg.payload);
      events_->Unlisten(r.ReadVarint());
      return;
    }
    case net::MessageKind::kEventNotify: {
      serial::Reader r(msg.payload);
      const std::uint64_t token = r.ReadVarint();
      const std::uint64_t seq = r.ReadVarint();
      monitor::Event e = monitor::ReadEventWire(r);
      auto it = remote_subs_.find(token);
      if (it == remote_subs_.end()) return;
      // Duplicate (chaos) or stale reordered notification: drop by seq.
      if (seq != 0) {
        if (seq <= it->second.last_seq) return;
        it->second.last_seq = seq;
      }
      // Asynchronous notification, like local event dispatch.
      monitor::Listener& listener = it->second.listener;
      scheduler().ScheduleAfter(0, [listener, e] { listener(e); });
      return;
    }
    case net::MessageKind::kRecoveryQuery:
      // Idempotent read over the durable move-in set; answered even by
      // Cores without a WAL of their own (from the in-memory set).
      movement_->HandleRecoveryQuery(msg);
      return;
    case net::MessageKind::kControl: {
      HandleControl(std::move(msg));
      return;
    }
    case net::MessageKind::kDirectoryPublish:
      // One-way and idempotent (epoch merge): no admission needed.
      directory_->HandlePublish(msg);
      return;
    case net::MessageKind::kDirectoryLookup:
      // Idempotent read over the shard store: answered without admission.
      directory_->HandleLookup(msg);
      return;
    case net::MessageKind::kDirectoryMap:
      directory_->HandleMap(msg);
      return;
    case net::MessageKind::kBatch:
      HandleBatch(std::move(msg));
      return;
  }
}

void Core::HandleBatch(net::Message msg) {
  serial::FrameReader frame(msg.payload);
  while (frame.HasNext()) {
    serial::Reader item = frame.Next();
    net::Message m;
    try {
      m = net::ReadBatchItem(item);
    } catch (const std::exception& e) {
      // A corrupt item poisons the rest of the frame (lengths no longer
      // line up); drop what remains — senders retry per the RPC contract.
      LogWarn() << "core " << name_ << " dropped corrupt batch item: "
                << e.what();
      return;
    }
    if (m.kind == net::MessageKind::kBatch) {
      LogWarn() << "core " << name_ << " dropped nested batch frame";
      continue;
    }
    m.from = msg.from;
    m.to = id_;
    // Per-item isolation, like HandleMessage: one bad payload must not
    // take down its frame-mates.
    try {
      DispatchMessage(std::move(m));
    } catch (const std::exception& e) {
      LogWarn() << "core " << name_ << " dropped a bad batched message: "
                << e.what();
    }
  }
}

void Core::HandleControl(net::Message msg) {
  // Control messages are requests only (answers travel as kControlReply),
  // dispatched by subkind.
  serial::Reader r(msg.payload);
  switch (r.ReadU8()) {
    case kCtrlPing: {
      // The ping may carry a trace tail; the pong answers in the same trace.
      wire::TraceContext trace = wire::ReadTraceTail(r);
      monitor::Tracer::Opened span = tracer_.RecordInstant(
          monitor::SpanKind::kControl, "hb_pong", trace, scheduler().Now());
      serial::Writer w;
      w.WriteU8(kCtrlPong);
      wire::WriteTraceTail(w, span.ctx);
      net::Message pong;
      pong.from = id_;
      pong.to = msg.from;
      pong.kind = net::MessageKind::kControl;
      pong.payload = w.Take();
      // Priority lane: the pong must not queue behind a large frame, or
      // the peer's failure detector times out on a healthy link.
      formation_->Enqueue(std::move(pong), net::Formation::Lane::kPriority);
      return;
    }
    case kCtrlPong: {
      wire::TraceContext trace = wire::ReadTraceTail(r);
      if (trace.valid())
        tracer_.RecordInstant(monitor::SpanKind::kControl, "hb_pong_rx", trace,
                              scheduler().Now());
      if (detector_) detector_->OnPong(msg.from);
      return;
    }
    case kCtrlMoveAck: {
      // The source's commit record for this move txn is durable: it will
      // never go in-doubt on it again, so the move-in mark can go.
      movement_->DropMoveIn(msg.from, r.ReadVarint());
      return;
    }
    case kCtrlSlotAck: {
      // A oneway request's slot is free: the executor ran it (or saw it as
      // a duplicate). The echoed key names the lease exactly.
      net::SessionKey key;
      key.origin = wire::ReadCoreId(r);
      key.peer = wire::ReadCoreId(r);
      key.epoch = r.ReadVarint();
      key.slot = static_cast<std::uint32_t>(r.ReadVarint());
      key.seq = r.ReadVarint();
      sessions_.Release(key);
      return;
    }
    default:
      LogDebug() << "unknown control message at " << name_;
  }
}

void Core::SendMoveAck(CoreId dest, std::uint64_t txn) {
  sim::Scheduler::AffinityScope aff(id_.value);
  serial::Writer w;
  w.WriteU8(kCtrlMoveAck);
  w.WriteVarint(txn);
  net::Message msg;
  msg.from = id_;
  msg.to = dest;
  msg.kind = net::MessageKind::kControl;
  msg.payload = w.Take();
  // Best-effort pruning hint: bulk lane (a delayed ack only leaves the
  // move-in mark unpruned a little longer).
  formation_->Enqueue(std::move(msg), net::Formation::Lane::kBulk);
}

void Core::SendSlotAck(const net::SessionKey& key) {
  serial::Writer w;
  w.WriteU8(kCtrlSlotAck);
  wire::WriteCoreId(w, key.origin);
  wire::WriteCoreId(w, key.peer);
  w.WriteVarint(key.epoch);
  w.WriteVarint(key.slot);
  w.WriteVarint(key.seq);
  net::Message msg;
  msg.from = id_;
  msg.to = key.origin;
  msg.kind = net::MessageKind::kControl;
  msg.payload = w.Take();
  // Best-effort: a lost ack only delays the origin's fallback release.
  formation_->Enqueue(std::move(msg), net::Formation::Lane::kBulk);
}

void Core::AckSlotDurable(const net::SessionKey& key) {
  if (!key.valid()) return;
  if (wal_ && !wal_->replaying()) {
    // The origin retires its slot lease on this ack; if the exec record
    // behind it were still volatile, a crash here would re-admit the
    // duplicate as fresh and run the oneway twice.
    const std::uint64_t epoch = restart_epoch_;
    wal_->WhenDurable().OnSettle(
        // fargolint: allow(capture-this) Runtime clears pending events before destroying Cores
        [this, epoch, key](sim::Future<sim::Unit>) {
          if (!alive_ || restart_epoch_ != epoch) return;
          SendSlotAck(key);
        });
    return;
  }
  SendSlotAck(key);
}

void Core::SendHeartbeatPing(CoreId peer) {
  sim::Scheduler::AffinityScope aff(id_.value);
  inst_.hb_pings->Inc();
  serial::Writer w;
  w.WriteU8(kCtrlPing);
  // Each heartbeat round is its own trace root (invalid parent mints one).
  monitor::Tracer::Opened span =
      tracer_.RecordInstant(monitor::SpanKind::kControl, "hb_ping",
                            wire::TraceContext{}, scheduler().Now());
  wire::WriteTraceTail(w, span.ctx);
  net::Message msg;
  msg.from = id_;
  msg.to = peer;
  msg.kind = net::MessageKind::kControl;
  msg.payload = w.Take();
  // Priority lane: pings race the failure-detector deadline and must never
  // wait on (or share a frame with) bulk traffic.
  formation_->Enqueue(std::move(msg), net::Formation::Lane::kPriority);
}

FailureDetector& Core::EnableHeartbeat(SimTime interval, int k_missed) {
  sim::Scheduler::AffinityScope aff(id_.value);
  detector_ = std::make_unique<FailureDetector>(*this, interval, k_missed);
  return *detector_;
}

void Core::DisableHeartbeat() { detector_.reset(); }

std::vector<CoreId> Core::RemoteSubscriptionPeers() const {
  std::set<CoreId> peers;
  // fargolint: order-insensitive(peers accumulate into an ordered std::set)
  for (const auto& [token, sub] : remote_subs_)
    if (sub.where.valid() && sub.where != id_) peers.insert(sub.where);
  return {peers.begin(), peers.end()};
}

CoreId Core::LocateViaHome(ComletId id) {
  return sim::Await(LocateViaHomeAsync(id));
}

sim::Future<CoreId> Core::LocateViaHomeAsync(ComletId id) {
  sim::Scheduler::AffinityScope aff(id_.value);
  if (!id.valid() || !directory_->enabled())
    return sim::MakeReadyFuture(scheduler(), CoreId{});
  return directory_->LookupAsync(id).Then(
      [](wire::DirectoryHint& h) { return h.found ? h.location : CoreId{}; });
}

void Core::Crash() {
  sim::Scheduler::AffinityScope aff(id_.value);
  if (!alive_) return;
  LogInfo() << "core " << name_ << " CRASHED";
  detector_.reset();  // a dead Core pings nobody
  alive_ = false;
  ++restart_epoch_;  // invalidates every continuation armed before the crash
  formation_->Discard();  // unsent batches die with the process
  network().Unregister(id_);
  if (wal_) wal_->OnCrash();
  for (ComletId id : repository_.All()) {
    std::shared_ptr<Anchor> anchor = repository_.Remove(id);
    if (anchor) anchor->core_ = nullptr;
  }
}

void Core::Restart() {
  sim::Scheduler::AffinityScope aff(id_.value);
  if (alive_) return;
  LogInfo() << "core " << name_ << " RESTARTED";
  // Everything volatile is gone: complets, routes, names, caches, parked
  // work, pending RPCs, counters. A durable Core gets its state back from
  // the WAL below; a non-durable one restarts empty (like a fresh Core).
  for (ComletId id : repository_.All()) {
    std::shared_ptr<Anchor> anchor = repository_.Remove(id);
    if (anchor) anchor->core_ = nullptr;
  }
  trackers_.Clear();
  naming_.Clear();
  replay_.Clear();
  sessions_.Clear();
  // New incarnation, new session epoch: peers treat stragglers stamped
  // with the old epoch as settled (kStale) and reset their windows on the
  // first request of the new one.
  sessions_.SetEpoch(restart_epoch_ + 1);
  formation_->Discard();
  parked_.clear();
  pending_replies_.clear();
  directory_->Clear();
  exec_stack_.clear();
  invocation_counts_.clear();
  movement_->Reset();
  next_comlet_seq_ = 0;
  next_correlation_ = 0;
  alive_ = true;
  start_time_ = scheduler().Now();
  network().Register(id_,
                     [this](net::Message m) { HandleMessage(std::move(m)); });
  metrics().counter("recovery.count").Inc();
  if (wal_) wal_->Recover();
  events_->Fire(monitor::Event{monitor::EventKind::kCoreRecovered, id_, {},
                               {}, 0.0, id_});
}

Wal& Core::EnableWal(SimTime checkpoint_interval) {
  sim::Scheduler::AffinityScope aff(id_.value);
  if (!wal_) {
    wal_ = std::make_unique<Wal>(*this, runtime_.storage(), checkpoint_interval);
    // A Core made durable mid-life starts from a checkpoint of everything
    // it already holds — complets, name bindings, trackers, homes. Without
    // it, recovery could only see what was logged after this instant.
    wal_->Checkpoint();
  }
  return *wal_;
}

void Core::RestoreComlet(ComletId id, const std::vector<std::uint8_t>& image) {
  std::shared_ptr<Anchor> anchor = DecodeComletImage(*this, id, image);
  repository_.Remove(id);  // later records replace earlier replayed images
  anchor->core_ = this;
  repository_.Add(id, anchor);
  trackers_.SetLocal(id, *anchor, std::string(anchor->TypeName()));
}

void Core::HandleNameRequest(const net::Message& msg) {
  serial::Reader r(msg.payload);
  std::string name = r.ReadString();
  serial::Writer w;
  wire::WriteOk(w);
  std::optional<ComletHandle> handle = naming_.Lookup(name);
  w.WriteBool(handle.has_value());
  if (handle) wire::WriteHandle(w, *handle);
  Reply(msg.from, net::MessageKind::kNameReply, msg.correlation, w.Take());
}

void Core::HandleNewRequest(const net::Message& msg) {
  serial::Reader r(msg.payload);
  std::string type = r.ReadString();
  serial::Writer w;
  try {
    auto obj = serial::TypeRegistry::Instance().Create(type);
    auto anchor = std::dynamic_pointer_cast<Anchor>(obj);
    if (!anchor) throw FargoError(type + " is not an anchor type");
    ComletRefBase ref = Install(std::move(anchor));
    wire::WriteOk(w);
    wire::WriteHandle(w, ref.handle());
  } catch (const std::exception& e) {
    serial::Writer err;
    wire::WriteError(err, e.what());
    Reply(msg.from, net::MessageKind::kNewReply, msg.correlation, err.Take(),
          msg.session);
    return;
  }
  Reply(msg.from, net::MessageKind::kNewReply, msg.correlation, w.Take(),
        msg.session);
}

// ==== distributed events ======================================================

monitor::SubId Core::ListenAt(CoreId where, monitor::EventKind kind,
                              monitor::Listener listener) {
  sim::Scheduler::AffinityScope aff(id_.value);
  const monitor::SubId token = next_token_++;
  if (where == id_) {
    monitor::SubId sub = events_->Listen(kind, std::move(listener));
    remote_subs_[token] = RemoteSub{where, sub, nullptr};
    return token;
  }
  serial::Writer w;
  w.WriteVarint(token);
  w.WriteBool(false);
  w.WriteU8(static_cast<std::uint8_t>(kind));
  std::vector<std::uint8_t> reply =
      SendAndAwait(where, net::MessageKind::kEventRegister, w.Take());
  serial::Reader r(reply);
  wire::CheckOk(r);
  remote_subs_[token] = RemoteSub{where, r.ReadVarint(), std::move(listener)};
  return token;
}

monitor::SubId Core::ListenThresholdAt(CoreId where,
                                       const monitor::ProbeKey& probe,
                                       double threshold,
                                       monitor::Trigger trigger,
                                       SimTime interval,
                                       monitor::Listener listener) {
  sim::Scheduler::AffinityScope aff(id_.value);
  const monitor::SubId token = next_token_++;
  if (where == id_) {
    monitor::SubId sub = events_->ListenThreshold(probe, threshold, trigger,
                                                  interval, std::move(listener));
    remote_subs_[token] = RemoteSub{where, sub, nullptr};
    return token;
  }
  serial::Writer w;
  w.WriteVarint(token);
  w.WriteBool(true);
  monitor::WriteProbeWire(w, probe);
  w.WriteDouble(threshold);
  w.WriteU8(static_cast<std::uint8_t>(trigger));
  w.WriteVarint(static_cast<std::uint64_t>(interval));
  std::vector<std::uint8_t> reply =
      SendAndAwait(where, net::MessageKind::kEventRegister, w.Take());
  serial::Reader r(reply);
  wire::CheckOk(r);
  remote_subs_[token] = RemoteSub{where, r.ReadVarint(), std::move(listener)};
  return token;
}

void Core::UnlistenAt(monitor::SubId token) {
  sim::Scheduler::AffinityScope aff(id_.value);
  auto it = remote_subs_.find(token);
  if (it == remote_subs_.end()) return;
  RemoteSub sub = std::move(it->second);
  remote_subs_.erase(it);
  if (sub.where == id_) {
    events_->Unlisten(sub.remote_id);
    return;
  }
  serial::Writer w;
  w.WriteVarint(sub.remote_id);
  net::Message msg;
  msg.from = id_;
  msg.to = sub.where;
  msg.kind = net::MessageKind::kEventUnregister;
  msg.payload = w.Take();
  formation_->Enqueue(std::move(msg), net::Formation::Lane::kImmediate);
}

// ==== shutdown ================================================================

void Core::Shutdown(SimTime grace) {
  sim::Scheduler::AffinityScope aff(id_.value);
  if (!alive_) return;
  LogInfo() << "core " << name_ << " shutting down (grace "
            << ToMillis(grace) << " ms)";
  detector_.reset();
  events_->Fire(monitor::Event{monitor::EventKind::kCoreShutdown, id_, {},
                               {}, 0.0});
  // Let shutdown listeners evacuate complets while we still serve moves.
  scheduler().RunFor(grace);
  // Final forwarding flush: hand our tracker knowledge to every peer, so
  // chains that pass through this Core keep resolving after it is gone.
  // (Abrupt crashes still sever chains — the paper defers that to a future
  // location-independent naming scheme.)
  for (const TrackerEntry* t : trackers_.All()) {
    if (t->is_local() || !t->next.valid()) continue;
    for (Core* peer : runtime_.Cores()) {
      if (peer == this || !peer->alive()) continue;
      serial::Writer upd;
      wire::WriteComletId(upd, t->target);
      wire::WriteCoreId(upd, t->next);
      upd.WriteString(t->anchor_type);
      upd.WriteVarint(t->hint_epoch);
      net::Message u;
      u.from = id_;
      u.to = peer->id();
      u.kind = net::MessageKind::kTrackerUpdate;
      u.payload = upd.Take();
      formation_->Enqueue(std::move(u), net::Formation::Lane::kPriority);
    }
  }
  // Drain everything still queued — the delay-0 flush tasks armed above
  // would fire after this Core has already detached.
  formation_->FlushAll();
  alive_ = false;
  network().Unregister(id_);
  for (ComletId id : repository_.All()) {
    std::shared_ptr<Anchor> anchor = repository_.Remove(id);
    if (anchor) anchor->core_ = nullptr;
  }
}

// ==== application profiling counters =========================================

void Core::RecordInvocation(ComletId src, ComletId dst) {
  ++invocation_counts_[{src, dst}];
  ++total_invocations_;
}

std::uint64_t Core::InvocationCount(ComletId src, ComletId dst) const {
  auto it = invocation_counts_.find({src, dst});
  return it == invocation_counts_.end() ? 0 : it->second;
}

}  // namespace fargo::core
