// Complet persistence (§7 future work): checkpointing the complets hosted
// at a Core into a byte image and restoring them later — possibly at a
// different Core (crash recovery, cold migration).
//
// The image preserves complet identities, closures (with aliasing), the
// relocation semantics of every outgoing reference (with best routing
// hints), and the Core's name bindings. Restoring installs the complets
// like arrivals: trackers go local, completArrived fires, parked requests
// drain, and — with the home registry enabled — the homes learn the new
// location, so stale references recover.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/core/core.h"

namespace fargo::core {

/// Serializes one hosted complet's closure — the graph body of an image
/// entry, without the id/type header. Shared by core images and the WAL
/// (install and post-dispatch state records).
std::vector<std::uint8_t> EncodeComletImage(Core& core, const Anchor& anchor);

/// Rebuilds a complet from EncodeComletImage bytes with its identity
/// re-established; references re-bind carrying the saved routing hints.
/// The caller installs it (Core::Install or the WAL's quiet restore).
std::shared_ptr<Anchor> DecodeComletImage(Core& core, ComletId id,
                                          const std::vector<std::uint8_t>& body);

struct RestoreResult {
  std::vector<ComletId> restored;
  /// Ids already hosted at the Core, left untouched; each fires a
  /// completRestoreSkipped event instead of silently disappearing.
  std::vector<ComletId> skipped;
};

/// Serializes every complet hosted at `core` (plus its name bindings).
std::vector<std::uint8_t> SaveCoreImage(Core& core);

/// Restores an image into `core`; already-hosted ids are reported (and
/// announced) in `skipped` rather than overwritten.
RestoreResult LoadCoreImage(Core& core, const std::vector<std::uint8_t>& image);

/// File convenience wrappers. Throw FargoError on I/O failure.
void SaveCoreImageToFile(Core& core, const std::string& path);
RestoreResult LoadCoreImageFromFile(Core& core, const std::string& path);

}  // namespace fargo::core
