// Complet persistence (§7 future work): checkpointing the complets hosted
// at a Core into a byte image and restoring them later — possibly at a
// different Core (crash recovery, cold migration).
//
// The image preserves complet identities, closures (with aliasing), the
// relocation semantics of every outgoing reference (with best routing
// hints), and the Core's name bindings. Restoring installs the complets
// like arrivals: trackers go local, completArrived fires, parked requests
// drain, and — with the home registry enabled — the homes learn the new
// location, so stale references recover.
#pragma once

#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/core/core.h"

namespace fargo::core {

/// Serializes every complet hosted at `core` (plus its name bindings).
std::vector<std::uint8_t> SaveCoreImage(Core& core);

/// Restores an image into `core`. Complets whose id is already hosted
/// there are skipped (with a warning). Returns the restored ids.
std::vector<ComletId> LoadCoreImage(Core& core,
                                    const std::vector<std::uint8_t>& image);

/// File convenience wrappers. Throw FargoError on I/O failure.
void SaveCoreImageToFile(Core& core, const std::string& path);
std::vector<ComletId> LoadCoreImageFromFile(Core& core,
                                            const std::string& path);

}  // namespace fargo::core
