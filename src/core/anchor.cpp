#include "src/core/anchor.h"

namespace fargo::core {

Value MethodMap::Invoke(std::string_view name,
                        const std::vector<Value>& args) const {
  auto it = handlers_.find(name);
  if (it == handlers_.end())
    throw FargoError("unknown method: " + std::string(name));
  return it->second(args);
}

std::vector<std::string> MethodMap::Names() const {
  std::vector<std::string> names;
  names.reserve(handlers_.size());
  for (const auto& [name, handler] : handlers_) names.push_back(name);
  return names;
}

}  // namespace fargo::core
