#include "src/core/tracker.h"

#include <algorithm>

namespace fargo::core {

TrackerEntry& TrackerTable::Ensure(const ComletHandle& handle) {
  auto [it, inserted] = entries_.try_emplace(handle.id);
  TrackerEntry& e = it->second;
  if (inserted) {
    e.target = handle.id;
    e.anchor_type = handle.anchor_type;
    e.next = handle.last_known;
  }
  if (e.anchor_type.empty()) e.anchor_type = handle.anchor_type;
  return e;
}

TrackerEntry* TrackerTable::Find(ComletId id) {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

const TrackerEntry* TrackerTable::Find(ComletId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

TrackerEntry& TrackerTable::SetLocal(ComletId id, Anchor& anchor,
                                     std::string anchor_type,
                                     std::uint64_t hint_epoch) {
  TrackerEntry& e = entries_[id];
  e.target = id;
  e.local = &anchor;
  e.next = CoreId{};
  e.hint_epoch = hint_epoch;
  if (!anchor_type.empty()) e.anchor_type = std::move(anchor_type);
  if (change_hook_) change_hook_(id);
  return e;
}

TrackerEntry& TrackerTable::SetForward(ComletId id, CoreId next,
                                       std::string anchor_type,
                                       std::uint64_t hint_epoch) {
  TrackerEntry& e = entries_[id];
  // A chain-shortening rewrite of an existing forward counts as a
  // forwarding event — the old route was consumed by the repoint.
  if (!e.is_local() && e.target == id && e.next != next &&
      e.next != CoreId{}) {
    ++e.forwarded;
  }
  e.target = id;
  e.local = nullptr;
  e.next = next;
  e.hint_epoch = hint_epoch;
  if (!anchor_type.empty()) e.anchor_type = std::move(anchor_type);
  if (forward_hook_) forward_hook_(id, next, e.anchor_type);
  if (change_hook_) change_hook_(id);
  return e;
}

bool TrackerTable::MergeHint(ComletId id, CoreId location,
                             std::uint64_t hint_epoch,
                             const std::string& anchor_type) {
  if (TrackerEntry* e = Find(id)) {
    if (e->is_local()) return false;
    if (e->hint_epoch != 0 && hint_epoch <= e->hint_epoch) return false;
    if (e->next == location) {
      // Same route, fresher stamp: refresh in place without a rewrite.
      e->hint_epoch = hint_epoch;
      return true;
    }
  }
  SetForward(id, location, anchor_type, hint_epoch);
  return true;
}

void TrackerTable::Stamp(ComletId id, std::uint64_t hint_epoch) {
  if (TrackerEntry* e = Find(id)) {
    if (hint_epoch > e->hint_epoch) e->hint_epoch = hint_epoch;
  }
}

void TrackerTable::AddStubRef(ComletId id) {
  if (TrackerEntry* e = Find(id)) ++e->stub_refs;
}

void TrackerTable::DropStubRef(ComletId id) {
  if (TrackerEntry* e = Find(id)) {
    if (e->stub_refs > 0) --e->stub_refs;
  }
}

std::size_t TrackerTable::CollectGarbage() {
  std::size_t reclaimed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const TrackerEntry& e = it->second;
    if (!e.is_local() && e.stub_refs == 0) {
      it = entries_.erase(it);
      ++reclaimed;
    } else {
      ++it;
    }
  }
  return reclaimed;
}

std::vector<const TrackerEntry*> TrackerTable::All() const {
  std::vector<const TrackerEntry*> out;
  out.reserve(entries_.size());
  // The snapshot's order reaches shell output and Shutdown's final flush of
  // kTrackerUpdate messages, so it must not inherit the hash-map's order.
  // fargolint: order-insensitive(sorted by target id before return)
  for (const auto& [id, e] : entries_) out.push_back(&e);
  std::sort(out.begin(), out.end(),
            [](const TrackerEntry* a, const TrackerEntry* b) {
              return a->target < b->target;
            });
  return out;
}

}  // namespace fargo::core
