// Write-ahead log: durable Cores (§7 future work, "complet persistence").
//
// A durable Core appends every externally visible mutation to a per-Core
// log on the simulated disk (sim::Storage): complet installs and state
// images, executed-reply records (the replay directory's durable twin,
// keyed by session/slot/seq — src/net/session.h), name
// bindings, tracker repoints, directory-shard knowledge, and the two-phase
// movement protocol (PREPARE / COMMIT / ABORT at the source, MOVE-IN at the
// destination). Replies leave the Core only after a write barrier covers
// the records behind them, so anything a peer observed is recoverable.
//
// Recovery replays checkpoint + log into a restarted Core. A PREPARE with
// no resolution is an in-doubt move: the recovering source queries the
// destination (kRecoveryQuery) — "did txn N from me ever install?" — and
// either completes the commit or aborts and reinstalls the staged stream.
// Combined with at-most-once RPC this yields exactly-once movement across
// crashes: zero lost, zero duplicated complets (docs/PROTOCOL.md
// §Durability).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/common/value.h"
#include "src/net/network.h"
#include "src/serial/bytes.h"
#include "src/sim/future.h"
#include "src/sim/scheduler.h"
#include "src/sim/storage.h"

namespace fargo::monitor {
class Counter;
class Histogram;
}  // namespace fargo::monitor

namespace fargo::core {

class Core;
class Anchor;

// WAL record discriminators. Every kind must have a WriteXxxRecord /
// ReadXxxRecord codec pair below (fargolint `wal-record-coverage` enforces
// this: a record that can be written but not replayed is data loss).
inline constexpr std::uint8_t kWalInstall = 1;  ///< complet hosted (image)
inline constexpr std::uint8_t kWalState = 2;    ///< post-dispatch state image
inline constexpr std::uint8_t kWalExec = 3;     ///< cached reply (slot twin)
inline constexpr std::uint8_t kWalBind = 4;     ///< name binding
inline constexpr std::uint8_t kWalTracker = 5;  ///< tracker forward repoint
inline constexpr std::uint8_t kWalDirPublish = 6;  ///< directory-shard knowledge
inline constexpr std::uint8_t kWalMeta = 7;     ///< id/correlation ceilings
inline constexpr std::uint8_t kWalPrepare = 8;  ///< move txn staged at source
inline constexpr std::uint8_t kWalCommit = 9;   ///< move txn acked by dest
inline constexpr std::uint8_t kWalAbort = 10;   ///< move txn rolled back
inline constexpr std::uint8_t kWalMoveIn = 11;  ///< move txn installed (dest)
inline constexpr std::uint8_t kWalRemove = 12;  ///< complet un-hosted (unwind)
inline constexpr std::uint8_t kWalMoveInAck = 13;  ///< move-in mark pruned (dest)
inline constexpr std::uint8_t kWalMoveDead = 14;  ///< txn tombstoned (dest)

const char* WalKindName(std::uint8_t kind);

/// One decoded WAL record; which fields are meaningful depends on `kind`.
struct WalRecord {
  std::uint8_t kind = 0;

  ComletId comlet;            ///< install/state/tracker/dir-publish/remove
  std::string anchor_type;    ///< install/state/tracker
  std::vector<std::uint8_t> image;  ///< install/state: EncodeComletImage body

  CoreId peer;  ///< move-in: source; remove: new host
  net::SessionKey session;             ///< exec: slot-replay key
  std::uint8_t reply_kind = 0;         ///< exec: net::MessageKind
  std::vector<std::uint8_t> reply;     ///< exec: cached reply payload

  std::string name;           ///< bind
  ComletHandle handle;        ///< bind

  CoreId next;                ///< tracker: forward hop
  CoreId location;            ///< dir-publish
  std::uint64_t epoch = 0;    ///< dir-publish: hint epoch
  std::int64_t as_of = 0;     ///< dir-publish

  std::uint64_t comlet_seq = 0;      ///< meta: ComletId ceiling
  std::uint64_t correlation_seq = 0; ///< meta: correlation ceiling
  std::uint64_t txn_seq = 0;         ///< meta: movement txn ceiling

  std::uint64_t txn = 0;      ///< prepare/commit/abort/move-in/move-in-ack
  CoreId dest;                ///< prepare
  ComletId primary;           ///< prepare
  /// prepare: (id, anchor type) of every non-duplicate section.
  std::vector<std::pair<ComletId, std::string>> departing;
  std::vector<std::uint8_t> stream;  ///< prepare: staged migration payload
};

// Per-kind codecs (field-symmetric by construction; fargolint checks them
// like any other Write*/Read* wire pair).
void WriteInstallRecord(serial::Writer& w, const WalRecord& r);
WalRecord ReadInstallRecord(serial::Reader& r);
void WriteStateRecord(serial::Writer& w, const WalRecord& r);
WalRecord ReadStateRecord(serial::Reader& r);
void WriteExecRecord(serial::Writer& w, const WalRecord& r);
WalRecord ReadExecRecord(serial::Reader& r);
void WriteBindRecord(serial::Writer& w, const WalRecord& r);
WalRecord ReadBindRecord(serial::Reader& r);
void WriteTrackerRecord(serial::Writer& w, const WalRecord& r);
WalRecord ReadTrackerRecord(serial::Reader& r);
void WriteDirPublishRecord(serial::Writer& w, const WalRecord& r);
WalRecord ReadDirPublishRecord(serial::Reader& r);
void WriteMetaRecord(serial::Writer& w, const WalRecord& r);
WalRecord ReadMetaRecord(serial::Reader& r);
void WritePrepareRecord(serial::Writer& w, const WalRecord& r);
WalRecord ReadPrepareRecord(serial::Reader& r);
void WriteCommitRecord(serial::Writer& w, const WalRecord& r);
WalRecord ReadCommitRecord(serial::Reader& r);
void WriteAbortRecord(serial::Writer& w, const WalRecord& r);
WalRecord ReadAbortRecord(serial::Reader& r);
void WriteMoveInRecord(serial::Writer& w, const WalRecord& r);
WalRecord ReadMoveInRecord(serial::Reader& r);
void WriteRemoveRecord(serial::Writer& w, const WalRecord& r);
WalRecord ReadRemoveRecord(serial::Reader& r);
void WriteMoveInAckRecord(serial::Writer& w, const WalRecord& r);
WalRecord ReadMoveInAckRecord(serial::Reader& r);
void WriteMoveDeadRecord(serial::Writer& w, const WalRecord& r);
WalRecord ReadMoveDeadRecord(serial::Reader& r);

/// Kind byte + per-kind body.
std::vector<std::uint8_t> EncodeWalRecord(const WalRecord& r);
WalRecord DecodeWalRecord(const std::vector<std::uint8_t>& bytes);

// fargo: domain(core)
class Wal {
 public:
  /// `checkpoint_interval` > 0 arms a checkpoint+truncate `interval` after
  /// each burst of appends (self-arming: an idle Core schedules nothing).
  Wal(Core& core, sim::Storage& storage, SimTime checkpoint_interval);
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  const std::string& log_name() const { return name_; }

  // ==== appends (all no-ops while replaying) =================================

  void AppendInstall(const Anchor& anchor);
  void AppendState(const Anchor& anchor);
  /// Logs a completed (session, slot, seq) with its cached reply so a
  /// recovered executor re-derives the replay window and keeps answering
  /// duplicates without re-executing.
  void AppendExec(const net::SessionKey& session, net::MessageKind reply_kind,
                  const std::vector<std::uint8_t>& reply);
  void AppendBind(const std::string& name, const ComletHandle& handle);
  void AppendTracker(ComletId comlet, CoreId next,
                     const std::string& anchor_type);
  /// Logs a directory-shard location record this Core owns (applied by the
  /// Directory's merge; replayed via Directory::ApplyFromWal).
  void AppendDirPublish(ComletId comlet, CoreId location, std::uint64_t epoch,
                        SimTime as_of);
  /// `peer` / `anchor_type` let replay heal the tracker: the complet left
  /// for (or stayed at) `peer`, so the local tracker forwards there.
  void AppendRemove(ComletId comlet, CoreId peer, const std::string& anchor_type);

  /// Mints the next movement transaction id. Never reused across restarts:
  /// crossing the durable ceiling logs a new kWalMeta promise, which the
  /// prepare barrier makes durable before the txn can reach the destination
  /// — so a recovered Core re-mints strictly above every id a destination's
  /// move-in set could answer for.
  std::uint64_t NextTxnId();
  void AppendPrepare(std::uint64_t txn, ComletId primary, CoreId dest,
                     std::vector<std::pair<ComletId, std::string>> departing,
                     std::vector<std::uint8_t> stream);
  void AppendCommit(std::uint64_t txn);
  void AppendAbort(std::uint64_t txn);
  void AppendMoveIn(CoreId from, std::uint64_t txn);
  void AppendMoveInAck(CoreId from, std::uint64_t txn);
  void AppendMoveDead(CoreId from, std::uint64_t txn);

  /// Called by the Core whenever it mints a ComletId or correlation: keeps
  /// a durable ceiling ahead of both counters so a restarted Core can never
  /// re-issue an identity or correlation a peer may have already seen.
  void NoteSequences(std::uint64_t comlet_seq, std::uint64_t correlation_seq);

  /// True once every identity/correlation minted so far sits below a
  /// *durable* kWalMeta promise. While false, outbound requests are held
  /// (Core::SendAsync) — a burst of mints can outrun any number of in-flight
  /// promises, and a correlation a peer saw before its promise was durable
  /// would be re-issued after a crash (stale replies out of replay windows).
  bool SequencesDurable() const;
  /// Settles once SequencesDurable() holds for the counters as of this call
  /// (a barrier covering the latest promise lands). Settles on crash too;
  /// callers guard with the restart epoch.
  sim::Future<sim::Unit> WhenSequencesDurable();

  // ==== durability ===========================================================

  /// Write barrier over everything appended so far.
  sim::Future<sim::Unit> Sync();
  /// The barrier-before-reply idiom: settles once every record appended so
  /// far is durable. Alias of Sync() under the name the invariant is stated
  /// in — dominate any reply/ack egress with
  /// WhenDurable().OnSettle(...), guarded by the restart epoch.
  sim::Future<sim::Unit> WhenDurable() { return Sync(); }
  /// Coalesced background barrier: arms one if none is pending.
  void LazySync();

  /// Saves a checkpoint image (SaveCoreImage) and truncates the log behind
  /// it, clamped so records of still-open (unresolved) prepares survive.
  void Checkpoint();

  // ==== crash & recovery =====================================================

  /// Crash hook: loses the volatile tail and stops the checkpoint task.
  void OnCrash();

  /// Replays checkpoint + durable records into the Core (quietly), reseeds
  /// the replay windows, then resolves in-doubt moves by querying their
  /// destinations. Called from Core::Restart after volatile state is reset.
  void Recover();

  /// Movement transactions currently open (prepared, unresolved).
  std::size_t open_txns() const { return open_txns_.size(); }
  bool replaying() const { return replaying_; }

  // ==== telemetry ============================================================

  std::uint64_t records_appended() const { return records_appended_; }
  std::uint64_t bytes_appended() const { return bytes_appended_; }
  std::uint64_t records_replayed() const { return records_replayed_; }
  std::uint64_t checkpoints() const { return checkpoints_; }
  std::uint64_t recoveries() const { return recoveries_; }
  std::uint64_t durable_records() const;
  std::uint64_t durable_bytes() const;

 private:
  struct OpenTxn {
    ComletId primary;
    CoreId dest;
    std::uint64_t first_index = 0;  ///< prepare's absolute log index
    std::vector<std::pair<ComletId, std::string>> departing;
    std::vector<std::uint8_t> stream;
  };

  /// Encodes and appends; returns the record's absolute log index.
  std::uint64_t Append(const WalRecord& rec);
  /// Appends a kWalMeta with the current floors and arms a barrier that, on
  /// settlement, advances the durable floors and releases gated requests.
  void AppendMetaAndSync();
  void DrainSeqWaiters();
  void ApplyRecord(const WalRecord& rec, std::uint64_t index);
  std::string CheckpointBlobName() const;
  /// Log-truncation survivors that SaveCoreImage does not capture —
  /// trackers, replay-window entries, directory-shard records, move-in
  /// marks, ceilings — encoded as ordinary WAL records and replayed like
  /// any others.
  std::vector<std::vector<std::uint8_t>> SidecarRecords();
  /// Schedules one checkpoint `checkpoint_interval_` from now unless one is
  /// already pending; every Append re-arms, so quiescent logs stay quiet.
  void ArmCheckpoint();
  void ResolveInDoubt(std::vector<std::uint64_t> txns, SimTime began);
  void QueryInDoubt(std::uint64_t txn, int attempt,
                    const std::shared_ptr<std::size_t>& remaining,
                    SimTime began);
  void FinishRecovery(const std::shared_ptr<std::size_t>& remaining,
                      SimTime began);

  Core& core_;
  sim::Storage& storage_;
  std::string name_;
  bool replaying_ = false;
  bool lazy_sync_armed_ = false;
  /// While recovering: log index the restored checkpoint image speaks for.
  /// Records below it replay transaction bookkeeping only — their state
  /// effects are already (or more recently) reflected in the image.
  std::uint64_t replay_covered_ = 0;
  std::uint64_t next_txn_ = 0;
  // Ordered: in-doubt resolution and truncation clamping iterate this.
  std::map<std::uint64_t, OpenTxn> open_txns_;

  /// Ceilings promised by the last *appended* kWalMeta record; identities,
  /// correlations, and movement txns are re-minted above these after a
  /// restart.
  static constexpr std::uint64_t kSeqStride = 1 << 16;
  std::uint64_t comlet_seq_floor_ = 0;
  std::uint64_t correlation_floor_ = 0;
  std::uint64_t txn_floor_ = 0;

  /// Ceilings whose kWalMeta record a settled barrier covers. Counter
  /// values below these can never be re-issued after a crash; values above
  /// them must not leave the Core yet (SequencesDurable / the request gate).
  std::uint64_t durable_comlet_floor_ = 0;
  std::uint64_t durable_correlation_floor_ = 0;
  /// Requests held until the durable floors pass their captured counters.
  struct SeqWaiter {
    std::uint64_t comlet_seq;
    std::uint64_t correlation_seq;
    sim::Promise<sim::Unit> done;
  };
  std::vector<SeqWaiter> seq_waiters_;
  /// kWalMeta barriers issued but not yet settled: waiter progress guard.
  int metas_in_flight_ = 0;

  bool checkpoint_armed_ = false;
  SimTime checkpoint_interval_ = 0;

  std::uint64_t records_appended_ = 0;
  std::uint64_t bytes_appended_ = 0;
  std::uint64_t records_replayed_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t recoveries_ = 0;

  monitor::Counter* rec_counter_ = nullptr;
  monitor::Counter* byte_counter_ = nullptr;
  monitor::Counter* fsync_counter_ = nullptr;
  monitor::Counter* replay_counter_ = nullptr;
  monitor::Histogram* recovery_time_ = nullptr;
};

}  // namespace fargo::core
