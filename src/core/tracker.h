// Trackers: per-Core, per-target forwarding entries (§3.1, Fig 2).
//
// Each Core keeps at most one tracker per target complet, no matter how many
// local stubs point at it ("this design enhances scalability"). A tracker
// either points directly at a locally hosted anchor, or forwards to the
// tracker of another Core — successive moves create chains, which the
// runtime shortens on invocation return; trackers left unpointed become
// collectable.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/value.h"
#include "src/core/fwd.h"

namespace fargo::core {

struct TrackerEntry {
  ComletId target;
  std::string anchor_type;
  /// Non-owning; the Repository owns hosted anchors. Null when forwarding.
  Anchor* local = nullptr;
  /// Next hop when not local.
  CoreId next{};
  /// Number of local stubs currently bound through this tracker.
  int stub_refs = 0;
  /// Forwarding events through this tracker: invocations routed along it
  /// plus chain-shortening rewrites of an existing forward (profiling/bench
  /// telemetry).
  std::uint64_t forwarded = 0;
  /// Directory epoch of this entry's location knowledge. 0 = unstamped
  /// (legacy chain forward, recovered route): any stamped hint may
  /// overwrite it. Stamped entries only yield to strictly newer epochs.
  std::uint64_t hint_epoch = 0;

  bool is_local() const { return local != nullptr; }
};

// fargo: domain(core)
class TrackerTable {
 public:
  /// Returns the tracker for `handle.id`, creating one that forwards to
  /// `handle.last_known` if none exists.
  TrackerEntry& Ensure(const ComletHandle& handle);

  TrackerEntry* Find(ComletId id);
  const TrackerEntry* Find(ComletId id) const;

  /// Points the tracker at a locally hosted anchor. `hint_epoch` is the
  /// directory epoch the install is known at (0 = unstamped).
  TrackerEntry& SetLocal(ComletId id, Anchor& anchor, std::string anchor_type,
                         std::uint64_t hint_epoch = 0);

  /// Points the tracker at another Core (movement / chain shortening).
  /// `hint_epoch` stamps the new knowledge (0 = unstamped legacy forward).
  TrackerEntry& SetForward(ComletId id, CoreId next, std::string anchor_type,
                           std::uint64_t hint_epoch = 0);

  /// Applies an epoch-stamped location hint if it is fresher than what the
  /// table knows: stamped hints overwrite unstamped forwards and strictly
  /// older stamps, never a local anchor or a newer/equal stamp. Creates the
  /// entry when absent. Returns true when the hint was applied.
  bool MergeHint(ComletId id, CoreId location, std::uint64_t hint_epoch,
                 const std::string& anchor_type);

  /// Re-stamps an existing entry's epoch (shard echo after an assertion
  /// publish). No-op when the entry is absent or already newer.
  void Stamp(ComletId id, std::uint64_t hint_epoch);

  void AddStubRef(ComletId id);
  void DropStubRef(ComletId id);

  /// Drops entries that host nothing locally and have no local stubs —
  /// "trackers that are not pointed at all ... become available for garbage
  /// collection". Returns the number reclaimed.
  std::size_t CollectGarbage();

  std::size_t size() const { return entries_.size(); }

  /// Snapshot for the shell and monitor.
  std::vector<const TrackerEntry*> All() const;

  /// Called after every SetLocal/SetForward with the affected complet. The
  /// async invocation pipeline uses this to wake requests parked on a
  /// missing route instead of polling the table from a nested pump.
  void SetChangeHook(std::function<void(ComletId)> hook) {
    change_hook_ = std::move(hook);
  }

  /// Called after every SetForward with the updated entry's fields. Durable
  /// Cores log repoints through this so recovery can rebuild routes to
  /// complets that left before a crash.
  void SetForwardHook(
      std::function<void(ComletId, CoreId, const std::string&)> hook) {
    forward_hook_ = std::move(hook);
  }

  /// Drops every entry (Core restart; hooks stay installed).
  void Clear() { entries_.clear(); }

 private:
  std::unordered_map<ComletId, TrackerEntry> entries_;
  std::function<void(ComletId)> change_hook_;
  std::function<void(ComletId, CoreId, const std::string&)> forward_hook_;
};

}  // namespace fargo::core
