// MetaRef: reflection on complet references (§3.2).
//
// "each complet reference has a meta reference object that reifies its
//  relocation semantics and allows to change it" — fetched with
// Core::GetMetaRef(ref). The rest of the program keeps using the reference
// transparently; only the meta level changes.
#pragma once

#include <cstdint>
#include <memory>

#include "src/common/ids.h"
#include "src/core/fwd.h"
#include "src/core/relocator.h"

namespace fargo::core {

// fargo: domain(core)
class MetaRef {
 public:
  explicit MetaRef(ComletId target,
                   std::shared_ptr<Relocator> relocator = nullptr)
      : target_(target),
        relocator_(relocator ? std::move(relocator) : MakeDefaultRelocator()) {}

  ComletId target() const { return target_; }

  /// The object reifying the reference's relocation semantics.
  const std::shared_ptr<Relocator>& GetRelocator() const { return relocator_; }

  /// Replaces the relocation semantics at runtime (e.g. link → pull).
  void SetRelocator(std::shared_ptr<Relocator> relocator);

  /// Best locally-known location of the target: the next hop recorded by
  /// this Core's tracker. May be stale after uncoordinated movement; use
  /// Core::ResolveLocation for an authoritative (chain-walking) answer.
  CoreId KnownLocation(const Core& from) const;

  // -- reference-level profiling hooks (application profiling, §4.1) --------
  std::uint64_t invocation_count() const { return invocations_; }
  void RecordInvocation() { ++invocations_; }

 private:
  ComletId target_;
  std::shared_ptr<Relocator> relocator_;
  std::uint64_t invocations_ = 0;
};

}  // namespace fargo::core
