#include "src/core/runtime.h"

#include "src/core/core.h"
#include "src/core/relocator.h"

namespace fargo::core {

Runtime::Runtime() : network_(scheduler_) {
  RegisterBuiltinRelocators();
  // Scheduled chaos crashes (FaultPlan::crashes) take down the whole Core,
  // not just its network registration.
  network_.SetCrashHandler([this](CoreId id) {
    if (Core* core = Find(id)) core->Crash();
  });
}

Runtime::~Runtime() {
  // Pending events may hold complet references (periodic tasks, parked
  // notifications); destroy them while the Cores they point into are
  // still alive.
  scheduler_.Clear();
}

Core& Runtime::CreateCore(std::string name) {
  const CoreId id{++next_core_id_};
  cores_.push_back(std::make_unique<Core>(*this, id, std::move(name)));
  return *cores_.back();
}

Core* Runtime::Find(CoreId id) const {
  for (const auto& core : cores_)
    if (core->id() == id) return core.get();
  return nullptr;
}

Core* Runtime::FindByName(std::string_view name) const {
  for (const auto& core : cores_)
    if (core->name() == name) return core.get();
  return nullptr;
}

std::vector<Core*> Runtime::Cores() const {
  std::vector<Core*> out;
  out.reserve(cores_.size());
  for (const auto& core : cores_) out.push_back(core.get());
  return out;
}

}  // namespace fargo::core
