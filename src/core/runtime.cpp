#include "src/core/runtime.h"

#include <cstdlib>
#include <fstream>

#include "src/core/core.h"
#include "src/core/relocator.h"
#include "src/monitor/trace.h"
#include "src/serial/bytes.h"
#include "src/sim/parallel_sched.h"

namespace fargo::core {

namespace {
/// Engine selection (RuntimeOptions::localities). -1 defers to the
/// FARGO_PARALLEL environment variable; 0 (or unset/garbage env) is the
/// deterministic sim; N ≥ 1 spins up the locality engine.
std::unique_ptr<sim::Scheduler> MakeScheduler(int localities) {
  if (localities < 0) {
    localities = 0;
    if (const char* env = std::getenv("FARGO_PARALLEL"))
      localities = std::atoi(env);
    if (localities < 0) localities = 0;
  }
  if (localities == 0) return std::make_unique<sim::SimScheduler>();
  return std::make_unique<sim::ParallelScheduler>(localities);
}
}  // namespace

Runtime::Runtime() : Runtime(RuntimeOptions{}) {}

Runtime::Runtime(const RuntimeOptions& options)
    : scheduler_(MakeScheduler(options.localities)), network_(*scheduler_) {
  RegisterBuiltinRelocators();
  // Scheduled chaos crashes (FaultPlan::crashes) take down the whole Core,
  // not just its network registration.
  network_.SetCrashHandler([this](CoreId id) {
    if (Core* core = Find(id)) core->Crash();
  });
  // Scheduled crash+restart cycles (CoreCrash::restart_after) bring the
  // Core back up; durable Cores then recover from their WAL.
  network_.SetRestartHandler([this](CoreId id) {
    if (Core* core = Find(id)) core->Restart();
  });
  // Count every network drop, whatever its reason, in the registry. The
  // Network stays monitor-agnostic: it just calls the hook.
  network_.SetDropHook(
      [&drops = metrics_.counter("net.drops")](const net::Message&,
                                               net::DropReason) {
        drops.Inc();
      });
  // Chaos duplication is the one place the fabric copies a payload instead
  // of moving it; charge those bytes to the copy-elimination gate metric.
  network_.SetCopyHook(
      [&copied = metrics_.counter("net.bytes_copied")](std::size_t n) {
        copied.Inc(n);
      });
  // Baseline the process-global serial stats at construction, so each
  // Runtime's registry reports only its own lifetime.
  const serial::BufferStats at_boot = serial::GetBufferStats();
  synced_allocations_ = at_boot.allocations;
  synced_regrow_bytes_ = at_boot.bytes_copied;
  // Max-gauge of scheduler pump nesting: the async invocation pipeline keeps
  // this at 1; anything deeper means a blocking wait re-entered the pump.
  scheduler_->SetPumpObserver(
      [&depth = metrics_.gauge("sched.pump_depth")](int d) {
        if (d > static_cast<int>(depth.value())) depth.Set(d);
      });
}

Runtime::~Runtime() {
  // Pending events may hold complet references (periodic tasks, parked
  // notifications); destroy them while the Cores they point into are
  // still alive.
  scheduler_->Clear();
  // Same hazard one layer down: a hosted complet may itself hold references
  // bound to a sibling Core (common after movement, where the final host
  // depends on the run). Cores are destroyed in creation order, so release
  // every repository while all Cores are still alive.
  for (auto& core : cores_) core->repository().Clear();
}

void Runtime::EnableDirectory(std::vector<CoreId> owners,
                              std::uint32_t vnodes) {
  if (owners.empty()) throw FargoError("EnableDirectory: empty owner set");
  if (vnodes == 0) throw FargoError("EnableDirectory: vnodes must be > 0");
  shard_map_ = MakeShardMap(shard_map_.version + 1, std::move(owners), vnodes);
  directory_mode_ = DirectoryMode::kSharded;
}

bool Runtime::AdoptShardMap(const ShardMap& map) {
  if (!map.valid() || map.version <= shard_map_.version) return false;
  shard_map_ = map;
  directory_mode_ = DirectoryMode::kSharded;
  return true;
}

Core& Runtime::CreateCore(std::string name) {
  const CoreId id{++next_core_id_};
  // Anything the Core schedules at boot belongs on its home locality.
  sim::Scheduler::AffinityScope aff(id.value);
  cores_.push_back(std::make_unique<Core>(*this, id, std::move(name)));
  return *cores_.back();
}

Core* Runtime::Find(CoreId id) const {
  for (const auto& core : cores_)
    if (core->id() == id) return core.get();
  return nullptr;
}

Core* Runtime::FindByName(std::string_view name) const {
  for (const auto& core : cores_)
    if (core->name() == name) return core.get();
  return nullptr;
}

std::vector<Core*> Runtime::Cores() const {
  std::vector<Core*> out;
  out.reserve(cores_.size());
  for (const auto& core : cores_) out.push_back(core.get());
  return out;
}

void Runtime::SetTracing(bool on) {
  tracing_ = on;
  for (const auto& core : cores_) core->SetTracing(on);
}

std::size_t Runtime::WriteTrace(std::ostream& os) const {
  std::vector<std::vector<monitor::Span>> spans;
  std::vector<std::pair<CoreId, std::string>> names;
  spans.reserve(cores_.size());
  names.reserve(cores_.size());
  for (const auto& core : cores_) {
    spans.push_back(core->tracer().buffer().Snapshot());
    names.emplace_back(core->id(), core->name());
  }
  return monitor::WriteChromeTrace(os, spans, names);
}

void Runtime::SyncSerialStats() {
  const serial::BufferStats now = serial::GetBufferStats();
  metrics_.counter("alloc.count").Inc(now.allocations - synced_allocations_);
  metrics_.counter("net.bytes_copied")
      .Inc(now.bytes_copied - synced_regrow_bytes_);
  synced_allocations_ = now.allocations;
  synced_regrow_bytes_ = now.bytes_copied;
  // Locality-engine telemetry. Only touched in parallel mode so sim-mode
  // metric dumps (and their gated fingerprints) are byte-identical to
  // before the engine existed.
  if (auto* p = dynamic_cast<sim::ParallelScheduler*>(scheduler_.get())) {
    const sim::ParallelScheduler::Telemetry t = p->telemetry();
    metrics_.counter("locality.handoffs").Inc(t.handoffs - synced_handoffs_);
    metrics_.counter("locality.handoff_overflows")
        .Inc(t.overflows - synced_overflows_);
    metrics_.counter("locality.rounds").Inc(t.rounds - synced_rounds_);
    metrics_.counter("locality.steals").Inc(t.steals);  // strict affinity: 0
    auto& depth = metrics_.gauge("locality.queue_depth");
    if (t.max_queue_depth > depth.value()) depth.Set(t.max_queue_depth);
    synced_handoffs_ = t.handoffs;
    synced_overflows_ = t.overflows;
    synced_rounds_ = t.rounds;
  }
}

std::size_t Runtime::DumpTrace(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw FargoError("cannot open trace file " + path);
  return WriteTrace(os);
}

}  // namespace fargo::core
