// Complet anchors.
//
// A complet (§2) is a group of objects accessed through a single well-known
// interface object: the anchor. All external references into the complet
// point at the anchor; the complet's closure is the object graph reachable
// from the anchor, cut at other anchors.
//
// In the paper, the FarGo compiler generates a stub class per anchor. In
// C++, anchors instead expose their remote interface through a MethodMap
// (name → handler), which the invocation unit dispatches into; examples show
// optional hand-written typed stubs layered on ComletRef<T>.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/ids.h"
#include "src/common/value.h"
#include "src/core/fwd.h"
#include "src/serial/registry.h"

namespace fargo::core {

/// Registry of remotely invocable methods of an anchor.
// fargo: domain(core)
class MethodMap {
 public:
  using Handler = std::function<Value(const std::vector<Value>&)>;

  /// Registers `handler` under `name`; later registrations win (overrides).
  void Register(std::string name, Handler handler) {
    handlers_[std::move(name)] = std::move(handler);
  }

  bool Contains(std::string_view name) const {
    return handlers_.contains(std::string(name));
  }

  /// Invokes the named handler; throws FargoError for unknown methods.
  Value Invoke(std::string_view name, const std::vector<Value>& args) const;

  /// Sorted method names, for the shell's introspection commands.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Handler, std::less<>> handlers_;
};

/// Base class of all complet anchors.
///
/// Subclasses must: be default-constructible, expose
/// `static constexpr std::string_view kTypeName`, be registered via
/// `serial::RegisterType<T>()`, register their methods into `methods()`
/// (typically from the default constructor), and (de)serialize their
/// closure in Serialize/Deserialize.
// fargo: domain(core)
class Anchor : public serial::Serializable {
 public:
  /// Global, movement-stable identity of this complet instance.
  ComletId id() const { return id_; }

  /// The Core currently hosting this complet (null before registration).
  Core* core() const { return core_; }

  /// Dispatches a (possibly remote) invocation. The default implementation
  /// consults the MethodMap; override for fully custom dispatch.
  virtual Value Dispatch(std::string_view method,
                         const std::vector<Value>& args) {
    return methods_.Invoke(method, args);
  }

  // -- movement lifecycle callbacks (§3.3) -----------------------------------
  /// Invoked at the sending Core before the complet is marshaled.
  virtual void PreDeparture() {}
  /// Invoked at the receiving Core before unmarshaling completes (i.e.
  /// after this anchor's own state is read, before the complet is attached).
  virtual void PreArrival() {}
  /// Invoked at the receiving Core once the complet is installed.
  virtual void PostArrival() {}
  /// Invoked at the sending Core right before the stale copy is released.
  virtual void PostDeparture() {}

  const MethodMap& methods() const { return methods_; }

 protected:
  MethodMap& methods() { return methods_; }

 private:
  friend class Core;
  friend class MovementUnit;
  // Checkpoint/WAL restore re-establishes saved identities (persistence.h).
  friend std::shared_ptr<Anchor> DecodeComletImage(
      Core& core, ComletId id, const std::vector<std::uint8_t>& body);

  ComletId id_{};
  Core* core_ = nullptr;
  MethodMap methods_;
};

}  // namespace fargo::core
