// The directory plane: pluggable location resolution for complets
// (docs/PROTOCOL.md §Directory).
//
// Every complet has one *home shard* — a Core that stores its last
// published location under an epoch stamp. Hosts publish arrivals to the
// shard (kDirectoryPublish); a Core that has lost the trail asks the shard
// (kDirectoryLookup) and re-stamps its tracker from the reply. Shard
// ownership is a versioned consistent-hash map (src/core/shard_map.h)
// distributed as kDirectoryMap payloads.
//
// Modes:
//   kDisabled  no directory: tracker chains are the only routing state
//              (severed chains stay severed — the paper's base system).
//   kOrigin    one shard per origin Core: the legacy "home registry" of
//              §7, expressed as the 1-shard-per-origin configuration.
//   kSharded   consistent-hash ring over an explicit owner set
//              (Runtime::EnableDirectory).
#pragma once

#include <cstdint>
#include <map>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/core/wire.h"
#include "src/net/network.h"
#include "src/sim/future.h"

namespace fargo::core {

class Core;

enum class DirectoryMode { kDisabled, kOrigin, kSharded };

/// One shard-side location record.
struct DirEntry {
  CoreId location;
  std::uint64_t epoch = 0;
  SimTime as_of = -1;
};

// fargo: domain(core)
class Directory {
 public:
  explicit Directory(Core& core) : core_(core) {}

  DirectoryMode mode() const;
  bool enabled() const { return mode() != DirectoryMode::kDisabled; }

  /// Core owning `id`'s home shard; invalid when the plane is disabled.
  CoreId OwnerOf(ComletId id) const;

  /// Publishes "`id` now lives at `location`" to the owning shard, stamped
  /// `epoch`. `epoch == 0` is a host *assertion* (recovery, reinstall): the
  /// asserting Core provably hosts the complet but does not know its stamp;
  /// the shard keeps or bumps its stored epoch and echoes the authoritative
  /// stamp back as a kTrackerUpdate. No-op when the plane is disabled.
  void Publish(ComletId id, CoreId location, std::uint64_t epoch);

  /// Asks the home shard for `id`'s location. Resolves with found = false
  /// when the shard has never heard of it (or the plane is disabled);
  /// rejects when the shard is unreachable.
  sim::Future<wire::DirectoryHint> LookupAsync(ComletId id);

  // -- wire handlers (Core::DispatchMessage) ----------------------------------
  void HandlePublish(const net::Message& msg);
  void HandleLookup(const net::Message& msg);
  void HandleMap(const net::Message& msg);

  /// Sends the Runtime's current shard map to every other Core as a
  /// kDirectoryMap payload (higher-version-wins adoption on receipt).
  void BroadcastMap();

  /// WAL replay entry point: reapplies a logged publish without re-logging
  /// or echoing.
  void ApplyFromWal(ComletId id, CoreId location, std::uint64_t epoch,
                    SimTime as_of);

  /// Shard-side store (ordered: WAL sidecars and the shell walk it).
  const std::map<ComletId, DirEntry>& store() const { return store_; }
  /// Drops every shard entry (Core restart; WAL recovery repopulates).
  void Clear() { store_.clear(); }

 private:
  /// Answers a lookup from this Core's own state, preferring live hosting
  /// knowledge over the stored record.
  wire::DirectoryHint LocalHint(ComletId id);
  /// The shard-side merge. Stamped publishes (`epoch > 0`) apply iff
  /// strictly newer than the stored stamp (equal + same location only
  /// refreshes `as_of`); assertions (`epoch == 0`) always win on location
  /// — hosting is ground truth — and are echoed back re-stamped.
  void ApplyPublish(ComletId id, CoreId location, std::uint64_t epoch,
                    SimTime as_of, CoreId publisher);
  /// Echoes the authoritative stamp of an assertion back to the publisher.
  void EchoStamp(ComletId id, const DirEntry& entry, CoreId to);

  Core& core_;
  std::map<ComletId, DirEntry> store_;
};

}  // namespace fargo::core
