#include "src/core/retry.h"

#include <algorithm>
#include <cmath>

namespace fargo::core {

namespace {

std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

SimTime RetryPolicy::BackoffAfter(int failed_attempt,
                                  std::uint64_t salt) const {
  if (failed_attempt < 1) failed_attempt = 1;
  double base = static_cast<double>(initial_backoff);
  for (int i = 1; i < failed_attempt; ++i) {
    base *= multiplier;
    if (base >= static_cast<double>(max_backoff)) break;
  }
  base = std::min(base, static_cast<double>(max_backoff));
  if (jitter > 0.0) {
    const std::uint64_t draw =
        Mix(seed ^ Mix(salt) ^ static_cast<std::uint64_t>(failed_attempt));
    // unit in [0, 1) -> factor in [1 - jitter, 1 + jitter)
    const double unit = static_cast<double>(draw >> 11) * 0x1.0p-53;
    base *= 1.0 + jitter * (2.0 * unit - 1.0);
  }
  return std::max<SimTime>(0, static_cast<SimTime>(std::llround(base)));
}

DedupCache::BeginResult DedupCache::Begin(CoreId origin,
                                          std::uint64_t correlation,
                                          SimTime now) {
  EvictExpired(now);
  auto [it, inserted] = entries_.try_emplace(Key{origin, correlation});
  BeginResult result;
  if (inserted) return result;
  if (!it->second.done) {
    result.outcome = Outcome::kInProgress;
    ++suppressed_;
    return result;
  }
  result.outcome = Outcome::kReplay;
  result.reply_kind = it->second.reply_kind;
  result.reply = &it->second.reply;
  ++replays_;
  return result;
}

std::optional<DedupCache::CachedReply> DedupCache::Lookup(
    CoreId origin, std::uint64_t correlation) {
  auto it = entries_.find(Key{origin, correlation});
  if (it == entries_.end() || !it->second.done) return std::nullopt;
  ++replays_;
  return CachedReply{it->second.reply_kind, &it->second.reply};
}

bool DedupCache::Complete(CoreId origin, std::uint64_t correlation,
                          net::MessageKind reply_kind,
                          const std::vector<std::uint8_t>& payload,
                          SimTime now) {
  auto it = entries_.find(Key{origin, correlation});
  if (it == entries_.end() || it->second.done) return false;
  it->second.done = true;
  it->second.reply_kind = reply_kind;
  it->second.reply = payload;
  it->second.completed_at = now;
  completion_order_.push_back(it->first);
  return true;
}

std::vector<DedupCache::SeedEntry> DedupCache::Snapshot() const {
  std::vector<SeedEntry> out;
  out.reserve(completion_order_.size());
  for (const Key& key : completion_order_) {
    auto it = entries_.find(key);
    if (it == entries_.end() || !it->second.done) continue;
    out.push_back(SeedEntry{key.origin, key.correlation, it->second.reply_kind,
                            it->second.reply});
  }
  return out;
}

void DedupCache::Seed(CoreId origin, std::uint64_t correlation,
                      net::MessageKind reply_kind,
                      std::vector<std::uint8_t> reply, SimTime now) {
  auto [it, inserted] = entries_.try_emplace(Key{origin, correlation});
  if (inserted || !it->second.done) completion_order_.push_back(it->first);
  it->second.done = true;
  it->second.reply_kind = reply_kind;
  it->second.reply = std::move(reply);
  it->second.completed_at = now;
}

void DedupCache::Clear() {
  entries_.clear();
  completion_order_.clear();
}

void DedupCache::EvictExpired(SimTime now) {
  while (!completion_order_.empty()) {
    // Done entries are immutable, so the front of the deque is always the
    // oldest completion still cached.
    auto it = entries_.find(completion_order_.front());
    if (it == entries_.end()) {
      completion_order_.pop_front();
      continue;
    }
    if (now - it->second.completed_at < ttl_) return;
    entries_.erase(it);
    completion_order_.pop_front();
  }
}

}  // namespace fargo::core
