#include "src/core/retry.h"

#include <algorithm>
#include <cmath>

namespace fargo::core {

namespace {

std::uint64_t Mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

SimTime RetryPolicy::BackoffAfter(int failed_attempt,
                                  std::uint64_t salt) const {
  if (failed_attempt < 1) failed_attempt = 1;
  double base = static_cast<double>(initial_backoff);
  for (int i = 1; i < failed_attempt; ++i) {
    base *= multiplier;
    if (base >= static_cast<double>(max_backoff)) break;
  }
  base = std::min(base, static_cast<double>(max_backoff));
  if (jitter > 0.0) {
    const std::uint64_t draw =
        Mix(seed ^ Mix(salt) ^ static_cast<std::uint64_t>(failed_attempt));
    // unit in [0, 1) -> factor in [1 - jitter, 1 + jitter)
    const double unit = static_cast<double>(draw >> 11) * 0x1.0p-53;
    base *= 1.0 + jitter * (2.0 * unit - 1.0);
  }
  return std::max<SimTime>(0, static_cast<SimTime>(std::llround(base)));
}

}  // namespace fargo::core
