#include "src/core/wal.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/core/core.h"
#include "src/core/directory.h"
#include "src/core/movement.h"
#include "src/core/persistence.h"
#include "src/core/wire.h"
#include "src/monitor/metrics.h"

namespace fargo::core {

namespace {
/// In-doubt destination queries retry this many times (with linear backoff)
/// before giving up and leaving the transaction open. A permanently dead
/// destination keeps its prepares in-doubt forever — the staged stream stays
/// pinned in the log and the complet stays unavailable, which is exactly the
/// outcome a non-durable FarGo deployment gets when a Core dies mid-move.
constexpr int kMaxInDoubtAttempts = 10;
}  // namespace

const char* WalKindName(std::uint8_t kind) {
  switch (kind) {
    case kWalInstall: return "install";
    case kWalState: return "state";
    case kWalExec: return "exec";
    case kWalBind: return "bind";
    case kWalTracker: return "tracker";
    case kWalDirPublish: return "dir-publish";
    case kWalMeta: return "meta";
    case kWalPrepare: return "prepare";
    case kWalCommit: return "commit";
    case kWalAbort: return "abort";
    case kWalMoveIn: return "move-in";
    case kWalRemove: return "remove";
    case kWalMoveInAck: return "move-in-ack";
    case kWalMoveDead: return "move-dead";
  }
  return "unknown";
}

// ==== per-kind codecs =========================================================

void WriteInstallRecord(serial::Writer& w, const WalRecord& r) {
  wire::WriteComletId(w, r.comlet);
  w.WriteString(r.anchor_type);
  w.WriteBytes(r.image);
}

WalRecord ReadInstallRecord(serial::Reader& r) {
  WalRecord rec;
  rec.comlet = wire::ReadComletId(r);
  rec.anchor_type = r.ReadString();
  rec.image = r.ReadBytes();
  return rec;
}

void WriteStateRecord(serial::Writer& w, const WalRecord& r) {
  wire::WriteComletId(w, r.comlet);
  w.WriteString(r.anchor_type);
  w.WriteBytes(r.image);
}

WalRecord ReadStateRecord(serial::Reader& r) {
  WalRecord rec;
  rec.comlet = wire::ReadComletId(r);
  rec.anchor_type = r.ReadString();
  rec.image = r.ReadBytes();
  return rec;
}

void WriteExecRecord(serial::Writer& w, const WalRecord& r) {
  w.WriteVarint(r.session.origin.value);
  w.WriteVarint(r.session.peer.value);
  w.WriteVarint(r.session.epoch);
  w.WriteVarint(r.session.slot);
  w.WriteVarint(r.session.seq);
  w.WriteU8(r.reply_kind);
  w.WriteBytes(r.reply);
}

WalRecord ReadExecRecord(serial::Reader& r) {
  WalRecord rec;
  rec.session.origin.value = static_cast<std::uint32_t>(r.ReadVarint());
  rec.session.peer.value = static_cast<std::uint32_t>(r.ReadVarint());
  rec.session.epoch = r.ReadVarint();
  rec.session.slot = static_cast<std::uint32_t>(r.ReadVarint());
  rec.session.seq = r.ReadVarint();
  rec.reply_kind = r.ReadU8();
  rec.reply = r.ReadBytes();
  return rec;
}

void WriteBindRecord(serial::Writer& w, const WalRecord& r) {
  w.WriteString(r.name);
  wire::WriteHandle(w, r.handle);
}

WalRecord ReadBindRecord(serial::Reader& r) {
  WalRecord rec;
  rec.name = r.ReadString();
  rec.handle = wire::ReadHandle(r);
  return rec;
}

void WriteTrackerRecord(serial::Writer& w, const WalRecord& r) {
  wire::WriteComletId(w, r.comlet);
  wire::WriteCoreId(w, r.next);
  w.WriteString(r.anchor_type);
}

WalRecord ReadTrackerRecord(serial::Reader& r) {
  WalRecord rec;
  rec.comlet = wire::ReadComletId(r);
  rec.next = wire::ReadCoreId(r);
  rec.anchor_type = r.ReadString();
  return rec;
}

void WriteDirPublishRecord(serial::Writer& w, const WalRecord& r) {
  wire::WriteComletId(w, r.comlet);
  wire::WriteCoreId(w, r.location);
  w.WriteVarint(r.epoch);
  w.WriteInt(r.as_of);
}

WalRecord ReadDirPublishRecord(serial::Reader& r) {
  WalRecord rec;
  rec.comlet = wire::ReadComletId(r);
  rec.location = wire::ReadCoreId(r);
  rec.epoch = r.ReadVarint();
  rec.as_of = r.ReadInt();
  return rec;
}

void WriteMetaRecord(serial::Writer& w, const WalRecord& r) {
  w.WriteVarint(r.comlet_seq);
  w.WriteVarint(r.correlation_seq);
  w.WriteVarint(r.txn_seq);
}

WalRecord ReadMetaRecord(serial::Reader& r) {
  WalRecord rec;
  rec.comlet_seq = r.ReadVarint();
  rec.correlation_seq = r.ReadVarint();
  rec.txn_seq = r.ReadVarint();
  return rec;
}

void WritePrepareRecord(serial::Writer& w, const WalRecord& r) {
  w.WriteVarint(r.txn);
  wire::WriteComletId(w, r.primary);
  wire::WriteCoreId(w, r.dest);
  w.WriteVarint(r.departing.size());
  for (const auto& [id, type] : r.departing) {
    wire::WriteComletId(w, id);
    w.WriteString(type);
  }
  w.WriteBytes(r.stream);
}

WalRecord ReadPrepareRecord(serial::Reader& r) {
  WalRecord rec;
  rec.txn = r.ReadVarint();
  rec.primary = wire::ReadComletId(r);
  rec.dest = wire::ReadCoreId(r);
  const std::uint64_t n = r.ReadVarint();
  for (std::uint64_t i = 0; i < n; ++i) {
    ComletId id = wire::ReadComletId(r);
    std::string type = r.ReadString();
    rec.departing.emplace_back(id, std::move(type));
  }
  rec.stream = r.ReadBytes();
  return rec;
}

void WriteCommitRecord(serial::Writer& w, const WalRecord& r) {
  w.WriteVarint(r.txn);
}

WalRecord ReadCommitRecord(serial::Reader& r) {
  WalRecord rec;
  rec.txn = r.ReadVarint();
  return rec;
}

void WriteAbortRecord(serial::Writer& w, const WalRecord& r) {
  w.WriteVarint(r.txn);
}

WalRecord ReadAbortRecord(serial::Reader& r) {
  WalRecord rec;
  rec.txn = r.ReadVarint();
  return rec;
}

void WriteMoveInRecord(serial::Writer& w, const WalRecord& r) {
  wire::WriteCoreId(w, r.peer);
  w.WriteVarint(r.txn);
}

WalRecord ReadMoveInRecord(serial::Reader& r) {
  WalRecord rec;
  rec.peer = wire::ReadCoreId(r);
  rec.txn = r.ReadVarint();
  return rec;
}

void WriteRemoveRecord(serial::Writer& w, const WalRecord& r) {
  wire::WriteComletId(w, r.comlet);
  wire::WriteCoreId(w, r.peer);
  w.WriteString(r.anchor_type);
}

WalRecord ReadRemoveRecord(serial::Reader& r) {
  WalRecord rec;
  rec.comlet = wire::ReadComletId(r);
  rec.peer = wire::ReadCoreId(r);
  rec.anchor_type = r.ReadString();
  return rec;
}

void WriteMoveInAckRecord(serial::Writer& w, const WalRecord& r) {
  wire::WriteCoreId(w, r.peer);
  w.WriteVarint(r.txn);
}

WalRecord ReadMoveInAckRecord(serial::Reader& r) {
  WalRecord rec;
  rec.peer = wire::ReadCoreId(r);
  rec.txn = r.ReadVarint();
  return rec;
}

void WriteMoveDeadRecord(serial::Writer& w, const WalRecord& r) {
  wire::WriteCoreId(w, r.peer);
  w.WriteVarint(r.txn);
}

WalRecord ReadMoveDeadRecord(serial::Reader& r) {
  WalRecord rec;
  rec.peer = wire::ReadCoreId(r);
  rec.txn = r.ReadVarint();
  return rec;
}

std::vector<std::uint8_t> EncodeWalRecord(const WalRecord& r) {
  serial::Writer w;
  w.WriteU8(r.kind);
  switch (r.kind) {
    case kWalInstall: WriteInstallRecord(w, r); break;
    case kWalState: WriteStateRecord(w, r); break;
    case kWalExec: WriteExecRecord(w, r); break;
    case kWalBind: WriteBindRecord(w, r); break;
    case kWalTracker: WriteTrackerRecord(w, r); break;
    case kWalDirPublish: WriteDirPublishRecord(w, r); break;
    case kWalMeta: WriteMetaRecord(w, r); break;
    case kWalPrepare: WritePrepareRecord(w, r); break;
    case kWalCommit: WriteCommitRecord(w, r); break;
    case kWalAbort: WriteAbortRecord(w, r); break;
    case kWalMoveIn: WriteMoveInRecord(w, r); break;
    case kWalRemove: WriteRemoveRecord(w, r); break;
    case kWalMoveInAck: WriteMoveInAckRecord(w, r); break;
    case kWalMoveDead: WriteMoveDeadRecord(w, r); break;
    default:
      throw FargoError("cannot encode wal record of unknown kind " +
                       std::to_string(r.kind));
  }
  return w.Take();
}

WalRecord DecodeWalRecord(const std::vector<std::uint8_t>& bytes) {
  serial::Reader r(bytes);
  const std::uint8_t kind = r.ReadU8();
  WalRecord rec;
  switch (kind) {
    case kWalInstall: rec = ReadInstallRecord(r); break;
    case kWalState: rec = ReadStateRecord(r); break;
    case kWalExec: rec = ReadExecRecord(r); break;
    case kWalBind: rec = ReadBindRecord(r); break;
    case kWalTracker: rec = ReadTrackerRecord(r); break;
    case kWalDirPublish: rec = ReadDirPublishRecord(r); break;
    case kWalMeta: rec = ReadMetaRecord(r); break;
    case kWalPrepare: rec = ReadPrepareRecord(r); break;
    case kWalCommit: rec = ReadCommitRecord(r); break;
    case kWalAbort: rec = ReadAbortRecord(r); break;
    case kWalMoveIn: rec = ReadMoveInRecord(r); break;
    case kWalRemove: rec = ReadRemoveRecord(r); break;
    case kWalMoveInAck: rec = ReadMoveInAckRecord(r); break;
    case kWalMoveDead: rec = ReadMoveDeadRecord(r); break;
    default:
      throw serial::SerialError("wal record of unknown kind " +
                                std::to_string(kind));
  }
  rec.kind = kind;
  return rec;
}

// ==== Wal =====================================================================

Wal::Wal(Core& core, sim::Storage& storage, SimTime checkpoint_interval)
    : core_(core),
      storage_(storage),
      name_("wal/" + core.name()),
      checkpoint_interval_(checkpoint_interval) {
  monitor::Registry& reg = core_.metrics();
  rec_counter_ = &reg.counter("wal.records");
  byte_counter_ = &reg.counter("wal.bytes");
  fsync_counter_ = &reg.counter("wal.fsyncs");
  replay_counter_ = &reg.counter("wal.replays");
  recovery_time_ = &reg.histogram("recovery.duration_ns",
                                  monitor::Registry::LatencyBounds());
}

Wal::~Wal() = default;

std::string Wal::CheckpointBlobName() const {
  return "ckpt/" + core_.name();
}

void Wal::ArmCheckpoint() {
  if (checkpoint_interval_ <= 0 || checkpoint_armed_ || replaying_) return;
  checkpoint_armed_ = true;
  const std::uint64_t epoch = core_.restart_epoch_;
  core_.scheduler().ScheduleAfter(
      checkpoint_interval_,
      // fargolint: allow(capture-this) the Core owns its Wal and outlives the cleared event queue
      [this, epoch] {
        if (!core_.alive_ || core_.restart_epoch_ != epoch) return;
        checkpoint_armed_ = false;
        Checkpoint();
      });
}

std::uint64_t Wal::Append(const WalRecord& rec) {
  std::vector<std::uint8_t> bytes = EncodeWalRecord(rec);
  ++records_appended_;
  bytes_appended_ += bytes.size();
  rec_counter_->Inc();
  byte_counter_->Inc(bytes.size());
  ArmCheckpoint();
  return storage_.Append(name_, std::move(bytes));
}

void Wal::AppendInstall(const Anchor& anchor) {
  if (replaying_) return;
  WalRecord rec;
  rec.kind = kWalInstall;
  rec.comlet = anchor.id();
  rec.anchor_type = std::string(anchor.TypeName());
  rec.image = EncodeComletImage(core_, anchor);
  Append(rec);
}

void Wal::AppendState(const Anchor& anchor) {
  if (replaying_) return;
  WalRecord rec;
  rec.kind = kWalState;
  rec.comlet = anchor.id();
  rec.anchor_type = std::string(anchor.TypeName());
  rec.image = EncodeComletImage(core_, anchor);
  Append(rec);
}

void Wal::AppendExec(const net::SessionKey& session,
                     net::MessageKind reply_kind,
                     const std::vector<std::uint8_t>& reply) {
  if (replaying_) return;
  WalRecord rec;
  rec.kind = kWalExec;
  rec.session = session;
  rec.reply_kind = static_cast<std::uint8_t>(reply_kind);
  rec.reply = reply;
  Append(rec);
}

void Wal::AppendBind(const std::string& name, const ComletHandle& handle) {
  if (replaying_) return;
  WalRecord rec;
  rec.kind = kWalBind;
  rec.name = name;
  rec.handle = handle;
  Append(rec);
}

void Wal::AppendTracker(ComletId comlet, CoreId next,
                        const std::string& anchor_type) {
  if (replaying_) return;
  WalRecord rec;
  rec.kind = kWalTracker;
  rec.comlet = comlet;
  rec.next = next;
  rec.anchor_type = anchor_type;
  Append(rec);
}

void Wal::AppendDirPublish(ComletId comlet, CoreId location,
                           std::uint64_t epoch, SimTime as_of) {
  if (replaying_) return;
  WalRecord rec;
  rec.kind = kWalDirPublish;
  rec.comlet = comlet;
  rec.location = location;
  rec.epoch = epoch;
  rec.as_of = as_of;
  Append(rec);
}

void Wal::AppendRemove(ComletId comlet, CoreId peer,
                       const std::string& anchor_type) {
  if (replaying_) return;
  WalRecord rec;
  rec.kind = kWalRemove;
  rec.comlet = comlet;
  rec.peer = peer;
  rec.anchor_type = anchor_type;
  Append(rec);
}

void Wal::AppendPrepare(std::uint64_t txn, ComletId primary, CoreId dest,
                        std::vector<std::pair<ComletId, std::string>> departing,
                        std::vector<std::uint8_t> stream) {
  if (replaying_) return;
  WalRecord rec;
  rec.kind = kWalPrepare;
  rec.txn = txn;
  rec.primary = primary;
  rec.dest = dest;
  rec.departing = departing;
  rec.stream = stream;
  const std::uint64_t index = Append(rec);
  OpenTxn& open = open_txns_[txn];
  open.primary = primary;
  open.dest = dest;
  open.first_index = index;
  open.departing = std::move(departing);
  open.stream = std::move(stream);
}

void Wal::AppendCommit(std::uint64_t txn) {
  if (replaying_) return;
  WalRecord rec;
  rec.kind = kWalCommit;
  rec.txn = txn;
  Append(rec);
  open_txns_.erase(txn);
}

void Wal::AppendAbort(std::uint64_t txn) {
  if (replaying_) return;
  WalRecord rec;
  rec.kind = kWalAbort;
  rec.txn = txn;
  Append(rec);
  open_txns_.erase(txn);
}

void Wal::AppendMoveIn(CoreId from, std::uint64_t txn) {
  if (replaying_) return;
  WalRecord rec;
  rec.kind = kWalMoveIn;
  rec.peer = from;
  rec.txn = txn;
  Append(rec);
}

void Wal::AppendMoveInAck(CoreId from, std::uint64_t txn) {
  if (replaying_) return;
  WalRecord rec;
  rec.kind = kWalMoveInAck;
  rec.peer = from;
  rec.txn = txn;
  Append(rec);
}

void Wal::AppendMoveDead(CoreId from, std::uint64_t txn) {
  if (replaying_) return;
  WalRecord rec;
  rec.kind = kWalMoveDead;
  rec.peer = from;
  rec.txn = txn;
  Append(rec);
}

std::uint64_t Wal::NextTxnId() {
  const std::uint64_t txn = ++next_txn_;
  if (!replaying_ && txn >= txn_floor_) {
    // Promise a new ceiling before the txn can exist anywhere: the meta
    // record lands in the log ahead of the Prepare, so the barrier that
    // releases the move stream makes it durable first. A destination can
    // therefore only ever hold move-in marks for txns below a durable
    // ceiling, and recovery (which re-mints above that ceiling) can never
    // alias an old mark with a new move.
    txn_floor_ = txn + kSeqStride;
    AppendMetaAndSync();
  }
  return txn;
}

void Wal::NoteSequences(std::uint64_t comlet_seq,
                        std::uint64_t correlation_seq) {
  if (replaying_) return;
  if (comlet_seq < comlet_seq_floor_ && correlation_seq < correlation_floor_)
    return;
  if (comlet_seq >= comlet_seq_floor_)
    comlet_seq_floor_ = comlet_seq + kSeqStride;
  if (correlation_seq >= correlation_floor_)
    correlation_floor_ = correlation_seq + kSeqStride;
  AppendMetaAndSync();
}

void Wal::AppendMetaAndSync() {
  WalRecord rec;
  rec.kind = kWalMeta;
  rec.comlet_seq = comlet_seq_floor_;
  rec.correlation_seq = correlation_floor_;
  rec.txn_seq = txn_floor_;
  Append(rec);
  const std::uint64_t comlet_promise = comlet_seq_floor_;
  const std::uint64_t correlation_promise = correlation_floor_;
  const std::uint64_t epoch = core_.restart_epoch_;
  ++metas_in_flight_;
  Sync().OnSettle(
      // fargolint: allow(capture-this) the Core owns its Wal and outlives the cleared event queue
      [this, comlet_promise, correlation_promise, epoch](sim::Future<sim::Unit>) {
        if (!core_.alive_ || core_.restart_epoch_ != epoch) return;
        --metas_in_flight_;
        durable_comlet_floor_ = std::max(durable_comlet_floor_, comlet_promise);
        durable_correlation_floor_ =
            std::max(durable_correlation_floor_, correlation_promise);
        DrainSeqWaiters();
      });
}

bool Wal::SequencesDurable() const {
  return core_.next_comlet_seq_ < durable_comlet_floor_ &&
         core_.next_correlation_ < durable_correlation_floor_;
}

sim::Future<sim::Unit> Wal::WhenSequencesDurable() {
  if (SequencesDurable())
    return sim::MakeReadyFuture(core_.scheduler(), sim::Unit{});
  seq_waiters_.push_back(SeqWaiter{core_.next_comlet_seq_,
                                   core_.next_correlation_,
                                   sim::Promise<sim::Unit>(core_.scheduler())});
  sim::Future<sim::Unit> f = seq_waiters_.back().done.future();
  // The promised floors always sit above the counters (every mint past one
  // re-promises), but the covering record may live only in a checkpoint
  // sidecar — make sure a *log* barrier carrying them is in flight.
  if (metas_in_flight_ == 0) AppendMetaAndSync();
  return f;
}

void Wal::DrainSeqWaiters() {
  // In arrival order for determinism; unsatisfied waiters stay queued for
  // the next barrier.
  std::vector<SeqWaiter> keep;
  for (SeqWaiter& w : seq_waiters_) {
    if (w.comlet_seq < durable_comlet_floor_ &&
        w.correlation_seq < durable_correlation_floor_) {
      w.done.Resolve(sim::Unit{});
    } else {
      keep.push_back(std::move(w));
    }
  }
  seq_waiters_ = std::move(keep);
  // Leftover waiters need a barrier promising more than any currently in
  // flight delivered; re-promise so they cannot strand.
  if (!seq_waiters_.empty() && metas_in_flight_ == 0) AppendMetaAndSync();
}

sim::Future<sim::Unit> Wal::Sync() {
  fsync_counter_->Inc();
  return storage_.Sync(name_);
}

void Wal::LazySync() {
  if (replaying_ || lazy_sync_armed_) return;
  lazy_sync_armed_ = true;
  const std::uint64_t epoch = core_.restart_epoch_;
  // fargolint: allow(capture-this) the Core owns its Wal and outlives the cleared event queue
  core_.scheduler().ScheduleAfter(0, [this, epoch] {
    lazy_sync_armed_ = false;
    if (core_.alive_ && core_.restart_epoch_ == epoch) Sync();
  });
}

std::vector<std::vector<std::uint8_t>> Wal::SidecarRecords() {
  std::vector<std::vector<std::uint8_t>> out;

  for (const TrackerEntry* e : core_.trackers_.All()) {
    if (e->is_local()) continue;  // locals are re-derived from the image
    WalRecord rec;
    rec.kind = kWalTracker;
    rec.comlet = e->target;
    rec.next = e->next;
    rec.anchor_type = e->anchor_type;
    out.push_back(EncodeWalRecord(rec));
  }

  // The shard store is an ordered map, so the sidecar is deterministic.
  for (const auto& [id, entry] : core_.directory().store()) {
    WalRecord rec;
    rec.kind = kWalDirPublish;
    rec.comlet = id;
    rec.location = entry.location;
    rec.epoch = entry.epoch;
    rec.as_of = entry.as_of;
    out.push_back(EncodeWalRecord(rec));
  }

  for (const net::ReplayDirectory::SeedEntry& e : core_.replay_.Snapshot()) {
    WalRecord rec;
    rec.kind = kWalExec;
    rec.session = e.key;
    rec.reply_kind = static_cast<std::uint8_t>(e.reply_kind);
    rec.reply = e.reply;
    out.push_back(EncodeWalRecord(rec));
  }

  for (const auto& [from, txn] : core_.movement().move_ins()) {
    WalRecord rec;
    rec.kind = kWalMoveIn;
    rec.peer = CoreId{from};
    rec.txn = txn;
    out.push_back(EncodeWalRecord(rec));
  }

  for (const auto& [from, txn] : core_.movement().dead_txns()) {
    WalRecord rec;
    rec.kind = kWalMoveDead;
    rec.peer = CoreId{from};
    rec.txn = txn;
    out.push_back(EncodeWalRecord(rec));
  }

  WalRecord meta;
  meta.kind = kWalMeta;
  meta.comlet_seq =
      std::max(comlet_seq_floor_, core_.next_comlet_seq_ + kSeqStride);
  meta.correlation_seq =
      std::max(correlation_floor_, core_.next_correlation_ + kSeqStride);
  // The txn ceiling must survive checkpoint truncation of resolved
  // Prepare/Commit/Abort records: without it a restarted source re-mints an
  // old txn id and the destination's move-in set answers an in-doubt query
  // for the new move with the old move's verdict.
  meta.txn_seq = std::max(txn_floor_, next_txn_ + kSeqStride);
  comlet_seq_floor_ = meta.comlet_seq;
  correlation_floor_ = meta.correlation_seq;
  txn_floor_ = meta.txn_seq;
  out.push_back(EncodeWalRecord(meta));
  return out;
}

void Wal::Checkpoint() {
  if (replaying_ || !core_.alive_) return;

  // Everything below `covered` is reflected in the image; truncation is
  // clamped so unresolved prepares (and their staged streams) survive.
  const std::uint64_t covered = storage_.NextIndex(name_);
  std::uint64_t upto = covered;
  for (const auto& [txn, open] : open_txns_)
    upto = std::min(upto, open.first_index);

  serial::Writer blob;
  blob.WriteVarint(covered);
  blob.WriteBytes(SaveCoreImage(core_));
  const std::vector<std::vector<std::uint8_t>> side = SidecarRecords();
  blob.WriteVarint(side.size());
  for (const auto& rec : side) blob.WriteBytes(rec);

  fsync_counter_->Inc();
  const std::uint64_t epoch = core_.restart_epoch_;
  storage_.PutBlob(CheckpointBlobName(), blob.Take())
      // fargolint: allow(capture-this) the Core owns its Wal and outlives the cleared event queue
      .OnSettle([this, epoch, upto](sim::Future<sim::Unit>) {
        // Truncate only once the image is durable: a crash mid-checkpoint
        // keeps the old image and the untruncated log.
        if (!core_.alive_ || core_.restart_epoch_ != epoch) return;
        storage_.TruncateLog(name_, upto);
        ++checkpoints_;
      });
}

void Wal::OnCrash() {
  checkpoint_armed_ = false;  // the pending task epoch-guards itself away
  lazy_sync_armed_ = false;
  metas_in_flight_ = 0;  // in-flight barriers epoch-guard themselves away
  // Release gated requests: their continuations see the dead Core (or the
  // bumped epoch) and reject rather than send.
  for (SeqWaiter& w : seq_waiters_) w.done.Resolve(sim::Unit{});
  seq_waiters_.clear();
  storage_.DropVolatile(name_);
  storage_.DropVolatile(CheckpointBlobName());
}

void Wal::Recover() {
  const SimTime began = core_.scheduler().Now();
  replaying_ = true;
  open_txns_.clear();
  comlet_seq_floor_ = 0;
  correlation_floor_ = 0;
  txn_floor_ = 0;
  durable_comlet_floor_ = 0;
  durable_correlation_floor_ = 0;
  next_txn_ = 0;
  replay_covered_ = 0;

  if (auto blob = storage_.GetBlob(CheckpointBlobName())) {
    serial::Reader r(*blob);
    replay_covered_ = r.ReadVarint();
    const std::vector<std::uint8_t> image = r.ReadBytes();
    (void)LoadCoreImage(core_, image);
    const std::uint64_t n = r.ReadVarint();
    for (std::uint64_t i = 0; i < n; ++i) {
      // The sidecar speaks as of `covered`, so its records apply fully.
      ApplyRecord(DecodeWalRecord(r.ReadBytes()), replay_covered_);
      ++records_replayed_;
      replay_counter_->Inc();
    }
  }

  std::uint64_t index = storage_.BaseIndex(name_);
  for (const auto& bytes : storage_.ReadDurable(name_)) {
    ApplyRecord(DecodeWalRecord(bytes), index++);
    ++records_replayed_;
    replay_counter_->Inc();
  }
  replaying_ = false;
  ++recoveries_;

  // Re-mint identities and correlations above every durable promise, plus
  // one extra stride for defense in depth. Nothing the restarted Core mints
  // can leave it before the fresh promise below is durable (the request
  // gate holds SendAsync, the reply barrier holds replies, and the prepare
  // barrier holds move streams), so even a burst of mints that outran every
  // pre-crash barrier cannot be re-issued to a peer that saw them.
  core_.next_comlet_seq_ =
      std::max(core_.next_comlet_seq_, comlet_seq_floor_) + kSeqStride;
  core_.next_correlation_ =
      std::max(core_.next_correlation_, correlation_floor_) + kSeqStride;
  // Movement txns need no extra stride: a txn is only ever exposed after
  // the prepare barrier, which covers the mint-time promise.
  next_txn_ = std::max(next_txn_, txn_floor_);
  comlet_seq_floor_ = core_.next_comlet_seq_ + kSeqStride;
  correlation_floor_ = core_.next_correlation_ + kSeqStride;
  txn_floor_ = next_txn_ + kSeqStride;
  AppendMetaAndSync();

  // Directory sweep: everything hosted here again is re-asserted to its
  // home shard (epoch-0 publish — hosting is ground truth), which echoes
  // the authoritative stamp back, so severed references can re-route.
  for (ComletId id : core_.repository_.All())
    core_.directory().Publish(id, core_.id_, 0);

  std::vector<std::uint64_t> txns;
  txns.reserve(open_txns_.size());
  for (const auto& [txn, open] : open_txns_) txns.push_back(txn);
  if (!txns.empty())
    LogInfo() << core_.name() << ": " << txns.size()
              << " in-doubt move txn(s) after replay; querying destinations";
  ResolveInDoubt(std::move(txns), began);
}

void Wal::ApplyRecord(const WalRecord& rec, std::uint64_t index) {
  // Records below the checkpoint's covered index replay transaction
  // bookkeeping only: their state effects are already reflected (possibly
  // more recently) in the restored image + sidecar.
  const bool pre_image = index < replay_covered_;
  switch (rec.kind) {
    case kWalInstall:
    case kWalState:
      if (!pre_image) core_.RestoreComlet(rec.comlet, rec.image);
      break;
    case kWalExec:
      if (!pre_image)
        core_.replay_.Seed(rec.session,
                           static_cast<net::MessageKind>(rec.reply_kind),
                           rec.reply);
      break;
    case kWalBind:
      if (!pre_image) core_.naming_.Bind(rec.name, rec.handle);
      break;
    case kWalTracker:
      if (!pre_image && !core_.repository_.Contains(rec.comlet))
        core_.trackers_.SetForward(rec.comlet, rec.next, rec.anchor_type);
      break;
    case kWalDirPublish:
      if (!pre_image)
        core_.directory().ApplyFromWal(rec.comlet, rec.location, rec.epoch,
                                       rec.as_of);
      break;
    case kWalMeta:
      comlet_seq_floor_ = std::max(comlet_seq_floor_, rec.comlet_seq);
      correlation_floor_ = std::max(correlation_floor_, rec.correlation_seq);
      txn_floor_ = std::max(txn_floor_, rec.txn_seq);
      break;
    case kWalPrepare: {
      next_txn_ = std::max(next_txn_, rec.txn);
      OpenTxn& open = open_txns_[rec.txn];
      open.primary = rec.primary;
      open.dest = rec.dest;
      open.first_index = index;
      open.departing = rec.departing;
      open.stream = rec.stream;
      if (!pre_image) {
        for (const auto& [id, type] : rec.departing) {
          core_.repository_.Remove(id);
          core_.trackers_.SetForward(id, rec.dest, type);
        }
      }
      break;
    }
    case kWalCommit:
      next_txn_ = std::max(next_txn_, rec.txn);
      open_txns_.erase(rec.txn);
      break;
    case kWalAbort: {
      next_txn_ = std::max(next_txn_, rec.txn);
      auto it = open_txns_.find(rec.txn);
      if (it != open_txns_.end()) {
        // A pre-image abort's reinstall is already in the image.
        if (!pre_image) core_.movement().ReinstallFromStream(it->second.stream);
        open_txns_.erase(it);
      }
      break;
    }
    case kWalMoveIn:
      core_.movement().RecordMoveIn(rec.peer, rec.txn);
      break;
    case kWalMoveInAck:
      core_.movement().DropMoveIn(rec.peer, rec.txn);
      break;
    case kWalMoveDead:
      core_.movement().RecordDeadTxn(rec.peer, rec.txn);
      break;
    case kWalRemove:
      if (!pre_image) {
        core_.repository_.Remove(rec.comlet);
        core_.trackers_.SetForward(rec.comlet, rec.peer, rec.anchor_type);
      }
      break;
    default:
      throw serial::SerialError("wal replay hit record of unknown kind " +
                                std::to_string(rec.kind));
  }
}

void Wal::ResolveInDoubt(std::vector<std::uint64_t> txns, SimTime began) {
  if (txns.empty()) {
    recovery_time_->Observe(
        static_cast<double>(core_.scheduler().Now() - began));
    return;
  }
  auto remaining = std::make_shared<std::size_t>(txns.size());
  for (std::uint64_t txn : txns) QueryInDoubt(txn, 0, remaining, began);
}

void Wal::QueryInDoubt(std::uint64_t txn, int attempt,
                       const std::shared_ptr<std::size_t>& remaining,
                       SimTime began) {
  auto it = open_txns_.find(txn);
  if (it == open_txns_.end()) {
    FinishRecovery(remaining, began);
    return;
  }
  const CoreId dest = it->second.dest;
  serial::Writer w;
  w.WriteVarint(txn);
  const std::uint64_t epoch = core_.restart_epoch_;
  core_.SendAsync(dest, net::MessageKind::kRecoveryQuery, w.Take())
      // fargolint: allow(capture-this) the Core owns its Wal and outlives the cleared event queue
      .OnSettle([this, txn, attempt, remaining, began, epoch](
                    sim::Future<std::vector<std::uint8_t>> f) {
        if (!core_.alive_ || core_.restart_epoch_ != epoch) return;
        auto open = open_txns_.find(txn);
        if (open == open_txns_.end()) {
          FinishRecovery(remaining, began);
          return;
        }
        if (f.ok()) {
          bool committed = false;
          bool parsed = false;
          try {
            serial::Reader r(f.value());
            wire::CheckOk(r);
            committed = r.ReadBool();
            parsed = true;
          } catch (const std::exception& e) {
            LogWarn() << core_.name() << ": recovery query for txn " << txn
                      << " got an unusable reply (" << e.what()
                      << "); retrying";
          }
          if (parsed) {
            if (committed) {
              const CoreId commit_dest = open->second.dest;
              AppendCommit(txn);
              // Once the commit is durable this source will never ask about
              // the txn again — tell the destination so it can prune its
              // move-in mark (movement.h).
              Sync().OnSettle(
                  // fargolint: allow(capture-this) the Core owns its Wal and outlives the cleared event queue
                  [this, commit_dest, txn, epoch](sim::Future<sim::Unit>) {
                    if (!core_.alive_ || core_.restart_epoch_ != epoch) return;
                    core_.SendMoveAck(commit_dest, txn);
                  });
              FinishRecovery(remaining, began);
              return;
            } else {
              // The destination never installed it: the move is off, the
              // staged image is the complet.
              const std::vector<std::uint8_t> stream = open->second.stream;
              AppendAbort(txn);
              core_.movement().ReinstallFromStream(stream);
            }
            Sync();
            FinishRecovery(remaining, began);
            return;
          }
        }
        if (attempt + 1 < kMaxInDoubtAttempts) {
          core_.scheduler().ScheduleAfter(
              Millis(250) * (attempt + 1),
              // fargolint: allow(capture-this) the Core owns its Wal and outlives the cleared event queue
              [this, txn, attempt, remaining, began, epoch] {
                if (!core_.alive_ || core_.restart_epoch_ != epoch) return;
                QueryInDoubt(txn, attempt + 1, remaining, began);
              });
          return;
        }
        LogWarn() << core_.name() << ": move txn " << txn
                  << " still in doubt after " << kMaxInDoubtAttempts
                  << " queries to core " << open->second.dest.value
                  << "; leaving it open (pins the wal, complet unavailable)";
        FinishRecovery(remaining, began);
      });
}

void Wal::FinishRecovery(const std::shared_ptr<std::size_t>& remaining,
                         SimTime began) {
  if (*remaining == 0) return;
  if (--*remaining == 0)
    recovery_time_->Observe(
        static_cast<double>(core_.scheduler().Now() - began));
}

std::uint64_t Wal::durable_records() const {
  return storage_.DurableCount(name_);
}

std::uint64_t Wal::durable_bytes() const {
  return storage_.DurableBytes(name_);
}

}  // namespace fargo::core
