#include "src/core/ref.h"

#include "src/core/core.h"
#include "src/core/invocation.h"
#include "src/serial/graph.h"

namespace fargo::core {

ComletRefBase::ComletRefBase(const ComletRefBase& other)
    : core_(other.core_),
      handle_(other.handle_),
      meta_(other.meta_),
      owner_(other.owner_) {
  AddTrackerRef();
}

// Moves re-register the new address with the Core's live-reference set, so
// they are implemented as copy + release of the source.
ComletRefBase::ComletRefBase(ComletRefBase&& other) noexcept
    : ComletRefBase(static_cast<const ComletRefBase&>(other)) {
  other.Reset();
}

ComletRefBase& ComletRefBase::operator=(const ComletRefBase& other) {
  if (this == &other) return *this;
  DropTrackerRef();
  core_ = other.core_;
  handle_ = other.handle_;
  meta_ = other.meta_;
  owner_ = other.owner_;
  AddTrackerRef();
  return *this;
}

ComletRefBase& ComletRefBase::operator=(ComletRefBase&& other) noexcept {
  if (this == &other) return *this;
  *this = static_cast<const ComletRefBase&>(other);
  other.Reset();
  return *this;
}

ComletRefBase::~ComletRefBase() { DropTrackerRef(); }

void ComletRefBase::Reset() {
  DropTrackerRef();
  core_ = nullptr;
  handle_ = ComletHandle{};
  meta_.reset();
  owner_ = ComletId{};
}

Value ComletRefBase::Call(std::string_view method,
                          std::vector<Value> args) const {
  if (!bound()) throw FargoError("call through an unbound complet reference");
  // Application profiling (§4.1): count the invocation on the reference and
  // in the Core's per-pair counters.
  meta_->RecordInvocation();
  core_->RecordInvocation(owner_, handle_.id);
  InvokeResult result =
      core_->invocation().Invoke(handle_, method, std::move(args));
  return std::move(result.value);
}

sim::Future<Value> ComletRefBase::CallAsync(std::string_view method,
                                            std::vector<Value> args) const {
  if (!bound()) throw FargoError("call through an unbound complet reference");
  meta_->RecordInvocation();
  core_->RecordInvocation(owner_, handle_.id);
  return core_->invocation()
      .InvokeAsync(handle_, method, std::move(args))
      .Then([](InvokeResult& result) { return std::move(result.value); });
}

void ComletRefBase::Post(std::string_view method,
                         std::vector<Value> args) const {
  if (!bound()) throw FargoError("post through an unbound complet reference");
  meta_->RecordInvocation();
  core_->RecordInvocation(owner_, handle_.id);
  core_->invocation().Post(handle_, method, std::move(args));
}

void ComletRefBase::Bind(Core& core, ComletHandle handle,
                         std::shared_ptr<MetaRef> meta, ComletId owner) {
  DropTrackerRef();
  core_ = &core;
  handle_ = std::move(handle);
  meta_ = meta ? std::move(meta) : std::make_shared<MetaRef>(handle_.id);
  owner_ = owner;
  // One tracker per target complet per Core, shared by all local stubs.
  // Latent references (no target yet) have nothing to track.
  if (handle_.id.valid()) {
    core_->trackers().Ensure(handle_);
    AddTrackerRef();
  }
}

void ComletRefBase::AddTrackerRef() {
  if (core_ != nullptr && handle_.id.valid()) {
    core_->trackers().AddStubRef(handle_.id);
    core_->RegisterRef(this);
  }
}

void ComletRefBase::DropTrackerRef() {
  if (core_ != nullptr && handle_.id.valid()) {
    core_->trackers().DropStubRef(handle_.id);
    core_->UnregisterRef(this);
  }
}

void ComletRefBase::SerializeTo(serial::GraphWriter& w) const {
  // The stub records whether it carries anything: a bound target, or a
  // "latent" typed reference (e.g. a stamp that found no local equivalent
  // at the last site but should re-attempt at the next one). Only those go
  // through the context's marshaling hook.
  const bool latent = meta_ != nullptr && !handle_.anchor_type.empty();
  w.raw().WriteBool(bound() || latent);
  if (bound() || latent) w.OnComletRef(this);
}

void ComletRefBase::DeserializeFrom(serial::GraphReader& r) {
  if (!r.raw().ReadBool()) {
    Reset();
    return;
  }
  r.OnComletRef(this);
}

}  // namespace fargo::core
