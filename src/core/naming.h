// Naming service (Fig 1): maps logical names to complet handles, per Core.
// Cross-Core lookups go through the network (Core::LookupAt).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace fargo::core {

// fargo: domain(core)
class Naming {
 public:
  /// Binds (or rebinds) a logical name to a complet.
  void Bind(std::string name, ComletHandle handle);

  void Unbind(const std::string& name);

  std::optional<ComletHandle> Lookup(const std::string& name) const;

  /// All bound names, sorted (shell `names` command).
  std::vector<std::pair<std::string, ComletHandle>> All() const;

  std::size_t size() const { return bindings_.size(); }

  /// Drops every binding (Core restart).
  void Clear() { bindings_.clear(); }

 private:
  std::map<std::string, ComletHandle> bindings_;
};

}  // namespace fargo::core
