#include "src/core/directory.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/core/core.h"
#include "src/core/runtime.h"
#include "src/core/shard_map.h"
#include "src/core/tracker.h"
#include "src/core/wal.h"
#include "src/net/formation.h"

namespace fargo::core {

DirectoryMode Directory::mode() const {
  return core_.runtime().directory_mode();
}

CoreId Directory::OwnerOf(ComletId id) const {
  switch (mode()) {
    case DirectoryMode::kDisabled:
      return CoreId{};
    case DirectoryMode::kOrigin:
      // The 1-shard-per-origin configuration: every complet's home shard is
      // its origin Core — exactly the legacy home registry (§7).
      return id.origin;
    case DirectoryMode::kSharded: {
      const ShardMap& map = core_.runtime().shard_map();
      return map.valid() ? map.OwnerOf(id) : CoreId{};
    }
  }
  return CoreId{};
}

void Directory::Publish(ComletId id, CoreId location, std::uint64_t epoch) {
  if (!id.valid()) return;
  const CoreId owner = OwnerOf(id);
  if (!owner.valid()) return;
  core_.inst_.dir_publishes->Inc();
  const SimTime now = core_.scheduler().Now();
  if (owner == core_.id()) {
    ApplyPublish(id, location, epoch, now, core_.id());
    return;
  }
  wire::DirectoryPublish p{id, location, epoch, now, core_.tracer().Current()};
  net::Message msg;
  msg.from = core_.id();
  msg.to = owner;
  msg.kind = net::MessageKind::kDirectoryPublish;
  msg.payload = wire::EncodeDirectoryPublish(p);
  // One-way, idempotent by epoch merge; rides the priority lane so a
  // publish racing the first lookup for the same complet is not delayed
  // behind a bulk frame.
  core_.formation().Enqueue(std::move(msg), net::Formation::Lane::kPriority);
}

sim::Future<wire::DirectoryHint> Directory::LookupAsync(ComletId id) {
  if (!id.valid())
    return sim::MakeReadyFuture(core_.scheduler(), wire::DirectoryHint{});
  const CoreId owner = OwnerOf(id);
  if (!owner.valid())
    return sim::MakeReadyFuture(core_.scheduler(), wire::DirectoryHint{});
  core_.inst_.dir_lookups->Inc();
  if (owner == core_.id())
    return sim::MakeReadyFuture(core_.scheduler(), LocalHint(id));
  wire::DirectoryLookup q{id, core_.tracer().Current()};
  return core_
      .SendAsync(owner, net::MessageKind::kDirectoryLookup,
                 wire::EncodeDirectoryLookup(q))
      .Then([](std::vector<std::uint8_t>& reply) {
        serial::Reader r(reply);
        wire::CheckOk(r);
        return wire::ReadDirectoryHint(r);
      });
}

wire::DirectoryHint Directory::LocalHint(ComletId id) {
  auto it = store_.find(id);
  if (core_.repository().Contains(id)) {
    // Prefer live hosting knowledge: the shard owner itself hosts the
    // complet right now, whatever the stored record says.
    std::uint64_t epoch = it != store_.end() ? it->second.epoch : 0;
    if (const TrackerEntry* e = core_.trackers().Find(id))
      epoch = std::max(epoch, e->hint_epoch);
    return wire::DirectoryHint{true, core_.id(), epoch};
  }
  if (it == store_.end()) return wire::DirectoryHint{};
  return wire::DirectoryHint{true, it->second.location, it->second.epoch};
}

void Directory::HandlePublish(const net::Message& msg) {
  wire::DirectoryPublish p = wire::DecodeDirectoryPublish(msg.payload);
  if (p.trace.valid())
    core_.tracer().RecordInstant(monitor::SpanKind::kControl, "dir_publish",
                                 p.trace, core_.scheduler().Now());
  ApplyPublish(p.comlet, p.location, p.epoch, p.as_of, msg.from);
}

void Directory::HandleLookup(const net::Message& msg) {
  wire::DirectoryLookup q = wire::DecodeDirectoryLookup(msg.payload);
  if (q.trace.valid())
    core_.tracer().RecordInstant(monitor::SpanKind::kControl, "dir_lookup",
                                 q.trace, core_.scheduler().Now());
  serial::Writer w;
  wire::WriteOk(w);
  wire::WriteDirectoryHint(w, LocalHint(q.comlet));
  core_.Reply(msg.from, net::MessageKind::kDirectoryReply, msg.correlation,
              w.Take());
}

void Directory::HandleMap(const net::Message& msg) {
  serial::Reader r(msg.payload);
  ShardMap map = ReadShardMap(r);
  if (core_.runtime().AdoptShardMap(map))
    LogInfo() << "core " << core_.name() << " adopted shard map v"
              << map.version << " (" << map.shard_count() << " shards)";
}

void Directory::BroadcastMap() {
  const ShardMap& map = core_.runtime().shard_map();
  if (!map.valid()) return;
  for (Core* peer : core_.runtime().Cores()) {
    if (peer == &core_ || !peer->alive()) continue;
    serial::Writer w;
    WriteShardMap(w, map);
    net::Message msg;
    msg.from = core_.id();
    msg.to = peer->id();
    msg.kind = net::MessageKind::kDirectoryMap;
    msg.payload = w.Take();
    core_.formation().Enqueue(std::move(msg), net::Formation::Lane::kPriority);
  }
}

void Directory::ApplyPublish(ComletId id, CoreId location, std::uint64_t epoch,
                             SimTime as_of, CoreId publisher) {
  auto it = store_.find(id);
  bool changed = false;
  if (epoch == 0) {
    // Host assertion: the publisher provably hosts the complet but lost its
    // stamp (crash recovery, rollback reinstall). Hosting is ground truth —
    // keep the stored epoch when it already points there, supersede it
    // otherwise — and echo the authoritative stamp back.
    if (it == store_.end()) {
      it = store_.emplace(id, DirEntry{location, 1, as_of}).first;
      changed = true;
    } else if (it->second.location == location) {
      it->second.as_of = std::max(it->second.as_of, as_of);
    } else {
      it->second = DirEntry{location, it->second.epoch + 1, as_of};
      changed = true;
    }
    if (publisher == core_.id()) {
      core_.trackers().Stamp(id, it->second.epoch);
    } else {
      EchoStamp(id, it->second, publisher);
    }
  } else {
    if (it == store_.end()) {
      store_.emplace(id, DirEntry{location, epoch, as_of});
      changed = true;
    } else if (epoch > it->second.epoch) {
      it->second = DirEntry{location, epoch, as_of};
      changed = true;
    } else if (epoch == it->second.epoch && location == it->second.location) {
      it->second.as_of = std::max(it->second.as_of, as_of);
    } else {
      // Out-of-order publish from an older view of the world: the stored
      // stamp is newer (or equally new but elsewhere — a lost-reply retry
      // ambiguity, where the installed copy keeps winning). Ignore it.
      core_.inst_.dir_hint_stale->Inc();
      return;
    }
  }
  if (changed && core_.wal_ && !core_.wal_->replaying()) {
    const DirEntry& cur = store_[id];
    core_.wal_->AppendDirPublish(id, cur.location, cur.epoch, cur.as_of);
    core_.wal_->LazySync();
  }
}

void Directory::EchoStamp(ComletId id, const DirEntry& entry, CoreId to) {
  // kTrackerUpdate with an empty anchor type: the receiver's entry already
  // knows its type, and Stamp/MergeHint never clobber a non-empty one.
  serial::Writer w;
  wire::WriteComletId(w, id);
  wire::WriteCoreId(w, entry.location);
  w.WriteString(std::string());
  w.WriteVarint(entry.epoch);
  net::Message msg;
  msg.from = core_.id();
  msg.to = to;
  msg.kind = net::MessageKind::kTrackerUpdate;
  msg.payload = w.Take();
  core_.formation().Enqueue(std::move(msg), net::Formation::Lane::kPriority);
}

void Directory::ApplyFromWal(ComletId id, CoreId location, std::uint64_t epoch,
                             SimTime as_of) {
  auto it = store_.find(id);
  if (it == store_.end()) {
    store_.emplace(id, DirEntry{location, epoch, as_of});
    return;
  }
  // Replay folds records newest-wins by epoch (then by observation time,
  // for assertion refreshes logged at the same stamp).
  if (epoch > it->second.epoch ||
      (epoch == it->second.epoch && as_of > it->second.as_of)) {
    it->second = DirEntry{location, epoch, as_of};
  }
}

}  // namespace fargo::core
