// Wire-format helpers shared by the invocation, movement, naming and event
// protocols (the Peer Interface payloads of Fig 1).
#pragma once

#include <vector>

#include "src/common/ids.h"
#include "src/common/value.h"
#include "src/serial/bytes.h"

namespace fargo::core::wire {

inline void WriteCoreId(serial::Writer& w, CoreId id) {
  w.WriteVarint(id.value);
}
inline CoreId ReadCoreId(serial::Reader& r) {
  return CoreId{static_cast<std::uint32_t>(r.ReadVarint())};
}

inline void WriteComletId(serial::Writer& w, ComletId id) {
  WriteCoreId(w, id.origin);
  w.WriteVarint(id.seq);
}
inline ComletId ReadComletId(serial::Reader& r) {
  ComletId id;
  id.origin = ReadCoreId(r);
  id.seq = r.ReadVarint();
  return id;
}

inline void WriteHandle(serial::Writer& w, const ComletHandle& h) {
  WriteComletId(w, h.id);
  WriteCoreId(w, h.last_known);
  w.WriteString(h.anchor_type);
}
inline ComletHandle ReadHandle(serial::Reader& r) {
  ComletHandle h;
  h.id = ReadComletId(r);
  h.last_known = ReadCoreId(r);
  h.anchor_type = r.ReadString();
  return h;
}

inline void WriteCoreList(serial::Writer& w, const std::vector<CoreId>& ids) {
  w.WriteVarint(ids.size());
  for (CoreId id : ids) WriteCoreId(w, id);
}
inline std::vector<CoreId> ReadCoreList(serial::Reader& r) {
  std::uint64_t n = r.ReadVarint();
  std::vector<CoreId> ids;
  ids.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) ids.push_back(ReadCoreId(r));
  return ids;
}

inline void WriteComletList(serial::Writer& w,
                            const std::vector<ComletId>& ids) {
  w.WriteVarint(ids.size());
  for (ComletId id : ids) WriteComletId(w, id);
}
inline std::vector<ComletId> ReadComletList(serial::Reader& r) {
  std::uint64_t n = r.ReadVarint();
  std::vector<ComletId> ids;
  ids.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) ids.push_back(ReadComletId(r));
  return ids;
}

/// Standard reply preamble: ok flag, then an error message when not ok.
inline void WriteOk(serial::Writer& w) { w.WriteBool(true); }
inline void WriteError(serial::Writer& w, const std::string& message) {
  w.WriteBool(false);
  w.WriteString(message);
}
/// Reads the preamble; throws FargoError when the reply carries an error.
inline void CheckOk(serial::Reader& r) {
  if (!r.ReadBool()) throw FargoError(r.ReadString());
}

}  // namespace fargo::core::wire
