// Wire-format helpers shared by the invocation, movement, naming and event
// protocols (the Peer Interface payloads of Fig 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/common/value.h"
#include "src/serial/bytes.h"
#include "src/serial/value_codec.h"

namespace fargo::core::wire {

// ==== causal tracing =========================================================

/// Causal trace context carried by protocol payloads. A trace is minted at
/// a root invocation and flows through forwarding hops, retries (same
/// trace, new span, retry tag), movement streams and heartbeat traffic, so
/// every message of one causal chain shares a trace id.
struct TraceContext {
  std::uint64_t trace_id = 0;     ///< 0 = no trace (tracing off / old peer)
  std::uint64_t span_id = 0;      ///< span that emitted this message
  std::uint64_t parent_span = 0;  ///< 0 = root span of the trace
  std::uint32_t retry = 0;        ///< retry ordinal of the emitting attempt

  bool valid() const { return trace_id != 0; }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// Marker byte opening a trace tail. Trace fields are appended at the END
/// of a payload, behind everything a pre-tracing decoder reads, so old
/// encoders interoperate both ways: a payload without the tail decodes to
/// an invalid (all-zero) context, and a decoder that does not know about
/// the tail simply never reads it.
inline constexpr std::uint8_t kTraceTailMarker = 0x54;  // 'T'

inline void WriteTraceTail(serial::Writer& w, const TraceContext& t) {
  if (!t.valid()) return;  // byte-identical to the pre-tracing format
  w.WriteU8(kTraceTailMarker);
  w.WriteVarint(t.trace_id);
  w.WriteVarint(t.span_id);
  w.WriteVarint(t.parent_span);
  w.WriteVarint(t.retry);
}

/// Reads a trace tail if one follows; returns an invalid context for
/// old-format payloads (reader already at the end).
inline TraceContext ReadTraceTail(serial::Reader& r) {
  if (r.AtEnd()) return TraceContext{};
  if (r.ReadU8() != kTraceTailMarker)
    throw serial::SerialError("corrupt trace tail marker");
  TraceContext t;
  t.trace_id = r.ReadVarint();
  t.span_id = r.ReadVarint();
  t.parent_span = r.ReadVarint();
  t.retry = static_cast<std::uint32_t>(r.ReadVarint());
  return t;
}

inline void WriteCoreId(serial::Writer& w, CoreId id) {
  w.WriteVarint(id.value);
}
inline CoreId ReadCoreId(serial::Reader& r) {
  return CoreId{static_cast<std::uint32_t>(r.ReadVarint())};
}

inline void WriteComletId(serial::Writer& w, ComletId id) {
  WriteCoreId(w, id.origin);
  w.WriteVarint(id.seq);
}
inline ComletId ReadComletId(serial::Reader& r) {
  ComletId id;
  id.origin = ReadCoreId(r);
  id.seq = r.ReadVarint();
  return id;
}

inline void WriteHandle(serial::Writer& w, const ComletHandle& h) {
  WriteComletId(w, h.id);
  WriteCoreId(w, h.last_known);
  w.WriteString(h.anchor_type);
}
inline ComletHandle ReadHandle(serial::Reader& r) {
  ComletHandle h;
  h.id = ReadComletId(r);
  h.last_known = ReadCoreId(r);
  h.anchor_type = r.ReadString();
  return h;
}

inline void WriteCoreList(serial::Writer& w, const std::vector<CoreId>& ids) {
  w.WriteVarint(ids.size());
  for (CoreId id : ids) WriteCoreId(w, id);
}
inline std::vector<CoreId> ReadCoreList(serial::Reader& r) {
  std::uint64_t n = r.ReadVarint();
  // Every encoded id occupies at least one byte, so a declared count past
  // the remaining payload is corrupt; reject it before reserve() turns an
  // attacker-controlled length into a giant allocation.
  if (n > r.remaining()) throw serial::SerialError("corrupt core-list length");
  std::vector<CoreId> ids;
  ids.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) ids.push_back(ReadCoreId(r));
  return ids;
}

inline void WriteComletList(serial::Writer& w,
                            const std::vector<ComletId>& ids) {
  w.WriteVarint(ids.size());
  for (ComletId id : ids) WriteComletId(w, id);
}
inline std::vector<ComletId> ReadComletList(serial::Reader& r) {
  std::uint64_t n = r.ReadVarint();
  if (n > r.remaining()) throw serial::SerialError("corrupt comlet-list length");
  std::vector<ComletId> ids;
  ids.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) ids.push_back(ReadComletId(r));
  return ids;
}

/// An invocation request as it travels the wire (kInvokeRequest payload).
/// Forwarding hops rewrite `handle.last_known` to their own next hop,
/// append themselves to `path`, and re-parent `trace`.
struct InvokeRequest {
  ComletHandle handle;
  std::string method;
  std::vector<Value> args;
  CoreId origin;
  std::vector<CoreId> path;  ///< Cores that forwarded this request so far
  bool oneway = false;       ///< fire-and-forget: the executor never replies
  /// Directory epoch of the location knowledge `handle.last_known` was
  /// routed by (0 = unstamped/legacy). A forwarding Core only chains along
  /// its own tracker hint when that hint is strictly newer; otherwise it
  /// asks the home shard and re-stamps (bounded-hop routing).
  std::uint64_t hint_epoch = 0;
  TraceContext trace;

  friend bool operator==(const InvokeRequest&, const InvokeRequest&) = default;
};

// fargolint: allow(wire-asymmetry) anchor_type only feeds the Reserve size hint; the field itself travels via WriteHandle/ReadHandle
inline std::vector<std::uint8_t> EncodeInvokeRequest(const InvokeRequest& rq) {
  serial::Writer w;
  // Size hint: fixed fields plus a small per-arg/per-hop allowance. Large
  // value arguments fall back to the Writer's doubling growth.
  w.Reserve(48 + rq.handle.anchor_type.size() + rq.method.size() +
            16 * rq.args.size() + 8 * rq.path.size());
  WriteHandle(w, rq.handle);
  w.WriteString(rq.method);
  serial::WriteValues(w, rq.args);
  WriteCoreId(w, rq.origin);
  WriteCoreList(w, rq.path);
  w.WriteBool(rq.oneway);
  w.WriteVarint(rq.hint_epoch);
  WriteTraceTail(w, rq.trace);
  return w.Take();
}

inline InvokeRequest DecodeInvokeRequest(
    const std::vector<std::uint8_t>& payload) {
  serial::Reader r(payload);
  InvokeRequest rq;
  rq.handle = ReadHandle(r);
  rq.method = r.ReadString();
  rq.args = serial::ReadValues(r);
  rq.origin = ReadCoreId(r);
  rq.path = ReadCoreList(r);
  rq.oneway = r.ReadBool();
  rq.hint_epoch = r.ReadVarint();
  rq.trace = ReadTraceTail(r);
  return rq;
}

// ==== directory plane ========================================================

/// One-way location publish to a home shard (kDirectoryPublish payload).
/// `epoch == 0` is a host *assertion* ("I verifiably host this; re-stamp
/// me"): the shard keeps or bumps its stored epoch and echoes the
/// authoritative stamp back to the publisher as a kTrackerUpdate.
struct DirectoryPublish {
  ComletId comlet;
  CoreId location;
  std::uint64_t epoch = 0;
  SimTime as_of = 0;
  TraceContext trace;

  friend bool operator==(const DirectoryPublish&,
                         const DirectoryPublish&) = default;
};

inline std::vector<std::uint8_t> EncodeDirectoryPublish(
    const DirectoryPublish& p) {
  serial::Writer w;
  WriteComletId(w, p.comlet);
  WriteCoreId(w, p.location);
  w.WriteVarint(p.epoch);
  w.WriteVarint(static_cast<std::uint64_t>(p.as_of));
  WriteTraceTail(w, p.trace);
  return w.Take();
}
inline DirectoryPublish DecodeDirectoryPublish(
    const std::vector<std::uint8_t>& payload) {
  serial::Reader r(payload);
  DirectoryPublish p;
  p.comlet = ReadComletId(r);
  p.location = ReadCoreId(r);
  p.epoch = r.ReadVarint();
  p.as_of = static_cast<SimTime>(r.ReadVarint());
  p.trace = ReadTraceTail(r);
  return p;
}

/// Shard lookup request (kDirectoryLookup payload; answered with
/// kDirectoryReply = ok preamble + DirectoryHint).
struct DirectoryLookup {
  ComletId comlet;
  TraceContext trace;

  friend bool operator==(const DirectoryLookup&,
                         const DirectoryLookup&) = default;
};

inline std::vector<std::uint8_t> EncodeDirectoryLookup(
    const DirectoryLookup& q) {
  serial::Writer w;
  WriteComletId(w, q.comlet);
  WriteTraceTail(w, q.trace);
  return w.Take();
}
inline DirectoryLookup DecodeDirectoryLookup(
    const std::vector<std::uint8_t>& payload) {
  serial::Reader r(payload);
  DirectoryLookup q;
  q.comlet = ReadComletId(r);
  q.trace = ReadTraceTail(r);
  return q;
}

/// An epoch-stamped location hint: the shard's current knowledge, or
/// found = false when the shard has never heard of the complet.
struct DirectoryHint {
  bool found = false;
  CoreId location;
  std::uint64_t epoch = 0;

  friend bool operator==(const DirectoryHint&, const DirectoryHint&) = default;
};

inline void WriteDirectoryHint(serial::Writer& w, const DirectoryHint& h) {
  w.WriteBool(h.found);
  WriteCoreId(w, h.location);
  w.WriteVarint(h.epoch);
}
inline DirectoryHint ReadDirectoryHint(serial::Reader& r) {
  DirectoryHint h;
  h.found = r.ReadBool();
  h.location = ReadCoreId(r);
  h.epoch = r.ReadVarint();
  return h;
}

/// Standard reply preamble: ok flag, then an error message when not ok.
inline void WriteOk(serial::Writer& w) { w.WriteBool(true); }
inline void WriteError(serial::Writer& w, const std::string& message) {
  w.WriteBool(false);
  w.WriteString(message);
}
/// Reads the preamble; throws FargoError when the reply carries an error.
inline void CheckOk(serial::Reader& r) {
  if (!r.ReadBool()) throw FargoError(r.ReadString());
}

}  // namespace fargo::core::wire
