// Versioned consistent-hash ring mapping complets onto directory home
// shards (docs/PROTOCOL.md §Directory). The map is plain data: it is
// built once, broadcast as a kDirectoryMap payload, and adopted with a
// simple higher-version-wins rule — no coordination protocol.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "src/common/ids.h"
#include "src/serial/bytes.h"

namespace fargo::core {

/// Deterministic 64-bit mixer (the splitmix64 finalizer). std::hash is
/// implementation-defined, and ring positions feed benchgate-gated
/// message counts, so gcc and clang must agree on every bit.
inline std::uint64_t MixU64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Ring hash of a complet id. Mixes origin and sequence separately so
/// complets minted by one Core still spread over the whole ring.
inline std::uint64_t RingHash(ComletId id) {
  return MixU64(MixU64(id.origin.value) ^ id.seq);
}

/// Consistent-hash ring over N home shards. Each shard index owns
/// `vnodes` points on a 64-bit ring; a complet belongs to the first
/// point clockwise from its own hash. Points are derived from the shard
/// *index*, not the owner identity, so replacing a crashed owner Core
/// re-homes nothing else.
// fargo: domain(core)
struct ShardMap {
  std::uint64_t version = 0;   ///< 0 = no map installed (plane disabled)
  std::vector<CoreId> owners;  ///< shard index -> owning Core
  std::uint32_t vnodes = 16;   ///< ring points per shard

  bool valid() const { return version != 0 && !owners.empty(); }
  std::size_t shard_count() const { return owners.size(); }

  /// Rebuilds the sorted ring from (owners.size(), vnodes). Must be
  /// called after mutating `owners`/`vnodes`; ReadShardMap does it.
  void Build() {
    ring_.clear();
    ring_.reserve(owners.size() * vnodes);
    for (std::uint32_t s = 0; s < owners.size(); ++s) {
      for (std::uint32_t v = 0; v < vnodes; ++v) {
        ring_.emplace_back(
            MixU64((static_cast<std::uint64_t>(s) << 32) | (v + 1)), s);
      }
    }
    std::sort(ring_.begin(), ring_.end());
  }

  /// Shard index owning `id`. Requires a built, non-empty ring.
  std::uint32_t ShardOf(ComletId id) const {
    auto it = std::upper_bound(
        ring_.begin(), ring_.end(),
        std::make_pair(RingHash(id),
                       std::numeric_limits<std::uint32_t>::max()));
    if (it == ring_.end()) it = ring_.begin();  // wrap around
    return it->second;
  }

  /// Core owning `id`'s home shard.
  CoreId OwnerOf(ComletId id) const { return owners[ShardOf(id)]; }

  friend bool operator==(const ShardMap& a, const ShardMap& b) {
    return a.version == b.version && a.owners == b.owners &&
           a.vnodes == b.vnodes;
  }

 private:
  /// (ring position, shard index), sorted. Derived from owners/vnodes.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

inline ShardMap MakeShardMap(std::uint64_t version,
                             std::vector<CoreId> owners,
                             std::uint32_t vnodes = 16) {
  ShardMap m;
  m.version = version;
  m.owners = std::move(owners);
  m.vnodes = vnodes;
  m.Build();
  return m;
}

inline void WriteShardMap(serial::Writer& w, const ShardMap& m) {
  w.WriteVarint(m.version);
  w.WriteVarint(m.vnodes);
  w.WriteVarint(m.owners.size());
  for (CoreId owner : m.owners) w.WriteVarint(owner.value);
}

inline ShardMap ReadShardMap(serial::Reader& r) {
  ShardMap m;
  m.version = r.ReadVarint();
  m.vnodes = static_cast<std::uint32_t>(r.ReadVarint());
  std::uint64_t n = r.ReadVarint();
  // Each owner id is at least one wire byte; a longer claim is corrupt.
  if (n > r.remaining())
    throw serial::SerialError("corrupt shard-map owner count");
  m.owners.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    CoreId owner;
    owner.value = static_cast<std::uint32_t>(r.ReadVarint());
    m.owners.push_back(owner);
  }
  m.Build();
  return m;
}

}  // namespace fargo::core
