#include "src/core/invocation.h"

#include <algorithm>

#include "src/common/log.h"
#include "src/core/wire.h"
#include "src/serial/value_codec.h"

namespace fargo::core {

InvokeResult InvocationUnit::Invoke(const ComletHandle& handle,
                                    std::string_view method,
                                    std::vector<Value> args) {
  try {
    return DoInvoke(handle, method, args);
  } catch (const UnreachableError&) {
    // The chain is severed. With the home registry (§7 future work), ask
    // the target's home Core for a fresh route and retry once.
    TrackerEntry* entry = core_.trackers().Find(handle.id);
    if (entry != nullptr && entry->is_local()) throw;  // can't improve
    CoreId home_route;
    try {
      home_route = core_.LocateViaHome(handle.id);
    } catch (const std::exception&) {
      throw UnreachableError("home registry of " + ToString(handle.id) +
                             " is unreachable too");
    }
    if (!home_route.valid() || home_route == core_.id()) throw;
    if (entry != nullptr && !entry->is_local() && entry->next == home_route)
      throw;  // home has no better route than what just failed
    core_.trackers().SetForward(handle.id, home_route, handle.anchor_type);
    return DoInvoke(handle, method, args);
  }
}

void InvocationUnit::Post(const ComletHandle& handle, std::string_view method,
                          std::vector<Value> args) {
  TrackerEntry& entry = core_.trackers().Ensure(handle);
  if (entry.is_local()) {
    // Asynchronous even locally: dispatched as a scheduled task, like the
    // paper's per-invocation thread.
    core_.scheduler().ScheduleAfter(
        0, [this, id = handle.id, method = std::string(method),
            args = std::move(args)] {
          core_.inst_.execs->Inc();
          try {
            core_.DispatchLocal(id, method, args);
          } catch (const std::exception& e) {
            LogWarn() << "one-way invocation of " << method << " failed: "
                      << e.what();
          }
        });
    return;
  }
  if (!entry.next.valid() || entry.next == core_.id()) {
    LogWarn() << "one-way invocation dropped: no route to "
              << ToString(handle.id);
    return;
  }
  wire::InvokeRequest rq{handle, std::string(method), std::move(args),
                         core_.id(), {}, core_.tracer().Current()};
  rq.handle.last_known = entry.next;
  ++entry.forwarded;
  net::Message msg;
  msg.from = core_.id();
  msg.to = entry.next;
  msg.kind = net::MessageKind::kInvokeRequest;
  msg.correlation = core_.NextCorrelation();  // reply will find no waiter
  msg.payload = wire::EncodeInvokeRequest(rq);
  core_.network().Send(std::move(msg));
}

InvokeResult InvocationUnit::DoInvoke(const ComletHandle& handle,
                                      std::string_view method,
                                      const std::vector<Value>& args) {
  monitor::Tracer& tracer = core_.tracer();
  sim::Scheduler& sched = core_.scheduler();
  const SimTime begin = sched.Now();
  // The trace root: a fresh trace at top level, a child span when this
  // invocation runs inside another traced execution (ambient context).
  monitor::Tracer::Opened root = tracer.OpenSpan(
      monitor::SpanKind::kRoot, method, tracer.Current(), begin);
  monitor::SpanOutcome fail_outcome = monitor::SpanOutcome::kTransportError;
  try {
    InvokeResult res =
        DoInvokeRouted(handle, method, args, root.ctx, fail_outcome);
    const SimTime now = sched.Now();
    tracer.CloseSpan(root.token, now, monitor::SpanOutcome::kOk, res.hops);
    core_.inst_.invocations->Inc();
    core_.inst_.invoke_latency->Observe(static_cast<double>(now - begin));
    core_.inst_.invoke_hops->Observe(static_cast<double>(res.hops));
    return res;
  } catch (const UnreachableError&) {
    core_.inst_.invoke_errors->Inc();
    tracer.CloseSpan(root.token, sched.Now(), fail_outcome);
    throw;
  } catch (const std::exception&) {
    core_.inst_.invoke_errors->Inc();
    tracer.CloseSpan(root.token, sched.Now(), monitor::SpanOutcome::kAppError);
    throw;
  }
}

InvokeResult InvocationUnit::DoInvokeRouted(const ComletHandle& handle,
                                            std::string_view method,
                                            const std::vector<Value>& args,
                                            const wire::TraceContext& root,
                                            monitor::SpanOutcome& fail_outcome) {
  sim::Scheduler& sched = core_.scheduler();
  TrackerEntry* entry = &core_.trackers().Ensure(handle);

  // Fast path: the single extra indirection of the stub/tracker split —
  // target hosted here means a plain local dispatch.
  if (entry->is_local()) {
    core_.inst_.execs->Inc();
    monitor::TraceScope scope(core_.tracer(), root);
    Value v = core_.DispatchLocal(handle.id, method, args);
    return InvokeResult{std::move(v), core_.id(), 0};
  }

  // The target may be in transit *to us*; wait for it to land.
  if (!entry->next.valid() || entry->next == core_.id()) {
    const SimTime deadline = sched.Now() + core_.rpc_timeout();
    bool settled = sched.RunUntilOr(
        [&] {
          entry = core_.trackers().Find(handle.id);
          return entry != nullptr &&
                 (entry->is_local() ||
                  (entry->next.valid() && entry->next != core_.id()));
        },
        deadline);
    if (!settled)
      throw UnreachableError("invocation target " + ToString(handle.id) +
                             " unreachable from " + ToString(core_.id()));
    if (entry->is_local()) {
      core_.inst_.execs->Inc();
      monitor::TraceScope scope(core_.tracer(), root);
      Value v = core_.DispatchLocal(handle.id, method, args);
      return InvokeResult{std::move(v), core_.id(), 0};
    }
  }

  // Remote: forward along the tracker chain and await the reply. On a
  // retry-safe failure (timeout, or a transport-flagged error reply — both
  // mean the method never executed) the request is resent with the SAME
  // correlation, so any executor that does see both copies recognizes the
  // duplicate and answers from its dedup cache instead of re-executing.
  const RetryPolicy& policy = core_.retry_policy();
  const int max_attempts = std::max(1, policy.max_attempts);
  const std::uint64_t corr = core_.NextCorrelation();
  waiters_.try_emplace(corr);

  Waiter result;
  bool done = false;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    // The first attempt travels as the root span; each resend travels as a
    // fresh child span tagged with its retry ordinal.
    wire::TraceContext attempt_ctx = root;
    if (attempt > 1) {
      ++core_.rpc_retries_;
      core_.inst_.retries->Inc();
      attempt_ctx = core_.tracer()
                        .RecordInstant(monitor::SpanKind::kRetry, method, root,
                                       sched.Now(),
                                       static_cast<std::uint32_t>(attempt - 1))
                        .ctx;
      waiters_[corr] = Waiter{};  // clear any stale reply state
      // Re-resolve the route: the target may have moved between attempts —
      // possibly to this very Core, in which case the retry loops back
      // through our own dedup-checked handler rather than re-dispatching
      // locally (an earlier attempt may already have executed elsewhere).
      entry = core_.trackers().Find(handle.id);
      if (entry == nullptr) entry = &core_.trackers().Ensure(handle);
    }
    const CoreId next = (!entry->is_local() && entry->next.valid() &&
                         entry->next != core_.id())
                            ? entry->next
                            : core_.id();
    wire::InvokeRequest rq{handle, std::string(method), args,
                           core_.id(),  {},        attempt_ctx};
    // Route by our tracker's knowledge, not the stub's stale hint, so the
    // next hop parks rather than bouncing the request back at us.
    rq.handle.last_known = next;
    if (next != core_.id()) ++entry->forwarded;

    net::Message msg;
    msg.from = core_.id();
    msg.to = next;
    msg.kind = net::MessageKind::kInvokeRequest;
    msg.correlation = corr;
    msg.payload = wire::EncodeInvokeRequest(rq);
    core_.network().Send(std::move(msg));

    done = sched.RunUntilOr([&] { return waiters_[corr].done; },
                            sched.Now() + core_.rpc_timeout());
    if (!done && attempt < max_attempts) {
      // Keep listening through the backoff window: a late reply to this
      // attempt is just as good as a reply to the next one.
      done = sched.RunUntilOr([&] { return waiters_[corr].done; },
                              sched.Now() +
                                  policy.BackoffAfter(attempt, corr));
    }
    if (!done) continue;  // timed out; next attempt resends
    result = std::move(waiters_[corr]);
    if (result.ok || !result.transport_failure) break;
    if (attempt == max_attempts) break;
    // Transport-flagged error: never executed, retry after backoff.
    done = false;
    sched.RunUntilOr([] { return false; },
                     sched.Now() + policy.BackoffAfter(attempt, corr));
  }
  waiters_.erase(corr);
  if (!done) {
    fail_outcome = monitor::SpanOutcome::kTimeout;
    throw UnreachableError("invocation of " + std::string(method) + " on " +
                           ToString(handle.id) + " timed out");
  }
  if (!result.ok) {
    // Transport failures are retry-safe (the method never executed);
    // application errors are the anchor's own exceptions.
    if (result.transport_failure) throw UnreachableError(result.error);
    throw FargoError(result.error);
  }

  // Chain shortening at the origin (§3.1): point our tracker straight at
  // the Core that answered — unless the complet meanwhile arrived *here*
  // (e.g. the invocation was a routed move command with us as destination).
  if (shortening_ && result.location.valid() &&
      result.location != core_.id()) {
    TrackerEntry* current = core_.trackers().Find(handle.id);
    if (current == nullptr || !current->is_local())
      core_.trackers().SetForward(handle.id, result.location,
                                  handle.anchor_type);
  }
  return InvokeResult{std::move(result.value), result.location, result.hops};
}

void InvocationUnit::HandleRequest(net::Message msg) {
  wire::InvokeRequest rq = wire::DecodeInvokeRequest(msg.payload);

  // At-most-once: if this Core already executed this request (keyed by the
  // origin Core and the correlation, which retries reuse), answer from the
  // cached reply. Checked before routing, not just before execution — a Core
  // that executed the request and then moved the target away must replay,
  // not forward the retry to be executed a second time at the new host.
  if (auto cached = core_.dedup().Lookup(rq.origin, msg.correlation)) {
    core_.inst_.dedup_replays->Inc();
    core_.Reply(rq.origin, cached->kind, msg.correlation, *cached->payload);
    return;
  }

  TrackerEntry& entry = core_.trackers().Ensure(rq.handle);

  if (entry.is_local()) {
    if (!core_.AdmitOnce(rq.origin, msg.correlation)) return;
    ExecuteAndReply(rq, msg.correlation);
    return;
  }

  // Target in transit to this Core (the stream is still in flight): park
  // the request; it is drained on arrival or failed on expiry.
  if (!entry.next.valid() || entry.next == core_.id()) {
    core_.Park(rq.handle.id, std::move(msg), rq.origin);
    return;
  }

  if (static_cast<int>(rq.path.size()) + 1 > max_hops_) {
    serial::Writer w;
    w.WriteBool(false);  // not ok
    w.WriteBool(true);   // transport failure: never executed
    w.WriteString("invocation exceeded max forwarding hops (loop?)");
    wire::WriteTraceTail(w, rq.trace);
    core_.Reply(rq.origin, net::MessageKind::kInvokeReply, msg.correlation,
                w.Take());
    return;
  }

  // Forward one hop down the chain, recording the hop as a child span and
  // re-parenting the in-flight context so the causal chain mirrors the
  // tracker chain.
  rq.trace = core_.tracer()
                 .RecordInstant(monitor::SpanKind::kHop, rq.method, rq.trace,
                                core_.scheduler().Now(), rq.trace.retry)
                 .ctx;
  ++entry.forwarded;
  rq.path.push_back(core_.id());
  rq.handle.last_known = entry.next;
  net::Message fwd;
  fwd.from = core_.id();
  fwd.to = entry.next;
  fwd.kind = net::MessageKind::kInvokeRequest;
  fwd.correlation = msg.correlation;
  fwd.payload = wire::EncodeInvokeRequest(rq);
  core_.network().Send(std::move(fwd));
}

void InvocationUnit::ExecuteAndReply(const wire::InvokeRequest& rq,
                                     std::uint64_t correlation) {
  monitor::Tracer& tracer = core_.tracer();
  const SimTime begin = core_.scheduler().Now();
  const int hops = static_cast<int>(rq.path.size()) + 1;
  monitor::Tracer::Opened exec =
      tracer.OpenSpan(monitor::SpanKind::kExec, rq.method, rq.trace, begin,
                      rq.trace.retry);
  core_.inst_.execs->Inc();
  serial::Writer w;
  try {
    Value result;
    {
      monitor::TraceScope scope(tracer, exec.ctx);
      result = core_.DispatchLocal(rq.handle.id, rq.method, rq.args);
    }
    wire::WriteOk(w);
    serial::WriteValue(w, result);
    wire::WriteCoreId(w, core_.id());
    w.WriteVarint(rq.path.size() + 1);  // hops traversed by the request
    wire::WriteTraceTail(w, exec.ctx);
    tracer.CloseSpan(exec.token, core_.scheduler().Now(),
                     monitor::SpanOutcome::kOk, hops);
  } catch (const std::exception& e) {
    tracer.CloseSpan(exec.token, core_.scheduler().Now(),
                     monitor::SpanOutcome::kAppError, hops);
    serial::Writer err;
    err.WriteBool(false);  // not ok
    err.WriteBool(false);  // application error: the method DID run/throw
    err.WriteString(e.what());
    wire::WriteTraceTail(err, exec.ctx);
    core_.Reply(rq.origin, net::MessageKind::kInvokeReply, correlation,
                err.Take());
    return;
  }
  // Reply straight to the origin...
  core_.Reply(rq.origin, net::MessageKind::kInvokeReply, correlation,
              w.Take());

  // ...and shorten the whole chain: every tracker that forwarded the
  // request is repointed directly at us (§3.1). The updates travel in the
  // same trace, so shortening is visible in the trace view.
  if (!shortening_) return;
  for (CoreId hop : rq.path) {
    if (hop == core_.id()) continue;
    serial::Writer upd;
    wire::WriteComletId(upd, rq.handle.id);
    wire::WriteCoreId(upd, core_.id());
    upd.WriteString(rq.handle.anchor_type);
    wire::WriteTraceTail(upd, exec.ctx);
    net::Message u;
    u.from = core_.id();
    u.to = hop;
    u.kind = net::MessageKind::kTrackerUpdate;
    u.payload = upd.Take();
    core_.network().Send(std::move(u));
  }
}

void InvocationUnit::HandleReply(net::Message msg) {
  auto it = waiters_.find(msg.correlation);
  if (it == waiters_.end()) {
    LogDebug() << "orphan invoke reply at " << ToString(core_.id());
    return;
  }
  Waiter& waiter = it->second;
  if (waiter.done) return;  // duplicate reply (chaos or late retry answer)
  serial::Reader r(msg.payload);
  waiter.ok = r.ReadBool();
  if (!waiter.ok) {
    waiter.transport_failure = r.ReadBool();
    waiter.error = r.ReadString();
  } else {
    waiter.value = serial::ReadValue(r);
    waiter.location = wire::ReadCoreId(r);
    waiter.hops = static_cast<int>(r.ReadVarint());
  }
  waiter.trace = wire::ReadTraceTail(r);
  waiter.done = true;
}

void InvocationUnit::HandleTrackerUpdate(net::Message msg) {
  serial::Reader r(msg.payload);
  ComletId id = wire::ReadComletId(r);
  CoreId location = wire::ReadCoreId(r);
  std::string type = r.ReadString();
  wire::TraceContext trace = wire::ReadTraceTail(r);
  if (trace.valid())
    core_.tracer().RecordInstant(monitor::SpanKind::kControl, "tracker_update",
                                 trace, core_.scheduler().Now());
  TrackerEntry* entry = core_.trackers().Find(id);
  if (entry == nullptr || entry->is_local()) return;
  if (location == core_.id()) return;  // stale update; we'd self-loop
  core_.trackers().SetForward(id, location, type);
}

}  // namespace fargo::core
