#include "src/core/invocation.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"
#include "src/core/directory.h"
#include "src/core/movement.h"
#include "src/core/runtime.h"
#include "src/core/wal.h"
#include "src/core/wire.h"
#include "src/serial/value_codec.h"

namespace fargo::core {

// ==== origin side: the async invocation state machine ========================
//
// One remote invocation = one AsyncCall record driven by continuations:
//
//   StartCall ──local──▶ DispatchLocalCall ──▶ settle
//       │
//       ├─no route──▶ AwaitRoute ──tracker change──▶ ResumeAfterRoute ─┐
//       │                  └─deadline──▶ settle(unreachable)           │
//       │                                                             ▼
//       └─remote──▶ BeginRemote ──▶ SendAttempt ──reply──▶ HandleReply ─▶ settle
//                        ▲              └─timeout─▶ OnAttemptTimeout
//                        └──────backoff resend──────────┘
//
// The machinery never pumps the scheduler (NoPumpScope enforces it); only
// the synchronous Invoke wrapper below pumps, at top level.

InvokeResult InvocationUnit::Invoke(const ComletHandle& handle,
                                    std::string_view method,
                                    std::vector<Value> args) {
  return sim::Await(InvokeAsync(handle, method, std::move(args)));
}

// Everything below is the async machinery proper: the static twin of the
// NoPumpScope runtime guard bans blocking calls from here on.
// fargolint: no-pump-region

sim::Future<InvokeResult> InvocationUnit::InvokeAsync(
    const ComletHandle& handle, std::string_view method,
    std::vector<Value> args) {
  sim::Scheduler::AffinityScope aff(core_.id().value);
  const std::string m(method);
  // Without the home registry the fallback below could never produce a
  // better route (LocateViaHomeAsync answers "unknown"), so don't pay for
  // it: the arguments move straight into the call record instead of being
  // cloned into a rescue lambda on every invocation.
  if (!core_.runtime().home_registry_enabled())
    return StartCall(handle, m, std::move(args));
  sim::Future<InvokeResult> first = StartCall(handle, m, args);
  // Home-registry fallback (§7 future work): on a severed chain, ask the
  // target's home Core for a fresh route and retry once — safe because
  // UnreachableError means the request never executed.
  return first.OrElse(
      // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
      [this, handle, m, args = std::move(args)](
          std::exception_ptr e) -> sim::Future<InvokeResult> {
        try {
          std::rethrow_exception(e);
        } catch (const UnreachableError&) {
          // Eligible for the fallback; anything else propagates out of the
          // rethrow above and rejects the invocation unchanged.
        }
        TrackerEntry* entry = core_.trackers().Find(handle.id);
        if (entry != nullptr && entry->is_local())
          std::rethrow_exception(e);  // can't improve
        return core_.LocateViaHomeAsync(handle.id)
            .OrElse([id = handle.id](std::exception_ptr) -> CoreId {
              throw UnreachableError("home registry of " + ToString(id) +
                                     " is unreachable too");
            })
            // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
            .Then([this, handle, m, args,
                   e](CoreId home_route) -> sim::Future<InvokeResult> {
              if (!home_route.valid() || home_route == core_.id())
                std::rethrow_exception(e);
              TrackerEntry* entry = core_.trackers().Find(handle.id);
              if (entry != nullptr && !entry->is_local() &&
                  entry->next == home_route)
                std::rethrow_exception(e);  // no better route than what failed
              core_.trackers().SetForward(handle.id, home_route,
                                          handle.anchor_type);
              return StartCall(handle, m, args);
            });
      });
}

sim::Future<InvokeResult> InvocationUnit::StartCall(
    const ComletHandle& handle, const std::string& method,
    std::vector<Value> args) {
  sim::Scheduler& sched = core_.scheduler();
  monitor::Tracer& tracer = core_.tracer();
  auto call = std::make_shared<AsyncCall>(sched);
  call->req.handle = handle;
  call->req.method = method;
  call->req.args = std::move(args);
  call->req.origin = core_.id();
  call->begin = sched.Now();
  call->max_attempts = std::max(1, core_.retry_policy().max_attempts);
  // The trace root: a fresh trace at top level, a child span when this
  // invocation runs inside another traced execution (ambient context).
  call->root = tracer.OpenSpan(monitor::SpanKind::kRoot, method,
                               tracer.Current(), call->begin);

  TrackerEntry& entry = core_.trackers().Ensure(handle);
  if (entry.is_local()) {
    // Fast path: the single extra indirection of the stub/tracker split —
    // target hosted here means a plain local dispatch.
    DispatchLocalCall(call);
  } else if (!entry.next.valid() || entry.next == core_.id()) {
    // The target may be in transit *to us*; wait for it to land.
    AwaitRoute(call, call->begin + core_.rpc_timeout());
  } else {
    BeginRemote(call);
  }
  return call->promise.future();
}

void InvocationUnit::DispatchLocalCall(const std::shared_ptr<AsyncCall>& call) {
  if (call->req.method == kMoveMethod) {
    DispatchLocalMove(call);
    return;
  }
  try {
    core_.inst_.execs->Inc();
    Value v;
    {
      monitor::TraceScope scope(core_.tracer(), call->root.ctx);
      v = core_.DispatchLocal(call->req.handle.id, call->req.method,
                              call->req.args);
    }
    Wal* wal = core_.wal();
    if (wal != nullptr && !wal->replaying()) {
      // A durable Core acknowledges execution only after a barrier covers
      // the state records the dispatch appended — the caller must never
      // act on a result the log could still lose.
      const std::uint64_t epoch = core_.restart_epoch();
      auto res = std::make_shared<InvokeResult>(
          InvokeResult{std::move(v), core_.id(), 0});
      wal->Sync().OnSettle(
          // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
          [this, call, res, epoch](sim::Future<sim::Unit>) mutable {
            if (!core_.alive() || core_.restart_epoch() != epoch) {
              FinalizeError(
                  call,
                  std::make_exception_ptr(UnreachableError(
                      "core crashed before the invocation was durable")),
                  monitor::SpanOutcome::kTransportError);
              return;
            }
            FinalizeOk(call, std::move(*res));
          });
      return;
    }
    FinalizeOk(call, InvokeResult{std::move(v), core_.id(), 0});
  } catch (const UnreachableError&) {
    FinalizeError(call, std::current_exception(),
                  monitor::SpanOutcome::kTransportError);
  } catch (const std::exception&) {
    FinalizeError(call, std::current_exception(),
                  monitor::SpanOutcome::kAppError);
  }
}

void InvocationUnit::AwaitRoute(const std::shared_ptr<AsyncCall>& call,
                                SimTime deadline) {
  auto wait = std::make_shared<RouteWait>();
  wait->call = call;
  const ComletId id = call->req.handle.id;
  // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
  wait->timer = core_.scheduler().ScheduleAt(deadline, [this, id, wait] {
    auto it = route_waiters_.find(id);
    if (it != route_waiters_.end()) {
      auto& waits = it->second;
      waits.erase(std::remove(waits.begin(), waits.end(), wait), waits.end());
      if (waits.empty()) route_waiters_.erase(it);
    }
    if (wait->call->promise.settled()) return;
    FinalizeError(wait->call,
                  std::make_exception_ptr(UnreachableError(
                      "invocation target " + ToString(id) +
                      " unreachable from " + ToString(core_.id()))),
                  monitor::SpanOutcome::kTransportError);
  });
  route_waiters_[id].push_back(std::move(wait));
}

void InvocationUnit::NotifyRouteChanged(ComletId id) {
  auto it = route_waiters_.find(id);
  if (it == route_waiters_.end()) return;
  TrackerEntry* entry = core_.trackers().Find(id);
  const bool routable =
      entry != nullptr && (entry->is_local() ||
                           (entry->next.valid() && entry->next != core_.id()));
  if (!routable) return;
  std::vector<std::shared_ptr<RouteWait>> waits = std::move(it->second);
  route_waiters_.erase(it);
  sim::Scheduler& sched = core_.scheduler();
  for (auto& wait : waits) {
    sched.Cancel(wait->timer);
    const SimTime deadline = wait->call->begin + core_.rpc_timeout();
    // Resume as a fresh event: the tracker hook may fire mid-install or
    // mid-move, and dispatch must not run inside that mutation.
    // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
    sched.ScheduleAfter(0, [this, call = wait->call, deadline] {
      ResumeAfterRoute(call, deadline);
    });
  }
}

void InvocationUnit::ResumeAfterRoute(const std::shared_ptr<AsyncCall>& call,
                                      SimTime deadline) {
  if (call->promise.settled()) return;
  TrackerEntry* entry = core_.trackers().Find(call->req.handle.id);
  if (entry == nullptr ||
      (!entry->is_local() &&
       (!entry->next.valid() || entry->next == core_.id()))) {
    AwaitRoute(call, deadline);  // the route flapped away again; keep waiting
    return;
  }
  if (entry->is_local()) {
    DispatchLocalCall(call);
    return;
  }
  BeginRemote(call);
}

// ==== remote attempts ========================================================
//
// On a retry-safe failure (timeout, or a transport-flagged error reply —
// both mean the method never executed) the request is resent with the SAME
// session key (epoch, slot, seq), so any executor that does see both copies
// recognizes the duplicate by slot replay and answers from its cached reply
// instead of re-executing.

void InvocationUnit::BeginRemote(const std::shared_ptr<AsyncCall>& call) {
  call->corr = core_.NextCorrelation();
  // Lease the session slot against the first resolved hop. The key is an
  // identity, not a route: later attempts may travel to a different Core
  // (the target moved), and every executor indexes its replay window by the
  // (origin, peer) pair baked into the key, wherever the request lands.
  TrackerEntry* entry = core_.trackers().Find(call->req.handle.id);
  const CoreId peer = (entry != nullptr && !entry->is_local() &&
                       entry->next.valid() && entry->next != core_.id())
                          ? entry->next
                          : core_.id();
  call->skey = core_.sessions().Acquire(core_.id(), peer);
  waiters_[call->corr] = call;
  Wal* wal = core_.wal();
  if (wal != nullptr && !wal->SequencesDurable()) {
    // Identity gate (docs/PROTOCOL.md §Durability): the correlation and
    // session epoch just stamped must sit below a durable kWalMeta promise
    // before a peer can observe them — a crash now would let recovery
    // re-issue the same identity, and the executor's replay window would
    // answer the new call with a stale reply. Hold the first attempt until
    // the covering barrier settles.
    const std::uint64_t epoch = core_.restart_epoch();
    wal->WhenSequencesDurable().OnSettle(
        // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
        [this, call, epoch](sim::Future<sim::Unit>) {
          if (!core_.alive() || core_.restart_epoch() != epoch) {
            if (!call->promise.settled())
              FinalizeError(call,
                            std::make_exception_ptr(UnreachableError(
                                "core restarted before its identity barrier")),
                            monitor::SpanOutcome::kTransportError);
            return;
          }
          if (!call->promise.settled()) SendAttempt(call);
        });
    return;
  }
  SendAttempt(call);
}

void InvocationUnit::SendAttempt(const std::shared_ptr<AsyncCall>& call) {
  sim::Scheduler::NoPumpScope no_pump(core_.scheduler());
  sim::Scheduler& sched = core_.scheduler();
  monitor::Tracer& tracer = core_.tracer();
  ++call->attempt;
  // The first attempt travels as the root span; each resend travels as a
  // fresh child span tagged with its retry ordinal.
  wire::TraceContext attempt_ctx = call->root.ctx;
  if (call->attempt > 1) {
    ++core_.rpc_retries_;
    core_.inst_.retries->Inc();
    attempt_ctx =
        tracer
            .RecordInstant(monitor::SpanKind::kRetry, call->req.method,
                           call->root.ctx, sched.Now(),
                           static_cast<std::uint32_t>(call->attempt - 1))
            .ctx;
  }
  // Re-resolve the route each attempt: the target may have moved — possibly
  // to this very Core, in which case the send loops back through our own
  // slot-checked handler rather than re-dispatching locally (an earlier
  // attempt may already have executed elsewhere).
  TrackerEntry* entry = core_.trackers().Find(call->req.handle.id);
  if (entry == nullptr) entry = &core_.trackers().Ensure(call->req.handle);
  const CoreId next = (!entry->is_local() && entry->next.valid() &&
                       entry->next != core_.id())
                          ? entry->next
                          : core_.id();
  // The request record was built by StartCall; per attempt only the trace
  // context and the routing hint change. Route by our tracker's knowledge,
  // not the stub's stale hint, so the next hop parks rather than bouncing
  // the request back at us.
  call->req.trace = attempt_ctx;
  call->req.handle.last_known = next;
  // Stamp the request with the epoch of the knowledge routing it, so a hop
  // whose own hint is no fresher consults the home shard instead of walking
  // the chain.
  call->req.hint_epoch = entry->hint_epoch;

  if (next == core_.id()) {
    // Same-Core loopback (the target moved toward us mid-retry): the
    // request must still cross the slot-checked executor path as a fresh
    // scheduled event — an earlier attempt may already have executed
    // elsewhere — but there is no wire between us and ourselves, so skip
    // the encode/decode round-trip and hand over the in-memory request.
    net::Message carrier;
    carrier.from = core_.id();
    carrier.to = core_.id();
    carrier.kind = net::MessageKind::kInvokeRequest;
    carrier.correlation = call->corr;
    carrier.session = call->skey;
    sched.ScheduleAfter(
        0,
        // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
        [this, rq = call->req, carrier = std::move(carrier)]() mutable {
          if (!core_.alive()) return;
          try {
            ProcessRequest(std::move(rq), std::move(carrier));
          } catch (const std::exception& e) {
            LogWarn() << "core " << core_.name()
                      << " dropped a loopback request: " << e.what();
          }
        });
  } else {
    ++entry->forwarded;
    net::Message msg;
    msg.from = core_.id();
    msg.to = next;
    msg.kind = net::MessageKind::kInvokeRequest;
    msg.correlation = call->corr;
    msg.session = call->skey;
    msg.payload = wire::EncodeInvokeRequest(call->req);
    core_.formation().Enqueue(std::move(msg),
                              net::Formation::Lane::kImmediate);
  }

  call->timer = sched.ScheduleAfter(core_.rpc_timeout(),
                                    // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
                                    [this, call] { OnAttemptTimeout(call); });
}

void InvocationUnit::OnAttemptTimeout(const std::shared_ptr<AsyncCall>& call) {
  if (call->promise.settled()) return;
  if (call->attempt < call->max_attempts) {
    ArmBackoffResend(call);
    return;
  }
  waiters_.erase(call->corr);
  FinalizeError(call,
                std::make_exception_ptr(UnreachableError(
                    "invocation of " + call->req.method + " on " +
                    ToString(call->req.handle.id) + " timed out")),
                monitor::SpanOutcome::kTimeout);
}

void InvocationUnit::ArmBackoffResend(const std::shared_ptr<AsyncCall>& call) {
  // Keep listening through the backoff window: the waiter stays registered,
  // so a late reply to the previous attempt is just as good as a reply to
  // the next one and settles the call before the resend fires.
  call->timer = core_.scheduler().ScheduleAfter(
      core_.retry_policy().BackoffAfter(call->attempt, call->corr),
      // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
      [this, call] {
        if (!call->promise.settled()) SendAttempt(call);
      });
}

void InvocationUnit::FinalizeOk(const std::shared_ptr<AsyncCall>& call,
                                InvokeResult res) {
  // The call settled; its slot can carry the next request (Release no-ops
  // for the local fast path, whose calls never lease one).
  core_.sessions().Release(call->skey);
  const SimTime now = core_.scheduler().Now();
  core_.tracer().CloseSpan(call->root.token, now, monitor::SpanOutcome::kOk,
                           res.hops);
  core_.inst_.invocations->Inc();
  core_.inst_.invoke_latency->Observe(static_cast<double>(now - call->begin));
  core_.inst_.invoke_hops->Observe(static_cast<double>(res.hops));
  call->promise.Resolve(std::move(res));
}

void InvocationUnit::FinalizeError(const std::shared_ptr<AsyncCall>& call,
                                   std::exception_ptr error,
                                   monitor::SpanOutcome outcome) {
  core_.sessions().Release(call->skey);
  core_.inst_.invoke_errors->Inc();
  core_.tracer().CloseSpan(call->root.token, core_.scheduler().Now(), outcome);
  call->promise.Reject(std::move(error));
}

// ==== oneway =================================================================

void InvocationUnit::Post(const ComletHandle& handle, std::string_view method,
                          std::vector<Value> args) {
  sim::Scheduler::AffinityScope aff(core_.id().value);
  TrackerEntry& entry = core_.trackers().Ensure(handle);
  if (entry.is_local()) {
    // Asynchronous even locally: dispatched as a scheduled task, like the
    // paper's per-invocation thread.
    core_.scheduler().ScheduleAfter(
        // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
        0, [this, id = handle.id, method = std::string(method),
            args = std::move(args)] {
          core_.inst_.execs->Inc();
          try {
            core_.DispatchLocal(id, method, args);
          } catch (const std::exception& e) {
            LogWarn() << "one-way invocation of " << method << " failed: "
                      << e.what();
          }
        });
    return;
  }
  if (!entry.next.valid() || entry.next == core_.id()) {
    LogWarn() << "one-way invocation dropped: no route to "
              << ToString(handle.id);
    return;
  }
  wire::InvokeRequest rq{handle,     std::string(method), std::move(args),
                         core_.id(), {},                  true,
                         entry.hint_epoch,    core_.tracer().Current()};
  rq.handle.last_known = entry.next;
  ++entry.forwarded;
  net::Message msg;
  msg.from = core_.id();
  msg.to = entry.next;
  msg.kind = net::MessageKind::kInvokeRequest;
  // No reply ever comes back, so the slot is released by the executor's
  // SlotAck — with a local timeout as the lost-ack fallback (the slot
  // would otherwise stay leased forever; re-leasing it early merely
  // demotes an undelivered oneway to kStale, within the best-effort
  // contract).
  msg.correlation = core_.NextCorrelation();
  msg.session = core_.sessions().Acquire(core_.id(), entry.next);
  msg.payload = wire::EncodeInvokeRequest(rq);
  core_.scheduler().ScheduleAfter(
      core_.rpc_timeout(),
      // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
      [this, skey = msg.session] { core_.sessions().Release(skey); });
  Wal* wal = core_.wal();
  if (wal != nullptr && !wal->SequencesDurable()) {
    // Identity gate, oneway flavor: the slot identity must sit below a
    // durable ceiling before the executor sees it. Dropping the send on
    // restart is within the oneway best-effort contract.
    const std::uint64_t epoch = core_.restart_epoch();
    wal->WhenSequencesDurable().OnSettle(
        // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
        [this, epoch, msg = std::move(msg)](sim::Future<sim::Unit>) mutable {
          if (!core_.alive() || core_.restart_epoch() != epoch) return;
          core_.formation().Enqueue(std::move(msg),
                                    net::Formation::Lane::kImmediate);
        });
    return;
  }
  core_.formation().Enqueue(std::move(msg), net::Formation::Lane::kImmediate);
}

// ==== executor side ==========================================================

void InvocationUnit::HandleRequest(net::Message msg) {
  wire::InvokeRequest rq = wire::DecodeInvokeRequest(msg.payload);
  ProcessRequest(std::move(rq), std::move(msg));
}

void InvocationUnit::ProcessRequest(wire::InvokeRequest rq, net::Message msg) {
  // At-most-once, checked before routing, not just before execution: a Core
  // that executed the request and then moved the target away must replay
  // from its slot window, not forward the retry to be executed a second
  // time at the new host. Peek is read-only — admission (which claims the
  // slot) happens only on the execute path below.
  const net::ReplayDirectory::AdmitResult peek = core_.replay().Peek(msg.session);
  switch (peek.outcome) {
    case net::Admission::kFresh:
      break;  // unseen here: route it
    case net::Admission::kInProgress:
      // A duplicate raced in while the first copy is still executing (e.g.
      // behind its durability barrier); the eventual reply covers both.
      core_.inst_.session_suppressed->Inc();
      return;
    case net::Admission::kReplay:
      core_.inst_.session_replays->Inc();
      if (rq.oneway) {
        // No reply to replay, but the origin's slot must still come free —
        // the first ack may be the very loss that caused this retry. Same
        // durability contract as the first ack: the exec record this slot
        // state rests on may still be behind an unsettled barrier.
        core_.AckSlotDurable(msg.session);
      } else {
        // Replay copy: the cached reply must survive further duplicates.
        core_.inst_.bytes_copied->Inc(peek.reply->size());
        core_.Reply(rq.origin, peek.reply_kind, msg.correlation, *peek.reply,
                    msg.session);
      }
      return;
    case net::Admission::kStale:
      core_.inst_.session_stale->Inc();
      return;
  }

  RouteRequest(std::move(rq), std::move(msg), /*allow_lookup=*/true);
}

void InvocationUnit::RouteRequest(wire::InvokeRequest rq, net::Message msg,
                                  bool allow_lookup) {
  TrackerEntry& entry = core_.trackers().Ensure(rq.handle);

  if (entry.is_local()) {
    if (!core_.AdmitOnce(msg)) return;
    ExecuteAndReply(rq, msg.correlation, msg.session);
    return;
  }

  // Target in transit to this Core (the stream is still in flight): park
  // the request; it is drained on arrival or failed on expiry. A request
  // that arrived through the loopback fast path travels in an empty
  // carrier; parking is the one consumer that needs real payload bytes
  // (the park queue re-handles through the wire path), so encode now.
  if (!entry.next.valid() || entry.next == core_.id()) {
    if (msg.payload.empty()) msg.payload = wire::EncodeInvokeRequest(rq);
    core_.Park(rq.handle.id, std::move(msg), rq.origin);
    return;
  }

  if (static_cast<int>(rq.path.size()) + 1 > max_hops_) {
    if (rq.oneway) {
      LogWarn() << "one-way invocation of " << rq.method
                << " dropped: exceeded max forwarding hops";
      return;
    }
    serial::Writer w;
    w.WriteBool(false);  // not ok
    w.WriteBool(true);   // transport failure: never executed
    w.WriteString("invocation exceeded max forwarding hops (loop?)");
    wire::WriteTraceTail(w, rq.trace);
    core_.Reply(rq.origin, net::MessageKind::kInvokeReply, msg.correlation,
                w.Take());
    return;
  }

  // Bounded-hop routing (sharded directory only — the origin configuration
  // keeps the paper's chain walk): chaining is allowed only on knowledge
  // strictly fresher than the stamp that already routed the request here.
  // Otherwise the chain could be walked end to end; one shard lookup
  // replaces that walk, so steady-state delivery is at most two hops.
  if (core_.runtime().directory_mode() == DirectoryMode::kSharded &&
      allow_lookup) {
    if (entry.hint_epoch > rq.hint_epoch) {
      core_.inst_.dir_hint_hit->Inc();
    } else {
      core_.inst_.dir_hint_miss->Inc();
      core_.directory().LookupAsync(rq.handle.id).OnSettle(
          // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
          [this, rq = std::move(rq), msg = std::move(msg)](
              sim::Future<wire::DirectoryHint> f) mutable {
            if (!core_.alive()) return;
            if (f.ok()) {
              const wire::DirectoryHint hint = f.Take();
              if (hint.found && hint.location != core_.id())
                core_.trackers().MergeHint(rq.handle.id, hint.location,
                                           hint.epoch, rq.handle.anchor_type);
            }
            // Re-route on the merged knowledge — at most once per Core
            // visit: a shard that knows nothing newer leaves the chain as
            // the only route, and max-hops still bounds any residual loop.
            RouteRequest(std::move(rq), std::move(msg),
                         /*allow_lookup=*/false);
          });
      return;
    }
  }

  ForwardRequest(std::move(rq), msg, entry);
}

// Forward one hop down the chain, recording the hop as a child span and
// re-parenting the in-flight context so the causal chain mirrors the
// tracker chain.
void InvocationUnit::ForwardRequest(wire::InvokeRequest rq,
                                    const net::Message& msg,
                                    TrackerEntry& entry) {
  rq.trace = core_.tracer()
                 .RecordInstant(monitor::SpanKind::kHop, rq.method, rq.trace,
                                core_.scheduler().Now(), rq.trace.retry)
                 .ctx;
  ++entry.forwarded;
  rq.path.push_back(core_.id());
  rq.handle.last_known = entry.next;
  if (entry.hint_epoch > rq.hint_epoch) rq.hint_epoch = entry.hint_epoch;
  net::Message fwd;
  fwd.from = core_.id();
  fwd.to = entry.next;
  fwd.kind = net::MessageKind::kInvokeRequest;
  fwd.correlation = msg.correlation;
  fwd.session = msg.session;  // the slot identity survives every hop
  fwd.payload = wire::EncodeInvokeRequest(rq);
  core_.formation().Enqueue(std::move(fwd), net::Formation::Lane::kImmediate);
}

void InvocationUnit::ExecuteAndReply(const wire::InvokeRequest& rq,
                                     std::uint64_t correlation,
                                     const net::SessionKey& skey) {
  monitor::Tracer& tracer = core_.tracer();
  const SimTime begin = core_.scheduler().Now();
  const int hops = static_cast<int>(rq.path.size()) + 1;
  monitor::Tracer::Opened exec =
      tracer.OpenSpan(monitor::SpanKind::kExec, rq.method, rq.trace, begin,
                      rq.trace.retry);
  core_.inst_.execs->Inc();
  // A routed __fargo.move must not dispatch into the synchronous MoveLocal:
  // that pumps the scheduler from inside the executor handler, and handlers
  // are non-blocking state machines (a worker pump would deadlock the
  // FARGO_PARALLEL round barrier). The move runs async; its reply — and the
  // at-most-once bookkeeping — ride the settle continuation.
  if (rq.method == kMoveMethod) {
    ExecuteMoveAndReply(rq, correlation, skey, exec, hops);
    return;
  }
  if (rq.oneway) {
    // Reply-less flow: execute, mark the slot complete (with an empty
    // cached reply — duplicates are dropped, not re-answered) and still
    // shorten the chain; errors die here with a log line.
    try {
      monitor::TraceScope scope(tracer, exec.ctx);
      core_.DispatchLocal(rq.handle.id, rq.method, rq.args);
      tracer.CloseSpan(exec.token, core_.scheduler().Now(),
                       monitor::SpanOutcome::kOk, hops);
    } catch (const std::exception& e) {
      tracer.CloseSpan(exec.token, core_.scheduler().Now(),
                       monitor::SpanOutcome::kAppError, hops);
      LogWarn() << "one-way invocation of " << rq.method << " failed: "
                << e.what();
    }
    core_.replay().Complete(skey, net::MessageKind::kInvokeReply, {});
    // No reply carries this slot state into the log (Core::Reply logs the
    // two-way ones), so record it here: a recovered executor must keep
    // dropping duplicates of oneways it already ran.
    if (Wal* wal = core_.wal(); wal != nullptr && !wal->replaying())
      wal->AppendExec(skey, net::MessageKind::kInvokeReply, {});
    // Hand the slot back to the origin (there is no reply to do it). The
    // ack waits out a durability barrier over the exec record above — the
    // origin retires the slot on it, so it must survive our crash.
    core_.AckSlotDurable(skey);
    SendShorteningUpdates(rq, exec.ctx);
    return;
  }
  serial::Writer w;
  try {
    Value result;
    {
      monitor::TraceScope scope(tracer, exec.ctx);
      result = core_.DispatchLocal(rq.handle.id, rq.method, rq.args);
    }
    wire::WriteOk(w);
    serial::WriteValue(w, result);
    wire::WriteCoreId(w, core_.id());
    w.WriteVarint(rq.path.size() + 1);  // hops traversed by the request
    // Location hint epoch: how fresh "the target lives here" is. Stamped
    // from our tracker *after* dispatch — if the method itself moved the
    // target away, the entry is no longer local and the hint rides
    // unstamped (epoch 0), so it cannot outrank the movement's publish.
    {
      const TrackerEntry* te = core_.trackers().Find(rq.handle.id);
      w.WriteVarint(te != nullptr && te->is_local() ? te->hint_epoch : 0);
    }
    wire::WriteTraceTail(w, exec.ctx);
    tracer.CloseSpan(exec.token, core_.scheduler().Now(),
                     monitor::SpanOutcome::kOk, hops);
  } catch (const std::exception& e) {
    tracer.CloseSpan(exec.token, core_.scheduler().Now(),
                     monitor::SpanOutcome::kAppError, hops);
    serial::Writer err;
    err.WriteBool(false);  // not ok
    err.WriteBool(false);  // application error: the method DID run/throw
    err.WriteString(e.what());
    wire::WriteTraceTail(err, exec.ctx);
    // The method ran (and threw) — the error is the cached outcome, so the
    // reply carries the session key and completes the slot like a success.
    core_.Reply(rq.origin, net::MessageKind::kInvokeReply, correlation,
                err.Take(), skey);
    return;
  }
  // Reply straight to the origin...
  core_.Reply(rq.origin, net::MessageKind::kInvokeReply, correlation,
              w.Take(), skey);

  // ...and shorten the whole chain (§3.1).
  SendShorteningUpdates(rq, exec.ctx);
}

sim::Future<sim::Unit> InvocationUnit::StartLocalMove(
    const wire::InvokeRequest& rq, const wire::TraceContext& ctx) {
  // Marshal + transition happen synchronously inside MoveLocalAsync, so
  // invocations racing the stream park immediately; the returned future
  // settles once the destination acknowledges (or the move rolls back).
  try {
    if (!core_.repository().Contains(rq.handle.id))
      throw FargoError("complet " + ToString(rq.handle.id) +
                       " is not hosted at " + core_.name());
    CoreId dest{static_cast<std::uint32_t>(rq.args.at(0).AsInt())};
    std::string continuation = rq.args.at(1).AsString();
    std::vector<Value> cont_args = rq.args.at(2).AsList();
    monitor::TraceScope scope(core_.tracer(), ctx);
    return core_.movement().MoveLocalAsync(
        rq.handle.id, dest, std::move(continuation), std::move(cont_args));
  } catch (const UnreachableError& e) {
    return sim::MakeErrorFuture<sim::Unit>(core_.scheduler(), e);
  } catch (const std::exception& e) {
    return sim::MakeErrorFuture<sim::Unit>(core_.scheduler(),
                                           FargoError(e.what()));
  }
}

void InvocationUnit::DispatchLocalMove(const std::shared_ptr<AsyncCall>& call) {
  core_.inst_.execs->Inc();
  sim::Future<sim::Unit> moved = StartLocalMove(call->req, call->root.ctx);
  // No extra WAL barrier here (unlike the generic local dispatch): the
  // movement protocol's own commit barriers gate the settle, so a resolved
  // future already means the departure is as durable as this Core gets.
  moved.OnSettle(
      // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
      [this, call](sim::Future<sim::Unit> f) {
        if (f.ok()) {
          FinalizeOk(call, InvokeResult{Value(), core_.id(), 0});
          return;
        }
        try {
          f.Take();
        } catch (const UnreachableError&) {
          FinalizeError(call, std::current_exception(),
                        monitor::SpanOutcome::kTransportError);
        } catch (...) {
          FinalizeError(call, std::current_exception(),
                        monitor::SpanOutcome::kAppError);
        }
      });
}

void InvocationUnit::ExecuteMoveAndReply(const wire::InvokeRequest& rq,
                                         std::uint64_t correlation,
                                         const net::SessionKey& skey,
                                         const monitor::Tracer::Opened& exec,
                                         int hops) {
  sim::Future<sim::Unit> moved = StartLocalMove(rq, exec.ctx);
  const std::uint64_t epoch_guard = core_.restart_epoch();
  moved.OnSettle(
      // fargolint: allow(capture-this) the unit lives inside its Core, which outlives the cleared event queue
      [this, rq, correlation, skey, exec, hops,
       epoch_guard](sim::Future<sim::Unit> f) {
        if (!core_.alive() || core_.restart_epoch() != epoch_guard) return;
        monitor::Tracer& tracer = core_.tracer();
        std::string error;
        if (!f.ok()) {
          try {
            f.Take();
          } catch (const std::exception& e) {
            error = e.what();
          } catch (...) {
            error = "move failed";
          }
        }
        if (rq.oneway) {
          // Reply-less flow, same contract as the generic oneway branch:
          // complete the slot, log the exec record, ack, shorten; a failed
          // move dies here with a log line.
          tracer.CloseSpan(exec.token, core_.scheduler().Now(),
                           f.ok() ? monitor::SpanOutcome::kOk
                                  : monitor::SpanOutcome::kAppError,
                           hops);
          if (!f.ok())
            LogWarn() << "one-way invocation of " << rq.method
                      << " failed: " << error;
          core_.replay().Complete(skey, net::MessageKind::kInvokeReply, {});
          if (Wal* wal = core_.wal(); wal != nullptr && !wal->replaying())
            wal->AppendExec(skey, net::MessageKind::kInvokeReply, {});
          core_.AckSlotDurable(skey);
          SendShorteningUpdates(rq, exec.ctx);
          return;
        }
        if (!f.ok()) {
          tracer.CloseSpan(exec.token, core_.scheduler().Now(),
                           monitor::SpanOutcome::kAppError, hops);
          serial::Writer err;
          err.WriteBool(false);  // not ok
          err.WriteBool(false);  // application error: the move DID run
          err.WriteString(error);
          wire::WriteTraceTail(err, exec.ctx);
          core_.Reply(rq.origin, net::MessageKind::kInvokeReply, correlation,
                      err.Take(), skey);
          return;
        }
        serial::Writer w;
        wire::WriteOk(w);
        serial::WriteValue(w, Value());
        wire::WriteCoreId(w, core_.id());
        w.WriteVarint(rq.path.size() + 1);
        // The move just sent the target away: the tracker entry is no longer
        // local, so the hint rides unstamped (epoch 0) and cannot outrank
        // the movement's own directory publish — same rule as the generic
        // path's post-dispatch stamp.
        {
          const TrackerEntry* te = core_.trackers().Find(rq.handle.id);
          w.WriteVarint(te != nullptr && te->is_local() ? te->hint_epoch : 0);
        }
        wire::WriteTraceTail(w, exec.ctx);
        tracer.CloseSpan(exec.token, core_.scheduler().Now(),
                         monitor::SpanOutcome::kOk, hops);
        core_.Reply(rq.origin, net::MessageKind::kInvokeReply, correlation,
                    w.Take(), skey);
        SendShorteningUpdates(rq, exec.ctx);
      });
}

void InvocationUnit::SendShorteningUpdates(const wire::InvokeRequest& rq,
                                           const wire::TraceContext& ctx) {
  // Every tracker that forwarded the request is repointed directly at us
  // (§3.1). The updates travel in the same trace, so shortening is visible
  // in the trace view.
  if (!shortening_) return;
  const TrackerEntry* te = core_.trackers().Find(rq.handle.id);
  const std::uint64_t epoch =
      te != nullptr && te->is_local() ? te->hint_epoch : 0;
  for (CoreId hop : rq.path) {
    if (hop == core_.id()) continue;
    serial::Writer upd;
    wire::WriteComletId(upd, rq.handle.id);
    wire::WriteCoreId(upd, core_.id());
    upd.WriteString(rq.handle.anchor_type);
    upd.WriteVarint(epoch);
    wire::WriteTraceTail(upd, ctx);
    net::Message u;
    u.from = core_.id();
    u.to = hop;
    u.kind = net::MessageKind::kTrackerUpdate;
    u.payload = upd.Take();
    // Priority lane: routing freshness must not queue behind bulk frames.
    core_.formation().Enqueue(std::move(u), net::Formation::Lane::kPriority);
  }
}

// ==== replies at the origin ==================================================

void InvocationUnit::HandleReply(net::Message msg) {
  auto it = waiters_.find(msg.correlation);
  if (it == waiters_.end()) {
    // Late reply: its invocation already settled (timed out after the last
    // attempt, or was answered by an earlier duplicate). Count it and emit
    // a drop-reason span so traces show where the reply died.
    core_.inst_.late_replies->Inc();
    wire::TraceContext trace;
    try {
      serial::Reader peek(msg.payload);
      if (peek.ReadBool()) {
        serial::ReadValue(peek);
        wire::ReadCoreId(peek);
        peek.ReadVarint();  // hops
        peek.ReadVarint();  // hint epoch
      } else {
        peek.ReadBool();
        peek.ReadString();
      }
      trace = wire::ReadTraceTail(peek);
    } catch (...) {
      // Chaos-corrupted payload: drop it untraced.
    }
    if (trace.valid())
      core_.tracer().RecordInstant(monitor::SpanKind::kControl,
                                   "late_reply_dropped", trace,
                                   core_.scheduler().Now());
    LogDebug() << "late invoke reply dropped at " << ToString(core_.id())
               << " corr " << msg.correlation;
    return;
  }
  std::shared_ptr<AsyncCall> call = it->second;
  sim::Scheduler& sched = core_.scheduler();
  sim::Scheduler::NoPumpScope no_pump(sched);
  serial::Reader r(msg.payload);
  if (r.ReadBool()) {
    Value value = serial::ReadValue(r);
    CoreId location = wire::ReadCoreId(r);
    int reply_hops = static_cast<int>(r.ReadVarint());
    std::uint64_t reply_epoch = r.ReadVarint();
    (void)wire::ReadTraceTail(r);
    sched.Cancel(call->timer);
    waiters_.erase(call->corr);
    // The chain length this delivery actually experienced — the signal the
    // directory plane exists to drive toward 1.
    core_.inst_.chain_len->Observe(static_cast<double>(reply_hops));
    // Chain shortening at the origin (§3.1): point our tracker straight at
    // the Core that answered — unless the complet meanwhile arrived *here*
    // (MergeHint refuses local entries) or our hint already outranks the
    // reply's stamp (a newer movement published while it was in flight).
    if (shortening_ && location.valid() && location != core_.id())
      core_.trackers().MergeHint(call->req.handle.id, location, reply_epoch,
                                 call->req.handle.anchor_type);
    FinalizeOk(call, InvokeResult{std::move(value), location, reply_hops});
    return;
  }
  const bool transport_failure = r.ReadBool();
  std::string error = r.ReadString();
  (void)wire::ReadTraceTail(r);
  if (!transport_failure) {
    // Application error: the anchor's own exception — never retried.
    sched.Cancel(call->timer);
    waiters_.erase(call->corr);
    FinalizeError(call, std::make_exception_ptr(FargoError(error)),
                  monitor::SpanOutcome::kAppError);
    return;
  }
  // Transport-flagged error: never executed, retry-safe.
  sched.Cancel(call->timer);
  if (call->attempt < call->max_attempts) {
    ArmBackoffResend(call);
    return;
  }
  waiters_.erase(call->corr);
  FinalizeError(call, std::make_exception_ptr(UnreachableError(error)),
                monitor::SpanOutcome::kTransportError);
}

void InvocationUnit::HandleTrackerUpdate(net::Message msg) {
  serial::Reader r(msg.payload);
  ComletId id = wire::ReadComletId(r);
  CoreId location = wire::ReadCoreId(r);
  std::string type = r.ReadString();
  std::uint64_t epoch = r.ReadVarint();
  wire::TraceContext trace = wire::ReadTraceTail(r);
  if (trace.valid())
    core_.tracer().RecordInstant(monitor::SpanKind::kControl, "tracker_update",
                                 trace, core_.scheduler().Now());
  TrackerEntry* entry = core_.trackers().Find(id);
  if (entry == nullptr) return;
  if (entry->is_local()) {
    // A home-shard echo answering our own assertion publish: adopt the
    // authoritative stamp for the complet we host. Anything else aimed at
    // a hosting Core is stale.
    if (location == core_.id()) core_.trackers().Stamp(id, epoch);
    return;
  }
  if (location == core_.id()) return;  // stale update; we'd self-loop
  core_.trackers().MergeHint(id, location, epoch, type);
}

}  // namespace fargo::core
