// Heartbeat failure detector: extends the paper's reliability story from
// graceful shutdown (coreShutdown events) to silent crashes.
//
// Each enabled Core periodically pings the peers it depends on — Cores its
// tracker chains forward into, Cores it holds remote event subscriptions
// at, plus any explicitly watched peers. A ping is a kControl message
// (subkind Ping) answered by Pong; after `k_missed` consecutive unanswered
// pings the peer is suspected and a CoreUnreachable lifecycle event fires
// on the local EventBus (CoreRecovered when a pong returns), so script
// rules like `on coreUnreachable ... do move important backup end` can
// re-home complets off dead Cores.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>

#include "src/common/ids.h"
#include "src/common/time.h"
#include "src/core/fwd.h"
#include "src/sim/scheduler.h"

namespace fargo::core {

// fargo: domain(core)
class FailureDetector {
 public:
  FailureDetector(Core& core, SimTime interval, int k_missed);
  ~FailureDetector();
  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  /// Cancels the periodic ping; safe to call repeatedly. After Stop no
  /// further events fire and no timers remain scheduled by this detector.
  void Stop();
  bool running() const;

  /// Adds/removes a peer monitored regardless of trackers/subscriptions.
  void Watch(CoreId peer);
  void Unwatch(CoreId peer);

  /// Pong arrived from `peer` (called by the Core's control dispatch).
  void OnPong(CoreId peer);

  bool IsSuspected(CoreId peer) const;

  SimTime interval() const { return interval_; }
  int k_missed() const { return k_missed_; }
  std::uint64_t pings_sent() const { return pings_sent_; }
  std::uint64_t suspicions() const { return suspicions_; }
  std::uint64_t recoveries() const { return recoveries_; }

 private:
  struct PeerState {
    int missed = 0;        ///< consecutive unanswered pings
    bool awaiting = false; ///< a ping is outstanding
    bool suspected = false;
  };

  void Tick();
  /// Peers this Core depends on, sorted (std::set) for deterministic ping
  /// order under the shared seeded scheduler.
  std::set<CoreId> PeerSet() const;
  void Suspect(CoreId peer, PeerState& state);
  void Recover(CoreId peer, PeerState& state);

  Core& core_;
  SimTime interval_;
  int k_missed_;
  std::set<CoreId> watched_;
  std::map<CoreId, PeerState> peers_;
  std::unique_ptr<sim::PeriodicTask> task_;
  std::uint64_t pings_sent_ = 0;
  std::uint64_t suspicions_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace fargo::core
