// Relocators: the reified relocation semantics of complet references (§2,
// §3.3).
//
// "The behavior imposed by the type of each complet reference is implemented
//  by a special Relocator object, which is contained in the meta reference.
//  ... A new reference type can be implemented as a new Relocator object,
//  possibly by extending one of the predefined Relocators."
//
// The movement protocol consults `EffectOnMove` for every outgoing complet
// reference of a moving complet:
//   kTrack     (link)      — reference keeps tracking the target.
//   kMoveAlong (pull)      — target complet moves in the same stream.
//   kCopyAlong (duplicate) — a copy of the target moves; original stays.
//   kRebind    (stamp)     — re-bind by anchor type at the destination.
// User-defined relocators choose an effect dynamically (see
// tests/core/relocator_extension_test.cpp for a pull-if-small example).
#pragma once

#include <memory>
#include <string_view>

#include "src/common/ids.h"
#include "src/core/fwd.h"
#include "src/serial/graph.h"
#include "src/serial/registry.h"

namespace fargo::core {

/// Primitive marshaling behaviours a relocator can select.
enum class RelocEffect { kTrack, kMoveAlong, kCopyAlong, kRebind };

const char* ToString(RelocEffect effect);

/// Context available to a relocator when its containing complet is about to
/// move: which complet the reference targets, where the source is going,
/// and the sending Core (for size/locality queries by smart relocators).
struct RelocContext {
  Core& source_core;
  ComletId target;
  CoreId destination;
  bool target_is_local;  ///< target hosted at the sending Core
};

/// Base of all reference-relocation semantics. Relocators are serializable
/// so a reference keeps its semantics when its containing complet moves.
class Relocator : public serial::Serializable {
 public:
  /// Decides what the movement protocol does with the reference's target.
  virtual RelocEffect EffectOnMove(const RelocContext& ctx) const = 0;

  /// Short semantic name for shell/monitor display ("link", "pull", ...).
  virtual std::string_view Kind() const = 0;

  // Stateless relocators serialize nothing by default.
  void Serialize(serial::GraphWriter&) const override {}
  void Deserialize(serial::GraphReader&) override {}
};

/// Default semantics: remote reference that tracks the (moving) target.
class Link final : public Relocator {
 public:
  static constexpr std::string_view kTypeName = "fargo.Link";
  std::string_view TypeName() const override { return kTypeName; }
  std::string_view Kind() const override { return "link"; }
  RelocEffect EffectOnMove(const RelocContext&) const override {
    return RelocEffect::kTrack;
  }
};

/// The target complet moves along with the source.
class Pull final : public Relocator {
 public:
  static constexpr std::string_view kTypeName = "fargo.Pull";
  std::string_view TypeName() const override { return kTypeName; }
  std::string_view Kind() const override { return "pull"; }
  RelocEffect EffectOnMove(const RelocContext&) const override {
    return RelocEffect::kMoveAlong;
  }
};

/// A copy of the target moves along; the original stays put.
class Duplicate final : public Relocator {
 public:
  static constexpr std::string_view kTypeName = "fargo.Duplicate";
  std::string_view TypeName() const override { return kTypeName; }
  std::string_view Kind() const override { return "duplicate"; }
  RelocEffect EffectOnMove(const RelocContext&) const override {
    return RelocEffect::kCopyAlong;
  }
};

/// Re-bind to an equivalent-type complet at the destination (e.g. the local
/// printer after a mobile desktop arrives somewhere new).
class Stamp final : public Relocator {
 public:
  static constexpr std::string_view kTypeName = "fargo.Stamp";
  std::string_view TypeName() const override { return kTypeName; }
  std::string_view Kind() const override { return "stamp"; }
  RelocEffect EffectOnMove(const RelocContext&) const override {
    return RelocEffect::kRebind;
  }
};

/// Registers the four built-in relocators with the type registry. Called by
/// Runtime construction; safe to call repeatedly.
void RegisterBuiltinRelocators();

/// Creates a fresh default (link) relocator.
std::shared_ptr<Relocator> MakeDefaultRelocator();

/// Creates a built-in relocator by semantic kind: "link", "pull",
/// "duplicate" or "stamp". Throws FargoError on unknown kinds.
std::shared_ptr<Relocator> MakeRelocator(std::string_view kind);

}  // namespace fargo::core
