#include "src/core/naming.h"

namespace fargo::core {

void Naming::Bind(std::string name, ComletHandle handle) {
  bindings_[std::move(name)] = std::move(handle);
}

void Naming::Unbind(const std::string& name) { bindings_.erase(name); }

std::optional<ComletHandle> Naming::Lookup(const std::string& name) const {
  auto it = bindings_.find(name);
  if (it == bindings_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<std::string, ComletHandle>> Naming::All() const {
  return {bindings_.begin(), bindings_.end()};
}

}  // namespace fargo::core
