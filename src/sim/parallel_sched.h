// FARGO_PARALLEL: the real-parallel locality engine (motr reqh/fop-style).
//
// N worker threads, each *owning* a disjoint set of Cores by affinity
// (`affinity % localities()`), execute InvocationUnits/MovementUnits as
// non-blocking state machines. The engine is a conservative time-stepped
// parallel discrete-event scheduler:
//
//  - The *conductor* (whichever thread calls the Run* pumps — tests, shell,
//    benches) advances the global virtual clock to the next due timestamp
//    and releases the workers for one or more barrier-synchronized
//    *micro-rounds* at that time.
//  - During a round each worker drains its own priority queue of events due
//    at the current time. A continuation targeting another Core's ownership
//    domain is never run in place: it is handed off to the owning locality
//    through a bounded MPSC inbox (handoff.h) and executes in the next
//    micro-round.
//  - Rounds repeat at the same timestamp until no locality executed or
//    handed anything off; only then does the clock advance. Virtual-time
//    semantics are therefore identical to the sim engine: an event
//    scheduled for time T runs at Now() == T, never early, never late.
//
// Determinism: each locality's inbox is drained in sorted
// (time, source-locality, source-seq) order, and every producer stamps a
// private monotone seq, so the merged execution order per locality is a
// pure function of the workload — two runs with the same FARGO_PARALLEL=N
// are identical. (Sim and parallel interleave same-time events across
// *different* Cores differently; what is mode-invariant is the observable
// behavior — ledger contents, exactly-once, wire traffic per link — not
// internal event order. See DESIGN.md §localities.)
//
// Pumping is a conductor privilege: a worker entering RunUntil & friends
// throws FargoError (scheduler.h PumpGuard). Between rounds the workers
// are parked on the barrier, so the conductor may freely inspect Cores,
// metrics and futures — that is the happens-before edge that keeps the
// existing single-threaded test/driver idiom (pump, then assert) safe
// without any locking in test code.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/scheduler.h"

namespace fargo::sim {

// fargo: domain(sim)
class ParallelScheduler final : public Scheduler {
 public:
  /// `localities` worker threads (≥ 1). `handoff_capacity` sizes each
  /// MPSC inbox's lock-free slot array (overflow spills, never blocks).
  explicit ParallelScheduler(int localities,
                             std::size_t handoff_capacity = 1024);
  ~ParallelScheduler() override;

  SimTime Now() const override { return now_; }
  TaskId ScheduleAt(SimTime t, std::function<void()> fn) override;
  TaskId Post(std::uint64_t affinity, SimTime t,
              std::function<void()> fn) override;
  void Cancel(TaskId id) override;
  bool RunOne() override;
  void RunUntilIdle() override;
  void RunUntil(const std::function<bool()>& pred) override;
  bool RunUntilOr(const std::function<bool()>& pred,
                  SimTime deadline) override;
  void RunFor(SimTime d) override;
  std::size_t PendingCount() const override;
  void Clear() override;
  std::uint64_t executed() const override;
  int localities() const override { return num_localities_; }

  /// The locality that owns `affinity` (Cores: `core.id % localities()`).
  int LocalityOf(std::uint64_t affinity) const {
    return static_cast<int>(affinity % static_cast<std::uint64_t>(
                                           num_localities_));
  }

  /// Engine telemetry, mirrored into the metrics registry by Runtime
  /// (`locality.*`). Safe to read between pumps.
  struct Telemetry {
    std::uint64_t handoffs = 0;   ///< cross-locality tasks enqueued
    std::uint64_t overflows = 0;  ///< handoffs past the lock-free bound
    std::uint64_t steals = 0;     ///< always 0: affinity is strict, no
                                  ///< work stealing — the counter exists
                                  ///< so the invariant is observable
    std::uint64_t rounds = 0;     ///< barrier micro-rounds driven
    std::uint64_t max_queue_depth = 0;  ///< largest single inbox drain
  };
  Telemetry telemetry() const;

 private:
  struct Locality;  // defined in parallel_sched.cpp (owns the thread)

  void EnsureStarted();
  void WorkerLoop(int idx);
  TaskId WorkerEnqueue(int dest, SimTime t, std::function<void()> fn);
  /// Drives barrier micro-rounds at time `limit` until every locality is
  /// quiescent (nothing executed, nothing handed off). If `pred` is given
  /// it is checked between rounds; returns true the moment it holds.
  bool RunRoundsUntilQuiet(SimTime limit, const std::function<bool()>* pred);
  /// True when any staging area or inbox holds tasks not yet merged into a
  /// locality queue (conductor-side scheduling between pumps).
  bool AnyPendingExternal() const;
  /// Earliest due time across all locality queues (kNoDue when drained).
  SimTime MinNextDue() const;
  std::uint64_t ExecutedLocked() const;

  TaskId StageEnqueue(int dest, SimTime t, std::function<void()> fn);

  const int num_localities_;
  const std::size_t handoff_capacity_;
  std::vector<std::unique_ptr<Locality>> locs_;

  SimTime now_ = 0;  ///< written by the conductor while workers are parked

  // Barrier state lives behind an opaque impl so <thread> stays out of the
  // header (the determinism lint confines threading to src/sim/).
  struct Barrier;
  std::unique_ptr<Barrier> barrier_;
  bool started_ = false;
  std::uint64_t conductor_ids_ = 1;  ///< conductor-minted TaskId counter
  std::uint64_t conductor_seq_ = 0;  ///< conductor merge-key counter
  std::uint64_t rounds_ = 0;
};

}  // namespace fargo::sim
