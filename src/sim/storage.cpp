#include "src/sim/storage.h"

#include <algorithm>
#include <cstdio>

#include "src/common/value.h"

namespace fargo::sim {

const Storage::Log* Storage::FindNamed(const std::string& log) const {
  auto it = logs_.find(log);
  return it == logs_.end() ? nullptr : &it->second;
}

std::uint64_t Storage::Append(const std::string& log,
                              std::vector<std::uint8_t> record) {
  std::lock_guard<std::mutex> lk(mu_);
  Log& l = Named(log);
  ++stats_.appends;
  stats_.appended_bytes += record.size();
  const std::uint64_t index = l.base + l.durable.size() + l.tail.size();
  l.tail.push_back(std::move(record));
  return index;
}

Future<Unit> Storage::Sync(const std::string& log) {
  Promise<Unit> done(sched_);
  std::uint64_t epoch;
  std::size_t covered;
  SimTime latency;
  {
    std::lock_guard<std::mutex> lk(mu_);
    Log& l = Named(log);
    ++stats_.fsyncs;
    epoch = l.epoch;
    covered = l.tail.size();
    latency = fsync_latency_;
  }
  // ScheduleAfter keeps the barrier completion on the issuing Core's
  // locality, so the settled future's continuations run at home.
  sched_.ScheduleAfter(
      latency,
      // fargolint: allow(capture-this) the Runtime owns Storage and clears the queue before teardown
      [this, log, epoch, covered, done]() mutable {
        {
          std::lock_guard<std::mutex> lk(mu_);
          Log& now = Named(log);
          if (now.epoch == epoch) {
            const std::size_t n = std::min(covered, now.tail.size());
            for (std::size_t i = 0; i < n; ++i)
              now.durable.push_back(std::move(now.tail[i]));
            now.tail.erase(now.tail.begin(),
                           now.tail.begin() + static_cast<std::ptrdiff_t>(n));
          }
        }
        // A crashed log settles too: the records are simply lost, and the
        // caller's restart epoch tells it the barrier no longer matters.
        done.Resolve(Unit{});
      });
  return done.future();
}

void Storage::DropVolatile(const std::string& log) {
  std::lock_guard<std::mutex> lk(mu_);
  Log& l = Named(log);
  stats_.dropped_records += l.tail.size();
  l.tail.clear();
  l.pending_blob.reset();
  ++l.epoch;
}

void Storage::TruncateLog(const std::string& log, std::uint64_t new_base) {
  std::lock_guard<std::mutex> lk(mu_);
  Log& l = Named(log);
  if (new_base <= l.base) return;
  const std::uint64_t drop =
      std::min<std::uint64_t>(new_base - l.base, l.durable.size());
  l.durable.erase(l.durable.begin(),
                  l.durable.begin() + static_cast<std::ptrdiff_t>(drop));
  l.base += drop;
  stats_.truncated_records += drop;
}

std::vector<std::vector<std::uint8_t>> Storage::ReadDurable(
    const std::string& log) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Log* l = FindNamed(log);
  return l != nullptr ? l->durable : std::vector<std::vector<std::uint8_t>>{};
}

std::uint64_t Storage::NextIndex(const std::string& log) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Log* l = FindNamed(log);
  return l != nullptr ? l->base + l->durable.size() + l->tail.size() : 0;
}

std::uint64_t Storage::BaseIndex(const std::string& log) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Log* l = FindNamed(log);
  return l != nullptr ? l->base : 0;
}

std::size_t Storage::DurableCount(const std::string& log) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Log* l = FindNamed(log);
  return l != nullptr ? l->durable.size() : 0;
}

std::size_t Storage::VolatileCount(const std::string& log) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Log* l = FindNamed(log);
  return l != nullptr ? l->tail.size() : 0;
}

std::uint64_t Storage::DurableBytes(const std::string& log) const {
  std::lock_guard<std::mutex> lk(mu_);
  const Log* l = FindNamed(log);
  if (l == nullptr) return 0;
  std::uint64_t bytes = 0;
  for (const auto& rec : l->durable) bytes += rec.size();
  return bytes;
}

Future<Unit> Storage::PutBlob(const std::string& name,
                              std::vector<std::uint8_t> bytes) {
  Promise<Unit> done(sched_);
  std::uint64_t epoch;
  SimTime latency;
  {
    std::lock_guard<std::mutex> lk(mu_);
    Log& l = Named(name);
    l.pending_blob = std::move(bytes);
    ++stats_.fsyncs;
    epoch = l.epoch;
    latency = fsync_latency_;
  }
  sched_.ScheduleAfter(
      latency,
      // fargolint: allow(capture-this) the Runtime owns Storage and clears the queue before teardown
      [this, name, epoch, done]() mutable {
        {
          std::lock_guard<std::mutex> lk(mu_);
          Log& now = Named(name);
          if (now.epoch == epoch && now.pending_blob.has_value()) {
            blobs_[name] = std::move(*now.pending_blob);
            now.pending_blob.reset();
          }
        }
        done.Resolve(Unit{});
      });
  return done.future();
}

std::optional<std::vector<std::uint8_t>> Storage::GetBlob(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = blobs_.find(name);
  if (it == blobs_.end()) return std::nullopt;
  return it->second;
}

void Storage::ExportLog(const std::string& log, const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw FargoError("cannot open for writing: " + path);
  bool ok = true;
  for (const std::vector<std::uint8_t>& rec : ReadDurable(log)) {
    std::uint64_t len = rec.size();
    std::uint8_t frame[10];
    std::size_t n = 0;
    while (len >= 0x80) {
      frame[n++] = static_cast<std::uint8_t>(len) | 0x80;
      len >>= 7;
    }
    frame[n++] = static_cast<std::uint8_t>(len);
    ok = ok && std::fwrite(frame, 1, n, f) == n;
    ok = ok && std::fwrite(rec.data(), 1, rec.size(), f) == rec.size();
  }
  std::fclose(f);
  if (!ok) throw FargoError("short write exporting log to " + path);
}

void Storage::ImportLog(const std::string& log, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw FargoError("cannot open log file: " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);

  std::lock_guard<std::mutex> lk(mu_);
  Log& l = Named(log);
  l.base = 0;
  l.durable.clear();
  l.tail.clear();
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    std::uint64_t len = 0;
    int shift = 0;
    while (true) {
      if (pos >= bytes.size()) throw FargoError("truncated log frame in " + path);
      const std::uint8_t b = bytes[pos++];
      len |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    if (pos + len > bytes.size())
      throw FargoError("truncated log record in " + path);
    l.durable.emplace_back(bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                           bytes.begin() + static_cast<std::ptrdiff_t>(pos + len));
    pos += len;
  }
}

}  // namespace fargo::sim
