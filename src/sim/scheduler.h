// Deterministic discrete-event scheduler.
//
// All Cores, the network, continuous profiling, and asynchronous event
// notification run on one of these. Virtual time only advances when events
// are executed, so every test and benchmark is exactly reproducible.
//
// Blocking RPC (a synchronous complet invocation awaiting its reply) is
// realized by re-entrant pumping: RunUntil(pred) executes due events —
// which may themselves pump — until the predicate holds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/time.h"

namespace fargo::sim {

/// Handle used to cancel a scheduled task.
using TaskId = std::uint64_t;

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (clamped to Now()).
  TaskId ScheduleAt(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after `delay` from now.
  TaskId ScheduleAfter(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Cancels a pending task; no-op if it already ran or was cancelled.
  void Cancel(TaskId id) { cancelled_.insert(id); }

  /// Executes the next due event, advancing the clock. Returns false when
  /// the queue is empty.
  bool RunOne();

  /// Runs events until the queue drains.
  void RunUntilIdle();

  /// Runs events until `pred()` holds; throws FargoError if the queue
  /// drains first (a lost reply would otherwise hang forever). Re-entrant.
  void RunUntil(const std::function<bool()>& pred);

  /// Like RunUntil, but gives up at absolute time `deadline`. Returns true
  /// if the predicate held, false on timeout or drain. Re-entrant.
  bool RunUntilOr(const std::function<bool()>& pred, SimTime deadline);

  /// Runs all events due up to Now()+d, then advances the clock to it.
  void RunFor(SimTime d);

  /// Number of pending (non-cancelled) events.
  std::size_t PendingCount() const { return queue_.size() - cancelled_.size(); }

  /// Discards every pending event without running it. Used at runtime
  /// teardown: queued closures may hold references into Cores, so they
  /// must be destroyed while the Cores still exist.
  void Clear();

  /// Total number of events executed (telemetry for benchmarks).
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // FIFO tiebreak for same-time events (determinism)
    TaskId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool PopDue(SimTime limit, Entry& out);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  TaskId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<TaskId> cancelled_;
};

/// A self-rescheduling task; used by continuous profiling. Destroying or
/// stopping the task is safe at any point — including from within its own
/// callback (the callback's state is kept alive by the in-flight event).
class PeriodicTask {
 public:
  PeriodicTask(Scheduler& sched, SimTime interval, std::function<void()> fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Stop();
  bool running() const { return impl_->running; }
  SimTime interval() const { return impl_->interval; }

 private:
  struct Impl {
    Scheduler& sched;
    SimTime interval;
    std::function<void()> fn;
    bool running = true;
  };
  static void Arm(const std::shared_ptr<Impl>& impl);

  std::shared_ptr<Impl> impl_;
};

}  // namespace fargo::sim
