// Deterministic discrete-event scheduler.
//
// All Cores, the network, continuous profiling, and asynchronous event
// notification run on one of these. Virtual time only advances when events
// are executed, so every test and benchmark is exactly reproducible.
//
// `Scheduler` is the engine interface; two implementations exist:
//
//  - `SimScheduler` (this file): the single-threaded deterministic pump.
//    Default for tests, benches and CI — one priority queue, FIFO seq
//    tiebreak, bit-identical runs.
//  - `ParallelScheduler` (parallel_sched.h): N locality worker threads in
//    conservative time-stepped rounds, selected by `FARGO_PARALLEL=N`.
//    Same virtual-time semantics, same observable results (DESIGN.md
//    §localities), run-to-run deterministic for a fixed N.
//
// The asynchronous invocation pipeline (DESIGN.md §5) never pumps from
// inside an event handler: RPC machinery is written as scheduled
// continuations, and NoPumpScope enforces that invariant at run time. Only
// the top-level synchronous API wrappers pump (RunUntil and friends), and
// the scheduler keeps pump-depth accounting so tests can assert the
// invocation path stays at depth ≤ 1. Pumps are a conductor-thread
// privilege: a locality worker entering a pump throws.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/time.h"

namespace fargo::sim {

/// Handle used to cancel a scheduled task.
using TaskId = std::uint64_t;

namespace detail {
/// -1 on the conductor/main thread; the owning locality index on a
/// ParallelScheduler worker thread. Workers must never pump.
extern thread_local int tl_worker_locality;
/// Per-thread NoPumpScope nesting count. The no-pump invariant is a
/// property of the *calling thread*'s stack, so the counter is
/// thread-local rather than per-scheduler.
extern thread_local int tl_no_pump;
}  // namespace detail

// fargo: domain(sim)
class Scheduler {
 public:
  Scheduler() = default;
  virtual ~Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  virtual SimTime Now() const = 0;

  /// Schedules `fn` at absolute time `t` (clamped to Now()). In the
  /// parallel engine the task lands on the calling thread's locality (or
  /// the ambient AffinityScope's, if one is active).
  virtual TaskId ScheduleAt(SimTime t, std::function<void()> fn) = 0;

  /// Schedules `fn` after `delay` from now.
  TaskId ScheduleAfter(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(Now() + delay, std::move(fn));
  }

  /// Affinity-routed scheduling: runs `fn` at `t` on the locality that owns
  /// `affinity` (localities partition Cores by `key % localities()`). This
  /// is the *sanctioned cross-locality handoff*: a continuation that
  /// touches another Core's ownership domain must be posted to that Core's
  /// home locality rather than run in place. The sim engine ignores the
  /// key — Post degrades to ScheduleAt, which is what makes the two modes
  /// observably equivalent.
  virtual TaskId Post(std::uint64_t affinity, SimTime t,
                      std::function<void()> fn) {
    (void)affinity;
    return ScheduleAt(t, std::move(fn));
  }

  /// Post after `delay` from now (see Post).
  TaskId PostAfter(std::uint64_t affinity, SimTime delay,
                   std::function<void()> fn) {
    return Post(affinity, Now() + delay, std::move(fn));
  }

  /// Cancels a pending task; no-op if it already ran or was cancelled.
  virtual void Cancel(TaskId id) = 0;

  /// Executes the next due event, advancing the clock. Returns false when
  /// the queue is empty. (Parallel engine: executes the next *timestamp*,
  /// which may run many events across localities.)
  virtual bool RunOne() = 0;

  /// Runs events until the queue drains.
  virtual void RunUntilIdle() = 0;

  /// Runs events until `pred()` holds; throws FargoError if the queue
  /// drains first (a lost reply would otherwise hang forever). Re-entrant.
  virtual void RunUntil(const std::function<bool()>& pred) = 0;

  /// Like RunUntil, but gives up at absolute time `deadline`. Returns true
  /// if the predicate held, false on timeout or drain. Re-entrant.
  virtual bool RunUntilOr(const std::function<bool()>& pred,
                          SimTime deadline) = 0;

  /// Runs all events due up to Now()+d, then advances the clock to it.
  virtual void RunFor(SimTime d) = 0;

  /// Number of pending (non-cancelled) events.
  virtual std::size_t PendingCount() const = 0;

  /// Discards every pending event without running it. Used at runtime
  /// teardown: queued closures may hold references into Cores, so they
  /// must be destroyed while the Cores still exist.
  virtual void Clear() = 0;

  /// Total number of events executed (telemetry for benchmarks).
  virtual std::uint64_t executed() const = 0;

  /// Number of locality worker threads. 0 = deterministic single-threaded
  /// sim (the conductor thread executes events itself).
  virtual int localities() const { return 0; }

  // -- pump-depth accounting ---------------------------------------------------

  /// How many pump loops (RunUntil/RunUntilOr/RunUntilIdle/RunFor/RunOne at
  /// top level) are currently on the call stack. 0 outside any pump; the
  /// async pipeline keeps this at ≤ 1.
  int PumpDepth() const { return pump_depth_; }

  /// Deepest nesting ever observed (telemetry; mirrored into the
  /// `sched.pump_depth` max-gauge by Runtime).
  int MaxPumpDepth() const { return max_pump_depth_; }

  /// Called with the new depth every time a pump is entered. Runtime wires
  /// this to the metrics registry.
  void SetPumpObserver(std::function<void(int)> obs) {
    pump_observer_ = std::move(obs);
  }

  /// RAII: while alive, entering any pump loop *on this thread* throws
  /// FargoError. The async RPC machinery holds one of these across its
  /// bookkeeping so a blocking call can never sneak back into the
  /// continuation path. Always on (the default build defines NDEBUG, so a
  /// plain assert would be vacuous); the check is a single integer test
  /// per pump entry.
  // fargo: domain(sim)
  class NoPumpScope {
   public:
    explicit NoPumpScope(Scheduler&) { ++detail::tl_no_pump; }
    ~NoPumpScope() { --detail::tl_no_pump; }
    NoPumpScope(const NoPumpScope&) = delete;
    NoPumpScope& operator=(const NoPumpScope&) = delete;
  };

  /// RAII: while alive, ScheduleAt on this thread routes to the locality
  /// owning `affinity` instead of the calling thread's own locality. Core
  /// public entry points hold one so that work started from the conductor
  /// (tests, shell, benches) lands on the Core's home locality. A no-op
  /// under the sim engine. Scopes nest; the innermost wins.
  // fargo: domain(sim)
  class AffinityScope {
   public:
    explicit AffinityScope(std::uint64_t affinity)
        : prev_key_(ambient_key_), prev_set_(ambient_set_) {
      ambient_key_ = affinity;
      ambient_set_ = true;
    }
    ~AffinityScope() {
      ambient_key_ = prev_key_;
      ambient_set_ = prev_set_;
    }
    AffinityScope(const AffinityScope&) = delete;
    AffinityScope& operator=(const AffinityScope&) = delete;

    /// The calling thread's ambient affinity, if an AffinityScope is
    /// active. Returns false otherwise.
    static bool Current(std::uint64_t& affinity) {
      if (!ambient_set_) return false;
      affinity = ambient_key_;
      return true;
    }

   private:
    static thread_local std::uint64_t ambient_key_;
    static thread_local bool ambient_set_;
    std::uint64_t prev_key_;
    bool prev_set_;
  };

 protected:
  /// RAII around every pump loop: bumps depth, notifies the observer, and
  /// rejects entry from inside a NoPumpScope or from a locality worker.
  // fargo: domain(sim)
  class PumpGuard {
   public:
    explicit PumpGuard(Scheduler& s);
    ~PumpGuard() { --sched_.pump_depth_; }
    PumpGuard(const PumpGuard&) = delete;
    PumpGuard& operator=(const PumpGuard&) = delete;

   private:
    Scheduler& sched_;
  };

  int pump_depth_ = 0;
  int max_pump_depth_ = 0;
  std::function<void(int)> pump_observer_;
};

/// The single-threaded deterministic pump: one priority queue ordered by
/// (time, FIFO seq). The default engine for tests, benches and CI.
// fargo: domain(sim)
class SimScheduler final : public Scheduler {
 public:
  SimScheduler() = default;

  SimTime Now() const override { return now_; }
  TaskId ScheduleAt(SimTime t, std::function<void()> fn) override;
  void Cancel(TaskId id) override { cancelled_.insert(id); }
  bool RunOne() override;
  void RunUntilIdle() override;
  void RunUntil(const std::function<bool()>& pred) override;
  bool RunUntilOr(const std::function<bool()>& pred,
                  SimTime deadline) override;
  void RunFor(SimTime d) override;
  std::size_t PendingCount() const override {
    return queue_.size() - cancelled_.size();
  }
  void Clear() override;
  std::uint64_t executed() const override { return executed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // FIFO tiebreak for same-time events (determinism)
    TaskId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool PopDue(SimTime limit, Entry& out);
  bool RunOneLocked();  ///< RunOne body, called under an active PumpGuard

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  TaskId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<TaskId> cancelled_;
};

/// A self-rescheduling task; used by continuous profiling. Destroying or
/// stopping the task is safe at any point — including from within its own
/// callback (the callback's state is kept alive by the in-flight event).
// fargo: domain(sim)
class PeriodicTask {
 public:
  PeriodicTask(Scheduler& sched, SimTime interval, std::function<void()> fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Stop();
  bool running() const { return impl_->running; }
  SimTime interval() const { return impl_->interval; }

 private:
  struct Impl {
    Scheduler& sched;
    SimTime interval;
    std::function<void()> fn;
    bool running = true;
  };
  static void Arm(const std::shared_ptr<Impl>& impl);

  std::shared_ptr<Impl> impl_;
};

}  // namespace fargo::sim
