// Deterministic discrete-event scheduler.
//
// All Cores, the network, continuous profiling, and asynchronous event
// notification run on one of these. Virtual time only advances when events
// are executed, so every test and benchmark is exactly reproducible.
//
// The asynchronous invocation pipeline (DESIGN.md §5) never pumps from
// inside an event handler: RPC machinery is written as scheduled
// continuations, and NoPumpScope enforces that invariant at run time. Only
// the top-level synchronous API wrappers pump (RunUntil and friends), and
// the scheduler keeps pump-depth accounting so tests can assert the
// invocation path stays at depth ≤ 1.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/time.h"

namespace fargo::sim {

/// Handle used to cancel a scheduled task.
using TaskId = std::uint64_t;

// fargo: domain(sim)
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (clamped to Now()).
  TaskId ScheduleAt(SimTime t, std::function<void()> fn);

  /// Schedules `fn` after `delay` from now.
  TaskId ScheduleAfter(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Cancels a pending task; no-op if it already ran or was cancelled.
  void Cancel(TaskId id) { cancelled_.insert(id); }

  /// Executes the next due event, advancing the clock. Returns false when
  /// the queue is empty.
  bool RunOne();

  /// Runs events until the queue drains.
  void RunUntilIdle();

  /// Runs events until `pred()` holds; throws FargoError if the queue
  /// drains first (a lost reply would otherwise hang forever). Re-entrant.
  void RunUntil(const std::function<bool()>& pred);

  /// Like RunUntil, but gives up at absolute time `deadline`. Returns true
  /// if the predicate held, false on timeout or drain. Re-entrant.
  bool RunUntilOr(const std::function<bool()>& pred, SimTime deadline);

  /// Runs all events due up to Now()+d, then advances the clock to it.
  void RunFor(SimTime d);

  /// Number of pending (non-cancelled) events.
  std::size_t PendingCount() const { return queue_.size() - cancelled_.size(); }

  /// Discards every pending event without running it. Used at runtime
  /// teardown: queued closures may hold references into Cores, so they
  /// must be destroyed while the Cores still exist.
  void Clear();

  /// Total number of events executed (telemetry for benchmarks).
  std::uint64_t executed() const { return executed_; }

  // -- pump-depth accounting ---------------------------------------------------

  /// How many pump loops (RunUntil/RunUntilOr/RunUntilIdle/RunFor/RunOne at
  /// top level) are currently on the call stack. 0 outside any pump; the
  /// async pipeline keeps this at ≤ 1.
  int PumpDepth() const { return pump_depth_; }

  /// Deepest nesting ever observed (telemetry; mirrored into the
  /// `sched.pump_depth` max-gauge by Runtime).
  int MaxPumpDepth() const { return max_pump_depth_; }

  /// Called with the new depth every time a pump is entered. Runtime wires
  /// this to the metrics registry.
  void SetPumpObserver(std::function<void(int)> obs) {
    pump_observer_ = std::move(obs);
  }

  /// RAII: while alive, entering any pump loop throws FargoError. The async
  /// RPC machinery holds one of these across its bookkeeping so a blocking
  /// call can never sneak back into the continuation path. Always on (the
  /// default build defines NDEBUG, so a plain assert would be vacuous); the
  /// check is a single integer test per pump entry.
  // fargo: domain(sim)
  class NoPumpScope {
   public:
    explicit NoPumpScope(Scheduler& s) : sched_(s) { ++sched_.no_pump_; }
    ~NoPumpScope() { --sched_.no_pump_; }
    NoPumpScope(const NoPumpScope&) = delete;
    NoPumpScope& operator=(const NoPumpScope&) = delete;

   private:
    Scheduler& sched_;
  };

 private:
  /// RAII around every pump loop: bumps depth, notifies the observer, and
  /// rejects entry from inside a NoPumpScope.
  // fargo: domain(sim)
  class PumpGuard {
   public:
    explicit PumpGuard(Scheduler& s);
    ~PumpGuard() { --sched_.pump_depth_; }
    PumpGuard(const PumpGuard&) = delete;
    PumpGuard& operator=(const PumpGuard&) = delete;

   private:
    Scheduler& sched_;
  };

  struct Entry {
    SimTime at;
    std::uint64_t seq;  // FIFO tiebreak for same-time events (determinism)
    TaskId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool PopDue(SimTime limit, Entry& out);
  bool RunOneLocked();  ///< RunOne body, called under an active PumpGuard

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  TaskId next_id_ = 1;
  std::uint64_t executed_ = 0;
  int pump_depth_ = 0;
  int max_pump_depth_ = 0;
  int no_pump_ = 0;
  std::function<void(int)> pump_observer_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<TaskId> cancelled_;
};

/// A self-rescheduling task; used by continuous profiling. Destroying or
/// stopping the task is safe at any point — including from within its own
/// callback (the callback's state is kept alive by the in-flight event).
// fargo: domain(sim)
class PeriodicTask {
 public:
  PeriodicTask(Scheduler& sched, SimTime interval, std::function<void()> fn);
  ~PeriodicTask();
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Stop();
  bool running() const { return impl_->running; }
  SimTime interval() const { return impl_->interval; }

 private:
  struct Impl {
    Scheduler& sched;
    SimTime interval;
    std::function<void()> fn;
    bool running = true;
  };
  static void Arm(const std::shared_ptr<Impl>& impl);

  std::shared_ptr<Impl> impl_;
};

}  // namespace fargo::sim
