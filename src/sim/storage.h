// Deterministic durable-storage model: the "disk" under the per-Core WAL.
//
// Each named log is an append-only sequence of records split into a durable
// prefix and a volatile tail. Append() lands in the tail (the OS page
// cache); Sync() models an fsync barrier — after the configured fsync
// latency elapses on the simulated clock, the records the barrier covered
// become durable and the returned future settles. A crash (DropVolatile)
// loses the tail, exactly like power loss loses unsynced pages; durable
// records survive. Named blobs (checkpoint images) get the same treatment
// with atomic-replace semantics: the new image becomes visible only when
// its write barrier completes, so a crash mid-checkpoint leaves the old
// image intact.
//
// Everything is in-memory and driven by the shared Scheduler, so recovery
// tests are exactly reproducible; Export/Import bridge a log's durable
// prefix to a real file for use outside the simulation.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/sim/future.h"
#include "src/sim/scheduler.h"

namespace fargo::sim {

/// Thread safety (FARGO_PARALLEL): per-Core WALs live in one Storage, so
/// appends/syncs arrive from every locality; one mutex guards the maps and
/// stats. Barrier completions are scheduled on the issuing locality.
// fargo: domain(sim)
class Storage {
 public:
  explicit Storage(Scheduler& sched) : sched_(sched) {}
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  /// Simulated cost of one write barrier (fsync). Applied per Sync/PutBlob.
  void SetFsyncLatency(SimTime t) {
    std::lock_guard<std::mutex> lk(mu_);
    fsync_latency_ = t;
  }
  SimTime fsync_latency() const {
    std::lock_guard<std::mutex> lk(mu_);
    return fsync_latency_;
  }

  // ==== logs =================================================================

  /// Appends one record to the volatile tail of `log`. Returns the record's
  /// absolute index (stable across truncation).
  std::uint64_t Append(const std::string& log, std::vector<std::uint8_t> record);

  /// Write barrier: settles after the fsync latency, at which point every
  /// record appended before this call is durable. Records appended after
  /// the barrier was issued stay volatile until their own barrier. If the
  /// log crashes (DropVolatile) while the barrier is in flight, the covered
  /// records are lost and the future settles anyway — callers guard with
  /// their own restart epoch.
  Future<Unit> Sync(const std::string& log);

  /// Crash: the volatile tail is lost, in-flight barriers are voided, and a
  /// pending blob replace is discarded. Durable state is untouched.
  void DropVolatile(const std::string& log);

  /// Drops durable records with absolute index < `new_base` (checkpoint
  /// truncation). Volatile records are never truncated.
  void TruncateLog(const std::string& log, std::uint64_t new_base);

  /// Snapshot of the durable records, in append order.
  std::vector<std::vector<std::uint8_t>> ReadDurable(const std::string& log) const;

  /// Absolute index the next Append to `log` would return.
  std::uint64_t NextIndex(const std::string& log) const;
  /// Absolute index of the first durable record (truncation base).
  std::uint64_t BaseIndex(const std::string& log) const;
  std::size_t DurableCount(const std::string& log) const;
  std::size_t VolatileCount(const std::string& log) const;
  std::uint64_t DurableBytes(const std::string& log) const;

  // ==== blobs ================================================================

  /// Atomically replaces the blob `name` once the write barrier completes.
  /// A crash before settlement keeps the previous blob.
  Future<Unit> PutBlob(const std::string& name, std::vector<std::uint8_t> bytes);

  std::optional<std::vector<std::uint8_t>> GetBlob(const std::string& name) const;

  // ==== real files (outside the simulation) ==================================

  /// Writes the durable prefix of `log` (record-length-framed) to `path`.
  void ExportLog(const std::string& log, const std::string& path) const;
  /// Replaces the durable prefix of `log` with the records in `path`.
  void ImportLog(const std::string& log, const std::string& path);

  // ==== telemetry ============================================================

  struct Stats {
    std::uint64_t appends = 0;
    std::uint64_t appended_bytes = 0;
    std::uint64_t fsyncs = 0;           ///< barriers issued (logs + blobs)
    std::uint64_t truncated_records = 0;
    std::uint64_t dropped_records = 0;  ///< volatile records lost to crashes
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

 private:
  struct Log {
    std::uint64_t base = 0;  ///< absolute index of durable.front()
    std::vector<std::vector<std::uint8_t>> durable;
    std::vector<std::vector<std::uint8_t>> tail;
    std::uint64_t epoch = 0;  ///< bumped by DropVolatile; voids barriers
    // Pending atomic blob replace (checkpoint in flight), if any.
    std::optional<std::vector<std::uint8_t>> pending_blob;
  };

  /// Callers hold mu_.
  Log& Named(const std::string& log) { return logs_[log]; }
  const Log* FindNamed(const std::string& log) const;

  Scheduler& sched_;
  mutable std::mutex mu_;  ///< guards every field below
  SimTime fsync_latency_ = Micros(100);
  // Ordered map: deterministic iteration for any future all-logs walk.
  std::map<std::string, Log> logs_;
  std::map<std::string, std::vector<std::uint8_t>> blobs_;
  Stats stats_;
};

}  // namespace fargo::sim
