// Bounded MPSC cross-locality handoff buffer.
//
// The ParallelScheduler gives each locality a *ping-pong pair* of these:
// during micro-round m every producer locality pushes into inbox[m % 2],
// and at the start of round m+1 the owning worker drains inbox[m % 2]
// exclusively while producers have moved on to the other buffer. That
// phase discipline (enforced by the round barrier, which also provides the
// happens-before edge) means a buffer is never pushed and drained
// concurrently, so the fast path is a single fetch_add ticket into a
// pre-sized slot array — no locks, no CAS loops, no per-slot flags.
//
// The bound is the lock-free fast path, not a correctness limit: a push
// that finds the slot array full spills into a mutex-guarded overflow
// vector (counted — `locality.handoff_overflows` — so capacity tuning is
// observable) instead of blocking. Blocking would deadlock the round
// barrier: the consumer that must drain the buffer is parked until every
// producer arrives at the barrier.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "src/common/time.h"

namespace fargo::sim {

// fargo: domain(sim)
class HandoffQueue {
 public:
  /// One cross-locality task. `(at, src, seq)` is the deterministic merge
  /// key: `src` is the producing locality (the conductor uses a reserved
  /// id that sorts after all workers) and `seq` the producer's private
  /// monotone counter, so the merged order is independent of thread timing.
  struct Item {
    SimTime at = 0;
    std::uint32_t src = 0;
    std::uint64_t seq = 0;
    std::uint64_t id = 0;  ///< TaskId, for cancellation
    std::function<void()> fn;
  };

  explicit HandoffQueue(std::size_t capacity) : slots_(capacity) {}
  HandoffQueue(const HandoffQueue&) = delete;
  HandoffQueue& operator=(const HandoffQueue&) = delete;

  /// Producer side; callable concurrently from many threads. Never blocks:
  /// overflow beyond the slot capacity goes to the spill vector.
  void Push(Item item) {
    const std::size_t ticket =
        tickets_.fetch_add(1, std::memory_order_relaxed);
    if (ticket < slots_.size()) {
      slots_[ticket] = std::move(item);
      return;
    }
    std::lock_guard<std::mutex> lock(spill_mu_);
    spill_.push_back(std::move(item));
    ++overflows_;
  }

  /// Consumer side; requires external quiescence of producers (the round
  /// barrier). Appends every queued item to `out` and resets the buffer.
  /// Returns the number of items drained.
  std::size_t DrainInto(std::vector<Item>& out) {
    const std::size_t n =
        std::min(tickets_.load(std::memory_order_relaxed), slots_.size());
    for (std::size_t i = 0; i < n; ++i) out.push_back(std::move(slots_[i]));
    std::size_t drained = n;
    {
      std::lock_guard<std::mutex> lock(spill_mu_);
      drained += spill_.size();
      for (auto& item : spill_) out.push_back(std::move(item));
      spill_.clear();
    }
    if (drained > max_depth_) max_depth_ = drained;
    tickets_.store(0, std::memory_order_relaxed);
    return drained;
  }

  /// Conservative occupancy estimate; exact while producers are quiescent.
  std::size_t ApproxSize() const {
    const std::size_t t = tickets_.load(std::memory_order_relaxed);
    std::size_t n = std::min(t, slots_.size());
    std::lock_guard<std::mutex> lock(spill_mu_);
    return n + spill_.size();
  }

  bool Empty() const { return ApproxSize() == 0; }

  std::size_t capacity() const { return slots_.size(); }
  /// Pushes that missed the lock-free slot array (capacity pressure).
  std::uint64_t overflows() const {
    std::lock_guard<std::mutex> lock(spill_mu_);
    return overflows_;
  }
  /// Largest single drain observed (consumer-side; feeds
  /// `locality.queue_depth`).
  std::size_t max_depth() const { return max_depth_; }

 private:
  std::vector<Item> slots_;
  std::atomic<std::size_t> tickets_{0};
  mutable std::mutex spill_mu_;
  std::vector<Item> spill_;
  std::uint64_t overflows_ = 0;  ///< guarded by spill_mu_
  std::size_t max_depth_ = 0;    ///< consumer-only
};

}  // namespace fargo::sim
