#include "src/sim/parallel_sched.h"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/common/value.h"  // FargoError
#include "src/sim/handoff.h"

namespace fargo::sim {

namespace {

constexpr std::uint32_t kConductorRank = 0xFFFFFFFFu;
constexpr SimTime kNoDue = std::numeric_limits<SimTime>::max();

// TaskId layout: [8b destination locality | 8b producer tag | 48b counter].
// The destination routes Cancel; the producer tag + per-producer counter
// make ids unique without shared state (tag 0 = conductor, i+1 = worker i).
TaskId MakeId(int dest, unsigned producer_tag, std::uint64_t n) {
  return (static_cast<TaskId>(dest) << 56) |
         (static_cast<TaskId>(producer_tag & 0xFFu) << 48) |
         (n & 0x0000FFFFFFFFFFFFull);
}
int IdDest(TaskId id) { return static_cast<int>(id >> 56); }

/// Routing context while a worker executes a round; null sched otherwise.
struct WorkerCtx {
  ParallelScheduler* sched = nullptr;
  int loc = -1;
  std::uint64_t round = 0;
  bool* pushed = nullptr;
};
thread_local WorkerCtx tl_ctx;

}  // namespace

struct ParallelScheduler::Barrier {
  std::mutex mu;
  std::condition_variable cv_go;
  std::condition_variable cv_done;
  std::uint64_t go_round = 0;  ///< bumped by the conductor to release a round
  SimTime limit = 0;           ///< the round's execution horizon
  int arrived = 0;             ///< workers parked since the last release
  bool stop = false;
};

struct ParallelScheduler::Locality {
  struct Entry {
    SimTime at;
    std::uint64_t prio;  // local insertion order: same-time FIFO tiebreak
    TaskId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.prio > b.prio;
    }
  };

  explicit Locality(std::size_t cap) : inbox0(cap), inbox1(cap) {}

  HandoffQueue& inbox(unsigned parity) { return parity ? inbox1 : inbox0; }

  // -- worker-confined (the conductor touches these only while every
  // -- worker is parked; the barrier mutex is the happens-before edge) ----
  std::priority_queue<Entry, std::vector<Entry>, Later> queue;
  std::unordered_set<TaskId> cancelled;
  std::uint64_t prio_seq = 0;   ///< queue insertion order
  std::uint64_t merge_seq = 0;  ///< producer stamp on outgoing handoffs
  std::uint64_t id_seq = 1;     ///< TaskId counter (producer-private)
  std::uint64_t handoffs = 0;   ///< cross-locality tasks sent

  // Ping-pong MPSC inboxes: producers fill inbox(round & 1) during round
  // `round`; the owner drains inbox((round + 1) & 1) — last round's —
  // exclusively at the start of its round (see handoff.h).
  HandoffQueue inbox0;
  HandoffQueue inbox1;

  // Conductor-side scheduling between pumps + cross-thread cancels.
  mutable std::mutex staging_mu;
  std::vector<HandoffQueue::Item> staged;
  std::vector<TaskId> staged_cancels;

  // Round results, published at park under the barrier mutex.
  SimTime next_due = kNoDue;
  std::uint64_t executed = 0;
  bool did_work = false;
  std::exception_ptr error;

  std::thread thread;
};

ParallelScheduler::ParallelScheduler(int localities,
                                     std::size_t handoff_capacity)
    : num_localities_(localities < 1 ? 1 : localities),
      handoff_capacity_(handoff_capacity),
      barrier_(std::make_unique<Barrier>()) {
  locs_.reserve(static_cast<std::size_t>(num_localities_));
  for (int i = 0; i < num_localities_; ++i)
    locs_.push_back(std::make_unique<Locality>(handoff_capacity_));
}

ParallelScheduler::~ParallelScheduler() {
  if (started_) {
    {
      std::lock_guard<std::mutex> lk(barrier_->mu);
      barrier_->stop = true;
    }
    barrier_->cv_go.notify_all();
    for (auto& l : locs_)
      if (l->thread.joinable()) l->thread.join();
  }
}

void ParallelScheduler::EnsureStarted() {
  if (started_) return;
  started_ = true;
  for (int i = 0; i < num_localities_; ++i)
    locs_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { WorkerLoop(i); });
}

void ParallelScheduler::WorkerLoop(int idx) {
  detail::tl_worker_locality = idx;
  Locality& self = *locs_[static_cast<std::size_t>(idx)];
  Barrier& b = *barrier_;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(b.mu);
  for (;;) {
    b.cv_go.wait(lk, [&] { return b.stop || b.go_round != seen; });
    if (b.stop) return;
    seen = b.go_round;
    const SimTime limit = b.limit;
    lk.unlock();

    std::uint64_t exec = 0;
    bool pushed = false;
    std::exception_ptr err;
    tl_ctx = WorkerCtx{this, idx, seen, &pushed};

    // Merge: conductor-staged work, cross-thread cancels, and the inbox
    // the producers filled last round — in deterministic (at, src, seq)
    // order, so the queue insertion order (the same-time tiebreak) is a
    // pure function of the workload, not of thread timing.
    std::vector<HandoffQueue::Item> batch;
    std::vector<TaskId> cancels;
    {
      std::lock_guard<std::mutex> sl(self.staging_mu);
      batch.swap(self.staged);
      cancels.swap(self.staged_cancels);
    }
    self.inbox((seen + 1) & 1).DrainInto(batch);
    std::sort(batch.begin(), batch.end(),
              [](const HandoffQueue::Item& a, const HandoffQueue::Item& b) {
                if (a.at != b.at) return a.at < b.at;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    for (auto& item : batch)
      self.queue.push(Locality::Entry{item.at, self.prio_seq++, item.id,
                                      std::move(item.fn)});
    for (TaskId id : cancels) self.cancelled.insert(id);

    // Execute everything due at the horizon. Locally-scheduled same-time
    // work runs within this round (matching the sim's run-to-completion at
    // a timestamp); handoffs land in peers' inboxes for the next round.
    try {
      while (!self.queue.empty() && self.queue.top().at <= limit) {
        Locality::Entry e =
            std::move(const_cast<Locality::Entry&>(self.queue.top()));
        self.queue.pop();
        if (auto it = self.cancelled.find(e.id);
            it != self.cancelled.end()) {
          self.cancelled.erase(it);
          continue;
        }
        ++exec;
        e.fn();
      }
    } catch (...) {
      err = std::current_exception();
    }
    // Prune cancelled heads so next_due names a live event (a cancelled
    // timestamp must not drag the global clock forward).
    while (!self.queue.empty()) {
      auto it = self.cancelled.find(self.queue.top().id);
      if (it == self.cancelled.end()) break;
      self.cancelled.erase(it);
      self.queue.pop();
    }
    tl_ctx = WorkerCtx{};

    lk.lock();
    self.executed += exec;
    self.did_work = exec > 0 || pushed;
    self.next_due = self.queue.empty() ? kNoDue : self.queue.top().at;
    if (err && !self.error) self.error = err;
    if (++b.arrived == num_localities_) b.cv_done.notify_all();
  }
}

TaskId ParallelScheduler::ScheduleAt(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;
  std::uint64_t aff = 0;
  const bool has_aff = Scheduler::AffinityScope::Current(aff);
  if (tl_ctx.sched == this) {
    const int dest = has_aff ? LocalityOf(aff) : tl_ctx.loc;
    return WorkerEnqueue(dest, t, std::move(fn));
  }
  const int dest = has_aff ? LocalityOf(aff) : 0;
  return StageEnqueue(dest, t, std::move(fn));
}

TaskId ParallelScheduler::Post(std::uint64_t affinity, SimTime t,
                               std::function<void()> fn) {
  if (t < now_) t = now_;
  const int dest = LocalityOf(affinity);
  if (tl_ctx.sched == this) return WorkerEnqueue(dest, t, std::move(fn));
  return StageEnqueue(dest, t, std::move(fn));
}

TaskId ParallelScheduler::WorkerEnqueue(int dest, SimTime t,
                                        std::function<void()> fn) {
  Locality& self = *locs_[static_cast<std::size_t>(tl_ctx.loc)];
  const TaskId id =
      MakeId(dest, static_cast<unsigned>(tl_ctx.loc) + 1, self.id_seq++);
  if (dest == tl_ctx.loc) {
    self.queue.push(
        Locality::Entry{t, self.prio_seq++, id, std::move(fn)});
  } else {
    locs_[static_cast<std::size_t>(dest)]
        ->inbox(tl_ctx.round & 1)
        .Push(HandoffQueue::Item{t, static_cast<std::uint32_t>(tl_ctx.loc),
                                 self.merge_seq++, id, std::move(fn)});
    ++self.handoffs;
    *tl_ctx.pushed = true;
  }
  return id;
}

TaskId ParallelScheduler::StageEnqueue(int dest, SimTime t,
                                       std::function<void()> fn) {
  const TaskId id = MakeId(dest, 0, conductor_ids_++);
  Locality& loc = *locs_[static_cast<std::size_t>(dest)];
  std::lock_guard<std::mutex> sl(loc.staging_mu);
  loc.staged.push_back(
      HandoffQueue::Item{t, kConductorRank, conductor_seq_++, id,
                         std::move(fn)});
  return id;
}

void ParallelScheduler::Cancel(TaskId id) {
  const int dest = IdDest(id);
  if (dest < 0 || dest >= num_localities_) return;
  if (tl_ctx.sched == this && dest == tl_ctx.loc) {
    locs_[static_cast<std::size_t>(dest)]->cancelled.insert(id);
    return;
  }
  Locality& loc = *locs_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> sl(loc.staging_mu);
    loc.staged_cancels.push_back(id);
  }
  if (tl_ctx.sched == this) *tl_ctx.pushed = true;
}

bool ParallelScheduler::RunRoundsUntilQuiet(
    SimTime limit, const std::function<bool()>* pred) {
  Barrier& b = *barrier_;
  for (;;) {
    bool any = false;
    std::exception_ptr err;
    {
      std::unique_lock<std::mutex> lk(b.mu);
      b.arrived = 0;
      b.limit = limit;
      ++b.go_round;
      b.cv_go.notify_all();
      b.cv_done.wait(lk, [&] { return b.arrived == num_localities_; });
      for (auto& l : locs_) {
        any = any || l->did_work;
        if (l->error && !err) {
          err = l->error;
          l->error = nullptr;
        }
      }
    }
    ++rounds_;
    if (err) std::rethrow_exception(err);
    if (pred && (*pred)()) return true;
    if (!any) return false;
  }
}

bool ParallelScheduler::AnyPendingExternal() const {
  for (const auto& l : locs_) {
    {
      std::lock_guard<std::mutex> sl(l->staging_mu);
      if (!l->staged.empty() || !l->staged_cancels.empty()) return true;
    }
    if (!l->inbox0.Empty() || !l->inbox1.Empty()) return true;
  }
  return false;
}

SimTime ParallelScheduler::MinNextDue() const {
  SimTime m = kNoDue;
  for (const auto& l : locs_) m = std::min(m, l->next_due);
  return m;
}

std::uint64_t ParallelScheduler::ExecutedLocked() const {
  std::uint64_t total = 0;
  for (const auto& l : locs_) total += l->executed;
  return total;
}

bool ParallelScheduler::RunOne() {
  PumpGuard guard(*this);
  EnsureStarted();
  const std::uint64_t before = ExecutedLocked();
  for (;;) {
    if (AnyPendingExternal()) {
      RunRoundsUntilQuiet(now_, nullptr);
      if (ExecutedLocked() > before) return true;
      continue;
    }
    const SimTime due = MinNextDue();
    if (due == kNoDue) return ExecutedLocked() > before;
    if (due > now_) now_ = due;
    RunRoundsUntilQuiet(now_, nullptr);
    if (ExecutedLocked() > before) return true;
    // Cancelled-only timestamp: keep advancing.
  }
}

void ParallelScheduler::RunUntilIdle() {
  PumpGuard guard(*this);
  EnsureStarted();
  for (;;) {
    if (AnyPendingExternal()) {
      RunRoundsUntilQuiet(now_, nullptr);
      continue;
    }
    const SimTime due = MinNextDue();
    if (due == kNoDue) return;
    if (due > now_) now_ = due;
    RunRoundsUntilQuiet(now_, nullptr);
  }
}

void ParallelScheduler::RunUntil(const std::function<bool()>& pred) {
  PumpGuard guard(*this);
  EnsureStarted();
  for (;;) {
    if (pred()) return;
    if (AnyPendingExternal()) {
      if (RunRoundsUntilQuiet(now_, &pred)) return;
      continue;
    }
    const SimTime due = MinNextDue();
    if (due == kNoDue)
      throw FargoError("scheduler drained while awaiting a condition "
                       "(lost message or dead peer?)");
    if (due > now_) now_ = due;
    if (RunRoundsUntilQuiet(now_, &pred)) return;
  }
}

bool ParallelScheduler::RunUntilOr(const std::function<bool()>& pred,
                                   SimTime deadline) {
  PumpGuard guard(*this);
  EnsureStarted();
  for (;;) {
    if (pred()) return true;
    if (AnyPendingExternal()) {
      if (RunRoundsUntilQuiet(now_, &pred)) return true;
      continue;
    }
    const SimTime due = MinNextDue();
    if (due == kNoDue || due > deadline) {
      // No more events before the deadline: advance to it and give up.
      if (deadline > now_) now_ = deadline;
      return pred();
    }
    if (due > now_) now_ = due;
    if (RunRoundsUntilQuiet(now_, &pred)) return true;
  }
}

void ParallelScheduler::RunFor(SimTime d) {
  PumpGuard guard(*this);
  EnsureStarted();
  const SimTime limit = now_ + d;
  for (;;) {
    if (AnyPendingExternal()) {
      RunRoundsUntilQuiet(now_, nullptr);
      continue;
    }
    const SimTime due = MinNextDue();
    if (due == kNoDue || due > limit) {
      now_ = limit;
      return;
    }
    if (due > now_) now_ = due;
    RunRoundsUntilQuiet(now_, nullptr);
  }
}

std::size_t ParallelScheduler::PendingCount() const {
  std::size_t total = 0;
  for (const auto& l : locs_) {
    const std::size_t q = l->queue.size();
    const std::size_t c = l->cancelled.size();
    total += q > c ? q - c : 0;
    {
      std::lock_guard<std::mutex> sl(l->staging_mu);
      total += l->staged.size();
    }
    total += l->inbox0.ApproxSize() + l->inbox1.ApproxSize();
  }
  return total;
}

void ParallelScheduler::Clear() {
  // Workers are parked between pumps; the barrier mutex from their park is
  // the happens-before edge that makes their queues safe to touch here.
  // Discarded closures are destroyed on this (conductor) thread, while the
  // Cores they may reference still exist.
  std::vector<HandoffQueue::Item> discard;
  for (auto& l : locs_) {
    {
      std::lock_guard<std::mutex> sl(l->staging_mu);
      l->staged.clear();
      l->staged_cancels.clear();
    }
    l->inbox0.DrainInto(discard);
    l->inbox1.DrainInto(discard);
    l->queue = {};
    l->cancelled.clear();
    l->next_due = kNoDue;
  }
}

std::uint64_t ParallelScheduler::executed() const { return ExecutedLocked(); }

ParallelScheduler::Telemetry ParallelScheduler::telemetry() const {
  Telemetry t;
  t.rounds = rounds_;
  for (const auto& l : locs_) {
    t.handoffs += l->handoffs;
    t.overflows += l->inbox0.overflows() + l->inbox1.overflows();
    t.max_queue_depth = std::max(
        {t.max_queue_depth,
         static_cast<std::uint64_t>(l->inbox0.max_depth()),
         static_cast<std::uint64_t>(l->inbox1.max_depth())});
  }
  return t;
}

}  // namespace fargo::sim
