#include "src/sim/scheduler.h"

#include <limits>

#include "src/common/value.h"  // FargoError

namespace fargo::sim {

namespace detail {
thread_local int tl_worker_locality = -1;
thread_local int tl_no_pump = 0;
}  // namespace detail

thread_local std::uint64_t Scheduler::AffinityScope::ambient_key_ = 0;
thread_local bool Scheduler::AffinityScope::ambient_set_ = false;

Scheduler::PumpGuard::PumpGuard(Scheduler& s) : sched_(s) {
  if (detail::tl_no_pump > 0)
    throw FargoError(
        "re-entrant scheduler pump inside a no-pump section (the async "
        "invocation pipeline must use continuations, not blocking waits)");
  if (detail::tl_worker_locality >= 0)
    throw FargoError(
        "scheduler pump from a locality worker thread (only the conductor "
        "may pump; handlers must be non-blocking state machines)");
  ++sched_.pump_depth_;
  if (sched_.pump_depth_ > sched_.max_pump_depth_)
    sched_.max_pump_depth_ = sched_.pump_depth_;
  if (sched_.pump_observer_) sched_.pump_observer_(sched_.pump_depth_);
}

TaskId SimScheduler::ScheduleAt(SimTime t, std::function<void()> fn) {
  if (t < now_) t = now_;
  TaskId id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id, std::move(fn)});
  return id;
}

bool SimScheduler::PopDue(SimTime limit, Entry& out) {
  while (!queue_.empty()) {
    if (queue_.top().at > limit) return false;
    out = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(out.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    return true;
  }
  return false;
}

bool SimScheduler::RunOneLocked() {
  Entry e;
  if (!PopDue(std::numeric_limits<SimTime>::max(), e)) return false;
  now_ = std::max(now_, e.at);
  ++executed_;
  e.fn();
  return true;
}

bool SimScheduler::RunOne() {
  PumpGuard guard(*this);
  return RunOneLocked();
}

void SimScheduler::RunUntilIdle() {
  PumpGuard guard(*this);
  while (RunOneLocked()) {
  }
}

void SimScheduler::Clear() {
  queue_ = {};
  cancelled_.clear();
}

void SimScheduler::RunUntil(const std::function<bool()>& pred) {
  PumpGuard guard(*this);
  while (!pred()) {
    if (!RunOneLocked())
      throw FargoError("scheduler drained while awaiting a condition "
                       "(lost message or dead peer?)");
  }
}

bool SimScheduler::RunUntilOr(const std::function<bool()>& pred,
                              SimTime deadline) {
  PumpGuard guard(*this);
  while (!pred()) {
    Entry e;
    if (!PopDue(deadline, e)) {
      // No more events before the deadline: advance to it and give up.
      now_ = std::max(now_, deadline);
      return pred();
    }
    now_ = std::max(now_, e.at);
    ++executed_;
    e.fn();
  }
  return true;
}

void SimScheduler::RunFor(SimTime d) {
  PumpGuard guard(*this);
  const SimTime limit = now_ + d;
  Entry e;
  while (PopDue(limit, e)) {
    now_ = std::max(now_, e.at);
    ++executed_;
    e.fn();
  }
  now_ = limit;
}

PeriodicTask::PeriodicTask(Scheduler& sched, SimTime interval,
                           std::function<void()> fn)
    : impl_(std::make_shared<Impl>(Impl{sched, interval, std::move(fn)})) {
  Arm(impl_);
}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Arm(const std::shared_ptr<Impl>& impl) {
  impl->sched.ScheduleAfter(impl->interval, [impl] {
    if (!impl->running) return;
    impl->fn();
    if (impl->running) Arm(impl);
  });
}

void PeriodicTask::Stop() { impl_->running = false; }

}  // namespace fargo::sim
