// Promise/Future: the continuation primitive under the asynchronous
// invocation pipeline (DESIGN.md §5).
//
// A Promise<T> is the producer end, a Future<T> the consumer end of one
// shared settlement slot. Settlement is *first-wins* and idempotent: the
// machinery may race a reply against a timeout against a cancel, and
// whichever settles first sticks. Continuations never run inline — they are
// scheduled as ordinary zero-delay events on the owning Scheduler, so
// resolution order is exactly scheduler order (deterministic), user code
// runs outside the settling call stack, and the pipeline itself never needs
// to pump the scheduler re-entrantly.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/time.h"
#include "src/common/value.h"
#include "src/sim/scheduler.h"

namespace fargo::sim {

/// Completion-only payload (Future<Unit> ~ "future<void>").
struct Unit {};

template <class T>
class Future;
template <class T>
class Promise;

namespace detail {

template <class T>
struct FutureState {
  Scheduler* sched = nullptr;
  bool settled = false;
  std::optional<T> value;
  std::exception_ptr error;
  std::vector<std::function<void()>> continuations;
  TaskId expiry = 0;  ///< pending ExpireAfter task, cancelled on settle

  void FireContinuations() {
    settled = true;
    if (expiry != 0) {
      sched->Cancel(expiry);
      expiry = 0;
    }
    for (auto& fn : continuations) sched->ScheduleAfter(0, std::move(fn));
    continuations.clear();
  }

  bool SettleValue(T v) {
    if (settled) return false;
    value.emplace(std::move(v));
    FireContinuations();
    return true;
  }

  bool SettleError(std::exception_ptr e) {
    if (settled) return false;
    error = std::move(e);
    FireContinuations();
    return true;
  }
};

template <class>
struct IsFuture : std::false_type {};
template <class U>
struct IsFuture<Future<U>> : std::true_type {};

}  // namespace detail

/// Consumer end. Copies alias the same settlement slot. A
/// default-constructed Future is invalid and must not be observed.
template <class T>
// fargo: domain(sim)
class Future {
 public:
  using value_type = T;

  Future() = default;

  bool valid() const { return state_ != nullptr; }
  bool settled() const { return State().settled; }
  /// Settled with a value (as opposed to an error).
  bool ok() const { return State().settled && State().value.has_value(); }

  /// The settled value; throws if unsettled or settled with an error.
  const T& value() const {
    Require();
    return *State().value;
  }

  /// Moves the value out, or rethrows the settlement error. The synchronous
  /// API wrappers pump the scheduler until settled(), then Take().
  T Take() {
    Require();
    return std::move(*State().value);
  }

  /// The settlement error; null when unsettled or resolved.
  std::exception_ptr error() const { return State().error; }

  Scheduler& scheduler() const { return *State().sched; }

  /// Runs `fn(*this)` after settlement, as its own scheduled event. If the
  /// future is already settled the continuation still runs asynchronously
  /// (zero-delay event), never inline.
  void OnSettle(std::function<void(Future<T>)> fn) const {
    auto bound = [state = state_, fn = std::move(fn)] {
      Future<T> self;
      self.state_ = state;
      fn(std::move(self));
    };
    if (State().settled) {
      State().sched->ScheduleAfter(0, std::move(bound));
    } else {
      State().continuations.push_back(std::move(bound));
    }
  }

  /// Monadic chain: on success runs `fn(value&)` and settles the returned
  /// future with its result; errors (the upstream one, or one thrown by
  /// `fn`) propagate. `fn` may return a plain value, void (mapped to Unit),
  /// or another Future (flattened).
  template <class F>
  auto Then(F fn) const {
    using R = std::invoke_result_t<F, T&>;
    if constexpr (detail::IsFuture<R>::value) {
      using V = typename R::value_type;
      Promise<V> next(*State().sched);
      OnSettle([fn = std::move(fn), next](Future<T> f) mutable {
        if (!f.ok()) {
          next.Reject(f.error());
          return;
        }
        try {
          R inner = fn(f.MutableValue());
          inner.OnSettle([next](Future<V> g) mutable {
            if (g.ok()) {
              next.Resolve(g.Take());
            } else {
              next.Reject(g.error());
            }
          });
        } catch (...) {
          next.Reject(std::current_exception());
        }
      });
      return next.future();
    } else if constexpr (std::is_void_v<R>) {
      // Spelled via R so the type stays dependent (Promise is only
      // forward-declared above this point).
      using U = std::conditional_t<std::is_void_v<R>, Unit, Unit>;
      Promise<U> next(*State().sched);
      OnSettle([fn = std::move(fn), next](Future<T> f) mutable {
        if (!f.ok()) {
          next.Reject(f.error());
          return;
        }
        try {
          fn(f.MutableValue());
          next.Resolve(Unit{});
        } catch (...) {
          next.Reject(std::current_exception());
        }
      });
      return next.future();
    } else {
      Promise<R> next(*State().sched);
      OnSettle([fn = std::move(fn), next](Future<T> f) mutable {
        if (!f.ok()) {
          next.Reject(f.error());
          return;
        }
        try {
          next.Resolve(fn(f.MutableValue()));
        } catch (...) {
          next.Reject(std::current_exception());
        }
      });
      return next.future();
    }
  }

  /// Error recovery: on failure runs `fn(error)` and settles with its
  /// result (plain T or Future<T>, flattened); successes pass through.
  template <class F>
  Future<T> OrElse(F fn) const {
    using R = std::invoke_result_t<F, std::exception_ptr>;
    Promise<T> next(*State().sched);
    OnSettle([fn = std::move(fn), next](Future<T> f) mutable {
      if (f.ok()) {
        next.Resolve(f.Take());
        return;
      }
      try {
        if constexpr (detail::IsFuture<R>::value) {
          R inner = fn(f.error());
          inner.OnSettle([next](Future<T> g) mutable {
            if (g.ok()) {
              next.Resolve(g.Take());
            } else {
              next.Reject(g.error());
            }
          });
        } else {
          next.Resolve(fn(f.error()));
        }
      } catch (...) {
        next.Reject(std::current_exception());
      }
    });
    return next.future();
  }

  /// Arms a deadline: if the future is still unsettled `delay` from now it
  /// is rejected with UnreachableError(`what`). The task is cancelled on
  /// settlement, so an armed future keeps the scheduler queue non-empty —
  /// which is exactly what lets the sync wrappers pump with RunUntil and
  /// still terminate. Returns *this for chaining.
  Future<T> ExpireAfter(SimTime delay, std::string what) const {
    if (State().settled) return *this;
    State().expiry = State().sched->ScheduleAfter(
        delay, [state = state_, what = std::move(what)] {
          state->expiry = 0;
          state->SettleError(
              std::make_exception_ptr(UnreachableError(what)));
        });
    return *this;
  }

  /// Rejects the future if unsettled (first-wins with the producer).
  /// Returns true if this call settled it.
  bool Cancel(const std::string& why = "cancelled") const {
    return State().SettleError(std::make_exception_ptr(FargoError(why)));
  }

  /// Mutable access for continuation plumbing (Then moves out of it).
  T& MutableValue() {
    Require();
    return *State().value;
  }

 private:
  friend class Promise<T>;
  template <class U>
  friend class Future;

  void Require() const {
    detail::FutureState<T>& s = State();
    if (!s.settled) throw FargoError("future observed before settlement");
    if (!s.value.has_value()) std::rethrow_exception(s.error);
  }

  detail::FutureState<T>& State() const {
    if (!state_) throw FargoError("operation on an invalid future");
    return *state_;
  }

  std::shared_ptr<detail::FutureState<T>> state_;
};

/// Producer end. Copyable (copies alias the slot) so it can ride inside
/// std::function continuations; settlement stays first-wins.
template <class T>
// fargo: domain(sim)
class Promise {
 public:
  explicit Promise(Scheduler& sched)
      : state_(std::make_shared<detail::FutureState<T>>()) {
    state_->sched = &sched;
  }

  Future<T> future() const {
    Future<T> f;
    f.state_ = state_;
    return f;
  }

  bool settled() const { return state_->settled; }

  /// Settles with a value; no-op (returns false) if already settled.
  bool Resolve(T value) { return state_->SettleValue(std::move(value)); }

  /// Settles with an error; no-op (returns false) if already settled.
  bool Reject(std::exception_ptr e) { return state_->SettleError(std::move(e)); }

  template <class E>
  bool RejectWith(E e) {
    return Reject(std::make_exception_ptr(std::move(e)));
  }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

/// An already-resolved future (immediate values entering an async chain).
template <class T>
Future<T> MakeReadyFuture(Scheduler& sched, T value) {
  Promise<T> p(sched);
  p.Resolve(std::move(value));
  return p.future();
}

/// An already-rejected future.
template <class T, class E>
Future<T> MakeErrorFuture(Scheduler& sched, E error) {
  Promise<T> p(sched);
  p.RejectWith(std::move(error));
  return p.future();
}

/// Pumps `sched` until `f` settles, then returns the value or rethrows the
/// settlement error — the single place blocking-RPC semantics live now.
/// Every async pipeline arms deadline tasks for its failure paths, so the
/// pump always terminates.
template <class T>
T Await(Future<T> f) {
  Scheduler& sched = f.scheduler();
  sched.RunUntil([&f] { return f.settled(); });
  return f.Take();
}

}  // namespace fargo::sim
