#include "src/script/interp.h"

#include <cstdio>

#include "src/common/log.h"
#include "src/monitor/events.h"
#include "src/monitor/probe.h"

namespace fargo::script {

namespace {
[[noreturn]] void Fail(int line, const std::string& what) {
  throw ScriptError("script error (line " + std::to_string(line) + "): " +
                    what);
}
}  // namespace

Engine::Engine(core::Runtime& runtime, core::Core& admin)
    : runtime_(runtime), admin_(admin) {
  // Built-in administrative action (the Fig 4 capability of "examining and
  // changing the type of complet references", scriptable):
  //   retype <owner-complet> <target-complet> <link|pull|duplicate|stamp>
  RegisterAction("retype", [](Engine& eng, const std::vector<Value>& args) {
    if (args.size() != 3)
      throw ScriptError("retype needs: owner target kind");
    const ComletHandle owner = args[0].AsHandle();
    const ComletHandle target = args[1].AsHandle();
    const std::string& kind = args[2].AsString();
    core::Core* host = eng.runtime().Find(eng.ToCore(args[0]));
    if (host == nullptr || !host->alive())
      throw ScriptError("retype: owner's core is unavailable");
    bool found = false;
    for (const core::ComletRefBase* ref : host->RefsOwnedBy(owner.id)) {
      if (ref->target() != target.id) continue;
      core::Core::GetMetaRef(*ref).SetRelocator(core::MakeRelocator(kind));
      found = true;
    }
    if (!found)
      throw ScriptError("retype: no live reference " + ToString(owner.id) +
                        " -> " + ToString(target.id));
  });
}

Engine::~Engine() {
  *alive_ = false;
  try {
    Detach();
  } catch (const std::exception& e) {
    LogWarn() << "script engine detach failed: " << e.what();
  }
}

void Engine::Run(const std::string& source, std::vector<Value> args) {
  RunParsed(Parse(source), std::move(args));
}

void Engine::RunParsed(const Script& script, std::vector<Value> args) {
  args_ = std::move(args);
  Env env;
  for (const Statement& st : script.statements) {
    if (const auto* a = std::get_if<Assignment>(&st)) {
      globals_[a->var] = Eval(*a->value, env);
    } else if (const auto* r = std::get_if<Rule>(&st)) {
      AttachRule(*r);
    } else {
      Command cmd = std::get<Command>(st);
      Execute(cmd, env);
    }
  }
}

void Engine::RegisterAction(std::string name, Action action) {
  actions_[std::move(name)] = std::move(action);
}

void Engine::Detach() {
  for (AttachedRule& ar : rules_)
    for (monitor::SubId token : ar.tokens) admin_.UnlistenAt(token);
  rules_.clear();
}

Value Engine::GetVar(const std::string& name) const {
  auto it = globals_.find(name);
  return it == globals_.end() ? Value() : it->second;
}

CoreId Engine::ToCore(const Value& v) {
  if (v.IsInt()) return CoreId{static_cast<std::uint32_t>(v.AsInt())};
  if (v.IsString()) {
    core::Core* c = runtime_.FindByName(v.AsString());
    if (c == nullptr)
      throw ScriptError("unknown core name: " + v.AsString());
    return c->id();
  }
  if (v.IsHandle()) {
    core::ComletRefBase ref = admin_.RefFromHandle(v.AsHandle());
    return admin_.ResolveLocation(ref);
  }
  throw ScriptError("value does not denote a core: " + v.ToDebugString());
}

std::vector<ComletHandle> Engine::ToComlets(const Value& v) const {
  std::vector<ComletHandle> out;
  if (v.IsHandle()) {
    out.push_back(v.AsHandle());
  } else if (v.IsList()) {
    for (const Value& e : v.AsList()) out.push_back(e.AsHandle());
  } else {
    throw ScriptError("value does not denote complet(s): " +
                      v.ToDebugString());
  }
  return out;
}

Value Engine::Eval(const Expr& e, const Env& env) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kVar: {
      if (auto it = env.local.find(e.var); it != env.local.end())
        return it->second;
      if (auto it = globals_.find(e.var); it != globals_.end())
        return it->second;
      Fail(e.line, "undefined variable $" + e.var);
    }
    case Expr::Kind::kArg: {
      if (e.arg_index < 1 ||
          static_cast<std::size_t>(e.arg_index) > args_.size())
        Fail(e.line, "missing script argument %" + std::to_string(e.arg_index));
      return args_[static_cast<std::size_t>(e.arg_index) - 1];
    }
    case Expr::Kind::kIndex: {
      Value base = Eval(*e.base, env);
      const Value::List& list = base.AsList();
      if (e.index >= list.size())
        Fail(e.line, "index " + std::to_string(e.index) + " out of range");
      return list[e.index];
    }
    case Expr::Kind::kCoreOf: {
      Value base = Eval(*e.base, env);
      return Value(static_cast<std::int64_t>(ToCore(base).value));
    }
    case Expr::Kind::kHintEpochOf: {
      // The directory hint epoch a rule can act on: the stamp at the Core
      // hosting the complet when it is reachable, otherwise the admin
      // Core's own (possibly stale) hint. 0 = unstamped/unknown.
      Value base = Eval(*e.base, env);
      if (!base.IsHandle())
        Fail(e.line, "hintEpochOf needs a complet handle");
      const ComletId id = base.AsHandle().id;
      for (core::Core* c : runtime_.Cores()) {
        if (!c->alive() || !c->repository().Contains(id)) continue;
        const core::TrackerEntry* te = c->trackers().Find(id);
        return Value(static_cast<std::int64_t>(te ? te->hint_epoch : 0));
      }
      const core::TrackerEntry* te = admin_.trackers().Find(id);
      return Value(static_cast<std::int64_t>(te ? te->hint_epoch : 0));
    }
    case Expr::Kind::kComletsIn: {
      CoreId core_id = ToCore(Eval(*e.base, env));
      core::Core* c = runtime_.Find(core_id);
      Value::List handles;
      if (c != nullptr && c->alive()) {
        for (ComletId id : c->ComletsHere()) {
          auto anchor = c->repository().Get(id);
          handles.push_back(Value(ComletHandle{
              id, core_id,
              anchor ? std::string(anchor->TypeName()) : std::string()}));
        }
      }
      return Value(std::move(handles));
    }
    case Expr::Kind::kList: {
      Value::List items;
      items.reserve(e.items.size());
      for (const ExprPtr& item : e.items) items.push_back(Eval(*item, env));
      return Value(std::move(items));
    }
  }
  Fail(e.line, "corrupt expression");
}

void Engine::Execute(const Command& cmd, Env& env) {
  switch (cmd.kind) {
    case Command::Kind::kMove: {
      const CoreId dest = ToCore(Eval(*cmd.dest, env));
      for (const ComletHandle& h : ToComlets(Eval(*cmd.subject, env))) {
        try {
          core::ComletRefBase ref = admin_.RefFromHandle(h);
          if (in_rule_body_) {
            admin_.MoveAsync(ref, dest)
                .OnSettle([this, alive = alive_,
                           id = h.id](sim::Future<sim::Unit> f) {
                  if (f.ok()) {
                    if (*alive) ++moves_executed_;
                    return;
                  }
                  try {
                    std::rethrow_exception(f.error());
                  } catch (const std::exception& e) {
                    LogWarn() << "script move of " << ToString(id)
                              << " failed: " << e.what();
                  }
                });
          } else {
            admin_.Move(ref, dest);
            ++moves_executed_;
          }
        } catch (const std::exception& e) {
          LogWarn() << "script move of " << ToString(h.id) << " failed: "
                    << e.what();
        }
      }
      return;
    }
    case Command::Kind::kLog: {
      Value v = Eval(*cmd.args.at(0), env);
      std::printf("[fargo-script] %s\n", v.ToDebugString().c_str());
      return;
    }
    case Command::Kind::kAction: {
      auto it = actions_.find(cmd.action);
      if (it == actions_.end())
        Fail(cmd.line, "unknown action '" + cmd.action + "'");
      std::vector<Value> args;
      args.reserve(cmd.args.size());
      for (const ExprPtr& a : cmd.args) args.push_back(Eval(*a, env));
      it->second(*this, args);
      return;
    }
  }
}

void Engine::ExecuteBody(const Rule& rule, Env env) {
  ++rule_firings_;
  const bool was_in_body = in_rule_body_;
  in_rule_body_ = true;
  for (const Command& cmd : rule.body) {
    try {
      Execute(cmd, env);
    } catch (const std::exception& e) {
      LogWarn() << "script rule (line " << rule.line << ") command failed: "
                << e.what();
    }
  }
  in_rule_body_ = was_in_body;
}

void Engine::AttachRule(const Rule& rule_in) {
  auto rule = std::make_shared<Rule>(rule_in);
  AttachedRule attached;
  attached.rule = rule;
  Env env;

  if (rule->is_periodic) {
    attached.timer = std::make_unique<sim::PeriodicTask>(
        runtime_.scheduler(), rule->interval, [this, rule, alive = alive_] {
          if (!*alive) return;
          ExecuteBody(*rule, Env{});
        });
    rules_.push_back(std::move(attached));
    return;
  }

  if (!rule->is_threshold) {
    const monitor::EventKind kind = monitor::ParseEventKind(rule->event_name);
    Value at = Eval(*rule->listen_at, env);
    std::vector<CoreId> cores;
    if (at.IsList()) {
      for (const Value& v : at.AsList()) cores.push_back(ToCore(v));
    } else {
      cores.push_back(ToCore(at));
    }
    for (CoreId where : cores) {
      monitor::Listener listener = [this, rule,
                                    alive = alive_](const monitor::Event& e) {
        if (!*alive) return;
        Env fire_env;
        // Failure-detector events name the *suspected* Core in e.peer; for
        // those, "fired by" means the peer, not the detecting Core.
        if (!rule->firedby_var.empty())
          fire_env.local[rule->firedby_var] = Value(static_cast<std::int64_t>(
              e.peer.valid() ? e.peer.value : e.source.value));
        if (e.comlet.valid())
          fire_env.local["comlet"] =
              Value(ComletHandle{e.comlet, e.source, std::string()});
        fire_env.local["value"] = Value(e.value);
        fire_env.local["peer"] =
            Value(static_cast<std::int64_t>(e.peer.value));
        ExecuteBody(*rule, std::move(fire_env));
      };
      attached.tokens.push_back(admin_.ListenAt(where, kind, listener));
    }
  } else {
    const monitor::Service service = monitor::ParseService(rule->event_name);
    monitor::ProbeKey probe;
    probe.service = service;
    CoreId where;
    switch (service) {
      case monitor::Service::kInvocationRate: {
        if (!rule->from) Fail(rule->line, "methodInvokeRate needs 'from/to'");
        ComletHandle a = Eval(*rule->from, env).AsHandle();
        ComletHandle b = Eval(*rule->to, env).AsHandle();
        probe.a = a.id;
        probe.b = b.id;
        // Measure at the Core hosting the source complet: that is where the
        // reference's stub lives and where invocations are counted.
        where = ToCore(Value(a));
        break;
      }
      case monitor::Service::kBandwidth:
      case monitor::Service::kLatency:
      case monitor::Service::kThroughput:
      case monitor::Service::kMessageRate: {
        if (!rule->from) Fail(rule->line, rule->event_name + " needs 'from/to'");
        where = ToCore(Eval(*rule->from, env));
        probe.peer = ToCore(Eval(*rule->to, env));
        break;
      }
      case monitor::Service::kComletSize: {
        if (!rule->at) Fail(rule->line, "completSize needs 'at <complet>'");
        ComletHandle subject = Eval(*rule->at, env).AsHandle();
        probe.a = subject.id;
        where = ToCore(Value(subject));
        break;
      }
      case monitor::Service::kComletLoad:
      case monitor::Service::kMemoryUse: {
        if (!rule->at) Fail(rule->line, rule->event_name + " needs 'at <core>'");
        where = ToCore(Eval(*rule->at, env));
        break;
      }
    }
    const monitor::Trigger trigger =
        rule->below ? monitor::Trigger::kBelow : monitor::Trigger::kAbove;
    monitor::Listener listener = [this, rule,
                                  alive = alive_](const monitor::Event& e) {
      if (!*alive) return;
      Env fire_env;
      if (!rule->firedby_var.empty())
        fire_env.local[rule->firedby_var] =
            Value(static_cast<std::int64_t>(e.source.value));
      fire_env.local["value"] = Value(e.value);
      ExecuteBody(*rule, std::move(fire_env));
    };
    attached.tokens.push_back(admin_.ListenThresholdAt(
        where, probe, rule->threshold, trigger, rule->interval, listener));
  }

  rules_.push_back(std::move(attached));
}

}  // namespace fargo::script
