// Lexer for the FarGo layout scripting language (§4.3).
//
// The language is event-driven: a script is a sequence of variable
// assignments and rules of the form
//   on EVENT [args] [firedby $v] [listenAt expr] [from e to e] [at e]
//     [every N] do <commands> end
// matching the paper's example (shutdown evacuation + invocation-rate
// colocation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/value.h"

namespace fargo::script {

/// Raised on lexical or syntactic errors, with line information.
class ScriptError : public FargoError {
 public:
  using FargoError::FargoError;
};

enum class TokenKind : std::uint8_t {
  kIdent,    // on, do, end, move, coreOf, shutdown, ... (keywords are contextual)
  kVar,      // $name
  kArg,      // %1
  kNumber,   // 3, 2.5, 1e6
  kString,   // "text"
  kAssign,   // =
  kLParen,   // (
  kRParen,   // )
  kLBracket, // [
  kRBracket, // ]
  kLess,     // < (threshold direction)
  kComma,    // ,
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;   // identifier / variable name / string literal
  double number = 0;  // numeric literals and %n indices
  int line = 0;
};

/// Tokenizes `source`; '#' and '//' start comments running to end of line.
std::vector<Token> Lex(const std::string& source);

const char* ToString(TokenKind kind);

}  // namespace fargo::script
