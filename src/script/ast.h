// AST of the layout scripting language.
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/time.h"
#include "src/common/value.h"

namespace fargo::script {

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Expressions: literals, variables, positional args, indexing, the layout
/// primitives `coreOf e`, `completsIn e` and `hintEpochOf e`, and list
/// construction.
struct Expr {
  enum class Kind {
    kLiteral,      // number/string
    kVar,          // $name
    kArg,          // %n
    kIndex,        // base[i]
    kCoreOf,       // coreOf e
    kComletsIn,    // completsIn e
    kHintEpochOf,  // hintEpochOf e — directory hint epoch of a complet
    kList,         // [a, b, ...] — convenience extension
  };

  Kind kind = Kind::kLiteral;
  int line = 0;
  Value literal;            // kLiteral
  std::string var;          // kVar
  int arg_index = 0;        // kArg (1-based, like %1)
  ExprPtr base;             // kIndex / kCoreOf / kComletsIn / kHintEpochOf
  std::size_t index = 0;    // kIndex
  std::vector<ExprPtr> items;  // kList
};

/// Commands allowed in rule bodies and at top level.
struct Command {
  enum class Kind {
    kMove,    // move <subject> to <dest>
    kLog,     // log <expr>
    kAction,  // <name> <expr>... — user-registered native action (the
              //   paper's "any user-defined class" extension point)
  };

  Kind kind = Kind::kMove;
  int line = 0;
  ExprPtr subject;  // kMove
  ExprPtr dest;     // kMove
  std::string action;          // kAction name / unused otherwise
  std::vector<ExprPtr> args;   // kLog (single) / kAction
};

/// An event→action rule — or a standalone periodic rule
/// (`every N do ... end`), which runs its body on a timer instead of an
/// event (an extension for policies like periodic rebalancing).
struct Rule {
  int line = 0;

  bool is_periodic = false;  // standalone `every N do ... end`

  // Event part. Either a lifecycle event (shutdown / completArrived /
  // completDeparted) or a profiling threshold event (service + threshold).
  bool is_threshold = false;
  std::string event_name;      // raw name as written
  double threshold = 0;        // threshold rules
  bool below = false;          // on service(<N): fire when value drops below
  SimTime interval = Seconds(1);  // sampling interval ('every N' seconds)

  // Bindings and subjects.
  std::string firedby_var;  // binds the firing Core in the rule body
  ExprPtr listen_at;        // lifecycle: core (or list) to listen at
  ExprPtr from;             // threshold: source complet / core
  ExprPtr to;               // threshold: target complet / core
  ExprPtr at;               // threshold: core to measure at (completLoad...)

  std::vector<Command> body;
};

struct Assignment {
  int line = 0;
  std::string var;
  ExprPtr value;
};

using Statement = std::variant<Assignment, Rule, Command>;

struct Script {
  std::vector<Statement> statements;
};

}  // namespace fargo::script
