#include "src/script/lexer.h"

#include <cctype>

namespace fargo::script {

const char* ToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kVar:
      return "variable";
    case TokenKind::kArg:
      return "argument";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kAssign:
      return "'='";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLess:
      return "'<'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kEof:
      return "end of script";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

}  // namespace

std::vector<Token> Lex(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = source.size();

  auto error = [&](const std::string& what) {
    throw ScriptError("script lex error (line " + std::to_string(line) +
                      "): " + what);
  };

  while (i < n) {
    const char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: '#' or '//' to end of line.
    if (c == '#' || (c == '/' && i + 1 < n && source[i + 1] == '/')) {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    Token t;
    t.line = line;
    if (IsIdentStart(c)) {
      std::size_t start = i;
      while (i < n && IsIdentChar(source[i])) ++i;
      t.kind = TokenKind::kIdent;
      t.text = source.substr(start, i - start);
    } else if (c == '$') {
      ++i;
      std::size_t start = i;
      while (i < n && IsIdentChar(source[i])) ++i;
      if (start == i) error("empty variable name after '$'");
      t.kind = TokenKind::kVar;
      t.text = source.substr(start, i - start);
    } else if (c == '%') {
      ++i;
      std::size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      if (start == i) error("expected digits after '%'");
      t.kind = TokenKind::kArg;
      t.number = std::stod(source.substr(start, i - start));
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      std::size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(source[i])) ||
                       source[i] == '.' || source[i] == 'e' ||
                       source[i] == 'E' ||
                       ((source[i] == '+' || source[i] == '-') && i > start &&
                        (source[i - 1] == 'e' || source[i - 1] == 'E'))))
        ++i;
      t.kind = TokenKind::kNumber;
      try {
        t.number = std::stod(source.substr(start, i - start));
      } catch (const std::exception&) {
        error("malformed number: " + source.substr(start, i - start));
      }
    } else if (c == '"') {
      ++i;
      std::string s;
      while (i < n && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < n) {
          ++i;
          switch (source[i]) {
            case 'n':
              s.push_back('\n');
              break;
            case 't':
              s.push_back('\t');
              break;
            default:
              s.push_back(source[i]);
          }
        } else {
          if (source[i] == '\n') ++line;
          s.push_back(source[i]);
        }
        ++i;
      }
      if (i >= n) error("unterminated string literal");
      ++i;  // closing quote
      t.kind = TokenKind::kString;
      t.text = std::move(s);
    } else {
      switch (c) {
        case '=':
          t.kind = TokenKind::kAssign;
          break;
        case '(':
          t.kind = TokenKind::kLParen;
          break;
        case ')':
          t.kind = TokenKind::kRParen;
          break;
        case '[':
          t.kind = TokenKind::kLBracket;
          break;
        case ']':
          t.kind = TokenKind::kRBracket;
          break;
        case '<':
          t.kind = TokenKind::kLess;
          break;
        case ',':
          t.kind = TokenKind::kComma;
          break;
        default:
          error(std::string("unexpected character '") + c + "'");
      }
      ++i;
    }
    tokens.push_back(std::move(t));
  }
  tokens.push_back(Token{TokenKind::kEof, "", 0, line});
  return tokens;
}

}  // namespace fargo::script
