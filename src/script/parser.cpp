#include "src/script/parser.h"

#include <unordered_set>

namespace fargo::script {

namespace {

// Lifecycle event names understood by the rule engine; everything else used
// as an event is a profiling-service threshold event.
const std::unordered_set<std::string> kLifecycleEvents = {
    "shutdown",        "coreShutdown",    "completArrived",
    "comletArrived",   "completDeparted", "comletDeparted",
    "coreUnreachable", "coreRecovered",
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Script ParseScript() {
    Script script;
    while (!At(TokenKind::kEof)) script.statements.push_back(ParseStatement());
    return script;
  }

 private:
  [[noreturn]] void Error(const std::string& what) const {
    throw ScriptError("script parse error (line " +
                      std::to_string(Peek().line) + "): " + what);
  }

  const Token& Peek(std::size_t ahead = 0) const {
    std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  bool AtIdent(std::string_view word) const {
    return At(TokenKind::kIdent) && Peek().text == word;
  }
  Token Take() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  Token Expect(TokenKind kind, const std::string& context) {
    if (!At(kind))
      Error("expected " + std::string(ToString(kind)) + " " + context +
            ", found " + std::string(ToString(Peek().kind)) +
            (Peek().text.empty() ? "" : " '" + Peek().text + "'"));
    return Take();
  }
  void ExpectIdent(std::string_view word) {
    if (!AtIdent(word))
      Error("expected '" + std::string(word) + "', found '" + Peek().text +
            "'");
    Take();
  }

  Statement ParseStatement() {
    if (At(TokenKind::kVar) && Peek(1).kind == TokenKind::kAssign) {
      Assignment a;
      a.line = Peek().line;
      a.var = Take().text;
      Take();  // '='
      a.value = ParseExpr();
      return a;
    }
    if (AtIdent("on")) return ParseRule();
    if (AtIdent("every")) return ParsePeriodicRule();
    return ParseCommand();
  }

  Rule ParsePeriodicRule() {
    Rule rule;
    rule.line = Peek().line;
    rule.is_periodic = true;
    ExpectIdent("every");
    double seconds = Expect(TokenKind::kNumber, "after 'every'").number;
    if (seconds <= 0) Error("'every' interval must be positive");
    rule.interval = static_cast<SimTime>(seconds * 1e9);
    ExpectIdent("do");
    while (!AtIdent("end")) {
      if (At(TokenKind::kEof)) Error("missing 'end' of periodic rule body");
      rule.body.push_back(ParseCommand());
    }
    Take();  // 'end'
    return rule;
  }

  Rule ParseRule() {
    Rule rule;
    rule.line = Peek().line;
    ExpectIdent("on");
    Token name = Expect(TokenKind::kIdent, "after 'on'");
    rule.event_name = name.text;
    if (kLifecycleEvents.contains(rule.event_name)) {
      rule.is_threshold = false;
    } else {
      rule.is_threshold = true;
      Expect(TokenKind::kLParen, "after threshold event name");
      if (At(TokenKind::kLess)) {
        Take();
        rule.below = true;
      }
      rule.threshold = Expect(TokenKind::kNumber, "threshold value").number;
      Expect(TokenKind::kRParen, "after threshold value");
    }

    // Optional clauses, in any order.
    for (;;) {
      if (AtIdent("firedby")) {
        Take();
        rule.firedby_var = Expect(TokenKind::kVar, "after 'firedby'").text;
      } else if (AtIdent("listenAt")) {
        Take();
        rule.listen_at = ParseExpr();
      } else if (AtIdent("from")) {
        Take();
        rule.from = ParseExpr();
        ExpectIdent("to");
        rule.to = ParseExpr();
      } else if (AtIdent("at")) {
        Take();
        rule.at = ParseExpr();
      } else if (AtIdent("every")) {
        Take();
        double seconds = Expect(TokenKind::kNumber, "after 'every'").number;
        if (seconds <= 0) Error("'every' interval must be positive");
        rule.interval = static_cast<SimTime>(seconds * 1e9);
      } else {
        break;
      }
    }

    ExpectIdent("do");
    while (!AtIdent("end")) {
      if (At(TokenKind::kEof)) Error("missing 'end' of rule body");
      rule.body.push_back(ParseCommand());
    }
    Take();  // 'end'

    if (rule.is_threshold && !rule.from && !rule.at)
      Error("threshold rule needs 'from ... to ...' or 'at ...'");
    if (!rule.is_threshold && !rule.listen_at)
      Error("lifecycle rule needs 'listenAt ...'");
    return rule;
  }

  Command ParseCommand() {
    Command cmd;
    cmd.line = Peek().line;
    if (AtIdent("move")) {
      Take();
      cmd.kind = Command::Kind::kMove;
      cmd.subject = ParseExpr();
      ExpectIdent("to");
      cmd.dest = ParseExpr();
      return cmd;
    }
    if (AtIdent("log")) {
      Take();
      cmd.kind = Command::Kind::kLog;
      cmd.args.push_back(ParseExpr());
      return cmd;
    }
    if (At(TokenKind::kIdent)) {
      // User-registered native action: NAME expr...
      cmd.kind = Command::Kind::kAction;
      cmd.action = Take().text;
      while (At(TokenKind::kVar) || At(TokenKind::kArg) ||
             At(TokenKind::kNumber) || At(TokenKind::kString) ||
             At(TokenKind::kLBracket) || AtIdent("coreOf") ||
             AtIdent("completsIn") || AtIdent("hintEpochOf"))
        cmd.args.push_back(ParseExpr());
      return cmd;
    }
    Error("expected a command");
  }

  ExprPtr ParseExpr() {
    ExprPtr e = ParsePrimary();
    while (At(TokenKind::kLBracket)) {
      Take();
      auto idx = std::make_shared<Expr>();
      idx->kind = Expr::Kind::kIndex;
      idx->line = e->line;
      idx->base = std::move(e);
      idx->index = static_cast<std::size_t>(
          Expect(TokenKind::kNumber, "index").number);
      Expect(TokenKind::kRBracket, "after index");
      e = std::move(idx);
    }
    return e;
  }

  ExprPtr ParsePrimary() {
    auto e = std::make_shared<Expr>();
    e->line = Peek().line;
    if (At(TokenKind::kVar)) {
      e->kind = Expr::Kind::kVar;
      e->var = Take().text;
      return e;
    }
    if (At(TokenKind::kArg)) {
      e->kind = Expr::Kind::kArg;
      e->arg_index = static_cast<int>(Take().number);
      return e;
    }
    if (At(TokenKind::kNumber)) {
      double d = Take().number;
      e->kind = Expr::Kind::kLiteral;
      if (d == static_cast<double>(static_cast<std::int64_t>(d)))
        e->literal = Value(static_cast<std::int64_t>(d));
      else
        e->literal = Value(d);
      return e;
    }
    if (At(TokenKind::kString)) {
      e->kind = Expr::Kind::kLiteral;
      e->literal = Value(Take().text);
      return e;
    }
    if (AtIdent("coreOf")) {
      Take();
      e->kind = Expr::Kind::kCoreOf;
      e->base = ParseExpr();
      return e;
    }
    if (AtIdent("completsIn") || AtIdent("comletsIn")) {
      Take();
      e->kind = Expr::Kind::kComletsIn;
      e->base = ParseExpr();
      return e;
    }
    if (AtIdent("hintEpochOf")) {
      Take();
      e->kind = Expr::Kind::kHintEpochOf;
      e->base = ParseExpr();
      return e;
    }
    if (At(TokenKind::kLBracket)) {
      Take();
      e->kind = Expr::Kind::kList;
      if (!At(TokenKind::kRBracket)) {
        e->items.push_back(ParseExpr());
        while (At(TokenKind::kComma)) {
          Take();
          e->items.push_back(ParseExpr());
        }
      }
      Expect(TokenKind::kRBracket, "to close list");
      return e;
    }
    if (At(TokenKind::kIdent)) {
      // Bare identifiers double as string literals (core names, etc.).
      e->kind = Expr::Kind::kLiteral;
      e->literal = Value(Take().text);
      return e;
    }
    Error("expected an expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Script Parse(const std::string& source) {
  Parser parser(Lex(source));
  return parser.ParseScript();
}

}  // namespace fargo::script
