// Recursive-descent parser for the layout scripting language.
#pragma once

#include <string>

#include "src/script/ast.h"
#include "src/script/lexer.h"

namespace fargo::script {

/// Parses a complete script; throws ScriptError with line info on syntax
/// errors.
Script Parse(const std::string& source);

}  // namespace fargo::script
