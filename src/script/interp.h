// The layout script engine (§4.3).
//
// Scripts are defined externally — "possibly after the application has been
// deployed" — and attached to a running system by an administrator. The
// engine runs in the context of an administrative Core: assignments and
// top-level commands execute immediately; rules subscribe to monitor events
// (locally or at remote Cores) and execute their bodies when events fire.
//
// The action vocabulary is extensible with user-registered native actions —
// the C++ rendering of the paper's "any user-defined (Java) class ...
// automatically loaded upon its invocation".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/core/core.h"
#include "src/core/runtime.h"
#include "src/script/ast.h"
#include "src/script/parser.h"
#include "src/sim/scheduler.h"

namespace fargo::script {

class Engine {
 public:
  /// `admin` is the Core at which the engine runs (subscriptions and moves
  /// are issued from it).
  Engine(core::Runtime& runtime, core::Core& admin);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Parses and runs `source`. `%1`, `%2`, ... in the script bind to
  /// `args[0]`, `args[1]`, ...
  void Run(const std::string& source, std::vector<Value> args = {});
  void RunParsed(const Script& script, std::vector<Value> args = {});

  /// Registers a native action usable as a command: `name expr...`.
  using Action = std::function<void(Engine&, const std::vector<Value>&)>;
  void RegisterAction(std::string name, Action action);

  /// Cancels all rule subscriptions made by this engine.
  void Detach();

  // -- introspection -----------------------------------------------------------
  std::size_t active_rules() const { return rules_.size(); }
  std::uint64_t rule_firings() const { return rule_firings_; }
  std::uint64_t moves_executed() const { return moves_executed_; }
  Value GetVar(const std::string& name) const;
  void SetVar(std::string name, Value value) {
    globals_[std::move(name)] = std::move(value);
  }

  core::Core& admin() { return admin_; }
  core::Runtime& runtime() { return runtime_; }

  // -- value coercions (used by Eval and by native actions) --------------------
  /// Accepts a core id (int), a core name (string), or a complet handle
  /// (meaning coreOf).
  CoreId ToCore(const Value& v);
  /// Accepts a single handle or a list of handles.
  std::vector<ComletHandle> ToComlets(const Value& v) const;

 private:
  struct Env {
    std::map<std::string, Value> local;
  };
  struct AttachedRule {
    std::shared_ptr<Rule> rule;
    std::vector<monitor::SubId> tokens;
    std::unique_ptr<sim::PeriodicTask> timer;  // periodic rules
  };

  Value Eval(const Expr& e, const Env& env);
  void Execute(const Command& cmd, Env& env);
  void ExecuteBody(const Rule& rule, Env env);
  void AttachRule(const Rule& rule);

  core::Runtime& runtime_;
  core::Core& admin_;
  /// Liveness token captured by rule listeners: an in-flight (scheduled)
  /// notification delivered after this engine died becomes a no-op instead
  /// of a use-after-free.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::map<std::string, Value> globals_;
  std::vector<Value> args_;
  std::map<std::string, Action> actions_;
  std::vector<AttachedRule> rules_;
  std::uint64_t rule_firings_ = 0;
  std::uint64_t moves_executed_ = 0;
  /// True while a rule body runs. Rule bodies fire from monitor listeners —
  /// inside scheduled events, often mid-commit of the very move or
  /// invocation that raised the event — so their `move` commands go through
  /// MoveAsync instead of blocking the listener on a pumped round-trip.
  bool in_rule_body_ = false;
};

}  // namespace fargo::script
