// fargo_sim — a config-driven FarGo deployment sandbox.
//
// Builds a deployment (cores, links, generic payload complets, synthetic
// traffic) from a plain-text config, optionally attaches a layout script,
// runs it on the simulated WAN with the live terminal monitor, and can
// drop into the interactive admin shell.
//
// Usage:
//   fargo_sim <config> [--script <file.fgs>] [--duration <seconds>] [--shell]
//
// Config lines (# comments):
//   core <name>
//   default <latency_ms> <mbit>
//   link <coreA> <coreB> <latency_ms> <mbit>
//   complet <core> <name> [payload_bytes]
//   traffic <from-complet> <to-complet> <calls_per_second>
//   home-registry on
//
// Example: tools/example.cfg reproduces the paper's §4.3 scenario from
// pure configuration.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/fargo.h"

namespace {

using namespace fargo;

/// Generic complet for sandbox deployments: carries a payload and can call
/// a peer (generating the cross-reference invocation traffic that layout
/// rules react to).
class Payload : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "sim.Payload";
  Payload() {
    methods().Register("ping", [this](const std::vector<Value>&) {
      return Value(static_cast<std::int64_t>(bytes_.size()));
    });
    methods().Register("resize", [this](const std::vector<Value>& args) {
      bytes_.assign(static_cast<std::size_t>(args.at(0).AsInt()), 0x5a);
      return Value();
    });
    methods().Register("peer", [this](const std::vector<Value>& args) {
      peer_ = core()->RefFromHandle(args.at(0).AsHandle());
      return Value();
    });
    methods().Register("chat", [this](const std::vector<Value>&) {
      if (!peer_) return Value();
      return peer_.Call("ping");
    });
  }
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override {
    w.WriteBytes(bytes_);
    peer_.SerializeTo(w);
  }
  void Deserialize(serial::GraphReader& r) override {
    bytes_ = r.ReadBytes();
    peer_.DeserializeFrom(r);
  }

 private:
  std::vector<std::uint8_t> bytes_;
  core::ComletRefBase peer_;
};

const bool kReg = serial::RegisterType<Payload>();

struct Traffic {
  std::string from, to;
  double per_second = 1;
};

[[noreturn]] void Usage() {
  std::fprintf(stderr,
               "usage: fargo_sim <config> [--script <file>] [--duration "
               "<seconds>] [--shell]\n");
  std::exit(2);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw FargoError("cannot open: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  (void)kReg;
  if (argc < 2) Usage();
  std::string config_path = argv[1];
  std::string script_path;
  double duration_s = 10;
  bool interactive = false;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--script") && i + 1 < argc) {
      script_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--duration") && i + 1 < argc) {
      duration_s = std::stod(argv[++i]);
    } else if (!std::strcmp(argv[i], "--shell")) {
      interactive = true;
    } else {
      Usage();
    }
  }

  core::Runtime rt;
  core::Core& admin = rt.CreateCore("admin");
  std::vector<Traffic> traffic;
  std::map<std::string, core::ComletRefBase> complets;

  // ---- parse the config -----------------------------------------------------
  std::istringstream cfg(ReadFile(config_path));
  std::string line;
  int lineno = 0;
  while (std::getline(cfg, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) continue;
    try {
      if (word == "core") {
        std::string name;
        ls >> name;
        rt.CreateCore(name);
      } else if (word == "default") {
        double ms, mbit;
        ls >> ms >> mbit;
        rt.network().SetDefaultLink(
            {static_cast<SimTime>(ms * 1e6), mbit * 1e6 / 8, true});
      } else if (word == "link") {
        std::string a, b;
        double ms, mbit;
        ls >> a >> b >> ms >> mbit;
        core::Core* ca = rt.FindByName(a);
        core::Core* cb = rt.FindByName(b);
        if (ca == nullptr || cb == nullptr)
          throw FargoError("unknown core in link");
        rt.network().SetLink(ca->id(), cb->id(),
                             {static_cast<SimTime>(ms * 1e6),
                              mbit * 1e6 / 8, true});
      } else if (word == "complet") {
        std::string core_name, name;
        std::size_t payload = 0;
        ls >> core_name >> name;
        ls >> payload;  // optional
        core::Core* host = rt.FindByName(core_name);
        if (host == nullptr) throw FargoError("unknown core " + core_name);
        auto ref = admin.NewRemote(host->id(), Payload::kTypeName);
        if (payload > 0)
          ref.Call("resize", {Value(static_cast<std::int64_t>(payload))});
        host->BindName(name, ref);
        complets.emplace(name, std::move(ref));
      } else if (word == "traffic") {
        Traffic t;
        ls >> t.from >> t.to >> t.per_second;
        traffic.push_back(t);
      } else if (word == "home-registry") {
        std::string flag;
        ls >> flag;
        rt.EnableHomeRegistry(flag == "on");
      } else if (word == "directory") {
        // directory <core> [<core>...] — sharded plane with these owners.
        std::vector<CoreId> owners;
        std::string owner_name;
        while (ls >> owner_name) {
          core::Core* owner = rt.FindByName(owner_name);
          if (owner == nullptr)
            throw FargoError("unknown core " + owner_name);
          owners.push_back(owner->id());
        }
        rt.EnableDirectory(owners);
      } else {
        throw FargoError("unknown directive '" + word + "'");
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s:%d: %s\n", config_path.c_str(), lineno,
                   e.what());
      return 1;
    }
  }

  // ---- wire traffic generators ----------------------------------------------
  std::vector<std::unique_ptr<sim::PeriodicTask>> generators;
  for (const Traffic& t : traffic) {
    auto from = complets.find(t.from);
    auto to = complets.find(t.to);
    if (from == complets.end() || to == complets.end()) {
      std::fprintf(stderr, "traffic names unknown complet: %s -> %s\n",
                   t.from.c_str(), t.to.c_str());
      return 1;
    }
    from->second.Call("peer", {Value(to->second.handle())});
    const auto interval = static_cast<SimTime>(1e9 / t.per_second);
    generators.push_back(std::make_unique<sim::PeriodicTask>(
        rt.scheduler(), interval, [ref = from->second] {
          try {
            ref.Call("chat");
          } catch (const FargoError&) {
            // transient unreachability: the generator keeps going
          }
        }));
  }

  shell::TextMonitor monitor(rt, admin, std::cout);
  monitor.Attach();

  script::Engine engine(rt, admin);
  if (!script_path.empty()) {
    // Script args: %1 = list of all cores, %2..%n+1 = complets in config
    // order (so paper-style scripts bind directly).
    std::vector<Value> args;
    Value::List core_list;
    for (core::Core* c : rt.Cores())
      core_list.push_back(Value(static_cast<std::int64_t>(c->id().value)));
    args.push_back(Value(std::move(core_list)));
    for (const auto& [name, ref] : complets)
      args.push_back(Value(ref.handle()));
    engine.Run(ReadFile(script_path), std::move(args));
    std::printf("[fargo_sim] script attached: %zu rules\n",
                engine.active_rules());
  }

  std::printf("[fargo_sim] running %.1f simulated seconds...\n", duration_s);
  rt.RunFor(static_cast<SimTime>(duration_s * 1e9));

  std::printf("\n%s", monitor.RenderSnapshot().c_str());
  std::printf("[fargo_sim] t=%.2fs messages=%llu bytes=%llu dropped=%llu "
              "script-firings=%llu\n",
              ToSeconds(rt.Now()),
              static_cast<unsigned long long>(rt.network().total_messages()),
              static_cast<unsigned long long>(rt.network().total_bytes()),
              static_cast<unsigned long long>(rt.network().dropped()),
              static_cast<unsigned long long>(engine.rule_firings()));

  if (interactive) {
    shell::Shell sh(rt, admin, std::cout);
    sh.RunInteractive(std::cin);
  }
  return 0;
}
