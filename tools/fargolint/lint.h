// fargolint — a repo-specific static checker for FarGo's determinism,
// no-pump, capture-lifetime, wire-schema, ownership-domain and
// barrier-before-reply invariants (docs/INVARIANTS.md).
//
// v2 runs in two phases: phase 1 (index.h) builds a lightweight symbol index
// across every TU in the batch — classes and their fields, enum definitions,
// method bodies, scheduled-lambda contexts, codec op sequences — and phase 2
// (rules.h) runs the rule families over it. The checker remains a token-level
// tool built on its own small C++ lexer — no libclang, no compile database —
// so it builds and runs everywhere the repo builds and its verdicts depend
// only on the bytes of the sources. That buys determinism and zero
// dependencies at the price of lexical heuristics; every rule documents its
// exact lexical contract and ships an escape hatch — a comment of the form
// `"fargolint" ":"` followed by one of (spelled apart here so this header,
// which is itself linted, does not parse its own documentation as
// directives):
//
//   allow(<rule>) <reason>        suppress one finding of the named rule on
//                                 this or the next line; the written reason
//                                 is mandatory
//   order-insensitive(<reason>)   loop-level form of allow(unordered-iter)
//   no-pump-region                from here to end of file, blocking calls
//                                 are banned even outside lambdas
//
// Separately, a comment of the form `"fargo" ":"` followed by
// `domain(<name>)` declares the ownership domain of the class or field on
// that (or the next) line — consumed by the domain rule family.
#pragma once

#include <string>
#include <vector>

namespace fargolint {

/// One diagnostic. `line` is 1-based. `excerpt` is the offending source line
/// (trimmed), for CI annotations and editors.
struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;
  std::string excerpt;
};

/// A source file handed to the linter. `path` is used for diagnostics, for
/// the path-based exemptions (src/sim/, the metrics registry) and for
/// header/impl pairing, so pass repo-relative paths when possible.
struct SourceFile {
  std::string path;
  std::string content;
};

/// Static rule metadata for --list-rules and the docs.
struct RuleInfo {
  std::string id;
  std::string summary;
};

/// Every rule the checker knows, sorted by id (stable for goldens and for
/// --list-rules output).
std::vector<RuleInfo> AllRules();

/// Lints a batch of files as one unit. Batch-wide state: header/impl pairs
/// share their unordered-container declarations, wire marker constants
/// declared in a file named wire.h are reserved across the whole batch, and
/// codec op sequences pair across files. Findings come back sorted by
/// (file, line, rule).
std::vector<Finding> Lint(const std::vector<SourceFile>& files);

/// Machine-readable wire schema (markers, enums, codec op sequences) of the
/// batch as deterministic JSON — the `--emit-schema` output that CI diffs
/// against docs/wire_schema.json to gate format drift.
std::string ExtractWireSchema(const std::vector<SourceFile>& files);

}  // namespace fargolint
