#include "tools/fargolint/lexer.h"

#include <algorithm>
#include <cctype>

namespace fargolint {
namespace {

bool IdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

Lexed Tokenize(const std::string& src) {
  Lexed out;
  {
    std::string cur;
    for (char c : src) {
      if (c == '\n') {
        out.lines.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    out.lines.push_back(cur);
  }

  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool at_line_start = true;

  auto peek = [&](std::size_t k) -> char { return i + k < n ? src[i + k] : '\0'; };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring continuations.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      out.comments.push_back({line, src.substr(start, i - start)});
      continue;
    }
    // Block comment (attributed to its starting line).
    if (c == '/' && peek(1) == '*') {
      int start_line = line;
      std::size_t start = i + 2;
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      out.comments.push_back({start_line, src.substr(start, i - start)});
      if (i < n) i += 2;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"' && (out.toks.empty() || out.toks.back().text != "\"")) {
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && src[d] != '(' && src[d] != '\n') delim += src[d++];
      if (d < n && src[d] == '(') {
        std::string close = ")" + delim + "\"";
        std::size_t end = src.find(close, d + 1);
        if (end == std::string::npos) end = n;
        for (std::size_t k = i; k < std::min(end + close.size(), n); ++k)
          if (src[k] == '\n') ++line;
        out.toks.push_back({Tok::kString, "<raw-string>", line});
        i = std::min(end + close.size(), n);
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      int start_line = line;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        else if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      out.toks.push_back({Tok::kString, "<literal>", start_line});
      continue;
    }
    if (IdentStart(c)) {
      std::size_t start = i;
      while (i < n && IdentChar(src[i])) ++i;
      out.toks.push_back({Tok::kIdent, src.substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      while (i < n && (IdentChar(src[i]) || src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')) ||
                       src[i] == '.'))
        ++i;
      out.toks.push_back({Tok::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // `::` is one token so a lone `:` unambiguously marks a range-for.
    if (c == ':' && peek(1) == ':') {
      out.toks.push_back({Tok::kPunct, "::", line});
      i += 2;
      continue;
    }
    out.toks.push_back({Tok::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

bool IsPunct(const Token& t, std::string_view s) {
  return t.kind == Tok::kPunct && t.text == s;
}

std::size_t MatchingClose(const std::vector<Token>& t, std::size_t open) {
  const std::string& o = t[open].text;
  std::string c = o == "(" ? ")" : o == "{" ? "}" : "]";
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != Tok::kPunct) continue;
    if (t[i].text == o) ++depth;
    else if (t[i].text == c && --depth == 0) return i;
  }
  return t.size();
}

std::string Trim(std::string s) {
  std::size_t b = s.find_first_not_of(" \t");
  std::size_t e = s.find_last_not_of(" \t\r");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

std::string ExcerptAt(const Lexed& lx, int line) {
  if (line >= 1 && line <= static_cast<int>(lx.lines.size()))
    return Trim(lx.lines[line - 1]);
  return "";
}

bool IsLambdaIntro(const std::vector<Token>& t, std::size_t i) {
  if (i + 1 < t.size() && IsPunct(t[i + 1], "[")) return false;  // [[attr]]
  if (i == 0) return true;
  const Token& p = t[i - 1];
  if (p.kind == Tok::kIdent)
    return p.text == "return" || p.text == "case" || p.text == "co_return" ||
           p.text == "co_yield" || p.text == "else";
  if (p.kind == Tok::kNumber || p.kind == Tok::kString) return false;
  if (p.kind == Tok::kPunct)
    return !(p.text == ")" || p.text == "]");
  return true;
}

Lambda ParseLambda(const std::vector<Token>& t, std::size_t intro) {
  Lambda lam;
  lam.intro = intro;
  lam.capture_end = MatchingClose(t, intro);
  std::size_t i = lam.capture_end + 1;
  if (i < t.size() && IsPunct(t[i], "("))  // parameter list
    i = MatchingClose(t, i) + 1;
  // Skip specifiers / trailing return type up to the body brace. Bail at
  // tokens that prove this was not a lambda after all.
  int angle = 0;
  while (i < t.size()) {
    if (IsPunct(t[i], "{") && angle == 0) {
      lam.body_open = i;
      lam.body_close = MatchingClose(t, i);
      return lam;
    }
    if (t[i].kind == Tok::kPunct) {
      if (t[i].text == "<") ++angle;
      else if (t[i].text == ">" && angle > 0) --angle;
      else if ((t[i].text == ";" || t[i].text == ")" || t[i].text == "]" ||
                t[i].text == ",") && angle == 0)
        return lam;  // subscript or expression, not a lambda
    }
    ++i;
  }
  return lam;
}

}  // namespace fargolint
