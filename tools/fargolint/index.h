// fargolint phase 1: the symbol index. One pass over every TU in the batch
// collects the facts the flow-aware rules in phase 2 consume — classes and
// their `_`-suffixed fields (with their `domain(...)` ownership
// annotations), enum definitions with enumerator values, method-definition
// and free-function body spans, scheduler-sink argument spans (the
// scheduled-lambda contexts), wire marker constants, and Encode*/Decode* /
// Write*/Read* codec definitions with their ordered primitive-op sequences.
//
// Everything here is a *lexical* approximation — see each collector for its
// exact contract. The index errs toward omission: a symbol the collectors
// cannot attribute is dropped, and rules treat absence as "don't know", so
// parser gaps fail open rather than producing noise.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/fargolint/lexer.h"
#include "tools/fargolint/lint.h"

namespace fargolint {

// ==== annotations ============================================================

struct Annotations {
  /// line -> rules allowed on that line (and the next).
  std::map<int, std::set<std::string>> allow;
  /// line -> domain name declared by a `domain(<name>)` directive (behind
  /// the `"fargo" ":"` marker, spelled apart here — this file is linted) on
  /// that line. Attachment to a class or field happens during indexing;
  /// a directive that attaches to nothing becomes an annotation finding.
  std::map<int, std::string> domains;
  /// First line of a `no-pump-region` directive; region runs to EOF.
  int no_pump_region_start = 0;  // 0 = none
  std::vector<Finding> bad;      // malformed-annotation findings
};

Annotations ParseAnnotations(const std::string& file, const Lexed& lx);

// ==== path helpers ===========================================================

bool PathContains(const std::string& path, std::string_view needle);
std::string Stem(const std::string& path);
std::string Basename(const std::string& path);

// ==== indexed symbols ========================================================

/// A `Cls::Name(...) { ... }` out-of-line method definition; attributes the
/// lambdas inside its body to the class.
struct MethodDef {
  std::string cls;
  std::string name;
  int line = 0;
  std::size_t body_open = 0, body_close = 0;  // token indices
};

struct FileCtx {
  const SourceFile* src = nullptr;
  Lexed lx;
  Annotations ann;
  /// Identifiers declared (in this file or its header/impl sibling) with an
  /// unordered_map/unordered_set type.
  std::set<std::string> unordered_ids;
  /// Argument spans of calls to scheduler/future sinks (Then/OnSettle/...):
  /// the contexts whose lambdas run later as scheduled continuations.
  std::vector<Span> sink_spans;
  /// Body spans of every detected function definition (free or method).
  std::vector<Span> fn_bodies;
  std::vector<MethodDef> methods;
};

struct FieldSym {
  std::string name;
  std::string domain;  // field-level override; "" = inherit class domain
  int line = 0;
};

struct ClassSym {
  std::string name;
  std::string domain;  // "" = unannotated
  int line = 0;
  std::size_t file = 0;  // index into Index::files
  std::size_t body_open = 0, body_close = 0;
  bool nested = false;  // defined inside another class body
  std::vector<FieldSym> fields;
};

struct Enumerator {
  std::string name;
  std::int64_t value = 0;
  bool value_known = true;  // false once an initializer is not a literal
};

struct EnumSym {
  std::string name;  // qualified by the enclosing class: "Expr::Kind"
  int line = 0;
  std::size_t file = 0;
  std::size_t tok = 0;  // index of the `enum` keyword
  bool scoped = false;  // enum class
  std::vector<Enumerator> enumerators;
};

/// `constexpr std::uint8_t kName = <literal>;` — the one-byte discriminators
/// protocols branch on. Wider constants (magics, masks) are out of scope.
struct MarkerConst {
  std::string name;
  std::uint64_t value = 0;
  std::string file;
  int line = 0;
};

/// An Encode*/Decode*/Write*/Read* function definition. `fields` are the
/// member accesses its body touches (the symmetric-fields check);  `ops` is
/// the ordered sequence of primitive read/write operations it performs
/// (varint, u8, string, ... or a nested codec's name) — the wire schema.
struct CodecDef {
  std::string verb;    // Encode / Decode / Write / Read
  std::string suffix;  // message name
  std::size_t file = 0;
  int line = 0;
  std::size_t body_open = 0, body_close = 0;
  std::set<std::string> fields;
  std::vector<std::string> ops;
};

struct Index {
  std::vector<FileCtx> files;
  std::vector<ClassSym> classes;
  std::vector<EnumSym> enums;
  std::vector<MarkerConst> markers;
  std::vector<CodecDef> codecs;
  /// Every identifier called (followed by `(`) anywhere in the batch.
  std::set<std::string> called;
  /// Field name -> indices of classes declaring a field with that name.
  std::map<std::string, std::vector<std::size_t>> field_owners;

  /// Innermost class whose body (in file `fi`) contains token `tok`, or the
  /// class named by the enclosing out-of-line method definition; nullptr if
  /// the position cannot be attributed to a class.
  const ClassSym* EnclosingClass(std::size_t fi, std::size_t tok) const;
};

Index BuildIndex(const std::vector<SourceFile>& files);

/// Collects per-file markers (shared by the wire rules and the schema).
std::vector<MarkerConst> CollectMarkers(const FileCtx& f);

}  // namespace fargolint
