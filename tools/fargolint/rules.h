// fargolint phase 2: the rule families. Each family lives in its own TU
// under rules/ and exposes two entry points — its RuleInfo list and a check
// over the phase-1 Index — registered in the table returned by Families()
// (defined in lint.cpp). Rule ids are append-only; AllRules() serves them
// sorted so --list-rules output is stable for goldens.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "tools/fargolint/index.h"
#include "tools/fargolint/lint.h"

namespace fargolint {

struct RuleFamily {
  const char* name;
  std::vector<RuleInfo> (*rules)();
  /// nullptr for families whose findings are produced during indexing
  /// (annotation hygiene).
  void (*check)(const Index&, std::vector<Finding>&);
};

const std::vector<RuleFamily>& Families();

bool KnownRule(std::string_view id);

// ---- shared vocabularies ----------------------------------------------------

/// Entry points that take a closure the scheduler will run later: future
/// continuations and raw scheduler tasks.
const std::set<std::string>& SinkNames();

/// Calls that pump the event loop or block on it.
const std::set<std::string>& BlockingNames();

// ---- family entry points (rules/<family>.cpp) -------------------------------

std::vector<RuleInfo> DeterminismRules();
void CheckDeterminism(const Index& idx, std::vector<Finding>& out);

std::vector<RuleInfo> AsyncRules();
void CheckAsync(const Index& idx, std::vector<Finding>& out);

std::vector<RuleInfo> WireRules();
void CheckWire(const Index& idx, std::vector<Finding>& out);

std::vector<RuleInfo> DomainRules();
void CheckDomains(const Index& idx, std::vector<Finding>& out);

std::vector<RuleInfo> BarrierRules();
void CheckBarrier(const Index& idx, std::vector<Finding>& out);

std::vector<RuleInfo> SwitchRules();
void CheckSwitches(const Index& idx, std::vector<Finding>& out);

}  // namespace fargolint
