// Wire-schema extraction: renders the phase-1 index's wire-facing facts —
// marker bytes, indexed enums with values, and the ordered primitive-op
// sequence of every paired codec — as deterministic JSON. CI regenerates
// this over src/ and diffs it against the checked-in docs/wire_schema.json,
// so any field-order, width or discriminator drift fails the build even
// when both codec sides were updated in lockstep (the symmetry rules cannot
// see that kind of drift; the schema gate supersedes them for it).
#include <algorithm>
#include <sstream>

#include "tools/fargolint/index.h"
#include "tools/fargolint/lint.h"

namespace fargolint {
namespace {

/// Repo-relative form of a path: everything from the first "src/" on, so
/// the emitted schema is byte-identical whether the linter is invoked with
/// relative or absolute roots.
std::string SchemaPath(const std::string& path) {
  std::size_t at = path.find("src/");
  return at == std::string::npos ? path : path.substr(at);
}

void JsonEscape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << ' ';
        else
          os << c;
    }
  }
}

}  // namespace

std::string ExtractWireSchema(const std::vector<SourceFile>& files) {
  const Index idx = BuildIndex(files);
  std::ostringstream os;
  os << "{\n  \"schema\": 1,\n";

  // ---- markers: kind -> discriminator byte ---------------------------------
  std::vector<MarkerConst> markers = idx.markers;
  std::sort(markers.begin(), markers.end(),
            [](const MarkerConst& a, const MarkerConst& b) {
              if (a.name != b.name) return a.name < b.name;
              return SchemaPath(a.file) < SchemaPath(b.file);
            });
  os << "  \"markers\": [\n";
  for (std::size_t i = 0; i < markers.size(); ++i) {
    os << "    {\"name\": \"";
    JsonEscape(os, markers[i].name);
    os << "\", \"value\": " << markers[i].value << ", \"file\": \"";
    JsonEscape(os, SchemaPath(markers[i].file));
    os << "\"}" << (i + 1 < markers.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  // ---- enums: wire kinds and state machines with values --------------------
  struct EnumRow {
    std::string name, file;
    const EnumSym* sym;
  };
  std::vector<EnumRow> enums;
  for (const EnumSym& e : idx.enums)
    enums.push_back({e.name, SchemaPath(idx.files[e.file].src->path), &e});
  std::sort(enums.begin(), enums.end(), [](const EnumRow& a, const EnumRow& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.file < b.file;
  });
  os << "  \"enums\": [\n";
  for (std::size_t i = 0; i < enums.size(); ++i) {
    os << "    {\"name\": \"";
    JsonEscape(os, enums[i].name);
    os << "\", \"file\": \"";
    JsonEscape(os, enums[i].file);
    os << "\", \"enumerators\": [";
    const auto& ens = enums[i].sym->enumerators;
    for (std::size_t j = 0; j < ens.size(); ++j) {
      os << "[\"";
      JsonEscape(os, ens[j].name);
      os << "\", ";
      if (ens[j].value_known)
        os << ens[j].value;
      else
        os << "null";
      os << "]" << (j + 1 < ens.size() ? ", " : "");
    }
    os << "]}" << (i + 1 < enums.size() ? "," : "") << "\n";
  }
  os << "  ],\n";

  // ---- messages: ordered op sequence of every paired encode-side codec -----
  struct MsgRow {
    std::string name, encoder, file;
    const CodecDef* def;
  };
  std::vector<MsgRow> msgs;
  for (const CodecDef& c : idx.codecs) {
    if (c.verb != "Encode" && c.verb != "Write") continue;
    if (c.ops.empty()) continue;
    const std::string pair = c.verb == "Encode" ? "Decode" : "Read";
    bool paired = false;
    for (const CodecDef& d : idx.codecs)
      if (d.verb == pair && d.suffix == c.suffix && !d.ops.empty()) paired = true;
    if (!paired) continue;
    msgs.push_back({c.suffix, c.verb + c.suffix,
                    SchemaPath(idx.files[c.file].src->path), &c});
  }
  std::sort(msgs.begin(), msgs.end(), [](const MsgRow& a, const MsgRow& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.file < b.file;
  });
  os << "  \"messages\": [\n";
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    os << "    {\"name\": \"";
    JsonEscape(os, msgs[i].name);
    os << "\", \"encoder\": \"";
    JsonEscape(os, msgs[i].encoder);
    os << "\", \"file\": \"";
    JsonEscape(os, msgs[i].file);
    os << "\", \"ops\": [";
    const auto& ops = msgs[i].def->ops;
    for (std::size_t j = 0; j < ops.size(); ++j) {
      os << "\"";
      JsonEscape(os, ops[j]);
      os << "\"" << (j + 1 < ops.size() ? ", " : "");
    }
    os << "]}" << (i + 1 < msgs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace fargolint
