# Wire-schema drift gate: regenerate the schema over SRC with FARGOLINT and
# compare byte-for-byte against the checked-in GOLDEN. Run by the
# fargolint_schema ctest and by CI's lint-schema step.
#
#   cmake -DFARGOLINT=... -DSRC=... -DGOLDEN=... -DOUT=... -P check_schema.cmake
execute_process(
    COMMAND ${FARGOLINT} --emit-schema ${SRC}
    OUTPUT_FILE ${OUT}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fargolint --emit-schema failed (exit ${rc})")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files ${GOLDEN} ${OUT}
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
      "wire schema drift: ${OUT} differs from ${GOLDEN}. If the format "
      "change is intentional, regenerate the golden with "
      "`fargolint --emit-schema src > docs/wire_schema.json` and commit it "
      "with the codec change.")
endif()
