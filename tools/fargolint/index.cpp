#include "tools/fargolint/index.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>

#include "tools/fargolint/rules.h"

namespace fargolint {
namespace {

// ==== annotation parsing =====================================================

void ParseFargolintComment(const std::string& file, const Comment& c,
                           std::size_t at, Annotations& out) {
  std::string rest = Trim(c.text.substr(at + 10));
  auto bad = [&](const std::string& why) {
    out.bad.push_back({"annotation", file, c.line, why, Trim(c.text)});
  };
  if (rest.rfind("allow(", 0) == 0) {
    std::size_t close = rest.find(')');
    if (close == std::string::npos) {
      bad("unterminated allow(...)");
      return;
    }
    std::string rule = Trim(rest.substr(6, close - 6));
    std::string reason = Trim(rest.substr(close + 1));
    if (!KnownRule(rule)) {
      bad("allow() names unknown rule '" + rule + "'");
      return;
    }
    if (reason.empty()) {
      bad("allow(" + rule + ") carries no reason; write why the finding is safe");
      return;
    }
    out.allow[c.line].insert(rule);
  } else if (rest.rfind("order-insensitive", 0) == 0) {
    // Loop-level alias for allow(unordered-iter); reason lives in parens.
    std::size_t open = rest.find('(');
    std::size_t close = rest.rfind(')');
    std::string reason;
    if (open != std::string::npos && close != std::string::npos && close > open)
      reason = Trim(rest.substr(open + 1, close - open - 1));
    if (reason.empty()) {
      bad("order-insensitive(<reason>) requires a written reason");
      return;
    }
    out.allow[c.line].insert("unordered-iter");
  } else if (rest.rfind("no-pump-region", 0) == 0) {
    if (out.no_pump_region_start == 0) out.no_pump_region_start = c.line;
  } else {
    bad("unknown fargolint directive '" + rest.substr(0, rest.find(' ')) + "'");
  }
}

/// `domain(<name>)` ownership annotations (the marker is `"fargo" ":"`,
/// spelled apart because this file is itself linted). Only the `domain(`
/// directive is recognized after the marker; the marker followed by
/// anything else is left alone (prose), but a malformed domain() is a
/// finding — a typo here silently weakens the confinement check.
void ParseDomainComment(const std::string& file, const Comment& c,
                        std::size_t at, Annotations& out) {
  std::string rest = Trim(c.text.substr(at + 6));
  if (rest.rfind("domain", 0) != 0) return;
  auto bad = [&](const std::string& why) {
    out.bad.push_back({"annotation", file, c.line, why, Trim(c.text)});
  };
  std::size_t open = rest.find('(');
  std::size_t close = rest.find(')');
  if (open == std::string::npos || close == std::string::npos || close < open) {
    bad("malformed domain(...) — expected domain(<name>)");
    return;
  }
  std::string name = Trim(rest.substr(open + 1, close - open - 1));
  if (name.empty()) {
    bad("domain() carries no name; declare the ownership domain");
    return;
  }
  for (char ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch)) && ch != '_' && ch != '-') {
      bad("domain name '" + name + "' must be [A-Za-z0-9_-]+");
      return;
    }
  }
  out.domains[c.line] = name;
}

// ==== unordered-container declarations =======================================

/// Collects names declared with an unordered container type:
/// `std::unordered_map<K, V> name`, including reference/pointer/const forms
/// and function parameters.
void CollectUnorderedDecls(const Lexed& lx, std::set<std::string>& out) {
  const std::vector<Token>& t = lx.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const std::string& s = t[i].text;
    if (s != "unordered_map" && s != "unordered_set" &&
        s != "unordered_multimap" && s != "unordered_multiset")
      continue;
    std::size_t j = i + 1;
    if (j < t.size() && IsPunct(t[j], "<")) {
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (IsPunct(t[j], "<")) ++depth;
        else if (IsPunct(t[j], ">") && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    while (j < t.size() &&
           (IsPunct(t[j], "&") || IsPunct(t[j], "*") ||
            (t[j].kind == Tok::kIdent && t[j].text == "const")))
      ++j;
    if (j < t.size() && t[j].kind == Tok::kIdent) out.insert(t[j].text);
  }
}

// ==== scheduler sinks ========================================================

/// Argument spans of every call to a scheduler/future sink.
std::vector<Span> SinkArgSpans(const std::vector<Token>& t) {
  std::vector<Span> spans;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || SinkNames().count(t[i].text) == 0) continue;
    if (!IsPunct(t[i + 1], "(")) continue;
    spans.push_back({i + 1, MatchingClose(t, i + 1)});
  }
  return spans;
}

// ==== function-definition spans ==============================================

/// Statement keywords that look like `ident (` but never open a function.
bool IsStatementKeyword(const std::string& s) {
  static const std::set<std::string> kKw = {
      "if", "for", "while", "switch", "catch", "return", "throw", "sizeof",
      "alignof", "decltype", "static_assert", "new", "delete", "co_await",
      "co_return", "assert", "do", "else", "case", "goto", "using"};
  return kKw.count(s) > 0;
}

/// Detects `name ( params ) [qualifiers] {` and `Cls::name ( ... ) : init {`
/// definitions and records their body spans. The contract is lexical:
/// declarations (terminated by `;`), calls (preceded by `.`/`->` or followed
/// by a statement terminator) and lambdas (no introducing identifier) do not
/// match. A missed definition fails open — rules that scope work to a
/// function simply skip unattributed positions.
void CollectFunctions(FileCtx& f) {
  const std::vector<Token>& t = f.lx.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || !IsPunct(t[i + 1], "(")) continue;
    if (IsStatementKeyword(t[i].text)) continue;
    if (i > 0 && IsPunct(t[i - 1], ".")) continue;
    if (i >= 2 && IsPunct(t[i - 1], ">") && IsPunct(t[i - 2], "-")) continue;
    std::size_t close = MatchingClose(t, i + 1);
    if (close >= t.size()) continue;
    std::size_t body = 0;
    std::size_t j = close + 1;
    if (j < t.size() && IsPunct(t[j], ":")) {
      // Constructor init list: walk the items; the body is the `{` that is
      // not itself a braced member initializer (a braced init is followed
      // by `,` or by the body brace).
      ++j;
      while (j < t.size()) {
        if (IsPunct(t[j], "(")) {
          j = MatchingClose(t, j) + 1;
          continue;
        }
        if (IsPunct(t[j], "{")) {
          std::size_t c = MatchingClose(t, j);
          if (c + 1 < t.size() && IsPunct(t[c + 1], ",")) {
            j = c + 2;
            continue;
          }
          if (c + 1 < t.size() && IsPunct(t[c + 1], "{")) {
            body = c + 1;
            break;
          }
          body = j;  // this brace was the body
          break;
        }
        if (IsPunct(t[j], ";")) break;
        ++j;
      }
    } else {
      // Skip qualifiers / trailing return type; bail on terminators.
      int steps = 0;
      while (j < t.size() && ++steps < 40) {
        if (IsPunct(t[j], "{")) {
          body = j;
          break;
        }
        if (IsPunct(t[j], ";") || IsPunct(t[j], "=") || IsPunct(t[j], ",") ||
            IsPunct(t[j], ")") || IsPunct(t[j], "]"))
          break;
        if (IsPunct(t[j], "(")) {  // noexcept(...), decltype(...)
          j = MatchingClose(t, j) + 1;
          continue;
        }
        ++j;
      }
    }
    if (body == 0) continue;
    std::size_t body_close = MatchingClose(t, body);
    f.fn_bodies.push_back({body, body_close});
    // Out-of-line method: `Cls :: name (`.
    if (i >= 2 && IsPunct(t[i - 1], "::") && t[i - 2].kind == Tok::kIdent) {
      f.methods.push_back({t[i - 2].text, t[i].text, t[i].line, body, body_close});
    }
  }
}

// ==== classes and fields =====================================================

void CollectClasses(Index& idx, std::size_t fi) {
  FileCtx& f = idx.files[fi];
  const std::vector<Token>& t = f.lx.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent ||
        (t[i].text != "class" && t[i].text != "struct"))
      continue;
    if (i > 0 && t[i - 1].kind == Tok::kIdent && t[i - 1].text == "enum")
      continue;  // enum class
    std::size_t j = i + 1;
    if (j < t.size() && IsPunct(t[j], "["))  // [[attribute]]
      j = MatchingClose(t, j) + 1;
    if (j >= t.size() || t[j].kind != Tok::kIdent) continue;  // anonymous
    ClassSym cs;
    cs.name = t[j].text;
    cs.line = t[j].line;
    cs.file = fi;
    ++j;
    if (j < t.size() && IsPunct(t[j], "<")) {  // specialization arguments
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (IsPunct(t[j], "<")) ++depth;
        else if (IsPunct(t[j], ">") && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    // Scan the base clause for the body `{`. `;` is a forward declaration;
    // `>` / `)` / `,` / `=` prove template-parameter or expression context
    // (`template <class T>`).
    bool is_def = false;
    for (; j < t.size(); ++j) {
      if (IsPunct(t[j], "{")) {
        is_def = true;
        break;
      }
      if (IsPunct(t[j], ";") || IsPunct(t[j], ">") || IsPunct(t[j], ")") ||
          IsPunct(t[j], ",") || IsPunct(t[j], "=") || IsPunct(t[j], "("))
        break;
    }
    if (!is_def) continue;
    cs.body_open = j;
    cs.body_close = MatchingClose(t, j);
    // `_`-suffixed member declarations directly inside the body (depth 1);
    // inline method bodies and nested classes sit deeper and are skipped.
    int depth = 0;
    for (std::size_t k = cs.body_open; k < cs.body_close; ++k) {
      if (IsPunct(t[k], "{")) {
        ++depth;
        continue;
      }
      if (IsPunct(t[k], "}")) {
        --depth;
        continue;
      }
      if (depth != 1) continue;
      if (t[k].kind == Tok::kIdent && t[k].text.size() > 1 &&
          t[k].text.back() == '_' && k + 1 < t.size() &&
          (IsPunct(t[k + 1], ";") || IsPunct(t[k + 1], "=") ||
           IsPunct(t[k + 1], "{") || IsPunct(t[k + 1], "["))) {
        FieldSym fs;
        fs.name = t[k].text;
        fs.line = t[k].line;
        cs.fields.push_back(std::move(fs));
      }
    }
    idx.classes.push_back(std::move(cs));
  }
  // Mark nesting (a class whose body contains another class's name token).
  for (std::size_t a = 0; a < idx.classes.size(); ++a) {
    ClassSym& inner = idx.classes[a];
    if (inner.file != fi) continue;
    for (std::size_t b = 0; b < idx.classes.size(); ++b) {
      if (a == b || idx.classes[b].file != fi) continue;
      const ClassSym& outer = idx.classes[b];
      if (inner.body_open > outer.body_open &&
          inner.body_close < outer.body_close)
        inner.nested = true;
    }
  }
}

/// Attaches parsed `domain(...)` annotations: a directive on the class-name
/// line or the line above names the class's domain; likewise for fields.
/// Nested classes inherit the innermost enclosing class's domain unless they
/// declare their own. Unattached directives become annotation findings.
void AttachDomains(Index& idx) {
  for (std::size_t fi = 0; fi < idx.files.size(); ++fi) {
    FileCtx& f = idx.files[fi];
    if (f.ann.domains.empty()) continue;
    std::set<int> used;
    for (ClassSym& cs : idx.classes) {
      if (cs.file != fi) continue;
      for (int l : {cs.line, cs.line - 1}) {
        auto it = f.ann.domains.find(l);
        if (it != f.ann.domains.end()) {
          cs.domain = it->second;
          used.insert(l);
        }
      }
      for (FieldSym& fs : cs.fields) {
        for (int l : {fs.line, fs.line - 1}) {
          auto it = f.ann.domains.find(l);
          if (it != f.ann.domains.end() && l != cs.line && l != cs.line - 1) {
            fs.domain = it->second;
            used.insert(l);
          }
        }
      }
    }
    for (const auto& [line, name] : f.ann.domains) {
      if (used.count(line)) continue;
      f.ann.bad.push_back(
          {"annotation", f.src->path, line,
           "domain(" + name + ") attaches to no class or field declaration",
           ExcerptAt(f.lx, line)});
    }
  }
  // Inheritance pass: unannotated nested classes take the enclosing domain.
  bool changed = true;
  while (changed) {
    changed = false;
    for (ClassSym& cs : idx.classes) {
      if (!cs.domain.empty() || !cs.nested) continue;
      // Innermost enclosing class in the same file.
      const ClassSym* outer = nullptr;
      for (const ClassSym& o : idx.classes) {
        if (&o == &cs || o.file != cs.file) continue;
        if (cs.body_open > o.body_open && cs.body_close < o.body_close &&
            (outer == nullptr || o.body_open > outer->body_open))
          outer = &o;
      }
      if (outer != nullptr && !outer->domain.empty()) {
        cs.domain = outer->domain;
        changed = true;
      }
    }
  }
}

// ==== enums ==================================================================

void CollectEnums(Index& idx, std::size_t fi) {
  FileCtx& f = idx.files[fi];
  const std::vector<Token>& t = f.lx.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || t[i].text != "enum") continue;
    std::size_t j = i + 1;
    EnumSym es;
    es.tok = i;
    es.file = fi;
    if (j < t.size() && t[j].kind == Tok::kIdent &&
        (t[j].text == "class" || t[j].text == "struct")) {
      es.scoped = true;
      ++j;
    }
    if (j >= t.size() || t[j].kind != Tok::kIdent) continue;  // anonymous
    es.name = t[j].text;
    es.line = t[j].line;
    ++j;
    if (j < t.size() && IsPunct(t[j], ":")) {  // underlying type
      ++j;
      while (j < t.size() && !IsPunct(t[j], "{") && !IsPunct(t[j], ";")) ++j;
    }
    if (j >= t.size() || !IsPunct(t[j], "{")) continue;  // opaque declaration
    std::size_t close = MatchingClose(t, j);
    std::int64_t next = 0;
    bool known = true;
    for (std::size_t k = j + 1; k < close; ++k) {
      if (t[k].kind != Tok::kIdent) continue;
      Enumerator e;
      e.name = t[k].text;
      if (k + 2 < close && IsPunct(t[k + 1], "=") &&
          t[k + 2].kind == Tok::kNumber &&
          (k + 3 >= close || IsPunct(t[k + 3], ",") || IsPunct(t[k + 3], "}"))) {
        e.value = static_cast<std::int64_t>(
            std::strtoll(t[k + 2].text.c_str(), nullptr, 0));
        known = true;
      } else if (k + 1 < close && IsPunct(t[k + 1], "=")) {
        known = false;  // expression initializer; values unknown from here on
        e.value = 0;
      } else {
        e.value = next;
      }
      e.value_known = known;
      next = e.value + 1;
      es.enumerators.push_back(std::move(e));
      // Skip to the separating comma.
      while (k < close && !IsPunct(t[k], ",")) ++k;
    }
    if (es.enumerators.empty()) continue;
    idx.enums.push_back(std::move(es));
  }
  // Qualify enums nested in a class body: Kind -> Expr::Kind.
  for (EnumSym& es : idx.enums) {
    if (es.file != fi) continue;
    const ClassSym* encl = nullptr;
    for (const ClassSym& cs : idx.classes) {
      if (cs.file != fi) continue;
      if (es.tok > cs.body_open && es.tok < cs.body_close &&
          (encl == nullptr || cs.body_open > encl->body_open))
        encl = &cs;
    }
    if (encl != nullptr) es.name = encl->name + "::" + es.name;
  }
}

// ==== codecs =================================================================

/// Member accesses `x.y` where y is not immediately called — i.e. the data
/// fields a codec touches, as opposed to writer/reader method calls.
std::set<std::string> FieldAccesses(const std::vector<Token>& t,
                                    std::size_t begin, std::size_t end) {
  std::set<std::string> fields;
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (!IsPunct(t[i], ".")) continue;
    if (t[i + 1].kind != Tok::kIdent) continue;
    if (i + 2 < t.size() && IsPunct(t[i + 2], "(")) continue;  // method call
    fields.insert(t[i + 1].text);
  }
  return fields;
}

/// Primitive wire operation performed by a call named `name`, or "" when the
/// call is not a read/write. Unrecognized Write*/Read* suffixes are treated
/// as nested codec references and named by their suffix, so `WriteCoreId`
/// pairs with `ReadCoreId` as op "CoreId".
std::string WireOp(const std::string& name) {
  if (name == "CheckOk") return "ok";  // decode-side pair of WriteOk
  static const std::map<std::string, std::string> kPrim = {
      {"Varint", "varint"}, {"U8", "u8"},         {"Bool", "bool"},
      {"Int", "int"},       {"Double", "f64"},    {"String", "string"},
      {"Bytes", "bytes"},   {"BytesView", "bytes"}, {"Raw", "raw"},
      {"Ok", "ok"},
  };
  for (const char* verb : {"Encode", "Decode", "Write", "Read"}) {
    const std::size_t vn = std::strlen(verb);
    if (name.rfind(verb, 0) != 0 || name.size() <= vn) continue;
    std::string suffix = name.substr(vn);
    if (!std::isupper(static_cast<unsigned char>(suffix[0])))
      return "";  // Reader / Writer / similar, not a wire op
    auto it = kPrim.find(suffix);
    return it != kPrim.end() ? it->second : suffix;
  }
  return "";
}

/// Suffixes that name serializer primitives rather than messages. The
/// Writer/Reader methods in bytes.h and their pass-through wrappers in
/// graph.h *are* the primitive vocabulary — pairing bytes.h's WriteInt
/// against graph.h's ReadInt batch-wide would compare a primitive's
/// implementation with its own wrapper and drown the schema in noise.
/// `Object` is the graph-layer primitive (polymorphic, branchy by design).
bool PrimitiveSuffix(const std::string& suffix) {
  static const std::set<std::string> kPrimitives = {
      "Varint", "U8",  "Bool", "Int",    "Double", "String",
      "Bytes",  "Raw", "Ok",   "Object", "BytesView"};
  return kPrimitives.count(suffix) != 0;
}

void CollectCodecs(Index& idx, std::size_t fi) {
  FileCtx& f = idx.files[fi];
  const std::vector<Token>& t = f.lx.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || !IsPunct(t[i + 1], "(")) continue;
    // A call site, not a definition: `wire::WriteHandle(w, h)` — only match
    // names at definition position (next non-qualifier tokens reach a `{`).
    const std::string& name = t[i].text;
    std::string verb;
    for (const char* v : {"Encode", "Decode", "Write", "Read"})
      if (name.rfind(v, 0) == 0 && name.size() > std::strlen(v)) verb = v;
    if (verb.empty()) continue;
    if (PrimitiveSuffix(name.substr(verb.size()))) continue;
    if (i > 0 && (IsPunct(t[i - 1], ".") || IsPunct(t[i - 1], "&"))) continue;
    std::size_t close = MatchingClose(t, i + 1);
    // Definition: `{` within the next few tokens (allowing const/noexcept),
    // before any `;` or `)`.
    std::size_t body_open = 0;
    for (std::size_t j = close + 1; j < std::min(close + 5, t.size()); ++j) {
      if (IsPunct(t[j], "{")) {
        body_open = j;
        break;
      }
      if (t[j].kind == Tok::kPunct && t[j].text != "{") break;
    }
    if (body_open == 0) continue;
    CodecDef fn;
    fn.verb = verb;
    fn.suffix = name.substr(verb.size());
    fn.file = fi;
    fn.line = t[i].line;
    fn.body_open = body_open;
    fn.body_close = MatchingClose(t, body_open);
    fn.fields = FieldAccesses(t, fn.body_open, fn.body_close);
    for (std::size_t k = body_open + 1; k + 1 < fn.body_close; ++k) {
      if (t[k].kind != Tok::kIdent || !IsPunct(t[k + 1], "(")) continue;
      std::string op = WireOp(t[k].text);
      if (!op.empty()) fn.ops.push_back(std::move(op));
    }
    idx.codecs.push_back(std::move(fn));
  }
}

}  // namespace

// ==== public entry points ====================================================

Annotations ParseAnnotations(const std::string& file, const Lexed& lx) {
  Annotations out;
  for (const Comment& c : lx.comments) {
    std::size_t at = c.text.find("fargolint:");
    if (at != std::string::npos) {
      ParseFargolintComment(file, c, at, out);
      continue;
    }
    // `fargo:` followed by a second colon is a qualified name in prose
    // (fargo::core); only the bare marker introduces a directive.
    at = c.text.find("fargo:");
    if (at != std::string::npos &&
        (at + 6 >= c.text.size() || c.text[at + 6] != ':'))
      ParseDomainComment(file, c, at, out);
  }
  return out;
}

bool PathContains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

std::string Stem(const std::string& path) {
  std::size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(0, dot);
}

std::string Basename(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::vector<MarkerConst> CollectMarkers(const FileCtx& f) {
  std::vector<MarkerConst> out;
  const std::vector<Token>& t = f.lx.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || t[i].text != "constexpr") continue;
    bool u8 = false;
    MarkerConst mc;
    for (std::size_t j = i + 1; j < t.size() && !IsPunct(t[j], ";"); ++j) {
      if (t[j].kind == Tok::kIdent && t[j].text == "uint8_t") u8 = true;
      if (t[j].kind == Tok::kIdent && t[j].text.size() > 1 &&
          t[j].text[0] == 'k' &&
          std::isupper(static_cast<unsigned char>(t[j].text[1])) &&
          j + 2 < t.size() && IsPunct(t[j + 1], "=") &&
          t[j + 2].kind == Tok::kNumber) {
        mc.name = t[j].text;
        mc.value = std::strtoull(t[j + 2].text.c_str(), nullptr, 0);
        mc.line = t[j].line;
      }
    }
    if (u8 && !mc.name.empty()) {
      mc.file = f.src->path;
      out.push_back(std::move(mc));
    }
  }
  return out;
}

const ClassSym* Index::EnclosingClass(std::size_t fi, std::size_t tok) const {
  const ClassSym* best = nullptr;
  for (const ClassSym& cs : classes) {
    if (cs.file != fi) continue;
    if (tok > cs.body_open && tok < cs.body_close &&
        (best == nullptr || cs.body_open > best->body_open))
      best = &cs;
  }
  if (best != nullptr) return best;
  // Out-of-line method bodies: attribute by the `Cls::` qualifier. Skip
  // ambiguous class names (same name defined in several files).
  const MethodDef* m = nullptr;
  for (const MethodDef& md : files[fi].methods) {
    if (tok > md.body_open && tok < md.body_close &&
        (m == nullptr || md.body_open > m->body_open))
      m = &md;
  }
  if (m == nullptr) return nullptr;
  const ClassSym* found = nullptr;
  for (const ClassSym& cs : classes) {
    if (cs.name != m->cls) continue;
    if (found != nullptr) return nullptr;  // ambiguous
    found = &cs;
  }
  return found;
}

Index BuildIndex(const std::vector<SourceFile>& files) {
  Index idx;
  idx.files.reserve(files.size());
  for (const SourceFile& f : files) {
    FileCtx c;
    c.src = &f;
    c.lx = Tokenize(f.content);
    c.ann = ParseAnnotations(f.path, c.lx);
    c.sink_spans = SinkArgSpans(c.lx.toks);
    CollectFunctions(c);
    idx.files.push_back(std::move(c));
  }

  // Header/impl pairing: tracker.cpp iterating `entries_` must know the
  // member was declared unordered in tracker.h.
  std::map<std::string, std::set<std::string>> by_stem;
  for (FileCtx& c : idx.files)
    CollectUnorderedDecls(c.lx, by_stem[Stem(c.src->path)]);
  for (FileCtx& c : idx.files) c.unordered_ids = by_stem[Stem(c.src->path)];

  for (std::size_t fi = 0; fi < idx.files.size(); ++fi) {
    CollectClasses(idx, fi);
    CollectEnums(idx, fi);
    CollectCodecs(idx, fi);
    for (const MarkerConst& m : CollectMarkers(idx.files[fi]))
      idx.markers.push_back(m);
    const std::vector<Token>& t = idx.files[fi].lx.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i)
      if (t[i].kind == Tok::kIdent && IsPunct(t[i + 1], "("))
        idx.called.insert(t[i].text);
  }
  AttachDomains(idx);

  for (std::size_t ci = 0; ci < idx.classes.size(); ++ci)
    for (const FieldSym& fs : idx.classes[ci].fields)
      idx.field_owners[fs.name].push_back(ci);

  return idx;
}

}  // namespace fargolint
