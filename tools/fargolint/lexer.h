// fargolint lexer: a deliberately small C++ tokenizer — no libclang, no
// compile database — so the linter builds everywhere the repo builds and its
// verdicts depend only on the bytes of the sources. Comments are collected
// with their line numbers (annotations live there), preprocessor lines are
// skipped, raw strings are collapsed, and `::` is one token so a lone `:`
// unambiguously marks a range-for or a label.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace fargolint {

enum class Tok { kIdent, kNumber, kString, kPunct };

struct Token {
  Tok kind;
  std::string text;
  int line = 0;
};

struct Comment {
  int line = 0;
  std::string text;
};

struct Lexed {
  std::vector<Token> toks;
  std::vector<Comment> comments;
  std::vector<std::string> lines;  // raw source lines, for excerpts
};

Lexed Tokenize(const std::string& src);

// ==== token helpers ==========================================================

bool IsPunct(const Token& t, std::string_view s);

/// Index of the token matching the opener at `open` ('(' / '{' / '[').
std::size_t MatchingClose(const std::vector<Token>& t, std::size_t open);

std::string Trim(std::string s);

/// The offending source line (trimmed), for CI annotations and editors.
std::string ExcerptAt(const Lexed& lx, int line);

/// True when the `[` at index i opens a lambda capture list rather than a
/// subscript or attribute: subscripts follow a value (identifier, literal,
/// `)`, `]`), attributes are `[[`.
bool IsLambdaIntro(const std::vector<Token>& t, std::size_t i);

struct Lambda {
  std::size_t intro = 0;        // '[' index
  std::size_t capture_end = 0;  // ']' index
  std::size_t body_open = 0;    // '{' index (0 = no body found)
  std::size_t body_close = 0;
};

/// Parses the lambda whose capture list opens at `intro`.
Lambda ParseLambda(const std::vector<Token>& t, std::size_t intro);

/// A half-open token range (begin/end are delimiter indices; Contains is
/// strict, i.e. the delimiters themselves are outside).
struct Span {
  std::size_t begin = 0, end = 0;
  bool Contains(std::size_t i) const { return i > begin && i < end; }
};

}  // namespace fargolint
