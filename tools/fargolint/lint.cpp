#include "tools/fargolint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

namespace fargolint {
namespace {

// ==== rule table =============================================================

const RuleInfo kRules[] = {
    {"wallclock",
     "wall-clock time source (system_clock/steady_clock/time()/clock()) in "
     "deterministic code"},
    {"unseeded-rng",
     "nondeterministic randomness: std::rand/srand/random_device, or an "
     "mt19937 engine constructed without an explicit seed"},
    {"thread",
     "real concurrency (std::thread/jthread/async) outside src/sim/ and the "
     "metrics registry"},
    {"unordered-iter",
     "range-for over an unordered_map/unordered_set: iteration order is "
     "hash-seed dependent and must not reach wire, trace or shell output"},
    {"no-pump",
     "blocking call (Invoke/Move/Await/Pump/RunUntil/...) inside a scheduled "
     "continuation or a declared no-pump region"},
    {"capture-ref",
     "default reference capture [&] in a lambda handed to the scheduler or "
     "future layer"},
    {"capture-this",
     "bare `this` captured into a scheduled continuation without an "
     "owner-keepalive (shared_from_this / alive-flag / keepalive capture)"},
    {"wire-asymmetry",
     "message field encoded but never decoded (or vice versa) in an "
     "Encode*/Decode* or Write*/Read* pair"},
    {"wire-dup-marker",
     "duplicate wire marker byte: two k-constants share a value, or a "
     "constant collides with a marker reserved in wire.h"},
    {"wal-record-coverage",
     "WAL record discriminator (kWal* constant) without a matching "
     "Write<Kind>Record / Read<Kind>Record codec pair in the batch: a record "
     "that can be logged but not replayed is silent data loss on recovery"},
    {"annotation",
     "malformed fargolint annotation: unknown directive or rule id, or an "
     "allow(...) without a written reason"},
};

bool KnownRule(std::string_view id) {
  for (const RuleInfo& r : kRules)
    if (r.id == id) return true;
  return false;
}

// ==== lexer ==================================================================

enum class Tok { kIdent, kNumber, kString, kPunct };

struct Token {
  Tok kind;
  std::string text;
  int line = 0;
};

struct Comment {
  int line = 0;
  std::string text;
};

struct Lexed {
  std::vector<Token> toks;
  std::vector<Comment> comments;
  std::vector<std::string> lines;  // raw source lines, for excerpts
};

bool IdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

Lexed Tokenize(const std::string& src) {
  Lexed out;
  {
    std::string cur;
    for (char c : src) {
      if (c == '\n') {
        out.lines.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    out.lines.push_back(cur);
  }

  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool at_line_start = true;

  auto peek = [&](std::size_t k) -> char { return i + k < n ? src[i + k] : '\0'; };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring continuations.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && peek(1) == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      out.comments.push_back({line, src.substr(start, i - start)});
      continue;
    }
    // Block comment (attributed to its starting line).
    if (c == '/' && peek(1) == '*') {
      int start_line = line;
      std::size_t start = i + 2;
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      out.comments.push_back({start_line, src.substr(start, i - start)});
      if (i < n) i += 2;
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"' && (out.toks.empty() || out.toks.back().text != "\"")) {
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && src[d] != '(' && src[d] != '\n') delim += src[d++];
      if (d < n && src[d] == '(') {
        std::string close = ")" + delim + "\"";
        std::size_t end = src.find(close, d + 1);
        if (end == std::string::npos) end = n;
        for (std::size_t k = i; k < std::min(end + close.size(), n); ++k)
          if (src[k] == '\n') ++line;
        out.toks.push_back({Tok::kString, "<raw-string>", line});
        i = std::min(end + close.size(), n);
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      int start_line = line;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        else if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      out.toks.push_back({Tok::kString, "<literal>", start_line});
      continue;
    }
    if (IdentStart(c)) {
      std::size_t start = i;
      while (i < n && IdentChar(src[i])) ++i;
      out.toks.push_back({Tok::kIdent, src.substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      while (i < n && (IdentChar(src[i]) || src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')) ||
                       src[i] == '.'))
        ++i;
      out.toks.push_back({Tok::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // `::` is one token so a lone `:` unambiguously marks a range-for.
    if (c == ':' && peek(1) == ':') {
      out.toks.push_back({Tok::kPunct, "::", line});
      i += 2;
      continue;
    }
    out.toks.push_back({Tok::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ==== annotations ============================================================

struct Annotations {
  /// line -> rules allowed on that line (and the next).
  std::map<int, std::set<std::string>> allow;
  /// First line of a `no-pump-region` directive; region runs to EOF.
  int no_pump_region_start = 0;  // 0 = none
  std::vector<Finding> bad;      // malformed-annotation findings
};

std::string Trim(std::string s) {
  std::size_t b = s.find_first_not_of(" \t");
  std::size_t e = s.find_last_not_of(" \t\r");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

Annotations ParseAnnotations(const std::string& file, const Lexed& lx) {
  Annotations out;
  for (const Comment& c : lx.comments) {
    std::size_t at = c.text.find("fargolint:");
    if (at == std::string::npos) continue;
    std::string rest = Trim(c.text.substr(at + 10));
    auto bad = [&](const std::string& why) {
      out.bad.push_back({"annotation", file, c.line, why, Trim(c.text)});
    };
    if (rest.rfind("allow(", 0) == 0) {
      std::size_t close = rest.find(')');
      if (close == std::string::npos) {
        bad("unterminated allow(...)");
        continue;
      }
      std::string rule = Trim(rest.substr(6, close - 6));
      std::string reason = Trim(rest.substr(close + 1));
      if (!KnownRule(rule)) {
        bad("allow() names unknown rule '" + rule + "'");
        continue;
      }
      if (reason.empty()) {
        bad("allow(" + rule + ") carries no reason; write why the finding is safe");
        continue;
      }
      out.allow[c.line].insert(rule);
    } else if (rest.rfind("order-insensitive", 0) == 0) {
      // Loop-level alias for allow(unordered-iter); reason lives in parens.
      std::size_t open = rest.find('(');
      std::size_t close = rest.rfind(')');
      std::string reason;
      if (open != std::string::npos && close != std::string::npos && close > open)
        reason = Trim(rest.substr(open + 1, close - open - 1));
      if (reason.empty()) {
        bad("order-insensitive(<reason>) requires a written reason");
        continue;
      }
      out.allow[c.line].insert("unordered-iter");
    } else if (rest.rfind("no-pump-region", 0) == 0) {
      if (out.no_pump_region_start == 0) out.no_pump_region_start = c.line;
    } else {
      bad("unknown fargolint directive '" + rest.substr(0, rest.find(' ')) + "'");
    }
  }
  return out;
}

// ==== token helpers ==========================================================

/// Index of the token matching the opener at `open` ('(' / '{' / '[').
std::size_t MatchingClose(const std::vector<Token>& t, std::size_t open) {
  const std::string& o = t[open].text;
  std::string c = o == "(" ? ")" : o == "{" ? "}" : "]";
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != Tok::kPunct) continue;
    if (t[i].text == o) ++depth;
    else if (t[i].text == c && --depth == 0) return i;
  }
  return t.size();
}

bool IsPunct(const Token& t, std::string_view s) {
  return t.kind == Tok::kPunct && t.text == s;
}

std::string ExcerptAt(const Lexed& lx, int line) {
  if (line >= 1 && line <= static_cast<int>(lx.lines.size()))
    return Trim(lx.lines[line - 1]);
  return "";
}

/// True when the `[` at index i opens a lambda capture list rather than a
/// subscript or attribute: subscripts follow a value (identifier, literal,
/// `)`, `]`), attributes are `[[`.
bool IsLambdaIntro(const std::vector<Token>& t, std::size_t i) {
  if (i + 1 < t.size() && IsPunct(t[i + 1], "[")) return false;  // [[attr]]
  if (i == 0) return true;
  const Token& p = t[i - 1];
  if (p.kind == Tok::kIdent)
    return p.text == "return" || p.text == "case" || p.text == "co_return" ||
           p.text == "co_yield" || p.text == "else";
  if (p.kind == Tok::kNumber || p.kind == Tok::kString) return false;
  if (p.kind == Tok::kPunct)
    return !(p.text == ")" || p.text == "]");
  return true;
}

struct Lambda {
  std::size_t intro = 0;        // '[' index
  std::size_t capture_end = 0;  // ']' index
  std::size_t body_open = 0;    // '{' index (0 = no body found)
  std::size_t body_close = 0;
};

/// Parses the lambda whose capture list opens at `intro`.
Lambda ParseLambda(const std::vector<Token>& t, std::size_t intro) {
  Lambda lam;
  lam.intro = intro;
  lam.capture_end = MatchingClose(t, intro);
  std::size_t i = lam.capture_end + 1;
  if (i < t.size() && IsPunct(t[i], "("))  // parameter list
    i = MatchingClose(t, i) + 1;
  // Skip specifiers / trailing return type up to the body brace. Bail at
  // tokens that prove this was not a lambda after all.
  int angle = 0;
  while (i < t.size()) {
    if (IsPunct(t[i], "{") && angle == 0) {
      lam.body_open = i;
      lam.body_close = MatchingClose(t, i);
      return lam;
    }
    if (t[i].kind == Tok::kPunct) {
      if (t[i].text == "<") ++angle;
      else if (t[i].text == ">" && angle > 0) --angle;
      else if ((t[i].text == ";" || t[i].text == ")" || t[i].text == "]" ||
                t[i].text == ",") && angle == 0)
        return lam;  // subscript or expression, not a lambda
    }
    ++i;
  }
  return lam;
}

// ==== per-file context =======================================================

struct FileCtx {
  const SourceFile* src = nullptr;
  Lexed lx;
  Annotations ann;
  /// Identifiers declared (in this file or its header/impl sibling) with an
  /// unordered_map/unordered_set type.
  std::set<std::string> unordered_ids;
};

bool PathContains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

std::string Stem(const std::string& path) {
  std::size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(0, dot);
}

std::string Basename(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Collects names declared with an unordered container type:
/// `std::unordered_map<K, V> name`, including reference/pointer/const forms
/// and function parameters.
void CollectUnorderedDecls(const Lexed& lx, std::set<std::string>& out) {
  const std::vector<Token>& t = lx.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const std::string& s = t[i].text;
    if (s != "unordered_map" && s != "unordered_set" &&
        s != "unordered_multimap" && s != "unordered_multiset")
      continue;
    std::size_t j = i + 1;
    if (j < t.size() && IsPunct(t[j], "<")) {
      int depth = 0;
      for (; j < t.size(); ++j) {
        if (IsPunct(t[j], "<")) ++depth;
        else if (IsPunct(t[j], ">") && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    while (j < t.size() &&
           (IsPunct(t[j], "&") || IsPunct(t[j], "*") ||
            (t[j].kind == Tok::kIdent && t[j].text == "const")))
      ++j;
    if (j < t.size() && t[j].kind == Tok::kIdent) out.insert(t[j].text);
  }
}

// ==== determinism: banned identifiers ========================================

void CheckBannedIdents(const FileCtx& f, std::vector<Finding>& out) {
  const std::string& path = f.src->path;
  const bool in_sim = PathContains(path, "src/sim/");
  const bool in_metrics = PathContains(path, "monitor/metrics.");
  const std::vector<Token>& t = f.lx.toks;

  auto next_is_call = [&](std::size_t i) {
    return i + 1 < t.size() && IsPunct(t[i + 1], "(");
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const std::string& s = t[i].text;
    const int line = t[i].line;

    if (!in_sim) {
      if (s == "system_clock" || s == "steady_clock" ||
          s == "high_resolution_clock") {
        out.push_back({"wallclock", path, line,
                       "std::chrono::" + s +
                           " breaks seed-determinism; use the simulated "
                           "clock (Scheduler::Now)",
                       ExcerptAt(f.lx, line)});
      } else if ((s == "time" || s == "clock" || s == "gettimeofday" ||
                  s == "clock_gettime") &&
                 next_is_call(i) &&
                 // `x.time(` / `x->clock(` are member calls on app types;
                 // the C library forms are bare or std::-qualified.
                 (i == 0 || !IsPunct(t[i - 1], ".")) &&
                 !(i >= 2 && IsPunct(t[i - 1], ">") && IsPunct(t[i - 2], "-"))) {
        out.push_back({"wallclock", path, line,
                       s + "() reads the wall clock; use the simulated clock "
                           "(Scheduler::Now)",
                       ExcerptAt(f.lx, line)});
      }

      if (s == "rand" || s == "srand" || s == "random_device") {
        if (s != "random_device" && !next_is_call(i)) continue;
        out.push_back({"unseeded-rng", path, line,
                       "std::" + s +
                           " is not seed-deterministic; derive randomness "
                           "from the run seed (see net::chaos)",
                       ExcerptAt(f.lx, line)});
      } else if (s == "mt19937" || s == "mt19937_64") {
        // Seeded construction `mt19937 rng(seed)` / `mt19937 rng{seed}` is
        // fine; a default-constructed engine always yields the same stream
        // yet reads as random, and `mt19937 rng(random_device{}())` is
        // caught by the random_device ban above.
        std::size_t j = i + 1;
        if (j < t.size() && t[j].kind == Tok::kIdent) ++j;  // variable name
        bool seeded = false;
        if (j < t.size() && (IsPunct(t[j], "(") || IsPunct(t[j], "{")))
          seeded = MatchingClose(t, j) > j + 1;  // non-empty argument list
        if (!seeded)
          out.push_back({"unseeded-rng", path, line,
                         s + " constructed without an explicit seed",
                         ExcerptAt(f.lx, line)});
      }
    }

    if (!in_sim && !in_metrics &&
        (s == "thread" || s == "jthread" || s == "async")) {
      // Only the std:: forms: require a `std ::` qualifier so members like
      // `x.async(...)` or the identifier `thread` in comments/names pass.
      if (i >= 2 && IsPunct(t[i - 1], "::") && t[i - 2].kind == Tok::kIdent &&
          t[i - 2].text == "std") {
        out.push_back({"thread", path, line,
                       "std::" + s +
                           " introduces real concurrency; the simulation is "
                           "single-threaded by contract (only src/sim/ and "
                           "the metrics registry may differ)",
                       ExcerptAt(f.lx, line)});
      }
    }
  }
}

// ==== determinism: unordered iteration =======================================

void CheckUnorderedIteration(const FileCtx& f, std::vector<Finding>& out) {
  const std::vector<Token>& t = f.lx.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || t[i].text != "for") continue;
    if (!IsPunct(t[i + 1], "(")) continue;
    std::size_t open = i + 1;
    std::size_t close = MatchingClose(t, open);
    // Find the range-for `:` at depth 1 (`::` is a distinct token).
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = open; j < close; ++j) {
      if (t[j].kind != Tok::kPunct) continue;
      if (t[j].text == "(" || t[j].text == "[" || t[j].text == "{") ++depth;
      else if (t[j].text == ")" || t[j].text == "]" || t[j].text == "}") --depth;
      else if (t[j].text == ":" && depth == 1) {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;  // classic for loop
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (t[j].kind != Tok::kIdent) continue;
      const bool declared_unordered = f.unordered_ids.count(t[j].text) > 0;
      const bool literally_unordered = t[j].text.rfind("unordered_", 0) == 0;
      if (!declared_unordered && !literally_unordered) continue;
      out.push_back(
          {"unordered-iter", f.src->path, t[i].line,
           "range-for over unordered container '" + t[j].text +
               "': iteration order is hash-seed/pointer dependent. Sort the "
               "elements first, use an ordered container, or annotate "
               "`// fargolint: order-insensitive(<reason>)`",
           ExcerptAt(f.lx, t[i].line)});
      break;  // one finding per loop
    }
  }
}

// ==== no-pump & capture rules ================================================

const std::set<std::string>& SinkNames() {
  // Entry points that take a closure the scheduler will run later: future
  // continuations and raw scheduler tasks.
  static const std::set<std::string> kSinks = {
      "Then", "OrElse", "OnSettle", "ScheduleAt", "ScheduleAfter", "ExpireAfter"};
  return kSinks;
}

const std::set<std::string>& BlockingNames() {
  static const std::set<std::string> kBlocking = {
      "Invoke", "Move",       "Await",        "Pump",   "PumpUntil",
      "RunUntil", "RunUntilOr", "RunUntilIdle", "RunFor", "RunOne"};
  return kBlocking;
}

struct Span {
  std::size_t begin = 0, end = 0;
  bool Contains(std::size_t i) const { return i > begin && i < end; }
};

/// Argument spans of every call to a scheduler/future sink.
std::vector<Span> SinkArgSpans(const std::vector<Token>& t) {
  std::vector<Span> spans;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || SinkNames().count(t[i].text) == 0) continue;
    if (!IsPunct(t[i + 1], "(")) continue;
    spans.push_back({i + 1, MatchingClose(t, i + 1)});
  }
  return spans;
}

void CheckBlockingCallsIn(const FileCtx& f, std::size_t begin, std::size_t end,
                          const char* where, std::vector<Finding>& out) {
  const std::vector<Token>& t = f.lx.toks;
  for (std::size_t i = begin; i < end && i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || BlockingNames().count(t[i].text) == 0)
      continue;
    if (!IsPunct(t[i + 1], "(")) continue;
    out.push_back({"no-pump", f.src->path, t[i].line,
                   "blocking call '" + t[i].text + "' " + where +
                       "; use the *Async form or restructure as a "
                       "continuation (DESIGN.md §5)",
                   ExcerptAt(f.lx, t[i].line)});
  }
}

void CheckContinuations(const FileCtx& f, std::vector<Finding>& out) {
  const std::vector<Token>& t = f.lx.toks;
  const std::vector<Span> sinks = SinkArgSpans(t);
  auto in_sink = [&](std::size_t i) {
    for (const Span& s : sinks)
      if (s.Contains(i)) return true;
    return false;
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!IsPunct(t[i], "[") || !IsLambdaIntro(t, i) || !in_sink(i)) continue;
    Lambda lam = ParseLambda(t, i);
    if (lam.body_open == 0) continue;  // not actually a lambda

    // -- capture list inspection ------------------------------------------
    bool has_keepalive = false;
    for (std::size_t j = i + 1; j < lam.capture_end; ++j) {
      if (t[j].kind != Tok::kIdent) continue;
      const std::string& s = t[j].text;
      if (s == "shared_from_this") has_keepalive = true;
      // An init-capture whose name says "I am the lifetime guard":
      // `alive = alive_`, `keepalive = anchor`, `self = shared_from_this()`.
      if (j + 1 < t.size() && IsPunct(t[j + 1], "=") &&
          (s == "self" || s.find("alive") != std::string::npos ||
           s.find("keep") != std::string::npos || s.find("guard") != std::string::npos))
        has_keepalive = true;
    }
    for (std::size_t j = i + 1; j < lam.capture_end; ++j) {
      if (IsPunct(t[j], "&") &&
          (IsPunct(t[j + 1], "]") || IsPunct(t[j + 1], ","))) {
        out.push_back(
            {"capture-ref", f.src->path, t[j].line,
             "[&] default reference capture in a scheduled continuation: "
             "everything captured must outlive the event queue. Capture "
             "explicitly by value (move handles/ids in) instead",
             ExcerptAt(f.lx, t[j].line)});
      }
      if (t[j].kind == Tok::kIdent && t[j].text == "this" &&
          !(j > 0 && IsPunct(t[j - 1], "*")) && !has_keepalive) {
        out.push_back(
            {"capture-this", f.src->path, t[j].line,
             "bare `this` captured into a scheduled continuation without an "
             "owner-keepalive: pair it with `self = shared_from_this()`, an "
             "`alive`-flag capture, or annotate allow(capture-this) with the "
             "lifetime argument",
             ExcerptAt(f.lx, t[j].line)});
      }
    }

    // -- body: no blocking calls inside a continuation ---------------------
    CheckBlockingCallsIn(f, lam.body_open, lam.body_close,
                         "inside a scheduled continuation", out);
  }

  // -- declared no-pump region -------------------------------------------
  if (f.ann.no_pump_region_start != 0) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].line > f.ann.no_pump_region_start) {
        CheckBlockingCallsIn(f, i, t.size(), "inside a no-pump region", out);
        break;
      }
    }
  }
}

// ==== wire symmetry ==========================================================

struct CodecFn {
  std::string verb;    // Encode / Decode / Write / Read
  std::string suffix;  // message name
  int line = 0;
  std::set<std::string> fields;
};

/// Member accesses `x.y` where y is not immediately called — i.e. the data
/// fields a codec touches, as opposed to writer/reader method calls.
std::set<std::string> FieldAccesses(const std::vector<Token>& t,
                                    std::size_t begin, std::size_t end) {
  std::set<std::string> fields;
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (!IsPunct(t[i], ".")) continue;
    if (t[i + 1].kind != Tok::kIdent) continue;
    if (i + 2 < t.size() && IsPunct(t[i + 2], "(")) continue;  // method call
    fields.insert(t[i + 1].text);
  }
  return fields;
}

void CheckWireSymmetry(const FileCtx& f, std::vector<Finding>& out) {
  const std::vector<Token>& t = f.lx.toks;
  std::vector<CodecFn> fns;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || !IsPunct(t[i + 1], "(")) continue;
    // A call site, not a definition: `wire::WriteHandle(w, h)` — only match
    // names at definition position (next non-qualifier tokens reach a `{`).
    const std::string& name = t[i].text;
    std::string verb;
    for (const char* v : {"Encode", "Decode", "Write", "Read"})
      if (name.rfind(v, 0) == 0 && name.size() > std::strlen(v)) verb = v;
    if (verb.empty()) continue;
    if (i > 0 && (IsPunct(t[i - 1], ".") || IsPunct(t[i - 1], "&"))) continue;
    std::size_t close = MatchingClose(t, i + 1);
    // Definition: `{` within the next few tokens (allowing const/noexcept),
    // before any `;` or `)`.
    std::size_t body_open = 0;
    for (std::size_t j = close + 1; j < std::min(close + 5, t.size()); ++j) {
      if (IsPunct(t[j], "{")) {
        body_open = j;
        break;
      }
      if (t[j].kind == Tok::kPunct && t[j].text != "{") break;
    }
    if (body_open == 0) continue;
    CodecFn fn;
    fn.verb = verb;
    fn.suffix = name.substr(verb.size());
    fn.line = t[i].line;
    fn.fields = FieldAccesses(t, body_open, MatchingClose(t, body_open));
    fns.push_back(std::move(fn));
    }
  auto pair_of = [](const std::string& verb) -> std::string {
    if (verb == "Encode") return "Decode";
    if (verb == "Decode") return "Encode";
    if (verb == "Write") return "Read";
    return "Write";
  };
  for (const CodecFn& a : fns) {
    if (a.verb != "Encode" && a.verb != "Write") continue;
    for (const CodecFn& b : fns) {
      if (b.verb != pair_of(a.verb) || b.suffix != a.suffix) continue;
      // Only verifiable when both sides visibly touch fields.
      if (a.fields.empty() || b.fields.empty()) continue;
      for (const std::string& fld : a.fields) {
        if (b.fields.count(fld)) continue;
        out.push_back({"wire-asymmetry", f.src->path, a.line,
                       "field '" + fld + "' is written by " + a.verb +
                           a.suffix + " but never read by " + b.verb +
                           b.suffix + " — the formats have drifted",
                       ExcerptAt(f.lx, a.line)});
      }
      for (const std::string& fld : b.fields) {
        if (a.fields.count(fld)) continue;
        out.push_back({"wire-asymmetry", f.src->path, b.line,
                       "field '" + fld + "' is read by " + b.verb + b.suffix +
                           " but never written by " + a.verb + a.suffix +
                           " — the formats have drifted",
                       ExcerptAt(f.lx, b.line)});
      }
    }
  }
}

// ==== wire marker constants ==================================================

struct MarkerConst {
  std::string name;
  std::uint64_t value = 0;
  std::string file;
  int line = 0;
};

/// `constexpr std::uint8_t kName = <literal>;` — the one-byte discriminators
/// protocols branch on. Wider constants (magics, masks) are out of scope.
std::vector<MarkerConst> CollectMarkers(const FileCtx& f) {
  std::vector<MarkerConst> out;
  const std::vector<Token>& t = f.lx.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || t[i].text != "constexpr") continue;
    bool u8 = false;
    MarkerConst mc;
    for (std::size_t j = i + 1; j < t.size() && !IsPunct(t[j], ";"); ++j) {
      if (t[j].kind == Tok::kIdent && t[j].text == "uint8_t") u8 = true;
      if (t[j].kind == Tok::kIdent && t[j].text.size() > 1 &&
          t[j].text[0] == 'k' &&
          std::isupper(static_cast<unsigned char>(t[j].text[1])) &&
          j + 2 < t.size() && IsPunct(t[j + 1], "=") &&
          t[j + 2].kind == Tok::kNumber) {
        mc.name = t[j].text;
        mc.value = std::strtoull(t[j + 2].text.c_str(), nullptr, 0);
        mc.line = t[j].line;
      }
    }
    if (u8 && !mc.name.empty()) {
      mc.file = f.src->path;
      out.push_back(std::move(mc));
    }
  }
  return out;
}

void CheckMarkers(const std::vector<FileCtx>& files, std::vector<Finding>& out) {
  std::vector<MarkerConst> all;
  std::vector<MarkerConst> reserved;  // declared in a file named wire.h
  std::map<std::string, std::vector<MarkerConst>> per_file;
  for (const FileCtx& f : files) {
    std::vector<MarkerConst> mcs = CollectMarkers(f);
    for (MarkerConst& m : mcs) {
      if (Basename(f.src->path) == "wire.h") reserved.push_back(m);
      per_file[f.src->path].push_back(m);
    }
  }
  // Same-file duplicate values: two branches of one protocol can never share
  // a discriminator.
  for (auto& [path, mcs] : per_file) {
    for (std::size_t i = 0; i < mcs.size(); ++i)
      for (std::size_t j = i + 1; j < mcs.size(); ++j)
        if (mcs[i].value == mcs[j].value) {
          const FileCtx* fc = nullptr;
          for (const FileCtx& f : files)
            if (f.src->path == path) fc = &f;
          out.push_back({"wire-dup-marker", path, mcs[j].line,
                         "marker " + mcs[j].name + " duplicates the value of " +
                             mcs[i].name + " (line " +
                             std::to_string(mcs[i].line) + ") in the same file",
                         fc ? ExcerptAt(fc->lx, mcs[j].line) : ""});
        }
  }
  // Cross-file: wire.h markers (e.g. the 0x54 trace tail) are appended to
  // other payloads, so no other protocol byte may collide with them.
  for (auto& [path, mcs] : per_file) {
    if (Basename(path) == "wire.h") continue;
    for (const MarkerConst& m : mcs)
      for (const MarkerConst& r : reserved)
        if (m.value == r.value) {
          const FileCtx* fc = nullptr;
          for (const FileCtx& f : files)
            if (f.src->path == path) fc = &f;
          out.push_back(
              {"wire-dup-marker", path, m.line,
               "marker " + m.name + " collides with " + r.name +
                   " reserved in wire.h (value " + std::to_string(r.value) +
                   "): trace tails share the payload space of every message",
               fc ? ExcerptAt(fc->lx, m.line) : ""});
        }
  }
}

// ==== WAL record coverage ====================================================

/// Every `constexpr std::uint8_t kWalXxx = N;` discriminator must have a
/// `WriteXxxRecord` and a `ReadXxxRecord` function somewhere in the batch
/// (an identifier followed by `(` — declaration, definition or call all
/// count). The WAL's replay switch can only dispatch kinds that have a
/// decoder; a marker with a writer but no reader appends records recovery
/// cannot apply.
void CheckWalRecordCoverage(const std::vector<FileCtx>& files,
                            std::vector<Finding>& out) {
  std::set<std::string> called;
  for (const FileCtx& f : files) {
    const std::vector<Token>& t = f.lx.toks;
    for (std::size_t i = 0; i + 1 < t.size(); ++i)
      if (t[i].kind == Tok::kIdent && IsPunct(t[i + 1], "("))
        called.insert(t[i].text);
  }
  for (const FileCtx& f : files) {
    for (const MarkerConst& m : CollectMarkers(f)) {
      // `kWal` + an uppercase kind name; `kWalrusByte` is not a WAL marker.
      if (m.name.rfind("kWal", 0) != 0 || m.name.size() <= 4 ||
          !std::isupper(static_cast<unsigned char>(m.name[4])))
        continue;
      const std::string kind = m.name.substr(4);
      for (const char* verb : {"Write", "Read"}) {
        const std::string codec = verb + kind + "Record";
        if (called.count(codec)) continue;
        out.push_back(
            {"wal-record-coverage", f.src->path, m.line,
             "WAL record kind " + m.name + " has no " + codec +
                 " in this batch: every kind needs a Write/Read codec pair "
                 "or recovery cannot replay (or ever produce) it",
             ExcerptAt(f.lx, m.line)});
      }
    }
  }
}

}  // namespace

// ==== public API =============================================================

std::vector<RuleInfo> AllRules() {
  return std::vector<RuleInfo>(std::begin(kRules), std::end(kRules));
}

std::vector<Finding> Lint(const std::vector<SourceFile>& files) {
  std::vector<FileCtx> ctxs;
  ctxs.reserve(files.size());
  for (const SourceFile& f : files) {
    FileCtx c;
    c.src = &f;
    c.lx = Tokenize(f.content);
    c.ann = ParseAnnotations(f.path, c.lx);
    ctxs.push_back(std::move(c));
  }

  // Header/impl pairing: tracker.cpp iterating `entries_` must know the
  // member was declared unordered in tracker.h.
  std::map<std::string, std::set<std::string>> by_stem;
  for (FileCtx& c : ctxs) CollectUnorderedDecls(c.lx, by_stem[Stem(c.src->path)]);
  for (FileCtx& c : ctxs) c.unordered_ids = by_stem[Stem(c.src->path)];

  std::vector<Finding> findings;
  for (const FileCtx& c : ctxs) {
    CheckBannedIdents(c, findings);
    CheckUnorderedIteration(c, findings);
    CheckContinuations(c, findings);
    CheckWireSymmetry(c, findings);
  }
  CheckMarkers(ctxs, findings);
  CheckWalRecordCoverage(ctxs, findings);

  // Apply suppressions: an allow(rule) annotation covers findings on its own
  // line and the line directly below it.
  std::vector<Finding> kept;
  for (Finding& fd : findings) {
    const Annotations* ann = nullptr;
    for (const FileCtx& c : ctxs)
      if (c.src->path == fd.file) ann = &c.ann;
    bool suppressed = false;
    if (ann != nullptr) {
      for (int l : {fd.line, fd.line - 1}) {
        auto it = ann->allow.find(l);
        if (it != ann->allow.end() && it->second.count(fd.rule)) suppressed = true;
      }
    }
    if (!suppressed) kept.push_back(std::move(fd));
  }
  // Annotation hygiene findings are never suppressible.
  for (const FileCtx& c : ctxs)
    for (const Finding& fd : c.ann.bad) kept.push_back(fd);

  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return kept;
}

}  // namespace fargolint
