// fargolint orchestration: builds the phase-1 index, runs every registered
// rule family over it, applies suppression annotations, and merges in the
// annotation-hygiene findings produced during indexing. Rule families live
// in rules/<family>.cpp and register here; adding a family is one table row.
#include <algorithm>

#include "tools/fargolint/lint.h"
#include "tools/fargolint/rules.h"

namespace fargolint {
namespace {

/// The annotation family has no phase-2 check: its findings (unknown
/// directives, allow() without a reason, unattached domain()) are produced
/// while parsing comments during indexing and merged unconditionally —
/// a malformed annotation can never suppress itself.
std::vector<RuleInfo> AnnotationRules() {
  return {
      {"annotation",
       "malformed fargolint annotation — unknown directive or rule id, an "
       "allow(...) without a written reason, or a domain(...) that attaches "
       "to no class or field"},
  };
}

}  // namespace

const std::vector<RuleFamily>& Families() {
  static const std::vector<RuleFamily> kFamilies = {
      {"determinism", &DeterminismRules, &CheckDeterminism},
      {"async", &AsyncRules, &CheckAsync},
      {"wire", &WireRules, &CheckWire},
      {"domains", &DomainRules, &CheckDomains},
      {"barrier", &BarrierRules, &CheckBarrier},
      {"switches", &SwitchRules, &CheckSwitches},
      {"annotation", &AnnotationRules, nullptr},
  };
  return kFamilies;
}

std::vector<RuleInfo> AllRules() {
  std::vector<RuleInfo> rules;
  for (const RuleFamily& fam : Families())
    for (RuleInfo& r : fam.rules()) rules.push_back(std::move(r));
  std::sort(rules.begin(), rules.end(),
            [](const RuleInfo& a, const RuleInfo& b) { return a.id < b.id; });
  return rules;
}

bool KnownRule(std::string_view id) {
  for (const RuleInfo& r : AllRules())
    if (r.id == id) return true;
  return false;
}

std::vector<Finding> Lint(const std::vector<SourceFile>& files) {
  const Index idx = BuildIndex(files);

  std::vector<Finding> raw;
  for (const RuleFamily& fam : Families())
    if (fam.check != nullptr) fam.check(idx, raw);

  // Suppression: an allow(<rule>) annotation covers findings on its own line
  // and the line directly below it, in the file it appears in.
  std::map<std::string, const Annotations*> ann_by_path;
  for (const FileCtx& f : idx.files) ann_by_path[f.src->path] = &f.ann;
  auto suppressed = [&](const Finding& fd) {
    auto it = ann_by_path.find(fd.file);
    if (it == ann_by_path.end()) return false;
    const auto& allow = it->second->allow;
    for (int line : {fd.line, fd.line - 1}) {
      auto al = allow.find(line);
      if (al != allow.end() && al->second.count(fd.rule)) return true;
    }
    return false;
  };

  std::vector<Finding> out;
  for (Finding& fd : raw)
    if (!suppressed(fd)) out.push_back(std::move(fd));
  // Annotation-hygiene findings bypass suppression entirely.
  for (const FileCtx& f : idx.files)
    for (const Finding& fd : f.ann.bad) out.push_back(fd);

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    if (a.rule != b.rule) return a.rule < b.rule;
    return a.message < b.message;
  });
  return out;
}

}  // namespace fargolint
