// Switch-exhaustiveness family: switches over indexed enums (wire kinds,
// unit states) and over WAL record discriminators (kWal* constants) must
// name every member, and a `default:` may only throw — a silent default
// swallows the next kind someone adds, which for wire and WAL dispatch means
// a message or record silently dropped instead of loudly rejected.
//
// Lexical contract: a switch is checked when every one of its case labels
// resolves to an enumerator of a single indexed enum, or when at least one
// label is a kWal* marker (then all kWal* markers in the batch are the
// family). Switches with numeric or unresolvable labels — e.g. raw protocol
// bytes like the kCtrl* subkinds, where a corrupt byte legitimately falls
// through — are not checked. A default whose statements contain
// throw/abort/unreachable counts as rejecting, not swallowing.
#include <algorithm>
#include <cctype>

#include "tools/fargolint/rules.h"

namespace fargolint {
namespace {

struct CaseLabel {
  std::string name;  // last identifier of the label ("" for numeric labels)
  bool numeric = false;
};

struct SwitchInfo {
  std::size_t kw = 0;  // 'switch' token
  std::vector<CaseLabel> labels;
  bool has_default = false;
  bool default_throws = false;
  bool parsed = true;
};

SwitchInfo ParseSwitch(const std::vector<Token>& t, std::size_t kw) {
  SwitchInfo sw;
  sw.kw = kw;
  std::size_t open = kw + 1;
  if (open >= t.size() || !IsPunct(t[open], "(")) {
    sw.parsed = false;
    return sw;
  }
  std::size_t close = MatchingClose(t, open);
  std::size_t body = close + 1;
  if (body >= t.size() || !IsPunct(t[body], "{")) {
    sw.parsed = false;
    return sw;
  }
  std::size_t body_close = MatchingClose(t, body);
  int depth = 0;
  for (std::size_t j = body; j < body_close; ++j) {
    if (IsPunct(t[j], "{")) {
      ++depth;
      continue;
    }
    if (IsPunct(t[j], "}")) {
      --depth;
      continue;
    }
    if (depth != 1 || t[j].kind != Tok::kIdent) continue;
    if (t[j].text == "case") {
      CaseLabel lbl;
      std::size_t k = j + 1;
      for (; k < body_close && !IsPunct(t[k], ":"); ++k) {
        if (t[k].kind == Tok::kIdent) lbl.name = t[k].text;
        if (t[k].kind == Tok::kNumber) lbl.numeric = true;
      }
      sw.labels.push_back(std::move(lbl));
      j = k;
    } else if (t[j].text == "default") {
      sw.has_default = true;
      // Scan the default's statements up to the next case/default at this
      // level or the end of the switch body.
      int d2 = 0;
      for (std::size_t k = j + 1; k < body_close; ++k) {
        if (IsPunct(t[k], "{")) ++d2;
        else if (IsPunct(t[k], "}")) --d2;
        else if (d2 == 0 && t[k].kind == Tok::kIdent &&
                 (t[k].text == "case" || t[k].text == "default"))
          break;
        else if (t[k].kind == Tok::kIdent &&
                 (t[k].text == "throw" || t[k].text == "abort" ||
                  t[k].text == "Unreachable" || t[k].text == "unreachable"))
          sw.default_throws = true;
      }
    }
  }
  return sw;
}

void CheckFile(const Index& idx, const FileCtx& f, std::vector<Finding>& out) {
  const std::vector<Token>& t = f.lx.toks;
  // Enumerator name -> enum indices (for family resolution).
  std::map<std::string, std::vector<std::size_t>> by_enumerator;
  for (std::size_t e = 0; e < idx.enums.size(); ++e)
    for (const Enumerator& en : idx.enums[e].enumerators)
      by_enumerator[en.name].push_back(e);

  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || t[i].text != "switch") continue;
    SwitchInfo sw = ParseSwitch(t, i);
    if (!sw.parsed || sw.labels.empty()) continue;

    // Resolve the family. Every ident label votes for the enums defining it;
    // the family is the enum (or the kWal marker set) covering ALL labels.
    std::map<std::size_t, int> votes;
    bool any_numeric = false, any_wal = false;
    for (const CaseLabel& l : sw.labels) {
      if (l.numeric && l.name.empty()) any_numeric = true;
      if (l.name.rfind("kWal", 0) == 0 && l.name.size() > 4 &&
          std::isupper(static_cast<unsigned char>(l.name[4])))
        any_wal = true;
      auto it = by_enumerator.find(l.name);
      if (it != by_enumerator.end())
        for (std::size_t e : it->second) ++votes[e];
    }
    if (any_numeric) continue;  // raw-byte switch: not a checked family

    std::vector<std::string> family;  // member names
    std::string family_name;
    std::size_t best = idx.enums.size();
    int best_votes = 0;
    for (const auto& [e, v] : votes)
      if (v > best_votes) {
        best = e;
        best_votes = v;
      }
    if (best < idx.enums.size() &&
        best_votes == static_cast<int>(sw.labels.size())) {
      for (const Enumerator& en : idx.enums[best].enumerators)
        family.push_back(en.name);
      family_name = "enum " + idx.enums[best].name;
    } else if (any_wal) {
      bool all_wal = true;
      for (const CaseLabel& l : sw.labels)
        if (l.name.rfind("kWal", 0) != 0) all_wal = false;
      if (!all_wal) continue;
      for (const MarkerConst& m : idx.markers)
        if (m.name.rfind("kWal", 0) == 0 && m.name.size() > 4 &&
            std::isupper(static_cast<unsigned char>(m.name[4])))
          family.push_back(m.name);
      std::sort(family.begin(), family.end());
      family.erase(std::unique(family.begin(), family.end()), family.end());
      family_name = "the kWal* record kinds";
    } else {
      continue;  // labels don't all resolve to one family
    }

    std::set<std::string> covered;
    for (const CaseLabel& l : sw.labels) covered.insert(l.name);
    std::vector<std::string> missing;
    for (const std::string& m : family)
      if (!covered.count(m)) missing.push_back(m);

    // A throwing default is an explicit rejection of future members; a
    // silent default swallows them. No default + full coverage lets
    // -Wswitch (and this rule) flag the next addition.
    if (sw.has_default && !sw.default_throws) {
      out.push_back(
          {"switch-exhaustiveness", f.src->path, t[i].line,
           "switch over " + family_name +
               " has a default: that silently swallows newly added kinds; "
               "enumerate every member and make the default throw (or drop "
               "it)",
           ExcerptAt(f.lx, t[i].line)});
    }
    if (!missing.empty() && !sw.has_default) {
      std::string list;
      for (const std::string& m : missing)
        list += (list.empty() ? "" : ", ") + m;
      out.push_back({"switch-exhaustiveness", f.src->path, t[i].line,
                     "switch over " + family_name + " does not handle: " + list,
                     ExcerptAt(f.lx, t[i].line)});
    }
  }
}

}  // namespace

std::vector<RuleInfo> SwitchRules() {
  return {
      {"switch-exhaustiveness",
       "switch over a wire kind, WAL record kind or state enum that misses "
       "members or swallows unknown ones in a non-throwing default"},
  };
}

void CheckSwitches(const Index& idx, std::vector<Finding>& out) {
  for (const FileCtx& f : idx.files) CheckFile(idx, f, out);
}

}  // namespace fargolint
