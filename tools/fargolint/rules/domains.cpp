// Ownership-domain family: the locality-confinement precondition for the
// planned parallel execution engine (FARGO_PARALLEL). Classes declare an
// ownership domain with a `domain(<name>)` annotation; a scheduled continuation
// inherits the domain of the class whose method handed it to the scheduler
// (the sink API — Then/OnSettle/Schedule*), and may only touch fields whose
// effective domain matches. Today every domain runs on the one simulated
// thread, so violations are latent, not live — which is exactly when they
// are cheap to fix.
//
// Lexical contract:
//   - A continuation is a lambda inside a scheduler-sink argument span; its
//     domain is the domain of the innermost enclosing class (class body for
//     headers, `Cls::Method` definition for .cpp files).
//   - A field access is an unqualified `_`-suffixed identifier in the lambda
//     body (the implicit-this convention); `obj.field_` accesses go through
//     the object and are the object's own domain's business.
//   - The access is flagged when the identifier resolves to exactly one
//     indexed field-owning class and the field's effective domain (its own
//     annotation, else its class's) differs from the continuation's. An
//     identifier owned by several classes is ambiguous and skipped.
//   - domain-missing: a class with `_`-suffixed state under src/core/,
//     src/net/ or src/sim/ must declare a domain (nested classes inherit).
//     `fargolint --fix-annotations` inserts the path-derived default.
#include "tools/fargolint/rules.h"

namespace fargolint {
namespace {

/// The cross-locality handoff wrappers: a closure handed to Post/PostAfter
/// runs on the *destination* locality's worker thread, not the enclosing
/// class's. Inside one, the domain-inheritance premise of the `domain` rule
/// does not hold — instead every implicit-this field access is a live
/// cross-thread access and must sit under a lock (or an allow() with the
/// safety argument).
bool IsHandoffSink(const std::string& name) {
  return name == "Post" || name == "PostAfter";
}

/// True when a lock is taken between the lambda's body-open and the access:
/// the lexical approximation of "this access is guarded". A guard released
/// before the access still matches — fail-open, like the rest of the linter.
bool LockTakenBefore(const std::vector<Token>& t, std::size_t body_open,
                     std::size_t access) {
  static const std::set<std::string> kGuards = {"lock_guard", "scoped_lock",
                                                "unique_lock", "shared_lock"};
  for (std::size_t j = body_open; j < access; ++j)
    if (t[j].kind == Tok::kIdent && kGuards.count(t[j].text)) return true;
  return false;
}

const ClassSym* SoleOwner(const Index& idx, const std::string& name) {
  auto it = idx.field_owners.find(name);
  if (it == idx.field_owners.end() || it->second.size() != 1) return nullptr;
  return &idx.classes[it->second[0]];
}

std::string EffectiveDomain(const ClassSym& cls, const std::string& field) {
  for (const FieldSym& fs : cls.fields)
    if (fs.name == field && !fs.domain.empty()) return fs.domain;
  return cls.domain;
}

void CheckConfinement(const Index& idx, std::size_t fi,
                      std::vector<Finding>& out) {
  const FileCtx& f = idx.files[fi];
  const std::vector<Token>& t = f.lx.toks;
  // Innermost sink span containing token i, or nullptr. The token just
  // before the span's opening paren is the sink's name.
  auto innermost_sink = [&](std::size_t i) -> const Span* {
    const Span* best = nullptr;
    for (const Span& s : f.sink_spans)
      if (s.Contains(i) && (best == nullptr || s.begin > best->begin))
        best = &s;
    return best;
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!IsPunct(t[i], "[") || !IsLambdaIntro(t, i)) continue;
    const Span* sink = innermost_sink(i);
    if (sink == nullptr) continue;
    const bool handoff =
        sink->begin > 0 && IsHandoffSink(t[sink->begin - 1].text);
    Lambda lam = ParseLambda(t, i);
    if (lam.body_open == 0) continue;
    const ClassSym* encl = idx.EnclosingClass(fi, i);
    if (encl == nullptr || encl->domain.empty()) continue;

    std::set<int> reported_lines;
    for (std::size_t j = lam.body_open + 1; j < lam.body_close; ++j) {
      if (t[j].kind != Tok::kIdent) continue;
      const std::string& name = t[j].text;
      if (name.size() < 2 || name.back() != '_') continue;
      // Qualified accesses (`obj.field_`, `p->field_`) go through the
      // object; only implicit-this accesses bind to a domain here.
      if (j > 0 && (IsPunct(t[j - 1], ".") || IsPunct(t[j - 1], "::") ||
                    (j >= 2 && IsPunct(t[j - 1], ">") && IsPunct(t[j - 2], "-"))))
        continue;
      if (handoff) {
        // Handoff closures run wherever the affinity key routes them, so
        // even the enclosing class's own fields are cross-thread state
        // there: require a lock in scope.
        bool is_field = false;
        for (const FieldSym& fs : encl->fields)
          if (fs.name == name) is_field = true;
        if (!is_field && SoleOwner(idx, name) == nullptr) continue;
        if (LockTakenBefore(t, lam.body_open, j)) continue;
        if (!reported_lines.insert(t[j].line).second) continue;
        out.push_back(
            {"domain-handoff", f.src->path, t[j].line,
             "field '" + name + "' touched inside a cross-locality handoff "
             "closure (" + t[sink->begin - 1].text + ") without a lock: the "
             "closure runs on the destination locality's worker thread, so "
             "guard the access or move the data in by value-capture",
             ExcerptAt(f.lx, t[j].line)});
        continue;
      }
      std::string field_domain;
      std::string owner_name;
      bool own_field = false;
      for (const FieldSym& fs : encl->fields)
        if (fs.name == name) own_field = true;
      if (own_field) {
        field_domain = EffectiveDomain(*encl, name);
        owner_name = encl->name;
      } else {
        const ClassSym* owner = SoleOwner(idx, name);
        if (owner == nullptr) continue;
        field_domain = EffectiveDomain(*owner, name);
        owner_name = owner->name;
      }
      if (field_domain.empty() || field_domain == encl->domain) continue;
      if (!reported_lines.insert(t[j].line).second) continue;
      out.push_back(
          {"domain", f.src->path, t[j].line,
           "field '" + name + "' belongs to domain '" + field_domain +
               "' (class " + owner_name +
               ") but this continuation runs in domain '" + encl->domain +
               "' (class " + encl->name +
               "): cross-domain state must move via messages, not shared "
               "fields (locality confinement for FARGO_PARALLEL)",
           ExcerptAt(f.lx, t[j].line)});
    }
  }
}

void CheckMissing(const Index& idx, std::vector<Finding>& out) {
  for (const ClassSym& cs : idx.classes) {
    if (!cs.domain.empty() || cs.fields.empty()) continue;
    const std::string& path = idx.files[cs.file].src->path;
    if (!PathContains(path, "src/core/") && !PathContains(path, "src/net/") &&
        !PathContains(path, "src/sim/"))
      continue;
    out.push_back(
        {"domain-missing", path, cs.line,
         "class " + cs.name + " holds mutable state (" +
             std::to_string(cs.fields.size()) +
             " '_'-suffixed fields) but declares no ownership domain; add "
             "a domain annotation (see docs/INVARIANTS.md) or run fargolint "
             "--fix-annotations",
         ExcerptAt(idx.files[cs.file].lx, cs.line)});
  }
}

}  // namespace

std::vector<RuleInfo> DomainRules() {
  return {
      {"domain",
       "field access from a scheduled continuation whose ownership domain "
       "differs from the field's owner (locality-confinement precondition "
       "for FARGO_PARALLEL)"},
      {"domain-handoff",
       "unlocked field access inside a cross-locality handoff closure "
       "(Post/PostAfter): the closure runs on the destination locality's "
       "worker thread, so even same-domain fields are cross-thread there"},
      {"domain-missing",
       "stateful class under src/core/, src/net/ or src/sim/ without a "
       "declared ownership domain annotation"},
  };
}

void CheckDomains(const Index& idx, std::vector<Finding>& out) {
  for (std::size_t fi = 0; fi < idx.files.size(); ++fi)
    CheckConfinement(idx, fi, out);
  CheckMissing(idx, out);
}

}  // namespace fargolint
