// Async family: scheduled-continuation hygiene. Continuations outlive the
// stack that created them, so default reference captures and bare `this`
// are lifetime bugs in waiting, and pumping the event loop from inside a
// continuation deadlocks the single-threaded scheduler.
#include "tools/fargolint/rules.h"

namespace fargolint {
namespace {

void CheckBlockingCallsIn(const FileCtx& f, std::size_t begin, std::size_t end,
                          const char* where, std::vector<Finding>& out) {
  const std::vector<Token>& t = f.lx.toks;
  for (std::size_t i = begin; i < end && i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || BlockingNames().count(t[i].text) == 0)
      continue;
    if (!IsPunct(t[i + 1], "(")) continue;
    out.push_back({"no-pump", f.src->path, t[i].line,
                   "blocking call '" + t[i].text + "' " + where +
                       "; use the *Async form or restructure as a "
                       "continuation (DESIGN.md §5)",
                   ExcerptAt(f.lx, t[i].line)});
  }
}

void CheckContinuations(const FileCtx& f, std::vector<Finding>& out) {
  const std::vector<Token>& t = f.lx.toks;
  auto in_sink = [&](std::size_t i) {
    for (const Span& s : f.sink_spans)
      if (s.Contains(i)) return true;
    return false;
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!IsPunct(t[i], "[") || !IsLambdaIntro(t, i) || !in_sink(i)) continue;
    Lambda lam = ParseLambda(t, i);
    if (lam.body_open == 0) continue;  // not actually a lambda

    // -- capture list inspection ------------------------------------------
    bool has_keepalive = false;
    for (std::size_t j = i + 1; j < lam.capture_end; ++j) {
      if (t[j].kind != Tok::kIdent) continue;
      const std::string& s = t[j].text;
      if (s == "shared_from_this") has_keepalive = true;
      // An init-capture whose name says "I am the lifetime guard":
      // `alive = alive_`, `keepalive = anchor`, `self = shared_from_this()`.
      if (j + 1 < t.size() && IsPunct(t[j + 1], "=") &&
          (s == "self" || s.find("alive") != std::string::npos ||
           s.find("keep") != std::string::npos || s.find("guard") != std::string::npos))
        has_keepalive = true;
    }
    for (std::size_t j = i + 1; j < lam.capture_end; ++j) {
      if (IsPunct(t[j], "&") &&
          (IsPunct(t[j + 1], "]") || IsPunct(t[j + 1], ","))) {
        out.push_back(
            {"capture-ref", f.src->path, t[j].line,
             "[&] default reference capture in a scheduled continuation: "
             "everything captured must outlive the event queue. Capture "
             "explicitly by value (move handles/ids in) instead",
             ExcerptAt(f.lx, t[j].line)});
      }
      if (t[j].kind == Tok::kIdent && t[j].text == "this" &&
          !(j > 0 && IsPunct(t[j - 1], "*")) && !has_keepalive) {
        out.push_back(
            {"capture-this", f.src->path, t[j].line,
             "bare `this` captured into a scheduled continuation without an "
             "owner-keepalive: pair it with `self = shared_from_this()`, an "
             "`alive`-flag capture, or annotate allow(capture-this) with the "
             "lifetime argument",
             ExcerptAt(f.lx, t[j].line)});
      }
    }

    // -- body: no blocking calls inside a continuation ---------------------
    CheckBlockingCallsIn(f, lam.body_open, lam.body_close,
                         "inside a scheduled continuation", out);
  }

  // -- declared no-pump region -------------------------------------------
  if (f.ann.no_pump_region_start != 0) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].line > f.ann.no_pump_region_start) {
        CheckBlockingCallsIn(f, i, t.size(), "inside a no-pump region", out);
        break;
      }
    }
  }
}

}  // namespace

const std::set<std::string>& SinkNames() {
  static const std::set<std::string> kSinks = {
      "Then",       "OrElse",    "OnSettle", "ScheduleAt",
      "ScheduleAfter", "ExpireAfter",
      // The affinity-routed cross-locality handoffs (FARGO_PARALLEL): a
      // closure handed to Post runs on another locality's worker thread,
      // so every continuation rule applies with extra force.
      "Post", "PostAfter"};
  return kSinks;
}

const std::set<std::string>& BlockingNames() {
  static const std::set<std::string> kBlocking = {
      "Invoke", "Move",       "Await",        "Pump",   "PumpUntil",
      "RunUntil", "RunUntilOr", "RunUntilIdle", "RunFor", "RunOne"};
  return kBlocking;
}

std::vector<RuleInfo> AsyncRules() {
  return {
      {"no-pump",
       "blocking call (Invoke/Move/Await/Pump/RunUntil/...) inside a scheduled "
       "continuation or a declared no-pump region"},
      {"capture-ref",
       "default reference capture [&] in a lambda handed to the scheduler or "
       "future layer"},
      {"capture-this",
       "bare `this` captured into a scheduled continuation without an "
       "owner-keepalive (shared_from_this / alive-flag / keepalive capture)"},
  };
}

void CheckAsync(const Index& idx, std::vector<Finding>& out) {
  for (const FileCtx& f : idx.files) CheckContinuations(f, out);
}

}  // namespace fargolint
