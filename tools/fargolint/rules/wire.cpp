// Wire family: codec symmetry, marker uniqueness, WAL record coverage, and
// the op-sequence schema check. The first three are the original token-level
// rules; wire-schema is the v2 superseding check — it compares the ordered
// primitive operations (varint vs u8 vs string...) of each Encode/Decode and
// Write/Read pair batch-wide, so a width or field-order drift that keeps the
// field *names* symmetric still fails. The same op extraction feeds the
// machine-readable schema (`fargolint --emit-schema`, docs/wire_schema.json).
#include <algorithm>
#include <cctype>
#include <map>
#include <string>

#include "tools/fargolint/rules.h"

namespace fargolint {
namespace {

std::string PairVerb(const std::string& verb) {
  if (verb == "Encode") return "Decode";
  if (verb == "Decode") return "Encode";
  if (verb == "Write") return "Read";
  return "Write";
}

/// Field-set symmetry within one file (the original rule): every field
/// written must be read and vice versa. Only verifiable when both sides
/// visibly touch fields.
void CheckWireSymmetry(const Index& idx, std::vector<Finding>& out) {
  for (const CodecDef& a : idx.codecs) {
    if (a.verb != "Encode" && a.verb != "Write") continue;
    const FileCtx& fa = idx.files[a.file];
    for (const CodecDef& b : idx.codecs) {
      if (b.file != a.file) continue;  // pairing is per-file, as before
      if (b.verb != PairVerb(a.verb) || b.suffix != a.suffix) continue;
      if (a.fields.empty() || b.fields.empty()) continue;
      for (const std::string& fld : a.fields) {
        if (b.fields.count(fld)) continue;
        out.push_back({"wire-asymmetry", fa.src->path, a.line,
                       "field '" + fld + "' is written by " + a.verb +
                           a.suffix + " but never read by " + b.verb +
                           b.suffix + " — the formats have drifted",
                       ExcerptAt(fa.lx, a.line)});
      }
      for (const std::string& fld : b.fields) {
        if (a.fields.count(fld)) continue;
        out.push_back({"wire-asymmetry", fa.src->path, b.line,
                       "field '" + fld + "' is read by " + b.verb + b.suffix +
                           " but never written by " + a.verb + a.suffix +
                           " — the formats have drifted",
                       ExcerptAt(fa.lx, b.line)});
      }
    }
  }
}

/// Op-sequence symmetry batch-wide: the encode side's ordered primitive
/// operations must equal the decode side's. Catches varint<->fixed width
/// changes and reordering that the field-set check cannot see.
void CheckWireSchema(const Index& idx, std::vector<Finding>& out) {
  for (const CodecDef& a : idx.codecs) {
    if (a.verb != "Encode" && a.verb != "Write") continue;
    if (a.ops.empty()) continue;
    for (const CodecDef& b : idx.codecs) {
      if (b.verb != PairVerb(a.verb) || b.suffix != a.suffix) continue;
      if (b.ops.empty()) continue;
      const FileCtx& fa = idx.files[a.file];
      const std::size_t n = std::min(a.ops.size(), b.ops.size());
      for (std::size_t i = 0; i < n; ++i) {
        if (a.ops[i] == b.ops[i]) continue;
        out.push_back(
            {"wire-schema", fa.src->path, a.line,
             "codec pair " + a.suffix + ": operation #" + std::to_string(i + 1) +
                 " is '" + a.ops[i] + "' on the " + a.verb + " side but '" +
                 b.ops[i] + "' on the " + b.verb +
                 " side — wire widths or field order have drifted",
             ExcerptAt(fa.lx, a.line)});
        break;  // one finding per pair; later ops are offset anyway
      }
      if (a.ops.size() != b.ops.size() &&
          std::equal(a.ops.begin(), a.ops.begin() + n, b.ops.begin())) {
        const CodecDef& longer = a.ops.size() > b.ops.size() ? a : b;
        out.push_back(
            {"wire-schema", fa.src->path, a.line,
             "codec pair " + a.suffix + ": " + longer.verb + longer.suffix +
                 " performs " + std::to_string(longer.ops.size()) +
                 " wire operations but its counterpart performs " +
                 std::to_string(std::min(a.ops.size(), b.ops.size())) +
                 " — a field exists on only one side",
             ExcerptAt(fa.lx, a.line)});
      }
    }
  }
}

void CheckMarkers(const Index& idx, std::vector<Finding>& out) {
  std::vector<MarkerConst> reserved;  // declared in a file named wire.h
  std::map<std::string, std::vector<MarkerConst>> per_file;
  for (const MarkerConst& m : idx.markers) {
    if (Basename(m.file) == "wire.h") reserved.push_back(m);
    per_file[m.file].push_back(m);
  }
  auto excerpt = [&](const std::string& path, int line) -> std::string {
    for (const FileCtx& f : idx.files)
      if (f.src->path == path) return ExcerptAt(f.lx, line);
    return "";
  };
  // Same-file duplicate values: two branches of one protocol can never share
  // a discriminator.
  for (auto& [path, mcs] : per_file) {
    for (std::size_t i = 0; i < mcs.size(); ++i)
      for (std::size_t j = i + 1; j < mcs.size(); ++j)
        if (mcs[i].value == mcs[j].value) {
          out.push_back({"wire-dup-marker", path, mcs[j].line,
                         "marker " + mcs[j].name + " duplicates the value of " +
                             mcs[i].name + " (line " +
                             std::to_string(mcs[i].line) + ") in the same file",
                         excerpt(path, mcs[j].line)});
        }
  }
  // Cross-file: wire.h markers (e.g. the 0x54 trace tail) are appended to
  // other payloads, so no other protocol byte may collide with them.
  for (auto& [path, mcs] : per_file) {
    if (Basename(path) == "wire.h") continue;
    for (const MarkerConst& m : mcs)
      for (const MarkerConst& r : reserved)
        if (m.value == r.value) {
          out.push_back(
              {"wire-dup-marker", path, m.line,
               "marker " + m.name + " collides with " + r.name +
                   " reserved in wire.h (value " + std::to_string(r.value) +
                   "): trace tails share the payload space of every message",
               excerpt(path, m.line)});
        }
  }
}

/// Every `constexpr std::uint8_t kWalXxx = N;` discriminator must have a
/// `WriteXxxRecord` and a `ReadXxxRecord` function somewhere in the batch
/// (an identifier followed by `(` — declaration, definition or call all
/// count). The WAL's replay switch can only dispatch kinds that have a
/// decoder; a marker with a writer but no reader appends records recovery
/// cannot apply.
void CheckWalRecordCoverage(const Index& idx, std::vector<Finding>& out) {
  for (const MarkerConst& m : idx.markers) {
    // `kWal` + an uppercase kind name; `kWalrusByte` is not a WAL marker.
    if (m.name.rfind("kWal", 0) != 0 || m.name.size() <= 4 ||
        !std::isupper(static_cast<unsigned char>(m.name[4])))
      continue;
    const std::string kind = m.name.substr(4);
    for (const char* verb : {"Write", "Read"}) {
      const std::string codec = verb + kind + "Record";
      if (idx.called.count(codec)) continue;
      std::string excerpt;
      for (const FileCtx& f : idx.files)
        if (f.src->path == m.file) excerpt = ExcerptAt(f.lx, m.line);
      out.push_back(
          {"wal-record-coverage", m.file, m.line,
           "WAL record kind " + m.name + " has no " + codec +
               " in this batch: every kind needs a Write/Read codec pair "
               "or recovery cannot replay (or ever produce) it",
           excerpt});
    }
  }
}

}  // namespace

std::vector<RuleInfo> WireRules() {
  return {
      {"wire-asymmetry",
       "message field encoded but never decoded (or vice versa) in an "
       "Encode*/Decode* or Write*/Read* pair"},
      {"wire-dup-marker",
       "duplicate wire marker byte: two k-constants share a value, or a "
       "constant collides with a marker reserved in wire.h"},
      {"wal-record-coverage",
       "WAL record discriminator (kWal* constant) without a matching "
       "Write<Kind>Record / Read<Kind>Record codec pair in the batch: a record "
       "that can be logged but not replayed is silent data loss on recovery"},
      {"wire-schema",
       "encode/decode op-sequence drift: the ordered primitive operations "
       "(varint/u8/string/nested codec) of a codec pair disagree, so the two "
       "sides parse different byte layouts"},
  };
}

void CheckWire(const Index& idx, std::vector<Finding>& out) {
  CheckWireSymmetry(idx, out);
  CheckWireSchema(idx, out);
  CheckMarkers(idx, out);
  CheckWalRecordCoverage(idx, out);
}

}  // namespace fargolint
