// Determinism family: wall-clock sources, nondeterministic randomness, real
// threads, and hash-order-dependent iteration. The simulation's verdicts
// must be a pure function of the seed; these rules ban the library features
// that would smuggle in host entropy.
#include "tools/fargolint/rules.h"

namespace fargolint {
namespace {

void CheckBannedIdents(const FileCtx& f, std::vector<Finding>& out) {
  const std::string& path = f.src->path;
  const bool in_sim = PathContains(path, "src/sim/");
  const bool in_metrics = PathContains(path, "monitor/metrics.");
  const std::vector<Token>& t = f.lx.toks;

  auto next_is_call = [&](std::size_t i) {
    return i + 1 < t.size() && IsPunct(t[i + 1], "(");
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const std::string& s = t[i].text;
    const int line = t[i].line;

    if (!in_sim) {
      if (s == "system_clock" || s == "steady_clock" ||
          s == "high_resolution_clock") {
        out.push_back({"wallclock", path, line,
                       "std::chrono::" + s +
                           " breaks seed-determinism; use the simulated "
                           "clock (Scheduler::Now)",
                       ExcerptAt(f.lx, line)});
      } else if ((s == "time" || s == "clock" || s == "gettimeofday" ||
                  s == "clock_gettime") &&
                 next_is_call(i) &&
                 // `x.time(` / `x->clock(` are member calls on app types;
                 // the C library forms are bare or std::-qualified.
                 (i == 0 || !IsPunct(t[i - 1], ".")) &&
                 !(i >= 2 && IsPunct(t[i - 1], ">") && IsPunct(t[i - 2], "-"))) {
        out.push_back({"wallclock", path, line,
                       s + "() reads the wall clock; use the simulated clock "
                           "(Scheduler::Now)",
                       ExcerptAt(f.lx, line)});
      }

      if (s == "rand" || s == "srand" || s == "random_device") {
        if (s != "random_device" && !next_is_call(i)) continue;
        out.push_back({"unseeded-rng", path, line,
                       "std::" + s +
                           " is not seed-deterministic; derive randomness "
                           "from the run seed (see net::chaos)",
                       ExcerptAt(f.lx, line)});
      } else if (s == "mt19937" || s == "mt19937_64") {
        // Seeded construction `mt19937 rng(seed)` / `mt19937 rng{seed}` is
        // fine; a default-constructed engine always yields the same stream
        // yet reads as random, and `mt19937 rng(random_device{}())` is
        // caught by the random_device ban above.
        std::size_t j = i + 1;
        if (j < t.size() && t[j].kind == Tok::kIdent) ++j;  // variable name
        bool seeded = false;
        if (j < t.size() && (IsPunct(t[j], "(") || IsPunct(t[j], "{")))
          seeded = MatchingClose(t, j) > j + 1;  // non-empty argument list
        if (!seeded)
          out.push_back({"unseeded-rng", path, line,
                         s + " constructed without an explicit seed",
                         ExcerptAt(f.lx, line)});
      }
    }

    if (!in_sim && !in_metrics &&
        (s == "thread" || s == "jthread" || s == "async")) {
      // Only the std:: forms: require a `std ::` qualifier so members like
      // `x.async(...)` or the identifier `thread` in comments/names pass.
      if (i >= 2 && IsPunct(t[i - 1], "::") && t[i - 2].kind == Tok::kIdent &&
          t[i - 2].text == "std") {
        out.push_back({"thread", path, line,
                       "std::" + s +
                           " introduces real concurrency; the simulation is "
                           "single-threaded by contract (only src/sim/ and "
                           "the metrics registry may differ)",
                       ExcerptAt(f.lx, line)});
      }
    }
  }
}

void CheckUnorderedIteration(const FileCtx& f, std::vector<Finding>& out) {
  const std::vector<Token>& t = f.lx.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || t[i].text != "for") continue;
    if (!IsPunct(t[i + 1], "(")) continue;
    std::size_t open = i + 1;
    std::size_t close = MatchingClose(t, open);
    // Find the range-for `:` at depth 1 (`::` is a distinct token).
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = open; j < close; ++j) {
      if (t[j].kind != Tok::kPunct) continue;
      if (t[j].text == "(" || t[j].text == "[" || t[j].text == "{") ++depth;
      else if (t[j].text == ")" || t[j].text == "]" || t[j].text == "}") --depth;
      else if (t[j].text == ":" && depth == 1) {
        colon = j;
        break;
      }
    }
    if (colon == 0) continue;  // classic for loop
    for (std::size_t j = colon + 1; j < close; ++j) {
      if (t[j].kind != Tok::kIdent) continue;
      const bool declared_unordered = f.unordered_ids.count(t[j].text) > 0;
      const bool literally_unordered = t[j].text.rfind("unordered_", 0) == 0;
      if (!declared_unordered && !literally_unordered) continue;
      out.push_back(
          {"unordered-iter", f.src->path, t[i].line,
           "range-for over unordered container '" + t[j].text +
               "': iteration order is hash-seed/pointer dependent. Sort the "
               "elements first, use an ordered container, or annotate "
               "`// fargolint: order-insensitive(<reason>)`",
           ExcerptAt(f.lx, t[i].line)});
      break;  // one finding per loop
    }
  }
}

}  // namespace

std::vector<RuleInfo> DeterminismRules() {
  return {
      {"wallclock",
       "wall-clock time source (system_clock/steady_clock/time()/clock()) in "
       "deterministic code"},
      {"unseeded-rng",
       "nondeterministic randomness: std::rand/srand/random_device, or an "
       "mt19937 engine constructed without an explicit seed"},
      {"thread",
       "real concurrency (std::thread/jthread/async) outside src/sim/ and the "
       "metrics registry"},
      {"unordered-iter",
       "range-for over an unordered_map/unordered_set: iteration order is "
       "hash-seed dependent and must not reach wire, trace or shell output"},
  };
}

void CheckDeterminism(const Index& idx, std::vector<Finding>& out) {
  for (const FileCtx& f : idx.files) {
    CheckBannedIdents(f, out);
    CheckUnorderedIteration(f, out);
  }
}

}  // namespace fargolint
