// Barrier-before-reply family: on any path from a WAL append of an
// exec/commit/abort/move-in/dir-publish record to a raw reply/ack egress,
// the send must be dominated by a durability barrier. This is the rule that
// would have caught the PR 6 review bugs — a peer that observes a reply or
// ack treats the state behind it as settled, so sending before the record
// is durable lets a crash un-happen an acknowledged effect.
//
// Lexical contract (documented in docs/INVARIANTS.md):
//   - Checked appends: AppendExec, AppendCommit, AppendAbort, AppendMoveIn,
//     AppendDirPublish — called, not defined (a `::`-qualified definition
//     does not arm the rule).
//   - Raw sends: SendReply, SendReplyOut, SendSlotAck, SendMoveAck. The
//     sanctioned wrappers (Core::Reply, Core::AckSlotDurable) barrier
//     internally and are not in the send set.
//   - A send is guarded when it sits inside the continuation argument of a
//     durability barrier: Sync() / WhenDurable() / WhenSequencesDurable()
//     followed by .OnSettle(...) or .Then(...).
//   - Path approximation: scan forward from the append to the end of the
//     enclosing function. An unconditional `return`/`throw` at the append's
//     block level ends the path; leaving a block rebases to the enclosing
//     level (fall-through). `if (...) return;` (no braces, recognized by the
//     preceding `)` or `else`) is conditional and does not end the path.
#include "tools/fargolint/rules.h"

namespace fargolint {
namespace {

const std::set<std::string>& CheckedAppends() {
  static const std::set<std::string> kAppends = {
      "AppendExec", "AppendCommit", "AppendAbort", "AppendMoveIn",
      "AppendDirPublish"};
  return kAppends;
}

const std::set<std::string>& RawSends() {
  static const std::set<std::string> kSends = {"SendReply", "SendReplyOut",
                                               "SendSlotAck", "SendMoveAck"};
  return kSends;
}

/// Argument spans of barrier continuations:
/// `Sync().OnSettle(<span>)` / `WhenDurable().Then(<span>)` / ...
std::vector<Span> BarrierRegions(const std::vector<Token>& t) {
  static const std::set<std::string> kBarriers = {"Sync", "WhenDurable",
                                                  "WhenSequencesDurable"};
  static const std::set<std::string> kConts = {"OnSettle", "Then"};
  std::vector<Span> regions;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || kBarriers.count(t[i].text) == 0) continue;
    if (!IsPunct(t[i + 1], "(")) continue;
    std::size_t close = MatchingClose(t, i + 1);
    if (close + 2 >= t.size()) continue;
    if (!IsPunct(t[close + 1], ".")) continue;
    if (t[close + 2].kind != Tok::kIdent || kConts.count(t[close + 2].text) == 0)
      continue;
    if (close + 3 >= t.size() || !IsPunct(t[close + 3], "(")) continue;
    regions.push_back({close + 3, MatchingClose(t, close + 3)});
  }
  return regions;
}

void CheckFile(const FileCtx& f, std::vector<Finding>& out) {
  const std::vector<Token>& t = f.lx.toks;
  const std::vector<Span> regions = BarrierRegions(t);
  auto guarded = [&](std::size_t i) {
    for (const Span& r : regions)
      if (r.Contains(i)) return true;
    return false;
  };
  auto enclosing_fn = [&](std::size_t i) -> const Span* {
    const Span* best = nullptr;
    for (const Span& s : f.fn_bodies)
      if (s.Contains(i) && (best == nullptr || s.begin > best->begin))
        best = &s;
    return best;
  };

  std::set<std::size_t> flagged;  // one finding per send, however many appends
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || CheckedAppends().count(t[i].text) == 0)
      continue;
    if (!IsPunct(t[i + 1], "(")) continue;
    if (i > 0 && IsPunct(t[i - 1], "::")) continue;  // definition, not a call
    const Span* fn = enclosing_fn(i);
    if (fn == nullptr) continue;  // declaration or unattributed position
    // Walk the path from the append to the end of the function.
    int depth = 0;
    for (std::size_t j = MatchingClose(t, i + 1) + 1; j < fn->end; ++j) {
      if (IsPunct(t[j], "{")) {
        ++depth;
        continue;
      }
      if (IsPunct(t[j], "}")) {
        if (--depth < 0) depth = 0;  // left the append's block: fall through
        continue;
      }
      if (t[j].kind != Tok::kIdent) continue;
      if ((t[j].text == "return" || t[j].text == "throw") && depth == 0) {
        const bool conditional =
            j > 0 && (IsPunct(t[j - 1], ")") ||
                      (t[j - 1].kind == Tok::kIdent && t[j - 1].text == "else"));
        if (!conditional) break;  // every path from the append ends here
        continue;
      }
      if (RawSends().count(t[j].text) == 0) continue;
      if (j + 1 >= t.size() || !IsPunct(t[j + 1], "(")) continue;
      if (j > 0 && IsPunct(t[j - 1], "::")) continue;  // definition
      if (guarded(j)) continue;
      if (!flagged.insert(j).second) continue;
      out.push_back(
          {"barrier-before-reply", f.src->path, t[j].line,
           "'" + t[j].text + "' is reachable after '" + t[i].text +
               "' without a durability barrier: the peer may observe this "
               "reply/ack while the record is still volatile. Dominate the "
               "send with wal->WhenDurable().OnSettle(...) (or "
               "WhenSequencesDurable), or route it through Core::Reply",
           ExcerptAt(f.lx, t[j].line)});
    }
  }
}

}  // namespace

std::vector<RuleInfo> BarrierRules() {
  return {
      {"barrier-before-reply",
       "reply/ack egress (SendReply*/SendSlotAck/SendMoveAck) reachable after "
       "a WAL append of an exec/commit/abort/move-in/dir-publish record "
       "without an intervening durability barrier "
       "(WhenDurable/WhenSequencesDurable continuation)"},
  };
}

void CheckBarrier(const Index& idx, std::vector<Finding>& out) {
  for (const FileCtx& f : idx.files) CheckFile(f, out);
}

}  // namespace fargolint
