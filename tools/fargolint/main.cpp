// fargolint CLI: scans the given files/directories (default rules, see
// docs/INVARIANTS.md) and exits non-zero on any unsuppressed finding.
//
//   fargolint [--json] [--list-rules] [--emit-schema] [--fix-annotations]
//             <file-or-dir>...
//
//   --json             emit findings as a SARIF 2.1.0 log instead of text
//   --emit-schema      print the machine-readable wire schema of the batch
//                      (markers, enums, codec op sequences) and exit; CI
//                      diffs this against docs/wire_schema.json
//   --fix-annotations  insert an ownership-domain annotation stub above every
//                      domain-missing finding (default derived from the
//                      path: src/core -> core, src/net -> net, src/sim ->
//                      sim), rewrite the files in place, and report what
//                      changed
//
// Directories are walked recursively for .h/.hpp/.cpp/.cc files; the file
// list is sorted so output and exit status are byte-deterministic.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tools/fargolint/lint.h"

namespace fs = std::filesystem;

namespace {

bool LintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

void JsonEscape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << ' ';
        else
          os << c;
    }
  }
}

/// SARIF 2.1.0 log: one run, rules[] from AllRules(), one result per
/// finding. Keyed so GitHub code scanning and SARIF viewers ingest it.
void EmitSarif(const std::vector<fargolint::Finding>& findings) {
  std::cout << "{\n"
            << "  \"$schema\": "
               "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
            << "  \"version\": \"2.1.0\",\n"
            << "  \"runs\": [\n    {\n"
            << "      \"tool\": {\n        \"driver\": {\n"
            << "          \"name\": \"fargolint\",\n"
            << "          \"informationUri\": \"docs/INVARIANTS.md\",\n"
            << "          \"rules\": [\n";
  const std::vector<fargolint::RuleInfo> rules = fargolint::AllRules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    std::cout << "            {\"id\": \"";
    JsonEscape(std::cout, rules[i].id);
    std::cout << "\", \"shortDescription\": {\"text\": \"";
    JsonEscape(std::cout, rules[i].summary);
    std::cout << "\"}}" << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  std::cout << "          ]\n        }\n      },\n"
            << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const fargolint::Finding& f = findings[i];
    std::cout << "        {\"ruleId\": \"";
    JsonEscape(std::cout, f.rule);
    std::cout << "\", \"level\": \"error\", \"message\": {\"text\": \"";
    JsonEscape(std::cout, f.message);
    std::cout << "\"}, \"locations\": [{\"physicalLocation\": "
                 "{\"artifactLocation\": {\"uri\": \"";
    JsonEscape(std::cout, f.file);
    std::cout << "\"}, \"region\": {\"startLine\": " << f.line;
    if (!f.excerpt.empty()) {
      std::cout << ", \"snippet\": {\"text\": \"";
      JsonEscape(std::cout, f.excerpt);
      std::cout << "\"}";
    }
    std::cout << "}}}]}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  std::cout << "      ]\n    }\n  ]\n}\n";
}

/// Default domain for a path, mirroring the annotation-sweep convention.
std::string DefaultDomain(const std::string& path) {
  if (path.find("src/core/") != std::string::npos) return "core";
  if (path.find("src/net/") != std::string::npos) return "net";
  if (path.find("src/sim/") != std::string::npos) return "sim";
  return "core";
}

/// Inserts a domain(<default>) annotation above every domain-missing finding,
/// preserving the flagged line's indentation. Returns files rewritten.
int FixAnnotations(const std::vector<fargolint::SourceFile>& files,
                   const std::vector<fargolint::Finding>& findings) {
  std::map<std::string, std::vector<int>> lines_by_file;
  for (const fargolint::Finding& f : findings)
    if (f.rule == "domain-missing") lines_by_file[f.file].push_back(f.line);

  int rewritten = 0;
  for (const fargolint::SourceFile& src : files) {
    auto it = lines_by_file.find(src.path);
    if (it == lines_by_file.end()) continue;
    std::vector<std::string> lines;
    std::istringstream in(src.content);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    // Bottom-up so earlier insertions do not shift later line numbers.
    std::vector<int> targets = it->second;
    std::sort(targets.rbegin(), targets.rend());
    const std::string domain = DefaultDomain(src.path);
    for (int ln : targets) {
      if (ln < 1 || ln > static_cast<int>(lines.size())) continue;
      const std::string& at = lines[ln - 1];
      const std::string indent = at.substr(0, at.find_first_not_of(" \t"));
      lines.insert(lines.begin() + (ln - 1),
                   indent + "// fargo: domain(" + domain + ")");
    }
    std::ofstream out(src.path, std::ios::binary | std::ios::trunc);
    for (const std::string& l : lines) out << l << "\n";
    std::cout << "fargolint: annotated " << src.path << " (" << targets.size()
              << " class" << (targets.size() == 1 ? "" : "es") << ", domain '"
              << domain << "')\n";
    ++rewritten;
  }
  return rewritten;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false, emit_schema = false, fix_annotations = false;
  std::vector<std::string> roots;
  const char* usage =
      "usage: fargolint [--json] [--list-rules] [--emit-schema] "
      "[--fix-annotations] <file-or-dir>...\n";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--emit-schema") {
      emit_schema = true;
    } else if (arg == "--fix-annotations") {
      fix_annotations = true;
    } else if (arg == "--list-rules") {
      for (const fargolint::RuleInfo& r : fargolint::AllRules())
        std::cout << r.id << "\n    " << r.summary << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << usage;
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fargolint: unknown option " << arg << "\n";
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << usage;
    return 2;
  }

  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root, ec))
        if (entry.is_regular_file() && LintableExtension(entry.path()))
          paths.push_back(entry.path().generic_string());
    } else if (fs::exists(root, ec)) {
      paths.push_back(fs::path(root).generic_string());
    } else {
      std::cerr << "fargolint: no such file or directory: " << root << "\n";
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<fargolint::SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "fargolint: cannot read " << p << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back({p, ss.str()});
  }

  if (emit_schema) {
    std::cout << fargolint::ExtractWireSchema(files);
    return 0;
  }

  const std::vector<fargolint::Finding> findings = fargolint::Lint(files);

  if (fix_annotations) {
    const int n = FixAnnotations(files, findings);
    std::cout << "fargolint: rewrote " << n << " file(s)\n";
    return 0;
  }

  if (json) {
    EmitSarif(findings);
  } else {
    for (const fargolint::Finding& f : findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
      if (!f.excerpt.empty()) std::cout << "    | " << f.excerpt << "\n";
    }
    std::cout << "fargolint: " << findings.size() << " finding(s) across "
              << files.size() << " file(s)\n";
  }
  return findings.empty() ? 0 : 1;
}
