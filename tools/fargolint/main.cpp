// fargolint CLI: scans the given files/directories (default rules, see
// docs/INVARIANTS.md) and exits non-zero on any unsuppressed finding.
//
//   fargolint [--json] [--list-rules] <file-or-dir>...
//
// Directories are walked recursively for .h/.hpp/.cpp/.cc files; the file
// list is sorted so output and exit status are byte-deterministic.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/fargolint/lint.h"

namespace fs = std::filesystem;

namespace {

bool LintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

void JsonEscape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << ' ';
        else
          os << c;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const fargolint::RuleInfo& r : fargolint::AllRules())
        std::cout << r.id << "\n    " << r.summary << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: fargolint [--json] [--list-rules] <file-or-dir>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fargolint: unknown option " << arg << "\n";
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "usage: fargolint [--json] [--list-rules] <file-or-dir>...\n";
    return 2;
  }

  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root, ec))
        if (entry.is_regular_file() && LintableExtension(entry.path()))
          paths.push_back(entry.path().generic_string());
    } else if (fs::exists(root, ec)) {
      paths.push_back(fs::path(root).generic_string());
    } else {
      std::cerr << "fargolint: no such file or directory: " << root << "\n";
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<fargolint::SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "fargolint: cannot read " << p << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back({p, ss.str()});
  }

  const std::vector<fargolint::Finding> findings = fargolint::Lint(files);

  if (json) {
    std::cout << "[";
    bool first = true;
    for (const fargolint::Finding& f : findings) {
      if (!first) std::cout << ",";
      first = false;
      std::cout << "\n  {\"rule\":\"";
      JsonEscape(std::cout, f.rule);
      std::cout << "\",\"file\":\"";
      JsonEscape(std::cout, f.file);
      std::cout << "\",\"line\":" << f.line << ",\"message\":\"";
      JsonEscape(std::cout, f.message);
      std::cout << "\",\"excerpt\":\"";
      JsonEscape(std::cout, f.excerpt);
      std::cout << "\"}";
    }
    std::cout << (findings.empty() ? "]\n" : "\n]\n");
  } else {
    for (const fargolint::Finding& f : findings) {
      std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
                << f.message << "\n";
      if (!f.excerpt.empty()) std::cout << "    | " << f.excerpt << "\n";
    }
    std::cout << "fargolint: " << findings.size() << " finding(s) across "
              << files.size() << " file(s)\n";
  }
  return findings.empty() ? 0 : 1;
}
