// benchgate: the perf-gate comparator for the deterministic bench metrics
// (bench/support.h emits them, bench/baselines/ stores the expected values).
//
// Every gated metric is a virtual-time or count cost produced by the
// deterministic simulation, so the comparison is EXACT — any run value
// above its baseline is a regression and fails the gate; any value below
// it is an improvement, reported with a hint to re-baseline. Wall-clock
// ("wallclock") metrics are ignored entirely: they are host noise.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fargo::benchgate {

/// Comparison outcome for one BENCH_<name>.json pair.
struct FileResult {
  std::string bench;  ///< bench name (file stem after BENCH_)
  std::vector<std::string> regressions;   ///< metric rose above baseline
  std::vector<std::string> improvements;  ///< metric fell below baseline
  std::vector<std::string> errors;        ///< structural: missing/extra/bad

  bool ok() const { return regressions.empty() && errors.empty(); }
};

/// Outcome for a whole baseline-dir vs run-dir comparison.
struct GateResult {
  std::vector<FileResult> files;
  std::vector<std::string> errors;  ///< directory-level problems

  bool ok() const;
  std::size_t regression_count() const;
  std::size_t improvement_count() const;
};

/// Extracts the "deterministic" metric map from a BENCH json document.
/// Throws std::runtime_error on malformed input (bad JSON, missing
/// sections, non-integer metric values).
std::map<std::string, std::uint64_t> ParseDeterministic(
    const std::string& text);

/// Compares one bench's baseline json against a fresh run's json.
FileResult CompareFiles(const std::string& bench,
                        const std::string& baseline_text,
                        const std::string& run_text);

/// Compares every BENCH_*.json under `run_dir` against `baseline_dir`.
/// A run file without a baseline, or a baseline without a run file, is an
/// error — the baseline set and the bench set must stay in lockstep.
GateResult CompareDirs(const std::string& baseline_dir,
                       const std::string& run_dir);

/// Canonical baseline form of a run's json: deterministic metrics only
/// (sorted), wallclock dropped — baselines must not embed host noise.
std::string CanonicalBaseline(const std::string& run_text);

/// --update: rewrites `baseline_dir` from the BENCH_*.json files in
/// `run_dir` (canonicalised). Returns false and fills `error` on failure.
bool UpdateBaselines(const std::string& baseline_dir,
                     const std::string& run_dir, std::string* error);

/// Renders a GateResult as a human report. Always lists regressions and
/// errors; improvements are listed with the re-baseline hint.
std::string FormatReport(const GateResult& result);

}  // namespace fargo::benchgate
