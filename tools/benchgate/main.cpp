// benchgate CLI — the CI perf gate.
//
//   benchgate <baseline-dir> <run-dir>            compare, exit 1 on any
//                                                 regression or mismatch
//   benchgate --update <baseline-dir> <run-dir>   re-baseline from the run
//
// The run dir holds the BENCH_*.json files a bench sweep just produced
// (bench binaries honour FARGO_BENCH_OUT); the baseline dir is checked in
// at bench/baselines/. Deterministic metrics are compared exactly;
// wallclock metrics are ignored.
#include <cstdio>
#include <string>
#include <vector>

#include "tools/benchgate/gate.h"

int main(int argc, char** argv) {
  bool update = false;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--update") {
      update = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: benchgate [--update] <baseline-dir> <run-dir>\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "benchgate: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.size() != 2) {
    std::fprintf(stderr,
                 "usage: benchgate [--update] <baseline-dir> <run-dir>\n");
    return 2;
  }

  if (update) {
    std::string error;
    if (!fargo::benchgate::UpdateBaselines(dirs[0], dirs[1], &error)) {
      std::fprintf(stderr, "benchgate: update failed: %s\n", error.c_str());
      return 2;
    }
    std::printf("benchgate: baselines in %s updated from %s\n",
                dirs[0].c_str(), dirs[1].c_str());
    return 0;
  }

  const fargo::benchgate::GateResult result =
      fargo::benchgate::CompareDirs(dirs[0], dirs[1]);
  std::fputs(fargo::benchgate::FormatReport(result).c_str(), stdout);
  return result.ok() ? 0 : 1;
}
