#include "tools/benchgate/gate.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tests/support/json_lite.h"

namespace fargo::benchgate {
namespace fs = std::filesystem;
namespace json = fargo::testing::json;

namespace {

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// BENCH_*.json files of a directory, keyed by bench name (file stem with
/// the BENCH_ prefix stripped). Sorted by map order → deterministic output.
std::map<std::string, fs::path> BenchFiles(const std::string& dir) {
  std::map<std::string, fs::path> out;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    const std::string name = e.path().filename().string();
    if (name.rfind("BENCH_", 0) != 0) continue;
    if (e.path().extension() != ".json") continue;
    out[e.path().stem().string().substr(6)] = e.path();
  }
  return out;
}

}  // namespace

bool GateResult::ok() const {
  if (!errors.empty()) return false;
  return std::all_of(files.begin(), files.end(),
                     [](const FileResult& f) { return f.ok(); });
}

std::size_t GateResult::regression_count() const {
  std::size_t n = 0;
  for (const FileResult& f : files) n += f.regressions.size();
  return n;
}

std::size_t GateResult::improvement_count() const {
  std::size_t n = 0;
  for (const FileResult& f : files) n += f.improvements.size();
  return n;
}

std::map<std::string, std::uint64_t> ParseDeterministic(
    const std::string& text) {
  const json::JsonPtr doc = json::Parse(text);
  if (!doc->is_object() || !doc->has("deterministic"))
    throw std::runtime_error("not a bench report: no \"deterministic\" map");
  const json::JsonValue& det = doc->at("deterministic");
  if (!det.is_object())
    throw std::runtime_error("\"deterministic\" is not an object");
  std::map<std::string, std::uint64_t> out;
  for (const auto& [key, value] : det.fields) {
    const double d = value->number();
    if (d < 0 || d != std::floor(d))
      throw std::runtime_error("metric " + key + " is not a non-negative " +
                               "integer");
    out[key] = static_cast<std::uint64_t>(d);
  }
  return out;
}

FileResult CompareFiles(const std::string& bench,
                        const std::string& baseline_text,
                        const std::string& run_text) {
  FileResult res;
  res.bench = bench;
  std::map<std::string, std::uint64_t> base, run;
  try {
    base = ParseDeterministic(baseline_text);
  } catch (const std::exception& e) {
    res.errors.push_back("baseline: " + std::string(e.what()));
    return res;
  }
  try {
    run = ParseDeterministic(run_text);
  } catch (const std::exception& e) {
    res.errors.push_back("run: " + std::string(e.what()));
    return res;
  }

  for (const auto& [metric, expected] : base) {
    const auto it = run.find(metric);
    if (it == run.end()) {
      res.errors.push_back(metric + ": in baseline but missing from run");
      continue;
    }
    const std::uint64_t got = it->second;
    if (got > expected) {
      res.regressions.push_back(metric + ": " + std::to_string(expected) +
                                " -> " + std::to_string(got) + " (+" +
                                std::to_string(got - expected) + ")");
    } else if (got < expected) {
      res.improvements.push_back(metric + ": " + std::to_string(expected) +
                                 " -> " + std::to_string(got) + " (-" +
                                 std::to_string(expected - got) + ")");
    }
  }
  // A metric the baseline does not know about means the bench changed shape
  // without a re-baseline — fail loudly rather than gate on air.
  for (const auto& [metric, value] : run) {
    if (!base.contains(metric))
      res.errors.push_back(metric + ": in run but not in baseline " +
                           "(re-baseline with --update)");
  }
  return res;
}

GateResult CompareDirs(const std::string& baseline_dir,
                       const std::string& run_dir) {
  GateResult out;
  if (!fs::is_directory(baseline_dir)) {
    out.errors.push_back("baseline dir missing: " + baseline_dir +
                         " (create with --update)");
    return out;
  }
  if (!fs::is_directory(run_dir)) {
    out.errors.push_back("run dir missing: " + run_dir);
    return out;
  }
  const std::map<std::string, fs::path> base = BenchFiles(baseline_dir);
  const std::map<std::string, fs::path> run = BenchFiles(run_dir);
  for (const auto& [bench, path] : run) {
    const auto it = base.find(bench);
    if (it == base.end()) {
      out.errors.push_back("BENCH_" + bench +
                           ".json: no baseline (add with --update)");
      continue;
    }
    out.files.push_back(CompareFiles(bench, ReadFile(it->second),
                                     ReadFile(path)));
  }
  for (const auto& [bench, path] : base) {
    if (!run.contains(bench))
      out.errors.push_back("BENCH_" + bench +
                           ".json: baseline present but bench did not run");
  }
  return out;
}

std::string CanonicalBaseline(const std::string& run_text) {
  const json::JsonPtr doc = json::Parse(run_text);
  const std::string bench =
      doc->is_object() && doc->has("bench") ? doc->at("bench").string() : "";
  const std::map<std::string, std::uint64_t> det =
      ParseDeterministic(run_text);
  std::ostringstream os;
  os << "{\n  \"bench\": \"" << bench << "\",\n  \"schema\": 1,\n";
  os << "  \"deterministic\": {";
  const char* sep = "\n";
  for (const auto& [k, v] : det) {
    os << sep << "    \"" << k << "\": " << v;
    sep = ",\n";
  }
  os << (det.empty() ? "" : "\n") << "  },\n";
  os << "  \"wallclock\": {}\n}\n";
  return os.str();
}

bool UpdateBaselines(const std::string& baseline_dir,
                     const std::string& run_dir, std::string* error) {
  try {
    if (!fs::is_directory(run_dir))
      throw std::runtime_error("run dir missing: " + run_dir);
    fs::create_directories(baseline_dir);
    const std::map<std::string, fs::path> run = BenchFiles(run_dir);
    if (run.empty())
      throw std::runtime_error("no BENCH_*.json files in " + run_dir);
    for (const auto& [bench, path] : run) {
      const std::string canonical = CanonicalBaseline(ReadFile(path));
      const fs::path dest =
          fs::path(baseline_dir) / ("BENCH_" + bench + ".json");
      std::ofstream out(dest, std::ios::binary | std::ios::trunc);
      if (!out) throw std::runtime_error("cannot write " + dest.string());
      out << canonical;
    }
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  return true;
}

std::string FormatReport(const GateResult& result) {
  std::ostringstream os;
  for (const std::string& e : result.errors) os << "ERROR  " << e << "\n";
  for (const FileResult& f : result.files) {
    for (const std::string& e : f.errors)
      os << "ERROR  [" << f.bench << "] " << e << "\n";
    for (const std::string& r : f.regressions)
      os << "REGRESSION  [" << f.bench << "] " << r << "\n";
    for (const std::string& i : f.improvements)
      os << "improvement [" << f.bench << "] " << i << "\n";
  }
  if (result.ok()) {
    os << "benchgate: OK (" << result.files.size() << " benches";
    if (result.improvement_count() > 0)
      os << ", " << result.improvement_count()
         << " improvements — run with --update to lock them in";
    os << ")\n";
  } else {
    std::size_t error_count = result.errors.size();
    for (const FileResult& f : result.files) error_count += f.errors.size();
    os << "benchgate: FAIL (" << result.regression_count() << " regressions, "
       << error_count << " errors)\n";
  }
  return os.str();
}

}  // namespace fargo::benchgate
