// Relocation programming with the monitoring API (§4.1/§4.2).
//
// A farm of worker complets serves requests. An admin policy, written
// directly against the Core API (not the scripting language):
//   - spreads complets away from a core whose completLoad crosses a
//     threshold (asynchronous monitor event),
//   - evacuates complets from a core announcing shutdown (reliability).
//
// Build & run:  ./build/examples/load_balancer
#include <algorithm>
#include <cstdio>

#include "src/fargo.h"

namespace {

using namespace fargo;

class JobWorker : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "example.JobWorker";
  JobWorker() {
    methods().Register("run", [this](const std::vector<Value>& args) {
      ++jobs_;
      return Value(args.at(0).AsInt() * 2);
    });
    methods().Register("jobs",
                       [this](const std::vector<Value>&) { return Value(jobs_); });
  }
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override { w.WriteInt(jobs_); }
  void Deserialize(serial::GraphReader& r) override { jobs_ = r.ReadInt(); }

 private:
  std::int64_t jobs_ = 0;
};

const bool kReg = serial::RegisterType<JobWorker>();

void PrintLoads(core::Runtime& rt) {
  std::printf("  t=%7.1f ms  loads:", fargo::ToMillis(rt.Now()));
  for (core::Core* c : rt.Cores())
    std::printf("  %s=%zu%s", c->name().c_str(), c->repository().size(),
                c->alive() ? "" : "(down)");
  std::printf("\n");
}

}  // namespace

int main() {
  (void)kReg;
  core::Runtime rt;
  core::Core& admin = rt.CreateCore("admin");
  std::vector<core::Core*> farm;
  for (int i = 0; i < 3; ++i)
    farm.push_back(&rt.CreateCore("node" + std::to_string(i)));
  rt.network().SetDefaultLink({fargo::Millis(5), 1.25e7, true});

  std::printf("== FarGo load balancer (monitoring API) ==\n");

  // Least-loaded core in the farm.
  auto least_loaded = [&](core::Core* except) {
    core::Core* best = nullptr;
    for (core::Core* c : farm)
      if (c != except && c->alive() &&
          (best == nullptr || c->repository().size() < best->repository().size()))
        best = c;
    return best;
  };

  // Policy 1: spread when a node gets hot (threshold monitor event).
  for (core::Core* node : farm) {
    admin.ListenThresholdAt(
        node->id(), monitor::ComletLoadProbe(), 8.0, monitor::Trigger::kAbove,
        fargo::Millis(50), [&, node](const monitor::Event& e) {
          std::printf("  !! %s overloaded (load %.0f) -> spreading\n",
                      node->name().c_str(), e.value);
          std::vector<ComletId> here = node->ComletsHere();
          for (std::size_t i = 0; i < here.size() / 2; ++i) {
            core::Core* dest = least_loaded(node);
            if (dest != nullptr) node->MoveId(here[i], dest->id());
          }
          PrintLoads(rt);
        });
  }

  // Policy 2: reliability — evacuate a dying node (CoreShutdown event).
  for (core::Core* node : farm) {
    admin.ListenAt(node->id(), monitor::EventKind::kCoreShutdown,
                   [&, node](const monitor::Event&) {
                     std::printf("  !! %s shutting down -> evacuating\n",
                                 node->name().c_str());
                     for (ComletId id : node->ComletsHere()) {
                       core::Core* dest = least_loaded(node);
                       if (dest != nullptr) node->MoveId(id, dest->id());
                     }
                   });
  }

  // Deploy 12 workers, all on node0 (a deliberately bad static layout).
  std::vector<core::ComletRef<JobWorker>> workers;
  for (int i = 0; i < 12; ++i)
    workers.push_back(admin.NewAt<JobWorker>(farm[0]->id()));
  PrintLoads(rt);

  // Serve requests; the threshold event fires and the layout spreads.
  std::int64_t checksum = 0;
  for (int round = 0; round < 20; ++round) {
    for (auto& w : workers)
      checksum += w.Invoke<std::int64_t>("run", std::int64_t{round});
    rt.RunFor(fargo::Millis(100));
  }
  PrintLoads(rt);

  // Now a node dies; its complets evacuate and service continues.
  std::printf("-- announcing shutdown of node1 --\n");
  farm[1]->Shutdown(fargo::Millis(500));
  rt.RunFor(fargo::Millis(500));
  PrintLoads(rt);

  for (int round = 0; round < 5; ++round)
    for (auto& w : workers)
      checksum += w.Invoke<std::int64_t>("run", std::int64_t{round});

  std::int64_t total_jobs = 0;
  for (auto& w : workers) total_jobs += w.Invoke<std::int64_t>("jobs");
  std::printf("served %lld jobs across the farm (checksum %lld); "
              "no request was lost across 1 overload + 1 node death\n",
              static_cast<long long>(total_jobs),
              static_cast<long long>(checksum));
  return 0;
}
