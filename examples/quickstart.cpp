// Quickstart: the paper's Figure 3 scenario, end to end.
//
//   complet Message_ { print(); }
//   Message msg = new Message_("Hello World");
//   Carrier.move(msg, "acadia", "start", args);   // move + continuation
//   msg.print();                                  // transparent after move
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "src/fargo.h"

namespace {

using namespace fargo;

// A complet anchor: default-constructible, registered, with a MethodMap.
class Message : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "example.Message";

  Message() {
    methods().Register("print", [this](const std::vector<Value>&) {
      std::printf("  [%s @ %s] %s\n", ToString(id()).c_str(),
                  core()->name().c_str(), text_.c_str());
      return Value(text_);
    });
    methods().Register("start", [this](const std::vector<Value>& args) {
      std::printf("  [%s @ %s] continuation start(%s) after arrival\n",
                  ToString(id()).c_str(), core()->name().c_str(),
                  args.empty() ? "" : args[0].ToDebugString().c_str());
      return Value();
    });
  }
  explicit Message(std::string text) : Message() { text_ = std::move(text); }

  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override {
    w.WriteString(text_);
  }
  void Deserialize(serial::GraphReader& r) override { text_ = r.ReadString(); }

 private:
  std::string text_;
};

const bool kRegistered = serial::RegisterType<Message>();

}  // namespace

int main() {
  (void)kRegistered;
  // The deployment space: a deterministic simulated WAN (DESIGN.md §2).
  core::Runtime rt;
  core::Core& local = rt.CreateCore("local");
  core::Core& acadia = rt.CreateCore("acadia");
  rt.network().SetDefaultLink({fargo::Millis(30), 1.25e6, true});

  std::printf("== FarGo quickstart (Fig 3) ==\n");

  // Message msg = new Message_("Hello World");
  core::ComletRef<Message> msg = local.New<Message>("Hello World!");
  std::printf("created %s at %s\n", ToString(msg.target()).c_str(),
              local.name().c_str());
  msg.Call("print");

  // Carrier.move(msg, "acadia", "start", new Object[]{...});
  std::printf("moving to acadia with continuation...\n");
  local.Move(msg, acadia.id(), "start", {Value("a1")});
  rt.RunUntilIdle();

  // msg.print() — the same stub keeps working, transparently remote now.
  msg.Call("print");
  std::printf("stub reports location: %s\n",
              ToString(local.ResolveLocation(msg)).c_str());

  // Reflection (§3.2): retype the reference from link to pull.
  core::MetaRef& meta = core::Core::GetMetaRef(msg);
  std::printf("reference type: %s\n", std::string(meta.GetRelocator()->Kind()).c_str());
  if (std::dynamic_pointer_cast<core::Link>(meta.GetRelocator()))
    meta.SetRelocator(std::make_shared<core::Pull>());
  std::printf("reference retyped to: %s\n",
              std::string(meta.GetRelocator()->Kind()).c_str());

  // A layout snapshot, as the graphical monitor (Fig 4) would show it.
  shell::TextMonitor monitor(rt, local, std::cout);
  std::printf("%s", monitor.RenderSnapshot().c_str());

  std::printf("simulated time elapsed: %.1f ms, messages: %llu\n",
              fargo::ToMillis(rt.Now()),
              static_cast<unsigned long long>(rt.network().total_messages()));
  return 0;
}
