// Flagship scenario: a wide-area document indexing application — the kind
// of large-scale, resource-sensitive program §1 motivates.
//
// Topology: a coordinator site and three data sites, each holding a local
// document shard (site-bound complets). An Indexer complet visits the data
// sites (weak mobility + arrival continuations), indexing each site's
// shard *locally* instead of dragging documents over the WAN:
//   - the indexer's accumulating index travels with it (pull),
//   - its stopword table is replicated at each site (duplicate),
//   - its shard reference re-binds to each site's local shard (stamp).
// A layout script supervises reliability: if a data site announces
// shutdown mid-run, its complets evacuate to the coordinator and the run
// completes. Compare the moving-code plan against the naive
// move-the-data-to-the-coordinator plan at the end.
//
// Build & run:  ./build/examples/wide_area_index
#include <cstdio>
#include <map>
#include <sstream>

#include "src/fargo.h"

namespace {

using namespace fargo;

/// A site-local document shard (never moves: it is the site's data).
class Shard : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "wai.Shard";
  Shard() {
    methods().Register("load", [this](const std::vector<Value>& args) {
      docs_ = args.at(0).AsString();
      return Value();
    });
    methods().Register("docs", [this](const std::vector<Value>&) {
      return Value(docs_);
    });
    methods().Register("bytes", [this](const std::vector<Value>&) {
      return Value(static_cast<std::int64_t>(docs_.size()));
    });
  }
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override {
    w.WriteString(docs_);
  }
  void Deserialize(serial::GraphReader& r) override { docs_ = r.ReadString(); }

 private:
  std::string docs_;
};

/// Read-only stopword table (replicable: duplicate semantics).
class Stopwords : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "wai.Stopwords";
  Stopwords() {
    methods().Register("contains", [this](const std::vector<Value>& args) {
      return Value(words_.find(" " + args.at(0).AsString() + " ") !=
                   std::string::npos);
    });
  }
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override {
    w.WriteString(words_);
  }
  void Deserialize(serial::GraphReader& r) override { words_ = r.ReadString(); }

 private:
  std::string words_ = " the a an of to and in is it ";
};

/// The travelling indexer: visits sites, indexes the local shard.
class Indexer : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "wai.Indexer";
  Indexer() {
    methods().Register("setup", [this](const std::vector<Value>& args) {
      stopwords_ = core()->RefTo<Stopwords>(args.at(0));
      shard_ = core()->RefTo<Shard>(args.at(1));
      core::Core::GetMetaRef(stopwords_).SetRelocator(
          core::MakeRelocator("duplicate"));
      core::Core::GetMetaRef(shard_).SetRelocator(
          core::MakeRelocator("stamp"));
      return Value();
    });
    // Arrival continuation: index the local shard.
    methods().Register("indexHere", [this](const std::vector<Value>&) {
      if (!shard_) return Value("no shard at " + core()->name());
      std::istringstream docs(shard_.Invoke<std::string>("docs"));
      std::string word;
      std::int64_t indexed = 0;
      while (docs >> word) {
        if (stopwords_.Invoke<bool>("contains", word)) continue;
        index_[word] += 1;
        ++indexed;
      }
      sites_ += core()->name() + " ";
      return Value("indexed " + std::to_string(indexed) + " terms at " +
                   core()->name());
    });
    methods().Register("summary", [this](const std::vector<Value>&) {
      Value::Map m;
      m["distinct_terms"] = Value(static_cast<std::int64_t>(index_.size()));
      m["sites"] = Value(sites_);
      std::int64_t total = 0;
      for (const auto& [w, n] : index_) total += n;
      m["total_terms"] = Value(total);
      return Value(std::move(m));
    });
    methods().Register("count", [this](const std::vector<Value>& args) {
      auto it = index_.find(args.at(0).AsString());
      return Value(it == index_.end() ? std::int64_t{0} : it->second);
    });
  }
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override {
    stopwords_.SerializeTo(w);
    shard_.SerializeTo(w);
    w.WriteString(sites_);
    w.WriteVarint(index_.size());
    for (const auto& [word, n] : index_) {
      w.WriteString(word);
      w.WriteInt(n);
    }
  }
  void Deserialize(serial::GraphReader& r) override {
    stopwords_.DeserializeFrom(r);
    shard_.DeserializeFrom(r);
    sites_ = r.ReadString();
    index_.clear();
    const std::uint64_t n = r.ReadVarint();
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string word = r.ReadString();
      index_[std::move(word)] = r.ReadInt();
    }
  }

 private:
  core::ComletRef<Stopwords> stopwords_;
  core::ComletRef<Shard> shard_;
  std::map<std::string, std::int64_t> index_;
  std::string sites_;
};

const bool kReg = serial::RegisterType<Shard>() &&
                  serial::RegisterType<Stopwords>() &&
                  serial::RegisterType<Indexer>();

const char* kShardData[] = {
    "the quick brown fox jumps over the lazy dog and the dog barks",
    "a distributed system is a system of components on networked hosts "
    "and the components communicate by passing messages",
    "mobile code moves the computation to the data because the data is "
    "large and the network is slow",
};

}  // namespace

int main() {
  (void)kReg;
  core::Runtime rt;
  rt.EnableHomeRegistry(true);
  core::Core& hq = rt.CreateCore("hq");
  std::vector<core::Core*> sites;
  for (int i = 0; i < 3; ++i)
    sites.push_back(&rt.CreateCore("site" + std::to_string(i)));
  // A slow WAN: exactly the regime where moving code beats moving data.
  rt.network().SetDefaultLink({fargo::Millis(60), 2.5e5 /* 2 Mbit/s */, true});

  std::printf("== FarGo wide-area indexer ==\n");

  // Site data (never moves on its own). Each site holds a large corpus —
  // the regime where shipping computation beats shipping documents.
  std::vector<core::ComletRef<Shard>> shards;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    auto shard = hq.NewAt<Shard>(sites[i]->id());
    std::string corpus;
    for (int rep = 0; rep < 2000; ++rep) {
      corpus += kShardData[i];
      corpus += ' ';
    }
    shard.Call("load", {Value(std::move(corpus))});
    shards.push_back(shard);
  }

  // Reliability supervision, in the scripting language.
  script::Engine engine(rt, hq);
  engine.Run(
      "$sites = %1\n"
      "$safe = %2\n"
      "on shutdown firedby $c listenAt $sites do\n"
      "  move completsIn $c to $safe\n"
      "end",
      {Value(Value::List{
           Value(static_cast<std::int64_t>(sites[0]->id().value)),
           Value(static_cast<std::int64_t>(sites[1]->id().value)),
           Value(static_cast<std::int64_t>(sites[2]->id().value))}),
       Value(static_cast<std::int64_t>(hq.id().value))});

  // Plan A: moving code. The indexer tours the sites.
  auto stopwords = hq.New<Stopwords>();
  auto indexer = hq.New<Indexer>();
  indexer.Call("setup", {Value(stopwords.handle()), Value(shards[0].handle())});

  rt.network().ResetStats();
  const SimTime t0 = rt.Now();
  for (core::Core* site : sites) {
    hq.MoveId(indexer.target(), site->id(), "indexHere", {});
    rt.RunUntilIdle();
  }
  hq.MoveId(indexer.target(), hq.id());  // come home with the index
  const double code_ms = fargo::ToMillis(rt.Now() - t0);
  const auto code_bytes = rt.network().total_bytes();

  Value summary = indexer.Call("summary");
  std::printf("tour complete: %s\n", summary.ToDebugString().c_str());
  std::printf("term 'the' filtered: count=%lld; term 'data': count=%lld\n",
              static_cast<long long>(indexer.Call("count", {Value("the")}).AsInt()),
              static_cast<long long>(indexer.Call("count", {Value("data")}).AsInt()));

  // Plan B: moving data. Fetch every shard's documents to hq.
  rt.network().ResetStats();
  const SimTime t1 = rt.Now();
  std::size_t fetched = 0;
  for (auto& shard : shards) fetched += shard.Call("docs").AsString().size();
  const double data_ms = fargo::ToMillis(rt.Now() - t1);
  const auto data_bytes = rt.network().total_bytes();

  std::printf("\nplan comparison on a 60 ms / 2 Mbit WAN:\n");
  std::printf("  move the code:  %7.1f ms, %6llu bytes on the wire\n",
              code_ms, static_cast<unsigned long long>(code_bytes));
  std::printf("  move the data:  %7.1f ms, %6llu bytes (and %zu bytes of "
              "documents would grow with the corpus)\n",
              data_ms, static_cast<unsigned long long>(data_bytes), fetched);

  // Mid-run failure drill: a site announces shutdown while hosting data;
  // the script evacuates it and the shard stays queryable.
  std::printf("\nfailure drill: site2 announces shutdown\n");
  sites[2]->Shutdown(fargo::Millis(500));
  rt.RunUntilIdle();
  std::printf("shard2 now answers from %s: %lld bytes\n",
              ToString(hq.ResolveLocation(shards[2])).c_str(),
              static_cast<long long>(shards[2].Call("bytes").AsInt()));
  return 0;
}
