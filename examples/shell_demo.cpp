// The administrative shell and the live terminal monitor (Fig 4
// substitute) driving a deployment — scripted here, but `RunInteractive`
// gives the same commands a REPL.
//
// Build & run:  ./build/examples/shell_demo
//   (pipe commands for interactive use: echo "cores" | ./shell_demo -i)
#include <cstdio>
#include <cstring>
#include <iostream>

#include "src/fargo.h"

namespace {

using namespace fargo;

class Inventory : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "example.Inventory";
  Inventory() {
    methods().Register("stock", [this](const std::vector<Value>&) {
      return Value(stock_);
    });
    methods().Register("take", [this](const std::vector<Value>& args) {
      stock_ -= args.at(0).AsInt();
      return Value(stock_);
    });
  }
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override { w.WriteInt(stock_); }
  void Deserialize(serial::GraphReader& r) override { stock_ = r.ReadInt(); }

 private:
  std::int64_t stock_ = 100;
};

class Storefront : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "example.Storefront";
  Storefront() {
    methods().Register("attach", [this](const std::vector<Value>& args) {
      inventory_ = core()->RefTo<Inventory>(args.at(0));
      return Value();
    });
    methods().Register("sell", [this](const std::vector<Value>&) {
      return inventory_.Call("take", {Value(1)});
    });
  }
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override {
    inventory_.SerializeTo(w);
  }
  void Deserialize(serial::GraphReader& r) override {
    inventory_.DeserializeFrom(r);
  }

 private:
  core::ComletRef<Inventory> inventory_;
};

const bool kReg =
    serial::RegisterType<Inventory>() && serial::RegisterType<Storefront>();

}  // namespace

int main(int argc, char** argv) {
  (void)kReg;
  core::Runtime rt;
  core::Core& admin = rt.CreateCore("admin");
  core::Core& east = rt.CreateCore("east");
  core::Core& west = rt.CreateCore("west");
  rt.network().SetDefaultLink({fargo::Millis(15), 1.25e6, true});

  auto store = admin.NewAt<Storefront>(east.id());
  auto inventory = admin.NewAt<Inventory>(west.id());
  store.Call("attach", {Value(inventory.handle())});
  east.BindName("store", store);
  west.BindName("inventory", inventory);
  store.Call("sell");

  shell::Shell shell(rt, admin, std::cout);

  if (argc > 1 && std::strcmp(argv[1], "-i") == 0) {
    shell.RunInteractive(std::cin);
    return 0;
  }

  std::printf("== FarGo admin shell demo ==\n");
  const char* session[] = {
      "help",
      "cores",
      "ls",
      "names",
      "methods store",
      "invoke store sell",
      "profile completLoad east",
      "profile bandwidth east west",
      "profile methodInvokeRate east store inventory",
      // Inspect and retype the storefront's reference, then colocate.
      "reftype east store inventory",
      "setref east store inventory pull",
      "move store west",
      "snapshot",
      "invoke store sell",
      "link east west 100 1",
      "profile latency east west",
      "gc",
      "shutdown east",
      "cores",
  };
  for (const char* cmd : session) {
    std::printf("fargo> %s\n", cmd);
    shell.Execute(cmd);
    rt.RunUntilIdle();
  }
  std::printf("(run with -i for an interactive session)\n");
  return 0;
}
