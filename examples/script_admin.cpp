// Administration with the layout scripting language (§4.3).
//
// Deploys a small application, then attaches the paper's verbatim script —
// after deployment, as an administrator would — and lets its two rules
// manage the layout: colocation under invocation pressure, evacuation on
// core shutdown. The live terminal monitor narrates the layout changes.
//
// Build & run:  ./build/examples/script_admin
#include <cstdio>
#include <iostream>

#include "src/fargo.h"

namespace {

using namespace fargo;

class Frontend : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "example.Frontend";
  Frontend() {
    methods().Register("attach", [this](const std::vector<Value>& args) {
      backend_ = core()->RefTo<core::Anchor>(args.at(0));
      return Value();
    });
    methods().Register("request", [this](const std::vector<Value>&) {
      return backend_.Call("serve");
    });
  }
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override {
    backend_.SerializeTo(w);
  }
  void Deserialize(serial::GraphReader& r) override {
    backend_.DeserializeFrom(r);
  }

 private:
  core::ComletRefBase backend_;
};

class Backend : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "example.Backend";
  Backend() {
    methods().Register("serve", [this](const std::vector<Value>&) {
      return Value(++served_);
    });
  }
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override {
    w.WriteInt(served_);
  }
  void Deserialize(serial::GraphReader& r) override { served_ = r.ReadInt(); }

 private:
  std::int64_t served_ = 0;
};

const bool kReg =
    serial::RegisterType<Frontend>() && serial::RegisterType<Backend>();

// The example script of §4.3, verbatim.
const char* kPaperScript = R"(
$coreList = %1
$targetCore = %2
$comps = %3
on shutdown firedby $core
 listenAt $coreList do
  move completsIn $core to $targetCore
end
on methodInvokeRate(3)
  from $comps[0] to $comps[1] do
 move $comps[0] to coreOf $comps[1]
end
)";

}  // namespace

int main() {
  (void)kReg;
  core::Runtime rt;
  core::Core& admin = rt.CreateCore("admin");
  core::Core& alpha = rt.CreateCore("alpha");
  core::Core& beta = rt.CreateCore("beta");
  core::Core& safehouse = rt.CreateCore("safehouse");
  rt.network().SetDefaultLink({fargo::Millis(20), 1.25e6, true});

  std::printf("== FarGo script administration (§4.3, verbatim script) ==\n");

  // The application, deployed with frontend and backend apart.
  auto frontend = admin.NewAt<Frontend>(alpha.id());
  auto backend = admin.NewAt<Backend>(beta.id());
  frontend.Call("attach", {Value(backend.handle())});

  shell::TextMonitor monitor(rt, admin, std::cout);
  monitor.Attach();

  // The administrator attaches the script to the running system.
  script::Engine engine(rt, admin);
  engine.Run(kPaperScript,
             {Value(Value::List{
                  Value(static_cast<std::int64_t>(alpha.id().value)),
                  Value(static_cast<std::int64_t>(beta.id().value))}),
              Value(static_cast<std::int64_t>(safehouse.id().value)),
              Value(Value::List{Value(frontend.handle()),
                                Value(backend.handle())})});
  std::printf("script attached (%zu rules); driving traffic...\n",
              engine.active_rules());

  // Traffic exceeding 3 invocations/second triggers the performance rule.
  for (int i = 0; i < 30; ++i) {
    frontend.Call("request");
    rt.RunFor(fargo::Millis(100));
  }
  std::printf("after performance rule: frontend now at %s\n",
              ToString(admin.ResolveLocation(frontend)).c_str());

  // A core announces shutdown; the reliability rule evacuates it.
  std::printf("announcing shutdown of beta...\n");
  beta.Shutdown(fargo::Millis(500));
  rt.RunFor(fargo::Millis(500));

  std::printf("\nfinal layout:\n%s", monitor.RenderSnapshot().c_str());
  std::printf("script fired %llu times, executed %llu moves; app still "
              "serving: request #%lld\n",
              static_cast<unsigned long long>(engine.rule_firings()),
              static_cast<unsigned long long>(engine.moves_executed()),
              static_cast<long long>(frontend.Call("request").AsInt()));
  return 0;
}
