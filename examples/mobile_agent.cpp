// Mobile agent: the paper's §2 reference-type showcase.
//
// An itinerant agent visits every site of a deployment carrying:
//   - a pull      reference to its notebook (private mutable state complet),
//   - a duplicate reference to a read-only configuration complet,
//   - a stamp     reference to "the local printer" — re-bound per site.
//
// Build & run:  ./build/examples/mobile_agent
#include <cstdio>
#include <string>

#include "src/fargo.h"

namespace {

using namespace fargo;

/// Private mutable state dragged along with the agent (pull).
class Notebook : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "example.Notebook";
  Notebook() {
    methods().Register("append", [this](const std::vector<Value>& args) {
      entries_ += args.at(0).AsString() + "\n";
      return Value();
    });
    methods().Register("dump",
                       [this](const std::vector<Value>&) { return Value(entries_); });
  }
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override {
    w.WriteString(entries_);
  }
  void Deserialize(serial::GraphReader& r) override {
    entries_ = r.ReadString();
  }

 private:
  std::string entries_;
};

/// Read-only configuration, safe to replicate at each site (duplicate).
class Config : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "example.Config";
  Config() {
    methods().Register("get", [this](const std::vector<Value>&) {
      return Value(greeting_);
    });
  }
  explicit Config(std::string greeting) : Config() {
    greeting_ = std::move(greeting);
  }
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override {
    w.WriteString(greeting_);
  }
  void Deserialize(serial::GraphReader& r) override {
    greeting_ = r.ReadString();
  }

 private:
  std::string greeting_ = "hello";
};

/// A location-bound device: one per site (stamp target).
class Printer : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "example.Printer";
  Printer() {
    methods().Register("print", [this](const std::vector<Value>& args) {
      std::printf("  [printer @ %s] %s\n", core()->name().c_str(),
                  args.at(0).AsString().c_str());
      return Value();
    });
  }
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override { (void)w; }
  void Deserialize(serial::GraphReader& r) override { (void)r; }
};

/// The itinerant agent.
class Agent : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "example.Agent";
  Agent() {
    methods().Register("setup", [this](const std::vector<Value>& args) {
      notebook_ = core()->RefTo<Notebook>(args.at(0));
      config_ = core()->RefTo<Config>(args.at(1));
      printer_ = core()->RefTo<Printer>(args.at(2));
      core::Core::GetMetaRef(notebook_).SetRelocator(core::MakeRelocator("pull"));
      core::Core::GetMetaRef(config_).SetRelocator(
          core::MakeRelocator("duplicate"));
      core::Core::GetMetaRef(printer_).SetRelocator(core::MakeRelocator("stamp"));
      return Value();
    });
    // Continuation invoked on arrival at each site (§3.3): do the site's
    // work using the three references.
    methods().Register("visit", [this](const std::vector<Value>&) {
      const std::string site = core()->name();
      std::string greeting = config_.Invoke<std::string>("get");
      notebook_.Call("append", {Value("visited " + site)});
      if (printer_) {
        printer_.Call("print", {Value(greeting + " from the agent at " + site)});
      } else {
        std::printf("  [agent @ %s] no local printer here\n", site.c_str());
      }
      return Value();
    });
    methods().Register("report", [this](const std::vector<Value>&) {
      return notebook_.Call("dump");
    });
  }
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override {
    notebook_.SerializeTo(w);
    config_.SerializeTo(w);
    printer_.SerializeTo(w);
  }
  void Deserialize(serial::GraphReader& r) override {
    notebook_.DeserializeFrom(r);
    config_.DeserializeFrom(r);
    printer_.DeserializeFrom(r);
  }

 private:
  core::ComletRef<Notebook> notebook_;
  core::ComletRef<Config> config_;
  core::ComletRef<Printer> printer_;
};

const bool kReg = serial::RegisterType<Notebook>() &&
                  serial::RegisterType<Config>() &&
                  serial::RegisterType<Printer>() &&
                  serial::RegisterType<Agent>();

}  // namespace

int main() {
  (void)kReg;
  core::Runtime rt;
  core::Core& home = rt.CreateCore("home");
  core::Core& lab = rt.CreateCore("lab");
  core::Core& office = rt.CreateCore("office");
  core::Core& cafe = rt.CreateCore("cafe");  // no printer here
  rt.network().SetDefaultLink({fargo::Millis(15), 1.25e6, true});

  std::printf("== FarGo mobile agent (pull / duplicate / stamp) ==\n");

  // Site devices: a printer everywhere except the cafe.
  auto home_printer = home.New<Printer>();
  lab.New<Printer>();
  office.New<Printer>();

  auto notebook = home.New<Notebook>();
  auto config = home.New<Config>("shalom");
  auto agent = home.New<Agent>();
  agent.Call("setup", {Value(notebook.handle()), Value(config.handle()),
                       Value(home_printer.handle())});
  agent.Call("visit");

  // The itinerary: each move carries notebook (pull) + a config copy
  // (duplicate) and re-binds the printer (stamp); "visit" is the arrival
  // continuation.
  for (core::Core* site : {&lab, &office, &cafe, &home}) {
    std::printf("-- moving agent to %s --\n", site->name().c_str());
    home.MoveId(agent.target(), site->id(), "visit", {});
    rt.RunUntilIdle();
  }

  std::printf("\nagent notebook:\n%s",
              agent.Call("report").AsString().c_str());
  std::printf("config copies in the deployment: ");
  int copies = 0;
  for (core::Core* c : rt.Cores())
    for (ComletId id : c->ComletsHere())
      if (c->repository().Get(id)->TypeName() == Config::kTypeName) ++copies;
  std::printf("%d (one per visited site, via duplicate)\n", copies);
  std::printf("total simulated time: %.1f ms, messages: %llu\n",
              fargo::ToMillis(rt.Now()),
              static_cast<unsigned long long>(rt.network().total_messages()));
  return 0;
}
