// Crash recovery with persistence + the home registry (§7 future work,
// both implemented as extensions; see DESIGN.md).
//
// An order-processing service is periodically checkpointed. Its host core
// crashes without warning; the operator restores the checkpoint on a
// standby core. Clients that located the service through the home registry
// keep working transparently; state since the last checkpoint is lost
// (documented at-checkpoint consistency).
//
// Build & run:  ./build/examples/checkpoint_recovery
#include <cstdio>

#include "src/fargo.h"

namespace {

using namespace fargo;

class OrderBook : public core::Anchor {
 public:
  static constexpr std::string_view kTypeName = "example.OrderBook";
  OrderBook() {
    methods().Register("place", [this](const std::vector<Value>& args) {
      orders_ += args.at(0).AsString() + ";";
      return Value(static_cast<std::int64_t>(Count()));
    });
    methods().Register("count", [this](const std::vector<Value>&) {
      return Value(static_cast<std::int64_t>(Count()));
    });
  }
  std::string_view TypeName() const override { return kTypeName; }
  void Serialize(serial::GraphWriter& w) const override {
    w.WriteString(orders_);
  }
  void Deserialize(serial::GraphReader& r) override { orders_ = r.ReadString(); }

 private:
  std::size_t Count() const {
    std::size_t n = 0;
    for (char c : orders_)
      if (c == ';') ++n;
    return n;
  }
  std::string orders_;
};

const bool kReg = serial::RegisterType<OrderBook>();

}  // namespace

int main() {
  (void)kReg;
  core::Runtime rt;
  rt.EnableHomeRegistry(true);  // location-independent naming (§7)
  core::Core& registry = rt.CreateCore("registry");  // clients + homes here
  core::Core& primary = rt.CreateCore("primary");
  core::Core& standby = rt.CreateCore("standby");
  rt.network().SetDefaultLink({fargo::Millis(10), 1.25e6, true});

  std::printf("== FarGo checkpoint & crash recovery ==\n");

  // The service is born at the registry core (its *home*), then deployed
  // to the primary host.
  auto book = registry.New<OrderBook>();
  registry.Move(book, primary.id());
  rt.RunUntilIdle();

  for (int i = 0; i < 5; ++i)
    book.Call("place", {Value("order-" + std::to_string(i))});
  std::printf("placed 5 orders; book at %s\n",
              ToString(registry.ResolveLocation(book)).c_str());

  // Periodic checkpoint of the primary host.
  std::vector<std::uint8_t> checkpoint = core::SaveCoreImage(primary);
  std::printf("checkpoint taken: %zu bytes\n", checkpoint.size());

  // Two more orders arrive after the checkpoint... then the host dies.
  book.Call("place", {Value("order-5")});
  book.Call("place", {Value("order-6")});
  std::printf("orders before crash: %lld\n",
              static_cast<long long>(book.Call("count").AsInt()));
  primary.Crash();
  std::printf("primary CRASHED (no warning, no evacuation)\n");

  registry.SetRpcTimeout(fargo::Millis(300));
  try {
    book.Call("count");
  } catch (const UnreachableError& e) {
    std::printf("client sees: %s\n", e.what());
  }

  // Operator restores the checkpoint on the standby core. Install reports
  // the new location to the complet's home, healing client references.
  core::LoadCoreImage(standby, checkpoint);
  rt.RunUntilIdle();
  std::printf("checkpoint restored at standby\n");

  std::printf("client retries transparently: count = %lld "
              "(post-checkpoint orders lost, as documented)\n",
              static_cast<long long>(book.Call("count").AsInt()));
  book.Call("place", {Value("order-after-recovery")});
  std::printf("service is live again: count = %lld, served from %s\n",
              static_cast<long long>(book.Call("count").AsInt()),
              ToString(registry.ResolveLocation(book)).c_str());
  return 0;
}
