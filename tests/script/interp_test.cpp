// Script engine (§4.3): assignments, commands, rules bound to live events —
// including the paper's two-rule example script executed verbatim against a
// deployed application.
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

using script::Engine;
using script::ScriptError;

// Script rule commands (move, invoke) block by definition — the DSL is a
// conductor-side synchronous layer, so the whole suite is sim-pinned.
class InterpTest : public FargoSimTest {};

TEST_F(InterpTest, AssignmentsAndArgsBind) {
  auto cores = MakeCores(1);
  Engine engine(rt, *cores[0]);
  engine.Run("$a = %1\n$b = 7", {Value("hello")});
  EXPECT_EQ(engine.GetVar("a").AsString(), "hello");
  EXPECT_EQ(engine.GetVar("b").AsInt(), 7);
}

TEST_F(InterpTest, MissingArgThrows) {
  auto cores = MakeCores(1);
  Engine engine(rt, *cores[0]);
  EXPECT_THROW(engine.Run("$a = %2", {Value(1)}), ScriptError);
}

TEST_F(InterpTest, UndefinedVariableThrows) {
  auto cores = MakeCores(1);
  Engine engine(rt, *cores[0]);
  EXPECT_THROW(engine.Run("move $nope to $nowhere"), ScriptError);
}

TEST_F(InterpTest, TopLevelMoveByNameAndHandle) {
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("m");
  Engine engine(rt, *cores[0]);
  // Core named by its runtime name string; complet passed as %1.
  engine.Run("move %1 to core1", {Value(msg.handle())});
  EXPECT_TRUE(cores[1]->repository().Contains(msg.target()));
}

TEST_F(InterpTest, CoreOfResolvesLocations) {
  auto cores = MakeCores(2);
  auto msg = cores[1]->New<Message>("m");
  Engine engine(rt, *cores[0]);
  engine.Run("$where = coreOf %1", {Value(msg.handle())});
  EXPECT_EQ(engine.GetVar("where").AsInt(),
            static_cast<std::int64_t>(cores[1]->id().value));
}

TEST_F(InterpTest, ComletsInListsHostedComplets) {
  auto cores = MakeCores(2);
  cores[1]->New<Message>("a");
  cores[1]->New<Message>("b");
  Engine engine(rt, *cores[0]);
  engine.Run("$all = completsIn core1");
  EXPECT_EQ(engine.GetVar("all").AsList().size(), 2u);
}

TEST_F(InterpTest, MoveAListMovesEveryComplet) {
  auto cores = MakeCores(2);
  cores[0]->New<Message>("a");
  cores[0]->New<Message>("b");
  cores[0]->New<Message>("c");
  Engine engine(rt, *cores[0]);
  engine.Run("move completsIn core0 to core1");
  EXPECT_EQ(cores[1]->repository().size(), 3u);
  EXPECT_EQ(engine.moves_executed(), 3u);
}

TEST_F(InterpTest, UserRegisteredActionExtendsVocabulary) {
  auto cores = MakeCores(1);
  Engine engine(rt, *cores[0]);
  std::vector<Value> received;
  engine.RegisterAction("notify",
                        [&](Engine&, const std::vector<Value>& args) {
                          received = args;
                        });
  engine.Run("notify \"load-high\" 3");
  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0].AsString(), "load-high");
  EXPECT_EQ(received[1].AsInt(), 3);
}

TEST_F(InterpTest, UnknownActionThrows) {
  auto cores = MakeCores(1);
  Engine engine(rt, *cores[0]);
  EXPECT_THROW(engine.Run("frobnicate $x"), ScriptError);
}

TEST_F(InterpTest, ReliabilityRuleEvacuatesOnShutdown) {
  // Paper rule 1: on shutdown firedby $core listenAt $coreList do
  //                 move completsIn $core to $targetCore end
  auto cores = MakeCores(4);  // core0=admin, core1..2 watched, core3 safe
  cores[1]->New<Message>("a");
  cores[1]->New<Message>("b");
  cores[2]->New<Message>("c");

  Engine engine(rt, *cores[0]);
  engine.Run(
      "$coreList = %1\n"
      "$targetCore = %2\n"
      "on shutdown firedby $core listenAt $coreList do\n"
      "  move completsIn $core to $targetCore\n"
      "end",
      {Value(Value::List{
           Value(static_cast<std::int64_t>(cores[1]->id().value)),
           Value(static_cast<std::int64_t>(cores[2]->id().value))}),
       Value(static_cast<std::int64_t>(cores[3]->id().value))});
  EXPECT_EQ(engine.active_rules(), 1u);

  cores[1]->Shutdown(Millis(500));
  rt.RunUntilIdle();
  EXPECT_EQ(cores[3]->repository().size(), 2u);
  EXPECT_EQ(engine.rule_firings(), 1u);

  cores[2]->Shutdown(Millis(500));
  rt.RunUntilIdle();
  EXPECT_EQ(cores[3]->repository().size(), 3u);
  EXPECT_EQ(engine.rule_firings(), 2u);
}

TEST_F(InterpTest, PerformanceRuleColocatesChattyComplets) {
  // Paper rule 2: on methodInvokeRate(3) from $comps[0] to $comps[1] do
  //                 move $comps[0] to coreOf $comps[1] end
  auto cores = MakeCores(3);  // admin, source host, target host
  auto worker = cores[1]->New<Worker>();
  auto data = cores[2]->New<Data>(std::size_t{100});
  worker.Call("bind", {Value(data.handle())});

  Engine engine(rt, *cores[0]);
  engine.Run(
      "$comps = %1\n"
      "on methodInvokeRate(3) from $comps[0] to $comps[1] every 0.5 do\n"
      "  move $comps[0] to coreOf $comps[1]\n"
      "end",
      {Value(Value::List{Value(worker.handle()), Value(data.handle())})});

  // Drive ~10 invocations/second through the worker -> data reference.
  // (Bounded pumping: the rule's continuous sampler never idles.)
  for (int i = 0; i < 40; ++i) {
    worker.Call("work");
    rt.RunFor(Millis(100));
  }
  rt.RunFor(Seconds(1));
  // The rule moved the worker next to its data source.
  EXPECT_TRUE(cores[2]->repository().Contains(worker.target()));
  EXPECT_GE(engine.rule_firings(), 1u);
}

TEST_F(InterpTest, PaperScriptVerbatim) {
  // The exact script of §4.3 (both rules), with %1 %2 %3 arguments.
  const std::string paper = R"(
$coreList = %1
$targetCore = %2
$comps = %3
on shutdown firedby $core
 listenAt $coreList do
  move completsIn $core to $targetCore
end
on methodInvokeRate(3)
  from $comps[0] to $comps[1] do
 move $comps[0] to coreOf $comps[1]
end
)";
  auto cores = MakeCores(4);
  auto worker = cores[1]->New<Worker>();
  auto data = cores[2]->New<Data>(std::size_t{100});
  worker.Call("bind", {Value(data.handle())});

  Engine engine(rt, *cores[0]);
  engine.Run(paper,
             {Value(Value::List{
                  Value(static_cast<std::int64_t>(cores[1]->id().value)),
                  Value(static_cast<std::int64_t>(cores[2]->id().value))}),
              Value(static_cast<std::int64_t>(cores[3]->id().value)),
              Value(Value::List{Value(worker.handle()), Value(data.handle())})});
  EXPECT_EQ(engine.active_rules(), 2u);

  // Exercise the performance rule (bounded pumping: samplers never idle).
  for (int i = 0; i < 30; ++i) {
    worker.Call("work");
    rt.RunFor(Millis(100));
  }
  rt.RunFor(Seconds(2));
  EXPECT_TRUE(cores[2]->repository().Contains(worker.target()));

  // Exercise the reliability rule: shut core2 down; both worker and data
  // evacuate to the target core and the app stays alive.
  cores[2]->Shutdown(Millis(500));
  rt.RunFor(Seconds(1));
  EXPECT_TRUE(cores[3]->repository().Contains(worker.target()));
  EXPECT_TRUE(cores[3]->repository().Contains(data.target()));
  // Stubs whose chains pass through the dead core are severed (the paper
  // defers this to a future location-independent naming scheme); a client
  // at the safe core observes the evacuated pair working, colocated.
  auto survivor = cores[3]->RefFromHandle(
      ComletHandle{worker.target(), cores[3]->id(), "test.Worker"});
  EXPECT_EQ(survivor.Call("work").AsInt(), 100);
}

TEST_F(InterpTest, BuiltinRetypeActionChangesReferenceSemantics) {
  auto cores = MakeCores(2);
  auto worker = cores[0]->New<Worker>();
  auto data = cores[0]->New<Data>(std::size_t{10});
  worker.Call("bind", {Value(data.handle())});

  Engine engine(rt, *cores[0]);
  // NOTE: action arguments are expressions; bare identifiers are reserved
  // for command words, so the kind is a quoted string.
  engine.Run("retype %1 %2 \"pull\"",
             {Value(worker.handle()), Value(data.handle())});
  EXPECT_EQ(worker.Invoke<std::string>("refType"), "pull");
  // And it has real effect on the next move.
  cores[0]->Move(worker, cores[1]->id());
  EXPECT_TRUE(cores[1]->repository().Contains(data.target()));
}

TEST_F(InterpTest, RetypeUnknownReferenceThrows) {
  auto cores = MakeCores(1);
  auto a = cores[0]->New<Message>("a");
  auto b = cores[0]->New<Message>("b");
  Engine engine(rt, *cores[0]);
  EXPECT_THROW(engine.Run("retype %1 %2 \"pull\"",
                          {Value(a.handle()), Value(b.handle())}),
               ScriptError);
}

TEST_F(InterpTest, DetachCancelsRules) {
  auto cores = MakeCores(3);
  cores[1]->New<Message>("m");
  Engine engine(rt, *cores[0]);
  engine.Run(
      "on shutdown firedby $c listenAt core1 do\n"
      "  move completsIn $c to core2\nend");
  engine.Detach();
  EXPECT_EQ(engine.active_rules(), 0u);
  cores[1]->Shutdown(Millis(200));
  rt.RunUntilIdle();
  EXPECT_EQ(cores[2]->repository().size(), 0u);  // nothing moved
}

TEST_F(InterpTest, ThresholdBelowRuleOnBandwidth) {
  auto cores = MakeCores(3);
  auto msg = cores[1]->New<Message>("m");
  Engine engine(rt, *cores[0]);
  engine.SetVar("m", Value(msg.handle()));
  engine.Run(
      "on bandwidth(<200000) from core1 to core2 every 0.1 do\n"
      "  move $m to core0\n"
      "end");
  rt.RunFor(Seconds(1));
  EXPECT_TRUE(cores[1]->repository().Contains(msg.target()));  // healthy
  rt.network().SetLink(cores[1]->id(), cores[2]->id(),
                       net::LinkModel{Millis(5), 1e5, true});
  rt.RunFor(Seconds(2));
  EXPECT_TRUE(cores[0]->repository().Contains(msg.target()));  // reacted
}

}  // namespace
}  // namespace fargo::testing
