#include "src/script/parser.h"

#include <gtest/gtest.h>

namespace fargo::script {
namespace {

TEST(ParserTest, AssignmentsAndArgs) {
  Script s = Parse("$a = %1\n$b = \"text\"\n$c = 5");
  ASSERT_EQ(s.statements.size(), 3u);
  const auto& a = std::get<Assignment>(s.statements[0]);
  EXPECT_EQ(a.var, "a");
  EXPECT_EQ(a.value->kind, Expr::Kind::kArg);
  EXPECT_EQ(a.value->arg_index, 1);
  const auto& c = std::get<Assignment>(s.statements[2]);
  EXPECT_EQ(c.value->literal.AsInt(), 5);
}

TEST(ParserTest, TopLevelMoveCommand) {
  Script s = Parse("move $x to $y");
  const auto& cmd = std::get<Command>(s.statements.at(0));
  EXPECT_EQ(cmd.kind, Command::Kind::kMove);
  EXPECT_EQ(cmd.subject->var, "x");
  EXPECT_EQ(cmd.dest->var, "y");
}

TEST(ParserTest, LifecycleRule) {
  Script s = Parse(
      "on shutdown firedby $core listenAt $coreList do\n"
      "  move completsIn $core to $target\n"
      "end");
  const auto& rule = std::get<Rule>(s.statements.at(0));
  EXPECT_FALSE(rule.is_threshold);
  EXPECT_EQ(rule.event_name, "shutdown");
  EXPECT_EQ(rule.firedby_var, "core");
  ASSERT_NE(rule.listen_at, nullptr);
  ASSERT_EQ(rule.body.size(), 1u);
  EXPECT_EQ(rule.body[0].subject->kind, Expr::Kind::kComletsIn);
}

TEST(ParserTest, ThresholdRuleWithFromTo) {
  Script s = Parse(
      "on methodInvokeRate(3) from $comps[0] to $comps[1] do\n"
      "  move $comps[0] to coreOf $comps[1]\n"
      "end");
  const auto& rule = std::get<Rule>(s.statements.at(0));
  EXPECT_TRUE(rule.is_threshold);
  EXPECT_EQ(rule.event_name, "methodInvokeRate");
  EXPECT_DOUBLE_EQ(rule.threshold, 3.0);
  EXPECT_FALSE(rule.below);
  EXPECT_EQ(rule.from->kind, Expr::Kind::kIndex);
  EXPECT_EQ(rule.from->index, 0u);
  EXPECT_EQ(rule.body[0].dest->kind, Expr::Kind::kCoreOf);
}

TEST(ParserTest, BelowThresholdSyntax) {
  Script s = Parse("on bandwidth(<125000) from $a to $b every 2 do end");
  const auto& rule = std::get<Rule>(s.statements.at(0));
  EXPECT_TRUE(rule.below);
  EXPECT_DOUBLE_EQ(rule.threshold, 125000.0);
  EXPECT_EQ(rule.interval, Seconds(2));
  EXPECT_TRUE(rule.body.empty());
}

TEST(ParserTest, AtClauseForLoadRules) {
  Script s = Parse("on completLoad(10) at $core do log $value end");
  const auto& rule = std::get<Rule>(s.statements.at(0));
  ASSERT_NE(rule.at, nullptr);
  EXPECT_EQ(rule.body[0].kind, Command::Kind::kLog);
}

TEST(ParserTest, ListsAndIndexing) {
  Script s = Parse("$l = [1, \"two\", $x]\n$e = $l[2]");
  const auto& l = std::get<Assignment>(s.statements[0]);
  EXPECT_EQ(l.value->kind, Expr::Kind::kList);
  EXPECT_EQ(l.value->items.size(), 3u);
  const auto& e = std::get<Assignment>(s.statements[1]);
  EXPECT_EQ(e.value->kind, Expr::Kind::kIndex);
  EXPECT_EQ(e.value->index, 2u);
}

TEST(ParserTest, UserActionCommand) {
  Script s = Parse("notify $admin \"overload\" 3");
  const auto& cmd = std::get<Command>(s.statements.at(0));
  EXPECT_EQ(cmd.kind, Command::Kind::kAction);
  EXPECT_EQ(cmd.action, "notify");
  EXPECT_EQ(cmd.args.size(), 3u);
}

TEST(ParserTest, PaperScriptParsesCompletely) {
  const std::string paper = R"(
$coreList = %1
$targetCore = %2
$comps = %3
on shutdown firedby $core
 listenAt $coreList do
  move completsIn $core to $targetCore
end
on methodInvokeRate(3)
  from $comps[0] to $comps[1] do
 move $comps[0] to coreOf $comps[1]
end
)";
  Script s = Parse(paper);
  ASSERT_EQ(s.statements.size(), 5u);  // 3 assigns + 2 rules
  EXPECT_FALSE(std::get<Rule>(s.statements[3]).is_threshold);
  EXPECT_TRUE(std::get<Rule>(s.statements[4]).is_threshold);
}

// -- syntax error coverage ------------------------------------------------------

struct BadCase {
  const char* name;
  const char* src;
};
class ParserErrorTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(ParserErrorTest, Throws) {
  EXPECT_THROW(Parse(GetParam().src), ScriptError);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(
        BadCase{"missing_end", "on shutdown listenAt $l do move $a to $b"},
        BadCase{"missing_do", "on shutdown listenAt $l move $a to $b end"},
        BadCase{"threshold_no_paren", "on methodInvokeRate from $a to $b do end"},
        BadCase{"threshold_no_subject", "on methodInvokeRate(3) do end"},
        BadCase{"lifecycle_no_listenat", "on shutdown do end"},
        BadCase{"move_without_to", "move $a $b"},
        BadCase{"bad_interval", "on completLoad(1) at $c every 0 do end"},
        BadCase{"dangling_index", "$a = $b["}),
    [](const ::testing::TestParamInfo<BadCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace fargo::script
