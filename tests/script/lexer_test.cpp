#include "src/script/lexer.h"

#include <gtest/gtest.h>

namespace fargo::script {
namespace {

std::vector<TokenKind> Kinds(const std::string& src) {
  std::vector<TokenKind> kinds;
  for (const Token& t : Lex(src)) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, EmptyScriptIsJustEof) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

TEST(LexerTest, VariablesArgsAndIdents) {
  auto tokens = Lex("$coreList = %1 move");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kVar);
  EXPECT_EQ(tokens[0].text, "coreList");
  EXPECT_EQ(tokens[1].kind, TokenKind::kAssign);
  EXPECT_EQ(tokens[2].kind, TokenKind::kArg);
  EXPECT_EQ(tokens[2].number, 1.0);
  EXPECT_EQ(tokens[3].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[3].text, "move");
}

TEST(LexerTest, NumbersIncludingScientific) {
  auto tokens = Lex("3 2.5 1e6 1.5e-3");
  EXPECT_DOUBLE_EQ(tokens[0].number, 3);
  EXPECT_DOUBLE_EQ(tokens[1].number, 2.5);
  EXPECT_DOUBLE_EQ(tokens[2].number, 1e6);
  EXPECT_DOUBLE_EQ(tokens[3].number, 1.5e-3);
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Lex("\"hello\\nworld\" \"a\\\"b\"");
  EXPECT_EQ(tokens[0].text, "hello\nworld");
  EXPECT_EQ(tokens[1].text, "a\"b");
}

TEST(LexerTest, CommentsAreSkipped) {
  auto kinds = Kinds("# whole line\nmove // trailing\nend");
  EXPECT_EQ(kinds, (std::vector<TokenKind>{TokenKind::kIdent,
                                           TokenKind::kIdent,
                                           TokenKind::kEof}));
}

TEST(LexerTest, PunctuationAndIndexing) {
  auto kinds = Kinds("$comps[0] ( ) < ,");
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kVar, TokenKind::kLBracket, TokenKind::kNumber,
                TokenKind::kRBracket, TokenKind::kLParen, TokenKind::kRParen,
                TokenKind::kLess, TokenKind::kComma, TokenKind::kEof}));
}

TEST(LexerTest, LineNumbersAreTracked) {
  auto tokens = Lex("a\nb\n\nc");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 4);
}

TEST(LexerTest, ErrorsCarryLineInfo) {
  try {
    Lex("ok\n ^bad");
    FAIL() << "expected ScriptError";
  } catch (const ScriptError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(LexerTest, UnterminatedStringThrows) {
  EXPECT_THROW(Lex("\"never ends"), ScriptError);
}

TEST(LexerTest, EmptyVariableNameThrows) {
  EXPECT_THROW(Lex("$ = 1"), ScriptError);
}

TEST(LexerTest, PaperScriptLexes) {
  const std::string paper = R"(
$coreList = %1
$targetCore = %2
$comps = %3
on shutdown firedby $core
 listenAt $coreList do
  move completsIn $core to $targetCore
end
on methodInvokeRate(3)
  from $comps[0] to $comps[1] do
 move $comps[0] to coreOf $comps[1]
end
)";
  auto tokens = Lex(paper);
  EXPECT_GT(tokens.size(), 30u);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEof);
}

}  // namespace
}  // namespace fargo::script
