// Additional script-rule coverage: lifecycle kinds beyond shutdown,
// bindings in rule bodies, log, intervals, multiple engines.
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

using script::Engine;

class ScriptRulesTest : public FargoTest {};

TEST_F(ScriptRulesTest, CompletArrivedRuleSeesTheComlet) {
  // Pin every complet arriving at core1 straight back to core2 — a
  // quarantine rule using the $comlet binding.
  auto cores = MakeCores(3);
  Engine engine(rt, *cores[0]);
  engine.Run(
      "on completArrived firedby $c listenAt core1 do\n"
      "  move $comlet to core2\n"
      "end");
  auto msg = cores[0]->New<Message>("wanderer");
  cores[0]->Move(msg, cores[1]->id());
  rt.RunUntilIdle();
  EXPECT_TRUE(cores[2]->repository().Contains(msg.target()));
  EXPECT_GE(engine.rule_firings(), 1u);
}

TEST_F(ScriptRulesTest, DepartedRuleFires) {
  auto cores = MakeCores(3);
  Engine engine(rt, *cores[0]);
  int logged = 0;
  engine.RegisterAction("tally", [&](Engine&, const std::vector<Value>&) {
    ++logged;
  });
  engine.Run("on completDeparted listenAt core1 do tally end");
  auto msg = cores[1]->New<Message>("m");
  cores[1]->Move(msg, cores[2]->id());
  rt.RunUntilIdle();
  EXPECT_EQ(logged, 1);
}

TEST_F(ScriptRulesTest, ListenAtListSubscribesEverywhere) {
  auto cores = MakeCores(4);
  Engine engine(rt, *cores[0]);
  int fired = 0;
  engine.RegisterAction("tally", [&](Engine&, const std::vector<Value>&) {
    ++fired;
  });
  engine.Run("on completArrived listenAt [core1, core2, core3] do tally end");
  cores[1]->New<Message>("a");
  cores[2]->New<Message>("b");
  cores[3]->New<Message>("c");
  rt.RunUntilIdle();
  EXPECT_EQ(fired, 3);
}

TEST_F(ScriptRulesTest, ThresholdRuleBindsValue) {
  auto cores = MakeCores(2);
  Engine engine(rt, *cores[0]);
  double seen = -1;
  engine.RegisterAction("record", [&](Engine&, const std::vector<Value>& a) {
    seen = a.at(0).AsReal();
  });
  engine.Run("on completLoad(1.5) at core1 every 0.05 do record $value end");
  cores[1]->New<Message>("a");
  cores[1]->New<Message>("b");
  rt.RunFor(Seconds(1));
  EXPECT_GT(seen, 1.5);
}

TEST_F(ScriptRulesTest, TwoEnginesCoexist) {
  auto cores = MakeCores(3);
  Engine reliability(rt, *cores[0]);
  Engine performance(rt, *cores[0]);
  int r = 0, p = 0;
  reliability.RegisterAction("r", [&](Engine&, const std::vector<Value>&) {
    ++r;
  });
  performance.RegisterAction("p", [&](Engine&, const std::vector<Value>&) {
    ++p;
  });
  reliability.Run("on completArrived listenAt core1 do r end");
  performance.Run("on completArrived listenAt core1 do p end");
  cores[1]->New<Message>("m");
  rt.RunUntilIdle();
  EXPECT_EQ(r, 1);
  EXPECT_EQ(p, 1);
  reliability.Detach();
  cores[1]->New<Message>("n");
  rt.RunUntilIdle();
  EXPECT_EQ(r, 1);  // detached
  EXPECT_EQ(p, 2);  // still live
}

TEST_F(ScriptRulesTest, RuleBodyErrorsAreContained) {
  // A failing command in a rule body must not kill the engine or the core.
  auto cores = MakeCores(2);
  Engine engine(rt, *cores[0]);
  engine.Run(
      "on completArrived listenAt core1 do\n"
      "  move $undefined_var to core0\n"
      "end");
  cores[1]->New<Message>("m");
  rt.RunUntilIdle();  // logs a warning, continues
  EXPECT_EQ(engine.rule_firings(), 1u);
  cores[1]->New<Message>("n");
  rt.RunUntilIdle();
  EXPECT_EQ(engine.rule_firings(), 2u);  // still firing
}

TEST_F(ScriptRulesTest, InFlightNotificationAfterEngineDeathIsSafe) {
  // An event fired (scheduled) before the engine is destroyed must become
  // a no-op, not a use-after-free.
  auto cores = MakeCores(2);
  {
    Engine engine(rt, *cores[0]);
    engine.Run(
        "on completArrived listenAt core1 do move $comlet to core0 end");
    cores[1]->New<Message>("m");  // notification now scheduled
    // engine destroyed here with the notification still in flight
  }
  rt.RunUntilIdle();
  EXPECT_EQ(cores[0]->repository().size(), 0u);  // rule never ran
}

TEST_F(ScriptRulesTest, LogCommandPrintsValues) {
  auto cores = MakeCores(1);
  Engine engine(rt, *cores[0]);
  // Just exercise the path (stdout); no crash, vars resolve.
  engine.Run("$x = 42\nlog $x\nlog \"hello\"");
  SUCCEED();
}

TEST_F(ScriptRulesTest, PeriodicRuleRunsOnATimer) {
  // Standalone periodic rule: every 0.5 simulated seconds, sweep core1's
  // complets to core2 (a cron-style rebalance policy).
  auto cores = MakeCores(3);
  Engine engine(rt, *cores[0]);
  int ticks = 0;
  engine.RegisterAction("tick", [&](Engine&, const std::vector<Value>&) {
    ++ticks;
  });
  engine.Run(
      "every 0.5 do\n"
      "  tick\n"
      "  move completsIn core1 to core2\n"
      "end");
  EXPECT_EQ(engine.active_rules(), 1u);
  cores[1]->New<Message>("a");
  rt.RunFor(Seconds(2));
  // Fixed-delay timer: the body's own latency (the move's round trip)
  // drifts the period slightly, so 3-4 firings in 2 s.
  EXPECT_GE(ticks, 3);
  EXPECT_LE(ticks, 4);
  EXPECT_EQ(cores[2]->repository().size(), 1u);

  engine.Detach();
  const int at_detach = ticks;
  rt.RunFor(Seconds(2));
  EXPECT_EQ(ticks, at_detach);  // timer stopped with the rules
}

TEST_F(ScriptRulesTest, PeriodicRuleRejectsBadInterval) {
  auto cores = MakeCores(1);
  Engine engine(rt, *cores[0]);
  EXPECT_THROW(engine.Run("every 0 do end"), script::ScriptError);
}

TEST_F(ScriptRulesTest, VariablesSetByHostAreVisible) {
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("m");
  Engine engine(rt, *cores[0]);
  engine.SetVar("target", Value(msg.handle()));
  engine.Run("move $target to core1");
  EXPECT_TRUE(cores[1]->repository().Contains(msg.target()));
}

}  // namespace
}  // namespace fargo::testing
