// Script front-end robustness: arbitrary input must either parse or raise
// ScriptError — never crash or hang.
#include <gtest/gtest.h>

#include <random>

#include "src/script/parser.h"

namespace fargo::script {
namespace {

class ScriptFuzzTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ScriptFuzzTest, RandomBytesNeverCrashTheLexer) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    std::string src(rng() % 200, ' ');
    for (char& c : src) c = static_cast<char>(rng() % 128);
    try {
      (void)Lex(src);
    } catch (const ScriptError&) {
    }
  }
}

TEST_P(ScriptFuzzTest, RandomTokenSoupNeverCrashesTheParser) {
  std::mt19937 rng(GetParam());
  const std::vector<std::string> words = {
      "on",     "do",        "end",   "move",  "to",      "from",
      "firedby", "listenAt", "coreOf", "completsIn", "every", "at",
      "$x",     "%1",        "3",     "(",     ")",       "[",
      "]",      "<",         ",",     "=",     "\"s\"",   "shutdown",
      "methodInvokeRate",    "log",   "ident",
  };
  for (int trial = 0; trial < 500; ++trial) {
    std::string src;
    const std::size_t n = rng() % 25;
    for (std::size_t i = 0; i < n; ++i)
      src += words[rng() % words.size()] + " ";
    try {
      (void)Parse(src);
    } catch (const ScriptError&) {
    }
  }
}

TEST_P(ScriptFuzzTest, MutatedValidScriptNeverCrashes) {
  std::mt19937 rng(GetParam());
  const std::string valid =
      "$a = %1\n"
      "on shutdown firedby $c listenAt $a do\n"
      "  move completsIn $c to $a\n"
      "end\n"
      "on methodInvokeRate(3) from $a to $a do move $a to coreOf $a end\n";
  for (int trial = 0; trial < 300; ++trial) {
    std::string src = valid;
    const int edits = 1 + static_cast<int>(rng() % 5);
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng() % src.size();
      switch (rng() % 3) {
        case 0:
          src[pos] = static_cast<char>(32 + rng() % 95);
          break;
        case 1:
          src.erase(pos, 1);
          break;
        default:
          src.insert(pos, 1, static_cast<char>(32 + rng() % 95));
      }
    }
    try {
      (void)Parse(src);
    } catch (const ScriptError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScriptFuzzTest,
                         ::testing::Values(5u, 17u, 99u));

}  // namespace
}  // namespace fargo::script
