#include "src/serial/bytes.h"

#include <gtest/gtest.h>

#include <limits>
#include <random>

namespace fargo::serial {
namespace {

TEST(BytesTest, VarintRoundTripBoundaries) {
  Writer w;
  std::vector<std::uint64_t> values = {
      0,       1,       127,        128,
      16383,   16384,   0xffffffff, std::numeric_limits<std::uint64_t>::max()};
  for (auto v : values) w.WriteVarint(v);
  Reader r(w.buffer());
  for (auto v : values) EXPECT_EQ(r.ReadVarint(), v);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, SignedZigZagRoundTrip) {
  Writer w;
  std::vector<std::int64_t> values = {
      0,  -1, 1, -64, 64, std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max()};
  for (auto v : values) w.WriteInt(v);
  Reader r(w.buffer());
  for (auto v : values) EXPECT_EQ(r.ReadInt(), v);
}

TEST(BytesTest, SmallMagnitudeSignedIntsAreCompact) {
  Writer w;
  w.WriteInt(-1);
  EXPECT_EQ(w.size(), 1u);  // zig-zag: -1 -> 1
}

TEST(BytesTest, DoublesAreExact) {
  Writer w;
  std::vector<double> values = {0.0, -0.0, 1.5, -3.25e300, 1e-300,
                                std::numeric_limits<double>::infinity()};
  for (double v : values) w.WriteDouble(v);
  Reader r(w.buffer());
  for (double v : values) EXPECT_EQ(r.ReadDouble(), v);
}

TEST(BytesTest, StringsAndBytesRoundTrip) {
  Writer w;
  w.WriteString("");
  w.WriteString("hello\0world");  // embedded NUL cut by literal, still fine
  std::string s(1000, 'x');
  w.WriteString(s);
  std::vector<std::uint8_t> b{0, 1, 2, 255};
  w.WriteBytes(b);
  Reader r(w.buffer());
  EXPECT_EQ(r.ReadString(), "");
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadString(), s);
  EXPECT_EQ(r.ReadBytes(), b);
}

TEST(BytesTest, TruncatedReadsThrow) {
  Writer w;
  w.WriteString("hello");
  std::vector<std::uint8_t> buf = w.buffer();
  buf.pop_back();
  Reader r(buf);
  EXPECT_THROW(r.ReadString(), SerialError);
}

TEST(BytesTest, ReadPastEndThrows) {
  Reader r(nullptr, 0);
  EXPECT_THROW(r.ReadU8(), SerialError);
  EXPECT_THROW(r.ReadDouble(), SerialError);
}

TEST(BytesTest, HugeLengthPrefixIsRejected) {
  Writer w;
  w.WriteVarint(std::numeric_limits<std::uint64_t>::max());
  Reader r(w.buffer());
  EXPECT_THROW(r.ReadBytes(), SerialError);
}

TEST(BytesTest, MalformedVarintIsRejected) {
  std::vector<std::uint8_t> buf(11, 0x80);  // never terminates in 10 bytes
  Reader r(buf);
  EXPECT_THROW(r.ReadVarint(), SerialError);
}

// Property-style randomized round-trip sweep.
class BytesPropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BytesPropertyTest, RandomSequenceRoundTrips) {
  std::mt19937_64 rng(GetParam());
  Writer w;
  std::vector<std::int64_t> ints;
  std::vector<std::string> strs;
  for (int i = 0; i < 200; ++i) {
    std::int64_t v = static_cast<std::int64_t>(rng());
    ints.push_back(v);
    w.WriteInt(v);
    std::string s(rng() % 50, static_cast<char>('a' + rng() % 26));
    strs.push_back(s);
    w.WriteString(s);
  }
  Reader r(w.buffer());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(r.ReadInt(), ints[static_cast<std::size_t>(i)]);
    EXPECT_EQ(r.ReadString(), strs[static_cast<std::size_t>(i)]);
  }
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytesPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

}  // namespace
}  // namespace fargo::serial
