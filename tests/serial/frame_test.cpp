// Batch-frame codec battery: golden layouts, strict-reader rejection of
// malformed frames, and a seeded round-trip fuzz (truncation, bit flips,
// marker collisions, oversized items). The read side's contract is that a
// corrupt frame NEVER smears bad items into dispatch — every failure mode
// must surface as SerialError (or an explicitly incomplete Exhausted()),
// never as a quietly wrong item.
#include "src/serial/frame.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "src/serial/bytes.h"

namespace fargo::serial {
namespace {

std::vector<std::uint8_t> Item(std::initializer_list<std::uint8_t> b) {
  return std::vector<std::uint8_t>(b);
}

std::vector<std::vector<std::uint8_t>> ReadAll(
    const std::vector<std::uint8_t>& frame) {
  FrameReader r(frame);
  std::vector<std::vector<std::uint8_t>> items;
  while (r.HasNext()) {
    Reader item = r.Next();
    std::vector<std::uint8_t> bytes;
    while (!item.AtEnd()) bytes.push_back(item.ReadU8());
    items.push_back(std::move(bytes));
  }
  EXPECT_TRUE(r.Exhausted());
  return items;
}

TEST(FrameTest, RoundTripsItemsInOrder) {
  FrameWriter w;
  w.Add(Item({1, 2, 3}));
  w.Add(Item({}));
  w.Add(Item({0xff}));
  EXPECT_EQ(w.item_count(), 3u);
  const std::vector<std::uint8_t> frame = w.Finish();
  const auto items = ReadAll(frame);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], Item({1, 2, 3}));
  EXPECT_EQ(items[1], Item({}));
  EXPECT_EQ(items[2], Item({0xff}));
}

TEST(FrameTest, GoldenLayoutOfATwoItemFrame) {
  // Pin the exact wire bytes: marker 'F', count, then per item marker 'I',
  // varint length, payload. Any codec change that breaks this breaks mixed
  // wire versions and must be deliberate.
  FrameWriter w;
  w.Add(Item({0xaa, 0xbb}));
  w.Add(Item({0xcc}));
  const std::vector<std::uint8_t> frame = w.Finish();
  const std::vector<std::uint8_t> expected = {
      0x46, 0x02,              // 'F', 2 items
      0x49, 0x02, 0xaa, 0xbb,  // 'I', len 2, payload
      0x49, 0x01, 0xcc,        // 'I', len 1, payload
  };
  EXPECT_EQ(frame, expected);
}

TEST(FrameTest, FrameSizePredictsFinishExactly) {
  {
    FrameWriter w;
    EXPECT_EQ(w.frame_size(), w.Finish().size());  // empty frame
  }
  std::mt19937 rng(7);
  for (int round = 0; round < 20; ++round) {
    FrameWriter w;
    const std::size_t n = rng() % 6;
    for (std::size_t i = 0; i < n; ++i) {
      // Sizes straddle the 1-byte/2-byte varint-length boundary.
      std::vector<std::uint8_t> item(rng() % 400, 0x5a);
      w.Add(item);
    }
    const std::size_t predicted = w.frame_size();
    EXPECT_EQ(predicted, w.Finish().size());
  }
}

TEST(FrameTest, FinishLeavesTheWriterEmptyAndReusable) {
  FrameWriter w;
  w.Add(Item({1}));
  const std::size_t first_size = w.frame_size();
  const std::vector<std::uint8_t> first = w.Finish();
  EXPECT_EQ(first.size(), first_size);
  EXPECT_EQ(w.item_count(), 0u);
  w.Add(Item({2, 3}));
  const auto items = ReadAll(w.Finish());
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0], Item({2, 3}));
}

TEST(FrameTest, PayloadBytesEqualToMarkersDoNotConfuseFraming) {
  // Items are length-prefixed: payloads made entirely of 'F'/'I' marker
  // bytes must ride through untouched (no sentinel scanning).
  FrameWriter w;
  w.Add(Item({kFrameMarker, kFrameMarker}));
  w.Add(Item({kItemMarker, kItemMarker, kItemMarker}));
  const auto items = ReadAll(w.Finish());
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0], Item({kFrameMarker, kFrameMarker}));
  EXPECT_EQ(items[1], Item({kItemMarker, kItemMarker, kItemMarker}));
}

TEST(FrameTest, RejectsWrongFrameMarker) {
  FrameWriter w;
  w.Add(Item({1}));
  std::vector<std::uint8_t> frame = w.Finish();
  frame[0] = 0x58;  // not 'F'
  EXPECT_THROW(FrameReader r(frame), SerialError);
}

TEST(FrameTest, RejectsWrongItemMarker) {
  FrameWriter w;
  w.Add(Item({1}));
  w.Add(Item({2}));
  std::vector<std::uint8_t> frame = w.Finish();
  frame[2] = 0x00;  // first item's 'I'
  FrameReader r(frame);
  EXPECT_THROW(r.Next(), SerialError);
}

TEST(FrameTest, RejectsOversizedItemLength) {
  // An item that declares more bytes than the frame holds must throw, not
  // read out of bounds.
  std::vector<std::uint8_t> frame = {0x46, 0x01, 0x49, 0x7f, 0x01};
  FrameReader r(frame);
  EXPECT_THROW(r.Next(), SerialError);
}

TEST(FrameTest, ReadingPastTheLastItemThrows) {
  FrameWriter w;
  w.Add(Item({1}));
  const std::vector<std::uint8_t> frame = w.Finish();
  FrameReader r(frame);
  r.Next();
  EXPECT_FALSE(r.HasNext());
  EXPECT_THROW(r.Next(), SerialError);
}

TEST(FrameTest, TrailingGarbageIsDetectable) {
  FrameWriter w;
  w.Add(Item({1}));
  std::vector<std::uint8_t> frame = w.Finish();
  frame.push_back(0xde);
  FrameReader r(frame);
  r.Next();
  EXPECT_FALSE(r.Exhausted()) << "trailing bytes went unnoticed";
}

TEST(FrameTest, EmptyBufferIsNotAFrame) {
  std::vector<std::uint8_t> empty;
  EXPECT_THROW(FrameReader r(empty), SerialError);
}

// ---- Fuzz -------------------------------------------------------------------

class FrameFuzzTest : public ::testing::TestWithParam<std::uint32_t> {};

std::vector<std::uint8_t> RandomFrame(
    std::mt19937& rng, std::vector<std::vector<std::uint8_t>>* items_out) {
  FrameWriter w;
  const std::size_t n = rng() % 9;  // includes the empty frame
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::uint8_t> item(rng() % 300);
    for (std::uint8_t& b : item) b = static_cast<std::uint8_t>(rng());
    w.Add(item);
    if (items_out != nullptr) items_out->push_back(std::move(item));
  }
  return w.Finish();
}

TEST_P(FrameFuzzTest, RandomFramesRoundTrip) {
  std::mt19937 rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::vector<std::vector<std::uint8_t>> expected;
    const std::vector<std::uint8_t> frame = RandomFrame(rng, &expected);
    EXPECT_EQ(ReadAll(frame), expected);
  }
}

TEST_P(FrameFuzzTest, EveryTruncationThrowsOrReadsFewerItems) {
  // Chopping a valid frame anywhere must never fabricate an item: the
  // reader either throws or stops early with Exhausted() false.
  std::mt19937 rng(GetParam() ^ 0xf00du);
  std::vector<std::vector<std::uint8_t>> expected;
  const std::vector<std::uint8_t> frame = RandomFrame(rng, &expected);
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    std::vector<std::uint8_t> prefix(frame.begin(),
                                     frame.begin() + static_cast<long>(cut));
    std::size_t seen = 0;
    bool threw = false;
    try {
      FrameReader r(prefix);
      while (r.HasNext()) {
        Reader item = r.Next();
        const std::vector<std::uint8_t>& want = expected[seen];
        for (std::size_t i = 0; i < want.size(); ++i)
          ASSERT_EQ(item.ReadU8(), want[i]) << "cut=" << cut;
        ++seen;
      }
      EXPECT_FALSE(r.Exhausted()) << "cut=" << cut;
    } catch (const SerialError&) {
      threw = true;
    }
    EXPECT_TRUE(threw || seen < expected.size()) << "cut=" << cut;
  }
}

TEST_P(FrameFuzzTest, SingleByteCorruptionNeverEscapesDetectionSilently) {
  // Flip one byte at a time. The reader may legitimately still succeed
  // (the flip landed inside a payload) — but it must never crash, hang,
  // or return a different number of bytes than the frame declares. Under
  // ASan this is also an out-of-bounds probe.
  std::mt19937 rng(GetParam() ^ 0xbeefu);
  std::vector<std::uint8_t> frame = RandomFrame(rng, nullptr);
  for (std::size_t pos = 0; pos < frame.size(); ++pos) {
    std::vector<std::uint8_t> mutated = frame;
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng() % 255);
    try {
      FrameReader r(mutated);
      while (r.HasNext()) {
        Reader item = r.Next();
        while (!item.AtEnd()) item.ReadU8();
      }
    } catch (const SerialError&) {
      // Detected — the contract.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameFuzzTest,
                         ::testing::Values(11u, 1973u, 555u, 31337u));

}  // namespace
}  // namespace fargo::serial
