// Object-graph marshaling: polymorphism, aliasing, cycles, hooks.
#include "src/serial/graph.h"

#include <gtest/gtest.h>

#include "tests/support/comlets.h"

namespace fargo::testing {
namespace {

using serial::GraphReader;
using serial::GraphWriter;
using serial::Reader;
using serial::SerialError;
using serial::Writer;

std::shared_ptr<TreeNode> MakeNode(std::int64_t v) {
  auto n = std::make_shared<TreeNode>();
  n->value = v;
  return n;
}

class GraphTest : public ::testing::Test {
 protected:
  GraphTest() { RegisterTestComlets(); }
};

TEST_F(GraphTest, NullObjectRoundTrips) {
  Writer w;
  GraphWriter gw(w);
  gw.WriteObject(static_cast<const serial::Serializable*>(nullptr));
  Reader r(w.buffer());
  GraphReader gr(r);
  EXPECT_EQ(gr.ReadObject(), nullptr);
}

TEST_F(GraphTest, TreeRoundTripsByTypeName) {
  auto root = MakeNode(1);
  root->left = MakeNode(2);
  root->right = MakeNode(3);
  root->left->left = MakeNode(4);

  Writer w;
  GraphWriter gw(w);
  gw.WriteObject(root.get());

  Reader r(w.buffer());
  GraphReader gr(r);
  auto copy = gr.ReadObjectAs<TreeNode>();
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->value, 1);
  EXPECT_EQ(copy->left->value, 2);
  EXPECT_EQ(copy->right->value, 3);
  EXPECT_EQ(copy->left->left->value, 4);
  EXPECT_EQ(copy->right->left, nullptr);
}

TEST_F(GraphTest, AliasedSubobjectsKeepIdentity) {
  auto shared = MakeNode(7);
  auto root = MakeNode(1);
  root->left = shared;
  root->right = shared;

  Writer w;
  GraphWriter gw(w);
  gw.WriteObject(root.get());

  Reader r(w.buffer());
  GraphReader gr(r);
  auto copy = gr.ReadObjectAs<TreeNode>();
  EXPECT_EQ(copy->left, copy->right);  // one object, two edges
  copy->left->value = 99;
  EXPECT_EQ(copy->right->value, 99);
}

TEST_F(GraphTest, CyclesSurvive) {
  auto a = MakeNode(1);
  auto b = MakeNode(2);
  a->left = b;
  b->left = a;  // cycle

  Writer w;
  GraphWriter gw(w);
  gw.WriteObject(a.get());

  Reader r(w.buffer());
  GraphReader gr(r);
  auto copy = gr.ReadObjectAs<TreeNode>();
  ASSERT_NE(copy->left, nullptr);
  EXPECT_EQ(copy->left->left, copy);

  // shared_ptr cycles don't self-collect (no tracing GC here, unlike the
  // paper's Java): break them so LeakSanitizer stays quiet.
  b->left.reset();
  copy->left->left.reset();
}

TEST_F(GraphTest, SharedWritesAreCompact) {
  // Writing the same large object twice must not duplicate its bytes.
  auto big = MakeNode(0);
  for (int i = 0; i < 100; ++i) {
    auto child = MakeNode(i);
    child->left = big->left;
    big->left = child;
  }
  auto root = MakeNode(1);
  root->left = big;
  root->right = big;

  Writer w1;
  GraphWriter gw1(w1);
  gw1.WriteObject(big.get());
  const std::size_t once = w1.size();

  Writer w2;
  GraphWriter gw2(w2);
  gw2.WriteObject(root.get());
  EXPECT_LT(w2.size(), 2 * once);
}

TEST_F(GraphTest, UnregisteredTypeThrowsOnRead) {
  class Unregistered : public serial::Serializable {
   public:
    std::string_view TypeName() const override { return "test.Unregistered"; }
    void Serialize(GraphWriter&) const override {}
    void Deserialize(GraphReader&) override {}
  };
  Unregistered u;
  Writer w;
  GraphWriter gw(w);
  gw.WriteObject(&u);
  Reader r(w.buffer());
  GraphReader gr(r);
  EXPECT_THROW(gr.ReadObject(), SerialError);
}

TEST_F(GraphTest, WrongRequestedTypeThrows) {
  auto node = MakeNode(1);
  Writer w;
  GraphWriter gw(w);
  gw.WriteObject(node.get());
  Reader r(w.buffer());
  GraphReader gr(r);
  EXPECT_THROW(gr.ReadObjectAs<Message>(), SerialError);
}

TEST_F(GraphTest, CorruptTagThrows) {
  std::vector<std::uint8_t> buf{17};
  Reader r(buf);
  GraphReader gr(r);
  EXPECT_THROW(gr.ReadObject(), SerialError);
}

TEST_F(GraphTest, ComletRefWithoutHookThrows) {
  // Serializing a graph containing a complet reference outside a Core
  // marshal context must fail loudly, not silently drop the reference.
  core::Runtime rt;
  core::Core& c = rt.CreateCore("c");
  auto counter = c.New<Counter>();
  auto node = MakeNode(1);
  node->counter = counter;

  Writer w;
  GraphWriter gw(w);  // no ref hook installed
  EXPECT_THROW(gw.WriteObject(node.get()), SerialError);
}

TEST_F(GraphTest, HookReceivesEveryEmbeddedRef) {
  core::Runtime rt;
  core::Core& c = rt.CreateCore("c");
  auto counter = c.New<Counter>();
  auto node = MakeNode(1);
  node->counter = counter;
  node->left = MakeNode(2);
  node->left->counter = counter;

  int hook_calls = 0;
  Writer w;
  GraphWriter gw(w, [&](GraphWriter& g, const void*) {
    ++hook_calls;
    g.raw().WriteBool(false);  // encode as unbound
  });
  gw.WriteObject(node.get());
  EXPECT_EQ(hook_calls, 2);
}

}  // namespace
}  // namespace fargo::testing
