// Robustness property tests: randomly corrupted or truncated wire data
// must raise SerialError (or decode to something) — never crash, hang, or
// over-read.
#include <gtest/gtest.h>

#include <random>

#include "src/core/wire.h"
#include "src/serial/value_codec.h"
#include "tests/support/comlets.h"

namespace fargo::testing {
namespace {

Value SampleValue() {
  Value::Map m;
  m["list"] = Value(Value::List{Value(1), Value("two"), Value(3.5)});
  m["handle"] =
      Value(ComletHandle{ComletId{CoreId{3}, 9}, CoreId{1}, "test.Message"});
  m["bytes"] = Value(std::vector<std::uint8_t>(100, 0x5a));
  m["blob"] = Value(ObjectBlob{"test.TreeNode", {1, 2, 3, 4}});
  return Value(std::move(m));
}

std::vector<std::uint8_t> SampleGraphBytes() {
  RegisterTestComlets();
  auto root = std::make_shared<TreeNode>();
  root->value = 42;
  root->left = std::make_shared<TreeNode>();
  root->right = root->left;  // aliasing
  root->left->value = 7;
  serial::Writer w;
  serial::GraphWriter gw(w);
  gw.WriteObject(root.get());
  return w.Take();
}

class CorruptionTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CorruptionTest, MutatedValueBytesNeverCrash) {
  std::mt19937 rng(GetParam());
  const std::vector<std::uint8_t> clean = serial::EncodeValue(SampleValue());
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> bytes = clean;
    // Flip 1-4 random bytes.
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f)
      bytes[rng() % bytes.size()] = static_cast<std::uint8_t>(rng());
    try {
      Value v = serial::DecodeValue(bytes);
      (void)v.ToDebugString();  // whatever decoded must be traversable
    } catch (const serial::SerialError&) {
      // rejected: fine
    } catch (const TypeError&) {
      // decoded into a shape the accessors reject: fine
    }
  }
}

TEST_P(CorruptionTest, TruncatedValueBytesNeverCrash) {
  std::mt19937 rng(GetParam());
  const std::vector<std::uint8_t> clean = serial::EncodeValue(SampleValue());
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> bytes = clean;
    bytes.resize(rng() % bytes.size());
    try {
      (void)serial::DecodeValue(bytes);
    } catch (const serial::SerialError&) {
    }
  }
}

TEST_P(CorruptionTest, MutatedGraphBytesNeverCrash) {
  std::mt19937 rng(GetParam());
  const std::vector<std::uint8_t> clean = SampleGraphBytes();
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> bytes = clean;
    bytes[rng() % bytes.size()] = static_cast<std::uint8_t>(rng());
    serial::Reader r(bytes);
    serial::GraphReader gr(r);
    try {
      (void)gr.ReadObject();
    } catch (const serial::SerialError&) {
    } catch (const std::bad_alloc&) {
      // absurd length prefixes may be caught by the allocator before the
      // bounds check; acceptable rejection
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---- extended invocation wire format (optional trace tail) ------------------

core::wire::InvokeRequest SampleRequest(bool traced) {
  core::wire::InvokeRequest rq;
  rq.handle = ComletHandle{ComletId{CoreId{3}, 9}, CoreId{1}, "test.Counter"};
  rq.method = "apply";
  rq.args = {Value(std::int64_t{17}), Value("payload")};
  rq.origin = CoreId{4};
  rq.path = {CoreId{1}, CoreId{2}};
  if (traced)
    rq.trace = core::wire::TraceContext{0x400000000001, 0x400000000002,
                                        0x400000000001, 2};
  return rq;
}

TEST(InvokeWireTest, RoundTripsWithAndWithoutTraceTail) {
  for (bool traced : {false, true}) {
    const core::wire::InvokeRequest rq = SampleRequest(traced);
    const core::wire::InvokeRequest back =
        core::wire::DecodeInvokeRequest(core::wire::EncodeInvokeRequest(rq));
    EXPECT_EQ(back, rq) << "traced=" << traced;
    EXPECT_EQ(back.trace.valid(), traced);
  }
}

TEST(InvokeWireTest, UntracedEncodingIsByteIdenticalToOldFormat) {
  // An invalid context writes no tail at all, so pre-tracing peers see the
  // exact bytes they always did — and a payload that stops where the old
  // format stopped decodes to an invalid (all-zero) context.
  core::wire::InvokeRequest rq = SampleRequest(true);
  const std::vector<std::uint8_t> traced = core::wire::EncodeInvokeRequest(rq);
  rq.trace = core::wire::TraceContext{};
  const std::vector<std::uint8_t> old = core::wire::EncodeInvokeRequest(rq);
  EXPECT_LT(old.size(), traced.size());
  // The tail is a strict suffix: everything an old decoder reads is
  // untouched by the extension.
  EXPECT_TRUE(std::equal(old.begin(), old.end(), traced.begin()));

  const core::wire::InvokeRequest back = core::wire::DecodeInvokeRequest(old);
  EXPECT_FALSE(back.trace.valid());
  EXPECT_EQ(back, rq);
}

TEST(InvokeWireTest, TraceTailRoundTripsRandomContexts) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 500; ++i) {
    core::wire::TraceContext t;
    t.trace_id = rng();
    t.span_id = rng();
    t.parent_span = rng() % 3 == 0 ? 0 : rng();
    t.retry = static_cast<std::uint32_t>(rng() % 8);
    serial::Writer w;
    core::wire::WriteTraceTail(w, t);
    const std::vector<std::uint8_t> bytes = w.Take();
    serial::Reader r(bytes);
    const core::wire::TraceContext back = core::wire::ReadTraceTail(r);
    if (t.valid()) {
      EXPECT_EQ(back, t);
      EXPECT_TRUE(r.AtEnd());
    } else {
      EXPECT_TRUE(bytes.empty());
      EXPECT_FALSE(back.valid());
    }
  }
}

TEST_P(CorruptionTest, MutatedInvokeRequestBytesNeverCrash) {
  std::mt19937 rng(GetParam());
  const std::vector<std::uint8_t> clean =
      core::wire::EncodeInvokeRequest(SampleRequest(true));
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> bytes = clean;
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f)
      bytes[rng() % bytes.size()] = static_cast<std::uint8_t>(rng());
    try {
      (void)core::wire::DecodeInvokeRequest(bytes);
    } catch (const serial::SerialError&) {
    } catch (const TypeError&) {
    } catch (const std::bad_alloc&) {
    }
  }
}

TEST_P(CorruptionTest, TruncatedInvokeRequestBytesNeverCrash) {
  std::mt19937 rng(GetParam());
  const std::vector<std::uint8_t> clean =
      core::wire::EncodeInvokeRequest(SampleRequest(true));
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> bytes = clean;
    bytes.resize(rng() % bytes.size());
    try {
      (void)core::wire::DecodeInvokeRequest(bytes);
    } catch (const serial::SerialError&) {
    } catch (const TypeError&) {
    } catch (const std::bad_alloc&) {
    }
  }
}

TEST(RoundTripPropertyTest, RandomValuesRoundTrip) {
  std::mt19937_64 rng(99);
  // Random recursive value generator.
  std::function<Value(int)> gen = [&](int depth) -> Value {
    switch (rng() % (depth > 3 ? 6 : 8)) {
      case 0:
        return Value();
      case 1:
        return Value(static_cast<bool>(rng() & 1));
      case 2:
        return Value(static_cast<std::int64_t>(rng()));
      case 3:
        return Value(static_cast<double>(rng()) / 7.0);
      case 4:
        return Value(std::string(rng() % 40, 'q'));
      case 5:
        return Value(std::vector<std::uint8_t>(rng() % 64, 0x3c));
      case 6: {
        Value::List l;
        for (std::uint64_t i = 0; i < rng() % 5; ++i)
          l.push_back(gen(depth + 1));
        return Value(std::move(l));
      }
      default: {
        Value::Map m;
        for (std::uint64_t i = 0; i < rng() % 4; ++i)
          m["k" + std::to_string(i)] = gen(depth + 1);
        return Value(std::move(m));
      }
    }
  };
  for (int i = 0; i < 500; ++i) {
    Value v = gen(0);
    EXPECT_EQ(serial::DecodeValue(serial::EncodeValue(v)), v);
  }
}

}  // namespace
}  // namespace fargo::testing
