#include "src/sim/scheduler.h"

#include <gtest/gtest.h>

#include "src/common/value.h"

namespace fargo::sim {
namespace {

TEST(SchedulerTest, ExecutesInTimeOrder) {
  SimScheduler s;
  std::vector<int> order;
  s.ScheduleAt(Millis(30), [&] { order.push_back(3); });
  s.ScheduleAt(Millis(10), [&] { order.push_back(1); });
  s.ScheduleAt(Millis(20), [&] { order.push_back(2); });
  s.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), Millis(30));
}

TEST(SchedulerTest, SameTimeIsFifo) {
  SimScheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    s.ScheduleAt(Millis(5), [&order, i] { order.push_back(i); });
  s.RunUntilIdle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerTest, PastTimesClampToNow) {
  SimScheduler s;
  s.ScheduleAt(Millis(10), [] {});
  s.RunUntilIdle();
  bool ran = false;
  s.ScheduleAt(Millis(1), [&] { ran = true; });  // in the past
  s.RunUntilIdle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.Now(), Millis(10));  // clock never goes backwards
}

TEST(SchedulerTest, CancelPreventsExecution) {
  SimScheduler s;
  bool ran = false;
  TaskId id = s.ScheduleAfter(Millis(1), [&] { ran = true; });
  s.Cancel(id);
  s.RunUntilIdle();
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, RunForAdvancesClockExactly) {
  SimScheduler s;
  int count = 0;
  s.ScheduleAt(Millis(5), [&] { ++count; });
  s.ScheduleAt(Millis(15), [&] { ++count; });
  s.RunFor(Millis(10));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.Now(), Millis(10));
  s.RunFor(Millis(10));
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.Now(), Millis(20));
}

TEST(SchedulerTest, RunUntilThrowsOnDrain) {
  SimScheduler s;
  s.ScheduleAfter(Millis(1), [] {});
  EXPECT_THROW(s.RunUntil([] { return false; }), FargoError);
}

TEST(SchedulerTest, RunUntilOrTimesOut) {
  SimScheduler s;
  int ticks = 0;
  // Self-rescheduling ticker keeps the queue non-empty.
  std::function<void()> tick = [&] {
    ++ticks;
    s.ScheduleAfter(Millis(1), tick);
  };
  s.ScheduleAfter(Millis(1), tick);
  bool ok = s.RunUntilOr([] { return false; }, Millis(50));
  EXPECT_FALSE(ok);
  EXPECT_EQ(s.Now(), Millis(50));
  EXPECT_GE(ticks, 49);
}

TEST(SchedulerTest, RunUntilOrStopsEarlyWhenPredicateHolds) {
  SimScheduler s;
  bool flag = false;
  s.ScheduleAfter(Millis(3), [&] { flag = true; });
  s.ScheduleAfter(Millis(100), [] {});
  EXPECT_TRUE(s.RunUntilOr([&] { return flag; }, Millis(1000)));
  EXPECT_EQ(s.Now(), Millis(3));
}

TEST(SchedulerTest, NestedPumpingWorks) {
  // An event that itself pumps the scheduler (blocking-RPC pattern).
  SimScheduler s;
  bool inner_done = false;
  bool outer_done = false;
  s.ScheduleAfter(Millis(1), [&] {
    s.ScheduleAfter(Millis(1), [&] { inner_done = true; });
    s.RunUntil([&] { return inner_done; });
    outer_done = true;
  });
  s.RunUntilIdle();
  EXPECT_TRUE(inner_done);
  EXPECT_TRUE(outer_done);
}

TEST(PeriodicTaskTest, FiresAtInterval) {
  SimScheduler s;
  int fires = 0;
  PeriodicTask task(s, Millis(10), [&] { ++fires; });
  s.RunFor(Millis(100));
  EXPECT_EQ(fires, 10);
}

TEST(PeriodicTaskTest, StopHaltsFiring) {
  SimScheduler s;
  int fires = 0;
  PeriodicTask task(s, Millis(10), [&] { ++fires; });
  s.RunFor(Millis(35));
  task.Stop();
  s.RunFor(Millis(100));
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, DestroyFromOwnCallbackIsSafe) {
  SimScheduler s;
  std::unique_ptr<PeriodicTask> task;
  int fires = 0;
  task = std::make_unique<PeriodicTask>(s, Millis(10), [&] {
    ++fires;
    task.reset();  // destroy the task from inside its own callback
  });
  s.RunFor(Millis(100));
  EXPECT_EQ(fires, 1);
}

TEST(SchedulerTest, ExecutedCounterCounts) {
  SimScheduler s;
  for (int i = 0; i < 5; ++i) s.ScheduleAfter(Millis(1), [] {});
  s.RunUntilIdle();
  EXPECT_EQ(s.executed(), 5u);
}

}  // namespace
}  // namespace fargo::sim
