// ParallelScheduler: the FARGO_PARALLEL locality engine, tested as a
// scheduler in isolation (runtime-level equivalence lives in
// tests/integration/parallel_equivalence_test.cpp). The conductor — this
// test's thread — owns the pumps; everything asserted between pumps is
// safe to read because the workers are parked on the round barrier.
#include "src/sim/parallel_sched.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "src/common/value.h"

namespace fargo::sim {
namespace {

TEST(ParallelSchedulerTest, RunsEventsAtTheirVirtualTime) {
  ParallelScheduler sched(2);
  std::vector<std::pair<int, SimTime>> order;
  std::mutex mu;
  auto record = [&](int tag) {
    return [&, tag] {
      std::lock_guard<std::mutex> lock(mu);
      order.emplace_back(tag, sched.Now());
    };
  };
  sched.ScheduleAt(30, record(3));
  sched.ScheduleAt(10, record(1));
  sched.ScheduleAt(20, record(2));
  sched.RunUntilIdle();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], (std::pair<int, SimTime>{1, 10}));
  EXPECT_EQ(order[1], (std::pair<int, SimTime>{2, 20}));
  EXPECT_EQ(order[2], (std::pair<int, SimTime>{3, 30}));
  EXPECT_EQ(sched.Now(), 30);
  EXPECT_EQ(sched.executed(), 3u);
  EXPECT_EQ(sched.PendingCount(), 0u);
}

TEST(ParallelSchedulerTest, MatchesSimSchedulerOnAChainedWorkload) {
  // The same recursive workload — each event schedules two more until a
  // depth limit — must produce identical virtual end times, executed
  // counts and per-timestamp hit totals in both engines.
  auto run = [](Scheduler& s) {
    std::mutex mu;
    std::map<SimTime, int> hits;
    std::function<void(int)> spawn = [&](int depth) {
      {
        std::lock_guard<std::mutex> lock(mu);
        ++hits[s.Now()];
      }
      if (depth == 0) return;
      s.ScheduleAfter(5, [&spawn, depth] { spawn(depth - 1); });
      s.ScheduleAfter(7, [&spawn, depth] { spawn(depth - 1); });
    };
    s.ScheduleAt(0, [&spawn] { spawn(6); });
    s.RunUntilIdle();
    return std::make_tuple(s.Now(), s.executed(), hits);
  };
  SimScheduler sim;
  ParallelScheduler par(4);
  EXPECT_EQ(run(sim), run(par));
}

TEST(ParallelSchedulerTest, DeterministicAcrossRunsForFixedN) {
  // The engine's determinism contract is per-locality: each locality
  // drains its inbox in sorted (at, src, seq) order, so the execution
  // order WITHIN a locality is a pure function of the workload. (The
  // cross-locality interleaving is concurrent by design — same-time events
  // on different localities genuinely race, which is what mode-invariance
  // of observables, not event order, accounts for.)
  constexpr int kLoc = 3;
  auto run = [] {
    ParallelScheduler s(kLoc);
    std::mutex mu;
    // Recorded per executing locality, keyed by the task's affinity.
    std::array<std::vector<std::uint64_t>, kLoc> order;
    for (std::uint64_t i = 0; i < 64; ++i) {
      s.Post(i, 10 + (i % 4), [&, i] {
        {
          std::lock_guard<std::mutex> lock(mu);
          order[i % kLoc].push_back(i);
        }
        // Fan one hop to another locality from inside a worker.
        if (i % 8 == 0)
          s.Post(i + 1, s.Now(), [&, i] {
            std::lock_guard<std::mutex> lock2(mu);
            order[(i + 1) % kLoc].push_back(1000 + i);
          });
      });
    }
    s.RunUntilIdle();
    return order;
  };
  const auto a = run();
  const auto b = run();
  std::size_t total = 0;
  for (int l = 0; l < kLoc; ++l) {
    EXPECT_EQ(a[static_cast<std::size_t>(l)], b[static_cast<std::size_t>(l)])
        << "locality " << l << " diverged between identical runs";
    total += a[static_cast<std::size_t>(l)].size();
  }
  EXPECT_EQ(total, 64u + 8u);
}

TEST(ParallelSchedulerTest, PostRoutesToTheOwningLocality) {
  ParallelScheduler sched(4);
  EXPECT_EQ(sched.localities(), 4);
  EXPECT_EQ(sched.LocalityOf(0), 0);
  EXPECT_EQ(sched.LocalityOf(5), 1);
  EXPECT_EQ(sched.LocalityOf(7), 3);
  // Worker-side cross-locality posts are the sanctioned handoff (and the
  // thing the telemetry counts — conductor staging is not a handoff).
  std::atomic<int> ran{0};
  sched.Post(0, 1, [&] {
    for (std::uint64_t dest = 1; dest < 4; ++dest)
      sched.Post(dest, sched.Now(),
                 [&] { ran.fetch_add(1, std::memory_order_relaxed); });
  });
  sched.RunUntilIdle();
  EXPECT_EQ(ran.load(), 3);
  EXPECT_GE(sched.telemetry().handoffs, 3u);
  EXPECT_EQ(sched.telemetry().steals, 0u);  // affinity is strict
  EXPECT_GT(sched.telemetry().rounds, 0u);
}

TEST(ParallelSchedulerTest, WorkersMayNotPump) {
  // Pumping is a conductor privilege: a locality worker calling RunUntil &
  // friends must throw instead of deadlocking the round barrier.
  ParallelScheduler sched(2);
  std::atomic<bool> threw{false};
  sched.ScheduleAt(1, [&] {
    try {
      sched.RunUntilIdle();
    } catch (const FargoError&) {
      threw.store(true, std::memory_order_relaxed);
    }
  });
  sched.RunUntilIdle();
  EXPECT_TRUE(threw.load());
}

TEST(ParallelSchedulerTest, NoPumpScopeRejectsConductorPumps) {
  ParallelScheduler sched(2);
  Scheduler::NoPumpScope guard(sched);
  EXPECT_THROW(sched.RunUntilIdle(), FargoError);
}

TEST(ParallelSchedulerTest, CancelStopsLocalAndCrossLocalityTasks) {
  ParallelScheduler sched(2);
  std::atomic<int> ran{0};
  auto bump = [&] { ran.fetch_add(1, std::memory_order_relaxed); };
  // Conductor-staged tasks for both localities, one of each cancelled.
  TaskId keep0 = sched.Post(0, 10, bump);
  TaskId kill0 = sched.Post(0, 10, bump);
  TaskId keep1 = sched.Post(1, 10, bump);
  TaskId kill1 = sched.Post(1, 10, bump);
  (void)keep0;
  (void)keep1;
  sched.Cancel(kill0);
  sched.Cancel(kill1);
  // A worker cancelling a task it posted to the *other* locality: the
  // cancellation must chase the handoff.
  sched.ScheduleAt(5, [&] {
    TaskId cross = sched.Post(1, 10, bump);
    sched.Cancel(cross);
  });
  sched.RunUntilIdle();
  EXPECT_EQ(ran.load(), 2);
  // Cancelling an already-run id is a harmless no-op.
  sched.Cancel(keep0);
}

TEST(ParallelSchedulerTest, ClearDiscardsQueuedWorkWithoutRunningIt) {
  ParallelScheduler sched(3);
  auto hits = std::make_shared<std::atomic<int>>(0);
  for (std::uint64_t i = 0; i < 12; ++i)
    sched.Post(i, 100, [hits] { hits->fetch_add(1); });
  EXPECT_GT(sched.PendingCount(), 0u);
  sched.Clear();
  EXPECT_EQ(sched.PendingCount(), 0u);
  sched.RunUntilIdle();
  EXPECT_EQ(hits->load(), 0);
  // The engine stays usable after a Clear.
  sched.ScheduleAt(200, [hits] { hits->fetch_add(10); });
  sched.RunUntilIdle();
  EXPECT_EQ(hits->load(), 10);
}

TEST(ParallelSchedulerTest, RunUntilOrStopsAtDeadlineOrPredicate) {
  ParallelScheduler sched(2);
  std::atomic<bool> flag{false};
  sched.ScheduleAt(50, [&] { flag.store(true); });
  sched.ScheduleAt(500, [] {});
  EXPECT_TRUE(sched.RunUntilOr([&] { return flag.load(); }, 1000));
  EXPECT_EQ(sched.Now(), 50);
  flag.store(false);
  EXPECT_FALSE(sched.RunUntilOr([&] { return flag.load(); }, 200));
  EXPECT_EQ(sched.Now(), 200);
  EXPECT_EQ(sched.PendingCount(), 1u);  // the 500 event still waits
}

TEST(ParallelSchedulerTest, RunForAdvancesTheClockPastAnEmptyQueue) {
  ParallelScheduler sched(2);
  std::atomic<int> ran{0};
  sched.ScheduleAt(30, [&] { ran.fetch_add(1); });
  sched.RunFor(100);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(sched.Now(), 100);
  sched.RunFor(50);
  EXPECT_EQ(sched.Now(), 150);
}

TEST(ParallelSchedulerTest, ExceptionsFromWorkersSurfaceAtThePump) {
  // A task that throws must not kill the worker thread or hang the
  // barrier; the error belongs to the conductor's pump call.
  ParallelScheduler sched(2);
  std::atomic<int> after{0};
  sched.ScheduleAt(1, [] { throw FargoError("task exploded"); });
  sched.ScheduleAt(2, [&] { after.fetch_add(1); });
  try {
    sched.RunUntilIdle();
  } catch (const FargoError&) {
    // Acceptable: the engine may surface the task's error.
  }
  // Either way the engine survives and keeps executing.
  sched.RunUntilIdle();
  EXPECT_EQ(after.load(), 1);
}

TEST(ParallelSchedulerTest, TelemetryCountsHandoffTraffic) {
  ParallelScheduler sched(2, /*handoff_capacity=*/4);
  std::atomic<int> ran{0};
  // Locality 0 fans 32 same-time tasks to locality 1: with capacity 4 the
  // inbox must spill, and the engine must neither block nor lose work.
  sched.Post(0, 1, [&] {
    for (int i = 0; i < 32; ++i)
      sched.Post(1, sched.Now(), [&] { ran.fetch_add(1); });
  });
  sched.RunUntilIdle();
  EXPECT_EQ(ran.load(), 32);
  const auto t = sched.telemetry();
  EXPECT_GE(t.handoffs, 32u);
  EXPECT_GT(t.overflows, 0u);
  EXPECT_GE(t.max_queue_depth, 32u);
  EXPECT_EQ(t.steals, 0u);
}

TEST(ParallelSchedulerTest, AffinityScopeRoutesConductorWork) {
  // Core entry points hold an AffinityScope so conductor-side ScheduleAt
  // lands on the Core's home locality; verify the ambient key is honored
  // by checking cross-locality ordering: two same-time tasks with the same
  // ambient key must run in FIFO order (same locality queue), which would
  // be unordered if each landed on a default locality.
  ParallelScheduler sched(4);
  std::vector<int> order;
  std::mutex mu;
  {
    Scheduler::AffinityScope aff(3);
    for (int i = 0; i < 16; ++i)
      sched.ScheduleAt(10, [&, i] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(i);
      });
  }
  sched.RunUntilIdle();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

}  // namespace
}  // namespace fargo::sim
