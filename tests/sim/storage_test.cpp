// The deterministic disk model under the per-Core WAL: append/sync
// barriers, crash (volatile-tail loss), truncation, atomic blob replace.
#include "src/sim/storage.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/sim/scheduler.h"

namespace fargo::sim {
namespace {

std::vector<std::uint8_t> Rec(std::uint8_t tag, std::size_t len = 4) {
  return std::vector<std::uint8_t>(len, tag);
}

class StorageTest : public ::testing::Test {
 protected:
  SimScheduler sched;
  Storage disk{sched};
};

TEST_F(StorageTest, AppendsAreVolatileUntilSynced) {
  disk.Append("log", Rec(1));
  disk.Append("log", Rec(2));
  EXPECT_EQ(disk.DurableCount("log"), 0u);
  EXPECT_EQ(disk.VolatileCount("log"), 2u);

  bool synced = false;
  disk.Sync("log").OnSettle([&](Future<Unit>) { synced = true; });
  EXPECT_FALSE(synced);  // the barrier costs fsync latency
  sched.RunUntilIdle();
  EXPECT_TRUE(synced);
  EXPECT_EQ(disk.DurableCount("log"), 2u);
  EXPECT_EQ(disk.VolatileCount("log"), 0u);
}

TEST_F(StorageTest, BarrierCoversOnlyRecordsAppendedBeforeIt) {
  disk.Append("log", Rec(1));
  auto barrier = disk.Sync("log");
  disk.Append("log", Rec(2));  // after the barrier: stays volatile
  sched.RunUntilIdle();
  EXPECT_EQ(disk.DurableCount("log"), 1u);
  EXPECT_EQ(disk.VolatileCount("log"), 1u);
}

TEST_F(StorageTest, AbsoluteIndicesAreStableAcrossTruncation) {
  EXPECT_EQ(disk.Append("log", Rec(1)), 0u);
  EXPECT_EQ(disk.Append("log", Rec(2)), 1u);
  disk.Sync("log");
  sched.RunUntilIdle();
  disk.TruncateLog("log", 1);
  EXPECT_EQ(disk.BaseIndex("log"), 1u);
  EXPECT_EQ(disk.Append("log", Rec(3)), 2u);
  disk.Sync("log");
  sched.RunUntilIdle();
  const auto records = disk.ReadDurable("log");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], Rec(2));
  EXPECT_EQ(records[1], Rec(3));
}

TEST_F(StorageTest, CrashLosesTailButKeepsDurablePrefix) {
  disk.Append("log", Rec(1));
  disk.Sync("log");
  sched.RunUntilIdle();
  disk.Append("log", Rec(2));
  disk.DropVolatile("log");
  EXPECT_EQ(disk.DurableCount("log"), 1u);
  EXPECT_EQ(disk.VolatileCount("log"), 0u);
  EXPECT_EQ(disk.stats().dropped_records, 1u);
  // The next record reuses the lost record's index: a log is a history of
  // what SURVIVED, and index 1 never became durable.
  EXPECT_EQ(disk.NextIndex("log"), 1u);
}

TEST_F(StorageTest, CrashVoidsInFlightBarrierButStillSettlesIt) {
  disk.Append("log", Rec(1));
  bool settled = false;
  disk.Sync("log").OnSettle([&](Future<Unit>) { settled = true; });
  disk.DropVolatile("log");  // crash while the fsync is in flight
  sched.RunUntilIdle();
  EXPECT_TRUE(settled);  // callers epoch-guard; the future must not leak
  EXPECT_EQ(disk.DurableCount("log"), 0u);
}

TEST_F(StorageTest, BlobReplaceIsAtomicAcrossCrashes) {
  disk.PutBlob("ckpt", Rec(1, 8));
  sched.RunUntilIdle();
  ASSERT_TRUE(disk.GetBlob("ckpt").has_value());
  EXPECT_EQ(*disk.GetBlob("ckpt"), Rec(1, 8));

  // A replace that crashes mid-barrier keeps the OLD image.
  disk.PutBlob("ckpt", Rec(2, 8));
  disk.DropVolatile("ckpt");
  sched.RunUntilIdle();
  EXPECT_EQ(*disk.GetBlob("ckpt"), Rec(1, 8));

  // An undisturbed replace lands.
  disk.PutBlob("ckpt", Rec(3, 8));
  sched.RunUntilIdle();
  EXPECT_EQ(*disk.GetBlob("ckpt"), Rec(3, 8));
}

TEST_F(StorageTest, FsyncLatencyIsCharged) {
  disk.SetFsyncLatency(Millis(5));
  disk.Append("log", Rec(1));
  disk.Sync("log");
  sched.RunUntilIdle();
  EXPECT_EQ(sched.Now(), Millis(5));
  EXPECT_EQ(disk.stats().fsyncs, 1u);
}

TEST_F(StorageTest, ExportImportRoundTripsTheDurablePrefix) {
  disk.Append("log", Rec(1));
  disk.Append("log", Rec(2, 9));
  disk.Sync("log");
  disk.Append("log", Rec(3));  // volatile: not exported
  sched.RunUntilIdle();

  const std::string path = ::testing::TempDir() + "fargo_wal_export.bin";
  disk.ExportLog("log", path);

  SimScheduler sched2;
  Storage disk2{sched2};
  disk2.ImportLog("log", path);
  const auto records = disk2.ReadDurable("log");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], Rec(1));
  EXPECT_EQ(records[1], Rec(2, 9));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fargo::sim
