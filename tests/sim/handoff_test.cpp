// HandoffQueue: the bounded MPSC cross-locality inbox (src/sim/handoff.h).
// The queue's contract is phase-disciplined — producers push during one
// micro-round, the owning worker drains at the start of the next, with the
// round barrier separating the phases — so the tests exercise exactly that
// shape: concurrent producers, then a quiescent drain.
#include "src/sim/handoff.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

namespace fargo::sim {
namespace {

HandoffQueue::Item MakeItem(SimTime at, std::uint32_t src, std::uint64_t seq,
                            std::function<void()> fn = nullptr) {
  HandoffQueue::Item it;
  it.at = at;
  it.src = src;
  it.seq = seq;
  it.id = seq;
  it.fn = std::move(fn);
  return it;
}

TEST(HandoffQueueTest, PushThenDrainReturnsEverythingInPushOrder) {
  HandoffQueue q(8);
  for (std::uint64_t i = 0; i < 5; ++i) q.Push(MakeItem(10, 0, i));
  EXPECT_EQ(q.ApproxSize(), 5u);
  EXPECT_FALSE(q.Empty());

  std::vector<HandoffQueue::Item> out;
  EXPECT_EQ(q.DrainInto(out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(out[i].seq, i);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.overflows(), 0u);
}

TEST(HandoffQueueTest, DrainResetsTheBufferForReuse) {
  HandoffQueue q(4);
  std::vector<HandoffQueue::Item> out;
  for (int round = 0; round < 3; ++round) {
    q.Push(MakeItem(1, 0, static_cast<std::uint64_t>(round)));
    out.clear();
    EXPECT_EQ(q.DrainInto(out), 1u);
    EXPECT_EQ(out[0].seq, static_cast<std::uint64_t>(round));
    EXPECT_TRUE(q.Empty());
  }
}

TEST(HandoffQueueTest, OverflowSpillsInsteadOfBlockingAndIsCounted) {
  HandoffQueue q(2);
  for (std::uint64_t i = 0; i < 7; ++i) q.Push(MakeItem(1, 0, i));
  // 2 in the slot array, 5 spilled; nothing lost, nothing blocked.
  EXPECT_EQ(q.ApproxSize(), 7u);
  EXPECT_EQ(q.overflows(), 5u);

  std::vector<HandoffQueue::Item> out;
  EXPECT_EQ(q.DrainInto(out), 7u);
  std::set<std::uint64_t> seqs;
  for (const auto& it : out) seqs.insert(it.seq);
  EXPECT_EQ(seqs.size(), 7u);  // every push survived, no duplicates
  // The overflow counter is cumulative (it feeds a monotone metric).
  EXPECT_EQ(q.overflows(), 5u);
  EXPECT_TRUE(q.Empty());
}

TEST(HandoffQueueTest, MaxDepthTracksTheLargestSingleDrain) {
  HandoffQueue q(16);
  std::vector<HandoffQueue::Item> out;
  q.Push(MakeItem(1, 0, 0));
  q.DrainInto(out);
  EXPECT_EQ(q.max_depth(), 1u);
  for (std::uint64_t i = 0; i < 6; ++i) q.Push(MakeItem(1, 0, i));
  out.clear();
  q.DrainInto(out);
  EXPECT_EQ(q.max_depth(), 6u);
  // A smaller later drain does not shrink the high-water mark.
  q.Push(MakeItem(1, 0, 9));
  out.clear();
  q.DrainInto(out);
  EXPECT_EQ(q.max_depth(), 6u);
}

TEST(HandoffQueueTest, QueuedClosuresSurviveUntilDrained) {
  // Shutdown shape: work queued but never executed must still be owned
  // somewhere (the queue) and destructible without running. Closures with
  // shared state verify the items were moved, not leaked or double-freed.
  auto hits = std::make_shared<int>(0);
  {
    HandoffQueue q(2);
    for (std::uint64_t i = 0; i < 4; ++i)
      q.Push(MakeItem(1, 0, i, [hits] { ++*hits; }));
    // Destroy with 4 queued items (2 slots + 2 spill) — nothing runs.
  }
  EXPECT_EQ(*hits, 0);

  HandoffQueue q(2);
  for (std::uint64_t i = 0; i < 4; ++i)
    q.Push(MakeItem(1, 0, i, [hits] { ++*hits; }));
  std::vector<HandoffQueue::Item> out;
  q.DrainInto(out);
  for (auto& it : out) it.fn();
  EXPECT_EQ(*hits, 4);
}

TEST(HandoffQueueTest, ConcurrentProducersLoseNothing) {
  // The TSan hammer: many producer threads race Push against one queue
  // sized to force heavy spill traffic, then (threads joined — the
  // barrier's happens-before edge) a single drain must account for every
  // item exactly once.
  constexpr int kProducers = 8;
  constexpr std::uint64_t kPerProducer = 500;
  HandoffQueue q(64);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i)
        q.Push(MakeItem(1, static_cast<std::uint32_t>(p), i));
    });
  }
  for (auto& t : producers) t.join();

  std::vector<HandoffQueue::Item> out;
  EXPECT_EQ(q.DrainInto(out), kProducers * kPerProducer);
  // Exactly-once accounting per producer stream.
  std::vector<std::set<std::uint64_t>> per_src(kProducers);
  for (const auto& it : out) per_src[it.src].insert(it.seq);
  for (int p = 0; p < kProducers; ++p)
    EXPECT_EQ(per_src[static_cast<std::size_t>(p)].size(), kPerProducer)
        << "producer " << p << " lost items";
  // The deterministic merge key is available: sorting by (at, src, seq)
  // gives the same order regardless of which thread won each ticket.
  std::stable_sort(out.begin(), out.end(),
                   [](const HandoffQueue::Item& a, const HandoffQueue::Item& b) {
                     return std::tie(a.at, a.src, a.seq) <
                            std::tie(b.at, b.src, b.seq);
                   });
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_LE(std::tie(out[i - 1].at, out[i - 1].src, out[i - 1].seq),
              std::tie(out[i].at, out[i].src, out[i].seq));
}

}  // namespace
}  // namespace fargo::sim
