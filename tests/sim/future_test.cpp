// Promise/Future semantics: deterministic scheduler-driven settlement,
// first-wins idempotency, continuation chaining, expiry, and the pump-depth
// guards the async invocation pipeline relies on.
#include "src/sim/future.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/sim/scheduler.h"

namespace fargo::sim {
namespace {

TEST(FutureTest, ResolveSettlesAndDeliversValue) {
  SimScheduler sched;
  Promise<int> p(sched);
  Future<int> f = p.future();
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(f.settled());
  EXPECT_TRUE(p.Resolve(41));
  EXPECT_TRUE(f.settled());
  EXPECT_TRUE(f.ok());
  EXPECT_EQ(f.value(), 41);
}

TEST(FutureTest, SettlementIsFirstWins) {
  SimScheduler sched;
  Promise<int> p(sched);
  EXPECT_TRUE(p.Resolve(1));
  EXPECT_FALSE(p.Resolve(2));
  EXPECT_FALSE(p.RejectWith(FargoError("too late")));
  EXPECT_EQ(p.future().value(), 1);
}

TEST(FutureTest, TakeRethrowsSettlementError) {
  SimScheduler sched;
  Promise<int> p(sched);
  p.RejectWith(FargoError("boom"));
  Future<int> f = p.future();
  EXPECT_TRUE(f.settled());
  EXPECT_FALSE(f.ok());
  EXPECT_THROW(f.Take(), FargoError);
}

TEST(FutureTest, ObservingBeforeSettlementThrows) {
  SimScheduler sched;
  Promise<int> p(sched);
  EXPECT_THROW(p.future().value(), FargoError);
  EXPECT_THROW(Future<int>().settled(), FargoError);  // invalid future
}

TEST(FutureTest, ContinuationsNeverRunInline) {
  SimScheduler sched;
  Promise<int> p(sched);
  bool ran = false;
  p.future().OnSettle([&](Future<int> f) {
    EXPECT_EQ(f.value(), 7);
    ran = true;
  });
  p.Resolve(7);
  // Settled, but the continuation is a scheduled event, not an inline call.
  EXPECT_FALSE(ran);
  sched.RunUntilIdle();
  EXPECT_TRUE(ran);

  // Same for a continuation attached after settlement.
  bool late = false;
  p.future().OnSettle([&](Future<int>) { late = true; });
  EXPECT_FALSE(late);
  sched.RunUntilIdle();
  EXPECT_TRUE(late);
}

TEST(FutureTest, ContinuationsRunInRegistrationOrder) {
  SimScheduler sched;
  Promise<int> p(sched);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i)
    p.future().OnSettle([&order, i](Future<int>) { order.push_back(i); });
  p.Resolve(0);
  sched.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(FutureTest, ThenMapsValues) {
  SimScheduler sched;
  Promise<int> p(sched);
  Future<std::string> mapped =
      p.future().Then([](int& v) { return std::to_string(v * 2); });
  p.Resolve(21);
  sched.RunUntilIdle();
  EXPECT_EQ(mapped.value(), "42");
}

TEST(FutureTest, ThenFlattensFutureReturningFunctions) {
  SimScheduler sched;
  Promise<int> outer(sched);
  Promise<int> inner(sched);
  Future<int> chained = outer.future().Then(
      [&inner](int&) { return inner.future(); });
  outer.Resolve(1);
  sched.RunUntilIdle();
  EXPECT_FALSE(chained.settled());  // still waiting on the inner future
  inner.Resolve(99);
  sched.RunUntilIdle();
  EXPECT_EQ(chained.value(), 99);
}

TEST(FutureTest, ThenMapsVoidToUnit) {
  SimScheduler sched;
  Promise<int> p(sched);
  int seen = 0;
  Future<Unit> done = p.future().Then([&seen](int& v) { seen = v; });
  p.Resolve(5);
  sched.RunUntilIdle();
  EXPECT_TRUE(done.ok());
  EXPECT_EQ(seen, 5);
}

TEST(FutureTest, ErrorsPropagateThroughThenChains) {
  SimScheduler sched;
  Promise<int> p(sched);
  Future<int> chained = p.future()
                            .Then([](int& v) { return v + 1; })
                            .Then([](int& v) { return v + 1; });
  p.RejectWith(UnreachableError("lost"));
  sched.RunUntilIdle();
  EXPECT_TRUE(chained.settled());
  EXPECT_THROW(chained.Take(), UnreachableError);
}

TEST(FutureTest, ThrowingContinuationRejectsDownstream) {
  SimScheduler sched;
  Promise<int> p(sched);
  Future<int> chained =
      p.future().Then([](int&) -> int { throw FargoError("mapper failed"); });
  p.Resolve(1);
  sched.RunUntilIdle();
  EXPECT_THROW(chained.Take(), FargoError);
}

TEST(FutureTest, OrElseRecoversFromErrors) {
  SimScheduler sched;
  Promise<int> p(sched);
  Future<int> recovered =
      p.future().OrElse([](std::exception_ptr) { return -1; });
  p.RejectWith(FargoError("boom"));
  sched.RunUntilIdle();
  EXPECT_EQ(recovered.value(), -1);

  // Successes pass through untouched.
  Promise<int> q(sched);
  Future<int> passthrough =
      q.future().OrElse([](std::exception_ptr) { return -1; });
  q.Resolve(10);
  sched.RunUntilIdle();
  EXPECT_EQ(passthrough.value(), 10);
}

TEST(FutureTest, OrElseCanRethrowToKeepTheError) {
  SimScheduler sched;
  Promise<int> p(sched);
  Future<int> kept = p.future().OrElse(
      [](std::exception_ptr e) -> int { std::rethrow_exception(e); });
  p.RejectWith(UnreachableError("unreachable"));
  sched.RunUntilIdle();
  EXPECT_THROW(kept.Take(), UnreachableError);
}

TEST(FutureTest, ExpireAfterRejectsUnsettledFutures) {
  SimScheduler sched;
  Promise<int> p(sched);
  Future<int> f = p.future().ExpireAfter(100, "gave up");
  sched.RunUntilIdle();
  EXPECT_EQ(sched.Now(), 100);
  EXPECT_THROW(f.Take(), UnreachableError);
  // The producer lost the race; its resolve is a no-op.
  EXPECT_FALSE(p.Resolve(1));
}

TEST(FutureTest, ExpiryIsCancelledOnSettlement) {
  SimScheduler sched;
  Promise<int> p(sched);
  Future<int> f = p.future().ExpireAfter(100, "gave up");
  sched.ScheduleAfter(10, [&p] { p.Resolve(3); });
  sched.RunUntilIdle();
  EXPECT_EQ(f.value(), 3);
  // The expiry task was cancelled, never executed: the clock stops at the
  // resolution, not at the (skipped) deadline.
  EXPECT_EQ(sched.Now(), 10);
}

TEST(FutureTest, AwaitPumpsUntilSettledAndReturnsValue) {
  SimScheduler sched;
  Promise<int> p(sched);
  sched.ScheduleAfter(50, [&p] { p.Resolve(8); });
  EXPECT_EQ(Await(p.future()), 8);
  EXPECT_EQ(sched.Now(), 50);
}

TEST(FutureTest, AwaitRethrowsSettlementError) {
  SimScheduler sched;
  Promise<int> p(sched);
  sched.ScheduleAfter(5, [&p] { p.RejectWith(UnreachableError("down")); });
  EXPECT_THROW(Await(p.future()), UnreachableError);
}

TEST(FutureTest, MakeReadyAndErrorFutures) {
  SimScheduler sched;
  EXPECT_EQ(MakeReadyFuture<int>(sched, 4).value(), 4);
  Future<int> bad = MakeErrorFuture<int>(sched, FargoError("nope"));
  EXPECT_THROW(bad.Take(), FargoError);
}

TEST(FutureTest, CancelSettlesWithError) {
  SimScheduler sched;
  Promise<int> p(sched);
  Future<int> f = p.future();
  EXPECT_TRUE(f.Cancel("aborted by test"));
  EXPECT_FALSE(p.Resolve(1));
  EXPECT_THROW(f.Take(), FargoError);
}

// ---- pump-depth accounting --------------------------------------------------

TEST(PumpDepthTest, TopLevelPumpIsDepthOne) {
  SimScheduler sched;
  sched.ScheduleAfter(1, [] {});
  EXPECT_EQ(sched.PumpDepth(), 0);
  sched.RunUntilIdle();
  EXPECT_EQ(sched.MaxPumpDepth(), 1);
}

TEST(PumpDepthTest, NestedPumpInsideAnEventIsDepthTwo) {
  SimScheduler sched;
  sched.ScheduleAfter(1, [&sched] {
    EXPECT_EQ(sched.PumpDepth(), 1);
    Promise<int> p(sched);
    sched.ScheduleAfter(1, [&p] { p.Resolve(1); });
    Await(p.future());  // re-entrant pump (legal outside no-pump sections)
  });
  sched.RunUntilIdle();
  EXPECT_EQ(sched.MaxPumpDepth(), 2);
}

TEST(PumpDepthTest, NoPumpScopeForbidsReentrantPumping) {
  SimScheduler sched;
  bool threw = false;
  sched.ScheduleAfter(1, [&] {
    Scheduler::NoPumpScope guard(sched);
    try {
      sched.RunUntilIdle();
    } catch (const FargoError&) {
      threw = true;
    }
  });
  sched.RunUntilIdle();
  EXPECT_TRUE(threw);
}

TEST(PumpDepthTest, PumpObserverSeesDepth) {
  SimScheduler sched;
  int max_seen = 0;
  sched.SetPumpObserver([&max_seen](int d) {
    if (d > max_seen) max_seen = d;
  });
  sched.ScheduleAfter(1, [&sched] {
    Promise<int> p(sched);
    sched.ScheduleAfter(1, [&p] { p.Resolve(1); });
    Await(p.future());
  });
  sched.RunUntilIdle();
  EXPECT_EQ(max_seen, 2);
}

}  // namespace
}  // namespace fargo::sim
