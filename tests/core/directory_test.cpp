// The sharded directory plane (docs/PROTOCOL.md §Directory): a versioned
// consistent-hash ring maps every complet onto a home shard; movement
// commits publish epoch-stamped locations; stale references recover via a
// bounded-hop route (tracker-chain hit, or one shard lookup). The chaos
// tests at the bottom crash shard owners mid-publish and require the plane
// to degrade to tracker-chain routing — never a black hole.
#include <gtest/gtest.h>

#include "src/core/shard_map.h"
#include "src/net/formation.h"
#include "src/serial/frame.h"
#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

// ---------------------------------------------------------------------------
// ShardMap: pure data, no runtime needed.
// ---------------------------------------------------------------------------

std::vector<CoreId> Owners(std::initializer_list<std::uint32_t> values) {
  std::vector<CoreId> owners;
  for (std::uint32_t v : values) owners.push_back(CoreId{v});
  return owners;
}

TEST(ShardMapTest, RingHashIsDeterministicAcrossBuilds) {
  // MixU64 is the splitmix64 finalizer; pin its best-known vector so a
  // "harmless" tweak (or an accidental std::hash) cannot slip in — ring
  // positions feed benchgate-gated message counts.
  EXPECT_EQ(core::MixU64(0), 0xe220a8397b1dcdafull);
  const ComletId id{CoreId{3}, 17};
  EXPECT_EQ(core::RingHash(id), core::RingHash(id));

  const core::ShardMap a = core::MakeShardMap(1, Owners({1, 2, 3, 4, 5}));
  const core::ShardMap b = core::MakeShardMap(1, Owners({1, 2, 3, 4, 5}));
  std::uint32_t distinct_mask = 0;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    const ComletId c{CoreId{static_cast<std::uint32_t>(seq % 7 + 1)}, seq};
    const std::uint32_t shard = a.ShardOf(c);
    EXPECT_LT(shard, a.shard_count());
    EXPECT_EQ(shard, b.ShardOf(c));
    distinct_mask |= 1u << shard;
  }
  // 200 ids over 5 shards x 16 vnodes: the ring actually spreads load.
  EXPECT_GT(__builtin_popcount(distinct_mask), 1);
}

TEST(ShardMapTest, ReplacingAnOwnerRehomesNothing) {
  // Ring points derive from the shard *index*, not the owner identity: a
  // crashed owner can be swapped out without re-homing any complet.
  const core::ShardMap before = core::MakeShardMap(1, Owners({1, 2, 3, 4}));
  const core::ShardMap after = core::MakeShardMap(2, Owners({1, 2, 9, 4}));
  for (std::uint64_t seq = 0; seq < 300; ++seq) {
    const ComletId id{CoreId{static_cast<std::uint32_t>(seq % 5 + 1)}, seq};
    EXPECT_EQ(before.ShardOf(id), after.ShardOf(id));
    if (before.ShardOf(id) != 2)
      EXPECT_EQ(before.OwnerOf(id), after.OwnerOf(id));
    else
      EXPECT_EQ(after.OwnerOf(id), CoreId{9});
  }
}

TEST(ShardMapTest, WireRoundTripRebuildsTheRing) {
  const core::ShardMap sent = core::MakeShardMap(7, Owners({4, 8, 15}), 5);
  serial::Writer w;
  core::WriteShardMap(w, sent);
  std::vector<std::uint8_t> bytes = w.Take();
  serial::Reader r(bytes);
  const core::ShardMap got = core::ReadShardMap(r);
  EXPECT_EQ(got, sent);
  EXPECT_EQ(got.vnodes, 5u);
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    const ComletId id{CoreId{11}, seq};
    EXPECT_EQ(got.ShardOf(id), sent.ShardOf(id));  // ring rebuilt identically
  }
}

// ---------------------------------------------------------------------------
// Directory plane wiring on a live runtime.
// ---------------------------------------------------------------------------

class DirectoryTest : public FargoTest {};

TEST_F(DirectoryTest, AdoptShardMapIsHigherVersionWins) {
  auto cores = MakeCores(3);
  rt.EnableDirectory({cores[0]->id()});
  const std::uint64_t v = rt.shard_map().version;

  core::ShardMap newer =
      core::MakeShardMap(v + 3, {cores[1]->id(), cores[2]->id()}, 8);
  EXPECT_TRUE(rt.AdoptShardMap(newer));
  EXPECT_EQ(rt.shard_map().version, v + 3);
  EXPECT_EQ(rt.shard_map().shard_count(), 2u);

  // Equal or older versions (and invalid maps) are ignored.
  EXPECT_FALSE(rt.AdoptShardMap(core::MakeShardMap(v + 3, {cores[0]->id()})));
  EXPECT_FALSE(rt.AdoptShardMap(core::MakeShardMap(v, {cores[0]->id()})));
  EXPECT_FALSE(rt.AdoptShardMap(core::ShardMap{}));
  EXPECT_EQ(rt.shard_map().shard_count(), 2u);
}

TEST_F(DirectoryTest, BroadcastMapReachesEveryPeer) {
  auto cores = MakeCores(4);
  rt.EnableDirectory({cores[0]->id()});
  std::uint64_t maps = 0;
  rt.network().SetTap([&maps](const net::Message& m) {
    if (m.kind == net::MessageKind::kDirectoryMap) {
      ++maps;
      return;
    }
    if (m.kind != net::MessageKind::kBatch) return;
    serial::FrameReader frame(m.payload);
    while (frame.HasNext()) {
      serial::Reader item = frame.Next();
      if (net::ReadBatchItem(item).kind == net::MessageKind::kDirectoryMap)
        ++maps;
    }
  });
  cores[0]->directory().BroadcastMap();
  rt.RunUntilIdle();
  EXPECT_EQ(maps, 3u);  // every peer got a copy; HandleMap decoded it
}

TEST_F(DirectoryTest, OriginModeIsTheLegacyHomeRegistry) {
  auto cores = MakeCores(2);
  rt.EnableHomeRegistry(true);
  EXPECT_EQ(rt.directory_mode(), core::DirectoryMode::kOrigin);
  auto msg = cores[1]->New<Message>("m");
  // 1-shard-per-origin: the home shard of a complet IS its origin Core.
  EXPECT_EQ(cores[0]->directory().OwnerOf(msg.target()), cores[1]->id());
  rt.EnableHomeRegistry(false);
  EXPECT_EQ(rt.directory_mode(), core::DirectoryMode::kDisabled);
  EXPECT_FALSE(cores[0]->directory().OwnerOf(msg.target()).valid());
}

TEST_F(DirectoryTest, InstallAndMovementPublishEpochStampedLocations) {
  auto cores = MakeCores(4);
  rt.EnableDirectory({cores[0]->id()});  // single shard: core0 owns all
  auto msg = cores[1]->New<Message>("m");
  rt.RunUntilIdle();
  const auto& store = cores[0]->directory().store();
  auto it = store.find(msg.target());
  ASSERT_NE(it, store.end());
  EXPECT_EQ(it->second.location, cores[1]->id());
  EXPECT_EQ(it->second.epoch, 1u);  // fresh install mints epoch 1

  cores[1]->MoveId(msg.target(), cores[2]->id());
  rt.RunUntilIdle();
  it = store.find(msg.target());
  ASSERT_NE(it, store.end());
  EXPECT_EQ(it->second.location, cores[2]->id());
  EXPECT_EQ(it->second.epoch, 2u);  // each movement bumps the stamp

  cores[2]->MoveId(msg.target(), cores[3]->id());
  rt.RunUntilIdle();
  it = store.find(msg.target());
  EXPECT_EQ(it->second.location, cores[3]->id());
  EXPECT_EQ(it->second.epoch, 3u);
}

TEST_F(DirectoryTest, ShardMergeRejectsStaleStamps) {
  auto cores = MakeCores(4);
  rt.EnableDirectory({cores[0]->id()});
  const ComletId id{cores[1]->id(), 777};  // fabricated; store is pure data
  core::Directory& shard = cores[0]->directory();

  shard.Publish(id, cores[1]->id(), 5);  // owner-local: applies synchronously
  auto entry = [&] { return shard.store().at(id); };
  EXPECT_EQ(entry().epoch, 5u);

  // An out-of-order publish from an older view of the world loses.
  const std::uint64_t stale_before =
      rt.metrics().CounterValue("dir.hint.stale");
  shard.Publish(id, cores[2]->id(), 4);
  EXPECT_EQ(entry().location, cores[1]->id());
  EXPECT_EQ(entry().epoch, 5u);
  EXPECT_EQ(rt.metrics().CounterValue("dir.hint.stale"), stale_before + 1);

  // Equal stamp, same location: a retry/duplicate refresh, not stale.
  shard.Publish(id, cores[1]->id(), 5);
  EXPECT_EQ(rt.metrics().CounterValue("dir.hint.stale"), stale_before + 1);

  // Strictly newer stamp supersedes.
  shard.Publish(id, cores[2]->id(), 6);
  EXPECT_EQ(entry().location, cores[2]->id());
  EXPECT_EQ(entry().epoch, 6u);
}

TEST_F(DirectoryTest, HostAssertionSupersedesWhateverIsStored) {
  auto cores = MakeCores(4);
  rt.EnableDirectory({cores[0]->id()});
  const ComletId id{cores[1]->id(), 778};
  core::Directory& shard = cores[0]->directory();
  shard.Publish(id, cores[1]->id(), 5);

  // Epoch-0 publish = "I provably host this, but lost my stamp" (crash
  // recovery, rollback reinstall). Hosting is ground truth: it supersedes
  // the stored record and mints the next stamp.
  shard.Publish(id, cores[3]->id(), 0);
  EXPECT_EQ(shard.store().at(id).location, cores[3]->id());
  EXPECT_EQ(shard.store().at(id).epoch, 6u);

  // Re-asserting the same location refreshes without burning a stamp.
  shard.Publish(id, cores[3]->id(), 0);
  EXPECT_EQ(shard.store().at(id).epoch, 6u);
}

TEST_F(DirectoryTest, GcOfHintedForwardsFallsBackToTheShard) {
  // Satellite: TrackerTable::CollectGarbage x hinted forwards. beta moves
  // core1 -> core2 -> core3; the intermediate hop's tracker entry is
  // hinted-but-unpinned and may be reclaimed. Routing must survive on the
  // shard records alone: parked request, expiry, one directory lookup.
  auto cores = MakeCores(5);
  rt.EnableDirectory({cores[0]->id()});
  for (core::Core* c : cores) c->SetRpcTimeout(Millis(200));

  auto beta = cores[1]->New<Message>("beta");
  auto observer = cores[4]->RefTo<Message>(beta.handle());
  observer.Call("print");  // observer's hint: beta @ core1, epoch 1
  cores[1]->MoveId(beta.target(), cores[2]->id());
  rt.RunUntilIdle();
  cores[2]->MoveId(beta.target(), cores[3]->id());
  rt.RunUntilIdle();

  // core2's entry forwards to core3 with no local stubs: collectable.
  const std::size_t reclaimed = cores[2]->trackers().CollectGarbage();
  EXPECT_GE(reclaimed, 1u);
  EXPECT_EQ(cores[2]->trackers().Find(beta.target()), nullptr);

  const std::uint64_t lookups_before = rt.metrics().CounterValue("dir.lookups");
  // Route: core4 -> core1 (chain hit) -> core2 (severed: park, expire,
  // transport error) -> origin consults the home shard -> core3. The hop
  // is re-created from the shard, not lost.
  EXPECT_EQ(observer.Invoke<std::string>("text"), "beta");
  EXPECT_GE(rt.metrics().CounterValue("dir.lookups"), lookups_before + 1);

  // The observer's tracker was repaired and re-stamped by the reply hint.
  const core::TrackerEntry* t = cores[4]->trackers().Find(beta.target());
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->next, cores[3]->id());
  EXPECT_GE(t->hint_epoch, 3u);

  core::InvokeResult steady =
      cores[4]->invocation().Invoke(observer.handle(), "text", {});
  EXPECT_EQ(steady.location, cores[3]->id());
  EXPECT_LE(steady.hops, 2);
}

TEST_F(DirectoryTest, StaleObserverPaysBoundedHopsAfterChurn) {
  auto cores = MakeCores(6);
  rt.EnableDirectory({cores[0]->id()});
  for (core::Core* c : cores) c->SetRpcTimeout(Millis(200));

  auto beta = cores[1]->New<Message>("beta");
  auto observer = cores[5]->RefTo<Message>(beta.handle());
  observer.Call("print");
  for (int hop = 1; hop <= 3; ++hop) {
    cores[hop]->MoveId(beta.target(), cores[hop + 1]->id());
    rt.RunUntilIdle();
  }

  // First resolve may walk the (monotonically stamped) chain; the piggy-
  // backed reply hint then collapses the route.
  const std::uint64_t lookups_before = rt.metrics().CounterValue("dir.lookups");
  EXPECT_EQ(observer.Invoke<std::string>("text"), "beta");
  core::InvokeResult steady =
      cores[5]->invocation().Invoke(observer.handle(), "text", {});
  EXPECT_EQ(steady.location, cores[4]->id());
  EXPECT_LE(steady.hops, 2);
  // An intact chain needs no directory traffic at all.
  EXPECT_EQ(rt.metrics().CounterValue("dir.lookups"), lookups_before);
}

// ---------------------------------------------------------------------------
// Chaos: shard owners crash mid-publish. The plane must degrade to
// tracker-chain routing and re-converge on recovery — never a black hole.
// ---------------------------------------------------------------------------

TEST_F(DirectoryTest, ShardOwnerCrashMidPublishNeverBlackHoles) {
  auto cores = MakeCores(4);
  for (core::Core* c : cores) {
    c->SetRpcTimeout(Millis(200));
    c->EnableWal(Millis(50));
  }
  rt.EnableDirectory({cores[0]->id()});

  auto beta = cores[1]->New<Message>("beta");
  auto observer = cores[3]->RefTo<Message>(beta.handle());
  observer.Call("print");
  rt.RunUntilIdle();  // install published + WAL-synced at the owner

  // Crash the owner just as the movement commits: the epoch-2 publish is
  // addressed to a dead Core and lost.
  auto moved = cores[1]->MoveIdAsync(beta.target(), cores[2]->id());
  (void)moved;
  cores[0]->Crash();
  rt.RunFor(Seconds(1));  // movement itself needs no shard; it completes
  EXPECT_TRUE(cores[2]->repository().Contains(beta.target()));

  cores[0]->Restart();
  rt.RunUntilIdle();
  // The WAL restored the shard store — to the stale pre-crash record.
  const auto& store = cores[0]->directory().store();
  auto it = store.find(beta.target());
  ASSERT_NE(it, store.end());
  EXPECT_EQ(it->second.location, cores[1]->id());
  EXPECT_EQ(it->second.epoch, 1u);

  // Stale store, stale observer: the tracker chain still routes. Never a
  // black hole.
  EXPECT_EQ(observer.Invoke<std::string>("text"), "beta");
  core::InvokeResult res =
      cores[3]->invocation().Invoke(observer.handle(), "text", {});
  EXPECT_EQ(res.location, cores[2]->id());

  // Now the HOST crashes and recovers: its directory sweep re-asserts
  // (epoch-0 publish), which repairs the stale shard record and echoes
  // the authoritative stamp back.
  cores[2]->Crash();
  rt.RunFor(Millis(100));
  cores[2]->Restart();
  rt.RunUntilIdle();
  it = store.find(beta.target());
  ASSERT_NE(it, store.end());
  EXPECT_EQ(it->second.location, cores[2]->id());
  EXPECT_GE(it->second.epoch, 2u);
  const core::TrackerEntry* t = cores[2]->trackers().Find(beta.target());
  ASSERT_NE(t, nullptr);
  EXPECT_GE(t->hint_epoch, 2u);  // the shard's echo re-stamped the host

  EXPECT_EQ(observer.Invoke<std::string>("text"), "beta");
}

class DirectoryChaosTest : public FargoTest,
                           public ::testing::WithParamInterface<std::uint64_t> {
};

TEST_P(DirectoryChaosTest, SeededOwnerCrashChurnConverges) {
  const std::uint64_t seed = GetParam();
  auto cores = MakeCores(6, Millis(2), 1e7);
  core::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff = Millis(25);
  policy.seed = seed;
  for (core::Core* c : cores) {
    c->SetRpcTimeout(Millis(200));
    c->SetRetryPolicy(policy);
    c->EnableWal(Millis(200));
  }
  // Two home shards on core0/core1; complets live on cores 2..5.
  rt.EnableDirectory({cores[0]->id(), cores[1]->id()}, 8);

  net::FaultPlan plan;
  plan.seed = seed;
  plan.drop = 0.02;
  // Both shard owners crash mid-churn and restart from their WALs;
  // publishes addressed to a down owner are simply lost.
  plan.crashes.push_back({cores[0]->id(), Millis(700), Millis(400)});
  plan.crashes.push_back({cores[1]->id(), Millis(1900), Millis(400)});
  rt.network().SetFaultPlan(plan);

  constexpr int kComplets = 12;
  std::vector<ComletId> ids;
  std::vector<core::ComletRef<Message>> refs;  // stale-prone observers
  for (int i = 0; i < kComplets; ++i) {
    auto c = cores[2 + (i % 4)]->New<Message>("m" + std::to_string(i));
    ids.push_back(c.target());
    refs.push_back(cores[2 + ((i + 1) % 4)]->RefTo<Message>(c.handle()));
  }
  rt.RunUntilIdle();
  for (auto& ref : refs) ref.Call("print");  // warm every hint

  auto host_of = [&](ComletId id) -> core::Core* {
    core::Core* found = nullptr;
    for (core::Core* c : cores) {
      if (!c->alive() || !c->repository().Contains(id)) continue;
      EXPECT_EQ(found, nullptr) << "complet hosted twice: " << ToString(id);
      found = c;
    }
    return found;
  };

  std::uint64_t rng = core::MixU64(seed | 1);
  for (int step = 0; step < 36; ++step) {
    rng = core::MixU64(rng);
    const ComletId id = ids[rng % kComplets];
    core::Core* host = host_of(id);
    ASSERT_NE(host, nullptr);
    rng = core::MixU64(rng);
    std::size_t d = 2 + rng % 4;
    if (cores[d] == host) d = 2 + (d - 1) % 4;
    host->MoveId(id, cores[d]->id());
    rt.RunFor(Millis(100));  // advance into the crash windows
  }

  rt.network().ClearFaults();
  rt.RunFor(Seconds(3));  // restarts done, retries and publishes drained
  rt.RunUntilIdle();

  for (int i = 0; i < kComplets; ++i) {
    core::Core* host = host_of(ids[i]);
    ASSERT_NE(host, nullptr) << "complet lost: " << ToString(ids[i]);
    // However stale the observer and whatever the owners missed while
    // down, the complet stays reachable...
    EXPECT_EQ(refs[i].Invoke<std::string>("text"), "m" + std::to_string(i));
    // ...and once re-resolved, delivery is bounded-hop again.
    core::InvokeResult res = cores[2 + ((i + 1) % 4)]->invocation().Invoke(
        refs[i].handle(), "text", {});
    EXPECT_EQ(res.location, host->id());
    EXPECT_LE(res.hops, 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectoryChaosTest,
                         ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                           std::uint64_t{3}));

}  // namespace
}  // namespace fargo::testing
