// Core basics: instantiation, local/remote invocation, Fig 3's scenario,
// remote instantiation, naming, and error propagation.
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

using core::ComletRef;

class CoreBasicTest : public FargoTest {};

TEST_F(CoreBasicTest, NewInstallsAndDispatchesLocally) {
  auto cores = MakeCores(1);
  ComletRef<Message> msg = cores[0]->New<Message>("hello");
  EXPECT_TRUE(msg.bound());
  EXPECT_EQ(msg.Call("text").AsString(), "hello");
  EXPECT_EQ(cores[0]->repository().size(), 1u);
  EXPECT_EQ(cores[0]->ComletsHere().size(), 1u);
}

TEST_F(CoreBasicTest, TypedInvokeConvertsReturnValues) {
  auto cores = MakeCores(1);
  auto counter = cores[0]->New<Counter>();
  EXPECT_EQ(counter.Invoke<std::int64_t>("increment", std::int64_t{5}), 5);
  EXPECT_EQ(counter.Invoke<std::int64_t>("get"), 5);
  auto msg = cores[0]->New<Message>("x");
  EXPECT_EQ(msg.Invoke<std::string>("text"), "x");
}

TEST_F(CoreBasicTest, RemoteInvocationThroughNetwork) {
  auto cores = MakeCores(2);
  auto counter = cores[0]->New<Counter>();
  // A stub at core1 for the complet at core0.
  auto remote = cores[1]->RefTo<Counter>(counter.handle());
  const std::uint64_t msgs_before = rt.network().total_messages();
  EXPECT_EQ(remote.Invoke<std::int64_t>("increment"), 1);
  EXPECT_GE(rt.network().total_messages(), msgs_before + 2);  // req + reply
  EXPECT_EQ(counter.Invoke<std::int64_t>("get"), 1);
  // Invocation advanced simulated time by at least one round trip.
  EXPECT_GE(rt.Now(), 2 * Millis(5));
}

TEST_F(CoreBasicTest, Figure3Scenario) {
  // Message msg = new Message_("Hello World"); Carrier.move(msg, "acadia");
  // msg.print();
  core::Core& local = rt.CreateCore("local");
  core::Core& acadia = rt.CreateCore("acadia");
  rt.network().SetDefaultLink({Millis(10), 1.25e6, true});

  ComletRef<Message> msg = local.New<Message>("Hello World");
  local.Move(msg, acadia.id());
  EXPECT_TRUE(acadia.repository().Contains(msg.target()));
  EXPECT_FALSE(local.repository().Contains(msg.target()));
  // The stub still works transparently after the move.
  EXPECT_EQ(msg.Call("print").AsString(), "Hello World");
  EXPECT_EQ(msg.Invoke<std::string>("whereami"), "acadia");
}

TEST_F(CoreBasicTest, MoveWithContinuationInvokesStartAtDestination) {
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("before");
  cores[0]->Move(msg, cores[1]->id(), "start", {Value("after")});
  rt.RunUntilIdle();
  EXPECT_EQ(msg.Invoke<std::string>("text"), "after");
  auto anchor = cores[1]->repository().Get(msg.target());
  ASSERT_NE(anchor, nullptr);
  EXPECT_EQ(std::dynamic_pointer_cast<Message>(anchor)->continuations(), 1);
}

TEST_F(CoreBasicTest, RemoteInstantiation) {
  auto cores = MakeCores(2);
  ComletRef<Counter> counter = cores[0]->NewAt<Counter>(cores[1]->id());
  EXPECT_TRUE(counter.bound());
  EXPECT_TRUE(cores[1]->repository().Contains(counter.target()));
  EXPECT_EQ(counter.Invoke<std::int64_t>("increment"), 1);
}

TEST_F(CoreBasicTest, RemoteInstantiationOfNonAnchorFails) {
  auto cores = MakeCores(2);
  EXPECT_THROW(cores[0]->NewRemote(cores[1]->id(), "test.TreeNode"),
               FargoError);
}

TEST_F(CoreBasicTest, NamingLocalAndRemote) {
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("named");
  cores[0]->BindName("greeting", msg);
  auto local = cores[0]->LookupAt(cores[0]->id(), "greeting");
  ASSERT_TRUE(local.has_value());
  EXPECT_EQ(local->id, msg.target());

  auto remote = cores[1]->LookupAt(cores[0]->id(), "greeting");
  ASSERT_TRUE(remote.has_value());
  auto ref = cores[1]->RefTo<Message>(*remote);
  EXPECT_EQ(ref.Invoke<std::string>("text"), "named");

  EXPECT_FALSE(cores[1]->LookupAt(cores[0]->id(), "nope").has_value());
}

TEST_F(CoreBasicTest, UnknownMethodPropagatesAsError) {
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("x");
  auto remote = cores[1]->RefTo<Message>(msg.handle());
  EXPECT_THROW(remote.Call("definitely_not_a_method"), FargoError);
  // Local path too.
  EXPECT_THROW(msg.Call("definitely_not_a_method"), FargoError);
}

TEST_F(CoreBasicTest, AnchorExceptionsCrossTheWire) {
  auto cores = MakeCores(2);
  auto worker = cores[0]->New<Worker>();
  auto remote = cores[1]->RefTo<Worker>(worker.handle());
  // "work" without a bound data source throws inside the anchor.
  try {
    remote.Call("work");
    FAIL() << "expected FargoError";
  } catch (const FargoError& e) {
    EXPECT_NE(std::string(e.what()).find("no data source"),
              std::string::npos);
  }
}

TEST_F(CoreBasicTest, CallThroughUnboundRefThrows) {
  ComletRef<Message> ref;
  EXPECT_FALSE(ref.bound());
  EXPECT_THROW(ref.Call("text"), FargoError);
}

TEST_F(CoreBasicTest, SystemMethodsIntrospection) {
  auto cores = MakeCores(1);
  auto msg = cores[0]->New<Message>("m");
  Value names = msg.Call("__fargo.methods");
  bool has_print = false;
  for (const Value& n : names.AsList())
    if (n.AsString() == "print") has_print = true;
  EXPECT_TRUE(has_print);
}

TEST_F(CoreBasicTest, ResolveLocationFollowsMoves) {
  auto cores = MakeCores(3);
  auto msg = cores[0]->New<Message>("m");
  auto observer = cores[2]->RefTo<Message>(msg.handle());
  EXPECT_EQ(cores[2]->ResolveLocation(observer), cores[0]->id());
  cores[0]->Move(msg, cores[1]->id());
  EXPECT_EQ(cores[2]->ResolveLocation(observer), cores[1]->id());
}

TEST_F(CoreBasicTest, MoveOfRemotelyHostedCompletIsRouted) {
  auto cores = MakeCores(3);
  auto msg = cores[0]->New<Message>("m");
  auto ref_at_2 = cores[2]->RefTo<Message>(msg.handle());
  // core2 asks to move a complet it does not host: routed via the chain.
  cores[2]->Move(ref_at_2, cores[1]->id());
  EXPECT_TRUE(cores[1]->repository().Contains(msg.target()));
  EXPECT_FALSE(cores[0]->repository().Contains(msg.target()));
}

TEST_F(CoreBasicTest, ShutdownCoreRejectsNewComplets) {
  auto cores = MakeCores(2);
  cores[1]->Shutdown(Millis(1));
  EXPECT_FALSE(cores[1]->alive());
  EXPECT_THROW(cores[1]->New<Message>("x"), FargoError);
  // RPC to a dead core times out rather than hanging.
  cores[0]->SetRpcTimeout(Millis(100));
  EXPECT_THROW(cores[0]->NewAt<Message>(cores[1]->id()), FargoError);
}

}  // namespace
}  // namespace fargo::testing
