// Unit tests for the at-most-once RPC building blocks: the RetryPolicy
// backoff schedule and the executor-side DedupCache.
#include "src/core/retry.h"

#include <gtest/gtest.h>

namespace fargo::core {
namespace {

TEST(RetryPolicyTest, DisabledByDefault) {
  RetryPolicy p;
  EXPECT_EQ(p.max_attempts, 1);
  EXPECT_FALSE(p.enabled());
  p.max_attempts = 3;
  EXPECT_TRUE(p.enabled());
}

TEST(RetryPolicyTest, BackoffGrowsExponentially) {
  RetryPolicy p;
  p.initial_backoff = Millis(10);
  p.multiplier = 2.0;
  p.max_backoff = Seconds(10);
  p.jitter = 0.0;
  EXPECT_EQ(p.BackoffAfter(1, 0), Millis(10));
  EXPECT_EQ(p.BackoffAfter(2, 0), Millis(20));
  EXPECT_EQ(p.BackoffAfter(3, 0), Millis(40));
  EXPECT_EQ(p.BackoffAfter(4, 0), Millis(80));
}

TEST(RetryPolicyTest, BackoffClampsAtMax) {
  RetryPolicy p;
  p.initial_backoff = Millis(100);
  p.multiplier = 10.0;
  p.max_backoff = Millis(500);
  p.jitter = 0.0;
  EXPECT_EQ(p.BackoffAfter(2, 0), Millis(500));
  EXPECT_EQ(p.BackoffAfter(10, 0), Millis(500));
}

TEST(RetryPolicyTest, JitterStaysWithinBounds) {
  RetryPolicy p;
  p.initial_backoff = Millis(100);
  p.multiplier = 1.0;
  p.jitter = 0.25;
  for (std::uint64_t salt = 0; salt < 200; ++salt) {
    const SimTime b = p.BackoffAfter(1, salt);
    EXPECT_GE(b, Millis(75)) << "salt " << salt;
    EXPECT_LE(b, Millis(125)) << "salt " << salt;
  }
}

TEST(RetryPolicyTest, JitterIsDeterministicPerSaltAndVaries) {
  RetryPolicy p;
  p.jitter = 0.5;
  EXPECT_EQ(p.BackoffAfter(2, 42), p.BackoffAfter(2, 42));
  // Different salts should (virtually always) jitter differently.
  bool varies = false;
  for (std::uint64_t salt = 1; salt < 20 && !varies; ++salt)
    varies = p.BackoffAfter(1, salt) != p.BackoffAfter(1, 0);
  EXPECT_TRUE(varies);
}

TEST(DedupCacheTest, FreshThenReplay) {
  DedupCache cache(Seconds(60));
  const CoreId origin{7};

  auto first = cache.Begin(origin, 1, 0);
  EXPECT_EQ(first.outcome, DedupCache::Outcome::kFresh);

  // Duplicate arriving while the original still executes: suppressed.
  auto racing = cache.Begin(origin, 1, 0);
  EXPECT_EQ(racing.outcome, DedupCache::Outcome::kInProgress);
  EXPECT_EQ(cache.suppressed(), 1u);

  const std::vector<std::uint8_t> reply = {1, 2, 3};
  cache.Complete(origin, 1, net::MessageKind::kInvokeReply, reply, Millis(1));

  auto late = cache.Begin(origin, 1, Millis(2));
  ASSERT_EQ(late.outcome, DedupCache::Outcome::kReplay);
  EXPECT_EQ(late.reply_kind, net::MessageKind::kInvokeReply);
  ASSERT_NE(late.reply, nullptr);
  EXPECT_EQ(*late.reply, reply);
  EXPECT_EQ(cache.replays(), 1u);
}

TEST(DedupCacheTest, KeysAreScopedPerOrigin) {
  DedupCache cache;
  EXPECT_EQ(cache.Begin(CoreId{1}, 5, 0).outcome, DedupCache::Outcome::kFresh);
  // Same correlation from a different origin is a different request.
  EXPECT_EQ(cache.Begin(CoreId{2}, 5, 0).outcome, DedupCache::Outcome::kFresh);
}

TEST(DedupCacheTest, LookupFindsOnlyCompletedEntries) {
  DedupCache cache;
  const CoreId origin{3};
  EXPECT_FALSE(cache.Lookup(origin, 9).has_value());  // unknown
  cache.Begin(origin, 9, 0);
  EXPECT_FALSE(cache.Lookup(origin, 9).has_value());  // in progress
  cache.Complete(origin, 9, net::MessageKind::kInvokeReply, {42}, 0);
  auto hit = cache.Lookup(origin, 9);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->payload->at(0), 42);
}

TEST(DedupCacheTest, CompleteIgnoresUnknownKeys) {
  // Replies to requests that were never admitted (e.g. park-expiry errors)
  // must not poison the cache.
  DedupCache cache;
  cache.Complete(CoreId{1}, 99, net::MessageKind::kInvokeReply, {1}, 0);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(CoreId{1}, 99).has_value());
}

TEST(DedupCacheTest, TtlEvictsCompletedEntries) {
  DedupCache cache(Millis(100));
  const CoreId origin{1};
  cache.Begin(origin, 1, 0);
  cache.Complete(origin, 1, net::MessageKind::kInvokeReply, {}, 0);
  cache.Begin(origin, 2, Millis(50));
  cache.Complete(origin, 2, net::MessageKind::kInvokeReply, {}, Millis(50));
  EXPECT_EQ(cache.size(), 2u);

  cache.EvictExpired(Millis(100));  // entry 1 is exactly ttl old
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.Lookup(origin, 1).has_value());
  EXPECT_TRUE(cache.Lookup(origin, 2).has_value());

  cache.EvictExpired(Millis(200));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DedupCacheTest, EvictionRunsOnBegin) {
  DedupCache cache(Millis(10));
  const CoreId origin{1};
  cache.Begin(origin, 1, 0);
  cache.Complete(origin, 1, net::MessageKind::kInvokeReply, {}, 0);
  // Far past the ttl, the same key is fresh again (the window is over; the
  // client must have given up long ago).
  EXPECT_EQ(cache.Begin(origin, 1, Seconds(1)).outcome,
            DedupCache::Outcome::kFresh);
}

TEST(DedupCacheTest, InProgressEntriesSurviveEviction) {
  DedupCache cache(Millis(10));
  const CoreId origin{1};
  cache.Begin(origin, 1, 0);  // never completed
  cache.EvictExpired(Seconds(5));
  // Still tracked: only *completed* entries age out.
  EXPECT_EQ(cache.Begin(origin, 1, Seconds(5)).outcome,
            DedupCache::Outcome::kInProgress);
}

}  // namespace
}  // namespace fargo::core
