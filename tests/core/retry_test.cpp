// Unit tests for the RetryPolicy backoff schedule. (The executor-side
// duplicate detection moved to slot-window replay — see
// tests/net/session_test.cpp.)
#include "src/core/retry.h"

#include <gtest/gtest.h>

namespace fargo::core {
namespace {

TEST(RetryPolicyTest, DisabledByDefault) {
  RetryPolicy p;
  EXPECT_EQ(p.max_attempts, 1);
  EXPECT_FALSE(p.enabled());
  p.max_attempts = 3;
  EXPECT_TRUE(p.enabled());
}

TEST(RetryPolicyTest, BackoffGrowsExponentially) {
  RetryPolicy p;
  p.initial_backoff = Millis(10);
  p.multiplier = 2.0;
  p.max_backoff = Seconds(10);
  p.jitter = 0.0;
  EXPECT_EQ(p.BackoffAfter(1, 0), Millis(10));
  EXPECT_EQ(p.BackoffAfter(2, 0), Millis(20));
  EXPECT_EQ(p.BackoffAfter(3, 0), Millis(40));
  EXPECT_EQ(p.BackoffAfter(4, 0), Millis(80));
}

TEST(RetryPolicyTest, BackoffClampsAtMax) {
  RetryPolicy p;
  p.initial_backoff = Millis(100);
  p.multiplier = 10.0;
  p.max_backoff = Millis(500);
  p.jitter = 0.0;
  EXPECT_EQ(p.BackoffAfter(2, 0), Millis(500));
  EXPECT_EQ(p.BackoffAfter(10, 0), Millis(500));
}

TEST(RetryPolicyTest, JitterStaysWithinBounds) {
  RetryPolicy p;
  p.initial_backoff = Millis(100);
  p.multiplier = 1.0;
  p.jitter = 0.25;
  for (std::uint64_t salt = 0; salt < 200; ++salt) {
    const SimTime b = p.BackoffAfter(1, salt);
    EXPECT_GE(b, Millis(75)) << "salt " << salt;
    EXPECT_LE(b, Millis(125)) << "salt " << salt;
  }
}

TEST(RetryPolicyTest, JitterIsDeterministicPerSaltAndVaries) {
  RetryPolicy p;
  p.jitter = 0.5;
  EXPECT_EQ(p.BackoffAfter(2, 42), p.BackoffAfter(2, 42));
  // Different salts should (virtually always) jitter differently.
  bool varies = false;
  for (std::uint64_t salt = 1; salt < 20 && !varies; ++salt)
    varies = p.BackoffAfter(1, salt) != p.BackoffAfter(1, 0);
  EXPECT_TRUE(varies);
}

}  // namespace
}  // namespace fargo::core
