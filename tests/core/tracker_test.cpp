// Tracker chains (§3.1, Fig 2): formation under movement, forwarding,
// automatic shortening on invocation return, and tracker garbage collection.
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

using core::ComletRef;
using core::TrackerEntry;

class TrackerChainTest : public FargoTest {};

TEST_F(TrackerChainTest, OneTrackerPerTargetPerCore) {
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("t");
  // Many stubs at core1 for the same target: exactly one tracker.
  std::vector<ComletRef<Message>> stubs;
  for (int i = 0; i < 50; ++i)
    stubs.push_back(cores[1]->RefTo<Message>(msg.handle()));
  EXPECT_EQ(cores[1]->trackers().size(), 1u);
  const TrackerEntry* entry = cores[1]->trackers().Find(msg.target());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->stub_refs, 50);
}

TEST_F(TrackerChainTest, StubCopiesAndDestructionAdjustRefcount) {
  auto cores = MakeCores(1);
  auto msg = cores[0]->New<Message>("rc");
  const TrackerEntry* entry = cores[0]->trackers().Find(msg.target());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->stub_refs, 1);
  {
    ComletRef<Message> copy = msg;        // +1
    ComletRef<Message> moved = std::move(copy);  // net 0
    EXPECT_EQ(entry->stub_refs, 2);
  }
  EXPECT_EQ(entry->stub_refs, 1);
}

TEST_F(TrackerChainTest, ChainFormsAcrossMoves) {
  // beta moves core0 -> core1 -> core2 -> core3; each former host's tracker
  // points one hop onwards (Fig 2's chain).
  auto cores = MakeCores(4);
  auto beta = cores[0]->New<Message>("beta");
  for (int i = 0; i < 3; ++i)
    cores[static_cast<std::size_t>(i)]->Move(
        beta, cores[static_cast<std::size_t>(i + 1)]->id());
  // NOTE: moving through the ref from core0 routes the command along the
  // chain, so intermediate trackers exist at every former host.
  for (int i = 0; i < 3; ++i) {
    const TrackerEntry* t =
        cores[static_cast<std::size_t>(i)]->trackers().Find(beta.target());
    ASSERT_NE(t, nullptr) << "no tracker at core " << i;
    EXPECT_FALSE(t->is_local());
  }
  EXPECT_TRUE(cores[3]->repository().Contains(beta.target()));
}

TEST_F(TrackerChainTest, InvocationShortensTheWholeChain) {
  auto cores = MakeCores(5);
  auto beta = cores[0]->New<Message>("beta");
  // Observer at core4 binds while beta is at core0.
  auto observer = cores[4]->RefTo<Message>(beta.handle());
  // Move beta along a chain 0->1->2->3 with local move commands so the
  // observer's knowledge stays stale (pointing at core0).
  for (int i = 0; i < 3; ++i) {
    core::Core* host = cores[static_cast<std::size_t>(i)];
    host->MoveId(beta.target(), cores[static_cast<std::size_t>(i + 1)]->id());
  }

  // First invocation walks the chain...
  rt.network().ResetStats();
  EXPECT_EQ(observer.Invoke<std::string>("text"), "beta");
  const auto msgs_first = rt.network().total_messages();
  rt.RunUntilIdle();  // let TrackerUpdate notifications land

  // ...after which every tracker on the path points directly at core3.
  for (int i = 0; i < 3; ++i) {
    const TrackerEntry* t =
        cores[static_cast<std::size_t>(i)]->trackers().Find(beta.target());
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->next, cores[3]->id()) << "tracker at core " << i;
  }
  const TrackerEntry* t4 = cores[4]->trackers().Find(beta.target());
  ASSERT_NE(t4, nullptr);
  EXPECT_EQ(t4->next, cores[3]->id());

  // Second invocation is a single hop.
  rt.network().ResetStats();
  EXPECT_EQ(observer.Invoke<std::string>("text"), "beta");
  EXPECT_EQ(rt.network().total_messages(), 2u);  // request + reply only
  EXPECT_LT(rt.network().total_messages(), msgs_first);
}

TEST_F(TrackerChainTest, HopCountReportedByInvoke) {
  auto cores = MakeCores(4);
  auto beta = cores[0]->New<Message>("beta");
  auto observer = cores[3]->RefTo<Message>(beta.handle());
  cores[0]->MoveId(beta.target(), cores[1]->id());
  cores[1]->MoveId(beta.target(), cores[2]->id());

  // observer -> core0 -> core1 -> core2: 3 hops for the request.
  core::InvokeResult first =
      cores[3]->invocation().Invoke(observer.handle(), "text", {});
  EXPECT_EQ(first.hops, 3);
  EXPECT_EQ(first.location, cores[2]->id());

  core::InvokeResult second =
      cores[3]->invocation().Invoke(observer.handle(), "text", {});
  EXPECT_EQ(second.hops, 1);
}

TEST_F(TrackerChainTest, UnpointedTrackersAreCollectable) {
  auto cores = MakeCores(3);
  auto beta = cores[0]->New<Message>("beta");
  auto observer = cores[2]->RefTo<Message>(beta.handle());
  cores[0]->MoveId(beta.target(), cores[1]->id());
  // Shorten: observer now points directly at core1.
  observer.Call("text");
  rt.RunUntilIdle();

  // core0's tracker has no local stubs (the original ref `beta` lives in
  // this test at core0 though — drop it first).
  beta.Reset();
  EXPECT_EQ(cores[0]->trackers().CollectGarbage(), 1u);
  EXPECT_EQ(cores[0]->trackers().Find(observer.target()), nullptr);
  // core1 hosts the complet: its tracker must never be collected.
  EXPECT_EQ(cores[1]->trackers().CollectGarbage(), 0u);
  ASSERT_NE(cores[1]->trackers().Find(observer.target()), nullptr);
}

TEST_F(TrackerChainTest, ForwardCountsAreRecorded) {
  auto cores = MakeCores(3);
  auto beta = cores[0]->New<Message>("beta");
  auto observer = cores[2]->RefTo<Message>(beta.handle());
  cores[0]->MoveId(beta.target(), cores[1]->id());
  observer.Call("text");
  const TrackerEntry* t0 = cores[0]->trackers().Find(beta.target());
  ASSERT_NE(t0, nullptr);
  EXPECT_GE(t0->forwarded, 1u);
}

class ChainLengthSweep : public FargoTest,
                         public ::testing::WithParamInterface<int> {};

TEST_P(ChainLengthSweep, FirstCallCostGrowsThenCollapses) {
  const int n = GetParam();
  auto cores = MakeCores(n + 2, Millis(10), 1e9);
  auto beta = cores[0]->New<Message>("beta");
  auto observer = cores[static_cast<std::size_t>(n + 1)]->RefTo<Message>(
      beta.handle());
  for (int i = 0; i < n; ++i)
    cores[static_cast<std::size_t>(i)]->MoveId(
        beta.target(), cores[static_cast<std::size_t>(i + 1)]->id());

  const SimTime t0 = rt.Now();
  observer.Call("text");
  const SimTime first = rt.Now() - t0;
  rt.RunUntilIdle();

  const SimTime t1 = rt.Now();
  observer.Call("text");
  const SimTime second = rt.Now() - t1;

  // First call pays one 10ms hop per chain link + direct reply; the second
  // call pays exactly one round trip (plus sub-ms byte-transfer time).
  EXPECT_GE(first, Millis(10) * (n + 2));
  EXPECT_GE(second, Millis(20));
  EXPECT_LT(second, Millis(21));
}

INSTANTIATE_TEST_SUITE_P(Lengths, ChainLengthSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace fargo::testing
