// Failure injection: partitions, crashes, and timeouts at awkward moments.
#include <gtest/gtest.h>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

class FailureTest : public FargoTest {};
// For listeners that issue blocking moves from inside an event handler —
// sim-only (the locality engine requires non-blocking handlers).
class FailureSimTest : public FargoSimTest {};

TEST_F(FailureTest, InvokeAcrossPartitionTimesOutThenRecovers) {
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("m");
  auto remote = cores[1]->RefTo<Message>(msg.handle());
  cores[1]->SetRpcTimeout(Millis(100));
  rt.network().SetPartitioned(cores[0]->id(), cores[1]->id(), true);
  EXPECT_THROW(remote.Call("text"), UnreachableError);
  rt.network().SetPartitioned(cores[0]->id(), cores[1]->id(), false);
  EXPECT_EQ(remote.Invoke<std::string>("text"), "m");
}

TEST_F(FailureTest, OneWayPartitionLosesTheReplyNotTheCall) {
  // Request crosses, the reply is dropped: the method DID execute; the
  // caller sees a timeout (at-least-once ambiguity is inherent here).
  auto cores = MakeCores(2);
  auto counter = cores[0]->New<Counter>();
  auto remote = cores[1]->RefTo<Counter>(counter.handle());
  cores[1]->SetRpcTimeout(Millis(100));
  rt.network().SetLinkOneWay(cores[0]->id(), cores[1]->id(),
                             {Millis(5), 1e9, false});  // reply path down
  EXPECT_THROW(remote.Call("increment"), UnreachableError);
  EXPECT_EQ(counter.Invoke<std::int64_t>("get"), 1);  // it happened
}

TEST_F(FailureTest, MoveRollsBackCleanlyAndIsRetryable) {
  auto cores = MakeCores(3);
  auto worker = cores[0]->New<Worker>();
  auto data = cores[0]->New<Data>(std::size_t{100});
  worker.Call("bind", {Value(data.handle()), Value("pull")});
  cores[0]->SetRpcTimeout(Millis(100));

  rt.network().SetPartitioned(cores[0]->id(), cores[1]->id(), true);
  EXPECT_THROW(cores[0]->Move(worker, cores[1]->id()), FargoError);
  // Both complets rolled back and functional.
  EXPECT_TRUE(cores[0]->repository().Contains(worker.target()));
  EXPECT_TRUE(cores[0]->repository().Contains(data.target()));
  EXPECT_EQ(worker.Invoke<std::int64_t>("work"), 100);
  // Retry to a reachable destination succeeds, pull intact.
  cores[0]->Move(worker, cores[2]->id());
  EXPECT_TRUE(cores[2]->repository().Contains(worker.target()));
  EXPECT_TRUE(cores[2]->repository().Contains(data.target()));
}

TEST_F(FailureTest, CrashDuringStreamTransit) {
  // The destination crashes while the (large, slow) stream is in flight:
  // the sender times out and rolls back.
  auto cores = MakeCores(2, Millis(5), 1e5);  // 100 KB/s: big move is slow
  auto data = cores[0]->New<Data>(std::size_t{100000});
  cores[0]->SetRpcTimeout(Millis(800));
  rt.scheduler().ScheduleAfter(Millis(100), [&] { cores[1]->Crash(); });
  EXPECT_THROW(cores[0]->Move(data, cores[1]->id()), FargoError);
  EXPECT_TRUE(cores[0]->repository().Contains(data.target()));
  EXPECT_EQ(data.Invoke<std::int64_t>("read"), 100000);
}

TEST_F(FailureTest, InvokeOnCompletOfCrashedCoreFails) {
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("m");
  auto remote = cores[1]->RefTo<Message>(msg.handle());
  cores[0]->Crash();
  cores[1]->SetRpcTimeout(Millis(100));
  EXPECT_THROW(remote.Call("text"), UnreachableError);
}

TEST_F(FailureTest, ParkedRequestsTimeOutIfTheCompletNeverArrives) {
  // A request parks at a core that believes the complet is inbound; it
  // never arrives; the caller times out instead of hanging.
  auto cores = MakeCores(3);
  ComletId ghost{cores[0]->id(), 777};
  // core1 believes the ghost is in transit to itself.
  auto ref = cores[2]->RefFromHandle(
      ComletHandle{ghost, cores[1]->id(), "test.Message"});
  cores[1]->trackers().SetForward(ghost, cores[1]->id(), "test.Message");
  cores[2]->SetRpcTimeout(Millis(150));
  EXPECT_THROW(ref.Call("text"), UnreachableError);
}

TEST_F(FailureSimTest, ShutdownDuringGraceStillServesMoves) {
  // During the grace window the dying core is fully operative: moves out
  // of it succeed even when requested mid-shutdown by a listener.
  auto cores = MakeCores(3);
  auto a = cores[1]->New<Counter>();
  auto b = cores[1]->New<Counter>();
  a.Call("increment");
  b.Call("increment", {Value(2)});
  int moved = 0;
  cores[0]->ListenAt(cores[1]->id(), monitor::EventKind::kCoreShutdown,
                     [&](const monitor::Event&) {
                       for (ComletId id : cores[1]->ComletsHere()) {
                         cores[1]->MoveId(id, cores[2]->id());
                         ++moved;
                       }
                     });
  cores[1]->Shutdown(Millis(500));
  EXPECT_EQ(moved, 2);
  // The original stubs lived at the now-dead core; a client at a survivor
  // reaches both complets at their new home.
  auto a2 = cores[0]->RefFromHandle(
      ComletHandle{a.target(), cores[2]->id(), "test.Counter"});
  auto b2 = cores[0]->RefFromHandle(
      ComletHandle{b.target(), cores[2]->id(), "test.Counter"});
  EXPECT_EQ(a2.Call("get").AsInt(), 1);
  EXPECT_EQ(b2.Call("get").AsInt(), 2);
}

TEST_F(FailureTest, DoubleShutdownAndCrashAreIdempotent) {
  auto cores = MakeCores(2);
  cores[1]->Shutdown(Millis(10));
  cores[1]->Shutdown(Millis(10));
  cores[1]->Crash();
  EXPECT_FALSE(cores[1]->alive());
}

TEST_F(FailureTest, FlappingLinkEventualProgress) {
  // The link flaps; callers retry on failure and eventually all requests
  // complete with no duplicates observed via the counter value.
  auto cores = MakeCores(2);
  auto counter = cores[0]->New<Counter>();
  auto remote = cores[1]->RefTo<Counter>(counter.handle());
  cores[1]->SetRpcTimeout(Millis(50));
  int successes = 0;
  for (int i = 0; i < 20; ++i) {
    rt.network().SetPartitioned(cores[0]->id(), cores[1]->id(), i % 3 == 0);
    try {
      remote.Call("increment");
      ++successes;
    } catch (const UnreachableError&) {
      // dropped request or reply; retry next round
    }
    rt.RunFor(Millis(10));
  }
  rt.network().SetPartitioned(cores[0]->id(), cores[1]->id(), false);
  const std::int64_t count = counter.Invoke<std::int64_t>("get");
  // Every success was a real increment; lost *replies* may add extra
  // executed increments, never fewer.
  EXPECT_GE(count, successes);
  EXPECT_GT(successes, 0);
}

TEST_F(FailureTest, EventNotifyToDeadSubscriberIsDropped) {
  auto cores = MakeCores(2);
  cores[1]->ListenThresholdAt(cores[0]->id(), monitor::ComletLoadProbe(), 0.5,
                              monitor::Trigger::kAbove, Millis(10),
                              [](const monitor::Event&) {});
  cores[1]->Crash();
  cores[0]->New<Message>("m");
  rt.RunFor(Millis(200));  // notifications fire into the void
  EXPECT_GT(rt.network().dropped(), 0u);
  // The publisher core is unaffected.
  EXPECT_EQ(cores[0]->repository().size(), 1u);
}

}  // namespace
}  // namespace fargo::testing
