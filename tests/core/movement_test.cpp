// Movement protocol (§3.3): streams, callbacks, continuations, state
// preservation, rollback, racing invocations.
#include <gtest/gtest.h>

#include <atomic>

#include "tests/support/fixture.h"

namespace fargo::testing {
namespace {

using core::ComletRef;

class MovementTest : public FargoTest {};

TEST_F(MovementTest, StatePreservedAcrossMove) {
  auto cores = MakeCores(2);
  auto counter = cores[0]->New<Counter>();
  counter.Call("increment", {Value(41)});
  cores[0]->Move(counter, cores[1]->id());
  EXPECT_EQ(counter.Invoke<std::int64_t>("increment"), 42);
}

TEST_F(MovementTest, CallbackOrderAndCounts) {
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("cb");
  auto old_anchor = std::dynamic_pointer_cast<Message>(
      cores[0]->repository().Get(msg.target()));
  ASSERT_NE(old_anchor, nullptr);

  cores[0]->Move(msg, cores[1]->id());

  // Old copy saw departure callbacks, new copy saw arrival callbacks.
  EXPECT_EQ(old_anchor->pre_departures, 1);
  EXPECT_EQ(old_anchor->post_departures, 1);
  EXPECT_EQ(old_anchor->pre_arrivals, 0);

  auto new_anchor = std::dynamic_pointer_cast<Message>(
      cores[1]->repository().Get(msg.target()));
  ASSERT_NE(new_anchor, nullptr);
  EXPECT_EQ(new_anchor->pre_arrivals, 1);
  EXPECT_EQ(new_anchor->post_arrivals, 1);
  // pre_departures was serialized *after* PreDeparture ran at the source.
  EXPECT_EQ(new_anchor->pre_departures, 1);
  EXPECT_EQ(new_anchor->post_departures, 0);
}

TEST_F(MovementTest, MoveToSelfIsNoOpButRunsContinuation) {
  auto cores = MakeCores(1);
  auto msg = cores[0]->New<Message>("here");
  cores[0]->Move(msg, cores[0]->id(), "start", {Value("cont")});
  EXPECT_EQ(msg.Invoke<std::string>("text"), "cont");
  EXPECT_EQ(cores[0]->repository().size(), 1u);
}

TEST_F(MovementTest, SelfMoveFromWithinMethod) {
  // A complet can move itself by passing its own anchor to move (§3.3).
  // Node's "sum" dispatch runs at the host; we add a relocating method via
  // the system move method invoked on itself.
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("wanderer");
  // Simulate self-move: invoke the system move method through the ref.
  msg.Call("__fargo.move",
           {Value(static_cast<std::int64_t>(cores[1]->id().value)), Value(""),
            Value(Value::List{})});
  EXPECT_TRUE(cores[1]->repository().Contains(msg.target()));
}

TEST_F(MovementTest, SingleDataMessagePerMove) {
  auto cores = MakeCores(2);
  auto data = cores[0]->New<Data>(std::size_t{10000});
  rt.network().ResetStats();
  cores[0]->Move(data, cores[1]->id());
  // Exactly one request (the stream) and one reply.
  EXPECT_EQ(rt.network().StatsBetween(cores[0]->id(), cores[1]->id()).messages,
            1u);
  EXPECT_EQ(rt.network().StatsBetween(cores[1]->id(), cores[0]->id()).messages,
            1u);
}

TEST_F(MovementTest, MoveCostScalesWithClosureSize) {
  auto cores = MakeCores(2);
  auto small = cores[0]->New<Data>(std::size_t{100});
  auto large = cores[0]->New<Data>(std::size_t{100000});

  rt.network().ResetStats();
  cores[0]->Move(small, cores[1]->id());
  const auto small_bytes =
      rt.network().StatsBetween(cores[0]->id(), cores[1]->id()).bytes;

  rt.network().ResetStats();
  cores[0]->Move(large, cores[1]->id());
  const auto large_bytes =
      rt.network().StatsBetween(cores[0]->id(), cores[1]->id()).bytes;

  EXPECT_GT(large_bytes, small_bytes + 90000);
}

TEST_F(MovementTest, RollbackWhenDestinationIsDown) {
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("stay");
  cores[1]->Shutdown(Millis(1));
  cores[0]->SetRpcTimeout(Millis(100));
  EXPECT_THROW(cores[0]->Move(msg, cores[1]->id()), FargoError);
  // The complet never left; it is still fully usable.
  EXPECT_TRUE(cores[0]->repository().Contains(msg.target()));
  EXPECT_EQ(msg.Invoke<std::string>("text"), "stay");
}

TEST_F(MovementTest, RollbackWhenLinkIsPartitioned) {
  auto cores = MakeCores(2);
  auto msg = cores[0]->New<Message>("stay");
  rt.network().SetPartitioned(cores[0]->id(), cores[1]->id(), true);
  cores[0]->SetRpcTimeout(Millis(100));
  EXPECT_THROW(cores[0]->Move(msg, cores[1]->id()), FargoError);
  rt.network().SetPartitioned(cores[0]->id(), cores[1]->id(), false);
  EXPECT_EQ(msg.Invoke<std::string>("text"), "stay");
  cores[0]->Move(msg, cores[1]->id());  // now it works
  EXPECT_TRUE(cores[1]->repository().Contains(msg.target()));
}

TEST_F(MovementTest, MovingUnhostedCompletThrows) {
  auto cores = MakeCores(2);
  EXPECT_THROW(
      cores[0]->MoveId(ComletId{cores[0]->id(), 999}, cores[1]->id()),
      FargoError);
}

TEST_F(MovementTest, RepeatedMovesKeepWorking) {
  auto cores = MakeCores(4);
  auto counter = cores[0]->New<Counter>();
  for (int round = 0; round < 12; ++round) {
    core::Core* dest = cores[static_cast<std::size_t>((round + 1) % 4)];
    // Route the move from wherever; the command finds the complet.
    cores[0]->MoveId(counter.target(), dest->id());
    EXPECT_EQ(counter.Invoke<std::int64_t>("increment"), round + 1);
  }
}

TEST_F(MovementTest, InvocationRacingTheStreamParksAndCompletes) {
  // A big closure moves while another core keeps invoking: requests that
  // overtake the stream park at the destination and run after arrival.
  auto cores = MakeCores(3, Millis(5), 2e5);  // slow link: stream is in flight
  auto data = cores[0]->New<Data>(std::size_t{200000});
  auto user = cores[2]->RefTo<Data>(data.handle());

  // Fire an async invocation from core2, then immediately move. The
  // invocation is asynchronous so the race stays valid in parallel mode
  // (a scheduled closure runs on a locality worker, which may not pump).
  std::atomic<std::int64_t> got{-1};
  rt.scheduler().ScheduleAfter(Millis(1), [&] {
    user.InvokeAsync<std::int64_t>("read").OnSettle(
        [&](sim::Future<std::int64_t> f) {
          if (f.ok()) got.store(f.value(), std::memory_order_relaxed);
        });
  });
  cores[0]->Move(data, cores[1]->id());
  rt.RunUntilIdle();
  EXPECT_EQ(got.load(), 200000);
  EXPECT_TRUE(cores[1]->repository().Contains(data.target()));
}

TEST_F(MovementTest, NamingSurvivesViaTrackingNotRebinding) {
  // Names bind handles with hints; the tracker chain keeps them valid.
  auto cores = MakeCores(3);
  auto msg = cores[0]->New<Message>("pin");
  cores[0]->BindName("pin", msg);
  cores[0]->Move(msg, cores[1]->id());
  auto handle = cores[2]->LookupAt(cores[0]->id(), "pin");
  ASSERT_TRUE(handle.has_value());
  auto ref = cores[2]->RefTo<Message>(*handle);
  EXPECT_EQ(ref.Invoke<std::string>("text"), "pin");  // routed via chain
}

class MoveHopSweep : public FargoTest,
                     public ::testing::WithParamInterface<int> {};

TEST_P(MoveHopSweep, CompletUsableAfterNHops) {
  const int hops = GetParam();
  auto cores = MakeCores(hops + 1);
  auto counter = cores[0]->New<Counter>();
  for (int i = 0; i < hops; ++i)
    cores[0]->MoveId(counter.target(),
                     cores[static_cast<std::size_t>(i + 1)]->id());
  EXPECT_EQ(counter.Invoke<std::int64_t>("increment"), 1);
  EXPECT_TRUE(
      cores[static_cast<std::size_t>(hops)]->repository().Contains(
          counter.target()));
}

INSTANTIATE_TEST_SUITE_P(Hops, MoveHopSweep, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace fargo::testing
